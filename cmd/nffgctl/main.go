// Command nffgctl is the REST client for the un-orchestrator daemon: it
// deploys, retrieves, lists and deletes Network Function Forwarding Graphs.
//
// Usage:
//
//	nffgctl [-server http://localhost:8080] deploy [-dry-run] <graph.json>
//	nffgctl [-server ...] get <graph-id>
//	nffgctl [-server ...] delete <graph-id>
//	nffgctl [-server ...] list
//	nffgctl [-server ...] status
//
// nffgctl speaks the versioned /v1 API surface. With -dry-run, deploy
// validates and admission-checks the graph (including replica resource
// demand) on the server and prints the would-be placement without
// mutating anything.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/cliutil"
	"repro/internal/nffg"
)

// client retries transient failures with backoff and follows HA leader
// redirects, so nffgctl works against any replica of a clustered
// un-global (or across a brief failover).
var client = cliutil.New()

func main() {
	server := flag.String("server", "http://localhost:8080", "un-orchestrator base URL")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "deploy":
		fs := flag.NewFlagSet("deploy", flag.ExitOnError)
		dryRun := fs.Bool("dry-run", false, "validate and plan on the server without deploying")
		_ = fs.Parse(args[1:])
		if fs.NArg() != 1 {
			usage()
			os.Exit(2)
		}
		err = deploy(*server, fs.Arg(0), *dryRun)
	case "get":
		if len(args) != 2 {
			usage()
			os.Exit(2)
		}
		err = get(*server+"/v1/graphs/"+args[1], true)
	case "delete":
		if len(args) != 2 {
			usage()
			os.Exit(2)
		}
		err = del(*server + "/v1/graphs/" + args[1])
	case "list":
		err = get(*server+"/v1/graphs", false)
	case "status":
		err = get(*server+"/v1/status", false)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nffgctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: nffgctl [-server URL] <command>

commands:
  deploy [-dry-run] <graph.json>
                        PUT the NF-FG in the file (id read from the graph);
                        -dry-run plans placement without deploying
  get <graph-id>        print a deployed graph
  delete <graph-id>     undeploy a graph
  list                  list deployed graph ids
  status                print node status
`)
}

func deploy(server, path string, dryRun bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Validate locally first for a friendlier error.
	var g nffg.Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if err := g.Validate(); err != nil {
		return err
	}
	url := server + "/v1/graphs/" + g.ID
	if dryRun {
		url += "?dry-run=true"
	}
	resp, err := client.Put(url, data)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return report(resp)
}

func get(url string, pretty bool) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return report(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if pretty {
		var buf bytes.Buffer
		if err := json.Indent(&buf, body, "", "  "); err == nil {
			body = buf.Bytes()
		}
	}
	fmt.Printf("%s\n", bytes.TrimSpace(body))
	return nil
}

func del(url string) error {
	resp, err := client.Delete(url, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return report(resp)
}

func report(resp *http.Response) error {
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	fmt.Printf("%s\n", bytes.TrimSpace(body))
	return nil
}
