// Command un-orchestrator runs the NFV compute node daemon: it assembles a
// node (local orchestrator, compute drivers, NNF manager, image store,
// resource ledger) and serves the versioned NF-FG REST interface (/v1,
// with the legacy unversioned routes kept as deprecated aliases).
//
// Usage:
//
//	un-orchestrator [-listen :8080] [-name cpe] [-interfaces eth0,eth1]
//	                [-cpu 16000] [-ram-mb 8192] [-capabilities kvm,docker,...]
//	                [-policy first-fit|bin-pack|cost] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	un "repro"
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "REST listen address")
		name         = flag.String("name", "un-node", "node name")
		interfaces   = flag.String("interfaces", "eth0,eth1", "comma-separated physical interface names")
		cpu          = flag.Int("cpu", 16000, "CPU capacity in millicores")
		ramMB        = flag.Int("ram-mb", 8192, "RAM capacity in MiB")
		capabilities = flag.String("capabilities", "", "comma-separated capability set (empty = all)")
		policy       = flag.String("policy", "first-fit", "placement policy: first-fit, bin-pack or cost")
		workers      = flag.Int("workers", 0, "datapath workers per LSI (0 = synchronous run-to-completion)")
	)
	flag.Parse()

	cfg := un.Config{
		Name:            *name,
		Interfaces:      splitList(*interfaces),
		CPUMillis:       *cpu,
		RAMBytes:        uint64(*ramMB) * un.MB,
		PlacementPolicy: *policy,
		Workers:         *workers,
	}
	if *capabilities != "" {
		cfg.Capabilities = splitList(*capabilities)
	}
	node, err := un.NewNode(cfg)
	if err != nil {
		log.Fatalf("un-orchestrator: %v", err)
	}
	defer node.Close()

	fmt.Fprintf(os.Stderr, "un-orchestrator: node %q up, interfaces %v, datapath workers %d\n", *name, cfg.Interfaces, *workers)
	fmt.Fprintf(os.Stderr, "un-orchestrator: REST listening on %s\n", *listen)
	fmt.Fprintf(os.Stderr, "un-orchestrator: telemetry on GET /metrics (Prometheus text) and GET /events\n")
	fmt.Fprintf(os.Stderr, "un-orchestrator: placement policy %q; NF hot-swap on POST /v1/graphs/{id}/nfs/{nf}/reflavor, replica resize on POST /v1/graphs/{id}/nfs/{nf}/scale\n", *policy)
	if err := node.ListenAndServe(*listen); err != nil {
		log.Fatalf("un-orchestrator: %v", err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
