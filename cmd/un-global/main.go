// Command un-global runs the global orchestrator daemon: one control plane
// over a fleet of Universal Nodes (each a cmd/un-orchestrator daemon).
// Nodes register over the REST interface (or with -node at startup), inter-
// node links are declared with POST /v1/links, and NF-FGs submitted with
// PUT /v1/graphs/{id} are partitioned across the fleet by the resource-
// aware placement scheduler. A reconcile loop probes node health and
// reschedules graphs off dead nodes. The legacy unversioned routes
// (/NF-FG, /nodes, ...) remain as deprecated aliases.
//
// With -id and -join flags the daemon runs as one replica of an HA
// cluster: gossip membership detects dead replicas and nodes, a
// lease-based election picks the single leader that mutates placement,
// and every desired-state change is replicated to the followers through
// a sequence-numbered intent log. Followers answer reads and redirect
// writes to the leader with 307; GET /v1/cluster reports the membership
// and lease state.
//
// Usage:
//
//	un-global [-listen :9090] [-probe 2s]
//	          [-node name=http://host:8080 ...]
//	          [-id r1 -cluster-id un -advertise http://host:9090
//	           -join r1=http://h1:9090 -join r2=http://h2:9090 ...]
//
// Example (standalone):
//
//	un-orchestrator -listen :8081 -name n1 -interfaces lan,trunk &
//	un-orchestrator -listen :8082 -name n2 -interfaces trunk,wan &
//	un-global -listen :9090 -node n1=http://127.0.0.1:8081 \
//	                        -node n2=http://127.0.0.1:8082
//	curl -X POST :9090/v1/links -d '{"a-node":"n1","a-if":"trunk",
//	                                 "b-node":"n2","b-if":"trunk"}'
//	curl -X PUT :9090/v1/graphs/svc -d @graph.json
//	curl :9090/v1/graphs/svc/placement
//
// Example (3-replica HA cluster, see examples/hacluster):
//
//	un-global -listen :9090 -id r1 -join r1=http://127.0.0.1:9090 \
//	          -join r2=http://127.0.0.1:9091 -join r3=http://127.0.0.1:9092 &
//	un-global -listen :9091 -id r2 -join ... &
//	un-global -listen :9092 -id r3 -join ... &
//	curl :9090/v1/cluster          # who leads, who is alive
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/global"
	"repro/internal/rest"
)

// nodeFlags collects repeated name=url flags (-node and -join).
type nodeFlags []struct{ name, url string }

func (n *nodeFlags) String() string { return fmt.Sprintf("%v", *n) }

func (n *nodeFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*n = append(*n, struct{ name, url string }{name, url})
	return nil
}

func main() {
	var nodes, joins nodeFlags
	var (
		listen   = flag.String("listen", ":9090", "REST listen address")
		probe    = flag.Duration("probe", 2*time.Second, "health-probe and reconcile interval")
		pressure = flag.Float64("pressure", global.DefaultPressureFreeCPUFraction,
			"free-CPU fraction under which the reconcile loop reflavors NFs in place (negative disables)")
		id        = flag.String("id", "", "replica id: run as one member of an HA cluster (requires -join)")
		clusterID = flag.String("cluster-id", "un", "cluster name replicas must agree on before gossiping")
		advertise = flag.String("advertise", "", "base URL peers and redirected clients reach this replica on (default http://127.0.0.1<listen>)")
		lease     = flag.Duration("lease", time.Second, "leader lease duration; failover takes roughly one lease plus one election round")
	)
	flag.Var(&nodes, "node", "pre-register a node as name=url (repeatable; in HA mode only the leader registers)")
	flag.Var(&joins, "join", "HA cluster peer as id=url (repeatable; listing this replica itself is optional)")
	flag.Parse()

	orch := global.New(global.Config{
		ProbeInterval:           *probe,
		PressureFreeCPUFraction: *pressure,
		Logf:                    log.Printf,
	})
	client := &http.Client{Timeout: 5 * time.Second}

	var clu *cluster.Cluster
	if *id != "" {
		selfAddr := *advertise
		if selfAddr == "" {
			host := *listen
			if strings.HasPrefix(host, ":") {
				host = "127.0.0.1" + host
			}
			selfAddr = "http://" + host
		}
		var peers []cluster.PeerSpec
		self := false
		for _, p := range joins {
			addr := p.url
			if p.name == *id {
				self = true
				if *advertise != "" {
					addr = *advertise
				}
			}
			peers = append(peers, cluster.PeerSpec{ID: p.name, Addr: addr})
		}
		if !self {
			peers = append(peers, cluster.PeerSpec{ID: *id, Addr: selfAddr})
		}
		if len(peers) < 2 {
			log.Fatalf("un-global: -id %q needs at least one -join peer", *id)
		}
		c, err := global.BuildHA(orch, cluster.Options{
			ID:            *id,
			ClusterID:     *clusterID,
			Peers:         peers,
			Transport:     cluster.NewHTTPTransport(peers, nil),
			LeaseDuration: *lease,
		}, nil)
		if err != nil {
			log.Fatalf("un-global: %v", err)
		}
		clu = c
	}

	if clu == nil {
		for _, n := range nodes {
			if err := orch.AddNode(global.NewHTTPNode(n.name, n.url, client)); err != nil {
				log.Fatalf("un-global: %v", err)
			}
			fmt.Fprintf(os.Stderr, "un-global: node %q registered at %s\n", n.name, n.url)
		}
	} else if len(nodes) > 0 {
		// Only the leader may mutate desired state; wait out the first
		// election, then register the -node fleet if the lease landed
		// here. On a follower the flags are informational — the leader
		// replica registers its own, and the intent replicates back.
		go func() {
			for {
				st := clu.ClusterStatus()
				if st.Leader == "" {
					time.Sleep(200 * time.Millisecond)
					continue
				}
				if !st.IsLeader {
					log.Printf("un-global: follower of %s: -node registrations left to the leader", st.Leader)
					return
				}
				for _, n := range nodes {
					if err := orch.AddNode(global.NewHTTPNode(n.name, n.url, client)); err != nil {
						log.Printf("un-global: registering node %q: %v", n.name, err)
						continue
					}
					log.Printf("un-global: node %q registered at %s", n.name, n.url)
				}
				return
			}
		}()
	}

	orch.Start()
	defer orch.Close()

	srv := rest.NewGlobal(orch, client)
	if clu != nil {
		srv.EnableCluster(clu)
		clu.Start()
		defer clu.Close()
		fmt.Fprintf(os.Stderr, "un-global: HA replica %q in cluster %q with %d peers (lease %v); membership on GET /v1/cluster\n",
			*id, *clusterID, len(joins), *lease)
	}

	fmt.Fprintf(os.Stderr, "un-global: REST listening on %s (probe every %v)\n", *listen, *probe)
	fmt.Fprintf(os.Stderr, "un-global: fleet telemetry on GET /metrics (per-node labels) and GET /events\n")
	fmt.Fprintf(os.Stderr, "un-global: NF hot-swap on POST /v1/graphs/{id}/nfs/{nf}/reflavor, replica resize on POST /v1/graphs/{id}/nfs/{nf}/scale (pressure relief at %.0f%% free CPU)\n", *pressure*100)
	if err := http.ListenAndServe(*listen, srv); err != nil {
		log.Fatalf("un-global: %v", err)
	}
}
