// Command un-global runs the global orchestrator daemon: one control plane
// over a fleet of Universal Nodes (each a cmd/un-orchestrator daemon).
// Nodes register over the REST interface (or with -node at startup), inter-
// node links are declared with POST /v1/links, and NF-FGs submitted with
// PUT /v1/graphs/{id} are partitioned across the fleet by the resource-
// aware placement scheduler. A reconcile loop probes node health and
// reschedules graphs off dead nodes. The legacy unversioned routes
// (/NF-FG, /nodes, ...) remain as deprecated aliases.
//
// Usage:
//
//	un-global [-listen :9090] [-probe 2s]
//	          [-node name=http://host:8080 ...]
//
// Example:
//
//	un-orchestrator -listen :8081 -name n1 -interfaces lan,trunk &
//	un-orchestrator -listen :8082 -name n2 -interfaces trunk,wan &
//	un-global -listen :9090 -node n1=http://127.0.0.1:8081 \
//	                        -node n2=http://127.0.0.1:8082
//	curl -X POST :9090/v1/links -d '{"a-node":"n1","a-if":"trunk",
//	                                 "b-node":"n2","b-if":"trunk"}'
//	curl -X PUT :9090/v1/graphs/svc -d @graph.json
//	curl :9090/v1/graphs/svc/placement
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/global"
	"repro/internal/rest"
)

// nodeFlags collects repeated -node name=url flags.
type nodeFlags []struct{ name, url string }

func (n *nodeFlags) String() string { return fmt.Sprintf("%v", *n) }

func (n *nodeFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*n = append(*n, struct{ name, url string }{name, url})
	return nil
}

func main() {
	var nodes nodeFlags
	var (
		listen   = flag.String("listen", ":9090", "REST listen address")
		probe    = flag.Duration("probe", 2*time.Second, "health-probe and reconcile interval")
		pressure = flag.Float64("pressure", global.DefaultPressureFreeCPUFraction,
			"free-CPU fraction under which the reconcile loop reflavors NFs in place (negative disables)")
	)
	flag.Var(&nodes, "node", "pre-register a node as name=url (repeatable)")
	flag.Parse()

	orch := global.New(global.Config{
		ProbeInterval:           *probe,
		PressureFreeCPUFraction: *pressure,
		Logf:                    log.Printf,
	})
	client := &http.Client{Timeout: 5 * time.Second}
	for _, n := range nodes {
		if err := orch.AddNode(global.NewHTTPNode(n.name, n.url, client)); err != nil {
			log.Fatalf("un-global: %v", err)
		}
		fmt.Fprintf(os.Stderr, "un-global: node %q registered at %s\n", n.name, n.url)
	}
	orch.Start()
	defer orch.Close()

	fmt.Fprintf(os.Stderr, "un-global: REST listening on %s (probe every %v)\n", *listen, *probe)
	fmt.Fprintf(os.Stderr, "un-global: fleet telemetry on GET /metrics (per-node labels) and GET /events\n")
	fmt.Fprintf(os.Stderr, "un-global: NF hot-swap on POST /v1/graphs/{id}/nfs/{nf}/reflavor, replica resize on POST /v1/graphs/{id}/nfs/{nf}/scale (pressure relief at %.0f%% free CPU)\n", *pressure*100)
	if err := http.ListenAndServe(*listen, rest.NewGlobal(orch, client)); err != nil {
		log.Fatalf("un-global: %v", err)
	}
}
