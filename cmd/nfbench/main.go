// Command nfbench regenerates the paper's evaluation from the command line:
// Table 1 (IPsec throughput / RAM / image size across KVM, Docker and
// native execution) and the ablation experiments of DESIGN.md §5.
//
// Usage:
//
//	nfbench               # everything
//	nfbench -table 1      # Table 1 only
//	nfbench -ablations    # ablations only
//	nfbench -packets N    # traffic volume per measurement (default 2000)
//	nfbench -batch N      # frames per injected burst for Table 1
//	                      # (default measure.DefaultBatch; 1 = per-frame)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	un "repro"
	"repro/internal/bench"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate only this table (1)")
		ablations = flag.Bool("ablations", false, "run only the ablations")
		packets   = flag.Int("packets", 2000, "packets per throughput measurement")
		batch     = flag.Int("batch", 0, "frames per injected burst for Table 1 (0 = default burst, 1 = frame at a time)")
	)
	flag.Parse()

	runTable1 := !*ablations
	runAblations := *table == 0
	if *table != 0 && *table != 1 {
		log.Fatalf("nfbench: the paper has only Table 1 (got -table %d)", *table)
	}
	if *table == 1 {
		runAblations = false
	}

	if runTable1 {
		rows, err := bench.Table1Batch(*packets, *batch)
		if err != nil {
			log.Fatalf("nfbench: %v", err)
		}
		fmt.Print(bench.FormatTable1(rows))
		fmt.Println()
	}
	if runAblations {
		if err := printAblations(*packets); err != nil {
			log.Fatalf("nfbench: %v", err)
		}
	}
}

func printAblations(packets int) error {
	fmt.Println("A1: sharable NNF (one native firewall vs per-tenant containers)")
	fmt.Printf("%8s  %12s  %14s  %12s  %14s\n",
		"tenants", "shared MB", "exclusive MB", "shared Mbps", "exclusive Mbps")
	for _, tenants := range []int{2, 4, 8} {
		res, err := bench.SharableNNF(tenants, packets)
		if err != nil {
			return err
		}
		fmt.Printf("%8d  %12.1f  %14.1f  %12.0f  %14.0f\n",
			res.Tenants, res.SharedRAMMB, res.ExclusiveRAMMB, res.SharedMbps, res.ExclusiveMbps)
	}
	fmt.Println()

	fmt.Println("A2: single-interface adaptation layer overhead (wall clock)")
	ad, err := bench.AdaptationLayer(packets)
	if err != nil {
		return err
	}
	fmt.Printf("%12s  %.0f ns/pkt\n%12s  %.0f ns/pkt\n\n",
		"direct", ad.DirectNsPerPkt, "adapted", ad.AdaptedNsPerPkt)

	fmt.Println("A3: packet path sweep, simulated Mbps (IPsec workload)")
	fmt.Printf("%8s  %8s  %8s  %8s  %8s\n", "frame B", "native", "docker", "vm", "dpdk")
	for _, row := range bench.PacketPathSweep([]int{64, 128, 256, 512, 1024, 1500}) {
		fmt.Printf("%8d  %8.0f  %8.0f  %8.0f  %8.0f\n",
			row.FrameSize, row.NativeMbps, row.DockerMbps, row.VMMbps, row.DPDKMbps)
	}
	fmt.Println()

	fmt.Println("A4: NF start latency per technology (simulated)")
	lat, err := bench.StartupLatencies()
	if err != nil {
		return err
	}
	for _, f := range bench.Table1Flavors {
		fmt.Printf("%12s  %v\n", f.Platform, lat[f.Tech])
	}

	// A5 lives in the test suite (scheduler placement matrix); point at it.
	fmt.Fprintln(os.Stderr, "\nA5 (scheduler placement matrix) runs as:"+
		" go test -run TestSchedulerPlacementMatrix ./internal/orchestrator/")
	_ = un.TechAny // keep the public package linked for docs
	return nil
}
