// Command nodectl inspects a running un-orchestrator node: it renders the
// live Figure-1 topology (text or Graphviz DOT) and the node status.
//
// Usage:
//
//	nodectl [-server http://localhost:8080] graph          # text topology
//	nodectl [-server ...] graph -format dot               # Graphviz
//	nodectl [-server ...] status                          # node status JSON
//	nodectl [-server ...] capture eth0 -duration 2s -o out.pcap
//	nodectl [-server ...] reflavor <graph> <nf> [tech]    # hot-swap an NF's
//	        execution technology (omit tech to let the policy choose)
//	nodectl [-server ...] scale <graph> <nf> <replicas>   # resize an NF's
//	        replica set with live flow-state migration
//
// nodectl speaks the versioned /v1 API surface.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"repro/internal/cliutil"
)

// client retries transient failures with backoff and follows HA leader
// redirects, so nodectl works against any replica of a clustered control
// plane (or across a brief failover).
var client = cliutil.New()

func main() {
	server := flag.String("server", "http://localhost:8080", "un-orchestrator base URL")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "graph":
		format := ""
		fs := flag.NewFlagSet("graph", flag.ExitOnError)
		fs.StringVar(&format, "format", "", "output format: text (default), dot, json")
		_ = fs.Parse(args[1:])
		url := *server + "/v1/topology"
		if format != "" {
			url += "?format=" + format
		}
		err = fetch(url, false)
	case "status":
		err = fetch(*server+"/v1/status", true)
	case "capture":
		fs := flag.NewFlagSet("capture", flag.ExitOnError)
		duration := fs.String("duration", "1s", "capture duration")
		out := fs.String("o", "", "output file (default <iface>.pcap)")
		rest := args[1:]
		var iface string
		if len(rest) > 0 && rest[0][0] != '-' {
			iface, rest = rest[0], rest[1:]
		}
		_ = fs.Parse(rest)
		if iface == "" && fs.NArg() > 0 {
			iface = fs.Arg(0)
		}
		if iface == "" {
			usage()
			os.Exit(2)
		}
		err = capture(*server, iface, *duration, *out)
	case "reflavor":
		if len(args) < 3 {
			usage()
			os.Exit(2)
		}
		tech := ""
		if len(args) > 3 {
			tech = args[3]
		}
		err = reflavor(*server, args[1], args[2], tech)
	case "scale":
		if len(args) != 4 {
			usage()
			os.Exit(2)
		}
		err = scale(*server, args[1], args[2], args[3])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodectl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: nodectl [-server URL] <command>

commands:
  graph [-format dot|json]           render the live node topology (paper Figure 1)
  status                             print node status
  capture <iface> [-duration 1s] [-o file.pcap]
                                     capture interface traffic to a pcap file
  reflavor <graph> <nf> [vm|docker|dpdk|native]
                                     hot-swap one NF's execution technology in
                                     place (no tech: the placement policy picks)
  scale <graph> <nf> <replicas>      resize one NF's replica set; flow state
                                     migrates live, no packets are lost
`)
}

func reflavor(server, graph, nf, tech string) error {
	body, err := json.Marshal(map[string]string{"technology": tech})
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v1/graphs/%s/nfs/%s/reflavor", server, graph, nf)
	return postJSON(url, body)
}

func scale(server, graph, nf, replicas string) error {
	n, err := strconv.Atoi(replicas)
	if err != nil {
		return fmt.Errorf("replicas %q: not a number", replicas)
	}
	body, err := json.Marshal(map[string]int{"replicas": n})
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v1/graphs/%s/nfs/%s/scale", server, graph, nf)
	return postJSON(url, body)
}

func postJSON(url string, body []byte) error {
	resp, err := client.Post(url, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(reply))
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, reply, "", "  ") == nil {
		reply = pretty.Bytes()
	}
	fmt.Println(string(bytes.TrimSpace(reply)))
	return nil
}

func capture(server, iface, duration, out string) error {
	if out == "" {
		out = iface + ".pcap"
	}
	// Captures stream for their whole duration: use an untimed client so
	// a long -duration is not cut off by the retry client's timeout.
	long := cliutil.New()
	long.HTTP = &http.Client{}
	resp, err := long.Get(server + "/v1/capture/" + iface + "?duration=" + duration)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nodectl: wrote %d bytes to %s\n", n, out)
	return nil
}

func fetch(url string, pretty bool) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	if pretty {
		var buf bytes.Buffer
		if err := json.Indent(&buf, body, "", "  "); err == nil {
			body = buf.Bytes()
		}
	}
	fmt.Printf("%s\n", bytes.TrimSpace(body))
	return nil
}
