package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
)

// TestRunWritesReportAndSummary drives the CLI exactly as the CI chaos job
// does: JSON artifact to -out, markdown appended to -md, exit 0 when every
// scenario stays within budget.
func TestRunWritesReportAndSummary(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "report.json")
	mdPath := filepath.Join(dir, "summary.md")
	var stdout, stderr bytes.Buffer

	code := run([]string{"-conns", "4", "-out", outPath, "-md", mdPath, "-v"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "within budget") {
		t.Errorf("stdout = %q", stdout.String())
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep chaos.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) < 4 || !rep.Pass {
		t.Errorf("report = %d scenarios, pass=%v", len(rep.Scenarios), rep.Pass)
	}

	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "node-kill-active-standby") {
		t.Errorf("summary misses the acceptance scenario:\n%s", md)
	}
	// -md appends (the step summary may already hold the bench delta).
	if code := run([]string{"-conns", "4", "-md", mdPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("second run exit = %d", code)
	}
	md2, _ := os.ReadFile(mdPath)
	if len(md2) <= len(md) {
		t.Error("second -md run did not append")
	}
}

// TestRunMarkdownToStdout: without -md the summary lands on stdout.
func TestRunMarkdownToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-conns", "2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "| Scenario |") {
		t.Errorf("no markdown table on stdout:\n%s", stdout.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	// An unwritable -out path is an error exit, not a crash.
	if code := run([]string{"-conns", "2", "-out", filepath.Join(t.TempDir(), "no", "such", "dir", "r.json")}, &stdout, &stderr); code != 1 {
		t.Errorf("unwritable -out exit = %d, want 1", code)
	}
}
