// Command chaos runs the fault-injection harness outside `go test`: it
// builds in-process fleets, injects NF crashes, node kills, link cuts and
// REST control-plane faults under live traffic, and gates the measured
// packet loss, state loss and reconvergence time against each scenario's
// budget. Exit status 1 means a budget violation — CI wires that straight
// into the build result. The JSON report (-out) is the CI artifact; the
// markdown summary (-md, appended) feeds $GITHUB_STEP_SUMMARY.
//
// The nightly soak raises -conns and -repeat to shake out races and state
// leaks a single pass can miss, and runs -elections to cycle a 3-replica
// control-plane cluster through repeated leader kills, publishing the
// median failover time.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/chaos"
)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	conns := fs.Int("conns", 16, "stateful connections established per scenario before the fault")
	repeat := fs.Int("repeat", 1, "times each scenario is rerun (soak mode raises this)")
	out := fs.String("out", "", "write the JSON report to this file")
	md := fs.String("md", "", "append the markdown summary to this file (e.g. $GITHUB_STEP_SUMMARY); stdout when empty")
	elections := fs.Int("elections", 0, "instead of the scenario suite, soak a 3-replica cluster through this many leader-kill election cycles")
	verbose := fs.Bool("v", false, "log harness progress")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logger := log.New(stderr, "", log.LstdFlags)
	if *elections > 0 {
		return runElectionSoak(*elections, *md, *verbose, logger, stdout)
	}
	opts := chaos.Options{Conns: *conns, Repeat: *repeat}
	if *verbose {
		opts.Logf = logger.Printf
	}
	start := time.Now()
	rep := chaos.Run(opts)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			logger.Printf("chaos: %v", err)
			return 1
		}
		if err := rep.WriteJSON(f); err != nil {
			logger.Printf("chaos: writing report: %v", err)
			return 1
		}
		if err := f.Close(); err != nil {
			logger.Printf("chaos: writing report: %v", err)
			return 1
		}
	}
	if *md != "" {
		f, err := os.OpenFile(*md, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			logger.Printf("chaos: %v", err)
			return 1
		}
		if err := rep.WriteMarkdown(f); err != nil {
			logger.Printf("chaos: writing summary: %v", err)
			return 1
		}
		if err := f.Close(); err != nil {
			logger.Printf("chaos: writing summary: %v", err)
			return 1
		}
	} else if err := rep.WriteMarkdown(stdout); err != nil {
		logger.Printf("chaos: %v", err)
		return 1
	}

	if err := rep.Gate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "chaos: all %d scenarios within budget (%s)\n",
		len(rep.Scenarios), time.Since(start).Round(time.Millisecond))
	return 0
}

// runElectionSoak is the nightly election-latency gate: it cycles a
// 3-replica cluster through n leader kills, appends the median/worst
// failover to the markdown summary, and fails if any failover breached
// the 1s reconvergence budget the chaos scenarios gate.
func runElectionSoak(n int, md string, verbose bool, logger *log.Logger, stdout io.Writer) int {
	var logf func(format string, args ...any)
	if verbose {
		logf = logger.Printf
	}
	times, err := chaos.ElectionSoak(n, logf)
	if err != nil {
		logger.Printf("chaos: election soak: %v", err)
		return 1
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	worst := sorted[len(sorted)-1]
	summary := fmt.Sprintf("## Election soak\n\n%d leader-kill cycles: median failover %s, worst %s\n",
		len(times), median.Round(time.Millisecond), worst.Round(time.Millisecond))
	if md != "" {
		f, err := os.OpenFile(md, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			logger.Printf("chaos: %v", err)
			return 1
		}
		_, werr := io.WriteString(f, summary)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			logger.Printf("chaos: writing summary: %v", werr)
			return 1
		}
	}
	fmt.Fprint(stdout, summary)
	if worst > time.Second {
		logger.Printf("chaos: worst failover %v exceeds the 1s budget", worst)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
