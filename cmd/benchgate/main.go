// Command benchgate is the benchmark regression gate of the CI pipeline: it
// compares a current `go test -json` benchmark run against the committed
// baseline (BENCH_BASELINE.json) and fails when a gated benchmark's ns/op
// regressed beyond the allowed percentage. Independently of the baseline it
// also enforces an absolute allocs/op ceiling (default 0) on the benchmarks
// matching -alloc-gate, so the zero-allocation hot path cannot silently
// start allocating.
//
// Both inputs are test2json streams (`go test -bench ... -json`). Runs with
// -count>1 are collapsed per benchmark by median, which is robust against a
// single noisy iteration. The gate regexp is matched against the full
// benchmark name (sub-benchmarks included, GOMAXPROCS suffix stripped); a
// gated benchmark present in the baseline but missing from the current run
// fails the gate too, so a benchmark cannot dodge it by being deleted.
//
// With -extract-dir, the plain benchmark text of both runs is written as
// baseline.txt and current.txt, ready for `benchstat baseline.txt
// current.txt` to render the human-readable delta report CI uploads as an
// artifact.
//
// Usage:
//
//	benchgate -baseline BENCH_BASELINE.json -current bench-current.json \
//	          [-gate 'BenchmarkPipelineCached|BenchmarkTable1Throughput'] \
//	          [-max-regress 30] [-extract-dir out]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the test2json event stream benchgate reads.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// result is one benchmark's collapsed measurement.
type result struct {
	name   string
	nsop   []float64 // one per -count run
	allocs []float64 // allocs/op per -count run, if reported
}

func (r *result) median() float64 { return median(r.nsop) }

// medianAllocs returns the collapsed allocs/op and whether the benchmark
// reported the metric at all (b.ReportAllocs or -benchmem).
func (r *result) medianAllocs() (float64, bool) {
	if len(r.allocs) == 0 {
		return 0, false
	}
	return median(r.allocs), true
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// benchLine matches a benchmark result line: name, iterations, ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.eE+]+) ns/op`)

// allocLine matches the allocs/op metric later in the same result line.
var allocLine = regexp.MustCompile(`\s([0-9.eE+]+) allocs/op`)

// textLine matches the lines worth extracting for benchstat.
var textLine = regexp.MustCompile(`^(goos:|goarch:|pkg:|cpu:|Benchmark)`)

// parseRun reads one test2json file into per-benchmark results plus the
// plain benchmark text. A benchmark's name and its measurements arrive in
// separate output events (test2json splits mid-line), so the console output
// is first reconstructed by concatenating every output payload, then split
// back into real lines.
func parseRun(path string) (map[string]*result, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	var console strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, "", fmt.Errorf("%s: not a test2json stream: %w", path, err)
		}
		if ev.Action == "output" {
			console.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	results := make(map[string]*result)
	var text strings.Builder
	for _, out := range strings.Split(console.String(), "\n") {
		if !textLine.MatchString(out) {
			continue
		}
		m := benchLine.FindStringSubmatch(out)
		if m == nil {
			// Keep headers (goos:, cpu:, ...) for benchstat; drop bare
			// benchmark-name progress lines without measurements.
			if !strings.HasPrefix(out, "Benchmark") {
				text.WriteString(out)
				text.WriteByte('\n')
			}
			continue
		}
		text.WriteString(out)
		text.WriteByte('\n')
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		r := results[m[1]]
		if r == nil {
			r = &result{name: m[1]}
			results[m[1]] = r
		}
		r.nsop = append(r.nsop, ns)
		if am := allocLine.FindStringSubmatch(out); am != nil {
			if a, err := strconv.ParseFloat(am[1], 64); err == nil {
				r.allocs = append(r.allocs, a)
			}
		}
	}
	return results, text.String(), nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline test2json benchmark run")
		currentPath  = flag.String("current", "", "current test2json benchmark run")
		gate         = flag.String("gate", "BenchmarkPipelineCached|BenchmarkPipelineParallel|BenchmarkPipelineBurst|BenchmarkTable1Throughput|BenchmarkReflavor|BenchmarkParallelDeploy|BenchmarkScaleOutThroughput|BenchmarkStateMigration",
			"regexp of benchmark names the gate enforces")
		maxRegress = flag.Float64("max-regress", 30, "max allowed ns/op regression percent on gated benchmarks")
		allocGate  = flag.String("alloc-gate", "^BenchmarkPipelineCached/hit$|^BenchmarkPipelineParallel/|^BenchmarkPipelineBurst/",
			"regexp of benchmarks whose allocs/op must not exceed -max-allocs (checked on the current run, independent of the baseline)")
		maxAllocs  = flag.Float64("max-allocs", 0, "max allowed allocs/op on alloc-gated benchmarks")
		extractDir = flag.String("extract-dir", "", "write baseline.txt/current.txt here for benchstat")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	gateRE, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -gate: %v\n", err)
		os.Exit(2)
	}
	allocRE, err := regexp.Compile(*allocGate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -alloc-gate: %v\n", err)
		os.Exit(2)
	}
	base, baseText, err := parseRun(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, curText, err := parseRun(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if *extractDir != "" {
		if err := os.MkdirAll(*extractDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		for name, text := range map[string]string{"baseline.txt": baseText, "current.txt": curText} {
			if err := os.WriteFile(filepath.Join(*extractDir, name), []byte(text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
				os.Exit(2)
			}
		}
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	fmt.Printf("%-52s %14s %14s %9s %s\n", "benchmark", "base ns/op", "cur ns/op", "delta", "gate")
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		gated := gateRE.MatchString(name)
		mark := ""
		if gated {
			mark = "gated"
		}
		if !ok {
			if gated {
				failed = true
				fmt.Printf("%-52s %14.1f %14s %9s %s MISSING\n", name, b.median(), "-", "-", mark)
			}
			continue
		}
		bm, cm := b.median(), c.median()
		delta := (cm - bm) / bm * 100
		verdict := ""
		if gated && delta > *maxRegress {
			failed = true
			verdict = fmt.Sprintf(" FAIL (> %.0f%%)", *maxRegress)
		}
		fmt.Printf("%-52s %14.1f %14.1f %+8.1f%% %s%s\n", name, bm, cm, delta, mark, verdict)
	}
	for name := range cur {
		if _, known := base[name]; !known && gateRE.MatchString(name) {
			fmt.Printf("%-52s (new, not in baseline)\n", name)
		}
	}
	// The allocation gate is absolute, not relative: a zero-alloc hot path
	// must stay zero-alloc regardless of what the baseline recorded.
	curNames := make([]string, 0, len(cur))
	for name := range cur {
		curNames = append(curNames, name)
	}
	sort.Strings(curNames)
	for _, name := range curNames {
		if !allocRE.MatchString(name) {
			continue
		}
		a, reported := cur[name].medianAllocs()
		switch {
		case !reported:
			failed = true
			fmt.Printf("%-52s allocs/op not reported FAIL (alloc gate needs b.ReportAllocs)\n", name)
		case a > *maxAllocs:
			failed = true
			fmt.Printf("%-52s %14.1f allocs/op FAIL (> %g)\n", name, a, *maxAllocs)
		default:
			fmt.Printf("%-52s %14.1f allocs/op alloc-gated ok\n", name, a)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: gated benchmark regressed more than %.0f%%, went missing, or broke the allocs/op gate\n", *maxRegress)
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
