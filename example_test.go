package un_test

import (
	"fmt"
	"log"

	un "repro"
	"repro/internal/measure"
)

// ExampleNewNode deploys the paper's CPE scenario — an IPsec endpoint on a
// home router — and reports where the scheduler placed it.
func ExampleNewNode() {
	node, err := un.NewNode(un.Config{Name: "home-router"})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	graph := &un.Graph{
		ID: "vpn",
		NFs: []un.NF{{
			ID: "vpn", Name: "ipsec",
			Ports: []un.NFPort{{ID: "0"}, {ID: "1"}},
			Config: map[string]string{
				"local": "192.0.2.1", "remote": "203.0.113.9",
				"spi": "4096", "key": "000102030405060708090a0b0c0d0e0f10111213",
			},
		}},
		Endpoints: []un.Endpoint{
			{ID: "lan", Type: un.EPInterface, Interface: "eth0"},
			{ID: "wan", Type: un.EPInterface, Interface: "eth1"},
		},
		Rules: []un.FlowRule{
			{ID: "r1", Priority: 10, Match: un.RuleMatch{PortIn: un.EndpointRef("lan")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.NFPortRef("vpn", "0")}}},
			{ID: "r2", Priority: 10, Match: un.RuleMatch{PortIn: un.NFPortRef("vpn", "1")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.EndpointRef("wan")}}},
		},
	}
	if err := node.Deploy(graph); err != nil {
		log.Fatal(err)
	}
	placements, _ := node.Placements("vpn")
	fmt.Println("placed as:", placements["vpn"])

	// Push 1000 MTU frames through the chain with the iPerf stand-in.
	lan, _ := node.InterfacePort("eth0")
	wan, _ := node.InterfacePort("eth1")
	rep, err := measure.Run(lan, wan, node.Clock(), measure.Spec{
		Packets: 1000, FrameSize: 1500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered: %d/%d frames at %.0f Mbps (simulated)\n",
		rep.RxPackets, rep.TxPackets, rep.MbpsGoodput())
	// Output:
	// placed as: native
	// delivered: 1000/1000 frames at 1094 Mbps (simulated)
}
