package un_test

import (
	"bytes"
	"testing"

	un "repro"
	"repro/internal/measure"
	"repro/internal/netdev"
	"repro/internal/pcap"
	"repro/internal/pkt"
)

func ipsecConfig() map[string]string {
	return map[string]string{
		"local":  "192.0.2.1",
		"remote": "203.0.113.9",
		"spi":    "4096",
		"key":    "000102030405060708090a0b0c0d0e0f10111213",
	}
}

// cpeGraph is the paper's validation scenario as a public-API value.
func cpeGraph(id string, tech un.Technology) *un.Graph {
	return &un.Graph{
		ID: id,
		NFs: []un.NF{{
			ID: "vpn", Name: "ipsec",
			Ports:                []un.NFPort{{ID: "0"}, {ID: "1"}},
			TechnologyPreference: tech,
			Config:               ipsecConfig(),
		}},
		Endpoints: []un.Endpoint{
			{ID: "lan", Type: un.EPInterface, Interface: "eth0"},
			{ID: "wan", Type: un.EPInterface, Interface: "eth1"},
		},
		Rules: []un.FlowRule{
			{ID: "r1", Priority: 10, Match: un.RuleMatch{PortIn: un.EndpointRef("lan")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.NFPortRef("vpn", "0")}}},
			{ID: "r2", Priority: 10, Match: un.RuleMatch{PortIn: un.NFPortRef("vpn", "1")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.EndpointRef("wan")}}},
			{ID: "r3", Priority: 10, Match: un.RuleMatch{PortIn: un.EndpointRef("wan")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.NFPortRef("vpn", "1")}}},
			{ID: "r4", Priority: 10, Match: un.RuleMatch{PortIn: un.NFPortRef("vpn", "0")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.EndpointRef("lan")}}},
		},
	}
}

func TestNodeLifecycle(t *testing.T) {
	node, err := un.NewNode(un.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Deploy(cpeGraph("g1", un.TechAny)); err != nil {
		t.Fatal(err)
	}
	if ids := node.GraphIDs(); len(ids) != 1 || ids[0] != "g1" {
		t.Fatalf("GraphIDs = %v", ids)
	}
	if g, ok := node.Graph("g1"); !ok || g.ID != "g1" {
		t.Error("Graph lookup failed")
	}
	pl, ok := node.Placements("g1")
	if !ok || pl["vpn"] != un.TechNative {
		t.Errorf("placements = %v", pl)
	}
	ram, ok := node.InstanceRAM("g1", "vpn")
	if !ok || ram == 0 {
		t.Error("InstanceRAM failed")
	}
	usedCPU, totalCPU, usedRAM, totalRAM := node.Usage()
	if usedCPU == 0 || totalCPU != 16000 || usedRAM == 0 || totalRAM != 8*un.GB {
		t.Errorf("usage = %d/%d %d/%d", usedCPU, totalCPU, usedRAM, totalRAM)
	}
	if err := node.Undeploy("g1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := node.Graph("g1"); ok {
		t.Error("graph survived undeploy")
	}
}

func TestNodeTrafficThroughPublicAPI(t *testing.T) {
	node, err := un.NewNode(un.Config{Name: "cpe"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Deploy(cpeGraph("vpn", un.TechNative)); err != nil {
		t.Fatal(err)
	}
	lan, ok := node.InterfacePort("eth0")
	if !ok {
		t.Fatal("no eth0")
	}
	wan, ok := node.InterfacePort("eth1")
	if !ok {
		t.Fatal("no eth1")
	}
	rep, err := measure.Run(lan, wan, node.Clock(), measure.Spec{Packets: 200, FrameSize: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RxPackets != 200 || rep.LossRate() != 0 {
		t.Fatalf("report = %v", rep)
	}
	if rep.MbpsVirtual() <= 0 {
		t.Error("no throughput measured")
	}
}

func TestNodeConfigDefaults(t *testing.T) {
	node, err := un.NewNode(un.Config{
		Name:         "tiny-cpe",
		Interfaces:   []string{"wan0"},
		CPUMillis:    1000,
		RAMBytes:     256 * un.MB,
		Capabilities: []string{"nnf:firewall"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	// A VM cannot deploy on this node: no kvm capability and no RAM.
	g := cpeGraph("g", un.TechVM)
	g.Endpoints = []un.Endpoint{
		{ID: "lan", Type: un.EPInterface, Interface: "wan0"},
		{ID: "wan", Type: un.EPInterface, Interface: "wan0"},
	}
	if err := node.Deploy(g); err == nil {
		t.Error("VM deployed on a node without kvm")
	}
	topo := node.Topology()
	if topo.NodeName != "tiny-cpe" || len(topo.Interfaces) != 1 {
		t.Errorf("topology = %+v", topo)
	}
}

func TestNodeImageSizes(t *testing.T) {
	node, err := un.NewNode(un.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	for img, wantMB := range map[string]uint64{
		"ipsec:vm": 522, "ipsec:docker": 240, "ipsec:native": 5,
	} {
		size, err := node.ImageDiskSize(img)
		if err != nil {
			t.Fatal(err)
		}
		if size/un.MB != wantMB {
			t.Errorf("%s = %d MB, want %d", img, size/un.MB, wantMB)
		}
	}
	if _, err := node.ImageDiskSize("ghost:img"); err == nil {
		t.Error("unknown image size returned")
	}
}

func TestNodeESPOnTheWire(t *testing.T) {
	node, err := un.NewNode(un.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Deploy(cpeGraph("vpn", un.TechNative)); err != nil {
		t.Fatal(err)
	}
	lan, _ := node.InterfacePort("eth0")
	wan, _ := node.InterfacePort("eth1")
	spec := measure.Spec{Packets: 1, FrameSize: 1000}
	if _, err := measure.Run(lan, wan, node.Clock(), spec); err != nil {
		t.Fatal(err)
	}
	// Peek at what actually left the WAN: must be ESP with our SPI...
	// consumed by measure.Run already, so send one more frame manually.
	frame, err := spec.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if err := lan.Send(netdev.Frame{Data: frame}); err != nil {
		t.Fatal(err)
	}
	out, ok := wan.TryRecv()
	if !ok {
		t.Fatal("no WAN frame")
	}
	p := pkt.NewPacket(out.Data, pkt.LayerTypeEthernet, pkt.Default)
	esp, isESP := p.Layer(pkt.LayerTypeESP).(*pkt.ESP)
	if !isESP {
		t.Fatalf("WAN traffic not ESP: %v", p)
	}
	if esp.SPI != 4096 {
		t.Errorf("SPI = %d, want 4096", esp.SPI)
	}
}

func TestCaptureInterfacePcap(t *testing.T) {
	node, err := un.NewNode(un.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Deploy(cpeGraph("vpn", un.TechNative)); err != nil {
		t.Fatal(err)
	}
	var lanCap, wanCap bytes.Buffer
	stopLan, err := node.CaptureInterface("eth0", &lanCap)
	if err != nil {
		t.Fatal(err)
	}
	stopWan, err := node.CaptureInterface("eth1", &wanCap)
	if err != nil {
		t.Fatal(err)
	}
	lan, _ := node.InterfacePort("eth0")
	if _, err := measure.Run(lan, mustPort(t, node, "eth1"), node.Clock(),
		measure.Spec{Packets: 5, FrameSize: 600}); err != nil {
		t.Fatal(err)
	}
	stopLan()
	stopWan()

	lanPkts, err := pcap.NewReader(bytes.NewReader(lanCap.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wanPkts, err := pcap.NewReader(bytes.NewReader(wanCap.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(lanPkts) != 5 || len(wanPkts) != 5 {
		t.Fatalf("captured %d lan / %d wan packets, want 5/5", len(lanPkts), len(wanPkts))
	}
	// The LAN capture holds cleartext UDP; the WAN capture holds ESP.
	lanP := pkt.NewPacket(lanPkts[0].Data, pkt.LayerTypeEthernet, pkt.Default)
	if lanP.Layer(pkt.LayerTypeUDP) == nil {
		t.Error("lan capture not cleartext")
	}
	wanP := pkt.NewPacket(wanPkts[0].Data, pkt.LayerTypeEthernet, pkt.Default)
	if wanP.Layer(pkt.LayerTypeESP) == nil {
		t.Error("wan capture not ESP")
	}
	// After stop, no more records accumulate.
	before := lanCap.Len()
	_ = lan.Send(netdev.Frame{Data: lanPkts[0].Data})
	if lanCap.Len() != before {
		t.Error("capture still active after stop")
	}
	if _, err := node.CaptureInterface("eth9", &lanCap); err == nil {
		t.Error("capture on unknown interface accepted")
	}
}

func mustPort(t *testing.T, node *un.Node, name string) *netdev.Port {
	t.Helper()
	p, ok := node.InterfacePort(name)
	if !ok {
		t.Fatalf("no interface %q", name)
	}
	return p
}
