package policy

import (
	"testing"

	"repro/internal/execenv"
	"repro/internal/nffg"
)

// flavorCands builds the ipsec template's three flavors as candidates in the
// seed's static preference order, on a node with the given headroom.
func flavorCands(freeCPU int) []Candidate {
	model := execenv.Default()
	mk := func(tech nffg.Technology, cpu int) Candidate {
		fl := FlavorOf(tech)
		return Candidate{
			Tech:          tech,
			CPUMillis:     cpu,
			RAMBytes:      model.BaseRAM(fl) + 20<<20,
			CostNs:        float64(model.PacketCost(fl, RefFrameBytes, 0)),
			FreeCPUMillis: freeCPU,
			FreeRAMBytes:  8 << 30,
			Linked:        true,
		}
	}
	return []Candidate{
		mk(nffg.TechNative, 250),
		mk(nffg.TechDocker, 500),
		mk(nffg.TechVM, 1000),
	}
}

func TestFirstFitKeepsSubmissionOrder(t *testing.T) {
	got := FirstFit{}.Rank(Request{}, flavorCands(16000))
	want := []nffg.Technology{nffg.TechNative, nffg.TechDocker, nffg.TechVM}
	for i, tech := range want {
		if got[i].Tech != tech {
			t.Fatalf("rank[%d] = %s, want %s", i, got[i].Tech, tech)
		}
	}
}

func TestFirstFitColocationDominates(t *testing.T) {
	cands := []Candidate{
		{Node: "a", FreeCPUMillis: 100},
		{Node: "b", FreeCPUMillis: 9000, Colocated: true},
	}
	got := FirstFit{}.Rank(Request{}, cands)
	if got[0].Node != "b" {
		t.Fatalf("first-fit must prefer the co-located host, got %q", got[0].Node)
	}
}

func TestBinPackPicksCheapestFlavor(t *testing.T) {
	got := BinPack{}.Rank(Request{}, flavorCands(16000))
	if got[0].Tech != nffg.TechNative {
		t.Fatalf("bin-pack on flavors must pick the lightest charge, got %s", got[0].Tech)
	}
}

func TestBinPackNodeOrdering(t *testing.T) {
	cands := []Candidate{
		{Node: "unlinked-huge", CPUMillis: 500, FreeCPUMillis: 90000},
		{Node: "linked-small", CPUMillis: 500, FreeCPUMillis: 4000, Linked: true},
		{Node: "linked-big", CPUMillis: 500, FreeCPUMillis: 12000, Linked: true},
		{Node: "colocated", CPUMillis: 500, FreeCPUMillis: 600, Colocated: true, Linked: true},
	}
	got := BinPack{}.Rank(Request{}, cands)
	want := []string{"colocated", "linked-big", "linked-small", "unlinked-huge"}
	for i, name := range want {
		if got[i].Node != name {
			t.Fatalf("rank[%d] = %q, want %q (full order %v)", i, got[i].Node, name, got)
		}
	}
}

func TestBinPackDoesNotMutateInput(t *testing.T) {
	cands := flavorCands(16000)
	first := cands[0].Tech
	// Input order is vm-last; ranking must not reorder the caller's slice.
	cands2 := []Candidate{cands[2], cands[0], cands[1]}
	_ = BinPack{}.Rank(Request{}, cands2)
	if cands2[0].Tech != nffg.TechVM || cands[0].Tech != first {
		t.Fatal("Rank mutated the input slice")
	}
}

func TestCostDrivenIdleVsLoaded(t *testing.T) {
	cands := flavorCands(16000)
	// Idle: the reservation dominates, the lightest flavor wins.
	idle := CostDriven{}.Rank(Request{}, cands)
	if idle[0].Tech != nffg.TechNative {
		t.Fatalf("cost policy at rate 0 should pick native (cheapest reservation), got %s", idle[0].Tech)
	}
	// The VM must always rank last: it is both the heaviest reservation and
	// the costliest per packet.
	loaded := CostDriven{}.Rank(Request{RatePPS: 500_000}, cands)
	if loaded[len(loaded)-1].Tech != nffg.TechVM {
		t.Fatalf("cost policy under load must rank the VM last, got %v", loaded)
	}
}

func TestCostDrivenRateFlipsChoice(t *testing.T) {
	// A DPDK-style candidate: expensive reservation, near-free packets.
	fast := Candidate{Tech: nffg.TechDPDK, CPUMillis: 2000, CostNs: 350, Linked: true}
	// A native-style candidate: cheap reservation, costlier packets.
	light := Candidate{Tech: nffg.TechNative, CPUMillis: 250, CostNs: 2053, Linked: true}
	idle := CostDriven{}.Rank(Request{}, []Candidate{fast, light})
	if idle[0].Tech != nffg.TechNative {
		t.Fatalf("at rate 0 the light flavor must win, got %s", idle[0].Tech)
	}
	// At 2 Mpps the per-packet gap (1703 ns) times the rate dwarfs the
	// 1750-millicore reservation gap.
	hot := CostDriven{}.Rank(Request{RatePPS: 2_000_000}, []Candidate{fast, light})
	if hot[0].Tech != nffg.TechDPDK {
		t.Fatalf("at 2 Mpps the fast flavor must win, got %s", hot[0].Tech)
	}
}

func TestScore(t *testing.T) {
	c := Candidate{CPUMillis: 100, CostNs: 1000}
	if got := Score(c, 0); got != 100*1e6 {
		t.Fatalf("idle score = %g, want reservation only", got)
	}
	if got := Score(c, 1000); got != 100*1e6+1000*1000 {
		t.Fatalf("loaded score = %g", got)
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"":          "first-fit",
		"first-fit": "first-fit",
		"bin-pack":  "bin-pack",
		"cost":      "cost",
	} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("ByName(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := ByName("random"); err == nil {
		t.Fatal("ByName must reject unknown policies")
	}
}

func TestFlavorOf(t *testing.T) {
	if FlavorOf(nffg.TechVM) != execenv.FlavorVM ||
		FlavorOf(nffg.TechDocker) != execenv.FlavorDocker ||
		FlavorOf(nffg.TechDPDK) != execenv.FlavorDPDK ||
		FlavorOf(nffg.TechNative) != execenv.FlavorNative {
		t.Fatal("FlavorOf mapping broken")
	}
}
