package policy

import "math"

// M/M/1-fed latency prediction: each candidate host is modeled as a single
// queueing station whose service time is the candidate's modeled per-packet
// cost (CostNs) and whose arrival rate is the host's observed aggregate
// packet rate plus the rate the placement would add. The predicted
// per-packet sojourn time W = 1/(mu - lambda) explodes as utilization
// rho = lambda/mu approaches 1, which is exactly the signal placement
// needs: a node with plenty of ledger headroom can still be a terrible
// host if its datapath is near saturation. The model is deliberately the
// simplest one the observed service rates can feed — PAPERS.md
// "Analytical Modeling for Virtualized Network Functions" motivates
// queueing-theoretic sizing, and M/M/1 is its first-order term.

// SaturationRho is the utilization at which a candidate is demoted:
// beyond rho = 0.9 the M/M/1 wait grows hyperbolically (10x the idle
// sojourn time), so the ranking treats such hosts as last-resort.
const SaturationRho = 0.9

// Utilization returns the predicted M/M/1 utilization rho of the candidate
// host if the placement lands there: observed host arrivals plus the new
// graph's rate, against the candidate's modeled service rate. Unknown
// rates or costs yield 0 (no demotion on missing data).
func Utilization(c Candidate, addPPS float64) float64 {
	if c.CostNs <= 0 {
		return 0
	}
	mu := 1e9 / c.CostNs // packets/second the station can serve
	lambda := c.HostRatePPS + addPPS
	if lambda <= 0 {
		return 0
	}
	return lambda / mu
}

// PredictedWaitNs returns the M/M/1 sojourn time (queueing + service) in
// nanoseconds for the candidate host at the given added rate. A saturated
// or oversaturated station (rho >= 1) predicts +Inf: the queue has no
// steady state.
func PredictedWaitNs(c Candidate, addPPS float64) float64 {
	if c.CostNs <= 0 {
		return 0
	}
	mu := 1e9 / c.CostNs
	lambda := c.HostRatePPS + addPPS
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1e9 / (mu - lambda)
}

// Saturated reports whether the candidate host would operate at or beyond
// SaturationRho, the point where BinPack and CostDriven demote it below
// every unsaturated candidate regardless of headroom.
func Saturated(c Candidate) bool {
	return Utilization(c, 0) >= SaturationRho
}
