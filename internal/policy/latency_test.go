package policy

import (
	"math"
	"testing"

	"repro/internal/nffg"
)

func TestUtilization(t *testing.T) {
	// 1000 ns/packet service time => mu = 1 Mpps.
	c := Candidate{CostNs: 1000, HostRatePPS: 500_000}
	if got := Utilization(c, 0); got != 0.5 {
		t.Fatalf("rho = %g, want 0.5", got)
	}
	if got := Utilization(c, 400_000); got != 0.9 {
		t.Fatalf("rho with added rate = %g, want 0.9", got)
	}
	// Missing data never demotes.
	if got := Utilization(Candidate{HostRatePPS: 1e9}, 0); got != 0 {
		t.Fatalf("rho without cost model = %g, want 0", got)
	}
	if got := Utilization(Candidate{CostNs: 1000}, 0); got != 0 {
		t.Fatalf("rho on an idle host = %g, want 0", got)
	}
}

func TestPredictedWaitNs(t *testing.T) {
	c := Candidate{CostNs: 1000}
	// Idle: sojourn time is the bare service time.
	if got := PredictedWaitNs(c, 0); got != 1000 {
		t.Fatalf("idle wait = %g ns, want 1000", got)
	}
	// At rho 0.9 the M/M/1 sojourn is 10x the service time.
	c.HostRatePPS = 900_000
	if got := PredictedWaitNs(c, 0); math.Abs(got-10_000) > 1e-6 {
		t.Fatalf("wait at rho 0.9 = %g ns, want 10000", got)
	}
	// At or past saturation there is no steady state.
	c.HostRatePPS = 1_000_000
	if got := PredictedWaitNs(c, 0); !math.IsInf(got, 1) {
		t.Fatalf("wait at rho 1 = %g, want +Inf", got)
	}
}

func TestSaturatedThreshold(t *testing.T) {
	c := Candidate{CostNs: 1000, HostRatePPS: 899_999}
	if Saturated(c) {
		t.Fatal("rho just under 0.9 flagged saturated")
	}
	c.HostRatePPS = 900_000
	if !Saturated(c) {
		t.Fatal("rho 0.9 not flagged saturated")
	}
}

// TestRankingDemotesSaturatedHosts: both load-aware policies must rank a
// near-saturated host below an unsaturated one even when the saturated
// host has far more ledger headroom — headroom on paper is worthless when
// the datapath has no service capacity left.
func TestRankingDemotesSaturatedHosts(t *testing.T) {
	saturated := Candidate{
		Node: "hot", Tech: nffg.TechDocker, CPUMillis: 500,
		FreeCPUMillis: 15_000, Linked: true,
		CostNs: 1000, HostRatePPS: 950_000, // rho 0.95
	}
	calm := Candidate{
		Node: "calm", Tech: nffg.TechDocker, CPUMillis: 500,
		FreeCPUMillis: 1_000, Linked: true,
		CostNs: 1000, HostRatePPS: 100_000, // rho 0.1
	}
	for _, pol := range []PlacementPolicy{BinPack{}, CostDriven{}} {
		got := pol.Rank(Request{}, []Candidate{saturated, calm})
		if got[0].Node != "calm" {
			t.Errorf("%T ranked the saturated host first: %v", pol, got)
		}
	}
	// Co-location still dominates saturation: staying on-node avoids a
	// stitch, which the ranking prices above queueing delay.
	saturated.Colocated = true
	got := BinPack{}.Rank(Request{}, []Candidate{saturated, calm})
	if got[0].Node != "hot" {
		t.Errorf("co-located saturated host demoted below remote: %v", got)
	}
}
