// Package policy implements the placement policy engine shared by the local
// orchestrator (which picks an execution technology per NF on one node) and
// the global orchestrator (which picks a hosting node per NF across the
// fleet). Both decisions are the same shape — order a set of feasible
// candidates, each carrying a resource demand, a modeled per-packet cost and
// the headroom of the host it would land on — so one PlacementPolicy ranks
// them for both callers.
//
// Three policies ship:
//
//   - FirstFit: submission order (the caller's static preference: the
//     paper's native > docker > dpdk > vm for flavors, name order for
//     nodes), co-location first. The deploy-time default of the seed.
//   - BinPack: capacity-aware. Chain co-location first, then link-local
//     hosts, then the candidate leaving the most CPU headroom.
//   - CostDriven: minimizes modeled CPU consumption, combining the
//     execenv.CostModel per-packet cost with the observed packet rate of
//     the graph (from internal/telemetry counters): reserved millicores
//     count as idle burn, per-packet cost scales with traffic. Under no
//     load the lightest flavor wins; under load the fastest one does.
package policy

import (
	"fmt"
	"sort"

	"repro/internal/execenv"
	"repro/internal/nffg"
)

// RefFrameBytes is the frame size candidate per-packet costs are quoted at
// (the paper's MTU-sized validation frames).
const RefFrameBytes = 1500

// Candidate is one feasible placement option for an NF: a flavor on the
// local node, or a hosting node for the global scheduler. Submission order
// carries the caller's static preference; policies sort stably, so equal
// candidates keep it.
type Candidate struct {
	// Tech is the execution technology this candidate runs as (flavor
	// decisions; zero for node-only decisions).
	Tech nffg.Technology
	// Node is the hosting node (node decisions; empty for single-node
	// flavor decisions).
	Node string
	// CPUMillis is the ledger charge the candidate would reserve.
	CPUMillis int
	// RAMBytes is the runtime footprint the candidate would occupy
	// (flavor base plus workload).
	RAMBytes uint64
	// CostNs is the modeled per-packet processing cost at RefFrameBytes.
	CostNs float64
	// FreeCPUMillis and FreeRAMBytes are the host's headroom before the
	// charge.
	FreeCPUMillis int
	FreeRAMBytes  uint64
	// Colocated marks the host already holding the previous NF of the
	// chain (node decisions).
	Colocated bool
	// Linked marks a host directly linked to the chain's current node
	// (node decisions; always true for single-node decisions).
	Linked bool
	// HostRatePPS is the host's observed aggregate packet rate
	// (packets/second across its deployed graphs), 0 when unknown. The
	// M/M/1 latency predictor combines it with CostNs to demote hosts
	// already operating near saturation.
	HostRatePPS float64
}

// Request is the context of one placement question.
type Request struct {
	// GraphID and NFID identify the NF being placed.
	GraphID string
	NFID    string
	// RatePPS is the observed packet rate of the graph's datapath
	// (packets/second), 0 when unknown (e.g. at first deploy).
	RatePPS float64
}

// PlacementPolicy orders feasible candidates best-first. Implementations
// must not mutate the input slice and must be safe for concurrent use.
type PlacementPolicy interface {
	// Name identifies the policy ("first-fit", "bin-pack", "cost").
	Name() string
	// Rank returns the candidates ordered best-first. Feasibility is the
	// caller's job: every candidate passed in is deployable.
	Rank(req Request, cands []Candidate) []Candidate
}

// FlavorOf maps an NF-FG execution technology to its execution-environment
// flavor, for cost-model lookups.
func FlavorOf(t nffg.Technology) execenv.Flavor {
	switch t {
	case nffg.TechVM:
		return execenv.FlavorVM
	case nffg.TechDocker:
		return execenv.FlavorDocker
	case nffg.TechDPDK:
		return execenv.FlavorDPDK
	default:
		return execenv.FlavorNative
	}
}

// rank stable-sorts a copy of cands by less.
func rank(cands []Candidate, less func(a, b Candidate) bool) []Candidate {
	out := append([]Candidate(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// boolRank orders true before false.
func boolRank(a, b bool) (dominates, dominated bool) {
	return a && !b, b && !a
}

// FirstFit keeps the caller's submission order, co-located hosts first: the
// static preference list decides, capacity only gates feasibility.
type FirstFit struct{}

// Name implements PlacementPolicy.
func (FirstFit) Name() string { return "first-fit" }

// Rank implements PlacementPolicy.
func (FirstFit) Rank(_ Request, cands []Candidate) []Candidate {
	return rank(cands, func(a, b Candidate) bool {
		return a.Colocated && !b.Colocated
	})
}

// BinPack is the capacity-aware packer: chain co-location first (no stitch
// at all beats any stitch), link-local hosts second (one hop beats a relay),
// then the candidate leaving the most CPU headroom after the charge — which
// picks the cheapest flavor on one node and the roomiest node across a
// fleet. RAM headroom breaks ties.
type BinPack struct{}

// Name implements PlacementPolicy.
func (BinPack) Name() string { return "bin-pack" }

// Rank implements PlacementPolicy.
func (BinPack) Rank(_ Request, cands []Candidate) []Candidate {
	return rank(cands, func(a, b Candidate) bool {
		if win, lose := boolRank(a.Colocated, b.Colocated); win || lose {
			return win
		}
		if win, lose := boolRank(a.Linked, b.Linked); win || lose {
			return win
		}
		if win, lose := boolRank(!Saturated(a), !Saturated(b)); win || lose {
			return win
		}
		al := a.FreeCPUMillis - a.CPUMillis
		bl := b.FreeCPUMillis - b.CPUMillis
		if al != bl {
			return al > bl
		}
		return a.FreeRAMBytes-a.RAMBytes > b.FreeRAMBytes-b.RAMBytes
	})
}

// cpuNsPerMillicoreSecond converts a millicore reservation into nanoseconds
// of CPU per wall second: 1 millicore = 1e6 ns/s.
const cpuNsPerMillicoreSecond = 1e6

// Score is the CostDriven objective for one candidate at the given rate:
// the modeled CPU nanoseconds per second the placement would consume —
// reservation burn plus per-packet work. Exported so callers can explain a
// decision (telemetry, nodectl).
func Score(c Candidate, ratePPS float64) float64 {
	return float64(c.CPUMillis)*cpuNsPerMillicoreSecond + c.CostNs*ratePPS
}

// CostDriven minimizes modeled CPU consumption: per-packet cost from the
// execenv cost model times the observed packet rate, plus the reservation.
// Co-location and link locality still dominate for node decisions — a
// cheaper flavor is no use if reaching it costs a multi-hop stitch.
type CostDriven struct{}

// Name implements PlacementPolicy.
func (CostDriven) Name() string { return "cost" }

// Rank implements PlacementPolicy.
func (CostDriven) Rank(req Request, cands []Candidate) []Candidate {
	return rank(cands, func(a, b Candidate) bool {
		if win, lose := boolRank(a.Colocated, b.Colocated); win || lose {
			return win
		}
		if win, lose := boolRank(a.Linked, b.Linked); win || lose {
			return win
		}
		if win, lose := boolRank(!Saturated(a), !Saturated(b)); win || lose {
			return win
		}
		return Score(a, req.RatePPS) < Score(b, req.RatePPS)
	})
}

// ByName resolves a policy by its knob value. The empty name picks
// first-fit, the seed's behavior.
func ByName(name string) (PlacementPolicy, error) {
	switch name {
	case "", "first-fit":
		return FirstFit{}, nil
	case "bin-pack":
		return BinPack{}, nil
	case "cost":
		return CostDriven{}, nil
	}
	return nil, fmt.Errorf("policy: unknown placement policy %q (want first-fit, bin-pack or cost)", name)
}
