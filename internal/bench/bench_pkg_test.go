package bench

import (
	"strings"
	"testing"

	un "repro"
)

func TestTable1ShapeHolds(t *testing.T) {
	rows, err := Table1(400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Platform] = r
	}
	vm, docker, native := byName["KVM/QEMU"], byName["Docker"], byName["Native NF"]

	// Throughput shape: VM slowest, docker ≈ native, ratio ≈ 1.37.
	if !(vm.Mbps < docker.Mbps && vm.Mbps < native.Mbps) {
		t.Errorf("VM (%.0f) must be slowest (docker %.0f, native %.0f)", vm.Mbps, docker.Mbps, native.Mbps)
	}
	if r := native.Mbps / vm.Mbps; r < 1.2 || r > 1.6 {
		t.Errorf("native/vm = %.2f, want ~1.37", r)
	}
	if d := docker.Mbps / native.Mbps; d < 0.95 || d > 1.05 {
		t.Errorf("docker/native = %.2f, want ~1.0", d)
	}
	// RAM shape.
	if !(native.RAMMB < docker.RAMMB && docker.RAMMB < vm.RAMMB) {
		t.Errorf("RAM ordering broken: %v / %v / %v", vm.RAMMB, docker.RAMMB, native.RAMMB)
	}
	if vm.RAMMB/native.RAMMB < 15 {
		t.Errorf("vm/native RAM = %.1f, want ≥15 (paper 20.1)", vm.RAMMB/native.RAMMB)
	}
	// Image shape (exact by construction).
	if vm.ImageMB != 522 || docker.ImageMB != 240 || native.ImageMB != 5 {
		t.Errorf("image sizes = %v/%v/%v", vm.ImageMB, docker.ImageMB, native.ImageMB)
	}
	// Absolute values within 5% of the paper.
	for _, r := range rows {
		p := PaperTable1[r.Platform]
		if diff := (r.Mbps - p.Mbps) / p.Mbps; diff < -0.05 || diff > 0.05 {
			t.Errorf("%s throughput %.0f deviates >5%% from paper %.0f", r.Platform, r.Mbps, p.Mbps)
		}
		if diff := (r.RAMMB - p.RAMMB) / p.RAMMB; diff < -0.05 || diff > 0.05 {
			t.Errorf("%s RAM %.1f deviates >5%% from paper %.1f", r.Platform, r.RAMMB, p.RAMMB)
		}
	}
	out := FormatTable1(rows)
	for _, want := range []string{"KVM/QEMU", "Docker", "Native NF", "Through", "RAM", "Image"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

func TestSharableNNFAblation(t *testing.T) {
	res, err := SharableNNF(4, 200)
	if err != nil {
		t.Fatal(err)
	}
	// One shared instance must use far less memory than four containers.
	if res.SharedRAMMB >= res.ExclusiveRAMMB/2 {
		t.Errorf("shared %.1f MB vs exclusive %.1f MB: sharing saves too little",
			res.SharedRAMMB, res.ExclusiveRAMMB)
	}
	// And throughput must stay in the same ballpark (marking is cheap).
	if res.SharedMbps < res.ExclusiveMbps*0.8 {
		t.Errorf("shared throughput %.0f collapsed vs exclusive %.0f",
			res.SharedMbps, res.ExclusiveMbps)
	}
}

func TestAdaptationLayerAblation(t *testing.T) {
	res, err := AdaptationLayer(500)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectNsPerPkt <= 0 || res.AdaptedNsPerPkt <= 0 {
		t.Fatalf("res = %+v", res)
	}
	// The adapter costs something but must stay within 6x of direct
	// (it adds a demux map lookup and one frame retag copy).
	if res.AdaptedNsPerPkt > res.DirectNsPerPkt*6 {
		t.Errorf("adaptation overhead too large: %.0f vs %.0f ns/pkt",
			res.AdaptedNsPerPkt, res.DirectNsPerPkt)
	}
}

func TestPacketPathSweep(t *testing.T) {
	rows := PacketPathSweep([]int{64, 256, 512, 1024, 1500})
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !(r.VMMbps < r.NativeMbps) {
			t.Errorf("size %d: vm %.0f >= native %.0f", r.FrameSize, r.VMMbps, r.NativeMbps)
		}
		if !(r.DPDKMbps > r.NativeMbps) {
			t.Errorf("size %d: dpdk %.0f <= native %.0f", r.FrameSize, r.DPDKMbps, r.NativeMbps)
		}
	}
	// The VM gap must widen at small frames (per-packet tax dominates).
	gapSmall := rows[0].NativeMbps / rows[0].VMMbps
	gapLarge := rows[len(rows)-1].NativeMbps / rows[len(rows)-1].VMMbps
	if gapSmall <= gapLarge {
		t.Errorf("VM tax should dominate at small frames: gap 64B %.2f vs 1500B %.2f", gapSmall, gapLarge)
	}
}

func TestStartupLatenciesAblation(t *testing.T) {
	lat, err := StartupLatencies()
	if err != nil {
		t.Fatal(err)
	}
	if !(lat[un.TechNative] < lat[un.TechDocker] && lat[un.TechDocker] < lat[un.TechVM]) {
		t.Errorf("latency ordering broken: %v", lat)
	}
}
