package bench

import (
	"fmt"
	"time"

	un "repro"
	"repro/internal/execenv"
	"repro/internal/measure"
	"repro/internal/netdev"
	"repro/internal/nf"
	"repro/internal/nnf"
)

// FirewallGraph builds one tenant's firewall chain over VLAN endpoints.
func FirewallGraph(id string, vlan uint16, tech un.Technology) *un.Graph {
	return &un.Graph{
		ID: id,
		NFs: []un.NF{{
			ID: "fw", Name: "firewall",
			Ports:                []un.NFPort{{ID: "0"}, {ID: "1"}},
			TechnologyPreference: tech,
			Config:               map[string]string{},
		}},
		Endpoints: []un.Endpoint{
			{ID: "in", Type: un.EPVLAN, Interface: "eth0", VLANID: vlan},
			{ID: "out", Type: un.EPVLAN, Interface: "eth1", VLANID: vlan},
		},
		Rules: []un.FlowRule{
			{ID: "r1", Priority: 10, Match: un.RuleMatch{PortIn: un.EndpointRef("in")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.NFPortRef("fw", "0")}}},
			{ID: "r2", Priority: 10, Match: un.RuleMatch{PortIn: un.NFPortRef("fw", "1")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.EndpointRef("out")}}},
			{ID: "r3", Priority: 10, Match: un.RuleMatch{PortIn: un.EndpointRef("out")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.NFPortRef("fw", "1")}}},
			{ID: "r4", Priority: 10, Match: un.RuleMatch{PortIn: un.NFPortRef("fw", "0")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.EndpointRef("in")}}},
		},
	}
}

// SharableResult compares N tenants on one shared native firewall against N
// exclusive Docker firewalls (experiment A1).
type SharableResult struct {
	Tenants        int
	SharedRAMMB    float64 // total NF RAM with one shared NNF
	ExclusiveRAMMB float64 // total NF RAM with per-tenant containers
	SharedMbps     float64 // per-tenant throughput through the shared NNF
	ExclusiveMbps  float64 // per-tenant throughput with exclusive instances
}

// SharableNNF runs experiment A1.
func SharableNNF(tenants, packets int) (SharableResult, error) {
	res := SharableResult{Tenants: tenants}

	// Shared: all tenants on the native firewall singleton.
	shared, err := un.NewNode(un.Config{Name: "a1-shared"})
	if err != nil {
		return res, err
	}
	defer shared.Close()
	for i := 0; i < tenants; i++ {
		g := FirewallGraph(fmt.Sprintf("tenant%d", i), uint16(100+i), un.TechNative)
		if err := shared.Deploy(g); err != nil {
			return res, err
		}
	}
	var sharedRAM float64
	seen := map[float64]bool{} // the shared instance reports once
	for i := 0; i < tenants; i++ {
		ram, _ := shared.InstanceRAM(fmt.Sprintf("tenant%d", i), "fw")
		mb := float64(ram) / un.MB
		if !seen[mb] {
			sharedRAM += mb
			seen[mb] = true
		}
	}
	res.SharedRAMMB = sharedRAM
	lan, _ := shared.InterfacePort("eth0")
	wan, _ := shared.InterfacePort("eth1")
	rep, err := measure.Run(lan, wan, shared.Clock(), measure.Spec{
		Packets: packets, FrameSize: 1500, VLANID: 100,
	})
	if err != nil {
		return res, err
	}
	res.SharedMbps = rep.MbpsGoodput()

	// Exclusive: per-tenant Docker firewalls.
	excl, err := un.NewNode(un.Config{Name: "a1-exclusive"})
	if err != nil {
		return res, err
	}
	defer excl.Close()
	var exclRAM float64
	for i := 0; i < tenants; i++ {
		g := FirewallGraph(fmt.Sprintf("tenant%d", i), uint16(100+i), un.TechDocker)
		if err := excl.Deploy(g); err != nil {
			return res, err
		}
		ram, _ := excl.InstanceRAM(fmt.Sprintf("tenant%d", i), "fw")
		exclRAM += float64(ram) / un.MB
	}
	res.ExclusiveRAMMB = exclRAM
	lan2, _ := excl.InterfacePort("eth0")
	wan2, _ := excl.InterfacePort("eth1")
	rep2, err := measure.Run(lan2, wan2, excl.Clock(), measure.Spec{
		Packets: packets, FrameSize: 1500, VLANID: 100,
	})
	if err != nil {
		return res, err
	}
	res.ExclusiveMbps = rep2.MbpsGoodput()
	return res, nil
}

// AdaptationResult compares a directly-attached two-port NF against the
// same NF behind the single-interface adaptation layer (experiment A2).
type AdaptationResult struct {
	DirectNsPerPkt  float64
	AdaptedNsPerPkt float64
}

// AdaptationLayer runs experiment A2 on raw runtimes (no orchestrator), so
// the difference is purely the adapter's demux/retag work.
func AdaptationLayer(packets int) (AdaptationResult, error) {
	var res AdaptationResult

	run := func(rt *nf.Runtime, vlan uint16) (float64, error) {
		tx := netdev.NewPortQueueLen("tx", 1<<14)
		rx := netdev.NewPortQueueLen("rx", 1<<14)
		single := rt.NumPorts() == 1
		if err := netdev.Connect(tx, rt.Port(0)); err != nil {
			return 0, err
		}
		if !single {
			if err := netdev.Connect(rx, rt.Port(1)); err != nil {
				return 0, err
			}
		}
		collect := rx
		if single {
			collect = tx
		}
		frame, err := measure.Spec{FrameSize: 1500, VLANID: vlan}.Frame()
		if err != nil {
			return 0, err
		}
		start := time.Now()
		got := 0
		for i := 0; i < packets; i++ {
			if err := tx.Send(netdev.Frame{Data: frame}); err != nil {
				return 0, err
			}
			for {
				if _, ok := collect.TryRecv(); !ok {
					break
				}
				got++
			}
		}
		elapsed := time.Since(start)
		if got == 0 {
			return 0, fmt.Errorf("bench: adaptation run forwarded nothing")
		}
		return float64(elapsed.Nanoseconds()) / float64(got), nil
	}

	model := execenv.Default()

	// Direct: plain two-port firewall.
	envD, err := execenv.New("direct", execenv.FlavorNative, model, nil)
	if err != nil {
		return res, err
	}
	direct := nf.NewRuntime("direct", nf.NewFirewall(), envD, 2)
	direct.Start()
	defer direct.Stop()
	res.DirectNsPerPkt, err = run(direct, 0)
	if err != nil {
		return res, err
	}

	// Adapted: same firewall behind the adaptation layer, one mark path.
	fw := nf.NewFirewall()
	ad := nnf.NewAdapter(fw)
	if err := ad.AddPath(3000, nnf.AdapterPath{InnerPort: 0, EgressMarks: []uint16{3002, 3003}}); err != nil {
		return res, err
	}
	envA, err := execenv.New("adapted", execenv.FlavorNative, model, nil)
	if err != nil {
		return res, err
	}
	adapted := nf.NewRuntime("adapted", ad, envA, 1)
	adapted.Start()
	defer adapted.Stop()
	res.AdaptedNsPerPkt, err = run(adapted, 3000)
	return res, err
}

// PathRow is one point of the kernel-vs-VM packet path sweep (A3).
type PathRow struct {
	FrameSize  int
	NativeMbps float64
	DockerMbps float64
	VMMbps     float64
	DPDKMbps   float64
}

// PacketPathSweep computes simulated throughput per frame size straight
// from the cost model (crypto over the whole frame, Table 1's workload).
func PacketPathSweep(sizes []int) []PathRow {
	m := execenv.Default()
	mbps := func(f execenv.Flavor, size int) float64 {
		cost := m.PacketCost(f, size, size)
		return float64(size) * 8 / cost.Seconds() / 1e6
	}
	rows := make([]PathRow, 0, len(sizes))
	for _, s := range sizes {
		rows = append(rows, PathRow{
			FrameSize:  s,
			NativeMbps: mbps(execenv.FlavorNative, s),
			DockerMbps: mbps(execenv.FlavorDocker, s),
			VMMbps:     mbps(execenv.FlavorVM, s),
			DPDKMbps:   mbps(execenv.FlavorDPDK, s),
		})
	}
	return rows
}

// StartupLatencies reports the simulated NF start latency per technology
// (A4), measured through a real deploy on a fresh node.
func StartupLatencies() (map[un.Technology]time.Duration, error) {
	out := make(map[un.Technology]time.Duration)
	for _, f := range Table1Flavors {
		node, err := un.NewNode(un.Config{Name: "a4"})
		if err != nil {
			return nil, err
		}
		before := node.Clock().Now()
		if err := node.Deploy(IPsecGraph("g", f.Tech)); err != nil {
			node.Close()
			return nil, err
		}
		out[f.Tech] = node.Clock().Now() - before
		node.Close()
	}
	return out, nil
}
