// Package bench builds the paper's evaluation artifacts from the live
// system: Table 1 (IPsec throughput / RAM / image size per execution
// flavor) and the ablation experiments listed in DESIGN.md §5. It is shared
// by the root benchmark suite (bench_test.go) and the nfbench command.
package bench

import (
	"fmt"
	"strings"

	un "repro"
	"repro/internal/measure"
)

// Table1Row is one platform row of the paper's Table 1.
type Table1Row struct {
	Platform string
	// Mbps is the simulated iPerf throughput.
	Mbps float64
	// RAMMB is the runtime RAM of the NF instance.
	RAMMB float64
	// ImageMB is the on-disk artifact size.
	ImageMB float64
}

// Table1Flavors are the platforms of Table 1, in paper order.
var Table1Flavors = []struct {
	Platform string
	Tech     un.Technology
	Image    string
}{
	{"KVM/QEMU", un.TechVM, "ipsec:vm"},
	{"Docker", un.TechDocker, "ipsec:docker"},
	{"Native NF", un.TechNative, "ipsec:native"},
}

// PaperTable1 holds the published numbers for side-by-side reporting.
var PaperTable1 = map[string]Table1Row{
	"KVM/QEMU":  {Platform: "KVM/QEMU", Mbps: 796, RAMMB: 390.6, ImageMB: 522},
	"Docker":    {Platform: "Docker", Mbps: 1095, RAMMB: 24.2, ImageMB: 240},
	"Native NF": {Platform: "Native NF", Mbps: 1094, RAMMB: 19.4, ImageMB: 5},
}

func ipsecConfig() map[string]string {
	return map[string]string{
		"local":  "192.0.2.1",
		"remote": "203.0.113.9",
		"spi":    "4096",
		"key":    "000102030405060708090a0b0c0d0e0f10111213",
	}
}

// IPsecGraph returns the Table 1 service graph: an IPsec endpoint between
// the node's LAN (eth0) and WAN (eth1) interfaces.
func IPsecGraph(id string, tech un.Technology) *un.Graph {
	return &un.Graph{
		ID: id,
		NFs: []un.NF{{
			ID: "vpn", Name: "ipsec",
			Ports:                []un.NFPort{{ID: "0"}, {ID: "1"}},
			TechnologyPreference: tech,
			Config:               ipsecConfig(),
		}},
		Endpoints: []un.Endpoint{
			{ID: "lan", Type: un.EPInterface, Interface: "eth0"},
			{ID: "wan", Type: un.EPInterface, Interface: "eth1"},
		},
		Rules: []un.FlowRule{
			{ID: "r1", Priority: 10, Match: un.RuleMatch{PortIn: un.EndpointRef("lan")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.NFPortRef("vpn", "0")}}},
			{ID: "r2", Priority: 10, Match: un.RuleMatch{PortIn: un.NFPortRef("vpn", "1")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.EndpointRef("wan")}}},
			{ID: "r3", Priority: 10, Match: un.RuleMatch{PortIn: un.EndpointRef("wan")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.NFPortRef("vpn", "1")}}},
			{ID: "r4", Priority: 10, Match: un.RuleMatch{PortIn: un.NFPortRef("vpn", "0")},
				Actions: []un.RuleAction{{Type: un.ActOutput, Output: un.EndpointRef("lan")}}},
		},
	}
}

// MeasureFlavor deploys the IPsec graph in one flavor on a fresh node and
// measures throughput with the iPerf stand-in (packets MTU-sized frames,
// LAN to WAN: the ESP-encapsulation direction of the paper's setup),
// injecting in bursts of measure.DefaultBatch.
func MeasureFlavor(tech un.Technology, image string, packets int) (Table1Row, error) {
	return MeasureFlavorBatch(tech, image, packets, 0)
}

// MeasureFlavorBatch is MeasureFlavor with an explicit injection burst size
// (0 means measure.DefaultBatch, 1 degenerates to frame-at-a-time), exposed
// so nfbench -batch can compare the batched and per-frame ingress paths on
// the same workload.
func MeasureFlavorBatch(tech un.Technology, image string, packets, batch int) (Table1Row, error) {
	node, err := un.NewNode(un.Config{Name: "bench-" + string(tech)})
	if err != nil {
		return Table1Row{}, err
	}
	defer node.Close()
	g := IPsecGraph("t1", tech)
	if err := node.Deploy(g); err != nil {
		return Table1Row{}, err
	}
	lan, _ := node.InterfacePort("eth0")
	wan, _ := node.InterfacePort("eth1")
	rep, err := measure.Run(lan, wan, node.Clock(), measure.Spec{
		Packets: packets, FrameSize: 1500, Batch: batch,
	})
	if err != nil {
		return Table1Row{}, err
	}
	if rep.LossRate() > 0 {
		return Table1Row{}, fmt.Errorf("bench: %v lost %.1f%% of traffic", tech, rep.LossRate()*100)
	}
	ram, ok := node.InstanceRAM("t1", "vpn")
	if !ok {
		return Table1Row{}, fmt.Errorf("bench: instance RAM unavailable")
	}
	img, err := node.ImageDiskSize(image)
	if err != nil {
		return Table1Row{}, err
	}
	return Table1Row{
		Mbps:    rep.MbpsGoodput(),
		RAMMB:   float64(ram) / un.MB,
		ImageMB: float64(img) / un.MB,
	}, nil
}

// Table1 regenerates the full table with the default injection burst.
func Table1(packets int) ([]Table1Row, error) {
	return Table1Batch(packets, 0)
}

// Table1Batch regenerates the full table injecting in bursts of the given
// size (0 = measure.DefaultBatch).
func Table1Batch(packets, batch int) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(Table1Flavors))
	for _, f := range Table1Flavors {
		row, err := MeasureFlavorBatch(f.Tech, f.Image, packets, batch)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", f.Platform, err)
		}
		row.Platform = f.Platform
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders measured rows next to the paper's numbers.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Results with IPSec client VNFs (measured vs paper)\n")
	fmt.Fprintf(&b, "%-10s  %16s  %14s  %16s\n", "Platform", "Through. (Mbps)", "RAM (MB)", "Image size (MB)")
	for _, r := range rows {
		p := PaperTable1[r.Platform]
		fmt.Fprintf(&b, "%-10s  %7.0f vs %5.0f  %6.1f vs %5.1f  %7.0f vs %5.0f\n",
			r.Platform, r.Mbps, p.Mbps, r.RAMMB, p.RAMMB, r.ImageMB, p.ImageMB)
	}
	return b.String()
}
