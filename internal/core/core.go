// Package core anchors the paper's primary contribution and maps it to the
// packages that implement it.
//
// The contribution of "Modeling Native Software Components as Virtual
// Network Functions" (SIGCOMM'16) is the integration of Native Network
// Functions into an NFV compute node. In this repository it is split across
// two packages, aliased here for discoverability:
//
//   - repro/internal/nnf — NNF plugins, the sharability contract (traffic
//     marking + isolated internal paths), the single-interface adaptation
//     layer, and namespace-backed lifecycle management.
//   - repro/internal/orchestrator — the local orchestrator that decides
//     VNF-vs-NNF placement and steers traffic through per-graph Logical
//     Switch Instances.
//
// Everything else under internal/ is substrate: the packet library (pkt),
// virtual devices (netdev), namespaces (netns), the software switch
// (vswitch), the OpenFlow-style control channel (openflow), the NF-FG model
// (nffg), execution-environment cost models (execenv), network functions
// (nf), compute drivers (compute), the VNF repository (repository), node
// resources (resources), and the image store (imagestore).
package core

import (
	"repro/internal/nnf"
	"repro/internal/orchestrator"
)

// NNFManager is the Native Network Function manager (see repro/internal/nnf).
type NNFManager = nnf.Manager

// NNFPlugin is one native function's lifecycle plugin.
type NNFPlugin = nnf.Plugin

// NNFTraits are the deployment characteristics driving VNF-vs-NNF placement.
type NNFTraits = nnf.Traits

// AdaptationLayer is the single-interface adaptation layer.
type AdaptationLayer = nnf.Adapter

// Orchestrator is the node's local orchestrator.
type Orchestrator = orchestrator.Orchestrator
