// Package resources tracks the compute node's finite resources (CPU, RAM)
// and its capability set. The orchestrator consults it for admission control
// and the VNF-vs-NNF placement decision; drivers charge their footprints
// against it.
package resources

import (
	"fmt"
	"sort"
	"sync"
)

// MB is one mebibyte in bytes.
const MB = 1 << 20

// Capability names a discrete node feature the scheduler can require.
// Examples: "kvm" (hardware virtualization), "docker" (container runtime),
// "dpdk" (userspace datapath), "nnf:ipsec" (a specific native NF plugin).
type Capability string

// Pool is the node resource ledger. All methods are safe for concurrent
// use.
type Pool struct {
	mu           sync.Mutex
	totalCPU     int // millicores
	totalRAM     uint64
	usedCPU      int
	usedRAM      uint64
	capabilities map[Capability]bool
	grants       map[string]Grant // by owner id
}

// Grant records one admitted allocation.
type Grant struct {
	Owner string
	CPU   int // millicores
	RAM   uint64
}

// NewPool creates a ledger with the given capacity (CPU in millicores, RAM
// in bytes).
func NewPool(cpuMillis int, ramBytes uint64) *Pool {
	return &Pool{
		totalCPU:     cpuMillis,
		totalRAM:     ramBytes,
		capabilities: make(map[Capability]bool),
		grants:       make(map[string]Grant),
	}
}

// AddCapability declares a node feature.
func (p *Pool) AddCapability(c Capability) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.capabilities[c] = true
}

// RemoveCapability withdraws a node feature.
func (p *Pool) RemoveCapability(c Capability) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.capabilities, c)
}

// Has reports whether the node offers a capability.
func (p *Pool) Has(c Capability) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capabilities[c]
}

// Capabilities returns the sorted capability set.
func (p *Pool) Capabilities() []Capability {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Capability, 0, len(p.capabilities))
	for c := range p.capabilities {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Allocate admits an allocation for owner, or fails if capacity or a prior
// grant under the same owner is in the way.
func (p *Pool) Allocate(owner string, cpuMillis int, ramBytes uint64) error {
	if cpuMillis < 0 {
		return fmt.Errorf("resources: negative cpu request")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.grants[owner]; dup {
		return fmt.Errorf("resources: owner %q already holds a grant", owner)
	}
	if p.usedCPU+cpuMillis > p.totalCPU {
		return fmt.Errorf("resources: cpu exhausted: want %dm, free %dm",
			cpuMillis, p.totalCPU-p.usedCPU)
	}
	if p.usedRAM+ramBytes > p.totalRAM {
		return fmt.Errorf("resources: ram exhausted: want %d MB, free %d MB",
			ramBytes/MB, (p.totalRAM-p.usedRAM)/MB)
	}
	p.usedCPU += cpuMillis
	p.usedRAM += ramBytes
	p.grants[owner] = Grant{Owner: owner, CPU: cpuMillis, RAM: ramBytes}
	return nil
}

// Release returns owner's grant to the pool. Releasing an unknown owner is
// an error so leaks surface in tests.
func (p *Pool) Release(owner string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.grants[owner]
	if !ok {
		return fmt.Errorf("resources: owner %q holds no grant", owner)
	}
	p.usedCPU -= g.CPU
	p.usedRAM -= g.RAM
	delete(p.grants, owner)
	return nil
}

// Usage returns the currently used and total resources.
func (p *Pool) Usage() (usedCPU, totalCPU int, usedRAM, totalRAM uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.usedCPU, p.totalCPU, p.usedRAM, p.totalRAM
}

// Grants returns all active grants sorted by owner.
func (p *Pool) Grants() []Grant {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Grant, 0, len(p.grants))
	for _, g := range p.grants {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}
