package resources

import (
	"fmt"
	"sync"
	"testing"
)

func TestAllocateRelease(t *testing.T) {
	p := NewPool(4000, 1024*MB)
	if err := p.Allocate("vm1", 1000, 400*MB); err != nil {
		t.Fatal(err)
	}
	usedCPU, totalCPU, usedRAM, _ := p.Usage()
	if usedCPU != 1000 || totalCPU != 4000 || usedRAM != 400*MB {
		t.Errorf("usage = %d/%d cpu, %d ram", usedCPU, totalCPU, usedRAM)
	}
	if err := p.Release("vm1"); err != nil {
		t.Fatal(err)
	}
	usedCPU, _, usedRAM, _ = p.Usage()
	if usedCPU != 0 || usedRAM != 0 {
		t.Error("release did not return resources")
	}
}

func TestExhaustion(t *testing.T) {
	p := NewPool(1000, 100*MB)
	if err := p.Allocate("a", 800, 50*MB); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate("b", 300, 10*MB); err == nil {
		t.Error("cpu overcommit allowed")
	}
	if err := p.Allocate("c", 100, 90*MB); err == nil {
		t.Error("ram overcommit allowed")
	}
	// A failed allocation must not leak partial usage.
	usedCPU, _, usedRAM, _ := p.Usage()
	if usedCPU != 800 || usedRAM != 50*MB {
		t.Errorf("usage after failures = %d cpu %d ram", usedCPU, usedRAM)
	}
}

func TestDuplicateOwnerAndUnknownRelease(t *testing.T) {
	p := NewPool(1000, 100*MB)
	if err := p.Allocate("x", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate("x", 1, 1); err == nil {
		t.Error("duplicate owner allowed")
	}
	if err := p.Release("ghost"); err == nil {
		t.Error("release of unknown owner allowed")
	}
	if err := p.Allocate("neg", -5, 0); err == nil {
		t.Error("negative cpu allowed")
	}
}

func TestCapabilities(t *testing.T) {
	p := NewPool(0, 0)
	p.AddCapability("kvm")
	p.AddCapability("nnf:ipsec")
	p.AddCapability("docker")
	if !p.Has("kvm") || !p.Has("nnf:ipsec") {
		t.Error("capabilities missing")
	}
	if p.Has("dpdk") {
		t.Error("phantom capability")
	}
	caps := p.Capabilities()
	if len(caps) != 3 || caps[0] != "docker" || caps[1] != "kvm" || caps[2] != "nnf:ipsec" {
		t.Errorf("Capabilities = %v", caps)
	}
	p.RemoveCapability("kvm")
	if p.Has("kvm") {
		t.Error("capability not removed")
	}
}

func TestGrantsSnapshot(t *testing.T) {
	p := NewPool(10000, 1000*MB)
	_ = p.Allocate("b", 1, 1)
	_ = p.Allocate("a", 2, 2)
	g := p.Grants()
	if len(g) != 2 || g[0].Owner != "a" || g[1].Owner != "b" {
		t.Errorf("Grants = %+v", g)
	}
}

func TestConcurrentAllocations(t *testing.T) {
	p := NewPool(1000, 1000)
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- p.Allocate(fmt.Sprintf("o%d", i), 100, 100)
		}(i)
	}
	wg.Wait()
	close(errs)
	ok := 0
	for err := range errs {
		if err == nil {
			ok++
		}
	}
	if ok != 10 {
		t.Errorf("admitted %d allocations of 100m each into 1000m, want 10", ok)
	}
}
