package pcap

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ts := time.Unix(1700000000, 123456000)
	frames := [][]byte{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 0x08, 0x00, 0xaa},
		{0xff, 0xee},
		make([]byte, 1500),
	}
	for i, f := range frames {
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Second), f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets() != 3 {
		t.Errorf("packets = %d", w.Packets())
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("link type = %d", r.LinkType())
	}
	if len(got) != 3 {
		t.Fatalf("read %d packets", len(got))
	}
	for i, p := range got {
		if !bytes.Equal(p.Data, frames[i]) {
			t.Errorf("packet %d data mismatch", i)
		}
		if p.OrigLen != len(frames[i]) {
			t.Errorf("packet %d origlen = %d", i, p.OrigLen)
		}
		want := ts.Add(time.Duration(i) * time.Second)
		if p.Timestamp.Unix() != want.Unix() {
			t.Errorf("packet %d ts = %v", i, p.Timestamp)
		}
		// Microsecond resolution.
		if p.Timestamp.Nanosecond()/1000 != want.Nanosecond()/1000 {
			t.Errorf("packet %d usec = %d", i, p.Timestamp.Nanosecond())
		}
	}
}

func TestSnapLongPackets(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	big := make([]byte, DefaultSnapLen+100)
	big[0] = 0x42
	if err := w.WritePacket(time.Now(), big); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0].Data) != DefaultSnapLen {
		t.Errorf("capLen = %d", len(got[0].Data))
	}
	if got[0].OrigLen != DefaultSnapLen+100 {
		t.Errorf("origLen = %d", got[0].OrigLen)
	}
}

func TestReaderErrors(t *testing.T) {
	// Bad magic.
	bad := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(bad)).ReadPacket(); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated record.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WritePacket(time.Now(), []byte{1, 2, 3})
	trunc := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.ReadPacket(); err == nil {
		t.Error("truncated body accepted")
	}
	// Empty stream: EOF on first read (header missing).
	if _, err := NewReader(bytes.NewReader(nil)).ReadPacket(); err != io.EOF {
		t.Errorf("empty stream err = %v", err)
	}
}

func TestPropertyAnyPayloadRoundTrips(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, p := range payloads {
			if len(p) > DefaultSnapLen {
				p = p[:DefaultSnapLen]
			}
			if err := w.WritePacket(time.Unix(1, 0), p); err != nil {
				return false
			}
		}
		got, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
		if err != nil || len(got) != len(payloads) {
			return len(payloads) == 0 && err == nil
		}
		for i := range payloads {
			want := payloads[i]
			if len(want) > DefaultSnapLen {
				want = want[:DefaultSnapLen]
			}
			if !bytes.Equal(got[i].Data, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
