// Package pcap reads and writes the classic libpcap capture format
// (https://wiki.wireshark.org/Development/LibpcapFileFormat), so traffic
// crossing the simulated dataplane can be saved and opened in Wireshark or
// tcpdump. Only the standard microsecond-resolution format with Ethernet
// link type is produced.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// magicMicroseconds is the little-endian magic of the classic format.
const magicMicroseconds = 0xa1b2c3d4

// LinkTypeEthernet is the only link type used here.
const LinkTypeEthernet = 1

// DefaultSnapLen is the capture length written to the global header.
const DefaultSnapLen = 65535

// globalHeaderLen and recordHeaderLen are the fixed header sizes.
const (
	globalHeaderLen = 24
	recordHeaderLen = 16
)

// Writer emits a pcap stream. It is safe for concurrent use (taps fire from
// multiple dataplane goroutines).
type Writer struct {
	mu      sync.Mutex
	w       io.Writer
	wroteHd bool
	closed  bool
	packets uint64
}

// NewWriter wraps w; the global header is written lazily with the first
// packet (or explicitly with WriteHeader).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// WriteHeader emits the global header immediately, making even an empty
// capture a valid pcap file. It is idempotent.
func (pw *Writer) WriteHeader() error {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.writeHeaderLocked()
}

func (pw *Writer) writeHeaderLocked() error {
	if pw.wroteHd {
		return nil
	}
	var hdr [globalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	// thiszone(4) + sigfigs(4) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], DefaultSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	pw.wroteHd = true
	return nil
}

// Close stops the writer: later WritePacket calls become no-ops. It lets a
// capture be detached while concurrent taps may still be in flight.
func (pw *Writer) Close() {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	pw.closed = true
}

// WritePacket appends one captured frame with the given timestamp.
func (pw *Writer) WritePacket(ts time.Time, data []byte) error {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	if pw.closed {
		return nil
	}
	if err := pw.writeHeaderLocked(); err != nil {
		return err
	}
	capLen := len(data)
	if capLen > DefaultSnapLen {
		capLen = DefaultSnapLen
	}
	var rec [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(data)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(data[:capLen])
	if err == nil {
		pw.packets++
	}
	return err
}

// Packets returns the number of records written.
func (pw *Writer) Packets() uint64 {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.packets
}

// Packet is one record read back from a capture.
type Packet struct {
	Timestamp time.Time
	// OrigLen is the original wire length; Data may be shorter if the
	// capture was snapped.
	OrigLen int
	Data    []byte
}

// Reader parses a pcap stream.
type Reader struct {
	r        io.Reader
	readHdr  bool
	linkType uint32
}

// NewReader wraps r; the global header is consumed on the first ReadPacket.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// LinkType returns the capture's link type (valid after the first
// ReadPacket).
func (pr *Reader) LinkType() uint32 { return pr.linkType }

// ReadPacket returns the next record, or io.EOF at the end of the stream.
func (pr *Reader) ReadPacket() (Packet, error) {
	if !pr.readHdr {
		var hdr [globalHeaderLen]byte
		if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
			return Packet{}, err
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != magicMicroseconds {
			return Packet{}, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
		}
		pr.linkType = binary.LittleEndian.Uint32(hdr[20:24])
		pr.readHdr = true
	}
	var rec [recordHeaderLen]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Packet{}, fmt.Errorf("pcap: truncated record header")
		}
		return Packet{}, err
	}
	sec := binary.LittleEndian.Uint32(rec[0:4])
	usec := binary.LittleEndian.Uint32(rec[4:8])
	capLen := binary.LittleEndian.Uint32(rec[8:12])
	origLen := binary.LittleEndian.Uint32(rec[12:16])
	if capLen > DefaultSnapLen {
		return Packet{}, fmt.Errorf("pcap: capture length %d exceeds snap length", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: truncated record body")
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), int64(usec)*1000),
		OrigLen:   int(origLen),
		Data:      data,
	}, nil
}

// ReadAll drains the stream.
func (pr *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := pr.ReadPacket()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
