package cliutil

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastClient() *Client {
	c := New()
	c.BaseDelay = time.Millisecond
	c.MaxDelay = 4 * time.Millisecond
	return c
}

func TestRetriesConnectionErrors(t *testing.T) {
	// A server that exists only from the second attempt on: simulate with
	// a closed listener address first... instead, count attempts against a
	// server that drops the first two via 503.
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&hits, 1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok")
	}))
	defer srv.Close()
	resp, err := fastClient().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if n := atomic.LoadInt32(&hits); n != 3 {
		t.Fatalf("server hit %d times, want 3", n)
	}
}

func TestGivesUpAfterAttempts(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := fastClient()
	c.Attempts = 3
	resp, err := c.Get(srv.URL)
	if err == nil {
		// The final attempt's response is returned as-is (callers see the
		// real status); both shapes are acceptable, but the server must
		// have been tried exactly Attempts times.
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if n := atomic.LoadInt32(&hits); n != 3 {
		t.Fatalf("server hit %d times, want 3", n)
	}
}

func TestConnectionErrorThenSuccess(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	addr := srv.URL
	srv.Close() // nothing listening: pure connection errors
	c := fastClient()
	c.Attempts = 2
	if _, err := c.Get(addr); err == nil {
		t.Fatal("expected error against closed server")
	}
}

// Writes must survive a 307 leader redirect: the body is replayed to the
// redirect target (this is what an HA follower does with writes).
func TestFollowsWriteRedirectWithBody(t *testing.T) {
	var got []byte
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, _ = io.ReadAll(r.Body)
		w.WriteHeader(http.StatusCreated)
	}))
	defer leader.Close()
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, leader.URL+r.URL.Path, http.StatusTemporaryRedirect)
	}))
	defer follower.Close()

	resp, err := fastClient().Put(follower.URL+"/v1/graphs/g1", []byte(`{"id":"g1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status %d, want 201", resp.StatusCode)
	}
	if string(got) != `{"id":"g1"}` {
		t.Fatalf("leader received body %q", got)
	}
}

// A follower answering 503 during an election, then redirecting once a
// leader exists, ends in a committed write.
func TestElectionThenRedirect(t *testing.T) {
	var leaderHits int32
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&leaderHits, 1)
		w.WriteHeader(http.StatusOK)
	}))
	defer leader.Close()
	var phase int32
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&phase, 1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		http.Redirect(w, r, leader.URL+r.URL.Path, http.StatusTemporaryRedirect)
	}))
	defer follower.Close()

	resp, err := fastClient().Post(follower.URL+"/v1/links", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if atomic.LoadInt32(&leaderHits) != 1 {
		t.Fatalf("leader hit %d times", leaderHits)
	}
}

func TestBackoffBounds(t *testing.T) {
	c := New()
	for n := 0; n < 10; n++ {
		d := c.backoff(n)
		if d < c.BaseDelay/2 || d > c.MaxDelay+c.MaxDelay/2 {
			t.Fatalf("backoff(%d) = %v out of bounds", n, d)
		}
	}
}
