// Package cliutil is the shared HTTP plumbing of the command-line
// clients (nodectl, nffgctl): bounded retry with exponential backoff and
// jitter on connection errors and on 5xx answers that signal a transient
// control-plane condition (an HA cluster mid-election answers 503), and
// leader-redirect following (an HA follower answers writes with 307 +
// Location; Go's client follows it when the request body is rebuildable,
// which every helper here guarantees).
package cliutil

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// Client is a retrying HTTP client. The zero value is not usable; use New.
type Client struct {
	// HTTP is the underlying client (follows redirects by default).
	HTTP *http.Client
	// Attempts bounds how many times a request is tried in total.
	Attempts int
	// BaseDelay is the first backoff; each retry doubles it (with ±50%
	// jitter) up to MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Logf, when set, narrates retries (CLI verbose mode).
	Logf func(format string, args ...any)
}

// New builds a client with the CLI defaults: 4 attempts, 100ms initial
// backoff doubling to at most 2s, 10s per-request timeout.
func New() *Client {
	return &Client{
		HTTP:      &http.Client{Timeout: 10 * time.Second},
		Attempts:  4,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  2 * time.Second,
	}
}

// retryable reports whether an answer is worth retrying: leaderless HA
// clusters and overloaded proxies answer 502/503/504 transiently.
func retryable(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff returns the jittered exponential delay before retry n (0-based).
func (c *Client) backoff(n int) time.Duration {
	d := c.BaseDelay << n
	if d > c.MaxDelay || d <= 0 {
		d = c.MaxDelay
	}
	// ±50% jitter decorrelates clients hammering a recovering server.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Do sends the request, retrying connection errors and retryable status
// codes with backoff. The request must have GetBody set when it carries a
// body (http.NewRequest does this for the common reader types), both for
// retries and for 307 redirect following.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.Attempts; attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt - 1)
			if c.Logf != nil {
				c.Logf("retrying %s %s in %v: %v", req.Method, req.URL, delay, lastErr)
			}
			time.Sleep(delay)
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, err
				}
				req.Body = body
			}
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if retryable(resp.StatusCode) && attempt < c.Attempts-1 {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			lastErr = fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("after %d attempts: %w", c.Attempts, lastErr)
}

// Get issues a retrying GET.
func (c *Client) Get(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// Post issues a retrying POST with a JSON body.
func (c *Client) Post(url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.Do(req)
}

// Put issues a retrying PUT with a JSON body.
func (c *Client) Put(url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.Do(req)
}

// Delete issues a retrying DELETE, with an optional JSON body.
func (c *Client) Delete(url string, body []byte) (*http.Response, error) {
	var r io.Reader
	if body != nil {
		r = bytes.NewReader(body)
	}
	req, err := http.NewRequest(http.MethodDelete, url, r)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.Do(req)
}
