package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	un "repro"
	"repro/internal/cluster"
	"repro/internal/global"
)

// haRig is a replicated control plane over one shared Universal Node:
// three orchestrator replicas clustered over the in-process transport
// (gossip membership, leader election, replicated intent log), all
// resolving node names to the same in-process handles. Cluster faults —
// replica crashes and network partitions — are injected through the
// LocalNetwork; the node and its datapath never stop, which is exactly
// what lets the scenarios assert that control-plane failover costs the
// data plane nothing.
type haRig struct {
	f        *fleet
	net      *cluster.LocalNetwork
	orchs    map[string]*global.Orchestrator
	clusters map[string]*cluster.Cluster
	ids      []string
	undo     []func()
}

// haNode is the single Universal Node the replicated control plane
// manages. eth0/eth1 carry the NAT under test; lan/wan host the chain
// graphs the scenarios deploy to prove a leader accepts writes.
const haNode = "n1"

func newHARig(o *Options, replicas int) (*haRig, error) {
	node, err := un.NewNode(un.Config{
		Name:         haNode,
		Interfaces:   []string{"eth0", "eth1", "lan", "wan"},
		CPUMillis:    8000,
		RAMBytes:     1 << 30,
		Capabilities: nodeCaps,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: node %q: %w", haNode, err)
	}
	r := &haRig{
		f: &fleet{
			nodes:  map[string]*un.Node{haNode: node},
			locals: map[string]*global.LocalNode{haNode: global.NewLocalNode(haNode, node)},
		},
		net:      cluster.NewLocalNetwork(),
		orchs:    make(map[string]*global.Orchestrator),
		clusters: make(map[string]*cluster.Cluster),
	}
	r.undo = append(r.undo, node.Close)
	resolver := func(name string, _ json.RawMessage) (global.Node, error) {
		ln, ok := r.f.locals[name]
		if !ok {
			return nil, fmt.Errorf("chaos: unknown node %q", name)
		}
		return ln, nil
	}
	var peers []cluster.PeerSpec
	for i := 0; i < replicas; i++ {
		id := fmt.Sprintf("r%d", i+1)
		r.ids = append(r.ids, id)
		peers = append(peers, cluster.PeerSpec{ID: id, Addr: "http://" + id})
	}
	for _, id := range r.ids {
		og := global.New(global.Config{Logf: o.Logf, ProbeInterval: 5 * time.Millisecond})
		c, err := global.BuildHA(og, cluster.Options{
			ID:                id,
			ClusterID:         "chaos",
			Peers:             peers,
			Transport:         r.net.Transport(id),
			ProbeInterval:     10 * time.Millisecond,
			SuspicionTimeout:  50 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			LeaseDuration:     120 * time.Millisecond,
			CommitTimeout:     time.Second,
		}, resolver)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("chaos: replica %q: %w", id, err)
		}
		r.net.Register(id, c)
		r.orchs[id] = og
		r.clusters[id] = c
	}
	for _, id := range r.ids {
		c := r.clusters[id]
		c.Start()
		r.undo = append(r.undo, c.Close)
	}
	return r, nil
}

func (r *haRig) Close() {
	for i := len(r.undo) - 1; i >= 0; i-- {
		r.undo[i]()
	}
}

// leader returns the replica currently holding the lease, or "".
func (r *haRig) leader() string {
	for _, id := range r.ids {
		if r.clusters[id].IsLeader() {
			return id
		}
	}
	return ""
}

// waitLeader blocks until some replica other than exclude holds the
// lease (pass "" to accept any leader).
func (r *haRig) waitLeader(timeout time.Duration, exclude string) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if id := r.leader(); id != "" && id != exclude {
			return id, nil
		}
		time.Sleep(time.Millisecond)
	}
	return "", fmt.Errorf("chaos: no leader elected within %v (excluding %q)", timeout, exclude)
}

// waitIntent blocks until the replica's orchestrator holds exactly the
// wanted graph set — promotion replay and follower refresh both land
// asynchronously relative to the lease flip.
func (r *haRig) waitIntent(id string, timeout time.Duration, follower bool, want ...string) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if follower {
			// Followers refresh from the replicated store on their
			// reconcile tick; drive it directly here.
			r.orchs[id].ReconcileOnce()
		}
		got := r.orchs[id].GraphIDs()
		if len(got) == len(want) {
			match := true
			for i := range want {
				if got[i] != want[i] {
					match = false
					break
				}
			}
			if match {
				return nil
			}
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("chaos: replica %s did not converge on graphs %v (has %v)",
		id, want, r.orchs[id].GraphIDs())
}

// runHALeaderKill is the HA acceptance scenario: three control-plane
// replicas manage one node carrying live NAT traffic; the leader crashes
// mid-lease. A follower must win the election, replay the replicated
// intent store into a byte-identical desired state, adopt the running
// datapath without churning it (every NAT binding intact), and start
// accepting writes — while the deposed replica fences itself.
func runHALeaderKill(o *Options) (stats, error) {
	var st stats
	r, err := newHARig(o, 3)
	if err != nil {
		return st, err
	}
	defer r.Close()
	lead, err := r.waitLeader(5*time.Second, "")
	if err != nil {
		return st, err
	}
	if err := r.orchs[lead].AddNode(r.f.locals[haNode]); err != nil {
		return st, err
	}
	if err := r.orchs[lead].Deploy(natGraph("ha", "")); err != nil {
		return st, err
	}
	conns, err := establishNATConns(r.f, haNode, o.Conns)
	if err != nil {
		return st, err
	}
	// Crash the leader: it drops off the fabric mid-lease with live
	// connections pinned through the NAT it placed.
	r.net.SetDown(lead, true)
	t0 := time.Now()
	succ, err := r.waitLeader(5*time.Second, lead)
	if err != nil {
		return st, err
	}
	// Reconvergence counts until the successor holds the full intent —
	// a lease without the replayed desired state is not a control plane.
	if err := r.waitIntent(succ, 2*time.Second, false, "ha"); err != nil {
		return st, err
	}
	st.reconverge = time.Since(t0)
	if _, ok := r.orchs[succ].Placement("ha"); !ok {
		return st, fmt.Errorf("chaos: successor %s replayed intent without a placement", succ)
	}
	// The deposed leader fences itself once its lease expires: even
	// though it never saw the new election, it must refuse writes.
	fenceDeadline := time.Now().Add(2 * time.Second)
	for r.clusters[lead].IsLeader() && time.Now().Before(fenceDeadline) {
		time.Sleep(time.Millisecond)
	}
	if r.clusters[lead].IsLeader() {
		return st, fmt.Errorf("chaos: deposed leader %s still claims the lease", lead)
	}
	if err := r.orchs[lead].Deploy(chainGraph("fenced", 1)); !errors.Is(err, global.ErrNotLeader) {
		return st, fmt.Errorf("chaos: deposed leader %s accepted a write: %v", lead, err)
	}
	// The successor is a real leader: it accepts new intent.
	if err := r.orchs[succ].Deploy(chainGraph("post", 2)); err != nil {
		return st, fmt.Errorf("chaos: promoted leader %s rejected a write: %w", succ, err)
	}
	// Promotion adopted the running fleet instead of redeploying it, so
	// every binding established under the old leader still translates.
	return st, verifyNATConns(r.f, haNode, conns, &st)
}

// runHALeaderPartition splits the leader from both followers without
// killing it. The majority side must elect a successor and keep taking
// writes; the isolated ex-leader must fence itself on lease expiry and
// refuse mutations (no split brain); and once the partition heals it
// must rejoin as a follower and converge on the majority's intent.
func runHALeaderPartition(o *Options) (stats, error) {
	var st stats
	r, err := newHARig(o, 3)
	if err != nil {
		return st, err
	}
	defer r.Close()
	lead, err := r.waitLeader(5*time.Second, "")
	if err != nil {
		return st, err
	}
	if err := r.orchs[lead].AddNode(r.f.locals[haNode]); err != nil {
		return st, err
	}
	if err := r.orchs[lead].Deploy(natGraph("hp", "")); err != nil {
		return st, err
	}
	conns, err := establishNATConns(r.f, haNode, o.Conns)
	if err != nil {
		return st, err
	}
	r.net.Isolate(lead)
	t0 := time.Now()
	succ, err := r.waitLeader(5*time.Second, lead)
	if err != nil {
		return st, err
	}
	if err := r.waitIntent(succ, 2*time.Second, false, "hp"); err != nil {
		return st, err
	}
	st.reconverge = time.Since(t0)
	// Fencing: the partitioned ex-leader is still running, but its lease
	// has expired unrenewed — it must step down and refuse writes even
	// though it cannot know a successor exists.
	fenceDeadline := time.Now().Add(2 * time.Second)
	for r.clusters[lead].IsLeader() && time.Now().Before(fenceDeadline) {
		time.Sleep(time.Millisecond)
	}
	if r.clusters[lead].IsLeader() {
		return st, fmt.Errorf("chaos: partitioned leader %s still claims the lease", lead)
	}
	if err := r.orchs[lead].Undeploy("hp"); !errors.Is(err, global.ErrNotLeader) {
		return st, fmt.Errorf("chaos: partitioned ex-leader %s accepted a write: %v", lead, err)
	}
	// The majority side keeps serving: new intent lands on the successor
	// while the old leader is still cut off.
	if err := r.orchs[succ].Deploy(chainGraph("maj", 2)); err != nil {
		return st, fmt.Errorf("chaos: majority leader %s rejected a write: %w", succ, err)
	}
	// Heal. The deposed replica must come back as a follower and catch
	// up on everything committed while it was away.
	r.net.Rejoin(lead)
	rejoinDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(rejoinDeadline) {
		if id, _ := r.clusters[lead].Leader(); id == succ {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if id, _ := r.clusters[lead].Leader(); id != succ {
		return st, fmt.Errorf("chaos: rejoined replica %s follows %q, want %q", lead, id, succ)
	}
	if err := r.waitIntent(lead, 2*time.Second, true, "hp", "maj"); err != nil {
		return st, err
	}
	return st, verifyNATConns(r.f, haNode, conns, &st)
}

// ElectionSoak cycles a 3-replica cluster through repeated leader kills
// and revivals, returning the measured failover time of each cycle (the
// gap between the crash and a successor holding the lease). The nightly
// job runs this for many cycles and publishes the median; a creeping
// median is an election-latency regression no single chaos pass catches.
func ElectionSoak(cycles int, logf func(format string, args ...any)) ([]time.Duration, error) {
	o := &Options{Logf: logf}
	r, err := newHARig(o, 3)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if _, err := r.waitLeader(5*time.Second, ""); err != nil {
		return nil, err
	}
	times := make([]time.Duration, 0, cycles)
	for i := 0; i < cycles; i++ {
		lead, err := r.waitLeader(5*time.Second, "")
		if err != nil {
			return times, fmt.Errorf("chaos: cycle %d: %w", i+1, err)
		}
		r.net.SetDown(lead, true)
		t0 := time.Now()
		succ, err := r.waitLeader(5*time.Second, lead)
		if err != nil {
			return times, fmt.Errorf("chaos: cycle %d: %w", i+1, err)
		}
		times = append(times, time.Since(t0))
		if logf != nil {
			logf("chaos: election cycle %d: %s -> %s in %v", i+1, lead, succ, times[i])
		}
		// Revive the old leader and wait for it to find the cluster
		// again, so every cycle starts from full strength.
		r.net.SetDown(lead, false)
		reviveDeadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(reviveDeadline) {
			if id, _ := r.clusters[lead].Leader(); id != "" {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	return times, nil
}
