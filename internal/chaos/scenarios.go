package chaos

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	un "repro"
	"repro/internal/global"
	"repro/internal/netdev"
	"repro/internal/nffg"
)

// Scenarios returns the registered fault-injection experiments in the
// order the harness runs them.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "nf-instance-kill",
			Description: "kill an active-standby NAT's active instance; RepairNF must promote the warm standby with every binding intact",
			Budget:      Budget{MaxLossPct: 0, MaxStateLoss: 0, MaxReconverge: 2 * time.Second},
			run:         runNFInstanceKill,
		},
		{
			Name:        "node-kill-active-standby",
			Description: "kill the node hosting an active-standby NAT; the reconcile pass must promote the state-synced shadow node with zero state loss",
			Budget:      Budget{MaxLossPct: 0, MaxStateLoss: 0, MaxReconverge: 5 * time.Second},
			run:         runNodeKill,
		},
		{
			Name:        "link-sever",
			Description: "sever an inter-node link under a deployed cross-node chain; the graph must be re-placed over the remaining topology",
			Budget:      Budget{MaxLossPct: 0, MaxStateLoss: 0, MaxReconverge: 5 * time.Second},
			run:         runLinkSever,
		},
		{
			Name:        "rest-fault",
			Description: "fail then delay a node's REST control plane; the datapath must keep forwarding and the fleet must reconverge once REST heals",
			Budget:      Budget{MaxLossPct: 0, MaxStateLoss: 0, MaxReconverge: 5 * time.Second},
			run:         runRESTFault,
		},
		{
			Name:        "ha-leader-kill",
			Description: "crash the control-plane leader of a 3-replica cluster under live NAT traffic; a follower must be promoted with the full intent store intact, the deposed replica must fence, and no binding may be lost",
			Budget:      Budget{MaxLossPct: 0, MaxStateLoss: 0, MaxReconverge: time.Second},
			run:         runHALeaderKill,
		},
		{
			Name:        "ha-leader-partition",
			Description: "partition the leader from both followers; the majority must elect and keep taking writes, the isolated ex-leader must refuse mutations, and after healing it must rejoin and converge",
			Budget:      Budget{MaxLossPct: 0, MaxStateLoss: 0, MaxReconverge: time.Second},
			run:         runHALeaderPartition,
		},
	}
}

// runNFInstanceKill exercises the local tier: the NF crashes but the node
// survives, so RepairNF promotes the pre-attached standby instance through
// the same atomic SwapFlows repoint that scaling uses.
func runNFInstanceKill(o *Options) (stats, error) {
	var st stats
	f, err := newFleet(o, []nodeSpec{{name: "solo", ifaces: []string{"eth0", "eth1"}, cpuMillis: 4000}}, nil)
	if err != nil {
		return st, err
	}
	defer f.Close()
	node := f.nodes["solo"]
	if err := node.Deploy(natGraph("nk", nffg.RedundancyActiveStandby)); err != nil {
		return st, err
	}
	if sb := node.StandbyNFs("nk"); len(sb) != 1 {
		return st, fmt.Errorf("chaos: expected 1 standby NF, have %v", sb)
	}
	conns, err := establishNATConns(f, "solo", o.Conns)
	if err != nil {
		return st, err
	}
	node.SyncStandbys()
	if err := node.KillNF("nk", "nat"); err != nil {
		return st, err
	}
	t0 := time.Now()
	if err := node.RepairNF("nk", "nat"); err != nil {
		return st, fmt.Errorf("chaos: repairing killed NF: %w", err)
	}
	st.reconverge = time.Since(t0)
	return st, verifyNATConns(f, "solo", conns, &st)
}

// runNodeKill is the acceptance scenario: the whole node dies (its control
// plane stops answering), and the reconcile pass flips the graph onto the
// shadow node whose NAT was kept state-synced — bindings must survive.
func runNodeKill(o *Options) (stats, error) {
	var st stats
	f, err := newFleet(o, []nodeSpec{
		{name: "node-a", ifaces: []string{"eth0", "eth1"}, cpuMillis: 4000},
		{name: "node-b", ifaces: []string{"eth0", "eth1"}, cpuMillis: 4000},
	}, nil)
	if err != nil {
		return st, err
	}
	defer f.Close()
	if err := f.g.Deploy(natGraph("av", nffg.RedundancyActiveStandby)); err != nil {
		return st, err
	}
	pl, ok := f.g.Placement("av")
	if !ok {
		return st, fmt.Errorf("chaos: no placement recorded for graph av")
	}
	primary := pl.NFNode["nat"]
	standby := f.g.StandbyNode("av")
	if primary == "" || standby == "" || primary == standby {
		return st, fmt.Errorf("chaos: bad availability layout: primary %q standby %q", primary, standby)
	}
	conns, err := establishNATConns(f, primary, o.Conns)
	if err != nil {
		return st, err
	}
	if n := f.g.SyncStandbys(); n == 0 {
		return st, fmt.Errorf("chaos: standby sync replicated no flow state")
	}
	f.locals[primary].SetDown(true)
	t0 := time.Now()
	f.g.ReconcileOnce()
	st.reconverge = time.Since(t0)
	pl, _ = f.g.Placement("av")
	if got := pl.NFNode["nat"]; got != standby {
		return st, fmt.Errorf("chaos: NAT not re-homed to standby %q after node kill (on %q)", standby, got)
	}
	// Live traffic resumes on the promoted node; every binding the sync
	// replicated must still translate identically.
	return st, verifyNATConns(f, standby, conns, &st)
}

// runLinkSever cuts the direct inter-node link a deployed chain is
// stitched over; Unlink must re-place the graph across the surviving
// path through the middle node.
func runLinkSever(o *Options) (stats, error) {
	var st stats
	f, err := newFleet(o,
		[]nodeSpec{
			{name: "n1", ifaces: []string{"lan", "x12", "x13"}, cpuMillis: 4000},
			{name: "n2", ifaces: []string{"x12", "x23"}, cpuMillis: 4000},
			{name: "n3", ifaces: []string{"x13", "x23", "wan"}, cpuMillis: 4000},
		},
		[]linkSpec{
			{a: "n1", aIf: "x12", b: "n2", bIf: "x12"},
			{a: "n2", aIf: "x23", b: "n3", bIf: "x23"},
			{a: "n1", aIf: "x13", b: "n3", bIf: "x13"},
		})
	if err != nil {
		return st, err
	}
	defer f.Close()
	if err := f.g.Deploy(chainGraph("ch", 3)); err != nil {
		return st, err
	}
	// Pre-fault: the chain forwards end to end, payload intact.
	probe := testFrame(0x5a)
	st.sent++
	if err := f.send("n1", "lan", probe); err != nil {
		return st, err
	}
	got, ok := f.recv("n3", "wan")
	if !ok {
		return st, fmt.Errorf("chaos: chain dropped traffic before the fault")
	}
	st.received++
	if !bytes.Equal(got, probe) {
		st.stateLoss++
	}
	// Sever the direct n1-n3 link. Any stitch riding it is re-placed
	// synchronously inside Unlink; the n1-n2-n3 path remains.
	t0 := time.Now()
	if err := f.g.Unlink("n1", "x13", "n3", "x13"); err != nil {
		return st, err
	}
	st.reconverge = time.Since(t0)
	for i := 0; i < o.Conns; i++ {
		frame := testFrame(byte(i))
		st.sent++
		if err := f.send("n1", "lan", frame); err != nil {
			return st, err
		}
		got, ok := f.recv("n3", "wan")
		if !ok {
			continue
		}
		st.received++
		if !bytes.Equal(got, frame) {
			st.stateLoss++
		}
	}
	return st, nil
}

// faultTransport wraps a RoundTripper with injectable control-plane
// faults: a fixed added latency and a hard failure mode.
type faultTransport struct {
	base  http.RoundTripper
	mu    sync.Mutex
	fail  bool
	delay time.Duration
}

func (ft *faultTransport) set(fail bool, delay time.Duration) {
	ft.mu.Lock()
	ft.fail, ft.delay = fail, delay
	ft.mu.Unlock()
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	fail, delay := ft.fail, ft.delay
	ft.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return nil, fmt.Errorf("chaos: injected REST failure for %s", req.URL.Path)
	}
	return ft.base.RoundTrip(req)
}

// runRESTFault drives a node through its real REST surface (the global
// tier's HTTPNode over an httptest server) and breaks the control plane
// out from under the fleet: first hard failures — the node is declared
// dead but its datapath must keep forwarding — then a healed-but-slow
// phase the reconcile pass must absorb without churning the graph.
func runRESTFault(o *Options) (stats, error) {
	var st stats
	node, err := un.NewNode(un.Config{
		Name:         "h1",
		Interfaces:   []string{"lan", "wan"},
		CPUMillis:    4000,
		RAMBytes:     1 << 30,
		Capabilities: nodeCaps,
	})
	if err != nil {
		return st, err
	}
	defer node.Close()
	srv := httptest.NewServer(node.Handler())
	defer srv.Close()
	ft := &faultTransport{base: http.DefaultTransport}
	client := &http.Client{Transport: ft, Timeout: 2 * time.Second}
	g := global.New(global.Config{Logf: o.Logf, ProbeInterval: 5 * time.Millisecond})
	if err := g.AddNode(global.NewHTTPNode("h1", srv.URL, client)); err != nil {
		return st, err
	}
	if err := g.Deploy(chainGraph("web", 2)); err != nil {
		return st, err
	}
	send := func(frame []byte) error {
		p, ok := node.InterfacePort("lan")
		if !ok {
			return fmt.Errorf("chaos: node h1 has no interface lan")
		}
		return p.Send(netdev.Frame{Data: frame})
	}
	recv := func() ([]byte, bool) {
		p, ok := node.InterfacePort("wan")
		if !ok {
			return nil, false
		}
		fr, got := p.TryRecv()
		return fr.Data, got
	}
	// Hard control-plane failure: the probe marks the node dead, but the
	// datapath is not the control plane — frames must keep flowing.
	ft.set(true, 0)
	g.ReconcileOnce()
	for i := 0; i < o.Conns; i++ {
		frame := testFrame(byte(i))
		st.sent++
		if err := send(frame); err != nil {
			return st, err
		}
		if got, ok := recv(); ok {
			st.received++
			if !bytes.Equal(got, frame) {
				st.stateLoss++
			}
		}
	}
	// Heal, but slowly: every REST call now pays an injected latency. One
	// reconcile pass must re-admit the node without redeploying anything.
	ft.set(false, 2*time.Millisecond)
	t0 := time.Now()
	g.ReconcileOnce()
	st.reconverge = time.Since(t0)
	if _, ok := g.Placement("web"); !ok {
		return st, fmt.Errorf("chaos: graph lost its placement across the REST outage")
	}
	ids := node.GraphIDs()
	found := false
	for _, id := range ids {
		if id == "web" {
			found = true
		}
	}
	if !found {
		return st, fmt.Errorf("chaos: node was churned during REST outage: graphs %v", ids)
	}
	st.sent++
	frame := testFrame(0xa5)
	if err := send(frame); err != nil {
		return st, err
	}
	if got, ok := recv(); ok {
		st.received++
		if !bytes.Equal(got, frame) {
			st.stateLoss++
		}
	}
	return st, nil
}
