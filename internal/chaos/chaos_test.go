package chaos_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestChaosSuitePassesBudgets is the CI gate: every fault-injection
// scenario must stay within its packet-loss / state-loss / reconvergence
// budget. A red run here means an availability regression.
func TestChaosSuitePassesBudgets(t *testing.T) {
	rep := chaos.Run(chaos.Options{Logf: t.Logf})
	for _, s := range rep.Scenarios {
		t.Logf("%s: sent=%d received=%d loss=%.2f%% stateLoss=%d reconverge=%v pass=%v",
			s.Scenario, s.Sent, s.Received, s.LossPct, s.StateLoss, s.Reconverge, s.Pass)
		if s.Err != "" {
			t.Errorf("%s: %s", s.Scenario, s.Err)
		}
		for _, v := range s.Violations {
			t.Errorf("%s: budget violation: %s", s.Scenario, v)
		}
	}
	if err := rep.Gate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) < 6 {
		t.Fatalf("suite ran %d scenarios, want >= 6", len(rep.Scenarios))
	}
}

// TestElectionSoakCycles drives the 3-replica cluster through a few
// kill/revive election cycles (the nightly runs many more) and checks
// every failover lands inside the same budget the chaos scenarios gate.
func TestElectionSoakCycles(t *testing.T) {
	const cycles = 3
	times, err := chaos.ElectionSoak(cycles, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != cycles {
		t.Fatalf("soak measured %d cycles, want %d", len(times), cycles)
	}
	for i, d := range times {
		if d > time.Second {
			t.Errorf("cycle %d failover %v exceeds 1s budget", i+1, d)
		}
	}
}

// TestReportGateFailsOnViolation: a report carrying a violated budget
// must gate red — the property the CI job's exit code rests on.
func TestReportGateFailsOnViolation(t *testing.T) {
	rep := &chaos.Report{
		Pass: false,
		Scenarios: []chaos.Result{
			{Scenario: "ok", Pass: true},
			{Scenario: "bad", Pass: false, Violations: []string{"packet loss 12.50% exceeds budget 0.00%"}},
		},
	}
	err := rep.Gate()
	if err == nil {
		t.Fatal("Gate() = nil for a failing report")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("Gate() error does not name the failing scenario: %v", err)
	}
	if (&chaos.Report{Pass: true}).Gate() != nil {
		t.Error("Gate() != nil for a passing report")
	}
}

// TestReportSerialization: the JSON artifact round-trips and the markdown
// summary carries one row per scenario plus a verdict.
func TestReportSerialization(t *testing.T) {
	rep := &chaos.Report{
		Pass:   true,
		Repeat: 1,
		Conns:  16,
		Scenarios: []chaos.Result{{
			Scenario: "node-kill-active-standby",
			Sent:     64, Received: 64,
			Reconverge: 3 * time.Millisecond,
			Budget:     chaos.Budget{MaxReconverge: 5 * time.Second},
			Pass:       true,
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back chaos.Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != 1 || back.Scenarios[0].Scenario != "node-kill-active-standby" {
		t.Fatalf("round-trip mangled the report: %+v", back)
	}
	buf.Reset()
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	if !strings.Contains(md, "node-kill-active-standby") || !strings.Contains(md, "pass") {
		t.Errorf("markdown summary missing scenario row:\n%s", md)
	}
}
