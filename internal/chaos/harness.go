package chaos

import (
	"fmt"
	"time"

	un "repro"
	"repro/internal/global"
	"repro/internal/netdev"
	"repro/internal/nffg"
	"repro/internal/pkt"
)

// nodeCaps is the full capability set of a harness node: every execution
// environment and every native NF the repository ships.
var nodeCaps = []string{
	"kvm", "docker", "dpdk",
	"nnf:ipsec", "nnf:firewall", "nnf:nat", "nnf:bridge", "nnf:router", "nnf:monitor", "nnf:shaper",
}

// fleet is an in-process multi-node rig: one global orchestrator over
// complete Universal Nodes wired with patch cables — the same shape the
// integration tests use, rebuilt here as production code so the chaos
// CLI and the CI job can drive it outside `go test`.
type fleet struct {
	g      *global.Orchestrator
	nodes  map[string]*un.Node
	locals map[string]*global.LocalNode
	undo   []func()
}

type nodeSpec struct {
	name      string
	ifaces    []string
	cpuMillis int
}

// linkSpec wires iface aIf of node a to iface bIf of node b.
type linkSpec struct{ a, aIf, b, bIf string }

func newFleet(o *Options, specs []nodeSpec, links []linkSpec) (*fleet, error) {
	f := &fleet{
		g:      global.New(global.Config{Logf: o.Logf, ProbeInterval: 5 * time.Millisecond}),
		nodes:  make(map[string]*un.Node),
		locals: make(map[string]*global.LocalNode),
	}
	for _, spec := range specs {
		node, err := un.NewNode(un.Config{
			Name:         spec.name,
			Interfaces:   spec.ifaces,
			CPUMillis:    spec.cpuMillis,
			RAMBytes:     1 << 30,
			Capabilities: nodeCaps,
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("chaos: node %q: %w", spec.name, err)
		}
		f.nodes[spec.name] = node
		f.undo = append(f.undo, node.Close)
		ln := global.NewLocalNode(spec.name, node)
		f.locals[spec.name] = ln
		if err := f.g.AddNode(ln); err != nil {
			f.Close()
			return nil, fmt.Errorf("chaos: adding node %q: %w", spec.name, err)
		}
	}
	for _, l := range links {
		pa, ok := f.nodes[l.a].InterfacePort(l.aIf)
		if !ok {
			f.Close()
			return nil, fmt.Errorf("chaos: node %q has no interface %q", l.a, l.aIf)
		}
		pb, ok := f.nodes[l.b].InterfacePort(l.bIf)
		if !ok {
			f.Close()
			return nil, fmt.Errorf("chaos: node %q has no interface %q", l.b, l.bIf)
		}
		f.undo = append(f.undo, global.Patch(pa, pb))
		if err := f.g.Link(l.a, l.aIf, l.b, l.bIf); err != nil {
			f.Close()
			return nil, fmt.Errorf("chaos: linking %s/%s-%s/%s: %w", l.a, l.aIf, l.b, l.bIf, err)
		}
	}
	return f, nil
}

func (f *fleet) Close() {
	for i := len(f.undo) - 1; i >= 0; i-- {
		f.undo[i]()
	}
}

func (f *fleet) send(node, iface string, data []byte) error {
	p, ok := f.nodes[node].InterfacePort(iface)
	if !ok {
		return fmt.Errorf("chaos: node %q has no interface %q", node, iface)
	}
	return p.Send(netdev.Frame{Data: data})
}

func (f *fleet) recv(node, iface string) ([]byte, bool) {
	p, ok := f.nodes[node].InterfacePort(iface)
	if !ok {
		return nil, false
	}
	fr, got := p.TryRecv()
	return fr.Data, got
}

const natExternalIP = "198.51.100.1"

var natRemote = pkt.Addr{203, 0, 113, 50}

const natRemotePort = 53

// natGraph wires a source NAT between eth0 (LAN) and eth1 (WAN), with the
// requested redundancy mode and an availability target that demands it.
func natGraph(id string, redundancy nffg.RedundancyMode) *nffg.Graph {
	n := nffg.NF{
		ID: "nat", Name: "nat",
		Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
		TechnologyPreference: nffg.TechDocker,
		Config:               map[string]string{"external_ip": natExternalIP},
	}
	if redundancy != "" {
		n.Redundancy = redundancy
		n.Availability = 0.999
	}
	return &nffg.Graph{
		ID:  id,
		NFs: []nffg.NF{n},
		Endpoints: []nffg.Endpoint{
			{ID: "lan", Type: nffg.EPInterface, Interface: "eth0"},
			{ID: "wan", Type: nffg.EPInterface, Interface: "eth1"},
		},
		Rules: []nffg.FlowRule{
			{ID: "r1", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.EndpointRef("lan")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("nat", "0")}}},
			{ID: "r2", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.NFPortRef("nat", "1")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("wan")}}},
			{ID: "r3", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.EndpointRef("wan")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("nat", "1")}}},
			{ID: "r4", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.NFPortRef("nat", "0")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("lan")}}},
		},
	}
}

// chainGraph builds a linear pass-through service chain between the lan
// and wan interface endpoints: firewall -> monitor -> bridge repeated.
func chainGraph(id string, nfs int) *nffg.Graph {
	templates := []string{"firewall", "monitor", "bridge"}
	g := &nffg.Graph{ID: id, Name: "chaos-chain"}
	for i := 0; i < nfs; i++ {
		g.NFs = append(g.NFs, nffg.NF{
			ID:    fmt.Sprintf("nf%d", i),
			Name:  templates[i%len(templates)],
			Ports: []nffg.NFPort{{ID: "0"}, {ID: "1"}},
		})
	}
	g.Endpoints = []nffg.Endpoint{
		{ID: "lan", Type: nffg.EPInterface, Interface: "lan"},
		{ID: "wan", Type: nffg.EPInterface, Interface: "wan"},
	}
	prev := nffg.EndpointRef("lan")
	for i := 0; i < nfs; i++ {
		g.Rules = append(g.Rules, nffg.FlowRule{
			ID: fmt.Sprintf("r%d", i), Priority: 10,
			Match:   nffg.RuleMatch{PortIn: prev},
			Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef(fmt.Sprintf("nf%d", i), "0")}},
		})
		prev = nffg.NFPortRef(fmt.Sprintf("nf%d", i), "1")
	}
	g.Rules = append(g.Rules, nffg.FlowRule{
		ID: "r-out", Priority: 10,
		Match:   nffg.RuleMatch{PortIn: prev},
		Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("wan")}},
	})
	return g
}

// testFrame is one UDP probe frame with a distinguishing payload byte.
func testFrame(payloadByte byte) []byte {
	return pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.Addr{10, 0, 0, 1}, DstIP: pkt.Addr{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 5001, PayloadLen: 64, PayloadByte: payloadByte,
	})
}

// natConn is one live translated connection the harness drives traffic
// through across a fault.
type natConn struct {
	srcIP            pkt.Addr
	srcPort, extPort uint16
}

func (c *natConn) outboundFrame() []byte {
	return pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: c.srcIP, DstIP: natRemote,
		SrcPort: c.srcPort, DstPort: natRemotePort, PayloadLen: 64,
	})
}

func (c *natConn) replyFrame() ([]byte, error) {
	ext, err := pkt.ParseAddr(natExternalIP)
	if err != nil {
		return nil, err
	}
	return pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 2}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 1},
		SrcIP: natRemote, DstIP: ext,
		SrcPort: natRemotePort, DstPort: c.extPort, PayloadLen: 64,
	}), nil
}

func udpOf(frame []byte) (*pkt.UDP, error) {
	p := pkt.NewPacket(frame, pkt.LayerTypeEthernet, pkt.Default)
	udp, ok := p.Layer(pkt.LayerTypeUDP).(*pkt.UDP)
	if !ok {
		return nil, fmt.Errorf("chaos: frame is not UDP")
	}
	return udp, nil
}

// establishNATConns opens n distinct connections through the NAT on the
// given node and records the external port each was mapped to. A loss
// here means the rig itself is broken, so it is an error, not a metric.
func establishNATConns(f *fleet, node string, n int) ([]*natConn, error) {
	conns := make([]*natConn, n)
	for i := range conns {
		c := &natConn{
			srcIP:   pkt.Addr{10, 0, 0, byte(i%250 + 1)},
			srcPort: uint16(30000 + i),
		}
		if err := f.send(node, "eth0", c.outboundFrame()); err != nil {
			return nil, err
		}
		out, ok := f.recv(node, "eth1")
		if !ok {
			return nil, fmt.Errorf("chaos: conn %d lost before any fault was injected", i)
		}
		udp, err := udpOf(out)
		if err != nil {
			return nil, err
		}
		c.extPort = udp.SrcPort
		conns[i] = c
	}
	return conns, nil
}

// verifyNATConns pushes one packet in each direction of every connection
// through the given node, counting losses and state losses (a binding
// whose external port changed, or a reply translated to the wrong host).
func verifyNATConns(f *fleet, node string, conns []*natConn, st *stats) error {
	for _, c := range conns {
		st.sent++
		if err := f.send(node, "eth0", c.outboundFrame()); err != nil {
			return err
		}
		out, ok := f.recv(node, "eth1")
		if !ok {
			continue
		}
		st.received++
		udp, err := udpOf(out)
		if err != nil {
			return err
		}
		if udp.SrcPort != c.extPort {
			st.stateLoss++
			continue
		}
		reply, err := c.replyFrame()
		if err != nil {
			return err
		}
		st.sent++
		if err := f.send(node, "eth1", reply); err != nil {
			return err
		}
		back, ok := f.recv(node, "eth0")
		if !ok {
			continue
		}
		st.received++
		rudp, err := udpOf(back)
		if err != nil {
			return err
		}
		p := pkt.NewPacket(back, pkt.LayerTypeEthernet, pkt.Default)
		ip, ok := p.Layer(pkt.LayerTypeIPv4).(*pkt.IPv4)
		if !ok || ip.DstIP != c.srcIP || rudp.DstPort != c.srcPort {
			st.stateLoss++
		}
	}
	return nil
}
