// Package chaos is the fault-injection harness that turns the repo's
// availability machinery into a gated CI check. Each scenario builds a
// real in-process fleet (complete Universal Nodes under the global
// orchestrator, wired with patch cables), establishes live stateful
// traffic, injects one class of fault — an NF instance crash, a node
// loss, a severed inter-node link, a flaky REST control plane — and
// measures what the paper's orchestration model promises to bound:
// packet loss, per-flow state loss, and reconvergence time. A Report
// compares every measurement against the scenario's Budget; Gate turns
// any violation into a build failure.
package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Budget is the per-scenario acceptance envelope.
type Budget struct {
	// MaxLossPct is the tolerated packet loss across the scenario's
	// measured traffic, in percent of frames sent.
	MaxLossPct float64 `json:"max-loss-pct"`
	// MaxStateLoss is the tolerated number of per-flow state entries
	// (NAT bindings, SAs) observed lost or corrupted after recovery.
	MaxStateLoss int `json:"max-state-loss"`
	// MaxReconverge bounds how long the control plane may take to
	// recover service after the fault. Zero means unbounded.
	MaxReconverge time.Duration `json:"max-reconverge-ns"`
}

// Result is one scenario's measured outcome, compared against its budget.
type Result struct {
	Scenario    string  `json:"scenario"`
	Description string  `json:"description"`
	Sent        int     `json:"sent"`
	Received    int     `json:"received"`
	LossPct     float64 `json:"loss-pct"`
	// StateLoss counts flow-state entries (e.g. NAT bindings) whose
	// post-recovery behavior differs from before the fault.
	StateLoss  int           `json:"state-loss"`
	Reconverge time.Duration `json:"reconverge-ns"`
	Budget     Budget        `json:"budget"`
	Violations []string      `json:"violations,omitempty"`
	Err        string        `json:"error,omitempty"`
	Pass       bool          `json:"pass"`
}

// Report is the full harness run: one Result per scenario.
type Report struct {
	Scenarios []Result `json:"scenarios"`
	Repeat    int      `json:"repeat"`
	Conns     int      `json:"conns"`
	Pass      bool     `json:"pass"`
}

// Options tune how hard the harness pushes. The zero value is the CI
// profile; nightly soak raises Conns and Repeat.
type Options struct {
	// Conns is how many stateful connections each scenario establishes
	// before injecting its fault. Default 16.
	Conns int
	// Repeat reruns every scenario this many times, accumulating traffic
	// counts and keeping the worst reconvergence. Default 1.
	Repeat int
	// Logf receives harness progress; nil discards it.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Conns <= 0 {
		o.Conns = 16
	}
	if o.Repeat <= 0 {
		o.Repeat = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// stats is what one scenario execution measured.
type stats struct {
	sent, received, stateLoss int
	reconverge                time.Duration
}

// Scenario is one fault-injection experiment with its acceptance budget.
type Scenario struct {
	Name        string
	Description string
	Budget      Budget
	run         func(o *Options) (stats, error)
}

// Run executes every registered scenario Repeat times and gates the
// accumulated measurements against each scenario's budget.
func Run(opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{Pass: true, Repeat: opts.Repeat, Conns: opts.Conns}
	for _, sc := range Scenarios() {
		res := Result{Scenario: sc.Name, Description: sc.Description, Budget: sc.Budget}
		for i := 0; i < opts.Repeat; i++ {
			opts.Logf("chaos: %s (run %d/%d)", sc.Name, i+1, opts.Repeat)
			st, err := sc.run(&opts)
			res.Sent += st.sent
			res.Received += st.received
			res.StateLoss += st.stateLoss
			if st.reconverge > res.Reconverge {
				res.Reconverge = st.reconverge
			}
			if err != nil {
				res.Err = err.Error()
				break
			}
		}
		if res.Sent > 0 {
			res.LossPct = 100 * float64(res.Sent-res.Received) / float64(res.Sent)
		}
		if res.Err != "" {
			res.Violations = append(res.Violations, "scenario error: "+res.Err)
		}
		if res.LossPct > sc.Budget.MaxLossPct {
			res.Violations = append(res.Violations,
				fmt.Sprintf("packet loss %.2f%% exceeds budget %.2f%%", res.LossPct, sc.Budget.MaxLossPct))
		}
		if res.StateLoss > sc.Budget.MaxStateLoss {
			res.Violations = append(res.Violations,
				fmt.Sprintf("state loss %d exceeds budget %d", res.StateLoss, sc.Budget.MaxStateLoss))
		}
		if sc.Budget.MaxReconverge > 0 && res.Reconverge > sc.Budget.MaxReconverge {
			res.Violations = append(res.Violations,
				fmt.Sprintf("reconvergence %v exceeds budget %v", res.Reconverge, sc.Budget.MaxReconverge))
		}
		res.Pass = len(res.Violations) == 0
		if !res.Pass {
			rep.Pass = false
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}
	return rep
}

// Gate returns a non-nil error when any scenario violated its budget —
// the CI job's failure signal.
func (r *Report) Gate() error {
	if r.Pass {
		return nil
	}
	var failed []string
	for _, s := range r.Scenarios {
		if !s.Pass {
			failed = append(failed, s.Scenario)
		}
	}
	return fmt.Errorf("chaos: %d/%d scenarios violated their budget: %v",
		len(failed), len(r.Scenarios), failed)
}

// WriteJSON emits the report as the CI artifact format.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteMarkdown renders the report as a GitHub-flavored summary table,
// published into $GITHUB_STEP_SUMMARY by the CI job.
func (r *Report) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## Chaos report (%d conns, repeat %d)\n\n", r.Conns, r.Repeat); err != nil {
		return err
	}
	fmt.Fprintln(w, "| Scenario | Sent | Recv | Loss | State loss | Reconverge | Budget | Verdict |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|")
	for _, s := range r.Scenarios {
		verdict := "✅ pass"
		if !s.Pass {
			verdict = "❌ " + s.Violations[0]
		}
		budget := fmt.Sprintf("≤%.1f%% loss, ≤%d state, ≤%v",
			s.Budget.MaxLossPct, s.Budget.MaxStateLoss, s.Budget.MaxReconverge)
		fmt.Fprintf(w, "| %s | %d | %d | %.2f%% | %d | %v | %s | %s |\n",
			s.Scenario, s.Sent, s.Received, s.LossPct, s.StateLoss,
			s.Reconverge.Round(time.Microsecond), budget, verdict)
	}
	_, err := fmt.Fprintln(w)
	return err
}
