package nffg

import (
	"encoding/json"
	"fmt"
)

// Wire types mirroring the un-orchestrator's NF-FG JSON schema. The exported
// Graph type is converted to and from these shapes so the Go model can stay
// idiomatic.

type jsonRoot struct {
	ForwardingGraph jsonGraph `json:"forwarding-graph"`
}

type jsonGraph struct {
	ID        string         `json:"id"`
	Name      string         `json:"name,omitempty"`
	VNFs      []jsonNF       `json:"VNFs,omitempty"`
	Endpoints []jsonEndpoint `json:"end-points,omitempty"`
	BigSwitch *jsonBigSwitch `json:"big-switch,omitempty"`
}

type jsonNF struct {
	ID           string            `json:"id"`
	Name         string            `json:"name"`
	Ports        []jsonNFPort      `json:"ports,omitempty"`
	Technology   string            `json:"technology-preference,omitempty"`
	Config       map[string]string `json:"configuration,omitempty"`
	Replicas     int               `json:"replicas,omitempty"`
	Availability float64           `json:"availability,omitempty"`
	Redundancy   string            `json:"redundancy,omitempty"`
	AntiAffinity string            `json:"anti_affinity,omitempty"`
}

type jsonNFPort struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
}

type jsonEndpoint struct {
	ID        string           `json:"id"`
	Type      string           `json:"type"`
	Interface *jsonEPInterface `json:"interface,omitempty"`
	VLAN      *jsonEPVLAN      `json:"vlan,omitempty"`
	Internal  *jsonEPInternal  `json:"internal,omitempty"`
}

type jsonEPInterface struct {
	IfName string `json:"if-name"`
}

type jsonEPVLAN struct {
	VLANID uint16 `json:"vlan-id"`
	IfName string `json:"if-name"`
}

type jsonEPInternal struct {
	Group string `json:"internal-group"`
}

type jsonBigSwitch struct {
	FlowRules []jsonFlowRule `json:"flow-rules"`
}

type jsonFlowRule struct {
	ID       string       `json:"id"`
	Priority int          `json:"priority"`
	Match    jsonMatch    `json:"match"`
	Actions  []jsonAction `json:"actions"`
}

type jsonMatch struct {
	PortIn     string `json:"port_in"`
	EtherType  string `json:"ether_type,omitempty"` // hex "0x0800"
	VLANID     uint16 `json:"vlan_id,omitempty"`
	Protocol   uint8  `json:"protocol,omitempty"`
	SourceIP   string `json:"source_ip,omitempty"`
	DestIP     string `json:"dest_ip,omitempty"`
	SourcePort uint16 `json:"source_port,omitempty"`
	DestPort   uint16 `json:"dest_port,omitempty"`
}

type jsonAction struct {
	OutputToPort string `json:"output_to_port,omitempty"`
	PushVLAN     uint16 `json:"push_vlan,omitempty"`
	PopVLAN      bool   `json:"pop_vlan,omitempty"`
	SetEthSrc    string `json:"set_eth_src,omitempty"`
	SetEthDst    string `json:"set_eth_dst,omitempty"`
}

// MarshalJSON renders the graph in the un-orchestrator schema.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{ID: g.ID, Name: g.Name}
	for _, nf := range g.NFs {
		jnf := jsonNF{
			ID:           nf.ID,
			Name:         nf.Name,
			Technology:   string(nf.TechnologyPreference),
			Config:       nf.Config,
			Replicas:     nf.Replicas,
			Availability: nf.Availability,
			Redundancy:   string(nf.Redundancy),
			AntiAffinity: nf.AntiAffinity,
		}
		for _, p := range nf.Ports {
			jnf.Ports = append(jnf.Ports, jsonNFPort(p))
		}
		jg.VNFs = append(jg.VNFs, jnf)
	}
	for _, ep := range g.Endpoints {
		jep := jsonEndpoint{ID: ep.ID, Type: string(ep.Type)}
		switch ep.Type {
		case EPInterface:
			jep.Interface = &jsonEPInterface{IfName: ep.Interface}
		case EPVLAN:
			jep.VLAN = &jsonEPVLAN{VLANID: ep.VLANID, IfName: ep.Interface}
		case EPInternal:
			jep.Internal = &jsonEPInternal{Group: ep.InternalGroup}
		}
		jg.Endpoints = append(jg.Endpoints, jep)
	}
	if len(g.Rules) > 0 {
		bs := &jsonBigSwitch{}
		for _, r := range g.Rules {
			jr := jsonFlowRule{
				ID:       r.ID,
				Priority: r.Priority,
				Match: jsonMatch{
					PortIn:     r.Match.PortIn.String(),
					VLANID:     r.Match.VLANID,
					Protocol:   r.Match.IPProto,
					SourceIP:   r.Match.IPSrc,
					DestIP:     r.Match.IPDst,
					SourcePort: r.Match.L4Src,
					DestPort:   r.Match.L4Dst,
				},
			}
			if r.Match.EtherType != 0 {
				jr.Match.EtherType = fmt.Sprintf("%#04x", r.Match.EtherType)
			}
			for _, a := range r.Actions {
				var ja jsonAction
				switch a.Type {
				case ActOutput:
					ja.OutputToPort = a.Output.String()
				case ActPushVLAN:
					ja.PushVLAN = a.VLANID
				case ActPopVLAN:
					ja.PopVLAN = true
				case ActSetEthSrc:
					ja.SetEthSrc = a.MAC
				case ActSetEthDst:
					ja.SetEthDst = a.MAC
				default:
					return nil, fmt.Errorf("nffg: unencodable action type %q", a.Type)
				}
				jr.Actions = append(jr.Actions, ja)
			}
			bs.FlowRules = append(bs.FlowRules, jr)
		}
		jg.BigSwitch = bs
	}
	return json.Marshal(jsonRoot{ForwardingGraph: jg})
}

// UnmarshalJSON parses the un-orchestrator schema.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var root jsonRoot
	if err := json.Unmarshal(data, &root); err != nil {
		return fmt.Errorf("nffg: %w", err)
	}
	jg := root.ForwardingGraph
	*g = Graph{ID: jg.ID, Name: jg.Name}
	for _, jnf := range jg.VNFs {
		nf := NF{
			ID:                   jnf.ID,
			Name:                 jnf.Name,
			TechnologyPreference: Technology(jnf.Technology),
			Config:               jnf.Config,
			Replicas:             jnf.Replicas,
			Availability:         jnf.Availability,
			Redundancy:           RedundancyMode(jnf.Redundancy),
			AntiAffinity:         jnf.AntiAffinity,
		}
		for _, p := range jnf.Ports {
			nf.Ports = append(nf.Ports, NFPort(p))
		}
		g.NFs = append(g.NFs, nf)
	}
	for _, jep := range jg.Endpoints {
		ep := Endpoint{ID: jep.ID, Type: EndpointType(jep.Type)}
		switch ep.Type {
		case EPInterface:
			if jep.Interface == nil {
				return fmt.Errorf("nffg: endpoint %q: missing interface section", jep.ID)
			}
			ep.Interface = jep.Interface.IfName
		case EPVLAN:
			if jep.VLAN == nil {
				return fmt.Errorf("nffg: endpoint %q: missing vlan section", jep.ID)
			}
			ep.Interface = jep.VLAN.IfName
			ep.VLANID = jep.VLAN.VLANID
		case EPInternal:
			if jep.Internal == nil {
				return fmt.Errorf("nffg: endpoint %q: missing internal section", jep.ID)
			}
			ep.InternalGroup = jep.Internal.Group
		default:
			return fmt.Errorf("nffg: endpoint %q: unknown type %q", jep.ID, jep.Type)
		}
		g.Endpoints = append(g.Endpoints, ep)
	}
	if jg.BigSwitch != nil {
		for _, jr := range jg.BigSwitch.FlowRules {
			r := FlowRule{ID: jr.ID, Priority: jr.Priority}
			portIn, err := ParsePortRef(jr.Match.PortIn)
			if err != nil {
				return fmt.Errorf("nffg: rule %q: %w", jr.ID, err)
			}
			r.Match = RuleMatch{
				PortIn:  portIn,
				VLANID:  jr.Match.VLANID,
				IPProto: jr.Match.Protocol,
				IPSrc:   jr.Match.SourceIP,
				IPDst:   jr.Match.DestIP,
				L4Src:   jr.Match.SourcePort,
				L4Dst:   jr.Match.DestPort,
			}
			if jr.Match.EtherType != "" {
				var et uint16
				if _, err := fmt.Sscanf(jr.Match.EtherType, "0x%04x", &et); err != nil {
					return fmt.Errorf("nffg: rule %q: bad ether_type %q", jr.ID, jr.Match.EtherType)
				}
				r.Match.EtherType = et
			}
			for ai, ja := range jr.Actions {
				var a RuleAction
				switch {
				case ja.OutputToPort != "":
					out, err := ParsePortRef(ja.OutputToPort)
					if err != nil {
						return fmt.Errorf("nffg: rule %q action %d: %w", jr.ID, ai, err)
					}
					a = RuleAction{Type: ActOutput, Output: out}
				case ja.PushVLAN != 0:
					a = RuleAction{Type: ActPushVLAN, VLANID: ja.PushVLAN}
				case ja.PopVLAN:
					a = RuleAction{Type: ActPopVLAN}
				case ja.SetEthSrc != "":
					a = RuleAction{Type: ActSetEthSrc, MAC: ja.SetEthSrc}
				case ja.SetEthDst != "":
					a = RuleAction{Type: ActSetEthDst, MAC: ja.SetEthDst}
				default:
					return fmt.Errorf("nffg: rule %q action %d: empty action", jr.ID, ai)
				}
				r.Actions = append(r.Actions, a)
			}
			g.Rules = append(g.Rules, r)
		}
	}
	return nil
}
