package nffg

import (
	"encoding/json"
	"strings"
	"testing"
)

// availGraph is the sample graph with an availability contract on its NF.
func availGraph(avail float64, mode RedundancyMode, replicas int, group string) *Graph {
	g := sampleGraph()
	g.NFs[0].Availability = avail
	g.NFs[0].Redundancy = mode
	g.NFs[0].Replicas = replicas
	g.NFs[0].AntiAffinity = group
	return g
}

func TestValidateAvailability(t *testing.T) {
	valid := []*Graph{
		availGraph(0, RedundancyNone, 0, ""),
		availGraph(0.99, RedundancyNone, 0, ""), // two nines: restart-in-place is enough
		availGraph(0.999, RedundancyActiveStandby, 1, ""),
		availGraph(0.9999, RedundancyActiveActive, 3, "fw-spread"),
	}
	for i, g := range valid {
		if err := g.Validate(); err != nil {
			t.Errorf("valid case %d rejected: %v", i, err)
		}
	}
	invalid := map[string]*Graph{
		"availability 1.0":             availGraph(1.0, RedundancyActiveStandby, 1, ""),
		"negative availability":        availGraph(-0.5, RedundancyNone, 0, ""),
		"unknown redundancy mode":      availGraph(0, "triple-modular", 0, ""),
		"three nines without mode":     availGraph(0.999, RedundancyNone, 0, ""),
		"active-standby with replicas": availGraph(0.999, RedundancyActiveStandby, 3, ""),
		"active-active single":         availGraph(0.999, RedundancyActiveActive, 1, ""),
	}
	for name, g := range invalid {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestAvailabilityJSONRoundTrip(t *testing.T) {
	g := availGraph(0.999, RedundancyActiveStandby, 1, "cpe-ha")
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"availability":0.999`, `"redundancy":"active-standby"`, `"anti_affinity":"cpe-ha"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%s", want, data)
		}
	}
	var got Graph
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	nf := got.NFs[0]
	if nf.Availability != 0.999 || nf.Redundancy != RedundancyActiveStandby || nf.AntiAffinity != "cpe-ha" {
		t.Fatalf("round trip lost the availability contract: %+v", nf)
	}
	// The fields are omitted entirely for NFs without a contract, keeping
	// pre-existing documents byte-stable.
	plain, err := json.Marshal(sampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"availability", "redundancy", "anti_affinity"} {
		if strings.Contains(string(plain), banned) {
			t.Errorf("plain graph JSON leaks %q:\n%s", banned, plain)
		}
	}
}
