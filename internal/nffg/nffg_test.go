package nffg

import (
	"encoding/json"
	"strings"
	"testing"
)

// sampleGraph builds the paper's motivating service: an IPsec endpoint on
// the CPE between the LAN interface and the WAN interface.
func sampleGraph() *Graph {
	return &Graph{
		ID:   "graph-1",
		Name: "ipsec-cpe",
		NFs: []NF{{
			ID:   "ipsec",
			Name: "ipsec",
			Ports: []NFPort{
				{ID: "0", Name: "plain"},
				{ID: "1", Name: "encrypted"},
			},
			TechnologyPreference: TechNative,
			Config:               map[string]string{"remote": "203.0.113.9"},
		}},
		Endpoints: []Endpoint{
			{ID: "lan", Type: EPInterface, Interface: "eth0"},
			{ID: "wan", Type: EPVLAN, Interface: "eth1", VLANID: 100},
		},
		Rules: []FlowRule{
			{
				ID: "r1", Priority: 10,
				Match:   RuleMatch{PortIn: EndpointRef("lan")},
				Actions: []RuleAction{{Type: ActOutput, Output: NFPortRef("ipsec", "0")}},
			},
			{
				ID: "r2", Priority: 10,
				Match:   RuleMatch{PortIn: NFPortRef("ipsec", "1")},
				Actions: []RuleAction{{Type: ActOutput, Output: EndpointRef("wan")}},
			},
			{
				ID: "r3", Priority: 10,
				Match:   RuleMatch{PortIn: EndpointRef("wan")},
				Actions: []RuleAction{{Type: ActOutput, Output: NFPortRef("ipsec", "1")}},
			},
			{
				ID: "r4", Priority: 10,
				Match:   RuleMatch{PortIn: NFPortRef("ipsec", "0")},
				Actions: []RuleAction{{Type: ActOutput, Output: EndpointRef("lan")}},
			},
		},
	}
}

func TestValidateSample(t *testing.T) {
	if err := sampleGraph().Validate(); err != nil {
		t.Fatalf("sample graph invalid: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := sampleGraph()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"forwarding-graph", "VNFs", "end-points", "big-switch",
		"flow-rules", "port_in", "output_to_port", "vnf:ipsec:0", "endpoint:lan",
		"technology-preference"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %q:\n%s", want, data)
		}
	}
	var got Graph
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if d := Compute(g, &got); !d.Empty() {
		t.Errorf("round trip changed the graph: %+v", d)
	}
}

func TestJSONUnmarshalLiteral(t *testing.T) {
	// A literal document in the un-orchestrator shape.
	doc := `{
	  "forwarding-graph": {
	    "id": "g7",
	    "name": "firewall chain",
	    "VNFs": [
	      {"id": "fw", "name": "firewall", "ports": [{"id": "0"}, {"id": "1"}]}
	    ],
	    "end-points": [
	      {"id": "in",  "type": "interface", "interface": {"if-name": "eth0"}},
	      {"id": "out", "type": "vlan", "vlan": {"vlan-id": 42, "if-name": "eth1"}},
	      {"id": "next", "type": "internal", "internal": {"internal-group": "gA"}}
	    ],
	    "big-switch": {"flow-rules": [
	      {"id": "r1", "priority": 100,
	       "match": {"port_in": "endpoint:in", "ether_type": "0x0800", "dest_port": 80},
	       "actions": [{"output_to_port": "vnf:fw:0"}]},
	      {"id": "r2", "priority": 1,
	       "match": {"port_in": "vnf:fw:1"},
	       "actions": [{"push_vlan": 42}, {"output_to_port": "endpoint:out"}]}
	    ]}
	  }
	}`
	var g Graph
	if err := json.Unmarshal([]byte(doc), &g); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.ID != "g7" || len(g.NFs) != 1 || len(g.Endpoints) != 3 || len(g.Rules) != 2 {
		t.Errorf("parsed graph = %+v", g)
	}
	if g.Rules[0].Match.EtherType != 0x0800 {
		t.Errorf("ether_type = %#x", g.Rules[0].Match.EtherType)
	}
	if g.Rules[0].Match.L4Dst != 80 {
		t.Errorf("dest_port = %d", g.Rules[0].Match.L4Dst)
	}
	if g.Rules[1].Actions[0].Type != ActPushVLAN || g.Rules[1].Actions[0].VLANID != 42 {
		t.Errorf("actions = %+v", g.Rules[1].Actions)
	}
	if g.Endpoints[2].InternalGroup != "gA" {
		t.Errorf("internal endpoint = %+v", g.Endpoints[2])
	}
}

func TestPortRefParse(t *testing.T) {
	cases := []struct {
		in   string
		want PortRef
		ok   bool
	}{
		{"vnf:nf1:0", PortRef{NF: "nf1", Port: "0"}, true},
		{"vnf:nf:with:colons:p9", PortRef{NF: "nf:with:colons", Port: "p9"}, true},
		{"endpoint:ep1", PortRef{Endpoint: "ep1"}, true},
		{"vnf:", PortRef{}, false},
		{"vnf:x", PortRef{}, false},
		{"vnf:x:", PortRef{}, false},
		{"endpoint:", PortRef{}, false},
		{"garbage", PortRef{}, false},
	}
	for _, c := range cases {
		got, err := ParsePortRef(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePortRef(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParsePortRef(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if c.ok {
			back, err := ParsePortRef(got.String())
			if err != nil || back != got {
				t.Errorf("String round trip broken for %q", c.in)
			}
		}
	}
}

func TestValidateRejections(t *testing.T) {
	break_ := func(f func(*Graph)) *Graph {
		g := sampleGraph()
		f(g)
		return g
	}
	cases := map[string]*Graph{
		"empty graph id":     break_(func(g *Graph) { g.ID = "" }),
		"duplicate NF":       break_(func(g *Graph) { g.NFs = append(g.NFs, g.NFs[0]) }),
		"NF without name":    break_(func(g *Graph) { g.NFs[0].Name = "" }),
		"NF without ports":   break_(func(g *Graph) { g.NFs[0].Ports = nil }),
		"dup NF port":        break_(func(g *Graph) { g.NFs[0].Ports = append(g.NFs[0].Ports, g.NFs[0].Ports[0]) }),
		"bad technology":     break_(func(g *Graph) { g.NFs[0].TechnologyPreference = "mainframe" }),
		"dup endpoint":       break_(func(g *Graph) { g.Endpoints = append(g.Endpoints, g.Endpoints[0]) }),
		"vlan ep no id":      break_(func(g *Graph) { g.Endpoints[1].VLANID = 0 }),
		"vlan ep big id":     break_(func(g *Graph) { g.Endpoints[1].VLANID = 4095 }),
		"iface ep no name":   break_(func(g *Graph) { g.Endpoints[0].Interface = "" }),
		"dup rule":           break_(func(g *Graph) { g.Rules = append(g.Rules, g.Rules[0]) }),
		"rule no port_in":    break_(func(g *Graph) { g.Rules[0].Match.PortIn = PortRef{} }),
		"rule bad nf ref":    break_(func(g *Graph) { g.Rules[0].Actions[0].Output = NFPortRef("ghost", "0") }),
		"rule bad port ref":  break_(func(g *Graph) { g.Rules[0].Actions[0].Output = NFPortRef("ipsec", "99") }),
		"rule bad ep ref":    break_(func(g *Graph) { g.Rules[0].Match.PortIn = EndpointRef("ghost") }),
		"rule no actions":    break_(func(g *Graph) { g.Rules[0].Actions = nil }),
		"rule no output":     break_(func(g *Graph) { g.Rules[0].Actions = []RuleAction{{Type: ActPopVLAN}} }),
		"rule bad cidr":      break_(func(g *Graph) { g.Rules[0].Match.IPSrc = "10.0.0.0" }),
		"rule bad cidr bits": break_(func(g *Graph) { g.Rules[0].Match.IPSrc = "10.0.0.0/40" }),
		"rule bad mac": break_(func(g *Graph) {
			g.Rules[0].Actions = append(g.Rules[0].Actions, RuleAction{Type: ActSetEthSrc, MAC: "xx"})
		}),
		"rule big priority": break_(func(g *Graph) { g.Rules[0].Priority = 70000 }),
		"push vlan 0":       break_(func(g *Graph) { g.Rules[0].Actions = append(g.Rules[0].Actions, RuleAction{Type: ActPushVLAN}) }),
	}
	for name, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestValidateCollectsAllViolations(t *testing.T) {
	// Three independent defects; one pass must report every one of them.
	g := sampleGraph()
	g.NFs[0].Name = ""
	g.Rules[0].Match.PortIn = EndpointRef("ghost")
	g.Rules[1].Priority = 70000
	err := g.Validate()
	if err == nil {
		t.Fatal("validation passed")
	}
	vs := Violations(err)
	if len(vs) != 3 {
		t.Fatalf("Violations = %d (%q), want 3", len(vs), vs)
	}
	joined := strings.Join(vs, "\n")
	for _, want := range []string{"name", "ghost", "priority"} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations %q miss %q", vs, want)
		}
	}
}

func TestDiff(t *testing.T) {
	old := sampleGraph()
	upd := sampleGraph()
	// Add an NF, change the ipsec config, drop a rule, add a rule,
	// modify a rule.
	upd.NFs = append(upd.NFs, NF{ID: "fw", Name: "firewall", Ports: []NFPort{{ID: "0"}}})
	upd.NFs[0].Config["remote"] = "198.51.100.1"
	upd.Rules = upd.Rules[:3]
	upd.Rules[2].Priority = 99
	upd.Rules = append(upd.Rules, FlowRule{
		ID: "r5", Priority: 1,
		Match:   RuleMatch{PortIn: EndpointRef("lan")},
		Actions: []RuleAction{{Type: ActOutput, Output: EndpointRef("wan")}},
	})
	d := Compute(old, upd)
	if len(d.AddedNFs) != 1 || d.AddedNFs[0].ID != "fw" {
		t.Errorf("AddedNFs = %+v", d.AddedNFs)
	}
	if len(d.ChangedNFs) != 1 || d.ChangedNFs[0].ID != "ipsec" {
		t.Errorf("ChangedNFs = %+v", d.ChangedNFs)
	}
	if len(d.RemovedNFs) != 0 {
		t.Errorf("RemovedNFs = %+v", d.RemovedNFs)
	}
	// r4 removed; r3 modified (removed+added); r5 added.
	if len(d.RemovedRules) != 2 {
		t.Errorf("RemovedRules = %+v", d.RemovedRules)
	}
	if len(d.AddedRules) != 2 {
		t.Errorf("AddedRules = %+v", d.AddedRules)
	}
	if !Compute(old, old).Empty() {
		t.Error("self-diff not empty")
	}
}

func TestDiffEndpoints(t *testing.T) {
	old := sampleGraph()
	upd := sampleGraph()
	upd.Endpoints[1].VLANID = 200 // changed -> remove+add
	upd.Endpoints = append(upd.Endpoints, Endpoint{ID: "x", Type: EPInternal, InternalGroup: "g"})
	d := Compute(old, upd)
	if len(d.AddedEPs) != 2 || len(d.RemovedEPs) != 1 {
		t.Errorf("EP diff = added %+v removed %+v", d.AddedEPs, d.RemovedEPs)
	}
}

func TestClone(t *testing.T) {
	g := sampleGraph()
	c := g.Clone()
	c.NFs[0].Config["remote"] = "changed"
	c.NFs[0].Ports[0].Name = "changed"
	c.Rules[0].Actions[0].Output = EndpointRef("wan")
	c.Endpoints[0].Interface = "changed"
	if g.NFs[0].Config["remote"] == "changed" ||
		g.NFs[0].Ports[0].Name == "changed" ||
		g.Rules[0].Actions[0].Output.Endpoint == "wan" ||
		g.Endpoints[0].Interface == "changed" {
		t.Error("Clone shares memory with original")
	}
	if d := Compute(g, g.Clone()); !d.Empty() {
		t.Errorf("clone differs: %+v", d)
	}
}

func TestTechnologyValid(t *testing.T) {
	for _, tech := range []Technology{TechAny, TechVM, TechDocker, TechDPDK, TechNative} {
		if !tech.Valid() {
			t.Errorf("%q should be valid", tech)
		}
	}
	if Technology("bare-metal").Valid() {
		t.Error("unknown technology accepted")
	}
}
