package nffg

import "reflect"

// Diff captures the difference between two versions of one graph, driving
// in-place updates: the orchestrator applies a diff without disturbing the
// unchanged parts of a running service.
type Diff struct {
	AddedNFs     []NF
	RemovedNFs   []NF
	ChangedNFs   []NF // same id, different ports/technology/config
	AddedEPs     []Endpoint
	RemovedEPs   []Endpoint
	AddedRules   []FlowRule
	RemovedRules []FlowRule
}

// Empty reports whether the diff contains no changes.
func (d *Diff) Empty() bool {
	return len(d.AddedNFs) == 0 && len(d.RemovedNFs) == 0 && len(d.ChangedNFs) == 0 &&
		len(d.AddedEPs) == 0 && len(d.RemovedEPs) == 0 &&
		len(d.AddedRules) == 0 && len(d.RemovedRules) == 0
}

// Compute returns the changes needed to go from old to new. Rules are
// compared by full value: a modified rule appears as removed+added.
func Compute(old, new *Graph) *Diff {
	d := &Diff{}

	oldNFs := make(map[string]NF, len(old.NFs))
	for _, nf := range old.NFs {
		oldNFs[nf.ID] = nf
	}
	for _, nf := range new.NFs {
		prev, ok := oldNFs[nf.ID]
		switch {
		case !ok:
			d.AddedNFs = append(d.AddedNFs, nf)
		case !reflect.DeepEqual(prev, nf):
			d.ChangedNFs = append(d.ChangedNFs, nf)
		}
		delete(oldNFs, nf.ID)
	}
	for _, nf := range old.NFs {
		if _, stillThere := oldNFs[nf.ID]; stillThere {
			d.RemovedNFs = append(d.RemovedNFs, nf)
		}
	}

	oldEPs := make(map[string]Endpoint, len(old.Endpoints))
	for _, ep := range old.Endpoints {
		oldEPs[ep.ID] = ep
	}
	for _, ep := range new.Endpoints {
		prev, ok := oldEPs[ep.ID]
		if !ok || prev != ep {
			d.AddedEPs = append(d.AddedEPs, ep)
			if ok {
				d.RemovedEPs = append(d.RemovedEPs, prev)
			}
		}
		delete(oldEPs, ep.ID)
	}
	for _, ep := range old.Endpoints {
		if _, stillThere := oldEPs[ep.ID]; stillThere {
			d.RemovedEPs = append(d.RemovedEPs, ep)
		}
	}

	oldRules := make(map[string]FlowRule, len(old.Rules))
	for _, r := range old.Rules {
		oldRules[r.ID] = r
	}
	for _, r := range new.Rules {
		prev, ok := oldRules[r.ID]
		if !ok {
			d.AddedRules = append(d.AddedRules, r)
		} else if !reflect.DeepEqual(prev, r) {
			d.RemovedRules = append(d.RemovedRules, prev)
			d.AddedRules = append(d.AddedRules, r)
		}
		delete(oldRules, r.ID)
	}
	for _, r := range old.Rules {
		if _, stillThere := oldRules[r.ID]; stillThere {
			d.RemovedRules = append(d.RemovedRules, r)
		}
	}
	return d
}
