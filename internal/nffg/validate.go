package nffg

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MaxReplicas bounds NF.Replicas: more replicas than steering buckets
// cannot all receive traffic (the vswitch shards flows over 64
// consistent-hash buckets).
const MaxReplicas = 64

// Validate checks the structural consistency of a graph: unique
// identifiers, resolvable port references, well-formed selectors. A graph
// must validate before the orchestrator will deploy it.
//
// Validation runs the whole graph and returns ALL violations joined into
// one error (errors.Join), not just the first — a dry-run or admission
// reject reports everything the author has to fix in one round trip.
func (g *Graph) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if g.ID == "" {
		bad("nffg: graph id is empty")
	}
	nfIDs := make(map[string]bool, len(g.NFs))
	for _, nf := range g.NFs {
		if nf.ID == "" {
			bad("nffg: graph %q: NF with empty id", g.ID)
			continue
		}
		if nfIDs[nf.ID] {
			bad("nffg: graph %q: duplicate NF id %q", g.ID, nf.ID)
		}
		nfIDs[nf.ID] = true
		if nf.Name == "" {
			bad("nffg: graph %q: NF %q has no template name", g.ID, nf.ID)
		}
		if !nf.TechnologyPreference.Valid() {
			bad("nffg: graph %q: NF %q has unknown technology %q",
				g.ID, nf.ID, nf.TechnologyPreference)
		}
		if nf.Replicas < 0 || nf.Replicas > MaxReplicas {
			bad("nffg: graph %q: NF %q: replicas %d out of range [0,%d]",
				g.ID, nf.ID, nf.Replicas, MaxReplicas)
		}
		if nf.Availability < 0 || nf.Availability >= 1 {
			bad("nffg: graph %q: NF %q: availability %g out of range [0,1)",
				g.ID, nf.ID, nf.Availability)
		}
		if !nf.Redundancy.Valid() {
			bad("nffg: graph %q: NF %q: unknown redundancy mode %q",
				g.ID, nf.ID, nf.Redundancy)
		}
		if nf.Redundancy == RedundancyActiveStandby && nf.Replicas > 1 {
			bad("nffg: graph %q: NF %q: active-standby redundancy shadows a single instance; use active-active for %d replicas",
				g.ID, nf.ID, nf.Replicas)
		}
		if nf.Redundancy == RedundancyActiveActive && nf.Replicas < 2 {
			bad("nffg: graph %q: NF %q: active-active redundancy requires replicas >= 2",
				g.ID, nf.ID)
		}
		if nf.Availability >= 0.999 && nf.Redundancy == RedundancyNone {
			bad("nffg: graph %q: NF %q: availability %g needs a redundancy mode (restart-in-place cannot reach three nines)",
				g.ID, nf.ID, nf.Availability)
		}
		if len(nf.Ports) == 0 {
			bad("nffg: graph %q: NF %q has no ports", g.ID, nf.ID)
		}
		portIDs := make(map[string]bool, len(nf.Ports))
		for _, p := range nf.Ports {
			if p.ID == "" {
				bad("nffg: graph %q: NF %q has a port with empty id", g.ID, nf.ID)
				continue
			}
			if portIDs[p.ID] {
				bad("nffg: graph %q: NF %q duplicate port id %q", g.ID, nf.ID, p.ID)
			}
			portIDs[p.ID] = true
		}
	}
	epIDs := make(map[string]bool, len(g.Endpoints))
	for _, ep := range g.Endpoints {
		if ep.ID == "" {
			bad("nffg: graph %q: endpoint with empty id", g.ID)
			continue
		}
		if epIDs[ep.ID] {
			bad("nffg: graph %q: duplicate endpoint id %q", g.ID, ep.ID)
		}
		epIDs[ep.ID] = true
		switch ep.Type {
		case EPInterface:
			if ep.Interface == "" {
				bad("nffg: graph %q: endpoint %q: missing if-name", g.ID, ep.ID)
			}
		case EPVLAN:
			if ep.Interface == "" {
				bad("nffg: graph %q: endpoint %q: missing if-name", g.ID, ep.ID)
			}
			if ep.VLANID == 0 || ep.VLANID > 4094 {
				bad("nffg: graph %q: endpoint %q: vlan id %d out of range",
					g.ID, ep.ID, ep.VLANID)
			}
		case EPInternal:
			if ep.InternalGroup == "" {
				bad("nffg: graph %q: endpoint %q: missing internal-group", g.ID, ep.ID)
			}
		default:
			bad("nffg: graph %q: endpoint %q: unknown type %q", g.ID, ep.ID, ep.Type)
		}
	}
	ruleIDs := make(map[string]bool, len(g.Rules))
	for _, r := range g.Rules {
		if r.ID == "" {
			bad("nffg: graph %q: rule with empty id", g.ID)
			continue
		}
		if ruleIDs[r.ID] {
			bad("nffg: graph %q: duplicate rule id %q", g.ID, r.ID)
		}
		ruleIDs[r.ID] = true
		if r.Priority < 0 || r.Priority > 65535 {
			bad("nffg: graph %q: rule %q: priority %d out of range", g.ID, r.ID, r.Priority)
		}
		if r.Match.PortIn.IsZero() {
			bad("nffg: graph %q: rule %q: missing port_in", g.ID, r.ID)
		} else if err := g.checkRef(r.Match.PortIn); err != nil {
			bad("nffg: graph %q: rule %q: port_in: %w", g.ID, r.ID, err)
		}
		if r.Match.VLANID > 4094 {
			bad("nffg: graph %q: rule %q: vlan id %d out of range", g.ID, r.ID, r.Match.VLANID)
		}
		for _, cidr := range []string{r.Match.IPSrc, r.Match.IPDst} {
			if cidr == "" {
				continue
			}
			if err := checkCIDR(cidr); err != nil {
				bad("nffg: graph %q: rule %q: %w", g.ID, r.ID, err)
			}
		}
		if len(r.Actions) == 0 {
			bad("nffg: graph %q: rule %q: no actions", g.ID, r.ID)
			continue
		}
		outputs := 0
		for ai, a := range r.Actions {
			switch a.Type {
			case ActOutput:
				outputs++
				if err := g.checkRef(a.Output); err != nil {
					bad("nffg: graph %q: rule %q action %d: %w", g.ID, r.ID, ai, err)
				}
			case ActPushVLAN:
				if a.VLANID == 0 || a.VLANID > 4094 {
					bad("nffg: graph %q: rule %q action %d: vlan id %d out of range",
						g.ID, r.ID, ai, a.VLANID)
				}
			case ActPopVLAN:
			case ActSetEthSrc, ActSetEthDst:
				if !validMAC(a.MAC) {
					bad("nffg: graph %q: rule %q action %d: bad MAC %q",
						g.ID, r.ID, ai, a.MAC)
				}
			default:
				bad("nffg: graph %q: rule %q action %d: unknown type %q",
					g.ID, r.ID, ai, a.Type)
			}
		}
		if outputs == 0 {
			bad("nffg: graph %q: rule %q: no output action", g.ID, r.ID)
		}
	}
	return errors.Join(errs...)
}

// Violations flattens a Validate error into its individual messages (one
// per violation); a nil error yields nil. REST handlers use it to return a
// complete problem list in the error envelope.
func Violations(err error) []string {
	if err == nil {
		return nil
	}
	if m, ok := err.(interface{ Unwrap() []error }); ok {
		var out []string
		for _, e := range m.Unwrap() {
			out = append(out, e.Error())
		}
		return out
	}
	return []string{err.Error()}
}

// checkRef verifies that a port reference resolves inside the graph.
func (g *Graph) checkRef(r PortRef) error {
	switch {
	case r.IsNF():
		nf := g.FindNF(r.NF)
		if nf == nil {
			return fmt.Errorf("unknown NF %q", r.NF)
		}
		if nf.FindPort(r.Port) == nil {
			return fmt.Errorf("NF %q has no port %q", r.NF, r.Port)
		}
		return nil
	case r.IsEndpoint():
		if g.FindEndpoint(r.Endpoint) == nil {
			return fmt.Errorf("unknown endpoint %q", r.Endpoint)
		}
		return nil
	default:
		return fmt.Errorf("empty port reference")
	}
}

func checkCIDR(s string) error {
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return fmt.Errorf("bad CIDR %q", s)
	}
	octets := strings.Split(parts[0], ".")
	if len(octets) != 4 {
		return fmt.Errorf("bad CIDR address %q", s)
	}
	for _, o := range octets {
		v, err := strconv.Atoi(o)
		if err != nil || v < 0 || v > 255 {
			return fmt.Errorf("bad CIDR octet in %q", s)
		}
	}
	bits, err := strconv.Atoi(parts[1])
	if err != nil || bits < 0 || bits > 32 {
		return fmt.Errorf("bad CIDR prefix length in %q", s)
	}
	return nil
}

func validMAC(s string) bool {
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return false
	}
	for _, p := range parts {
		if len(p) != 2 {
			return false
		}
		if _, err := strconv.ParseUint(p, 16, 8); err != nil {
			return false
		}
	}
	return true
}
