// Package nffg models the Network Functions Forwarding Graph (NF-FG), the
// service description that the local orchestrator receives over its REST
// interface.
//
// A graph names a set of network functions (NFs), a set of endpoints
// (attachment points to the outside world: physical interfaces, VLAN
// sub-interfaces, or inter-graph links) and a list of big-switch flow rules
// steering traffic between them. The schema follows the un-orchestrator's
// JSON format: a top-level "forwarding-graph" object with "VNFs",
// "end-points" and "big-switch"/"flow-rules" sections.
package nffg

import (
	"fmt"
	"strings"
)

// Technology identifies how an NF is materialized on the node.
type Technology string

// Supported execution technologies. TechAny lets the orchestrator's
// scheduler choose.
const (
	TechAny    Technology = ""
	TechVM     Technology = "vm"
	TechDocker Technology = "docker"
	TechDPDK   Technology = "dpdk"
	TechNative Technology = "native"
)

// Valid reports whether t is a known technology.
func (t Technology) Valid() bool {
	switch t {
	case TechAny, TechVM, TechDocker, TechDPDK, TechNative:
		return true
	}
	return false
}

// RedundancyMode selects how an NF survives instance or node failure.
type RedundancyMode string

// Redundancy modes.
const (
	// RedundancyNone relies on restart-in-place repair: state accumulated
	// since the last migration is lost when the instance dies.
	RedundancyNone RedundancyMode = ""
	// RedundancyActiveStandby pre-attaches an idle standby instance whose
	// flow state is kept in sync; failure promotes it via the zero-loss
	// steering swap path.
	RedundancyActiveStandby RedundancyMode = "active-standby"
	// RedundancyActiveActive serves through every replica simultaneously
	// (requires Replicas >= 2); instance failure re-homes the dead
	// replica's buckets onto survivors with their migrated state.
	RedundancyActiveActive RedundancyMode = "active-active"
)

// Valid reports whether m is a known redundancy mode.
func (m RedundancyMode) Valid() bool {
	switch m {
	case RedundancyNone, RedundancyActiveStandby, RedundancyActiveActive:
		return true
	}
	return false
}

// Graph is one Network Functions Forwarding Graph.
type Graph struct {
	ID        string
	Name      string
	NFs       []NF
	Endpoints []Endpoint
	Rules     []FlowRule
}

// NF is a network function instance requested by a graph.
type NF struct {
	// ID is the NF's identifier, unique within the graph.
	ID string
	// Name is the template name resolved against the VNF repository
	// (e.g. "ipsec", "firewall").
	Name string
	// Ports are the NF's network attachment points.
	Ports []NFPort
	// TechnologyPreference pins the execution technology; empty lets the
	// scheduler decide.
	TechnologyPreference Technology
	// Config carries NF-specific configuration handed to the driver at
	// start time (the paper's "predefined configuration script").
	Config map[string]string
	// Replicas asks the orchestrator to shard this NF across N instances
	// behind consistent-hash flow steering. 0 and 1 both mean a single
	// instance. Replicas beyond 1 require a stateful-scalable NF: per-flow
	// state migrates between instances as the replica set changes.
	Replicas int
	// Availability is the NF's target availability as a fraction in
	// [0, 1), e.g. 0.999. Zero means no explicit target. Targets at or
	// above three nines require a redundancy mode, since restart-in-place
	// repair alone cannot reach them.
	Availability float64
	// Redundancy selects the failure-survival strategy; see
	// RedundancyMode.
	Redundancy RedundancyMode
	// AntiAffinity names a spreading group: the placements of NFs sharing
	// a group (and the standby of an active-standby NF) must land on
	// distinct nodes, so one node failure cannot take out the whole group.
	AntiAffinity string
}

// NFPort is one port of an NF.
type NFPort struct {
	ID   string
	Name string
}

// EndpointType classifies graph attachment points.
type EndpointType string

// Endpoint types.
const (
	// EPInterface attaches the graph to a physical node interface.
	EPInterface EndpointType = "interface"
	// EPVLAN attaches to a VLAN sub-interface of a node interface.
	EPVLAN EndpointType = "vlan"
	// EPInternal stitches this graph to another graph on the same node.
	EPInternal EndpointType = "internal"
)

// Endpoint is one graph attachment point.
type Endpoint struct {
	ID   string
	Type EndpointType
	// Interface is the node interface name (EPInterface, EPVLAN).
	Interface string
	// VLANID qualifies EPVLAN endpoints.
	VLANID uint16
	// InternalGroup names the rendezvous shared by EPInternal endpoints
	// of different graphs.
	InternalGroup string
}

// PortRef points at either an NF port or an endpoint inside a graph.
// The textual form is "vnf:<nf-id>:<port-id>" or "endpoint:<ep-id>".
type PortRef struct {
	NF       string // NF id; empty for endpoint refs
	Port     string // NF port id; empty for endpoint refs
	Endpoint string // endpoint id; empty for NF refs
}

// NFPortRef builds a reference to an NF port.
func NFPortRef(nfID, portID string) PortRef { return PortRef{NF: nfID, Port: portID} }

// EndpointRef builds a reference to a graph endpoint.
func EndpointRef(epID string) PortRef { return PortRef{Endpoint: epID} }

// IsNF reports whether the reference targets an NF port.
func (r PortRef) IsNF() bool { return r.NF != "" }

// IsEndpoint reports whether the reference targets an endpoint.
func (r PortRef) IsEndpoint() bool { return r.Endpoint != "" }

// IsZero reports whether the reference is unset.
func (r PortRef) IsZero() bool { return r == PortRef{} }

// String renders the textual form used in the JSON schema.
func (r PortRef) String() string {
	if r.IsNF() {
		return "vnf:" + r.NF + ":" + r.Port
	}
	if r.IsEndpoint() {
		return "endpoint:" + r.Endpoint
	}
	return ""
}

// ParsePortRef parses the textual form.
func ParsePortRef(s string) (PortRef, error) {
	switch {
	case strings.HasPrefix(s, "vnf:"):
		rest := strings.TrimPrefix(s, "vnf:")
		i := strings.LastIndex(rest, ":")
		if i <= 0 || i == len(rest)-1 {
			return PortRef{}, fmt.Errorf("nffg: bad vnf port reference %q", s)
		}
		return PortRef{NF: rest[:i], Port: rest[i+1:]}, nil
	case strings.HasPrefix(s, "endpoint:"):
		ep := strings.TrimPrefix(s, "endpoint:")
		if ep == "" {
			return PortRef{}, fmt.Errorf("nffg: bad endpoint reference %q", s)
		}
		return PortRef{Endpoint: ep}, nil
	default:
		return PortRef{}, fmt.Errorf("nffg: unrecognized port reference %q", s)
	}
}

// RuleMatch is the traffic selector of one flow rule. Zero-valued fields are
// wildcards; PortIn is mandatory.
type RuleMatch struct {
	PortIn    PortRef
	EtherType uint16
	VLANID    uint16 // 0 = any
	IPProto   uint8
	IPSrc     string // CIDR, e.g. "10.0.0.0/24"
	IPDst     string
	L4Src     uint16
	L4Dst     uint16
}

// RuleActionType enumerates the verbs a flow rule may apply.
type RuleActionType string

// Rule action verbs.
const (
	ActOutput    RuleActionType = "output_to_port"
	ActPushVLAN  RuleActionType = "push_vlan"
	ActPopVLAN   RuleActionType = "pop_vlan"
	ActSetEthSrc RuleActionType = "set_eth_src"
	ActSetEthDst RuleActionType = "set_eth_dst"
)

// RuleAction is one action of a flow rule.
type RuleAction struct {
	Type RuleActionType
	// Output names the destination for ActOutput.
	Output PortRef
	// VLANID parameterizes ActPushVLAN.
	VLANID uint16
	// MAC parameterizes ActSetEthSrc/ActSetEthDst ("aa:bb:cc:dd:ee:ff").
	MAC string
}

// FlowRule is one big-switch steering rule of a graph.
type FlowRule struct {
	ID       string
	Priority int
	Match    RuleMatch
	Actions  []RuleAction
}

// FindNF returns the NF with the given id, or nil.
func (g *Graph) FindNF(id string) *NF {
	for i := range g.NFs {
		if g.NFs[i].ID == id {
			return &g.NFs[i]
		}
	}
	return nil
}

// FindEndpoint returns the endpoint with the given id, or nil.
func (g *Graph) FindEndpoint(id string) *Endpoint {
	for i := range g.Endpoints {
		if g.Endpoints[i].ID == id {
			return &g.Endpoints[i]
		}
	}
	return nil
}

// FindPort returns the port of an NF, or nil.
func (nf *NF) FindPort(id string) *NFPort {
	for i := range nf.Ports {
		if nf.Ports[i].ID == id {
			return &nf.Ports[i]
		}
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := &Graph{ID: g.ID, Name: g.Name}
	out.NFs = make([]NF, len(g.NFs))
	for i, nf := range g.NFs {
		c := nf
		c.Ports = append([]NFPort(nil), nf.Ports...)
		if nf.Config != nil {
			c.Config = make(map[string]string, len(nf.Config))
			for k, v := range nf.Config {
				c.Config[k] = v
			}
		}
		out.NFs[i] = c
	}
	out.Endpoints = append([]Endpoint(nil), g.Endpoints...)
	out.Rules = make([]FlowRule, len(g.Rules))
	for i, r := range g.Rules {
		c := r
		c.Actions = append([]RuleAction(nil), r.Actions...)
		out.Rules[i] = c
	}
	return out
}
