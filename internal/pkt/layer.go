// Package pkt implements packet encoding and decoding for the simulated
// dataplane used throughout this repository.
//
// The design follows the layer model popularized by gopacket: a packet is a
// []byte decoded into an ordered list of layers, each layer exposing its
// header contents and payload. Layers that can be written back to the wire
// implement SerializableLayer and are serialized back-to-front into a
// SerializeBuffer, so each layer prepends its header to the payload that the
// layers above it have already produced.
package pkt

import "fmt"

// LayerType identifies a protocol layer within a packet.
type LayerType int

// Known layer types. The zero value is reserved so that the zero LayerType
// never matches a real layer.
const (
	LayerTypeZero LayerType = iota
	LayerTypeEthernet
	LayerTypeVLAN
	LayerTypeARP
	LayerTypeIPv4
	LayerTypeUDP
	LayerTypeTCP
	LayerTypeICMP
	LayerTypeESP
	LayerTypePayload
	LayerTypeDecodeFailure
)

var layerTypeNames = map[LayerType]string{
	LayerTypeZero:          "Zero",
	LayerTypeEthernet:      "Ethernet",
	LayerTypeVLAN:          "VLAN",
	LayerTypeARP:           "ARP",
	LayerTypeIPv4:          "IPv4",
	LayerTypeUDP:           "UDP",
	LayerTypeTCP:           "TCP",
	LayerTypeICMP:          "ICMP",
	LayerTypeESP:           "ESP",
	LayerTypePayload:       "Payload",
	LayerTypeDecodeFailure: "DecodeFailure",
}

func (t LayerType) String() string {
	if s, ok := layerTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Layer is a single decoded protocol layer.
type Layer interface {
	// LayerType returns the type of this layer.
	LayerType() LayerType
	// LayerContents returns the bytes of this layer's header.
	LayerContents() []byte
	// LayerPayload returns the bytes this layer carries, i.e. everything
	// after its header.
	LayerPayload() []byte
}

// NetworkLayer is a layer that carries network-level (L3) addressing.
type NetworkLayer interface {
	Layer
	NetworkFlow() Flow
}

// TransportLayer is a layer that carries transport-level (L4) addressing.
type TransportLayer interface {
	Layer
	TransportFlow() Flow
}

// LinkLayer is a layer that carries link-level (L2) addressing.
type LinkLayer interface {
	Layer
	LinkFlow() Flow
}

// DecodeFailure records a decoding error without discarding the layers that
// were decoded successfully before it.
type DecodeFailure struct {
	Data []byte
	Err  error
}

// LayerType implements Layer.
func (d *DecodeFailure) LayerType() LayerType { return LayerTypeDecodeFailure }

// LayerContents implements Layer.
func (d *DecodeFailure) LayerContents() []byte { return d.Data }

// LayerPayload implements Layer; a decode failure has no payload.
func (d *DecodeFailure) LayerPayload() []byte { return nil }

// Error returns the cause of the decode failure.
func (d *DecodeFailure) Error() error { return d.Err }

// Payload is a raw application payload, the terminal layer of most packets.
type Payload []byte

// LayerType implements Layer.
func (p Payload) LayerType() LayerType { return LayerTypePayload }

// LayerContents implements Layer.
func (p Payload) LayerContents() []byte { return p }

// LayerPayload implements Layer; payload has nothing beneath it.
func (p Payload) LayerPayload() []byte { return nil }

// SerializeTo implements SerializableLayer.
func (p Payload) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	bytes, err := b.PrependBytes(len(p))
	if err != nil {
		return err
	}
	copy(bytes, p)
	return nil
}
