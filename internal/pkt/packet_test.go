package pkt

import (
	"bytes"
	"testing"
)

var (
	macA = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x0a}
	macB = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x0b}
	ipA  = Addr{10, 0, 0, 1}
	ipB  = Addr{10, 0, 0, 2}
)

func testFrame(t *testing.T, vlan uint16, proto IPProtocol) []byte {
	t.Helper()
	f, err := BuildFrame(FrameSpec{
		SrcMAC: macA, DstMAC: macB, VLANID: vlan,
		SrcIP: ipA, DstIP: ipB, Proto: proto,
		SrcPort: 1234, DstPort: 5001, PayloadLen: 64, PayloadByte: 0xab,
	})
	if err != nil {
		t.Fatalf("BuildFrame: %v", err)
	}
	return f
}

func TestDecodeEthernetIPv4UDP(t *testing.T) {
	p := NewPacket(testFrame(t, 0, IPProtocolUDP), LayerTypeEthernet, Default)
	if err := p.ErrorLayer(); err != nil {
		t.Fatalf("decode error: %v", err.Error())
	}
	eth, ok := p.Layer(LayerTypeEthernet).(*Ethernet)
	if !ok {
		t.Fatal("missing ethernet layer")
	}
	if eth.SrcMAC != macA || eth.DstMAC != macB {
		t.Errorf("eth MACs = %v -> %v, want %v -> %v", eth.SrcMAC, eth.DstMAC, macA, macB)
	}
	ip, ok := p.Layer(LayerTypeIPv4).(*IPv4)
	if !ok {
		t.Fatal("missing ipv4 layer")
	}
	if ip.SrcIP != ipA || ip.DstIP != ipB {
		t.Errorf("ip addrs = %v -> %v", ip.SrcIP, ip.DstIP)
	}
	if ip.Protocol != IPProtocolUDP {
		t.Errorf("ip proto = %v, want UDP", ip.Protocol)
	}
	udp, ok := p.Layer(LayerTypeUDP).(*UDP)
	if !ok {
		t.Fatal("missing udp layer")
	}
	if udp.SrcPort != 1234 || udp.DstPort != 5001 {
		t.Errorf("udp ports = %d -> %d", udp.SrcPort, udp.DstPort)
	}
	app := p.ApplicationLayer()
	if len(app) != 64 {
		t.Fatalf("payload len = %d, want 64", len(app))
	}
	for _, b := range app {
		if b != 0xab {
			t.Fatalf("payload corrupted: %x", app)
		}
	}
}

func TestDecodeVLANTagged(t *testing.T) {
	p := NewPacket(testFrame(t, 42, IPProtocolUDP), LayerTypeEthernet, Default)
	v, ok := p.Layer(LayerTypeVLAN).(*VLAN)
	if !ok {
		t.Fatal("missing vlan layer")
	}
	if v.VLANID != 42 {
		t.Errorf("vlan id = %d, want 42", v.VLANID)
	}
	if p.Layer(LayerTypeUDP) == nil {
		t.Error("udp layer not reached through vlan tag")
	}
}

func TestDecodeTCP(t *testing.T) {
	p := NewPacket(testFrame(t, 0, IPProtocolTCP), LayerTypeEthernet, Default)
	tcp, ok := p.Layer(LayerTypeTCP).(*TCP)
	if !ok {
		t.Fatal("missing tcp layer")
	}
	if tcp.Flags&TCPFlagACK == 0 {
		t.Error("ACK flag lost")
	}
	if tl := p.TransportLayer(); tl == nil {
		t.Error("TransportLayer() = nil")
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	frame := testFrame(t, 0, IPProtocolUDP)
	// Verify the IPv4 header checksum over the wire bytes: summing the
	// header including its checksum field must yield 0xffff (i.e. the
	// folded complement is 0).
	hdr := frame[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	if got := Checksum(hdr); got != 0 {
		t.Errorf("ipv4 checksum over full header = %#04x, want 0", got)
	}
}

func TestUDPChecksumValid(t *testing.T) {
	frame := testFrame(t, 0, IPProtocolUDP)
	p := NewPacket(frame, LayerTypeEthernet, Default)
	ip := p.Layer(LayerTypeIPv4).(*IPv4)
	seg := ip.LayerPayload()
	sum := tcpipChecksum(seg, ip.pseudoHeaderChecksum(IPProtocolUDP, uint16(len(seg))))
	if sum != 0 {
		t.Errorf("udp checksum over segment = %#04x, want 0", sum)
	}
}

func TestDecodeFailureKeepsGoodLayers(t *testing.T) {
	frame := testFrame(t, 0, IPProtocolUDP)
	// Truncate inside the UDP header.
	short := frame[:EthernetHeaderLen+IPv4HeaderLen+4]
	p := NewPacket(short, LayerTypeEthernet, Default)
	if p.Layer(LayerTypeEthernet) == nil || p.Layer(LayerTypeIPv4) == nil {
		t.Fatal("good layers discarded on decode failure")
	}
	if p.ErrorLayer() == nil {
		t.Fatal("expected an error layer")
	}
}

func TestNoCopyAliasesData(t *testing.T) {
	frame := testFrame(t, 0, IPProtocolUDP)
	p := NewPacket(frame, LayerTypeEthernet, NoCopy)
	if &p.Data()[0] != &frame[0] {
		t.Error("NoCopy copied the data")
	}
	q := NewPacket(frame, LayerTypeEthernet, Default)
	if &q.Data()[0] == &frame[0] {
		t.Error("Default did not copy the data")
	}
}

func TestARPRoundTrip(t *testing.T) {
	arp := &ARP{
		Operation: ARPRequest,
		SenderMAC: macA, SenderIP: ipA,
		TargetIP: ipB,
	}
	eth := &Ethernet{SrcMAC: macA, DstMAC: MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, EthernetType: EthernetTypeARP}
	data, err := Serialize(SerializeOptions{}, eth, arp)
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	p := NewPacket(data, LayerTypeEthernet, Default)
	got, ok := p.Layer(LayerTypeARP).(*ARP)
	if !ok {
		t.Fatal("missing arp layer")
	}
	if got.Operation != ARPRequest || got.SenderIP != ipA || got.TargetIP != ipB {
		t.Errorf("arp round trip mismatch: %+v", got)
	}
}

func TestESPRoundTrip(t *testing.T) {
	esp := &ESP{SPI: 0xdeadbeef, Seq: 77}
	data, err := Serialize(SerializeOptions{}, esp, Payload([]byte("ciphertext")))
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	var got ESP
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.SPI != 0xdeadbeef || got.Seq != 77 {
		t.Errorf("esp = %+v", got)
	}
	if string(got.LayerPayload()) != "ciphertext" {
		t.Errorf("esp payload = %q", got.LayerPayload())
	}
}

func TestSerializePrependOrder(t *testing.T) {
	b := NewSerializeBuffer()
	err := SerializeLayers(b, SerializeOptions{},
		Payload([]byte("AA")), Payload([]byte("BB")))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), []byte("AABB")) {
		t.Errorf("bytes = %q, want AABB", b.Bytes())
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBufferExpectedSize(0, 0)
	for i := 0; i < 100; i++ {
		s, err := b.PrependBytes(3)
		if err != nil {
			t.Fatal(err)
		}
		copy(s, "abc")
	}
	if len(b.Bytes()) != 300 {
		t.Fatalf("len = %d, want 300", len(b.Bytes()))
	}
	tail, err := b.AppendBytes(2)
	if err != nil {
		t.Fatal(err)
	}
	copy(tail, "ZZ")
	out := b.Bytes()
	if string(out[len(out)-2:]) != "ZZ" {
		t.Error("append lost")
	}
}

func TestFlowEndpoints(t *testing.T) {
	p := NewPacket(testFrame(t, 0, IPProtocolUDP), LayerTypeEthernet, Default)
	nf := p.NetworkLayer().NetworkFlow()
	src, dst := nf.Endpoints()
	if src.String() != "10.0.0.1" || dst.String() != "10.0.0.2" {
		t.Errorf("flow = %v -> %v", src, dst)
	}
	if nf.Reverse().Src() != dst {
		t.Error("reverse broken")
	}
	if nf.FastHash() != nf.Reverse().FastHash() {
		t.Error("FastHash must be symmetric")
	}
	m := map[Flow]int{nf: 1}
	if m[NewFlow(src, dst)] != 1 {
		t.Error("flow not usable as map key")
	}
}

func TestMACHelpers(t *testing.T) {
	m, err := ParseMAC("02:00:00:00:00:0a")
	if err != nil {
		t.Fatal(err)
	}
	if m != macA {
		t.Errorf("ParseMAC = %v", m)
	}
	if !(MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}).IsBroadcast() {
		t.Error("broadcast not detected")
	}
	if !(MAC{0x01, 0, 0x5e, 0, 0, 1}).IsMulticast() {
		t.Error("multicast not detected")
	}
	if macA.IsMulticast() {
		t.Error("unicast misdetected as multicast")
	}
}

func TestAddrHelpers(t *testing.T) {
	a := MustAddr("192.168.1.7")
	if a.String() != "192.168.1.7" {
		t.Errorf("round trip = %v", a)
	}
	if AddrFromUint32(a.Uint32()) != a {
		t.Error("uint32 round trip broken")
	}
	if _, err := ParseAddr("not-an-ip"); err == nil {
		t.Error("ParseAddr accepted garbage")
	}
}

func TestPacketString(t *testing.T) {
	p := NewPacket(testFrame(t, 42, IPProtocolUDP), LayerTypeEthernet, Default)
	s := p.String()
	for _, want := range []string{"Ethernet", "VLAN", "IPv4", "UDP"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
