package pkt

import (
	"strings"
	"testing"
)

func TestICMPRoundTrip(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: IPProtocolICMP, SrcIP: ipA, DstIP: ipB}
	icmp := &ICMP{Type: ICMPTypeEchoRequest, ID: 77, Seq: 3}
	data, err := Serialize(
		SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&Ethernet{SrcMAC: macA, DstMAC: macB, EthernetType: EthernetTypeIPv4},
		ip, icmp, Payload("ping-data"),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPacket(data, LayerTypeEthernet, Default)
	got, ok := p.Layer(LayerTypeICMP).(*ICMP)
	if !ok {
		t.Fatalf("no ICMP layer: %v", p)
	}
	if got.Type != ICMPTypeEchoRequest || got.ID != 77 || got.Seq != 3 {
		t.Errorf("icmp = %+v", got)
	}
	if string(got.LayerPayload()) != "ping-data" {
		t.Errorf("payload = %q", got.LayerPayload())
	}
	// The ICMP checksum covers header+payload; re-summing must be zero.
	seg := p.Layer(LayerTypeIPv4).(*IPv4).LayerPayload()
	if Checksum(seg) != 0 {
		t.Error("icmp checksum invalid")
	}
	if got.NextLayerType() != LayerTypePayload {
		t.Error("icmp next layer")
	}
	if len(got.LayerContents()) != ICMPHeaderLen {
		t.Error("icmp contents length")
	}
	// Truncated.
	var short ICMP
	if err := short.DecodeFromBytes([]byte{8, 0}); err == nil {
		t.Error("short icmp accepted")
	}
}

func TestLayerAccessors(t *testing.T) {
	frame := testFrame(t, 7, IPProtocolTCP)
	p := NewPacket(frame, LayerTypeEthernet, Default)

	eth := p.LinkLayer().(*Ethernet)
	if eth.LinkFlow().Src() != macA.Endpoint() {
		t.Error("link flow src")
	}
	if len(eth.LayerContents()) != EthernetHeaderLen {
		t.Error("eth contents")
	}
	v := p.Layer(LayerTypeVLAN).(*VLAN)
	if len(v.LayerContents()) != VLANHeaderLen || len(v.LayerPayload()) == 0 {
		t.Error("vlan accessors")
	}
	ip := p.NetworkLayer().(*IPv4)
	if len(ip.LayerContents()) != IPv4HeaderLen {
		t.Error("ip contents")
	}
	tcp := p.TransportLayer().(*TCP)
	tf := tcp.TransportFlow()
	if tf.Src().Type() != EndpointTCPPort || tf.Dst().String() != "5001" {
		t.Errorf("tcp flow = %v", tf)
	}
	if len(tcp.LayerContents()) != TCPHeaderLen {
		t.Error("tcp contents")
	}
	if tcp.NextLayerType() != LayerTypePayload {
		t.Error("tcp next layer")
	}

	udpFrame := testFrame(t, 0, IPProtocolUDP)
	q := NewPacket(udpFrame, LayerTypeEthernet, Default)
	udp := q.TransportLayer().(*UDP)
	uf := udp.TransportFlow()
	if uf.Src().Type() != EndpointUDPPort || uf.Dst().String() != "5001" {
		t.Errorf("udp flow = %v", uf)
	}
	if len(udp.LayerContents()) != UDPHeaderLen {
		t.Error("udp contents")
	}
}

func TestEndpointAccessors(t *testing.T) {
	e := ipA.Endpoint()
	if e.Type() != EndpointIPv4 {
		t.Error("endpoint type")
	}
	raw := e.Raw()
	if len(raw) != 4 || raw[0] != 10 {
		t.Errorf("raw = %v", raw)
	}
	// Mutating the copy must not affect the endpoint.
	raw[0] = 99
	if e.Raw()[0] != 10 {
		t.Error("Raw returned aliasing slice")
	}
	if macA.Endpoint().String() != "02:00:00:00:00:0a" {
		t.Errorf("mac endpoint = %v", macA.Endpoint())
	}
	if (Endpoint{}).String() != "invalid" {
		t.Error("invalid endpoint string")
	}
	// Oversized raw data is rejected.
	if NewEndpoint(EndpointMAC, make([]byte, 20)).Type() != EndpointInvalid {
		t.Error("oversized endpoint accepted")
	}
	for _, tc := range []struct {
		t    EndpointType
		want string
	}{
		{EndpointMAC, "MAC"}, {EndpointIPv4, "IPv4"},
		{EndpointUDPPort, "UDPPort"}, {EndpointTCPPort, "TCPPort"},
		{EndpointInvalid, "Invalid"},
	} {
		if tc.t.String() != tc.want {
			t.Errorf("%v", tc.t)
		}
	}
}

func TestStringers(t *testing.T) {
	if EthernetTypeIPv4.String() != "IPv4" || EthernetTypeARP.String() != "ARP" ||
		EthernetTypeVLAN.String() != "VLAN" || !strings.Contains(EthernetType(0x1234).String(), "1234") {
		t.Error("ethertype strings")
	}
	if IPProtocolESP.String() != "ESP" || IPProtocolICMP.String() != "ICMP" ||
		!strings.Contains(IPProtocol(99).String(), "99") {
		t.Error("ipproto strings")
	}
	if LayerTypeESP.String() != "ESP" || !strings.Contains(LayerType(99).String(), "99") {
		t.Error("layertype strings")
	}
	fl := NewFlow(ipA.Endpoint(), ipB.Endpoint())
	if fl.String() != "10.0.0.1->10.0.0.2" {
		t.Errorf("flow string = %v", fl)
	}
}

func TestESPLayerAccessors(t *testing.T) {
	data, _ := Serialize(SerializeOptions{}, &ESP{SPI: 5, Seq: 6}, Payload("ct"))
	var e ESP
	_ = e.DecodeFromBytes(data)
	if e.LayerType() != LayerTypeESP {
		t.Error("esp layer type")
	}
	if len(e.LayerContents()) != ESPHeaderLen {
		t.Error("esp contents")
	}
	if e.NextLayerType() != LayerTypePayload {
		t.Error("esp next layer")
	}
}

func TestARPAccessorsAndErrors(t *testing.T) {
	arp := &ARP{Operation: ARPReply, SenderMAC: macA, SenderIP: ipA, TargetMAC: macB, TargetIP: ipB}
	data, _ := Serialize(SerializeOptions{}, arp)
	var got ARP
	if err := got.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if len(got.LayerContents()) != ARPHeaderLen || got.LayerPayload() != nil {
		t.Error("arp accessors")
	}
	if got.NextLayerType() != LayerTypeZero {
		t.Error("arp next layer")
	}
	// Wrong hardware type.
	bad := append([]byte(nil), data...)
	bad[0] = 9
	if err := got.DecodeFromBytes(bad); err == nil {
		t.Error("bad htype accepted")
	}
	bad = append([]byte(nil), data...)
	bad[4] = 8 // wrong hlen
	if err := got.DecodeFromBytes(bad); err == nil {
		t.Error("bad hlen accepted")
	}
}

func TestMustBuildFramePanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustBuildFrame(FrameSpec{Proto: IPProtocolICMP}) // unsupported by builder
}

func TestIPv4DecodeErrors(t *testing.T) {
	var ip IPv4
	if err := ip.DecodeFromBytes(make([]byte, 10)); err == nil {
		t.Error("short header accepted")
	}
	bad := make([]byte, 20)
	bad[0] = 0x60 // version 6
	if err := ip.DecodeFromBytes(bad); err == nil {
		t.Error("wrong version accepted")
	}
	bad[0] = 0x43 // IHL 3 < 5
	if err := ip.DecodeFromBytes(bad); err == nil {
		t.Error("tiny IHL accepted")
	}
	bad[0] = 0x4f // IHL 15 > len
	if err := ip.DecodeFromBytes(bad); err == nil {
		t.Error("truncated options accepted")
	}
}

func TestVLANSerializeRejectsBigID(t *testing.T) {
	v := &VLAN{VLANID: 5000}
	if _, err := Serialize(SerializeOptions{}, v); err == nil {
		t.Error("vlan id 5000 accepted")
	}
}

func TestTCPDecodeErrors(t *testing.T) {
	var tcp TCP
	if err := tcp.DecodeFromBytes(make([]byte, 10)); err == nil {
		t.Error("short tcp accepted")
	}
	bad := make([]byte, 20)
	bad[12] = 0xf0 // data offset 60 > len
	if err := tcp.DecodeFromBytes(bad); err == nil {
		t.Error("bad data offset accepted")
	}
}
