package pkt

import (
	"encoding/binary"
	"fmt"
)

// EndpointType identifies the address family carried by an Endpoint.
type EndpointType int

// Endpoint address families.
const (
	EndpointInvalid EndpointType = iota
	EndpointMAC
	EndpointIPv4
	EndpointUDPPort
	EndpointTCPPort
)

func (t EndpointType) String() string {
	switch t {
	case EndpointMAC:
		return "MAC"
	case EndpointIPv4:
		return "IPv4"
	case EndpointUDPPort:
		return "UDPPort"
	case EndpointTCPPort:
		return "TCPPort"
	default:
		return "Invalid"
	}
}

// Endpoint is a hashable representation of a source or destination address.
// Endpoints are comparable with == and usable as map keys.
type Endpoint struct {
	typ EndpointType
	len int
	raw [8]byte
}

// NewEndpoint builds an Endpoint from an address family and raw bytes.
// Raw data longer than 8 bytes is rejected as invalid.
func NewEndpoint(typ EndpointType, raw []byte) Endpoint {
	var e Endpoint
	if len(raw) > len(e.raw) {
		return Endpoint{}
	}
	e.typ = typ
	e.len = len(raw)
	copy(e.raw[:], raw)
	return e
}

// Type returns the endpoint's address family.
func (e Endpoint) Type() EndpointType { return e.typ }

// Raw returns a copy of the endpoint's address bytes.
func (e Endpoint) Raw() []byte {
	out := make([]byte, e.len)
	copy(out, e.raw[:e.len])
	return out
}

// FastHash returns a cheap non-cryptographic hash of the endpoint.
func (e Endpoint) FastHash() uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	h ^= uint64(e.typ)
	h *= 1099511628211
	for i := 0; i < e.len; i++ {
		h ^= uint64(e.raw[i])
		h *= 1099511628211
	}
	return h
}

func (e Endpoint) String() string {
	switch e.typ {
	case EndpointMAC:
		return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
			e.raw[0], e.raw[1], e.raw[2], e.raw[3], e.raw[4], e.raw[5])
	case EndpointIPv4:
		return fmt.Sprintf("%d.%d.%d.%d", e.raw[0], e.raw[1], e.raw[2], e.raw[3])
	case EndpointUDPPort, EndpointTCPPort:
		return fmt.Sprintf("%d", binary.BigEndian.Uint16(e.raw[:2]))
	default:
		return "invalid"
	}
}

// Flow is an ordered (source, destination) pair of Endpoints. Flows are
// comparable with == and usable as map keys.
type Flow struct {
	src, dst Endpoint
}

// NewFlow builds a Flow from two endpoints.
func NewFlow(src, dst Endpoint) Flow { return Flow{src: src, dst: dst} }

// Endpoints returns the flow's source and destination.
func (f Flow) Endpoints() (src, dst Endpoint) { return f.src, f.dst }

// Src returns the source endpoint.
func (f Flow) Src() Endpoint { return f.src }

// Dst returns the destination endpoint.
func (f Flow) Dst() Endpoint { return f.dst }

// Reverse returns the flow with source and destination swapped.
func (f Flow) Reverse() Flow { return Flow{src: f.dst, dst: f.src} }

// FastHash returns a symmetric hash: f.FastHash() == f.Reverse().FastHash(),
// so bidirectional traffic of one conversation lands in the same bucket.
func (f Flow) FastHash() uint64 {
	a, b := f.src.FastHash(), f.dst.FastHash()
	if a > b {
		a, b = b, a
	}
	return a*31 + b
}

func (f Flow) String() string { return f.src.String() + "->" + f.dst.String() }
