package pkt

import (
	"fmt"
	"strings"
)

// decodingLayer is a layer that can parse itself from bytes and name its
// successor.
type decodingLayer interface {
	Layer
	DecodeFromBytes(data []byte) error
	NextLayerType() LayerType
}

// Packet is a decoded packet: the raw bytes plus the ordered list of layers
// found in them. Decoding is eager and the result is immutable, so a Packet
// may be shared between goroutines.
type Packet struct {
	data   []byte
	layers []Layer
}

// DecodeOptions tunes NewPacket.
type DecodeOptions struct {
	// NoCopy reuses the caller's slice instead of copying it. The caller
	// must guarantee the bytes are not mutated afterwards.
	NoCopy bool
}

// Default and NoCopy are the common decode option sets.
var (
	Default = DecodeOptions{}
	NoCopy  = DecodeOptions{NoCopy: true}
)

// NewPacket decodes data starting at the given layer type. Decoding errors do
// not fail the call: layers decoded before the error are retained and the
// error is recorded as a trailing DecodeFailure layer, retrievable via
// ErrorLayer.
func NewPacket(data []byte, first LayerType, opts DecodeOptions) *Packet {
	if !opts.NoCopy {
		d := make([]byte, len(data))
		copy(d, data)
		data = d
	}
	p := &Packet{data: data}
	p.decodeAll(first)
	return p
}

func newDecodingLayer(t LayerType) decodingLayer {
	switch t {
	case LayerTypeEthernet:
		return &Ethernet{}
	case LayerTypeVLAN:
		return &VLAN{}
	case LayerTypeARP:
		return &ARP{}
	case LayerTypeIPv4:
		return &IPv4{}
	case LayerTypeUDP:
		return &UDP{}
	case LayerTypeTCP:
		return &TCP{}
	case LayerTypeICMP:
		return &ICMP{}
	case LayerTypeESP:
		return &ESP{}
	default:
		return nil
	}
}

func (p *Packet) decodeAll(first LayerType) {
	data := p.data
	next := first
	for len(data) > 0 {
		if next == LayerTypePayload {
			p.layers = append(p.layers, Payload(data))
			return
		}
		dl := newDecodingLayer(next)
		if dl == nil {
			return
		}
		if err := dl.DecodeFromBytes(data); err != nil {
			p.layers = append(p.layers, &DecodeFailure{Data: data, Err: err})
			return
		}
		p.layers = append(p.layers, dl)
		next = dl.NextLayerType()
		if next == LayerTypeZero {
			return
		}
		data = dl.LayerPayload()
	}
}

// Data returns the packet's raw bytes.
func (p *Packet) Data() []byte { return p.data }

// Layers returns all decoded layers in wire order.
func (p *Packet) Layers() []Layer { return p.layers }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// LinkLayer returns the packet's L2 layer, or nil.
func (p *Packet) LinkLayer() LinkLayer {
	for _, l := range p.layers {
		if ll, ok := l.(LinkLayer); ok {
			return ll
		}
	}
	return nil
}

// NetworkLayer returns the packet's L3 layer, or nil.
func (p *Packet) NetworkLayer() NetworkLayer {
	for _, l := range p.layers {
		if nl, ok := l.(NetworkLayer); ok {
			return nl
		}
	}
	return nil
}

// TransportLayer returns the packet's L4 layer, or nil.
func (p *Packet) TransportLayer() TransportLayer {
	for _, l := range p.layers {
		if tl, ok := l.(TransportLayer); ok {
			return tl
		}
	}
	return nil
}

// ApplicationLayer returns the packet's terminal payload, or nil.
func (p *Packet) ApplicationLayer() Payload {
	if l := p.Layer(LayerTypePayload); l != nil {
		return l.(Payload)
	}
	return nil
}

// ErrorLayer returns the decode failure recorded during decoding, or nil if
// the whole packet decoded cleanly.
func (p *Packet) ErrorLayer() *DecodeFailure {
	if l := p.Layer(LayerTypeDecodeFailure); l != nil {
		return l.(*DecodeFailure)
	}
	return nil
}

// String renders a one-line summary of the packet's layer stack.
func (p *Packet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PACKET %d bytes:", len(p.data))
	for _, l := range p.layers {
		fmt.Fprintf(&b, " %v", l.LayerType())
	}
	return b.String()
}
