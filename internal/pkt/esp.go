package pkt

import (
	"encoding/binary"
	"fmt"
)

// ESPHeaderLen is the length of the cleartext ESP header (SPI + sequence
// number). The payload that follows is ciphertext terminated by an ICV, both
// opaque at this layer.
const ESPHeaderLen = 8

// ESP is an IPsec Encapsulating Security Payload header (RFC 4303). Only the
// cleartext prefix is decoded; decryption is performed by the IPsec network
// function, not the packet library.
type ESP struct {
	SPI uint32
	Seq uint32

	contents, payload []byte
}

// LayerType implements Layer.
func (e *ESP) LayerType() LayerType { return LayerTypeESP }

// LayerContents implements Layer.
func (e *ESP) LayerContents() []byte { return e.contents }

// LayerPayload implements Layer; the payload is ciphertext plus ICV.
func (e *ESP) LayerPayload() []byte { return e.payload }

// DecodeFromBytes parses the ESP cleartext header in place.
func (e *ESP) DecodeFromBytes(data []byte) error {
	if len(data) < ESPHeaderLen {
		return fmt.Errorf("pkt: esp header too short: %d bytes", len(data))
	}
	e.SPI = binary.BigEndian.Uint32(data[0:4])
	e.Seq = binary.BigEndian.Uint32(data[4:8])
	e.contents = data[:ESPHeaderLen]
	e.payload = data[ESPHeaderLen:]
	return nil
}

// NextLayerType returns LayerTypePayload: everything after the header is
// opaque ciphertext.
func (e *ESP) NextLayerType() LayerType { return LayerTypePayload }

// SerializeTo implements SerializableLayer.
func (e *ESP) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	bytes, err := b.PrependBytes(ESPHeaderLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(bytes[0:4], e.SPI)
	binary.BigEndian.PutUint32(bytes[4:8], e.Seq)
	return nil
}
