package pkt

import "testing"

func TestGetBufferSizes(t *testing.T) {
	small := GetBuffer(64)
	if len(small) != 64 || cap(small) != FrameBufferSize {
		t.Errorf("small = len %d cap %d", len(small), cap(small))
	}
	exact := GetBuffer(FrameBufferSize)
	if len(exact) != FrameBufferSize {
		t.Errorf("exact = len %d", len(exact))
	}
	big := GetBuffer(FrameBufferSize + 1)
	if len(big) != FrameBufferSize+1 {
		t.Errorf("big = len %d", len(big))
	}
	PutBuffer(small)
	PutBuffer(exact)
	PutBuffer(big) // foreign capacity class: must be a silent no-op
}

func TestPutBufferIgnoresForeignBuffers(t *testing.T) {
	PutBuffer(nil)
	PutBuffer(make([]byte, 10))
	PutBuffer(make([]byte, 4096))
	// A recycled buffer must come back usable at any size.
	b := GetBuffer(100)
	for i := range b {
		b[i] = 0xab
	}
	PutBuffer(b)
	c := GetBuffer(200)
	if len(c) != 200 || cap(c) != FrameBufferSize {
		t.Errorf("reused buffer = len %d cap %d", len(c), cap(c))
	}
}

func BenchmarkGetPutBuffer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetBuffer(1500)
		PutBuffer(buf)
	}
}
