package pkt

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // header+payload; recomputed when FixLengths is set
	Checksum         uint16 // recomputed when ComputeChecksums is set

	// ipv4 is the network layer used for the pseudo-header checksum; set
	// via SetNetworkLayerForChecksum before serializing with
	// ComputeChecksums.
	ipv4 *IPv4

	contents, payload []byte
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// LayerContents implements Layer.
func (u *UDP) LayerContents() []byte { return u.contents }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// TransportFlow implements TransportLayer.
func (u *UDP) TransportFlow() Flow {
	var s, d [2]byte
	binary.BigEndian.PutUint16(s[:], u.SrcPort)
	binary.BigEndian.PutUint16(d[:], u.DstPort)
	return NewFlow(NewEndpoint(EndpointUDPPort, s[:]), NewEndpoint(EndpointUDPPort, d[:]))
}

// SetNetworkLayerForChecksum records the enclosing IPv4 header so the UDP
// checksum can cover the pseudo-header.
func (u *UDP) SetNetworkLayerForChecksum(ip *IPv4) { u.ipv4 = ip }

// DecodeFromBytes parses a UDP header in place.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return fmt.Errorf("pkt: udp header too short: %d bytes", len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	u.contents = data[:UDPHeaderLen]
	end := int(u.Length)
	if end < UDPHeaderLen || end > len(data) {
		end = len(data)
	}
	u.payload = data[UDPHeaderLen:end]
	return nil
}

// NextLayerType returns LayerTypePayload: UDP payload is opaque here.
func (u *UDP) NextLayerType() LayerType { return LayerTypePayload }

// SerializeTo implements SerializableLayer.
func (u *UDP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := len(b.Bytes())
	bytes, err := b.PrependBytes(UDPHeaderLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(bytes[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(bytes[2:4], u.DstPort)
	if opts.FixLengths {
		u.Length = uint16(UDPHeaderLen + payloadLen)
	}
	binary.BigEndian.PutUint16(bytes[4:6], u.Length)
	binary.BigEndian.PutUint16(bytes[6:8], 0)
	if opts.ComputeChecksums {
		if u.ipv4 == nil {
			return fmt.Errorf("pkt: udp checksum requested without network layer")
		}
		all := b.Bytes() // udp header + payload
		u.Checksum = tcpipChecksum(all, u.ipv4.pseudoHeaderChecksum(IPProtocolUDP, uint16(len(all))))
	}
	binary.BigEndian.PutUint16(bytes[6:8], u.Checksum)
	return nil
}

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP flag bits.
const (
	TCPFlagFIN = 1 << iota
	TCPFlagSYN
	TCPFlagRST
	TCPFlagPSH
	TCPFlagACK
	TCPFlagURG
)

// TCP is a TCP header (options unsupported, data offset always 5 on
// serialize).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16

	ipv4 *IPv4

	contents, payload []byte
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerContents implements Layer.
func (t *TCP) LayerContents() []byte { return t.contents }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// TransportFlow implements TransportLayer.
func (t *TCP) TransportFlow() Flow {
	var s, d [2]byte
	binary.BigEndian.PutUint16(s[:], t.SrcPort)
	binary.BigEndian.PutUint16(d[:], t.DstPort)
	return NewFlow(NewEndpoint(EndpointTCPPort, s[:]), NewEndpoint(EndpointTCPPort, d[:]))
}

// SetNetworkLayerForChecksum records the enclosing IPv4 header so the TCP
// checksum can cover the pseudo-header.
func (t *TCP) SetNetworkLayerForChecksum(ip *IPv4) { t.ipv4 = ip }

// DecodeFromBytes parses a TCP header in place.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPHeaderLen {
		return fmt.Errorf("pkt: tcp header too short: %d bytes", len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	dataOff := int(data[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(data) {
		return fmt.Errorf("pkt: tcp data offset %d invalid", dataOff)
	}
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.contents = data[:dataOff]
	t.payload = data[dataOff:]
	return nil
}

// NextLayerType returns LayerTypePayload: TCP payload is opaque here.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// SerializeTo implements SerializableLayer.
func (t *TCP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	bytes, err := b.PrependBytes(TCPHeaderLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(bytes[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(bytes[2:4], t.DstPort)
	binary.BigEndian.PutUint32(bytes[4:8], t.Seq)
	binary.BigEndian.PutUint32(bytes[8:12], t.Ack)
	bytes[12] = 5 << 4
	bytes[13] = t.Flags
	binary.BigEndian.PutUint16(bytes[14:16], t.Window)
	binary.BigEndian.PutUint16(bytes[16:18], 0)
	binary.BigEndian.PutUint16(bytes[18:20], t.Urgent)
	if opts.ComputeChecksums {
		if t.ipv4 == nil {
			return fmt.Errorf("pkt: tcp checksum requested without network layer")
		}
		all := b.Bytes()
		t.Checksum = tcpipChecksum(all, t.ipv4.pseudoHeaderChecksum(IPProtocolTCP, uint16(len(all))))
	}
	binary.BigEndian.PutUint16(bytes[16:18], t.Checksum)
	return nil
}

// ICMPHeaderLen is the length of the fixed ICMP header.
const ICMPHeaderLen = 8

// ICMP types used by the simulator.
const (
	ICMPTypeEchoReply   = 0
	ICMPTypeEchoRequest = 8
)

// ICMP is an ICMPv4 header.
type ICMP struct {
	Type, Code uint8
	Checksum   uint16
	ID, Seq    uint16

	contents, payload []byte
}

// LayerType implements Layer.
func (i *ICMP) LayerType() LayerType { return LayerTypeICMP }

// LayerContents implements Layer.
func (i *ICMP) LayerContents() []byte { return i.contents }

// LayerPayload implements Layer.
func (i *ICMP) LayerPayload() []byte { return i.payload }

// DecodeFromBytes parses an ICMP header in place.
func (i *ICMP) DecodeFromBytes(data []byte) error {
	if len(data) < ICMPHeaderLen {
		return fmt.Errorf("pkt: icmp header too short: %d bytes", len(data))
	}
	i.Type = data[0]
	i.Code = data[1]
	i.Checksum = binary.BigEndian.Uint16(data[2:4])
	i.ID = binary.BigEndian.Uint16(data[4:6])
	i.Seq = binary.BigEndian.Uint16(data[6:8])
	i.contents = data[:ICMPHeaderLen]
	i.payload = data[ICMPHeaderLen:]
	return nil
}

// NextLayerType returns LayerTypePayload.
func (i *ICMP) NextLayerType() LayerType { return LayerTypePayload }

// SerializeTo implements SerializableLayer.
func (i *ICMP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	bytes, err := b.PrependBytes(ICMPHeaderLen)
	if err != nil {
		return err
	}
	bytes[0] = i.Type
	bytes[1] = i.Code
	binary.BigEndian.PutUint16(bytes[2:4], 0)
	binary.BigEndian.PutUint16(bytes[4:6], i.ID)
	binary.BigEndian.PutUint16(bytes[6:8], i.Seq)
	if opts.ComputeChecksums {
		i.Checksum = Checksum(b.Bytes())
	}
	binary.BigEndian.PutUint16(bytes[2:4], i.Checksum)
	return nil
}
