package pkt

import "fmt"

// FrameSpec describes a simple Ethernet/IPv4/UDP frame to build; it is the
// shape used by traffic generators and tests throughout the repository.
type FrameSpec struct {
	SrcMAC, DstMAC   MAC
	VLANID           uint16 // 0 means untagged
	SrcIP, DstIP     Addr
	Proto            IPProtocol // UDP or TCP; defaults to UDP
	SrcPort, DstPort uint16
	TTL              uint8 // defaults to 64
	PayloadLen       int
	PayloadByte      byte // fill byte for the payload
}

// BuildFrame encodes the described frame with correct lengths and checksums.
func BuildFrame(spec FrameSpec) ([]byte, error) {
	if spec.TTL == 0 {
		spec.TTL = 64
	}
	if spec.Proto == 0 {
		spec.Proto = IPProtocolUDP
	}
	payload := make(Payload, spec.PayloadLen)
	for i := range payload {
		payload[i] = spec.PayloadByte
	}
	ip := &IPv4{
		TTL:      spec.TTL,
		Protocol: spec.Proto,
		SrcIP:    spec.SrcIP,
		DstIP:    spec.DstIP,
	}
	var transport SerializableLayer
	switch spec.Proto {
	case IPProtocolUDP:
		u := &UDP{SrcPort: spec.SrcPort, DstPort: spec.DstPort}
		u.SetNetworkLayerForChecksum(ip)
		transport = u
	case IPProtocolTCP:
		t := &TCP{SrcPort: spec.SrcPort, DstPort: spec.DstPort, Flags: TCPFlagACK, Window: 65535}
		t.SetNetworkLayerForChecksum(ip)
		transport = t
	default:
		return nil, fmt.Errorf("pkt: BuildFrame does not support protocol %v", spec.Proto)
	}
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	stack := make([]SerializableLayer, 0, 5)
	eth := &Ethernet{SrcMAC: spec.SrcMAC, DstMAC: spec.DstMAC, EthernetType: EthernetTypeIPv4}
	if spec.VLANID != 0 {
		eth.EthernetType = EthernetTypeVLAN
		stack = append(stack, eth, &VLAN{VLANID: spec.VLANID, EthernetType: EthernetTypeIPv4})
	} else {
		stack = append(stack, eth)
	}
	stack = append(stack, ip, transport, payload)
	return Serialize(opts, stack...)
}

// MustBuildFrame is BuildFrame that panics on error, for tests and examples.
func MustBuildFrame(spec FrameSpec) []byte {
	f, err := BuildFrame(spec)
	if err != nil {
		panic(err)
	}
	return f
}
