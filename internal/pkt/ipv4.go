package pkt

import (
	"encoding/binary"
	"fmt"
)

// IPProtocol is the IPv4 protocol number.
type IPProtocol uint8

// Well-known IP protocol numbers.
const (
	IPProtocolICMP IPProtocol = 1
	IPProtocolTCP  IPProtocol = 6
	IPProtocolUDP  IPProtocol = 17
	IPProtocolESP  IPProtocol = 50
)

func (p IPProtocol) String() string {
	switch p {
	case IPProtocolICMP:
		return "ICMP"
	case IPProtocolTCP:
		return "TCP"
	case IPProtocolUDP:
		return "UDP"
	case IPProtocolESP:
		return "ESP"
	default:
		return fmt.Sprintf("IPProto(%d)", uint8(p))
	}
}

// Addr is an IPv4 address, comparable with ==.
type Addr [4]byte

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a[0], &a[1], &a[2], &a[3]); err != nil {
		return Addr{}, fmt.Errorf("pkt: bad IPv4 address %q: %w", s, err)
	}
	return a, nil
}

// MustAddr is ParseAddr that panics on error, for tests and literals.
func MustAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Endpoint returns the address as a flow endpoint.
func (a Addr) Endpoint() Endpoint { return NewEndpoint(EndpointIPv4, a[:]) }

// Uint32 returns the address as a big-endian integer.
func (a Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// AddrFromUint32 converts a big-endian integer to an address.
func AddrFromUint32(v uint32) Addr {
	var a Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 header (options unsupported, IHL always 5 on serialize).
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length; recomputed when FixLengths is set
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol IPProtocol
	Checksum uint16 // recomputed when ComputeChecksums is set
	SrcIP    Addr
	DstIP    Addr

	contents, payload []byte
}

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// LayerContents implements Layer.
func (ip *IPv4) LayerContents() []byte { return ip.contents }

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// NetworkFlow implements NetworkLayer.
func (ip *IPv4) NetworkFlow() Flow {
	return NewFlow(ip.SrcIP.Endpoint(), ip.DstIP.Endpoint())
}

// DecodeFromBytes parses an IPv4 header in place.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return fmt.Errorf("pkt: ipv4 header too short: %d bytes", len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("pkt: ipv4 version field is %d", v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen {
		return fmt.Errorf("pkt: ipv4 IHL %d below minimum", ihl)
	}
	if len(data) < ihl {
		return fmt.Errorf("pkt: ipv4 header truncated: IHL %d, have %d", ihl, len(data))
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.SrcIP[:], data[12:16])
	copy(ip.DstIP[:], data[16:20])
	ip.contents = data[:ihl]
	end := int(ip.Length)
	if end < ihl || end > len(data) {
		end = len(data)
	}
	ip.payload = data[ihl:end]
	return nil
}

// NextLayerType returns the type of the layer carried in the payload.
func (ip *IPv4) NextLayerType() LayerType {
	switch ip.Protocol {
	case IPProtocolICMP:
		return LayerTypeICMP
	case IPProtocolTCP:
		return LayerTypeTCP
	case IPProtocolUDP:
		return LayerTypeUDP
	case IPProtocolESP:
		return LayerTypeESP
	default:
		return LayerTypePayload
	}
}

// SerializeTo implements SerializableLayer.
func (ip *IPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := len(b.Bytes())
	bytes, err := b.PrependBytes(IPv4HeaderLen)
	if err != nil {
		return err
	}
	bytes[0] = 4<<4 | 5 // version 4, IHL 5
	bytes[1] = ip.TOS
	length := ip.Length
	if opts.FixLengths {
		length = uint16(IPv4HeaderLen + payloadLen)
		ip.Length = length
	}
	binary.BigEndian.PutUint16(bytes[2:4], length)
	binary.BigEndian.PutUint16(bytes[4:6], ip.ID)
	binary.BigEndian.PutUint16(bytes[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	bytes[8] = ip.TTL
	bytes[9] = uint8(ip.Protocol)
	binary.BigEndian.PutUint16(bytes[10:12], 0)
	copy(bytes[12:16], ip.SrcIP[:])
	copy(bytes[16:20], ip.DstIP[:])
	if opts.ComputeChecksums {
		ip.Checksum = Checksum(bytes[:IPv4HeaderLen])
	}
	binary.BigEndian.PutUint16(bytes[10:12], ip.Checksum)
	return nil
}

// pseudoHeaderChecksum computes the partial checksum over the IPv4
// pseudo-header used by TCP and UDP.
func (ip *IPv4) pseudoHeaderChecksum(proto IPProtocol, length uint16) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(ip.SrcIP[0:2]))
	sum += uint32(binary.BigEndian.Uint16(ip.SrcIP[2:4]))
	sum += uint32(binary.BigEndian.Uint16(ip.DstIP[0:2]))
	sum += uint32(binary.BigEndian.Uint16(ip.DstIP[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}
