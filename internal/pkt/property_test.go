package pkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestPropertyFrameRoundTrip checks that any frame built by BuildFrame
// decodes back to the same addressing and payload.
func TestPropertyFrameRoundTrip(t *testing.T) {
	f := func(srcIP, dstIP [4]byte, srcPort, dstPort uint16, vlan uint16, plen uint8, fill byte) bool {
		spec := FrameSpec{
			SrcMAC: macA, DstMAC: macB,
			VLANID: vlan % 4095,
			SrcIP:  Addr(srcIP), DstIP: Addr(dstIP),
			SrcPort: srcPort, DstPort: dstPort,
			PayloadLen: int(plen), PayloadByte: fill,
		}
		data, err := BuildFrame(spec)
		if err != nil {
			return false
		}
		p := NewPacket(data, LayerTypeEthernet, Default)
		if p.ErrorLayer() != nil {
			return false
		}
		ip, ok := p.Layer(LayerTypeIPv4).(*IPv4)
		if !ok || ip.SrcIP != Addr(srcIP) || ip.DstIP != Addr(dstIP) {
			return false
		}
		udp, ok := p.Layer(LayerTypeUDP).(*UDP)
		if !ok || udp.SrcPort != srcPort || udp.DstPort != dstPort {
			return false
		}
		if spec.VLANID != 0 {
			v, ok := p.Layer(LayerTypeVLAN).(*VLAN)
			if !ok || v.VLANID != spec.VLANID {
				return false
			}
		}
		app := p.ApplicationLayer()
		if len(app) != int(plen) {
			return false
		}
		for _, b := range app {
			if b != fill {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyChecksumZeroOverValid checks the defining property of the
// Internet checksum: summing data that includes a correct checksum yields 0.
func TestPropertyChecksumZeroOverValid(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		// Zero a 2-byte field, compute, insert, re-verify.
		d := append([]byte(nil), data...)
		d[0], d[1] = 0, 0
		c := Checksum(d)
		d[0], d[1] = byte(c>>8), byte(c)
		return Checksum(d) == 0 || c == 0 // c==0 encodes as 0 and stays 0 only if sum was 0xffff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyESPHeaderRoundTrip checks SPI/Seq survive encode/decode for
// arbitrary values and payloads.
func TestPropertyESPHeaderRoundTrip(t *testing.T) {
	f := func(spi, seq uint32, payload []byte) bool {
		data, err := Serialize(SerializeOptions{}, &ESP{SPI: spi, Seq: seq}, Payload(payload))
		if err != nil {
			return false
		}
		var e ESP
		if err := e.DecodeFromBytes(data); err != nil {
			return false
		}
		return e.SPI == spi && e.Seq == seq && bytes.Equal(e.LayerPayload(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEndpointEquality checks that endpoints built from equal bytes
// are equal and hash equally, and that flows reverse consistently.
func TestPropertyEndpointEquality(t *testing.T) {
	f := func(a, b [4]byte) bool {
		e1 := Addr(a).Endpoint()
		e2 := Addr(a).Endpoint()
		e3 := Addr(b).Endpoint()
		if e1 != e2 || e1.FastHash() != e2.FastHash() {
			return false
		}
		fl := NewFlow(e1, e3)
		if fl.Reverse().Reverse() != fl {
			return false
		}
		return fl.FastHash() == fl.Reverse().FastHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyVLANIDPreserved checks VLAN tags for every valid ID.
func TestPropertyVLANIDPreserved(t *testing.T) {
	f := func(id uint16) bool {
		id %= 4096
		v := &VLAN{VLANID: id, EthernetType: EthernetTypeIPv4}
		data, err := Serialize(SerializeOptions{}, v, Payload([]byte{1}))
		if err != nil {
			return false
		}
		var got VLAN
		if err := got.DecodeFromBytes(data); err != nil {
			return false
		}
		return got.VLANID == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
