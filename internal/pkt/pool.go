package pkt

import "sync"

// FrameBufferSize is the capacity class of pooled frame buffers: large
// enough for an MTU-sized frame plus encapsulation headroom (VLAN tags, ESP
// tunnel overhead). Requests above this size fall back to the allocator.
const FrameBufferSize = 2048

var framePool = sync.Pool{
	New: func() any { return new([FrameBufferSize]byte) },
}

// GetBuffer returns a length-n byte slice backed by the shared frame-buffer
// pool when n fits FrameBufferSize, and a fresh allocation otherwise. The
// contents are unspecified; callers overwrite them. Return pool-backed
// buffers with PutBuffer once the frame's lifetime is provably over (e.g. a
// traffic sink that has drained and counted it); buffers that escape into
// long-lived structures may simply be dropped for the GC.
func GetBuffer(n int) []byte {
	if n > FrameBufferSize {
		return make([]byte, n)
	}
	return framePool.Get().(*[FrameBufferSize]byte)[:n]
}

// PutBuffer recycles a buffer previously handed out by GetBuffer. Buffers of
// any other capacity class (including exact-size allocations such as
// serialized packets) are silently ignored, so it is always safe to call on
// a frame of unknown provenance — but never on one that may still be
// referenced elsewhere.
func PutBuffer(b []byte) {
	if cap(b) != FrameBufferSize {
		return
	}
	framePool.Put((*[FrameBufferSize]byte)(b[0:FrameBufferSize:FrameBufferSize]))
}
