package pkt

import "errors"

// SerializeOptions tunes serialization behaviour.
type SerializeOptions struct {
	// FixLengths recomputes length fields (IPv4 total length, UDP length,
	// ...) from the actual payload sizes during serialization.
	FixLengths bool
	// ComputeChecksums recomputes checksums (IPv4 header, UDP, TCP, ICMP)
	// during serialization.
	ComputeChecksums bool
}

// SerializableLayer is a layer that can write itself to a SerializeBuffer.
type SerializableLayer interface {
	// SerializeTo prepends this layer's wire representation to b. The
	// current contents of b are treated as this layer's payload.
	SerializeTo(b *SerializeBuffer, opts SerializeOptions) error
}

// SerializeBuffer accumulates packet bytes back-to-front: each layer prepends
// its header in front of the bytes already written. The zero value is ready
// to use.
type SerializeBuffer struct {
	data  []byte
	start int
}

// NewSerializeBuffer returns a buffer with a small amount of headroom
// preallocated.
func NewSerializeBuffer() *SerializeBuffer {
	return NewSerializeBufferExpectedSize(64, 1024)
}

// NewSerializeBufferExpectedSize returns a buffer preallocating the given
// headroom for prepends and tailroom for appends, avoiding reallocation when
// the final packet fits the estimate.
func NewSerializeBufferExpectedSize(expectedPrepend, expectedTotal int) *SerializeBuffer {
	if expectedPrepend < 0 || expectedTotal < expectedPrepend {
		expectedPrepend, expectedTotal = 64, 1024
	}
	return &SerializeBuffer{
		data:  make([]byte, expectedPrepend, expectedTotal),
		start: expectedPrepend,
	}
}

// Bytes returns the serialized packet accumulated so far. The returned slice
// aliases the buffer and is invalidated by further Prepend/Append calls.
func (b *SerializeBuffer) Bytes() []byte { return b.data[b.start:] }

// PrependBytes returns a slice of n bytes placed immediately before the
// current contents; the caller fills it with a layer header.
func (b *SerializeBuffer) PrependBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, errors.New("pkt: cannot prepend negative length")
	}
	if b.start < n {
		// Grow headroom: reallocate with extra space in front.
		grow := n - b.start
		if grow < 64 {
			grow = 64
		}
		nd := make([]byte, len(b.data)+grow)
		copy(nd[grow:], b.data)
		b.data = nd
		b.start += grow
	}
	b.start -= n
	return b.data[b.start : b.start+n], nil
}

// AppendBytes returns a slice of n bytes placed after the current contents;
// the caller fills it with trailer data (e.g. an ESP ICV).
func (b *SerializeBuffer) AppendBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, errors.New("pkt: cannot append negative length")
	}
	old := len(b.data)
	if cap(b.data) >= old+n {
		b.data = b.data[:old+n]
	} else {
		nd := make([]byte, old+n, (old+n)*2)
		copy(nd, b.data)
		b.data = nd
	}
	return b.data[old : old+n], nil
}

// Clear resets the buffer to empty, retaining its allocation.
func (b *SerializeBuffer) Clear() {
	b.start = cap(b.data) / 2
	if b.start > len(b.data) {
		b.start = len(b.data)
	}
	b.data = b.data[:b.start]
}

// SerializeLayers clears b and serializes the given layers front-to-back
// (so they are written back-to-front into the buffer). The first layer ends
// up outermost on the wire.
func SerializeLayers(b *SerializeBuffer, opts SerializeOptions, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b, opts); err != nil {
			return err
		}
	}
	return nil
}

// Serialize is a convenience wrapper allocating a fresh buffer and returning
// the encoded bytes of the given layer stack.
func Serialize(opts SerializeOptions, layers ...SerializableLayer) ([]byte, error) {
	b := NewSerializeBuffer()
	if err := SerializeLayers(b, opts, layers...); err != nil {
		return nil, err
	}
	out := make([]byte, len(b.Bytes()))
	copy(out, b.Bytes())
	return out, nil
}
