package pkt

import (
	"encoding/binary"
	"fmt"
)

// ARP operations.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPHeaderLen is the length of an Ethernet/IPv4 ARP packet.
const ARPHeaderLen = 28

// ARP is an Ethernet/IPv4 ARP packet.
type ARP struct {
	Operation uint16
	SenderMAC MAC
	SenderIP  Addr
	TargetMAC MAC
	TargetIP  Addr

	contents []byte
}

// LayerType implements Layer.
func (a *ARP) LayerType() LayerType { return LayerTypeARP }

// LayerContents implements Layer.
func (a *ARP) LayerContents() []byte { return a.contents }

// LayerPayload implements Layer; ARP carries no payload.
func (a *ARP) LayerPayload() []byte { return nil }

// DecodeFromBytes parses an ARP packet in place.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < ARPHeaderLen {
		return fmt.Errorf("pkt: arp packet too short: %d bytes", len(data))
	}
	if htype := binary.BigEndian.Uint16(data[0:2]); htype != 1 {
		return fmt.Errorf("pkt: arp hardware type %d unsupported", htype)
	}
	if ptype := EthernetType(binary.BigEndian.Uint16(data[2:4])); ptype != EthernetTypeIPv4 {
		return fmt.Errorf("pkt: arp protocol type %v unsupported", ptype)
	}
	if data[4] != 6 || data[5] != 4 {
		return fmt.Errorf("pkt: arp address lengths %d/%d unsupported", data[4], data[5])
	}
	a.Operation = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetMAC[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	a.contents = data[:ARPHeaderLen]
	return nil
}

// NextLayerType returns LayerTypeZero: ARP is terminal.
func (a *ARP) NextLayerType() LayerType { return LayerTypeZero }

// SerializeTo implements SerializableLayer.
func (a *ARP) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	bytes, err := b.PrependBytes(ARPHeaderLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(bytes[0:2], 1) // Ethernet
	binary.BigEndian.PutUint16(bytes[2:4], uint16(EthernetTypeIPv4))
	bytes[4] = 6
	bytes[5] = 4
	binary.BigEndian.PutUint16(bytes[6:8], a.Operation)
	copy(bytes[8:14], a.SenderMAC[:])
	copy(bytes[14:18], a.SenderIP[:])
	copy(bytes[18:24], a.TargetMAC[:])
	copy(bytes[24:28], a.TargetIP[:])
	return nil
}
