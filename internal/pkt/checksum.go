package pkt

// Checksum computes the RFC 1071 Internet checksum of data, assuming the
// checksum field inside data (if any) is zeroed by the caller.
func Checksum(data []byte) uint16 {
	return foldChecksum(sumBytes(data, 0))
}

// sumBytes adds data to a running 32-bit ones'-complement accumulator.
func sumBytes(data []byte, sum uint32) uint32 {
	for len(data) >= 2 {
		sum += uint32(data[0])<<8 | uint32(data[1])
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	return sum
}

// foldChecksum folds the accumulator into 16 bits and complements it.
func foldChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// tcpipChecksum computes a transport checksum given a pseudo-header partial
// sum and the transport header+payload bytes.
func tcpipChecksum(data []byte, pseudoSum uint32) uint16 {
	return foldChecksum(sumBytes(data, pseudoSum))
}
