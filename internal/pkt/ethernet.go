package pkt

import (
	"encoding/binary"
	"fmt"
)

// EthernetType is the two-byte type field of an Ethernet frame.
type EthernetType uint16

// Well-known EtherTypes.
const (
	EthernetTypeIPv4 EthernetType = 0x0800
	EthernetTypeARP  EthernetType = 0x0806
	EthernetTypeVLAN EthernetType = 0x8100
)

func (t EthernetType) String() string {
	switch t {
	case EthernetTypeIPv4:
		return "IPv4"
	case EthernetTypeARP:
		return "ARP"
	case EthernetTypeVLAN:
		return "VLAN"
	default:
		return fmt.Sprintf("0x%04x", uint16(t))
	}
}

// MAC is a 6-byte Ethernet hardware address, comparable with ==.
type MAC [6]byte

// ParseMAC parses the common colon-separated hex notation.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if _, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x",
		&m[0], &m[1], &m[2], &m[3], &m[4], &m[5]); err != nil {
		return MAC{}, fmt.Errorf("pkt: bad MAC %q: %w", s, err)
	}
	return m, nil
}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// Endpoint returns the MAC as a flow endpoint.
func (m MAC) Endpoint() Endpoint { return NewEndpoint(EndpointMAC, m[:]) }

// EthernetHeaderLen is the length of an untagged Ethernet header.
const EthernetHeaderLen = 14

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	SrcMAC, DstMAC MAC
	EthernetType   EthernetType

	contents, payload []byte
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// LayerContents implements Layer.
func (e *Ethernet) LayerContents() []byte { return e.contents }

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// LinkFlow implements LinkLayer.
func (e *Ethernet) LinkFlow() Flow {
	return NewFlow(e.SrcMAC.Endpoint(), e.DstMAC.Endpoint())
}

// DecodeFromBytes parses an Ethernet header in place.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return fmt.Errorf("pkt: ethernet frame too short: %d bytes", len(data))
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EthernetType = EthernetType(binary.BigEndian.Uint16(data[12:14]))
	e.contents = data[:EthernetHeaderLen]
	e.payload = data[EthernetHeaderLen:]
	return nil
}

// NextLayerType returns the type of the layer carried in the payload.
func (e *Ethernet) NextLayerType() LayerType {
	return ethTypeToLayer(e.EthernetType)
}

func ethTypeToLayer(t EthernetType) LayerType {
	switch t {
	case EthernetTypeIPv4:
		return LayerTypeIPv4
	case EthernetTypeARP:
		return LayerTypeARP
	case EthernetTypeVLAN:
		return LayerTypeVLAN
	default:
		return LayerTypePayload
	}
}

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	bytes, err := b.PrependBytes(EthernetHeaderLen)
	if err != nil {
		return err
	}
	copy(bytes[0:6], e.DstMAC[:])
	copy(bytes[6:12], e.SrcMAC[:])
	binary.BigEndian.PutUint16(bytes[12:14], uint16(e.EthernetType))
	return nil
}

// VLANHeaderLen is the length of an 802.1Q tag.
const VLANHeaderLen = 4

// VLAN is an IEEE 802.1Q tag.
type VLAN struct {
	Priority     uint8 // PCP, 3 bits
	DropEligible bool  // DEI
	VLANID       uint16
	EthernetType EthernetType // type of the encapsulated payload

	contents, payload []byte
}

// LayerType implements Layer.
func (v *VLAN) LayerType() LayerType { return LayerTypeVLAN }

// LayerContents implements Layer.
func (v *VLAN) LayerContents() []byte { return v.contents }

// LayerPayload implements Layer.
func (v *VLAN) LayerPayload() []byte { return v.payload }

// DecodeFromBytes parses an 802.1Q tag in place.
func (v *VLAN) DecodeFromBytes(data []byte) error {
	if len(data) < VLANHeaderLen {
		return fmt.Errorf("pkt: vlan tag too short: %d bytes", len(data))
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	v.Priority = uint8(tci >> 13)
	v.DropEligible = tci&0x1000 != 0
	v.VLANID = tci & 0x0fff
	v.EthernetType = EthernetType(binary.BigEndian.Uint16(data[2:4]))
	v.contents = data[:VLANHeaderLen]
	v.payload = data[VLANHeaderLen:]
	return nil
}

// NextLayerType returns the type of the layer carried in the payload.
func (v *VLAN) NextLayerType() LayerType { return ethTypeToLayer(v.EthernetType) }

// SerializeTo implements SerializableLayer.
func (v *VLAN) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	if v.VLANID > 0x0fff {
		return fmt.Errorf("pkt: vlan id %d out of range", v.VLANID)
	}
	bytes, err := b.PrependBytes(VLANHeaderLen)
	if err != nil {
		return err
	}
	tci := uint16(v.Priority)<<13 | v.VLANID
	if v.DropEligible {
		tci |= 0x1000
	}
	binary.BigEndian.PutUint16(bytes[0:2], tci)
	binary.BigEndian.PutUint16(bytes[2:4], uint16(v.EthernetType))
	return nil
}
