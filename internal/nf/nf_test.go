package nf

import (
	"testing"

	"repro/internal/execenv"
	"repro/internal/netdev"
	"repro/internal/pkt"
)

func udpFrame(t *testing.T, src, dst pkt.Addr, sport, dport uint16, vlan uint16) []byte {
	t.Helper()
	return pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: macA, DstMAC: macB, VLANID: vlan,
		SrcIP: src, DstIP: dst, SrcPort: sport, DstPort: dport, PayloadLen: 32,
	})
}

// --- Firewall ---

func TestFirewallDefaultAccept(t *testing.T) {
	fw := NewFirewall()
	res, err := fw.Process(0, udpFrame(t, ipA, ipB, 1, 80, 0))
	if err != nil || len(res.Emissions) != 1 || res.Emissions[0].Port != 1 {
		t.Fatalf("res = %+v, %v", res, err)
	}
	// And the reverse direction flows 1 -> 0.
	res, _ = fw.Process(1, udpFrame(t, ipB, ipA, 80, 1, 0))
	if len(res.Emissions) != 1 || res.Emissions[0].Port != 0 {
		t.Fatalf("reverse res = %+v", res)
	}
}

func TestFirewallRuleOrderFirstMatchWins(t *testing.T) {
	fw := NewFirewall()
	if err := fw.Configure(map[string]string{
		"rules": "drop proto=udp dport=53; accept proto=udp",
	}); err != nil {
		t.Fatal(err)
	}
	if res, _ := fw.Process(0, udpFrame(t, ipA, ipB, 1, 53, 0)); len(res.Emissions) != 0 {
		t.Error("DNS not dropped")
	}
	if res, _ := fw.Process(0, udpFrame(t, ipA, ipB, 1, 80, 0)); len(res.Emissions) != 1 {
		t.Error("non-DNS UDP dropped")
	}
	hits, drops := fw.PathStats(0)
	if hits != 2 || drops != 1 {
		t.Errorf("stats = %d/%d", hits, drops)
	}
}

func TestFirewallDefaultDrop(t *testing.T) {
	fw := NewFirewall()
	_ = fw.Configure(map[string]string{"default": "drop", "rules": "accept dst=10.0.0.0/24"})
	if res, _ := fw.Process(0, udpFrame(t, ipA, pkt.Addr{10, 0, 0, 9}, 1, 1, 0)); len(res.Emissions) != 1 {
		t.Error("allowed subnet dropped")
	}
	if res, _ := fw.Process(0, udpFrame(t, ipA, pkt.Addr{10, 9, 0, 9}, 1, 1, 0)); len(res.Emissions) != 0 {
		t.Error("default drop not applied")
	}
}

func TestFirewallMarkedPathsIsolated(t *testing.T) {
	// The sharable-NNF scenario: graph A (mark 10) drops UDP 53, graph B
	// (mark 20) accepts everything. The same packet gets different
	// verdicts depending on its mark, and untagged traffic uses the
	// default path.
	fw := NewFirewall()
	fw.SetPath(10, []FWRule{{Proto: pkt.IPProtocolUDP, DstPort: 53, Verdict: VerdictDrop}}, VerdictAccept)
	fw.SetPath(20, nil, VerdictAccept)

	if res, _ := fw.Process(0, udpFrame(t, ipA, ipB, 1, 53, 10)); len(res.Emissions) != 0 {
		t.Error("graph A mark 10: DNS not dropped")
	}
	if res, _ := fw.Process(0, udpFrame(t, ipA, ipB, 1, 53, 20)); len(res.Emissions) != 1 {
		t.Error("graph B mark 20: DNS dropped")
	}
	if res, _ := fw.Process(0, udpFrame(t, ipA, ipB, 1, 53, 0)); len(res.Emissions) != 1 {
		t.Error("untagged: default path broken")
	}
	hitsA, dropsA := fw.PathStats(10)
	hitsB, dropsB := fw.PathStats(20)
	if hitsA != 1 || dropsA != 1 || hitsB != 1 || dropsB != 0 {
		t.Errorf("path stats = A %d/%d, B %d/%d", hitsA, dropsA, hitsB, dropsB)
	}
	if fw.NumPaths() != 2 {
		t.Errorf("NumPaths = %d", fw.NumPaths())
	}
	fw.RemovePath(20)
	if fw.NumPaths() != 1 {
		t.Error("RemovePath failed")
	}
}

func TestFirewallMarkPreservedOnForward(t *testing.T) {
	fw := NewFirewall()
	fw.SetPath(33, nil, VerdictAccept)
	in := udpFrame(t, ipA, ipB, 5, 6, 33)
	res, _ := fw.Process(0, in)
	if len(res.Emissions) != 1 {
		t.Fatal("dropped")
	}
	p := pkt.NewPacket(res.Emissions[0].Frame, pkt.LayerTypeEthernet, pkt.Default)
	v, ok := p.Layer(pkt.LayerTypeVLAN).(*pkt.VLAN)
	if !ok || v.VLANID != 33 {
		t.Error("mark lost through shared firewall")
	}
}

func TestFirewallNonIPPasses(t *testing.T) {
	fw := NewFirewall()
	_ = fw.Configure(map[string]string{"default": "drop"})
	arp := &pkt.ARP{Operation: pkt.ARPRequest, SenderMAC: macA, SenderIP: ipA, TargetIP: ipB}
	frame, _ := pkt.Serialize(pkt.SerializeOptions{},
		&pkt.Ethernet{SrcMAC: macA, DstMAC: macB, EthernetType: pkt.EthernetTypeARP}, arp)
	if res, _ := fw.Process(0, frame); len(res.Emissions) != 1 {
		t.Error("ARP must bypass an IP firewall")
	}
}

func TestParseFWRuleErrors(t *testing.T) {
	for _, bad := range []string{
		"", "pass", "accept port=5", "drop proto=xyz", "accept dport=99999", "drop dst",
	} {
		if _, err := ParseFWRule(bad); err == nil {
			t.Errorf("ParseFWRule(%q) accepted", bad)
		}
	}
	r, err := ParseFWRule("drop proto=tcp src=192.168.0.0/16 dst=10.0.0.0/8 sport=1024 dport=443")
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != VerdictDrop || r.Proto != pkt.IPProtocolTCP || r.SrcPort != 1024 || r.DstPort != 443 {
		t.Errorf("rule = %+v", r)
	}
	if _, err := NewFirewallFromConfig(map[string]string{"default": "reject"}); err == nil {
		t.Error("bad default policy accepted")
	}
	if _, err := NewFirewallFromConfig(map[string]string{"rules": "garbage"}); err == nil {
		t.Error("bad rules accepted")
	}
}

// --- NAT ---

func TestNATOutboundInboundRoundTrip(t *testing.T) {
	ext := pkt.Addr{198, 51, 100, 1}
	n := NewNAT(ext)
	out, err := n.Process(NATPortInside, udpFrame(t, ipA, ipB, 3333, 80, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Emissions) != 1 || out.Emissions[0].Port != NATPortOutside {
		t.Fatalf("outbound = %+v", out)
	}
	p := pkt.NewPacket(out.Emissions[0].Frame, pkt.LayerTypeEthernet, pkt.Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("rewritten frame broken: %v", p.ErrorLayer().Error())
	}
	ip := p.Layer(pkt.LayerTypeIPv4).(*pkt.IPv4)
	udp := p.Layer(pkt.LayerTypeUDP).(*pkt.UDP)
	if ip.SrcIP != ext {
		t.Errorf("src not translated: %v", ip.SrcIP)
	}
	extPort := udp.SrcPort
	if extPort < natPortBase {
		t.Errorf("external port = %d", extPort)
	}
	if n.Bindings() != 1 {
		t.Errorf("bindings = %d", n.Bindings())
	}

	// Return traffic.
	back, err := n.Process(NATPortOutside, udpFrame(t, ipB, ext, 80, extPort, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Emissions) != 1 || back.Emissions[0].Port != NATPortInside {
		t.Fatalf("inbound = %+v", back)
	}
	q := pkt.NewPacket(back.Emissions[0].Frame, pkt.LayerTypeEthernet, pkt.Default)
	qip := q.Layer(pkt.LayerTypeIPv4).(*pkt.IPv4)
	qudp := q.Layer(pkt.LayerTypeUDP).(*pkt.UDP)
	if qip.DstIP != ipA || qudp.DstPort != 3333 {
		t.Errorf("reverse translation broken: %v:%d", qip.DstIP, qudp.DstPort)
	}
}

func TestNATStableBindingAndUnknownDrop(t *testing.T) {
	n := NewNAT(pkt.Addr{198, 51, 100, 1})
	// Same connection twice: the binding is stable.
	r1, _ := n.Process(NATPortInside, udpFrame(t, ipA, ipB, 1000, 80, 0))
	r2, _ := n.Process(NATPortInside, udpFrame(t, ipA, ipB, 1000, 80, 0))
	p1 := pkt.NewPacket(r1.Emissions[0].Frame, pkt.LayerTypeEthernet, pkt.Default).Layer(pkt.LayerTypeUDP).(*pkt.UDP)
	p2 := pkt.NewPacket(r2.Emissions[0].Frame, pkt.LayerTypeEthernet, pkt.Default).Layer(pkt.LayerTypeUDP).(*pkt.UDP)
	if p1.SrcPort != p2.SrcPort {
		t.Error("same connection got different bindings")
	}
	if n.Bindings() != 1 {
		t.Errorf("bindings = %d, want 1", n.Bindings())
	}
	// Symmetric NAT: a different remote service is a distinct connection
	// with its own mapping.
	n.Process(NATPortInside, udpFrame(t, ipA, ipB, 1000, 443, 0))
	if n.Bindings() != 2 {
		t.Errorf("bindings after second connection = %d, want 2", n.Bindings())
	}
	// Unsolicited inbound to an unbound port: dropped.
	res, _ := n.Process(NATPortOutside, udpFrame(t, ipB, pkt.Addr{198, 51, 100, 1}, 80, 9999, 0))
	if len(res.Emissions) != 0 {
		t.Error("unsolicited inbound accepted")
	}
	// Inbound not addressed to the external IP: dropped.
	res, _ = n.Process(NATPortOutside, udpFrame(t, ipB, ipA, 80, 20000, 0))
	if len(res.Emissions) != 0 {
		t.Error("misaddressed inbound accepted")
	}
}

func TestNATTCP(t *testing.T) {
	n := NewNAT(pkt.Addr{198, 51, 100, 1})
	frame := pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		Proto: pkt.IPProtocolTCP, SrcPort: 5555, DstPort: 443, PayloadLen: 10,
	})
	res, err := n.Process(NATPortInside, frame)
	if err != nil || len(res.Emissions) != 1 {
		t.Fatalf("tcp outbound = %+v, %v", res, err)
	}
	p := pkt.NewPacket(res.Emissions[0].Frame, pkt.LayerTypeEthernet, pkt.Default)
	if p.ErrorLayer() != nil {
		t.Fatal("rewritten TCP frame invalid")
	}
	tcp := p.Layer(pkt.LayerTypeTCP).(*pkt.TCP)
	if tcp.SrcPort < natPortBase {
		t.Error("TCP not translated")
	}
}

func TestNATFromConfig(t *testing.T) {
	if _, err := NewNATFromConfig(map[string]string{}); err == nil {
		t.Error("missing external_ip accepted")
	}
	if _, err := NewNATFromConfig(map[string]string{"external_ip": "zebra"}); err == nil {
		t.Error("bad external_ip accepted")
	}
	if _, err := NewNATFromConfig(map[string]string{"external_ip": "198.51.100.1"}); err != nil {
		t.Error(err)
	}
}

// --- Bridge ---

func TestBridgeLearningAndForwarding(t *testing.T) {
	b, err := NewBridge(3)
	if err != nil {
		t.Fatal(err)
	}
	macC := pkt.MAC{2, 0, 0, 0, 0, 0xc}
	// Unknown destination: flood.
	res, _ := b.Process(0, udpFrame(t, ipA, ipB, 1, 2, 0))
	if len(res.Emissions) != 2 {
		t.Fatalf("flood emissions = %+v", res.Emissions)
	}
	// macA now learned on port 0. Traffic to macA from port 2 is unicast.
	back := pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: macC, DstMAC: macA, SrcIP: ipB, DstIP: ipA, SrcPort: 2, DstPort: 1, PayloadLen: 8,
	})
	res, _ = b.Process(2, back)
	if len(res.Emissions) != 1 || res.Emissions[0].Port != 0 {
		t.Fatalf("learned forward = %+v", res.Emissions)
	}
	if port, ok := b.Lookup(macC); !ok || port != 2 {
		t.Error("macC not learned")
	}
	if b.FDBSize() != 2 {
		t.Errorf("fdb size = %d", b.FDBSize())
	}
	// Destination on the same port: filtered.
	sameSeg := pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: macB, DstMAC: macA, SrcIP: ipB, DstIP: ipA, SrcPort: 1, DstPort: 1, PayloadLen: 8,
	})
	res, _ = b.Process(0, sameSeg)
	if len(res.Emissions) != 0 {
		t.Error("same-segment frame forwarded")
	}
}

func TestBridgeBroadcastFloods(t *testing.T) {
	b, _ := NewBridge(4)
	bcast := pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: macA, DstMAC: pkt.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2, PayloadLen: 8,
	})
	res, _ := b.Process(1, bcast)
	if len(res.Emissions) != 3 {
		t.Errorf("broadcast reached %d ports, want 3", len(res.Emissions))
	}
	if _, err := b.Process(9, bcast); err == nil {
		t.Error("bad port accepted")
	}
}

func TestBridgeConfig(t *testing.T) {
	if _, err := NewBridge(1); err == nil {
		t.Error("1-port bridge accepted")
	}
	if _, err := NewBridgeFromConfig(map[string]string{"ports": "x"}); err == nil {
		t.Error("bad ports accepted")
	}
	p, err := NewBridgeFromConfig(map[string]string{"ports": "5"})
	if err != nil {
		t.Fatal(err)
	}
	if p.(*Bridge).nPorts != 5 {
		t.Error("ports config ignored")
	}
}

// --- Router ---

func TestRouterForwardAndTTL(t *testing.T) {
	r := NewRouter()
	nhMAC := pkt.MAC{2, 2, 2, 2, 2, 2}
	srcMAC := pkt.MAC{4, 4, 4, 4, 4, 4}
	if err := r.AddRoute(Route{Prefix: "10.0.0.0/8", Port: 1, NextHop: nhMAC, SrcMAC: srcMAC}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddRoute(Route{Prefix: "10.0.0.0/24", Port: 2, NextHop: nhMAC, SrcMAC: srcMAC}); err != nil {
		t.Fatal(err)
	}
	// Longest prefix wins: 10.0.0.x -> port 2; 10.9.x -> port 1.
	res, _ := r.Process(0, udpFrame(t, ipB, pkt.Addr{10, 0, 0, 7}, 1, 2, 0))
	if len(res.Emissions) != 1 || res.Emissions[0].Port != 2 {
		t.Fatalf("lpm = %+v", res.Emissions)
	}
	res, _ = r.Process(0, udpFrame(t, ipB, pkt.Addr{10, 9, 0, 7}, 1, 2, 0))
	if len(res.Emissions) != 1 || res.Emissions[0].Port != 1 {
		t.Fatalf("fallback = %+v", res.Emissions)
	}
	// TTL decremented, checksum still valid, MACs rewritten.
	p := pkt.NewPacket(res.Emissions[0].Frame, pkt.LayerTypeEthernet, pkt.Default)
	ip := p.Layer(pkt.LayerTypeIPv4).(*pkt.IPv4)
	if ip.TTL != 63 {
		t.Errorf("ttl = %d, want 63", ip.TTL)
	}
	hdr := res.Emissions[0].Frame[pkt.EthernetHeaderLen : pkt.EthernetHeaderLen+pkt.IPv4HeaderLen]
	if pkt.Checksum(hdr) != 0 {
		t.Error("checksum invalid after TTL decrement")
	}
	eth := p.Layer(pkt.LayerTypeEthernet).(*pkt.Ethernet)
	if eth.DstMAC != nhMAC || eth.SrcMAC != srcMAC {
		t.Error("L2 rewrite missing")
	}
}

func TestRouterDropsNoRouteAndTTLExpiry(t *testing.T) {
	r := NewRouter()
	_ = r.AddRoute(Route{Prefix: "10.0.0.0/8", Port: 1})
	res, _ := r.Process(0, udpFrame(t, ipB, pkt.Addr{172, 16, 0, 1}, 1, 2, 0))
	if len(res.Emissions) != 0 {
		t.Error("no-route packet forwarded")
	}
	expired := pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipB, DstIP: pkt.Addr{10, 0, 0, 1},
		SrcPort: 1, DstPort: 2, TTL: 1, PayloadLen: 4,
	})
	res, _ = r.Process(0, expired)
	if len(res.Emissions) != 0 {
		t.Error("TTL-expired packet forwarded")
	}
}

func TestRouterFromConfig(t *testing.T) {
	p, err := NewRouterFromConfig(map[string]string{
		"routes": "10.0.0.0/8,1,02:02:02:02:02:02,04:04:04:04:04:04; 0.0.0.0/0,2,02:02:02:02:02:02,04:04:04:04:04:04",
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.(*Router).NumRoutes() != 2 {
		t.Error("routes not parsed")
	}
	for _, bad := range []string{"x", "10.0.0.0/8,z,02:02:02:02:02:02,04:04:04:04:04:04", "10.0.0.0/99,1,02:02:02:02:02:02,04:04:04:04:04:04"} {
		if _, err := NewRouterFromConfig(map[string]string{"routes": bad}); err == nil {
			t.Errorf("bad route %q accepted", bad)
		}
	}
}

// --- Monitor ---

func TestMonitorCountsFlows(t *testing.T) {
	m := NewMonitor()
	for i := 0; i < 3; i++ {
		res, _ := m.Process(0, udpFrame(t, ipA, ipB, 1, 2, 0))
		if len(res.Emissions) != 1 || res.Emissions[0].Port != 1 {
			t.Fatal("monitor not transparent")
		}
	}
	_, _ = m.Process(1, udpFrame(t, ipB, ipA, 2, 1, 0))
	flows := m.Flows()
	if len(flows) != 2 {
		t.Fatalf("flows = %+v", flows)
	}
	if flows[0].Packets != 3 {
		t.Errorf("top flow packets = %d", flows[0].Packets)
	}
	arp := &pkt.ARP{Operation: pkt.ARPRequest}
	frame, _ := pkt.Serialize(pkt.SerializeOptions{},
		&pkt.Ethernet{EthernetType: pkt.EthernetTypeARP}, arp)
	_, _ = m.Process(0, frame)
	if m.NonIPPackets() != 1 {
		t.Error("non-IP not counted")
	}
}

// --- Runtime & Registry ---

func TestRuntimeProcessesThroughPorts(t *testing.T) {
	env, err := execenv.New("fw", execenv.FlavorNative, execenv.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime("fw", NewFirewall(), env, 2)
	rt.Start()
	defer rt.Stop()

	in := netdev.NewPort("in")
	out := netdev.NewPort("out")
	if err := netdev.Connect(in, rt.Port(0)); err != nil {
		t.Fatal(err)
	}
	if err := netdev.Connect(out, rt.Port(1)); err != nil {
		t.Fatal(err)
	}

	if err := in.Send(netdev.Frame{Data: udpFrame(t, ipA, ipB, 1, 2, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := out.TryRecv(); !ok {
		t.Fatal("frame did not traverse the runtime")
	}
	st := rt.Stats()
	if st.RxPackets != 1 || st.TxPackets != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
	if env.Clock().Now() <= 0 {
		t.Error("no cost charged to the clock")
	}
	if p, _ := env.Counters(); p != 1 {
		t.Error("env did not count the packet")
	}
}

func TestRuntimeStopsCleanly(t *testing.T) {
	env, _ := execenv.New("fw", execenv.FlavorNative, execenv.Default(), nil)
	rt := NewRuntime("fw", NewFirewall(), env, 2)
	rt.Start()
	if !rt.Running() {
		t.Error("not running")
	}
	rt.Stop()
	if rt.Running() {
		t.Error("still running")
	}
	// Frames after stop are not processed.
	in := netdev.NewPort("in")
	if err := netdev.Connect(in, rt.Port(0)); err != nil {
		t.Fatal(err)
	}
	_ = in.Send(netdev.Frame{Data: udpFrame(t, ipA, ipB, 1, 2, 0)})
	if rt.Stats().RxPackets != 0 {
		t.Error("processed while stopped")
	}
	if rt.Port(99) != nil || rt.Port(-1) != nil {
		t.Error("out-of-range port returned")
	}
}

func TestRuntimeCountsProcessorErrors(t *testing.T) {
	env, _ := execenv.New("b", execenv.FlavorNative, execenv.Default(), nil)
	b, _ := NewBridge(2)
	rt := NewRuntime("b", b, env, 2)
	rt.Start()
	defer rt.Stop()
	in := netdev.NewPort("in")
	if err := netdev.Connect(in, rt.Port(0)); err != nil {
		t.Fatal(err)
	}
	_ = in.Send(netdev.Frame{Data: []byte{1, 2, 3}}) // too short for Ethernet
	if rt.Stats().Errors != 1 {
		t.Errorf("errors = %d", rt.Stats().Errors)
	}
}

func TestDefaultRegistry(t *testing.T) {
	r := DefaultRegistry()
	names := r.Names()
	want := []string{"bridge", "firewall", "ipsec", "monitor", "nat", "router", "shaper"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	if _, err := r.Build("firewall", nil); err != nil {
		t.Error(err)
	}
	if _, err := r.Build("ghost", nil); err == nil {
		t.Error("unknown template built")
	}
	if err := r.Register("firewall", NewFirewallFromConfig); err == nil {
		t.Error("duplicate registration allowed")
	}
}
