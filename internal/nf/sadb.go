package nf

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/pkt"
)

// replayWindowSize is the anti-replay sliding window width (RFC 4303 §3.4.3
// requires at least 32; 64 is the common choice).
const replayWindowSize = 64

// replayWindow implements the RFC 4303 anti-replay check over 32-bit
// sequence numbers.
type replayWindow struct {
	highest uint32
	bitmap  uint64
}

// check reports whether seq is acceptable (new and inside the window) and
// records it if so.
func (w *replayWindow) check(seq uint32) bool {
	switch {
	case seq == 0:
		return false // seq 0 is never valid on the wire
	case w.highest == 0 || seq > w.highest:
		shift := uint64(seq - w.highest)
		if w.highest == 0 {
			shift = 0
		}
		if shift >= replayWindowSize {
			w.bitmap = 0
		} else {
			w.bitmap <<= shift
		}
		w.bitmap |= 1
		w.highest = seq
		return true
	case w.highest-seq >= replayWindowSize:
		return false // too old
	default:
		bit := uint64(1) << (w.highest - seq)
		if w.bitmap&bit != 0 {
			return false // replayed
		}
		w.bitmap |= bit
		return true
	}
}

// SA is one IPsec security association: an SPI, a direction-agnostic
// AES-GCM key (RFC 4106: 16-byte AES key + 4-byte salt), tunnel endpoints
// and per-direction state.
type SA struct {
	SPI    uint32
	Local  pkt.Addr // outer source when encapsulating
	Remote pkt.Addr // outer destination when encapsulating

	aead cipher.AEAD
	salt [4]byte
	// keyMaterial is retained so the SA can be exported to a sibling
	// replica during scale-out state migration.
	keyMaterial []byte

	mu     sync.Mutex
	seq    uint32 // last sequence number sent
	replay replayWindow
}

// keyLen is AES-128 key plus RFC 4106 salt.
const keyLen = 16 + 4

// NewSA builds a security association. keyMaterial must be 20 bytes: a
// 16-byte AES-128 key followed by the 4-byte GCM salt.
func NewSA(spi uint32, local, remote pkt.Addr, keyMaterial []byte) (*SA, error) {
	if len(keyMaterial) != keyLen {
		return nil, fmt.Errorf("nf: SA key material must be %d bytes, got %d", keyLen, len(keyMaterial))
	}
	if spi == 0 {
		return nil, fmt.Errorf("nf: SPI 0 is reserved")
	}
	block, err := aes.NewCipher(keyMaterial[:16])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	sa := &SA{SPI: spi, Local: local, Remote: remote, aead: aead}
	copy(sa.salt[:], keyMaterial[16:])
	sa.keyMaterial = append([]byte(nil), keyMaterial...)
	return sa, nil
}

// KeyMaterial returns the SA's raw key material (for state export).
func (sa *SA) KeyMaterial() []byte { return sa.keyMaterial }

// exportState snapshots the mutable per-direction state.
func (sa *SA) exportState() (seq, replayHighest uint32, replayBitmap uint64) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.seq, sa.replay.highest, sa.replay.bitmap
}

// restoreState installs state exported from a sibling replica's SA. The
// counters only move forward: a catch-up import never rewinds the send
// sequence (which would reuse GCM nonces) or the anti-replay window.
func (sa *SA) restoreState(seq, replayHighest uint32, replayBitmap uint64) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if seq > sa.seq {
		sa.seq = seq
	}
	if replayHighest > sa.replay.highest {
		sa.replay.highest = replayHighest
		sa.replay.bitmap = replayBitmap
	} else if replayHighest == sa.replay.highest {
		sa.replay.bitmap |= replayBitmap
	}
}

// ParseSAKey decodes hex key material ("0011..ff", 40 hex chars).
func ParseSAKey(s string) ([]byte, error) {
	key, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("nf: bad SA key hex: %w", err)
	}
	if len(key) != keyLen {
		return nil, fmt.Errorf("nf: SA key must be %d bytes, got %d", keyLen, len(key))
	}
	return key, nil
}

// nextSeq allocates the next outbound sequence number.
func (sa *SA) nextSeq() uint32 {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	sa.seq++
	return sa.seq
}

// acceptSeq runs the anti-replay check for an inbound sequence number.
func (sa *SA) acceptSeq(seq uint32) bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.replay.check(seq)
}

// espOverhead is the per-packet byte overhead of our ESP encapsulation:
// outer IPv4 (20) + SPI/seq (8) + explicit IV (8) + GCM tag (16), plus up to
// 4 bytes of trailer alignment + 2 trailer bytes.
const espOverhead = pkt.IPv4HeaderLen + pkt.ESPHeaderLen + 8 + 16 + 6

// Encapsulate performs RFC 4303 tunnel-mode ESP encapsulation of an inner
// IPv4 packet, returning the outer IPv4 packet (starting at the outer IPv4
// header). Layout: outer IPv4 | SPI | seq | IV(8) | ciphertext+tag, where
// the plaintext is inner-IP || padding || padLen || nextHeader(4 = IPIP).
func (sa *SA) Encapsulate(innerIP []byte) ([]byte, error) {
	seq := sa.nextSeq()

	// Trailer: pad the (inner + 2 trailer bytes) to a 4-byte boundary.
	padLen := (4 - (len(innerIP)+2)%4) % 4
	plain := make([]byte, len(innerIP)+padLen+2)
	copy(plain, innerIP)
	for i := 0; i < padLen; i++ {
		plain[len(innerIP)+i] = byte(i + 1) // RFC 4303 monotonic pad
	}
	plain[len(plain)-2] = byte(padLen)
	plain[len(plain)-1] = 4 // next header: IP-in-IP

	// RFC 4106 nonce: salt || explicit IV. We use the extended sequence
	// as IV which is unique per SA.
	var iv [8]byte
	binary.BigEndian.PutUint64(iv[:], uint64(seq))
	var nonce [12]byte
	copy(nonce[:4], sa.salt[:])
	copy(nonce[4:], iv[:])

	// AAD: SPI || sequence number.
	var aad [8]byte
	binary.BigEndian.PutUint32(aad[:4], sa.SPI)
	binary.BigEndian.PutUint32(aad[4:], seq)

	ct := sa.aead.Seal(nil, nonce[:], plain, aad[:])

	espPayload := make([]byte, 8+len(ct))
	copy(espPayload[:8], iv[:])
	copy(espPayload[8:], ct)

	outer := &pkt.IPv4{
		TTL:      64,
		Protocol: pkt.IPProtocolESP,
		SrcIP:    sa.Local,
		DstIP:    sa.Remote,
	}
	esp := &pkt.ESP{SPI: sa.SPI, Seq: seq}
	return pkt.Serialize(
		pkt.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		outer, esp, pkt.Payload(espPayload),
	)
}

// Decapsulate reverses Encapsulate: it takes an outer IPv4 packet carrying
// ESP, authenticates and decrypts it, runs the anti-replay check, and
// returns the inner IPv4 packet.
func (sa *SA) Decapsulate(outerIP []byte) ([]byte, error) {
	var ip pkt.IPv4
	if err := ip.DecodeFromBytes(outerIP); err != nil {
		return nil, fmt.Errorf("nf: esp outer: %w", err)
	}
	if ip.Protocol != pkt.IPProtocolESP {
		return nil, fmt.Errorf("nf: not an ESP packet (proto %v)", ip.Protocol)
	}
	var esp pkt.ESP
	if err := esp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		return nil, err
	}
	if esp.SPI != sa.SPI {
		return nil, fmt.Errorf("nf: SPI mismatch: packet %#x, SA %#x", esp.SPI, sa.SPI)
	}
	body := esp.LayerPayload()
	if len(body) < 8+sa.aead.Overhead() {
		return nil, fmt.Errorf("nf: esp payload too short: %d", len(body))
	}
	var nonce [12]byte
	copy(nonce[:4], sa.salt[:])
	copy(nonce[4:], body[:8])
	var aad [8]byte
	binary.BigEndian.PutUint32(aad[:4], esp.SPI)
	binary.BigEndian.PutUint32(aad[4:], esp.Seq)
	plain, err := sa.aead.Open(nil, nonce[:], body[8:], aad[:])
	if err != nil {
		return nil, fmt.Errorf("nf: esp authentication failed: %w", err)
	}
	// Authentication passed; now the sequence number is trustworthy.
	if !sa.acceptSeq(esp.Seq) {
		return nil, fmt.Errorf("nf: esp replay detected (seq %d)", esp.Seq)
	}
	if len(plain) < 2 {
		return nil, fmt.Errorf("nf: esp plaintext too short")
	}
	padLen := int(plain[len(plain)-2])
	next := plain[len(plain)-1]
	if next != 4 {
		return nil, fmt.Errorf("nf: esp next header %d, want 4 (IPIP)", next)
	}
	if padLen+2 > len(plain) {
		return nil, fmt.Errorf("nf: esp pad length %d exceeds plaintext", padLen)
	}
	return plain[:len(plain)-2-padLen], nil
}

// SADB is the security association database of one IPsec gateway.
type SADB struct {
	mu    sync.RWMutex
	bySPI map[uint32]*SA
	// byPeer indexes the outbound SA per remote tunnel endpoint.
	byPeer map[pkt.Addr]*SA
}

// NewSADB returns an empty database.
func NewSADB() *SADB {
	return &SADB{bySPI: make(map[uint32]*SA), byPeer: make(map[pkt.Addr]*SA)}
}

// Add installs an SA.
func (db *SADB) Add(sa *SA) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.bySPI[sa.SPI]; dup {
		return fmt.Errorf("nf: SPI %#x already installed", sa.SPI)
	}
	db.bySPI[sa.SPI] = sa
	db.byPeer[sa.Remote] = sa
	return nil
}

// BySPI finds the SA for an inbound SPI.
func (db *SADB) BySPI(spi uint32) (*SA, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sa, ok := db.bySPI[spi]
	return sa, ok
}

// ByPeer finds the outbound SA toward a remote endpoint.
func (db *SADB) ByPeer(remote pkt.Addr) (*SA, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sa, ok := db.byPeer[remote]
	return sa, ok
}

// Put installs an SA, replacing any existing one with the same SPI (the
// idempotent form Add used by state import).
func (db *SADB) Put(sa *SA) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.bySPI[sa.SPI] = sa
	db.byPeer[sa.Remote] = sa
}

// Remove deletes an SA by SPI, dropping the peer index entry when it still
// points at the removed SA (a replacement SA toward the same peer keeps its
// own entry).
func (db *SADB) Remove(spi uint32) {
	db.mu.Lock()
	defer db.mu.Unlock()
	sa, ok := db.bySPI[spi]
	if !ok {
		return
	}
	delete(db.bySPI, spi)
	if cur, ok := db.byPeer[sa.Remote]; ok && cur == sa {
		delete(db.byPeer, sa.Remote)
	}
}

// All returns a snapshot of every installed SA.
func (db *SADB) All() []*SA {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*SA, 0, len(db.bySPI))
	for _, sa := range db.bySPI {
		out = append(out, sa)
	}
	return out
}

// Len returns the number of installed SAs.
func (db *SADB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.bySPI)
}
