package nf

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/pkt"
)

// FlowCount is one monitored flow's counters.
type FlowCount struct {
	Flow    pkt.Flow
	Packets uint64
	Bytes   uint64
}

// Monitor is a transparent per-flow accounting NF (a minimal DPI/telemetry
// function). Frames pass between ports 0 and 1 unchanged while the monitor
// counts packets and bytes per network flow.
type Monitor struct {
	mu    sync.Mutex
	flows map[pkt.Flow]*FlowCount
	other uint64 // non-IP frames
}

// NewMonitor builds an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{flows: make(map[pkt.Flow]*FlowCount)}
}

// NewMonitorFromConfig builds a monitor; it takes no configuration.
func NewMonitorFromConfig(map[string]string) (Processor, error) {
	return NewMonitor(), nil
}

// Process implements Processor.
func (m *Monitor) Process(inPort int, frame []byte) (Result, error) {
	if inPort != 0 && inPort != 1 {
		return Result{}, fmt.Errorf("nf: monitor has no port %d", inPort)
	}
	p := pkt.NewPacket(frame, pkt.LayerTypeEthernet, pkt.NoCopy)
	if nl := p.NetworkLayer(); nl != nil {
		fl := nl.NetworkFlow()
		m.mu.Lock()
		fc, ok := m.flows[fl]
		if !ok {
			fc = &FlowCount{Flow: fl}
			m.flows[fl] = fc
		}
		fc.Packets++
		fc.Bytes += uint64(len(frame))
		m.mu.Unlock()
	} else {
		m.mu.Lock()
		m.other++
		m.mu.Unlock()
	}
	return Result{Emissions: []Emission{{Port: 1 - inPort, Frame: frame}}}, nil
}

// Flows returns a snapshot of all flow counters, ordered by descending
// packet count.
func (m *Monitor) Flows() []FlowCount {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]FlowCount, 0, len(m.flows))
	for _, fc := range m.flows {
		out = append(out, *fc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Flow.String() < out[j].Flow.String()
	})
	return out
}

// NonIPPackets returns the count of frames without a network layer.
func (m *Monitor) NonIPPackets() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.other
}
