package nf

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/pkt"
)

// NAT port conventions.
const (
	NATPortInside  = 0
	NATPortOutside = 1
)

// natConn identifies one inside-originated connection by its full
// 5-tuple. Keying translations per connection (symmetric NAT, RFC 4787
// address-and-port-dependent mapping) rather than per inside endpoint is
// what makes the NAT shardable: a binding then belongs to exactly one
// steering bucket, so it can move between replicas with its flow.
type natConn struct {
	proto   pkt.IPProtocol
	srcIP   pkt.Addr
	srcPort uint16
	dstIP   pkt.Addr
	dstPort uint16
}

// tuple returns the steering 5-tuple of the connection's inside-to-outside
// direction — the identity a binding exports under.
func (c natConn) tuple() FlowTuple {
	return FlowTuple{Proto: c.proto, Src: c.srcIP, Dst: c.dstIP, SrcPort: c.srcPort, DstPort: c.dstPort}
}

// natRev identifies a translation from the return direction: remote
// endpoint plus allocated external port. Return packets are only accepted
// from the remote the binding was created toward (symmetric NAT), which is
// also what makes concurrent replicas allocation-safe — see allocPort.
type natRev struct {
	proto      pkt.IPProtocol
	remoteIP   pkt.Addr
	remotePort uint16
	extPort    uint16
}

// natOrigin is the inside endpoint a return packet is rewritten back to.
type natOrigin struct {
	ip   pkt.Addr
	port uint16
}

// NAT is a source NAT (masquerade), one of the "(large) number of common
// network functions" a Linux CPE ships natively. Traffic from the inside
// port is rewritten to the external address with an allocated port; return
// traffic on the outside port is translated back.
//
// NAT implements StatefulNF: its bindings export keyed by the outbound
// 5-tuple so the orchestrator can re-home a bucket's flows to another
// replica without dropping established connections.
type NAT struct {
	external pkt.Addr

	mu       sync.Mutex
	nextPort uint16
	forward  map[natConn]uint16   // outbound 5-tuple -> external port
	reverse  map[natRev]natOrigin // return direction -> inside endpoint
}

// natPortBase is the first external port allocated.
const natPortBase = 20000

// NewNAT builds a NAT with the given external address.
func NewNAT(external pkt.Addr) *NAT {
	return &NAT{
		external: external,
		nextPort: natPortBase,
		forward:  make(map[natConn]uint16),
		reverse:  make(map[natRev]natOrigin),
	}
}

// NewNATFromConfig builds a NAT from an NF-FG configuration map:
//
//	external_ip: the public address (required)
func NewNATFromConfig(config map[string]string) (Processor, error) {
	ext, ok := config["external_ip"]
	if !ok {
		return nil, fmt.Errorf("nf: nat config missing external_ip")
	}
	a, err := pkt.ParseAddr(ext)
	if err != nil {
		return nil, err
	}
	return NewNAT(a), nil
}

// Bindings returns the number of active translations.
func (n *NAT) Bindings() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.forward)
}

// allocPort picks an unused external port for conn such that the RETURN
// flow (remote -> external:port) hashes to the same steering bucket as the
// outbound flow. That constraint keeps both directions of a connection on
// the same replica, and it also makes allocation conflict-free across
// replicas with no coordination: a colliding allocation would need two
// replicas to pick the same (remote, remote-port, ext-port) triple, but
// that triple fully determines the return bucket, and a bucket is owned by
// exactly one replica — so only the owner can ever mint bindings for it,
// and the local reverse-map check suffices. With 64 buckets the search
// visits ~64 candidate ports per allocation.
//
// Caller holds n.mu.
func (n *NAT) allocPort(conn natConn) (uint16, bool) {
	want := conn.tuple().Bucket()
	for tries := 0; tries < 1<<16; tries++ {
		p := n.nextPort
		n.nextPort++
		if n.nextPort == 0 {
			n.nextPort = natPortBase
		}
		rk := natRev{proto: conn.proto, remoteIP: conn.dstIP, remotePort: conn.dstPort, extPort: p}
		if _, used := n.reverse[rk]; used {
			continue
		}
		ret := FlowTuple{Proto: conn.proto, Src: conn.dstIP, Dst: n.external, SrcPort: conn.dstPort, DstPort: p}
		if ret.Bucket() != want {
			continue
		}
		return p, true
	}
	return 0, false
}

// natBindingData is the wire encoding of one exported binding; the
// connection 5-tuple itself rides in FlowState.Tuple.
type natBindingData struct {
	ExtPort uint16 `json:"ext-port"`
}

// ExportFlowState implements StatefulNF.
func (n *NAT) ExportFlowState(filter func(FlowTuple) bool) []FlowState {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []FlowState
	for conn, ext := range n.forward {
		t := conn.tuple()
		if filter != nil && !filter(t) {
			continue
		}
		data, err := json.Marshal(natBindingData{ExtPort: ext})
		if err != nil {
			continue // cannot happen for a fixed struct
		}
		out = append(out, FlowState{Tuple: t, Kind: "nat-binding", Data: data})
	}
	return out
}

// ImportFlowState implements StatefulNF. Re-importing an existing binding
// overwrites it (catch-up passes re-send flows already moved).
func (n *NAT) ImportFlowState(states []FlowState) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, st := range states {
		if st.Kind != "nat-binding" {
			continue
		}
		var d natBindingData
		if err := json.Unmarshal(st.Data, &d); err != nil {
			return fmt.Errorf("nf: nat import: %w", err)
		}
		conn := natConn{
			proto: st.Tuple.Proto,
			srcIP: st.Tuple.Src, srcPort: st.Tuple.SrcPort,
			dstIP: st.Tuple.Dst, dstPort: st.Tuple.DstPort,
		}
		if old, ok := n.forward[conn]; ok && old != d.ExtPort {
			delete(n.reverse, natRev{proto: conn.proto, remoteIP: conn.dstIP, remotePort: conn.dstPort, extPort: old})
		}
		n.forward[conn] = d.ExtPort
		n.reverse[natRev{proto: conn.proto, remoteIP: conn.dstIP, remotePort: conn.dstPort, extPort: d.ExtPort}] =
			natOrigin{ip: conn.srcIP, port: conn.srcPort}
	}
	return nil
}

// DropFlowState removes the bindings the filter accepts — the source side
// of a completed migration, so a later scale-up cannot resurrect stale
// state. A nil filter clears everything.
func (n *NAT) DropFlowState(filter func(FlowTuple) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for conn, ext := range n.forward {
		if filter != nil && !filter(conn.tuple()) {
			continue
		}
		delete(n.forward, conn)
		delete(n.reverse, natRev{proto: conn.proto, remoteIP: conn.dstIP, remotePort: conn.dstPort, extPort: ext})
	}
}

// Process implements Processor.
func (n *NAT) Process(inPort int, frame []byte) (Result, error) {
	switch inPort {
	case NATPortInside:
		return n.outbound(frame)
	case NATPortOutside:
		return n.inbound(frame)
	default:
		return Result{}, fmt.Errorf("nf: nat has no port %d", inPort)
	}
}

// rewrite re-serializes an Ethernet/IPv4/L4 frame with updated addresses.
func rewrite(eth *pkt.Ethernet, ip *pkt.IPv4, l4 pkt.Layer, payload []byte) ([]byte, error) {
	opts := pkt.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	newEth := &pkt.Ethernet{SrcMAC: eth.SrcMAC, DstMAC: eth.DstMAC, EthernetType: pkt.EthernetTypeIPv4}
	newIP := &pkt.IPv4{
		TOS: ip.TOS, ID: ip.ID, Flags: ip.Flags, FragOff: ip.FragOff,
		TTL: ip.TTL, Protocol: ip.Protocol, SrcIP: ip.SrcIP, DstIP: ip.DstIP,
	}
	switch t := l4.(type) {
	case *pkt.UDP:
		u := &pkt.UDP{SrcPort: t.SrcPort, DstPort: t.DstPort}
		u.SetNetworkLayerForChecksum(newIP)
		return pkt.Serialize(opts, newEth, newIP, u, pkt.Payload(payload))
	case *pkt.TCP:
		tc := &pkt.TCP{
			SrcPort: t.SrcPort, DstPort: t.DstPort,
			Seq: t.Seq, Ack: t.Ack, Flags: t.Flags, Window: t.Window, Urgent: t.Urgent,
		}
		tc.SetNetworkLayerForChecksum(newIP)
		return pkt.Serialize(opts, newEth, newIP, tc, pkt.Payload(payload))
	default:
		return nil, fmt.Errorf("nf: nat cannot rewrite %T", l4)
	}
}

func (n *NAT) outbound(frame []byte) (Result, error) {
	p := pkt.NewPacket(frame, pkt.LayerTypeEthernet, pkt.Default)
	eth, _ := p.Layer(pkt.LayerTypeEthernet).(*pkt.Ethernet)
	ip, _ := p.Layer(pkt.LayerTypeIPv4).(*pkt.IPv4)
	if eth == nil || ip == nil {
		return Result{}, nil // not translatable: drop
	}
	var srcPort, dstPort uint16
	var l4 pkt.Layer
	var payload []byte
	switch t := p.TransportLayer().(type) {
	case *pkt.UDP:
		srcPort, dstPort, l4, payload = t.SrcPort, t.DstPort, t, t.LayerPayload()
	case *pkt.TCP:
		srcPort, dstPort, l4, payload = t.SrcPort, t.DstPort, t, t.LayerPayload()
	default:
		return Result{}, nil // ICMP etc. not handled by this NAT
	}

	conn := natConn{proto: ip.Protocol, srcIP: ip.SrcIP, srcPort: srcPort, dstIP: ip.DstIP, dstPort: dstPort}
	n.mu.Lock()
	ext, ok := n.forward[conn]
	if !ok {
		var free bool
		ext, free = n.allocPort(conn)
		if !free {
			n.mu.Unlock()
			return Result{}, fmt.Errorf("nf: nat port space exhausted")
		}
		n.forward[conn] = ext
		n.reverse[natRev{proto: conn.proto, remoteIP: conn.dstIP, remotePort: conn.dstPort, extPort: ext}] =
			natOrigin{ip: conn.srcIP, port: conn.srcPort}
	}
	n.mu.Unlock()

	ip.SrcIP = n.external
	switch t := l4.(type) {
	case *pkt.UDP:
		t.SrcPort = ext
	case *pkt.TCP:
		t.SrcPort = ext
	}
	out, err := rewrite(eth, ip, l4, payload)
	if err != nil {
		return Result{}, err
	}
	return Result{Emissions: []Emission{{Port: NATPortOutside, Frame: out}}}, nil
}

func (n *NAT) inbound(frame []byte) (Result, error) {
	p := pkt.NewPacket(frame, pkt.LayerTypeEthernet, pkt.Default)
	eth, _ := p.Layer(pkt.LayerTypeEthernet).(*pkt.Ethernet)
	ip, _ := p.Layer(pkt.LayerTypeIPv4).(*pkt.IPv4)
	if eth == nil || ip == nil || ip.DstIP != n.external {
		return Result{}, nil
	}
	var srcPort, dstPort uint16
	var l4 pkt.Layer
	var payload []byte
	switch t := p.TransportLayer().(type) {
	case *pkt.UDP:
		srcPort, dstPort, l4, payload = t.SrcPort, t.DstPort, t, t.LayerPayload()
	case *pkt.TCP:
		srcPort, dstPort, l4, payload = t.SrcPort, t.DstPort, t, t.LayerPayload()
	default:
		return Result{}, nil
	}

	n.mu.Lock()
	origin, ok := n.reverse[natRev{proto: ip.Protocol, remoteIP: ip.SrcIP, remotePort: srcPort, extPort: dstPort}]
	n.mu.Unlock()
	if !ok {
		return Result{}, nil // no binding from that remote: drop, like a real symmetric NAT
	}

	ip.DstIP = origin.ip
	switch t := l4.(type) {
	case *pkt.UDP:
		t.DstPort = origin.port
	case *pkt.TCP:
		t.DstPort = origin.port
	}
	out, err := rewrite(eth, ip, l4, payload)
	if err != nil {
		return Result{}, err
	}
	return Result{Emissions: []Emission{{Port: NATPortInside, Frame: out}}}, nil
}
