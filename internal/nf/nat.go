package nf

import (
	"fmt"
	"sync"

	"repro/internal/pkt"
)

// NAT port conventions.
const (
	NATPortInside  = 0
	NATPortOutside = 1
)

// natKey identifies an inside connection.
type natKey struct {
	proto pkt.IPProtocol
	ip    pkt.Addr
	port  uint16
}

// NAT is a source NAT (masquerade), one of the "(large) number of common
// network functions" a Linux CPE ships natively. Traffic from the inside
// port is rewritten to the external address with an allocated port; return
// traffic on the outside port is translated back.
type NAT struct {
	external pkt.Addr

	mu       sync.Mutex
	nextPort uint16
	forward  map[natKey]uint16 // inside (proto,ip,port) -> external port
	reverse  map[uint16]natKey // external port -> inside
}

// natPortBase is the first external port allocated.
const natPortBase = 20000

// NewNAT builds a NAT with the given external address.
func NewNAT(external pkt.Addr) *NAT {
	return &NAT{
		external: external,
		nextPort: natPortBase,
		forward:  make(map[natKey]uint16),
		reverse:  make(map[uint16]natKey),
	}
}

// NewNATFromConfig builds a NAT from an NF-FG configuration map:
//
//	external_ip: the public address (required)
func NewNATFromConfig(config map[string]string) (Processor, error) {
	ext, ok := config["external_ip"]
	if !ok {
		return nil, fmt.Errorf("nf: nat config missing external_ip")
	}
	a, err := pkt.ParseAddr(ext)
	if err != nil {
		return nil, err
	}
	return NewNAT(a), nil
}

// Bindings returns the number of active translations.
func (n *NAT) Bindings() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.forward)
}

// Process implements Processor.
func (n *NAT) Process(inPort int, frame []byte) (Result, error) {
	switch inPort {
	case NATPortInside:
		return n.outbound(frame)
	case NATPortOutside:
		return n.inbound(frame)
	default:
		return Result{}, fmt.Errorf("nf: nat has no port %d", inPort)
	}
}

// rewrite re-serializes an Ethernet/IPv4/L4 frame with updated addresses.
func rewrite(eth *pkt.Ethernet, ip *pkt.IPv4, l4 pkt.Layer, payload []byte) ([]byte, error) {
	opts := pkt.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	newEth := &pkt.Ethernet{SrcMAC: eth.SrcMAC, DstMAC: eth.DstMAC, EthernetType: pkt.EthernetTypeIPv4}
	newIP := &pkt.IPv4{
		TOS: ip.TOS, ID: ip.ID, Flags: ip.Flags, FragOff: ip.FragOff,
		TTL: ip.TTL, Protocol: ip.Protocol, SrcIP: ip.SrcIP, DstIP: ip.DstIP,
	}
	switch t := l4.(type) {
	case *pkt.UDP:
		u := &pkt.UDP{SrcPort: t.SrcPort, DstPort: t.DstPort}
		u.SetNetworkLayerForChecksum(newIP)
		return pkt.Serialize(opts, newEth, newIP, u, pkt.Payload(payload))
	case *pkt.TCP:
		tc := &pkt.TCP{
			SrcPort: t.SrcPort, DstPort: t.DstPort,
			Seq: t.Seq, Ack: t.Ack, Flags: t.Flags, Window: t.Window, Urgent: t.Urgent,
		}
		tc.SetNetworkLayerForChecksum(newIP)
		return pkt.Serialize(opts, newEth, newIP, tc, pkt.Payload(payload))
	default:
		return nil, fmt.Errorf("nf: nat cannot rewrite %T", l4)
	}
}

func (n *NAT) outbound(frame []byte) (Result, error) {
	p := pkt.NewPacket(frame, pkt.LayerTypeEthernet, pkt.Default)
	eth, _ := p.Layer(pkt.LayerTypeEthernet).(*pkt.Ethernet)
	ip, _ := p.Layer(pkt.LayerTypeIPv4).(*pkt.IPv4)
	if eth == nil || ip == nil {
		return Result{}, nil // not translatable: drop
	}
	var srcPort uint16
	var l4 pkt.Layer
	var payload []byte
	switch t := p.TransportLayer().(type) {
	case *pkt.UDP:
		srcPort, l4, payload = t.SrcPort, t, t.LayerPayload()
	case *pkt.TCP:
		srcPort, l4, payload = t.SrcPort, t, t.LayerPayload()
	default:
		return Result{}, nil // ICMP etc. not handled by this NAT
	}

	key := natKey{proto: ip.Protocol, ip: ip.SrcIP, port: srcPort}
	n.mu.Lock()
	ext, ok := n.forward[key]
	if !ok {
		for {
			ext = n.nextPort
			n.nextPort++
			if n.nextPort == 0 {
				n.nextPort = natPortBase
			}
			if _, used := n.reverse[ext]; !used {
				break
			}
		}
		n.forward[key] = ext
		n.reverse[ext] = key
	}
	n.mu.Unlock()

	ip.SrcIP = n.external
	switch t := l4.(type) {
	case *pkt.UDP:
		t.SrcPort = ext
	case *pkt.TCP:
		t.SrcPort = ext
	}
	out, err := rewrite(eth, ip, l4, payload)
	if err != nil {
		return Result{}, err
	}
	return Result{Emissions: []Emission{{Port: NATPortOutside, Frame: out}}}, nil
}

func (n *NAT) inbound(frame []byte) (Result, error) {
	p := pkt.NewPacket(frame, pkt.LayerTypeEthernet, pkt.Default)
	eth, _ := p.Layer(pkt.LayerTypeEthernet).(*pkt.Ethernet)
	ip, _ := p.Layer(pkt.LayerTypeIPv4).(*pkt.IPv4)
	if eth == nil || ip == nil || ip.DstIP != n.external {
		return Result{}, nil
	}
	var dstPort uint16
	var l4 pkt.Layer
	var payload []byte
	switch t := p.TransportLayer().(type) {
	case *pkt.UDP:
		dstPort, l4, payload = t.DstPort, t, t.LayerPayload()
	case *pkt.TCP:
		dstPort, l4, payload = t.DstPort, t, t.LayerPayload()
	default:
		return Result{}, nil
	}

	n.mu.Lock()
	key, ok := n.reverse[dstPort]
	n.mu.Unlock()
	if !ok || key.proto != ip.Protocol {
		return Result{}, nil // no binding: drop, like a real masquerade
	}

	ip.DstIP = key.ip
	switch t := l4.(type) {
	case *pkt.UDP:
		t.DstPort = key.port
	case *pkt.TCP:
		t.DstPort = key.port
	}
	out, err := rewrite(eth, ip, l4, payload)
	if err != nil {
		return Result{}, err
	}
	return Result{Emissions: []Emission{{Port: NATPortInside, Frame: out}}}, nil
}
