package nf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/pkt"
)

// Route is one static routing entry.
type Route struct {
	Prefix    string // CIDR
	Port      int    // egress NF port
	NextHop   pkt.MAC
	SrcMAC    pkt.MAC
	prefixLen int
	base      uint32
	mask      uint32
}

// Router is a static IPv4 router NF: longest-prefix-match forwarding with
// TTL decrement and L2 rewrite.
type Router struct {
	mu     sync.RWMutex
	routes []Route // sorted by prefix length, longest first
}

// NewRouter builds an empty router.
func NewRouter() *Router { return &Router{} }

// NewRouterFromConfig builds a router from an NF-FG configuration map:
//
//	routes: semicolon-separated "CIDR,port,nexthopMAC,srcMAC" entries
func NewRouterFromConfig(config map[string]string) (Processor, error) {
	r := NewRouter()
	spec, ok := config["routes"]
	if !ok || strings.TrimSpace(spec) == "" {
		return r, nil
	}
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		parts := strings.Split(rs, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("nf: route %q must be CIDR,port,nexthop,src", rs)
		}
		port, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("nf: route %q: bad port", rs)
		}
		nh, err := pkt.ParseMAC(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, err
		}
		src, err := pkt.ParseMAC(strings.TrimSpace(parts[3]))
		if err != nil {
			return nil, err
		}
		if err := r.AddRoute(Route{Prefix: strings.TrimSpace(parts[0]), Port: port, NextHop: nh, SrcMAC: src}); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// AddRoute installs a route.
func (r *Router) AddRoute(rt Route) error {
	slash := strings.IndexByte(rt.Prefix, '/')
	if slash < 0 {
		return fmt.Errorf("nf: route prefix %q not CIDR", rt.Prefix)
	}
	base, err := pkt.ParseAddr(rt.Prefix[:slash])
	if err != nil {
		return err
	}
	bits, err := strconv.Atoi(rt.Prefix[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return fmt.Errorf("nf: route prefix %q has bad length", rt.Prefix)
	}
	rt.prefixLen = bits
	if bits == 0 {
		rt.mask = 0
	} else {
		rt.mask = ^uint32(0) << (32 - bits)
	}
	rt.base = base.Uint32() & rt.mask
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes = append(r.routes, rt)
	sort.SliceStable(r.routes, func(i, j int) bool {
		return r.routes[i].prefixLen > r.routes[j].prefixLen
	})
	return nil
}

// NumRoutes returns the routing table size.
func (r *Router) NumRoutes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.routes)
}

// lookup performs longest-prefix match.
func (r *Router) lookup(dst pkt.Addr) (Route, bool) {
	v := dst.Uint32()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, rt := range r.routes {
		if v&rt.mask == rt.base {
			return rt, true
		}
	}
	return Route{}, false
}

// Process implements Processor.
func (r *Router) Process(inPort int, frame []byte) (Result, error) {
	var eth pkt.Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		return Result{}, err
	}
	if eth.EthernetType != pkt.EthernetTypeIPv4 {
		return Result{}, nil // routers drop non-IP
	}
	ipBytes := eth.LayerPayload()
	var ip pkt.IPv4
	if err := ip.DecodeFromBytes(ipBytes); err != nil {
		return Result{}, err
	}
	if ip.TTL <= 1 {
		return Result{}, nil // TTL expired; a full router would send ICMP
	}
	rt, ok := r.lookup(ip.DstIP)
	if !ok {
		return Result{}, nil // no route
	}

	// Rewrite in place on a copy: TTL-1, incremental checksum, new MACs.
	out := make([]byte, len(frame))
	copy(out, frame)
	copy(out[0:6], rt.NextHop[:])
	copy(out[6:12], rt.SrcMAC[:])
	ipOff := pkt.EthernetHeaderLen
	out[ipOff+8]--
	// RFC 1624 incremental checksum update for the TTL decrement.
	cks := uint32(out[ipOff+10])<<8 | uint32(out[ipOff+11])
	cks += 0x0100 // adding 1 to the ones'-complement sum of ~TTL field
	if cks > 0xffff {
		cks = (cks & 0xffff) + 1
	}
	out[ipOff+10] = byte(cks >> 8)
	out[ipOff+11] = byte(cks)

	return Result{Emissions: []Emission{{Port: rt.Port, Frame: out}}}, nil
}
