package nf

import (
	"fmt"
	"strconv"
	"sync"
	"time"
)

// ClockUser is implemented by processors whose behaviour depends on time
// (e.g. token buckets). The Runtime injects its execution environment's
// virtual clock so time-dependent NFs advance with simulated time rather
// than the wall clock.
type ClockUser interface {
	SetClock(now func() time.Duration)
}

// Shaper is a token-bucket rate limiter, the NF equivalent of Linux's
// native `tc` qdisc. Traffic between ports 0 and 1 is policed to the
// configured rate with the configured burst allowance; excess packets are
// dropped (policing, not queueing, matching a tc police action).
type Shaper struct {
	rateBps float64 // bits per second
	burst   float64 // bucket capacity, bytes

	mu      sync.Mutex
	now     func() time.Duration
	tokens  float64 // bytes available
	last    time.Duration
	primed  bool
	passed  uint64
	dropped uint64
}

// NewShaper builds a shaper policing to rateMbps with burstKB of burst.
func NewShaper(rateMbps float64, burstKB int) (*Shaper, error) {
	if rateMbps <= 0 {
		return nil, fmt.Errorf("nf: shaper rate must be positive, got %v", rateMbps)
	}
	if burstKB <= 0 {
		return nil, fmt.Errorf("nf: shaper burst must be positive, got %v", burstKB)
	}
	return &Shaper{
		rateBps: rateMbps * 1e6,
		burst:   float64(burstKB) * 1024,
	}, nil
}

// NewShaperFromConfig builds a shaper from an NF-FG configuration map:
//
//	rate_mbps: policing rate in Mbps (required)
//	burst_kb:  burst allowance in KiB (default 64)
func NewShaperFromConfig(config map[string]string) (Processor, error) {
	rateS, ok := config["rate_mbps"]
	if !ok {
		return nil, fmt.Errorf("nf: shaper config missing rate_mbps")
	}
	rate, err := strconv.ParseFloat(rateS, 64)
	if err != nil {
		return nil, fmt.Errorf("nf: shaper bad rate_mbps %q", rateS)
	}
	burst := 64
	if b, ok := config["burst_kb"]; ok {
		burst, err = strconv.Atoi(b)
		if err != nil {
			return nil, fmt.Errorf("nf: shaper bad burst_kb %q", b)
		}
	}
	return NewShaper(rate, burst)
}

// SetClock implements ClockUser.
func (s *Shaper) SetClock(now func() time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
	s.primed = false
}

// Counters returns passed and dropped packet counts.
func (s *Shaper) Counters() (passed, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.passed, s.dropped
}

// Process implements Processor.
func (s *Shaper) Process(inPort int, frame []byte) (Result, error) {
	if inPort != 0 && inPort != 1 {
		return Result{}, fmt.Errorf("nf: shaper has no port %d", inPort)
	}
	s.mu.Lock()
	if s.now == nil {
		// Without a clock the shaper cannot meter; fail closed for
		// visibility rather than silently passing everything.
		s.mu.Unlock()
		return Result{}, fmt.Errorf("nf: shaper has no clock source")
	}
	now := s.now()
	if !s.primed {
		s.tokens = s.burst
		s.last = now
		s.primed = true
	}
	// Refill: rateBps/8 bytes per second of virtual time.
	s.tokens += (now - s.last).Seconds() * s.rateBps / 8
	if s.tokens > s.burst {
		s.tokens = s.burst
	}
	s.last = now
	need := float64(len(frame))
	if s.tokens < need {
		s.dropped++
		s.mu.Unlock()
		return Result{}, nil
	}
	s.tokens -= need
	s.passed++
	s.mu.Unlock()
	return Result{Emissions: []Emission{{Port: 1 - inPort, Frame: frame}}}, nil
}
