package nf

import (
	"bytes"
	"testing"

	"repro/internal/pkt"
)

var (
	macA  = pkt.MAC{2, 0, 0, 0, 0, 0xa}
	macB  = pkt.MAC{2, 0, 0, 0, 0, 0xb}
	ipA   = pkt.Addr{10, 0, 0, 1}
	ipB   = pkt.Addr{10, 0, 0, 2}
	gwIP  = pkt.Addr{192, 0, 2, 1}
	rmtIP = pkt.Addr{203, 0, 113, 9}
)

var testKey = []byte{
	0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, // AES-128
	16, 17, 18, 19, // salt
}

func newSA(t *testing.T, spi uint32) *SA {
	t.Helper()
	sa, err := NewSA(spi, gwIP, rmtIP, testKey)
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

func innerPacket(t *testing.T, payloadLen int) []byte {
	t.Helper()
	ip := &pkt.IPv4{TTL: 64, Protocol: pkt.IPProtocolUDP, SrcIP: ipA, DstIP: ipB}
	udp := &pkt.UDP{SrcPort: 1111, DstPort: 2222}
	udp.SetNetworkLayerForChecksum(ip)
	data, err := pkt.Serialize(
		pkt.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		ip, udp, pkt.Payload(bytes.Repeat([]byte{0x5a}, payloadLen)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestESPEncapDecapRoundTrip(t *testing.T) {
	tx, rx := newSA(t, 0x100), newSA(t, 0x100)
	inner := innerPacket(t, 100)
	outer, err := tx.Encapsulate(inner)
	if err != nil {
		t.Fatal(err)
	}
	// The outer packet must be valid IPv4/ESP between the endpoints.
	var ip pkt.IPv4
	if err := ip.DecodeFromBytes(outer); err != nil {
		t.Fatal(err)
	}
	if ip.Protocol != pkt.IPProtocolESP || ip.SrcIP != gwIP || ip.DstIP != rmtIP {
		t.Errorf("outer = %+v", ip)
	}
	// Ciphertext must not contain the plaintext.
	if bytes.Contains(outer, inner[:20]) {
		t.Error("plaintext leaked into ESP packet")
	}
	got, err := rx.Decapsulate(outer)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, inner) {
		t.Error("decapsulated packet differs from original")
	}
}

func TestESPRejectsTamper(t *testing.T) {
	tx, rx := newSA(t, 0x200), newSA(t, 0x200)
	outer, _ := tx.Encapsulate(innerPacket(t, 64))
	// Flip one ciphertext bit.
	tampered := append([]byte(nil), outer...)
	tampered[len(tampered)-1] ^= 0x01
	if _, err := rx.Decapsulate(tampered); err == nil {
		t.Error("tampered packet accepted")
	}
	// Unmodified still fine.
	if _, err := rx.Decapsulate(outer); err != nil {
		t.Errorf("clean packet rejected: %v", err)
	}
}

func TestESPReplayProtection(t *testing.T) {
	tx, rx := newSA(t, 0x300), newSA(t, 0x300)
	p1, _ := tx.Encapsulate(innerPacket(t, 10))
	p2, _ := tx.Encapsulate(innerPacket(t, 10))
	if _, err := rx.Decapsulate(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Decapsulate(p2); err != nil {
		t.Fatal(err)
	}
	// Replaying either must fail.
	if _, err := rx.Decapsulate(p1); err == nil {
		t.Error("replayed packet 1 accepted")
	}
	if _, err := rx.Decapsulate(p2); err == nil {
		t.Error("replayed packet 2 accepted")
	}
}

func TestESPOutOfOrderWithinWindow(t *testing.T) {
	tx, rx := newSA(t, 0x400), newSA(t, 0x400)
	var packets [][]byte
	for i := 0; i < 10; i++ {
		p, _ := tx.Encapsulate(innerPacket(t, 10))
		packets = append(packets, p)
	}
	// Deliver newest first, then the rest: all must pass once.
	order := []int{9, 3, 0, 7, 1, 2, 8, 4, 6, 5}
	for _, i := range order {
		if _, err := rx.Decapsulate(packets[i]); err != nil {
			t.Fatalf("packet %d rejected: %v", i, err)
		}
	}
}

func TestESPWindowTooOld(t *testing.T) {
	tx, rx := newSA(t, 0x500), newSA(t, 0x500)
	first, _ := tx.Encapsulate(innerPacket(t, 10))
	// Advance the window far beyond replayWindowSize.
	var last []byte
	for i := 0; i < replayWindowSize+8; i++ {
		last, _ = tx.Encapsulate(innerPacket(t, 10))
	}
	if _, err := rx.Decapsulate(last); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Decapsulate(first); err == nil {
		t.Error("ancient packet accepted outside replay window")
	}
}

func TestReplayWindowUnit(t *testing.T) {
	var w replayWindow
	if w.check(0) {
		t.Error("seq 0 accepted")
	}
	if !w.check(1) || w.check(1) {
		t.Error("seq 1 handling broken")
	}
	if !w.check(100) {
		t.Error("forward jump rejected")
	}
	if !w.check(99) || w.check(99) {
		t.Error("in-window out-of-order handling broken")
	}
	if w.check(100 - replayWindowSize) {
		t.Error("too-old seq accepted")
	}
	if !w.check(100 - replayWindowSize + 1) {
		t.Error("oldest in-window seq rejected")
	}
}

func TestSAKeyValidation(t *testing.T) {
	if _, err := NewSA(0, gwIP, rmtIP, testKey); err == nil {
		t.Error("SPI 0 accepted")
	}
	if _, err := NewSA(1, gwIP, rmtIP, testKey[:10]); err == nil {
		t.Error("short key accepted")
	}
	if _, err := ParseSAKey("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := ParseSAKey("00112233445566778899aabbccddeeff00112233"); err != nil {
		t.Errorf("valid key rejected: %v", err)
	}
	if _, err := ParseSAKey("0011"); err == nil {
		t.Error("short hex accepted")
	}
}

func TestSADB(t *testing.T) {
	db := NewSADB()
	sa := newSA(t, 7)
	if err := db.Add(sa); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(newSA(t, 7)); err == nil {
		t.Error("duplicate SPI accepted")
	}
	if got, ok := db.BySPI(7); !ok || got != sa {
		t.Error("BySPI failed")
	}
	if got, ok := db.ByPeer(rmtIP); !ok || got != sa {
		t.Error("ByPeer failed")
	}
	if _, ok := db.BySPI(8); ok {
		t.Error("phantom SPI")
	}
	if db.Len() != 1 {
		t.Errorf("len = %d", db.Len())
	}
}

// gateway builds two IPsec processors sharing a key, as two tunnel ends.
func gatewayPair(t *testing.T) (*IPsec, *IPsec) {
	t.Helper()
	left := NewIPsec(rmtIP, macA, macB, macA, macB)
	saL, err := NewSA(0x1000, gwIP, rmtIP, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := left.AddSA(saL); err != nil {
		t.Fatal(err)
	}
	right := NewIPsec(gwIP, macB, macA, macB, macA)
	saR, err := NewSA(0x1000, rmtIP, gwIP, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := right.AddSA(saR); err != nil {
		t.Fatal(err)
	}
	return left, right
}

func TestIPsecGatewayEndToEnd(t *testing.T) {
	left, right := gatewayPair(t)
	clearFrame := pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 40000, DstPort: 5001, PayloadLen: 256, PayloadByte: 0x77,
	})

	// LAN -> left gateway: encapsulate.
	res, err := left.Process(IPsecPortPlain, clearFrame)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emissions) != 1 || res.Emissions[0].Port != IPsecPortEncrypted {
		t.Fatalf("encap emissions = %+v", res.Emissions)
	}
	if res.CryptoBytes == 0 {
		t.Error("no crypto bytes reported")
	}
	wire := res.Emissions[0].Frame

	// The wire format is Ethernet/IPv4(ESP).
	p := pkt.NewPacket(wire, pkt.LayerTypeEthernet, pkt.Default)
	if p.Layer(pkt.LayerTypeESP) == nil {
		t.Fatalf("no ESP on the wire: %v", p)
	}

	// WAN -> right gateway: decapsulate.
	res2, err := right.Process(IPsecPortEncrypted, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Emissions) != 1 || res2.Emissions[0].Port != IPsecPortPlain {
		t.Fatalf("decap emissions = %+v", res2.Emissions)
	}
	out := pkt.NewPacket(res2.Emissions[0].Frame, pkt.LayerTypeEthernet, pkt.Default)
	udp, ok := out.Layer(pkt.LayerTypeUDP).(*pkt.UDP)
	if !ok || udp.DstPort != 5001 {
		t.Fatalf("inner packet damaged: %v", out)
	}
	app := out.ApplicationLayer()
	if len(app) != 256 || app[0] != 0x77 {
		t.Error("payload damaged through the tunnel")
	}
}

func TestIPsecNonIPDropped(t *testing.T) {
	left, _ := gatewayPair(t)
	arp := &pkt.ARP{Operation: pkt.ARPRequest, SenderMAC: macA, SenderIP: ipA, TargetIP: ipB}
	eth := &pkt.Ethernet{SrcMAC: macA, DstMAC: macB, EthernetType: pkt.EthernetTypeARP}
	frame, _ := pkt.Serialize(pkt.SerializeOptions{}, eth, arp)
	res, err := left.Process(IPsecPortPlain, frame)
	if err != nil || len(res.Emissions) != 0 {
		t.Errorf("ARP should be silently dropped, got %+v, %v", res, err)
	}
	if _, err := left.Process(9, frame); err == nil {
		t.Error("bad port accepted")
	}
}

func TestIPsecFromConfig(t *testing.T) {
	proc, err := NewIPsecFromConfig(map[string]string{
		"local":  "192.0.2.1",
		"remote": "203.0.113.9",
		"spi":    "4096",
		"key":    "000102030405060708090a0b0c0d0e0f10111213",
	})
	if err != nil {
		t.Fatal(err)
	}
	g := proc.(*IPsec)
	if g.SADB().Len() != 1 {
		t.Error("SA not installed from config")
	}
	// Missing keys must fail.
	for _, missing := range []string{"local", "remote", "spi", "key"} {
		cfg := map[string]string{
			"local":  "192.0.2.1",
			"remote": "203.0.113.9",
			"spi":    "4096",
			"key":    "000102030405060708090a0b0c0d0e0f10111213",
		}
		delete(cfg, missing)
		if _, err := NewIPsecFromConfig(cfg); err == nil {
			t.Errorf("config without %q accepted", missing)
		}
	}
	if _, err := NewIPsecFromConfig(map[string]string{
		"local": "x", "remote": "203.0.113.9", "spi": "1", "key": "000102030405060708090a0b0c0d0e0f10111213",
	}); err == nil {
		t.Error("bad local accepted")
	}
	if _, err := NewIPsecFromConfig(map[string]string{
		"local": "192.0.2.1", "remote": "203.0.113.9", "spi": "zebra", "key": "000102030405060708090a0b0c0d0e0f10111213",
	}); err == nil {
		t.Error("bad spi accepted")
	}
}

func TestESPOverheadConstant(t *testing.T) {
	tx := newSA(t, 0x600)
	inner := innerPacket(t, 1000)
	outer, _ := tx.Encapsulate(inner)
	if len(outer) > len(inner)+espOverhead {
		t.Errorf("overhead %d exceeds documented bound %d", len(outer)-len(inner), espOverhead)
	}
}
