package nf

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/pkt"
)

// IPsec port conventions.
const (
	// IPsecPortPlain receives and emits cleartext traffic (the LAN side
	// of the paper's CPE use case).
	IPsecPortPlain = 0
	// IPsecPortEncrypted receives and emits ESP traffic (the WAN side).
	IPsecPortEncrypted = 1
)

// IPsec is an ESP tunnel-mode gateway, the network function of the paper's
// validation (strongSwan configured for ESP in tunnel mode). Cleartext
// frames entering the plain port are encapsulated toward the peer; ESP
// frames entering the encrypted port are authenticated, decrypted and
// emitted on the plain port.
type IPsec struct {
	sadb *SADB
	// peer is the remote tunnel endpoint for outbound traffic.
	peer pkt.Addr
	// gwMAC/peerMAC frame the outer packets on the encrypted side.
	gwMAC, peerMAC pkt.MAC
	// lanMAC frames decapsulated packets on the plain side.
	lanMAC, hostMAC pkt.MAC
}

// NewIPsec builds a gateway with one outbound peer. Frames are re-framed
// with the given MACs on each side.
func NewIPsec(peer pkt.Addr, gwMAC, peerMAC, lanMAC, hostMAC pkt.MAC) *IPsec {
	return &IPsec{
		sadb:    NewSADB(),
		peer:    peer,
		gwMAC:   gwMAC,
		peerMAC: peerMAC,
		lanMAC:  lanMAC,
		hostMAC: hostMAC,
	}
}

// NewIPsecFromConfig builds the gateway from an NF-FG configuration map:
//
//	local:  outer source IPv4 (required)
//	remote: outer destination IPv4 (required)
//	spi:    security parameter index (required, decimal)
//	key:    40 hex chars, AES-128 key || 4-byte salt (required)
//	gw_mac, peer_mac, lan_mac, host_mac: optional MACs
func NewIPsecFromConfig(config map[string]string) (Processor, error) {
	get := func(k string) (string, error) {
		v, ok := config[k]
		if !ok || v == "" {
			return "", fmt.Errorf("nf: ipsec config missing %q", k)
		}
		return v, nil
	}
	localS, err := get("local")
	if err != nil {
		return nil, err
	}
	remoteS, err := get("remote")
	if err != nil {
		return nil, err
	}
	spiS, err := get("spi")
	if err != nil {
		return nil, err
	}
	keyS, err := get("key")
	if err != nil {
		return nil, err
	}
	local, err := pkt.ParseAddr(localS)
	if err != nil {
		return nil, err
	}
	remote, err := pkt.ParseAddr(remoteS)
	if err != nil {
		return nil, err
	}
	var spi uint32
	if _, err := fmt.Sscanf(spiS, "%d", &spi); err != nil {
		return nil, fmt.Errorf("nf: ipsec bad spi %q", spiS)
	}
	key, err := ParseSAKey(keyS)
	if err != nil {
		return nil, err
	}
	mac := func(k string, dflt pkt.MAC) pkt.MAC {
		if v, ok := config[k]; ok {
			if m, err := pkt.ParseMAC(v); err == nil {
				return m
			}
		}
		return dflt
	}
	ips := NewIPsec(remote,
		mac("gw_mac", pkt.MAC{0x02, 0, 0, 0, 0xee, 0x01}),
		mac("peer_mac", pkt.MAC{0x02, 0, 0, 0, 0xee, 0x02}),
		mac("lan_mac", pkt.MAC{0x02, 0, 0, 0, 0xee, 0x03}),
		mac("host_mac", pkt.MAC{0x02, 0, 0, 0, 0xee, 0x04}),
	)
	sa, err := NewSA(spi, local, remote, key)
	if err != nil {
		return nil, err
	}
	if err := ips.AddSA(sa); err != nil {
		return nil, err
	}
	return ips, nil
}

// AddSA installs a security association.
func (g *IPsec) AddSA(sa *SA) error { return g.sadb.Add(sa) }

// SADB exposes the SA database (for tests and inspection).
func (g *IPsec) SADB() *SADB { return g.sadb }

// saState is the wire encoding of one exported SA: identity, key material
// and the mutable send/anti-replay counters.
type saState struct {
	SPI           uint32 `json:"spi"`
	Local         string `json:"local"`
	Remote        string `json:"remote"`
	Key           string `json:"key"` // hex, AES-128 || salt
	Seq           uint32 `json:"seq"`
	ReplayHighest uint32 `json:"replay-highest"`
	ReplayBitmap  uint64 `json:"replay-bitmap"`
}

// saTuple is the steering identity of an SA: the inbound ESP flow from the
// peer. ESP carries no transport ports, so the datapath flow key of those
// frames has zero ports — this tuple hashes exactly like they do.
func saTuple(sa *SA) FlowTuple {
	return FlowTuple{Proto: pkt.IPProtocolESP, Src: sa.Remote, Dst: sa.Local}
}

// ExportFlowState implements StatefulNF: one entry per SA, keyed by the
// peer's inbound ESP flow. The export includes live sequence/anti-replay
// counters so the importing replica neither reuses a GCM nonce nor
// re-accepts a replayed datagram.
func (g *IPsec) ExportFlowState(filter func(FlowTuple) bool) []FlowState {
	var out []FlowState
	for _, sa := range g.sadb.All() {
		t := saTuple(sa)
		if filter != nil && !filter(t) {
			continue
		}
		seq, high, bitmap := sa.exportState()
		data, err := json.Marshal(saState{
			SPI:    sa.SPI,
			Local:  sa.Local.String(),
			Remote: sa.Remote.String(),
			Key:    hex.EncodeToString(sa.KeyMaterial()),
			Seq:    seq, ReplayHighest: high, ReplayBitmap: bitmap,
		})
		if err != nil {
			continue
		}
		out = append(out, FlowState{Tuple: t, Kind: "ipsec-sa", Data: data})
	}
	return out
}

// ImportFlowState implements StatefulNF. An SA already present (same SPI)
// only has its counters merged forward; otherwise the SA is installed.
func (g *IPsec) ImportFlowState(states []FlowState) error {
	for _, st := range states {
		if st.Kind != "ipsec-sa" {
			continue
		}
		var s saState
		if err := json.Unmarshal(st.Data, &s); err != nil {
			return fmt.Errorf("nf: ipsec import: %w", err)
		}
		if sa, ok := g.sadb.BySPI(s.SPI); ok {
			sa.restoreState(s.Seq, s.ReplayHighest, s.ReplayBitmap)
			continue
		}
		local, err := pkt.ParseAddr(s.Local)
		if err != nil {
			return fmt.Errorf("nf: ipsec import: %w", err)
		}
		remote, err := pkt.ParseAddr(s.Remote)
		if err != nil {
			return fmt.Errorf("nf: ipsec import: %w", err)
		}
		key, err := ParseSAKey(s.Key)
		if err != nil {
			return fmt.Errorf("nf: ipsec import: %w", err)
		}
		sa, err := NewSA(s.SPI, local, remote, key)
		if err != nil {
			return fmt.Errorf("nf: ipsec import: %w", err)
		}
		sa.restoreState(s.Seq, s.ReplayHighest, s.ReplayBitmap)
		g.sadb.Put(sa)
	}
	return nil
}

// DropFlowState removes the SAs whose inbound-flow tuple the filter accepts
// — the donor-side cleanup after a bucket migrates to another replica, so a
// later scale-up cannot resurrect a stale send counter (which would reuse
// GCM nonces). A nil filter clears the whole database.
func (g *IPsec) DropFlowState(filter func(FlowTuple) bool) {
	for _, sa := range g.sadb.All() {
		if filter != nil && !filter(saTuple(sa)) {
			continue
		}
		g.sadb.Remove(sa.SPI)
	}
}

// Process implements Processor.
func (g *IPsec) Process(inPort int, frame []byte) (Result, error) {
	switch inPort {
	case IPsecPortPlain:
		return g.encap(frame)
	case IPsecPortEncrypted:
		return g.decap(frame)
	default:
		return Result{}, fmt.Errorf("nf: ipsec has no port %d", inPort)
	}
}

func (g *IPsec) encap(frame []byte) (Result, error) {
	var eth pkt.Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		return Result{}, err
	}
	if eth.EthernetType != pkt.EthernetTypeIPv4 {
		// Non-IP traffic (e.g. ARP) is not tunneled; drop silently as
		// a real gateway's policy would.
		return Result{}, nil
	}
	innerIP := eth.LayerPayload()
	sa, ok := g.sadb.ByPeer(g.peer)
	if !ok {
		return Result{}, fmt.Errorf("nf: no outbound SA toward %v", g.peer)
	}
	outer, err := sa.Encapsulate(innerIP)
	if err != nil {
		return Result{}, err
	}
	out, err := pkt.Serialize(pkt.SerializeOptions{},
		&pkt.Ethernet{SrcMAC: g.gwMAC, DstMAC: g.peerMAC, EthernetType: pkt.EthernetTypeIPv4},
		pkt.Payload(outer),
	)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Emissions:   []Emission{{Port: IPsecPortEncrypted, Frame: out}},
		CryptoBytes: len(innerIP),
	}, nil
}

func (g *IPsec) decap(frame []byte) (Result, error) {
	var eth pkt.Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		return Result{}, err
	}
	if eth.EthernetType != pkt.EthernetTypeIPv4 {
		return Result{}, nil
	}
	outerIP := eth.LayerPayload()
	var ip pkt.IPv4
	if err := ip.DecodeFromBytes(outerIP); err != nil {
		return Result{}, err
	}
	if ip.Protocol != pkt.IPProtocolESP {
		// Cleartext traffic on the encrypted side is not ours.
		return Result{}, nil
	}
	var esp pkt.ESP
	if err := esp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		return Result{}, err
	}
	sa, ok := g.sadb.BySPI(esp.SPI)
	if !ok {
		return Result{}, fmt.Errorf("nf: no SA for SPI %#x", esp.SPI)
	}
	inner, err := sa.Decapsulate(outerIP)
	if err != nil {
		return Result{}, err
	}
	out, err := pkt.Serialize(pkt.SerializeOptions{},
		&pkt.Ethernet{SrcMAC: g.lanMAC, DstMAC: g.hostMAC, EthernetType: pkt.EthernetTypeIPv4},
		pkt.Payload(inner),
	)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Emissions:   []Emission{{Port: IPsecPortPlain, Frame: out}},
		CryptoBytes: len(inner),
	}, nil
}
