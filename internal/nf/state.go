package nf

import (
	"repro/internal/pkt"
	"repro/internal/vswitch"
)

// Per-flow state export/import: the contract that makes a stateful NF
// scalable. When a logical NF runs as N replicas behind consistent-hash
// bucket steering, rebalancing a bucket from one replica to another moves
// two things in lockstep: the steering rule (vswitch SelectBucket table)
// and the per-flow state the old replica accumulated for that bucket's
// flows. StatefulNF is the second half — a processor that can serialize
// the state of a selected subset of its flows and absorb such a dump from
// a sibling replica.

// FlowTuple identifies a flow the same way the datapath steering does: by
// transport 5-tuple. Its Bucket method IS the steering function — an NF
// and the vswitch must never disagree about which replica owns a flow.
//
// The tuple is direction-sensitive (Src is the packet's source); a
// processor exporting state for a bidirectional flow reports the tuple of
// the direction that reaches it through the scaled steering point, because
// that is the direction whose bucket decides ownership.
type FlowTuple struct {
	Proto   pkt.IPProtocol `json:"proto"`
	Src     pkt.Addr       `json:"src"`
	Dst     pkt.Addr       `json:"dst"`
	SrcPort uint16         `json:"src-port"`
	DstPort uint16         `json:"dst-port"`
}

// Bucket returns the consistent-hash steering bucket this flow belongs to.
func (t FlowTuple) Bucket() int {
	return vswitch.FlowBucket(t.Proto, t.Src, t.Dst, t.SrcPort, t.DstPort)
}

// FlowState is one exportable unit of per-flow state. Kind names the state
// table it came from ("nat-binding", "conntrack", "ipsec-sa"); Data is an
// opaque processor-defined encoding that only the same processor type needs
// to understand.
type FlowState struct {
	Tuple FlowTuple `json:"tuple"`
	Kind  string    `json:"kind"`
	Data  []byte    `json:"data"`
}

// StatefulNF is implemented by processors whose correctness depends on
// per-flow state (NAT bindings, firewall conntrack, IPsec SAs). The
// orchestrator uses it during scale-out rebalancing: export the moving
// buckets' flows from the source replica, import them into the target,
// then repoint steering.
type StatefulNF interface {
	// ExportFlowState returns the state of every flow the filter accepts.
	// A nil filter exports everything. The source replica keeps serving
	// (and keeps its state) until steering moves — export is a snapshot,
	// not a handoff, so the orchestrator runs a second catch-up pass after
	// repointing.
	ExportFlowState(filter func(FlowTuple) bool) []FlowState

	// ImportFlowState installs state exported by a sibling replica.
	// Imports are idempotent: re-importing a flow already present (as the
	// catch-up pass will) overwrites it rather than erroring.
	ImportFlowState(states []FlowState) error
}

// BucketFilter returns an export filter accepting exactly the flows whose
// bucket is in the given set — the filter the rebalancer uses to move a
// bucket range between replicas.
func BucketFilter(buckets map[int]bool) func(FlowTuple) bool {
	return func(t FlowTuple) bool { return buckets[t.Bucket()] }
}
