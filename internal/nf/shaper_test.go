package nf

import (
	"testing"
	"time"

	"repro/internal/execenv"
	"repro/internal/netdev"
)

// manualClock is a controllable time source for shaper tests.
type manualClock struct{ t time.Duration }

func (c *manualClock) now() time.Duration { return c.t }

func TestShaperPolicesRate(t *testing.T) {
	// 8 Mbps, 1 KiB burst: at a standstill clock, exactly the burst
	// passes; advancing the clock refills rate*dt/8 bytes.
	s, err := NewShaper(8, 1) // 8 Mbps = 1e6 bytes/s; burst 1024 B
	if err != nil {
		t.Fatal(err)
	}
	clock := &manualClock{}
	s.SetClock(clock.now)

	frame := make([]byte, 512)
	frame[12], frame[13] = 0x08, 0x00
	// Burst allows two 512 B frames, then drops.
	for i := 0; i < 2; i++ {
		res, err := s.Process(0, frame)
		if err != nil || len(res.Emissions) != 1 {
			t.Fatalf("frame %d within burst dropped", i)
		}
	}
	if res, _ := s.Process(0, frame); len(res.Emissions) != 0 {
		t.Fatal("frame beyond burst passed")
	}
	// Advance 512 µs: refills 512 B at 1e6 B/s -> one more frame fits.
	clock.t += 512 * time.Microsecond
	if res, _ := s.Process(0, frame); len(res.Emissions) != 1 {
		t.Fatal("refilled tokens not granted")
	}
	if res, _ := s.Process(0, frame); len(res.Emissions) != 0 {
		t.Fatal("tokens double-spent")
	}
	passed, dropped := s.Counters()
	if passed != 3 || dropped != 2 {
		t.Errorf("counters = %d/%d, want 3/2", passed, dropped)
	}
}

func TestShaperBurstCap(t *testing.T) {
	s, _ := NewShaper(8, 1)
	clock := &manualClock{}
	s.SetClock(clock.now)
	frame := make([]byte, 1024)
	// A very long idle period must not accumulate more than one burst.
	_, _ = s.Process(0, frame) // prime
	clock.t += time.Hour
	if res, _ := s.Process(0, frame); len(res.Emissions) != 1 {
		t.Fatal("burst frame dropped")
	}
	if res, _ := s.Process(0, frame); len(res.Emissions) != 0 {
		t.Fatal("bucket exceeded burst cap after idle")
	}
}

func TestShaperBidirectional(t *testing.T) {
	s, _ := NewShaper(1000, 64)
	clock := &manualClock{}
	s.SetClock(clock.now)
	frame := make([]byte, 100)
	res, err := s.Process(1, frame)
	if err != nil || len(res.Emissions) != 1 || res.Emissions[0].Port != 0 {
		t.Fatalf("reverse direction broken: %+v, %v", res, err)
	}
	if _, err := s.Process(7, frame); err == nil {
		t.Error("bad port accepted")
	}
}

func TestShaperRequiresClock(t *testing.T) {
	s, _ := NewShaper(10, 10)
	if _, err := s.Process(0, make([]byte, 10)); err == nil {
		t.Error("clockless shaper passed traffic")
	}
}

func TestShaperConfig(t *testing.T) {
	if _, err := NewShaperFromConfig(map[string]string{}); err == nil {
		t.Error("missing rate accepted")
	}
	if _, err := NewShaperFromConfig(map[string]string{"rate_mbps": "x"}); err == nil {
		t.Error("bad rate accepted")
	}
	if _, err := NewShaperFromConfig(map[string]string{"rate_mbps": "-5"}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewShaperFromConfig(map[string]string{"rate_mbps": "10", "burst_kb": "x"}); err == nil {
		t.Error("bad burst accepted")
	}
	p, err := NewShaperFromConfig(map[string]string{"rate_mbps": "10", "burst_kb": "128"})
	if err != nil {
		t.Fatal(err)
	}
	if p.(*Shaper).burst != 128*1024 {
		t.Error("burst config ignored")
	}
}

// TestShaperFollowsVirtualClockThroughRuntime verifies the ClockUser wiring:
// a shaper inside a runtime meters against the execution environment's
// virtual clock, which advances as packets are processed.
func TestShaperFollowsVirtualClockThroughRuntime(t *testing.T) {
	clock := &execenv.VirtualClock{}
	env, err := execenv.New("shaper", execenv.FlavorNative, execenv.Default(), clock)
	if err != nil {
		t.Fatal(err)
	}
	// 100 Mbps with a tiny burst: the virtual clock advances ~2 µs per
	// 1500 B packet (kernel path, no crypto), refilling ~25 B per packet
	// at 100 Mbps, so a sustained MTU stream must be mostly dropped.
	s, _ := NewShaper(100, 2)
	rt := NewRuntime("shaper", s, env, 2)
	rt.Start()
	defer rt.Stop()
	in := netdev.NewPort("in")
	out := netdev.NewPortQueueLen("out", 4096)
	if err := netdev.Connect(in, rt.Port(0)); err != nil {
		t.Fatal(err)
	}
	if err := netdev.Connect(out, rt.Port(1)); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 1500)
	for i := 0; i < 1000; i++ {
		_ = in.Send(netdev.Frame{Data: frame})
	}
	passed, dropped := s.Counters()
	if passed+dropped != 1000 {
		t.Fatalf("counters = %d/%d", passed, dropped)
	}
	if dropped == 0 {
		t.Error("sustained over-rate stream not policed")
	}
	if passed < 2 {
		t.Error("burst not honored")
	}
	// Sanity: the pass rate should approximate rate/offered =
	// 100 Mbps / (1500B / ~1.96µs = 6122 Mbps) ~ 1.7%.
	rate := float64(passed) / 1000
	if rate > 0.10 {
		t.Errorf("pass rate %.1f%% too high for 100 Mbps policer", rate*100)
	}
}
