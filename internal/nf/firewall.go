package nf

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/pkt"
)

// Verdict is a firewall rule decision.
type Verdict int

// Verdicts.
const (
	VerdictAccept Verdict = iota
	VerdictDrop
)

func (v Verdict) String() string {
	if v == VerdictDrop {
		return "drop"
	}
	return "accept"
}

// FWRule is one stateless filter rule, in the spirit of an iptables rule.
// Zero fields are wildcards.
type FWRule struct {
	Proto   pkt.IPProtocol
	SrcCIDR string
	DstCIDR string
	SrcPort uint16
	DstPort uint16
	Verdict Verdict
}

// matches evaluates the rule against a parsed frame.
func (r FWRule) matches(ip *pkt.IPv4, l4src, l4dst uint16) bool {
	if r.Proto != 0 && ip.Protocol != r.Proto {
		return false
	}
	if r.SrcCIDR != "" && !cidrContains(r.SrcCIDR, ip.SrcIP) {
		return false
	}
	if r.DstCIDR != "" && !cidrContains(r.DstCIDR, ip.DstIP) {
		return false
	}
	if r.SrcPort != 0 && l4src != r.SrcPort {
		return false
	}
	if r.DstPort != 0 && l4dst != r.DstPort {
		return false
	}
	return true
}

func cidrContains(cidr string, a pkt.Addr) bool {
	slash := strings.IndexByte(cidr, '/')
	if slash < 0 {
		return false
	}
	base, err := pkt.ParseAddr(cidr[:slash])
	if err != nil {
		return false
	}
	bits, err := strconv.Atoi(cidr[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return false
	}
	if bits == 0 {
		return true
	}
	mask := ^uint32(0) << (32 - bits)
	return a.Uint32()&mask == base.Uint32()&mask
}

// pathTable is one isolated rule set inside a shared firewall; the paper's
// "multiple internal paths that are needed to process the above multiple
// traffic streams in isolation".
type pathTable struct {
	rules         []FWRule
	defaultPolicy Verdict
	hits, drops   uint64
}

// Firewall is a stateless bump-in-the-wire filter with mark-based internal
// paths. It is the model of a *sharable* NNF: traffic of different service
// graphs reaches the single shared instance tagged with a distinguishing
// VLAN mark (applied by the adaptation layer), and each mark selects an
// isolated rule table. Untagged traffic uses the default path, so the same
// processor also serves as an ordinary per-graph firewall.
//
// Port convention: frames received on port 0 exit port 1 and vice versa.
//
// With `conntrack: "true"` in the configuration the firewall is stateful:
// connections accepted from the inside (port 0) are recorded, and return
// traffic on port 1 matching an established connection is accepted before
// the rule tables are consulted — the iptables ESTABLISHED idiom. The
// conntrack table is exportable per flow (StatefulNF), and because
// FlowBucket is symmetric both directions of a tracked connection live in
// the same steering bucket, so the table shards cleanly across replicas.
type Firewall struct {
	mu    sync.RWMutex
	def   pathTable
	paths map[uint16]*pathTable

	conntrack bool
	conns     map[FlowTuple]struct{} // established, keyed by the inside-originated direction
}

// NewFirewall returns a firewall whose default path accepts everything.
func NewFirewall() *Firewall {
	return &Firewall{paths: make(map[uint16]*pathTable), conns: make(map[FlowTuple]struct{})}
}

// NewFirewallFromConfig builds a firewall from an NF-FG configuration map:
//
//	default: "accept" (default) or "drop"
//	rules:   semicolon-separated rules, each
//	         "<accept|drop> [proto=udp|tcp|icmp|esp] [src=CIDR] [dst=CIDR]
//	          [sport=N] [dport=N]"
func NewFirewallFromConfig(config map[string]string) (Processor, error) {
	fw := NewFirewall()
	if err := fw.Configure(config); err != nil {
		return nil, err
	}
	return fw, nil
}

// Configure implements Configurer: it replaces the default path's policy
// and rules.
func (f *Firewall) Configure(config map[string]string) error {
	var rules []FWRule
	if spec, ok := config["rules"]; ok && strings.TrimSpace(spec) != "" {
		for _, rs := range strings.Split(spec, ";") {
			rs = strings.TrimSpace(rs)
			if rs == "" {
				continue
			}
			r, err := ParseFWRule(rs)
			if err != nil {
				return err
			}
			rules = append(rules, r)
		}
	}
	policy := VerdictAccept
	switch strings.TrimSpace(config["default"]) {
	case "", "accept":
	case "drop":
		policy = VerdictDrop
	default:
		return fmt.Errorf("nf: firewall default policy %q unknown", config["default"])
	}
	ct := false
	switch strings.TrimSpace(config["conntrack"]) {
	case "", "false":
	case "true":
		ct = true
	default:
		return fmt.Errorf("nf: firewall conntrack %q must be true or false", config["conntrack"])
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.def.rules = rules
	f.def.defaultPolicy = policy
	f.conntrack = ct
	return nil
}

// ParseFWRule parses the textual rule form used in configurations.
func ParseFWRule(s string) (FWRule, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return FWRule{}, fmt.Errorf("nf: empty firewall rule")
	}
	var r FWRule
	switch fields[0] {
	case "accept":
		r.Verdict = VerdictAccept
	case "drop":
		r.Verdict = VerdictDrop
	default:
		return FWRule{}, fmt.Errorf("nf: firewall rule must start with accept/drop: %q", s)
	}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return FWRule{}, fmt.Errorf("nf: bad firewall rule token %q", f)
		}
		switch k {
		case "proto":
			switch v {
			case "udp":
				r.Proto = pkt.IPProtocolUDP
			case "tcp":
				r.Proto = pkt.IPProtocolTCP
			case "icmp":
				r.Proto = pkt.IPProtocolICMP
			case "esp":
				r.Proto = pkt.IPProtocolESP
			default:
				return FWRule{}, fmt.Errorf("nf: unknown proto %q", v)
			}
		case "src":
			r.SrcCIDR = v
		case "dst":
			r.DstCIDR = v
		case "sport", "dport":
			n, err := strconv.ParseUint(v, 10, 16)
			if err != nil {
				return FWRule{}, fmt.Errorf("nf: bad port %q", v)
			}
			if k == "sport" {
				r.SrcPort = uint16(n)
			} else {
				r.DstPort = uint16(n)
			}
		default:
			return FWRule{}, fmt.Errorf("nf: unknown firewall rule key %q", k)
		}
	}
	return r, nil
}

// SetPath installs an isolated rule table for a mark. It is called by the
// NNF adaptation layer when a new service graph starts sharing the
// instance.
func (f *Firewall) SetPath(mark uint16, rules []FWRule, defaultPolicy Verdict) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.paths[mark] = &pathTable{rules: rules, defaultPolicy: defaultPolicy}
}

// RemovePath drops a mark's rule table.
func (f *Firewall) RemovePath(mark uint16) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.paths, mark)
}

// NumPaths returns the number of installed mark paths.
func (f *Firewall) NumPaths() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.paths)
}

// Process implements Processor.
func (f *Firewall) Process(inPort int, frame []byte) (Result, error) {
	if inPort != 0 && inPort != 1 {
		return Result{}, fmt.Errorf("nf: firewall has no port %d", inPort)
	}
	outPort := 1 - inPort

	p := pkt.NewPacket(frame, pkt.LayerTypeEthernet, pkt.NoCopy)
	ipLayer, _ := p.Layer(pkt.LayerTypeIPv4).(*pkt.IPv4)
	if ipLayer == nil {
		// Non-IP (ARP etc.) passes: iptables only sees IP.
		return Result{Emissions: []Emission{{Port: outPort, Frame: frame}}}, nil
	}
	var l4src, l4dst uint16
	switch l4 := p.TransportLayer().(type) {
	case *pkt.UDP:
		l4src, l4dst = l4.SrcPort, l4.DstPort
	case *pkt.TCP:
		l4src, l4dst = l4.SrcPort, l4.DstPort
	}

	// Mark = VLAN tag, the sharable-NNF path selector.
	var mark uint16
	if v, ok := p.Layer(pkt.LayerTypeVLAN).(*pkt.VLAN); ok {
		mark = v.VLANID
	}

	tuple := FlowTuple{Proto: ipLayer.Protocol, Src: ipLayer.SrcIP, Dst: ipLayer.DstIP, SrcPort: l4src, DstPort: l4dst}

	f.mu.Lock()
	table := &f.def
	if mark != 0 {
		if t, ok := f.paths[mark]; ok {
			table = t
		}
	}
	verdict := table.defaultPolicy
	established := false
	if f.conntrack && inPort == 1 {
		// Return direction: an established inside-originated connection is
		// accepted before the rule tables run (iptables ESTABLISHED).
		rev := FlowTuple{Proto: tuple.Proto, Src: tuple.Dst, Dst: tuple.Src, SrcPort: tuple.DstPort, DstPort: tuple.SrcPort}
		_, established = f.conns[rev]
	}
	if established {
		verdict = VerdictAccept
	} else {
		for _, r := range table.rules {
			if r.matches(ipLayer, l4src, l4dst) {
				verdict = r.Verdict
				break
			}
		}
	}
	if f.conntrack && inPort == 0 && verdict == VerdictAccept {
		f.conns[tuple] = struct{}{}
	}
	table.hits++
	if verdict == VerdictDrop {
		table.drops++
	}
	f.mu.Unlock()

	if verdict == VerdictDrop {
		return Result{}, nil
	}
	return Result{Emissions: []Emission{{Port: outPort, Frame: frame}}}, nil
}

// Connections returns the number of tracked established connections.
func (f *Firewall) Connections() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.conns)
}

// ExportFlowState implements StatefulNF: one entry per tracked connection,
// keyed by the inside-originated direction.
func (f *Firewall) ExportFlowState(filter func(FlowTuple) bool) []FlowState {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []FlowState
	for t := range f.conns {
		if filter != nil && !filter(t) {
			continue
		}
		out = append(out, FlowState{Tuple: t, Kind: "conntrack"})
	}
	return out
}

// ImportFlowState implements StatefulNF. Importing is idempotent.
func (f *Firewall) ImportFlowState(states []FlowState) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, st := range states {
		if st.Kind != "conntrack" {
			continue
		}
		f.conns[st.Tuple] = struct{}{}
	}
	return nil
}

// DropFlowState removes tracked connections the filter accepts (nil drops
// all) — the source-side cleanup after a bucket migrates away.
func (f *Firewall) DropFlowState(filter func(FlowTuple) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for t := range f.conns {
		if filter == nil || filter(t) {
			delete(f.conns, t)
		}
	}
}

// PathStats returns hit/drop counters for a mark path (mark 0 = default).
func (f *Firewall) PathStats(mark uint16) (hits, drops uint64) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if mark == 0 {
		return f.def.hits, f.def.drops
	}
	if t, ok := f.paths[mark]; ok {
		return t.hits, t.drops
	}
	return 0, 0
}
