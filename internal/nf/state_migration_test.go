package nf

import (
	"testing"

	"repro/internal/pkt"
)

// encapOn pushes one cleartext frame through a gateway and returns the
// resulting ESP frame.
func encapOn(t *testing.T, gw *IPsec, payloadByte byte) []byte {
	t.Helper()
	clear := pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 40000, DstPort: 5001, PayloadLen: 64, PayloadByte: payloadByte,
	})
	res, err := gw.Process(IPsecPortPlain, clear)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emissions) != 1 {
		t.Fatalf("encap emissions = %+v", res.Emissions)
	}
	return res.Emissions[0].Frame
}

// TestIPsecSAMigration moves a live SA between gateways: export from the
// donor carries key material AND the send/anti-replay counters, so the
// recipient continues the tunnel without nonce reuse, while a naive
// re-keyed-from-scratch gateway is rejected by the peer's replay window.
func TestIPsecSAMigration(t *testing.T) {
	left, right := gatewayPair(t)

	// Advance the tunnel: 5 frames left -> right, so right's replay window
	// has seen sequence numbers 1..5.
	for i := 0; i < 5; i++ {
		wire := encapOn(t, left, byte(i))
		if _, err := right.Process(IPsecPortEncrypted, wire); err != nil {
			t.Fatalf("frame %d rejected: %v", i, err)
		}
	}

	// Migrate: export from the donor, import into an empty standby, drop
	// the donor copy (the scale/standby choreography).
	states := left.ExportFlowState(nil)
	if len(states) != 1 || states[0].Kind != "ipsec-sa" {
		t.Fatalf("export = %+v", states)
	}
	standby := NewIPsec(rmtIP, macA, macB, macA, macB)
	if err := standby.ImportFlowState(states); err != nil {
		t.Fatal(err)
	}
	left.DropFlowState(nil)
	if got := left.SADB().Len(); got != 0 {
		t.Fatalf("donor SADB len = %d after drop, want 0", got)
	}
	if _, ok := left.SADB().ByPeer(rmtIP); ok {
		t.Error("donor byPeer index survived the drop")
	}

	// The migrated SA continues where the donor stopped: its next sequence
	// number is fresh for the peer, so the frame decapsulates cleanly.
	wire := encapOn(t, standby, 0xaa)
	res, err := right.Process(IPsecPortEncrypted, wire)
	if err != nil {
		t.Fatalf("migrated SA rejected by peer: %v", err)
	}
	if len(res.Emissions) != 1 || res.Emissions[0].Port != IPsecPortPlain {
		t.Fatalf("decap emissions = %+v", res.Emissions)
	}

	// Control: a gateway re-keyed from scratch (same SPI and key, no
	// counter migration) restarts at sequence 1 — already seen, so the
	// peer's anti-replay window rejects it.
	fresh := NewIPsec(rmtIP, macA, macB, macA, macB)
	sa, err := NewSA(0x1000, gwIP, rmtIP, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.AddSA(sa); err != nil {
		t.Fatal(err)
	}
	staleWire := encapOn(t, fresh, 0xbb)
	if _, err := right.Process(IPsecPortEncrypted, staleWire); err == nil {
		t.Error("replayed sequence number accepted — counters did not migrate")
	}
}

// TestIPsecDropFlowStateFilter: a filtered drop removes only the SAs whose
// inbound tuple the filter accepts, leaving other peers' tunnels up.
func TestIPsecDropFlowStateFilter(t *testing.T) {
	gw := NewIPsec(rmtIP, macA, macB, macA, macB)
	rmt2 := pkt.Addr{203, 0, 113, 10}
	for _, sa := range []*SA{newSA(t, 0x1000), mustSA(t, 0x2000, gwIP, rmt2)} {
		if err := gw.AddSA(sa); err != nil {
			t.Fatal(err)
		}
	}
	gw.DropFlowState(func(tu FlowTuple) bool { return tu.Src == rmtIP })
	if _, ok := gw.SADB().BySPI(0x1000); ok {
		t.Error("filtered SA survived the drop")
	}
	if _, ok := gw.SADB().BySPI(0x2000); !ok {
		t.Error("unfiltered SA dropped")
	}
	if _, ok := gw.SADB().ByPeer(rmt2); !ok {
		t.Error("unfiltered peer index dropped")
	}
}

func mustSA(t *testing.T, spi uint32, local, remote pkt.Addr) *SA {
	t.Helper()
	sa, err := NewSA(spi, local, remote, testKey)
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

// TestSADBRemoveKeepsReplacementPeerIndex: removing a superseded SA must
// not evict the replacement's peer-index entry.
func TestSADBRemoveKeepsReplacementPeerIndex(t *testing.T) {
	db := NewSADB()
	old := newSA(t, 1)
	if err := db.Add(old); err != nil {
		t.Fatal(err)
	}
	repl := newSA(t, 2) // same peer, rekeyed SPI
	db.Put(repl)
	db.Remove(1)
	if got, ok := db.ByPeer(rmtIP); !ok || got != repl {
		t.Fatalf("peer index after removing the superseded SA = %v, %v", got, ok)
	}
	db.Remove(2)
	if _, ok := db.ByPeer(rmtIP); ok {
		t.Error("peer index survived removing the last SA")
	}
	db.Remove(99) // unknown SPI is a no-op
	if db.Len() != 0 {
		t.Errorf("len = %d", db.Len())
	}
}
