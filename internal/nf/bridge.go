package nf

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/pkt"
)

// Bridge is a MAC-learning Ethernet switch, the NF equivalent of Linux's
// native linuxbridge cited by the paper. It learns source MACs per port and
// forwards to the learned port, flooding unknown and broadcast destinations.
type Bridge struct {
	nPorts int

	mu  sync.RWMutex
	fdb map[pkt.MAC]int // forwarding database: MAC -> port
}

// NewBridge builds a bridge with nPorts ports (minimum 2).
func NewBridge(nPorts int) (*Bridge, error) {
	if nPorts < 2 {
		return nil, fmt.Errorf("nf: bridge needs at least 2 ports, got %d", nPorts)
	}
	return &Bridge{nPorts: nPorts, fdb: make(map[pkt.MAC]int)}, nil
}

// NewBridgeFromConfig builds a bridge from an NF-FG configuration map:
//
//	ports: number of ports (default 2)
func NewBridgeFromConfig(config map[string]string) (Processor, error) {
	n := 2
	if v, ok := config["ports"]; ok {
		parsed, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("nf: bridge bad ports %q", v)
		}
		n = parsed
	}
	return NewBridge(n)
}

// FDBSize returns the number of learned addresses.
func (b *Bridge) FDBSize() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.fdb)
}

// Lookup returns the port a MAC was learned on.
func (b *Bridge) Lookup(mac pkt.MAC) (int, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	p, ok := b.fdb[mac]
	return p, ok
}

// Process implements Processor.
func (b *Bridge) Process(inPort int, frame []byte) (Result, error) {
	if inPort < 0 || inPort >= b.nPorts {
		return Result{}, fmt.Errorf("nf: bridge has no port %d", inPort)
	}
	var eth pkt.Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		return Result{}, err
	}
	// Learn the source.
	if !eth.SrcMAC.IsMulticast() {
		b.mu.Lock()
		b.fdb[eth.SrcMAC] = inPort
		b.mu.Unlock()
	}
	// Forward.
	if !eth.DstMAC.IsBroadcast() && !eth.DstMAC.IsMulticast() {
		b.mu.RLock()
		port, known := b.fdb[eth.DstMAC]
		b.mu.RUnlock()
		if known {
			if port == inPort {
				return Result{}, nil // already on the right segment
			}
			return Result{Emissions: []Emission{{Port: port, Frame: frame}}}, nil
		}
	}
	// Flood.
	var out []Emission
	for p := 0; p < b.nPorts; p++ {
		if p != inPort {
			out = append(out, Emission{Port: p, Frame: frame})
		}
	}
	return Result{Emissions: out}, nil
}
