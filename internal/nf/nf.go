// Package nf implements the network functions that run on the compute node:
// the IPsec ESP gateway used in the paper's validation, plus the classic
// native functions the paper cites (firewall/iptables, bridge/linuxbridge,
// NAT) and supporting functions (router, monitor).
//
// A network function is a Processor: pure packet-in, packets-out logic. The
// Runtime binds a Processor to an execution environment (which charges
// per-packet flavor costs to a virtual clock) and to a set of netdev ports
// (which the compute driver wires to a Logical Switch Instance).
package nf

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/execenv"
	"repro/internal/netdev"
)

// Emission is one frame sent out of one NF port.
type Emission struct {
	Port  int
	Frame []byte
}

// Result is what a Processor produces for one input frame.
type Result struct {
	Emissions []Emission
	// CryptoBytes reports how many bytes underwent cryptographic
	// transformation, feeding the execution environment cost model.
	CryptoBytes int
}

// Processor is the packet-processing logic of a network function.
type Processor interface {
	// Process handles one frame received on port inPort.
	Process(inPort int, frame []byte) (Result, error)
}

// Configurer is implemented by processors that accept configuration updates
// at runtime (the NF-FG "configuration" section on graph update).
type Configurer interface {
	Configure(config map[string]string) error
}

// Stats are the aggregate counters of a running NF.
type Stats struct {
	RxPackets, TxPackets uint64
	Errors               uint64
}

// Runtime is a running network function: processor + execution environment
// + ports. Frames arriving on any port are processed synchronously in the
// sender's goroutine (run-to-completion), matching the netdev handler model.
type Runtime struct {
	name string
	proc Processor
	env  *execenv.Env

	ports []*netdev.Port

	rx, tx, errs atomic.Uint64
	running      atomic.Bool
}

// NewRuntime creates a runtime with nPorts NF-side ports named
// "<name>.<i>". The caller connects them to switch ports.
func NewRuntime(name string, proc Processor, env *execenv.Env, nPorts int) *Runtime {
	r := &Runtime{name: name, proc: proc, env: env}
	for i := 0; i < nPorts; i++ {
		r.ports = append(r.ports, netdev.NewPort(fmt.Sprintf("%s.%d", name, i)))
	}
	// Time-dependent processors (token buckets, ...) follow the
	// environment's virtual clock.
	if cu, ok := proc.(ClockUser); ok {
		cu.SetClock(env.Clock().Now)
	}
	return r
}

// Name returns the NF instance name.
func (r *Runtime) Name() string { return r.name }

// Env returns the execution environment.
func (r *Runtime) Env() *execenv.Env { return r.env }

// NumPorts returns the number of NF ports.
func (r *Runtime) NumPorts() int { return len(r.ports) }

// Port returns the i-th NF-side port.
func (r *Runtime) Port(i int) *netdev.Port {
	if i < 0 || i >= len(r.ports) {
		return nil
	}
	return r.ports[i]
}

// Processor returns the packet-processing logic, for Configure calls.
func (r *Runtime) Processor() Processor { return r.proc }

// Start boots the execution environment and begins receiving.
func (r *Runtime) Start() {
	if r.running.Swap(true) {
		return
	}
	r.env.Start()
	for i, p := range r.ports {
		i := i
		p.SetHandler(func(f netdev.Frame) { r.receive(i, f) })
	}
}

// Stop quiesces the NF: handlers are removed and the environment stops.
func (r *Runtime) Stop() {
	if !r.running.Swap(false) {
		return
	}
	for _, p := range r.ports {
		p.SetHandler(nil)
	}
	r.env.Stop()
}

// Running reports whether the NF is processing traffic.
func (r *Runtime) Running() bool { return r.running.Load() }

func (r *Runtime) receive(inPort int, f netdev.Frame) {
	if !r.running.Load() {
		return
	}
	r.rx.Add(1)
	res, err := r.proc.Process(inPort, f.Data)
	if err != nil {
		r.errs.Add(1)
		return
	}
	// Charge the flavor cost once per input frame.
	r.env.ProcessPacket(f.Data, res.CryptoBytes)
	for _, e := range res.Emissions {
		if e.Port < 0 || e.Port >= len(r.ports) {
			r.errs.Add(1)
			continue
		}
		r.tx.Add(1)
		_ = r.ports[e.Port].Send(netdev.Frame{Data: e.Frame, Hops: f.Hops})
	}
}

// Stats returns the runtime counters.
func (r *Runtime) Stats() Stats {
	return Stats{
		RxPackets: r.rx.Load(),
		TxPackets: r.tx.Load(),
		Errors:    r.errs.Load(),
	}
}

// Factory builds a Processor from an NF-FG configuration map.
type Factory func(config map[string]string) (Processor, error)

// Registry maps NF template names to factories. It is the in-process
// counterpart of the paper's "VNF repository" entry point used by drivers.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a factory under a template name.
func (r *Registry) Register(name string, f Factory) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("nf: factory %q already registered", name)
	}
	r.factories[name] = f
	return nil
}

// Build instantiates a Processor by template name.
func (r *Registry) Build(name string, config map[string]string) (Processor, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("nf: unknown NF template %q", name)
	}
	return f(config)
}

// Names returns the registered template names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefaultRegistry returns a registry with every NF in this package
// registered under its canonical template name.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(r.Register("ipsec", NewIPsecFromConfig))
	must(r.Register("firewall", NewFirewallFromConfig))
	must(r.Register("nat", NewNATFromConfig))
	must(r.Register("bridge", NewBridgeFromConfig))
	must(r.Register("router", NewRouterFromConfig))
	must(r.Register("monitor", NewMonitorFromConfig))
	must(r.Register("shaper", NewShaperFromConfig))
	return r
}
