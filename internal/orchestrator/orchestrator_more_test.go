package orchestrator

import (
	"testing"

	"repro/internal/nffg"
	"repro/internal/pkt"
)

// chainGraph builds eth0 -> nf -> eth1 with symmetric return rules.
func chainGraph(id, nfName string, tech nffg.Technology, cfg map[string]string) *nffg.Graph {
	return &nffg.Graph{
		ID: id,
		NFs: []nffg.NF{{
			ID: "nf", Name: nfName,
			Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
			TechnologyPreference: tech,
			Config:               cfg,
		}},
		Endpoints: []nffg.Endpoint{
			{ID: "in", Type: nffg.EPInterface, Interface: "eth0"},
			{ID: "out", Type: nffg.EPInterface, Interface: "eth1"},
		},
		Rules: []nffg.FlowRule{
			{ID: "r1", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.EndpointRef("in")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("nf", "0")}}},
			{ID: "r2", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.NFPortRef("nf", "1")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("out")}}},
			{ID: "r3", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.EndpointRef("out")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("nf", "1")}}},
			{ID: "r4", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.NFPortRef("nf", "0")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("in")}}},
		},
	}
}

// TestIntentConfiguredNNFThroughOrchestrator deploys a native firewall
// configured only through the generic intent vocabulary (the paper's
// future-work mechanism) and verifies enforcement end to end.
func TestIntentConfiguredNNFThroughOrchestrator(t *testing.T) {
	o := newNode(t)
	g := chainGraph("intents", "firewall", nffg.TechNative, map[string]string{
		"intent.block":  "udp/53",
		"intent.policy": "allow",
	})
	if err := o.Deploy(g); err != nil {
		t.Fatal(err)
	}
	dns := pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.Addr{10, 0, 0, 1}, DstIP: pkt.Addr{8, 8, 8, 8},
		SrcPort: 5353, DstPort: 53, PayloadLen: 40,
	})
	send(t, o, "eth0", dns)
	if _, ok := recv(t, o, "eth1"); ok {
		t.Error("intent.block not enforced through full deployment")
	}
	send(t, o, "eth0", clearFrame(t))
	if _, ok := recv(t, o, "eth1"); !ok {
		t.Error("allowed traffic dropped")
	}
	// Bad intents must fail the deploy, not silently pass.
	bad := chainGraph("bad-intents", "firewall", nffg.TechNative, map[string]string{
		"intent.block": "warp/99",
	})
	if err := o.Deploy(bad); err == nil {
		t.Error("bad intent accepted")
	}
}

// TestShaperChainPolices deploys a native shaper and verifies the policer
// drops a sustained over-rate stream measured on the virtual clock.
func TestShaperChainPolices(t *testing.T) {
	o := newNode(t)
	g := chainGraph("limited", "shaper", nffg.TechNative, map[string]string{
		"rate_mbps": "100",
		"burst_kb":  "3",
	})
	if err := o.Deploy(g); err != nil {
		t.Fatal(err)
	}
	outPort, _ := o.InterfacePort("eth1")
	passed := 0
	for i := 0; i < 500; i++ {
		send(t, o, "eth0", clearFrame(t))
		for {
			if _, ok := outPort.TryRecv(); !ok {
				break
			}
			passed++
		}
	}
	if passed == 0 {
		t.Fatal("shaper blocked everything (burst should pass)")
	}
	if passed > 250 {
		t.Errorf("shaper passed %d/500 of a stream far above its rate", passed)
	}
}

// TestUpdateFailureKeepsOldGraphRunning injects a failure into Update (an
// added NF with invalid configuration) and verifies the deployed service
// keeps forwarding.
func TestUpdateFailureKeepsOldGraphRunning(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("g1", nffg.TechNative)); err != nil {
		t.Fatal(err)
	}
	upd := ipsecGraph("g1", nffg.TechNative)
	upd.NFs = append(upd.NFs, nffg.NF{
		ID: "broken", Name: "ipsec",
		Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
		TechnologyPreference: nffg.TechDocker,
		Config:               map[string]string{"local": "not-an-ip"},
	})
	upd.Rules = append(upd.Rules, nffg.FlowRule{
		ID: "rb", Priority: 1,
		Match:   nffg.RuleMatch{PortIn: nffg.NFPortRef("broken", "0")},
		Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("lan")}},
	})
	if err := o.Update(upd); err == nil {
		t.Fatal("update with broken NF accepted")
	}
	// The original chain still works.
	send(t, o, "eth0", clearFrame(t))
	if _, ok := recv(t, o, "eth1"); !ok {
		t.Error("original service broken by failed update")
	}
}

// TestUpdateEndpointChangeInPlace changes a deployed graph's endpoint from a
// plain interface to a VLAN sub-interface without redeploying, and verifies
// the restitched datapath end-to-end: the global scheduler relies on this
// when it moves cross-node stitches.
func TestUpdateEndpointChangeInPlace(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("g1", nffg.TechNative)); err != nil {
		t.Fatal(err)
	}
	upd := ipsecGraph("g1", nffg.TechNative)
	upd.Endpoints[1] = nffg.Endpoint{ID: "wan", Type: nffg.EPVLAN, Interface: "eth1", VLANID: 9}
	if err := o.Update(upd); err != nil {
		t.Fatalf("in-place endpoint change rejected: %v", err)
	}
	// LAN traffic now leaves eth1 tagged with the new endpoint's VLAN.
	send(t, o, "eth0", clearFrame(t))
	wire, ok := recv(t, o, "eth1")
	if !ok {
		t.Fatal("nothing emitted on the WAN side after endpoint change")
	}
	p := pkt.NewPacket(wire, pkt.LayerTypeEthernet, pkt.Default)
	vlan, isVLAN := p.Layer(pkt.LayerTypeVLAN).(*pkt.VLAN)
	if !isVLAN {
		t.Fatalf("WAN traffic not VLAN-tagged after endpoint change: %v", p)
	}
	if vlan.VLANID != 9 {
		t.Errorf("WAN VLAN id = %d, want 9", vlan.VLANID)
	}
	// The old untagged classification is gone: tagged return traffic still
	// reaches the graph, and a second update restoring the interface
	// endpoint works too.
	if err := o.Update(ipsecGraph("g1", nffg.TechNative)); err != nil {
		t.Fatalf("restoring interface endpoint: %v", err)
	}
	send(t, o, "eth0", clearFrame(t))
	wire, ok = recv(t, o, "eth1")
	if !ok {
		t.Fatal("nothing emitted after restoring the interface endpoint")
	}
	q := pkt.NewPacket(wire, pkt.LayerTypeEthernet, pkt.Default)
	if q.Layer(pkt.LayerTypeVLAN) != nil {
		t.Error("WAN traffic still VLAN-tagged after restoring interface endpoint")
	}
}

// TestFlowStatsThroughController reads per-rule counters over the OpenFlow
// channel of a deployed graph.
func TestFlowStatsThroughController(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("g1", nffg.TechNative)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		send(t, o, "eth0", clearFrame(t))
		_, _ = recv(t, o, "eth1")
	}
	d, _ := o.Graph("g1")
	stats, err := d.Controller().FlowStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("stats entries = %d, want 4 rules", len(stats))
	}
	var hits uint64
	for _, s := range stats {
		hits += s.Packets
	}
	// r1 (lan->vpn) and r2 (vpn->wan) each saw 5 packets.
	if hits != 10 {
		t.Errorf("total rule hits = %d, want 10", hits)
	}
}

// TestInterfacePortsIsolatedPerNode ensures two nodes do not share state.
func TestInterfacePortsIsolatedPerNode(t *testing.T) {
	a := newNode(t)
	b := newNode(t)
	if err := a.Deploy(ipsecGraph("g", nffg.TechNative)); err != nil {
		t.Fatal(err)
	}
	// The same exclusive NNF is free on node b: separate managers.
	if err := b.Deploy(ipsecGraph("g", nffg.TechNative)); err != nil {
		t.Fatal(err)
	}
	send(t, a, "eth0", clearFrame(t))
	if _, ok := recv(t, b, "eth1"); ok {
		t.Error("traffic crossed between nodes")
	}
	if _, ok := recv(t, a, "eth1"); !ok {
		t.Error("traffic lost on its own node")
	}
}

// TestManyGraphsStress deploys and tears down a batch of graphs, checking
// for leaks in LSI-0 state.
func TestManyGraphsStress(t *testing.T) {
	o := newNode(t)
	baseFlows := len(o.LSI0().Flows())
	basePorts := len(o.LSI0().Ports())
	for round := 0; round < 3; round++ {
		ids := []string{}
		for i := 0; i < 8; i++ {
			id := string(rune('a'+round)) + string(rune('0'+i))
			g := firewallGraph(id, uint16(400+round*10+i), "")
			if err := o.Deploy(g); err != nil {
				t.Fatalf("round %d graph %s: %v", round, id, err)
			}
			ids = append(ids, id)
		}
		if got := len(o.GraphIDs()); got != 8 {
			t.Fatalf("deployed %d, want 8", got)
		}
		for _, id := range ids {
			if err := o.Undeploy(id); err != nil {
				t.Fatal(err)
			}
		}
		if got := len(o.LSI0().Flows()); got != baseFlows {
			t.Fatalf("round %d: LSI-0 flows leaked: %d -> %d", round, baseFlows, got)
		}
		if got := len(o.LSI0().Ports()); got != basePorts {
			t.Fatalf("round %d: LSI-0 ports leaked: %d -> %d", round, basePorts, got)
		}
	}
}
