package orchestrator

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vswitch"
)

// Topology is a snapshot of the node's runtime object graph — the live
// counterpart of the paper's Figure 1.
type Topology struct {
	NodeName   string
	Interfaces []string
	LSI0       LSIInfo
	Graphs     []GraphInfo
}

// LSIInfo describes one switch, including its fast-path microflow-cache
// counters alongside the flow-table size.
type LSIInfo struct {
	Name  string
	DPID  uint64
	Ports []uint32
	Flows int
	Cache vswitch.CacheStats
}

// lsiInfo snapshots one switch into an LSIInfo.
func lsiInfo(sw *vswitch.Switch) LSIInfo {
	return LSIInfo{
		Name:  sw.Name(),
		DPID:  sw.DPID(),
		Ports: sw.Ports(),
		Flows: len(sw.Flows()),
		Cache: sw.CacheStats(),
	}
}

// GraphInfo describes one deployed graph.
type GraphInfo struct {
	ID  string
	LSI LSIInfo
	NFs []NFInfo
}

// NFInfo describes one running NF.
type NFInfo struct {
	ID         string
	Instance   string
	Technology string
	// State is the NF's lifecycle state ("running", "draining", ...).
	State    string
	Shared   bool
	RAMBytes uint64
}

// Topology captures the current node state.
func (o *Orchestrator) Topology() Topology {
	o.mu.Lock()
	defer o.mu.Unlock()
	t := Topology{
		NodeName:   o.cfg.NodeName,
		Interfaces: append([]string(nil), o.cfg.Interfaces...),
		LSI0:       lsiInfo(o.lsi0.sw),
	}
	ids := make([]string, 0, len(o.graphs))
	for id := range o.graphs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		d := o.graphs[id]
		gi := GraphInfo{
			ID:  id,
			LSI: lsiInfo(d.lsi.sw),
		}
		nfIDs := make([]string, 0, len(d.nfs))
		for nfID := range d.nfs {
			nfIDs = append(nfIDs, nfID)
		}
		sort.Strings(nfIDs)
		for _, nfID := range nfIDs {
			att := d.nfs[nfID]
			gi.NFs = append(gi.NFs, NFInfo{
				ID:         nfID,
				Instance:   att.inst.Runtime.Name(),
				Technology: string(att.inst.Technology),
				State:      string(att.State()),
				Shared:     att.inst.Shared,
				RAMBytes:   att.inst.RAM(),
			})
		}
		t.Graphs = append(t.Graphs, gi)
	}
	return t
}

// DOT renders the topology in Graphviz format, regenerating the structure
// of the paper's Figure 1 from the live node.
func (t Topology) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=BT;\n", t.NodeName)
	fmt.Fprintf(&b, "  lsi0 [shape=box label=\"LSI-0\\n%s (dpid %#x)\\n%d flows\"];\n",
		t.LSI0.Name, t.LSI0.DPID, t.LSI0.Flows)
	for _, ifName := range t.Interfaces {
		id := sanitizeDOT("if_" + ifName)
		fmt.Fprintf(&b, "  %s [shape=ellipse label=%q];\n  %s -> lsi0;\n", id, ifName, id)
	}
	for _, g := range t.Graphs {
		gid := sanitizeDOT("lsi_" + g.ID)
		fmt.Fprintf(&b, "  %s [shape=box label=\"LSI %s (dpid %#x)\\n%d flows\"];\n",
			gid, g.ID, g.LSI.DPID, g.LSI.Flows)
		fmt.Fprintf(&b, "  lsi0 -> %s [dir=both label=\"virtual link\"];\n", gid)
		for _, n := range g.NFs {
			nid := sanitizeDOT("nf_" + g.ID + "_" + n.ID)
			shape := "component"
			kind := strings.ToUpper(n.Technology)
			if n.Technology == "native" {
				kind = "NNF"
			}
			label := fmt.Sprintf("%s\\n%s (%s)", n.ID, kind, fmtMB(n.RAMBytes))
			if n.Shared {
				label += "\\n[shared]"
				fmt.Fprintf(&b, "  %s [shape=%s label=\"%s\"];\n  lsi0 -> %s [dir=both];\n",
					nid, shape, label, nid)
			} else {
				fmt.Fprintf(&b, "  %s [shape=%s label=\"%s\"];\n  %s -> %s [dir=both];\n",
					nid, shape, label, gid, nid)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the topology as indented text.
func (t Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NFV Compute Node %q\n", t.NodeName)
	fmt.Fprintf(&b, "  %s  dpid=%#x ports=%v flows=%d\n",
		t.LSI0.Name, t.LSI0.DPID, t.LSI0.Ports, t.LSI0.Flows)
	for _, ifName := range t.Interfaces {
		fmt.Fprintf(&b, "    interface %s\n", ifName)
	}
	for _, g := range t.Graphs {
		fmt.Fprintf(&b, "  graph %s: %s dpid=%#x ports=%v flows=%d\n",
			g.ID, g.LSI.Name, g.LSI.DPID, g.LSI.Ports, g.LSI.Flows)
		for _, n := range g.NFs {
			shared := ""
			if n.Shared {
				shared = " [shared NNF on LSI-0]"
			}
			fmt.Fprintf(&b, "    NF %s -> %s (%s, %s)%s\n",
				n.ID, n.Instance, n.Technology, fmtMB(n.RAMBytes), shared)
		}
	}
	return b.String()
}

func fmtMB(b uint64) string {
	return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
}

func sanitizeDOT(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
