package orchestrator

import (
	"strings"
	"testing"

	"repro/internal/compute"
	"repro/internal/execenv"
	"repro/internal/imagestore"
	"repro/internal/netdev"
	"repro/internal/netns"
	"repro/internal/nf"
	"repro/internal/nffg"
	"repro/internal/nnf"
	"repro/internal/pkt"
	"repro/internal/repository"
	"repro/internal/resources"
)

const gb = 1 << 30

// newNode assembles a complete compute node for tests.
func newNode(t *testing.T, interfaces ...string) *Orchestrator {
	t.Helper()
	if len(interfaces) == 0 {
		interfaces = []string{"eth0", "eth1"}
	}
	store := imagestore.NewStore()
	if err := repository.DefaultImages(store); err != nil {
		t.Fatal(err)
	}
	pool := resources.NewPool(16000, 8*gb)
	for _, c := range []resources.Capability{
		"kvm", "docker", "dpdk",
		"nnf:ipsec", "nnf:firewall", "nnf:nat", "nnf:bridge", "nnf:router", "nnf:monitor", "nnf:shaper",
	} {
		pool.AddCapability(c)
	}
	clock := &execenv.VirtualClock{}
	deps := compute.Deps{
		NFs:       nf.DefaultRegistry(),
		Images:    store,
		Resources: pool,
		Model:     execenv.Default(),
		Clock:     clock,
	}
	nnfMgr := nnf.NewManager(nnf.Builtins(), netns.NewRegistry(), deps.Model, clock)
	cmgr := compute.NewManager()
	mustDriver := func(d compute.Driver, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if err := cmgr.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	mustDriver(compute.NewVMDriver(deps))
	mustDriver(compute.NewDockerDriver(deps))
	mustDriver(compute.NewDPDKDriver(deps))
	mustDriver(compute.NewNativeDriver(deps, nnfMgr))

	o, err := New(Config{
		NodeName:   "cpe",
		Interfaces: interfaces,
		Resources:  pool,
		Repo:       repository.Default(),
		Compute:    cmgr,
		Clock:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	return o
}

func ipsecConfig() map[string]string {
	return map[string]string{
		"local":  "192.0.2.1",
		"remote": "203.0.113.9",
		"spi":    "4096",
		"key":    "000102030405060708090a0b0c0d0e0f10111213",
	}
}

// ipsecGraph is the paper's CPE use case: cleartext LAN on eth0, ESP WAN on
// eth1.
func ipsecGraph(id string, tech nffg.Technology) *nffg.Graph {
	return &nffg.Graph{
		ID:   id,
		Name: "ipsec-cpe",
		NFs: []nffg.NF{{
			ID: "vpn", Name: "ipsec",
			Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
			TechnologyPreference: tech,
			Config:               ipsecConfig(),
		}},
		Endpoints: []nffg.Endpoint{
			{ID: "lan", Type: nffg.EPInterface, Interface: "eth0"},
			{ID: "wan", Type: nffg.EPInterface, Interface: "eth1"},
		},
		Rules: []nffg.FlowRule{
			{ID: "r1", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.EndpointRef("lan")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("vpn", "0")}}},
			{ID: "r2", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.NFPortRef("vpn", "1")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("wan")}}},
			{ID: "r3", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.EndpointRef("wan")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("vpn", "1")}}},
			{ID: "r4", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.NFPortRef("vpn", "0")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("lan")}}},
		},
	}
}

func clearFrame(t *testing.T) []byte {
	t.Helper()
	return pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.Addr{10, 0, 0, 1}, DstIP: pkt.Addr{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 5001, PayloadLen: 200, PayloadByte: 0x42,
	})
}

func send(t *testing.T, o *Orchestrator, iface string, data []byte) {
	t.Helper()
	p, ok := o.InterfacePort(iface)
	if !ok {
		t.Fatalf("no interface %q", iface)
	}
	if err := p.Send(netdev.Frame{Data: data}); err != nil {
		t.Fatal(err)
	}
}

func recv(t *testing.T, o *Orchestrator, iface string) ([]byte, bool) {
	t.Helper()
	p, ok := o.InterfacePort(iface)
	if !ok {
		t.Fatalf("no interface %q", iface)
	}
	f, got := p.TryRecv()
	return f.Data, got
}

func TestDeployIPsecEndToEnd(t *testing.T) {
	for _, tech := range []nffg.Technology{nffg.TechNative, nffg.TechDocker, nffg.TechVM} {
		t.Run(string(tech), func(t *testing.T) {
			o := newNode(t)
			g := ipsecGraph("g-"+string(tech), tech)
			if err := o.Deploy(g); err != nil {
				t.Fatal(err)
			}
			// Cleartext in on eth0 -> ESP out on eth1.
			send(t, o, "eth0", clearFrame(t))
			wire, ok := recv(t, o, "eth1")
			if !ok {
				t.Fatal("nothing emitted on the WAN side")
			}
			p := pkt.NewPacket(wire, pkt.LayerTypeEthernet, pkt.Default)
			if p.Layer(pkt.LayerTypeESP) == nil {
				t.Fatalf("WAN traffic not ESP: %v", p)
			}
			// And back: ESP in on eth1 -> cleartext out on eth0.
			send(t, o, "eth1", wire)
			back, ok := recv(t, o, "eth0")
			if !ok {
				t.Fatal("nothing decapsulated on the LAN side")
			}
			q := pkt.NewPacket(back, pkt.LayerTypeEthernet, pkt.Default)
			udp, isUDP := q.Layer(pkt.LayerTypeUDP).(*pkt.UDP)
			if !isUDP || udp.DstPort != 5001 {
				t.Fatalf("decapsulated traffic damaged: %v", q)
			}
			// Verify the placement matches the request.
			d, _ := o.Graph(g.ID)
			if d.Instances()["vpn"].Technology != tech {
				t.Errorf("placed as %v, want %v", d.Instances()["vpn"].Technology, tech)
			}
		})
	}
}

func TestSchedulerPrefersNativeThenFallsBack(t *testing.T) {
	o := newNode(t)
	// No preference: scheduler must choose native (cheapest).
	g1 := ipsecGraph("g1", nffg.TechAny)
	if err := o.Deploy(g1); err != nil {
		t.Fatal(err)
	}
	d1, _ := o.Graph("g1")
	if got := d1.Instances()["vpn"].Technology; got != nffg.TechNative {
		t.Fatalf("first graph placed as %v, want native", got)
	}
	// Second graph: the exclusive ipsec NNF is busy -> docker fallback,
	// the paper's placement logic in action.
	g2 := ipsecGraph("g2", nffg.TechAny)
	if err := o.Deploy(g2); err != nil {
		t.Fatal(err)
	}
	d2, _ := o.Graph("g2")
	if got := d2.Instances()["vpn"].Technology; got != nffg.TechDocker {
		t.Fatalf("second graph placed as %v, want docker fallback", got)
	}
	// Release the first graph; a third deploys native again.
	if err := o.Undeploy("g1"); err != nil {
		t.Fatal(err)
	}
	g3 := ipsecGraph("g3", nffg.TechAny)
	if err := o.Deploy(g3); err != nil {
		t.Fatal(err)
	}
	d3, _ := o.Graph("g3")
	if got := d3.Instances()["vpn"].Technology; got != nffg.TechNative {
		t.Fatalf("third graph placed as %v, want native", got)
	}
}

func TestSchedulerPlacementMatrix(t *testing.T) {
	// Experiment A5: placement under constrained nodes.
	cases := []struct {
		name       string
		caps       []resources.Capability
		preference nffg.Technology
		wantTech   nffg.Technology
		wantErr    bool
	}{
		{"all caps, any -> native", []resources.Capability{"kvm", "docker", "nnf:ipsec"}, nffg.TechAny, nffg.TechNative, false},
		{"no nnf, any -> docker", []resources.Capability{"kvm", "docker"}, nffg.TechAny, nffg.TechDocker, false},
		{"kvm only, any -> vm", []resources.Capability{"kvm"}, nffg.TechAny, nffg.TechVM, false},
		{"no caps, any -> error", nil, nffg.TechAny, "", true},
		{"pinned vm without kvm -> error", []resources.Capability{"docker"}, nffg.TechVM, "", true},
		{"pinned docker", []resources.Capability{"kvm", "docker", "nnf:ipsec"}, nffg.TechDocker, nffg.TechDocker, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			store := imagestore.NewStore()
			_ = repository.DefaultImages(store)
			pool := resources.NewPool(16000, 8*gb)
			for _, cap := range c.caps {
				pool.AddCapability(cap)
			}
			clock := &execenv.VirtualClock{}
			deps := compute.Deps{NFs: nf.DefaultRegistry(), Images: store, Resources: pool,
				Model: execenv.Default(), Clock: clock}
			nnfMgr := nnf.NewManager(nnf.Builtins(), netns.NewRegistry(), deps.Model, clock)
			cmgr := compute.NewManager()
			vm, _ := compute.NewVMDriver(deps)
			docker, _ := compute.NewDockerDriver(deps)
			native, _ := compute.NewNativeDriver(deps, nnfMgr)
			_ = cmgr.Register(vm)
			_ = cmgr.Register(docker)
			_ = cmgr.Register(native)
			o, err := New(Config{NodeName: "n", Interfaces: []string{"eth0", "eth1"},
				Resources: pool, Repo: repository.Default(), Compute: cmgr, Clock: clock})
			if err != nil {
				t.Fatal(err)
			}
			defer o.Close()
			err = o.Deploy(ipsecGraph("g", c.preference))
			if c.wantErr {
				if err == nil {
					t.Fatal("deploy succeeded, want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			d, _ := o.Graph("g")
			if got := d.Instances()["vpn"].Technology; got != c.wantTech {
				t.Errorf("placed as %v, want %v", got, c.wantTech)
			}
		})
	}
}

// firewallGraph chains a firewall between two VLAN endpoints on eth0/eth1.
func firewallGraph(id string, vlanBase uint16, rules string) *nffg.Graph {
	return &nffg.Graph{
		ID: id,
		NFs: []nffg.NF{{
			ID: "fw", Name: "firewall",
			Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
			TechnologyPreference: nffg.TechNative,
			Config:               map[string]string{"rules": rules},
		}},
		Endpoints: []nffg.Endpoint{
			{ID: "in", Type: nffg.EPVLAN, Interface: "eth0", VLANID: vlanBase},
			{ID: "out", Type: nffg.EPVLAN, Interface: "eth1", VLANID: vlanBase},
		},
		Rules: []nffg.FlowRule{
			{ID: "r1", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.EndpointRef("in")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("fw", "0")}}},
			{ID: "r2", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.NFPortRef("fw", "1")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("out")}}},
			{ID: "r3", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.EndpointRef("out")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("fw", "1")}}},
			{ID: "r4", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.NFPortRef("fw", "0")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("in")}}},
		},
	}
}

func vlanFrame(t *testing.T, vlan uint16, dport uint16) []byte {
	t.Helper()
	return pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		VLANID: vlan,
		SrcIP:  pkt.Addr{10, 0, 0, 1}, DstIP: pkt.Addr{10, 0, 0, 2},
		SrcPort: 1234, DstPort: dport, PayloadLen: 64,
	})
}

func TestSharedNNFTwoGraphsIsolation(t *testing.T) {
	o := newNode(t)
	// Graph A (customer VLAN 100) blocks DNS; graph B (VLAN 200) allows
	// everything. Both share one native firewall via marks.
	if err := o.Deploy(firewallGraph("gA", 100, "drop proto=udp dport=53")); err != nil {
		t.Fatal(err)
	}
	if err := o.Deploy(firewallGraph("gB", 200, "")); err != nil {
		t.Fatal(err)
	}
	dA, _ := o.Graph("gA")
	dB, _ := o.Graph("gB")
	instA := dA.Instances()["fw"]
	instB := dB.Instances()["fw"]
	if !instA.Shared || !instB.Shared {
		t.Fatal("firewall not deployed as shared NNF")
	}
	if instA.Runtime != instB.Runtime {
		t.Fatal("graphs did not share the NNF instance")
	}

	// Graph A: DNS blocked, HTTP passes.
	send(t, o, "eth0", vlanFrame(t, 100, 53))
	if _, got := recv(t, o, "eth1"); got {
		t.Error("graph A DNS leaked through shared firewall")
	}
	send(t, o, "eth0", vlanFrame(t, 100, 80))
	outA, got := recv(t, o, "eth1")
	if !got {
		t.Fatal("graph A HTTP dropped")
	}
	// Egress re-tagged with graph A's VLAN 100.
	p := pkt.NewPacket(outA, pkt.LayerTypeEthernet, pkt.Default)
	if v, ok := p.Layer(pkt.LayerTypeVLAN).(*pkt.VLAN); !ok || v.VLANID != 100 {
		t.Errorf("graph A egress VLAN wrong: %v", p)
	}

	// Graph B: DNS passes.
	send(t, o, "eth0", vlanFrame(t, 200, 53))
	outB, got := recv(t, o, "eth1")
	if !got {
		t.Fatal("graph B DNS dropped: path isolation broken")
	}
	q := pkt.NewPacket(outB, pkt.LayerTypeEthernet, pkt.Default)
	if v, ok := q.Layer(pkt.LayerTypeVLAN).(*pkt.VLAN); !ok || v.VLANID != 200 {
		t.Errorf("graph B egress VLAN wrong: %v", q)
	}
}

func TestUndeployCleansUp(t *testing.T) {
	o := newNode(t)
	usedCPU0, _, usedRAM0, _ := o.cfg.Resources.Usage()
	lsi0Flows0 := len(o.LSI0().Flows())
	if err := o.Deploy(ipsecGraph("g1", nffg.TechNative)); err != nil {
		t.Fatal(err)
	}
	if err := o.Undeploy("g1"); err != nil {
		t.Fatal(err)
	}
	usedCPU, _, usedRAM, _ := o.cfg.Resources.Usage()
	if usedCPU != usedCPU0 || usedRAM != usedRAM0 {
		t.Errorf("resource leak: %dm/%dB -> %dm/%dB", usedCPU0, usedRAM0, usedCPU, usedRAM)
	}
	if got := len(o.LSI0().Flows()); got != lsi0Flows0 {
		t.Errorf("LSI-0 flows leaked: %d -> %d", lsi0Flows0, got)
	}
	if len(o.GraphIDs()) != 0 {
		t.Error("graph still listed")
	}
	if err := o.Undeploy("g1"); err == nil {
		t.Error("double undeploy succeeded")
	}
	// The VLAN/interface reservations are free again.
	if err := o.Deploy(ipsecGraph("g1", nffg.TechNative)); err != nil {
		t.Errorf("redeploy after undeploy failed: %v", err)
	}
}

func TestDeployValidationAndConflicts(t *testing.T) {
	o := newNode(t)
	bad := ipsecGraph("", nffg.TechAny)
	if err := o.Deploy(bad); err == nil {
		t.Error("empty graph id accepted")
	}
	g := ipsecGraph("g1", nffg.TechAny)
	if err := o.Deploy(g); err != nil {
		t.Fatal(err)
	}
	if err := o.Deploy(g); err == nil {
		t.Error("duplicate deploy accepted")
	}
	// Unknown NF template.
	g2 := ipsecGraph("g2", nffg.TechAny)
	g2.NFs[0].Name = "quantum-dpi"
	if err := o.Deploy(g2); err == nil {
		t.Error("unknown template accepted")
	}
	// Unknown interface.
	g3 := ipsecGraph("g3", nffg.TechAny)
	g3.Endpoints[0].Interface = "eth9"
	if err := o.Deploy(g3); err == nil {
		t.Error("unknown interface accepted")
	}
	if _, stillThere := o.Graph("g3"); stillThere {
		t.Error("failed deploy left graph state")
	}
	// VLAN endpoint conflicts.
	if err := o.Deploy(firewallGraph("g4", 300, "")); err != nil {
		t.Fatal(err)
	}
	if err := o.Deploy(firewallGraph("g5", 300, "")); err == nil {
		t.Error("conflicting VLAN endpoint accepted")
	}
}

func TestFailedDeployRollsBackResources(t *testing.T) {
	o := newNode(t)
	before, _, beforeRAM, _ := o.cfg.Resources.Usage()
	// Two NFs; the second has a bad config so its start fails after the
	// first started.
	g := ipsecGraph("g1", nffg.TechNative)
	g.NFs = append(g.NFs, nffg.NF{
		ID: "vpn2", Name: "ipsec",
		Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
		TechnologyPreference: nffg.TechDocker,
		Config:               map[string]string{"local": "bogus"},
	})
	g.Rules = append(g.Rules, nffg.FlowRule{
		ID: "r9", Priority: 1,
		Match:   nffg.RuleMatch{PortIn: nffg.NFPortRef("vpn2", "0")},
		Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("lan")}},
	})
	if err := o.Deploy(g); err == nil {
		t.Fatal("deploy with broken NF config succeeded")
	}
	after, _, afterRAM, _ := o.cfg.Resources.Usage()
	if before != after || beforeRAM != afterRAM {
		t.Errorf("rollback leaked resources: %d/%d -> %d/%d", before, beforeRAM, after, afterRAM)
	}
	if len(o.LSI0().Flows()) != 0 {
		t.Error("rollback leaked LSI-0 flows")
	}
}

func TestUpdateGraph(t *testing.T) {
	o := newNode(t)
	g := ipsecGraph("g1", nffg.TechNative)
	if err := o.Deploy(g); err != nil {
		t.Fatal(err)
	}
	// Update: drop the wan->lan direction (remove r3/r4), keeping encap
	// only.
	upd := ipsecGraph("g1", nffg.TechNative)
	upd.Rules = upd.Rules[:2]
	if err := o.Update(upd); err != nil {
		t.Fatal(err)
	}
	send(t, o, "eth0", clearFrame(t))
	wire, ok := recv(t, o, "eth1")
	if !ok {
		t.Fatal("encap path broken after update")
	}
	send(t, o, "eth1", wire)
	if _, got := recv(t, o, "eth0"); got {
		t.Error("removed rule still forwarding")
	}
	// Update of an unknown graph fails.
	if err := o.Update(ipsecGraph("ghost", nffg.TechNative)); err == nil {
		t.Error("update of undeployed graph accepted")
	}
	// No-op update succeeds.
	if err := o.Update(upd); err != nil {
		t.Errorf("no-op update failed: %v", err)
	}
}

func TestUpdateAddAndRemoveNF(t *testing.T) {
	o := newNode(t)
	g := ipsecGraph("g1", nffg.TechNative)
	if err := o.Deploy(g); err != nil {
		t.Fatal(err)
	}
	// Add a monitor between lan and the vpn.
	upd := ipsecGraph("g1", nffg.TechNative)
	upd.NFs = append(upd.NFs, nffg.NF{
		ID: "mon", Name: "monitor",
		Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
		TechnologyPreference: nffg.TechNative,
	})
	upd.Rules[0].Actions = []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("mon", "0")}}
	upd.Rules = append(upd.Rules, nffg.FlowRule{
		ID: "r5", Priority: 10,
		Match:   nffg.RuleMatch{PortIn: nffg.NFPortRef("mon", "1")},
		Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("vpn", "0")}},
	})
	if err := o.Update(upd); err != nil {
		t.Fatal(err)
	}
	d, _ := o.Graph("g1")
	if len(d.Instances()) != 2 {
		t.Fatalf("instances = %v", d.Instances())
	}
	send(t, o, "eth0", clearFrame(t))
	if _, ok := recv(t, o, "eth1"); !ok {
		t.Fatal("chain broken after adding monitor")
	}
	// Now remove the monitor again.
	if err := o.Update(ipsecGraph("g1", nffg.TechNative)); err != nil {
		t.Fatal(err)
	}
	d, _ = o.Graph("g1")
	if len(d.Instances()) != 1 {
		t.Error("removed NF still running")
	}
	send(t, o, "eth0", clearFrame(t))
	if _, ok := recv(t, o, "eth1"); !ok {
		t.Error("chain broken after removing monitor")
	}
}

func TestInternalEndpointsStitchGraphs(t *testing.T) {
	o := newNode(t)
	// Graph 1: eth0 -> monitor -> internal group "handoff".
	g1 := &nffg.Graph{
		ID: "stage1",
		NFs: []nffg.NF{{ID: "mon", Name: "monitor",
			Ports: []nffg.NFPort{{ID: "0"}, {ID: "1"}}, TechnologyPreference: nffg.TechNative}},
		Endpoints: []nffg.Endpoint{
			{ID: "in", Type: nffg.EPInterface, Interface: "eth0"},
			{ID: "next", Type: nffg.EPInternal, InternalGroup: "handoff"},
		},
		Rules: []nffg.FlowRule{
			{ID: "r1", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.EndpointRef("in")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("mon", "0")}}},
			{ID: "r2", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.NFPortRef("mon", "1")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("next")}}},
		},
	}
	// Graph 2: internal group "handoff" -> eth1.
	g2 := &nffg.Graph{
		ID: "stage2",
		NFs: []nffg.NF{{ID: "mon2", Name: "monitor",
			Ports: []nffg.NFPort{{ID: "0"}, {ID: "1"}}, TechnologyPreference: nffg.TechNative}},
		Endpoints: []nffg.Endpoint{
			{ID: "prev", Type: nffg.EPInternal, InternalGroup: "handoff"},
			{ID: "out", Type: nffg.EPInterface, Interface: "eth1"},
		},
		Rules: []nffg.FlowRule{
			{ID: "r1", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.EndpointRef("prev")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("mon2", "0")}}},
			{ID: "r2", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.NFPortRef("mon2", "1")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("out")}}},
		},
	}
	if err := o.Deploy(g1); err != nil {
		t.Fatal(err)
	}
	if err := o.Deploy(g2); err != nil {
		t.Fatal(err)
	}
	send(t, o, "eth0", clearFrame(t))
	if _, ok := recv(t, o, "eth1"); !ok {
		t.Fatal("traffic did not cross the inter-graph handoff")
	}
	// A third member of the same group is rejected.
	g3 := &nffg.Graph{
		ID: "stage3",
		NFs: []nffg.NF{{ID: "m", Name: "monitor",
			Ports: []nffg.NFPort{{ID: "0"}, {ID: "1"}}, TechnologyPreference: nffg.TechNative}},
		Endpoints: []nffg.Endpoint{{ID: "x", Type: nffg.EPInternal, InternalGroup: "handoff"}},
		Rules: []nffg.FlowRule{
			{ID: "r1", Priority: 1, Match: nffg.RuleMatch{PortIn: nffg.EndpointRef("x")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("m", "0")}}},
		},
	}
	if err := o.Deploy(g3); err == nil {
		t.Error("third member of a two-party internal group accepted")
	}
}

func TestFigure1Topology(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("customer1", nffg.TechNative)); err != nil {
		t.Fatal(err)
	}
	if err := o.Deploy(firewallGraph("customer2", 150, "drop proto=udp dport=53")); err != nil {
		t.Fatal(err)
	}
	topo := o.Topology()
	if topo.NodeName != "cpe" || len(topo.Graphs) != 2 {
		t.Fatalf("topology = %+v", topo)
	}
	// The base LSI has: 2 interfaces + 2 vlinks per graph (endpoints)
	// + 1 NNF port + 1 NNF vlink for customer2's shared firewall.
	if len(topo.LSI0.Ports) != 2+2+2+1+1 {
		t.Errorf("LSI-0 ports = %v", topo.LSI0.Ports)
	}
	// Figure 1 structure in DOT: LSI-0, per-graph LSIs, NFs, interfaces.
	dot := topo.DOT()
	for _, want := range []string{
		"digraph", "LSI-0", "lsi_customer1", "lsi_customer2",
		"nf_customer1_vpn", "nf_customer2_fw", "NNF", "[shared]",
		"if_eth0", "if_eth1", "virtual link",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	txt := topo.String()
	for _, want := range []string{"customer1", "customer2", "native", "shared NNF"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text topology missing %q:\n%s", want, txt)
		}
	}
}

func TestDPDKPlacement(t *testing.T) {
	o := newNode(t)
	g := &nffg.Graph{
		ID: "dpdk-router",
		NFs: []nffg.NF{{
			ID: "r", Name: "router",
			Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
			TechnologyPreference: nffg.TechDPDK,
			Config: map[string]string{
				"routes": "0.0.0.0/0,1,02:02:02:02:02:02,04:04:04:04:04:04",
			},
		}},
		Endpoints: []nffg.Endpoint{
			{ID: "in", Type: nffg.EPInterface, Interface: "eth0"},
			{ID: "out", Type: nffg.EPInterface, Interface: "eth1"},
		},
		Rules: []nffg.FlowRule{
			{ID: "r1", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.EndpointRef("in")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("r", "0")}}},
			{ID: "r2", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.NFPortRef("r", "1")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("out")}}},
		},
	}
	if err := o.Deploy(g); err != nil {
		t.Fatal(err)
	}
	d, _ := o.Graph("dpdk-router")
	if d.Instances()["r"].Technology != nffg.TechDPDK {
		t.Error("router not placed on DPDK")
	}
	send(t, o, "eth0", clearFrame(t))
	if _, ok := recv(t, o, "eth1"); !ok {
		t.Error("routed traffic lost")
	}
}
