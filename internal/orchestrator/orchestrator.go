// Package orchestrator implements the local orchestrator of the NFV compute
// node (paper Figure 1): it receives Network Function Forwarding Graphs,
// decides VNF-vs-NNF placement per NF, instantiates the functions through
// the compute manager's drivers, creates one Logical Switch Instance per
// graph plus the base LSI-0 classifier, and programs traffic steering
// through per-LSI OpenFlow controllers.
package orchestrator

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compute"
	"repro/internal/execenv"
	"repro/internal/netdev"
	"repro/internal/nf"
	"repro/internal/nffg"
	"repro/internal/openflow"
	"repro/internal/policy"
	"repro/internal/repository"
	"repro/internal/resources"
	"repro/internal/telemetry"
	"repro/internal/vswitch"
)

// Config wires the orchestrator to the node's services.
type Config struct {
	// NodeName labels the node.
	NodeName string
	// Interfaces are the node's physical interface names, attached to
	// LSI-0 in order.
	Interfaces []string
	// Resources is the node ledger (capabilities + CPU/RAM).
	Resources *resources.Pool
	// Repo is the VNF repository.
	Repo *repository.Repository
	// Compute is the compute manager with registered drivers.
	Compute *compute.Manager
	// Clock is the shared virtual clock (optional).
	Clock *execenv.VirtualClock
	// Journal receives the node's structured telemetry events; nil gets a
	// private journal of telemetry.DefaultJournalDepth entries.
	Journal *telemetry.Journal
	// Model is the execution-environment cost model the scheduler quotes
	// per-packet candidate costs from; nil uses the Table-1 calibration.
	Model *execenv.CostModel
	// Policy ranks placement candidates; nil uses policy.FirstFit (the
	// paper's static native > docker > dpdk > vm preference).
	Policy policy.PlacementPolicy
	// MaxParallelStarts bounds how many NFs of one graph boot concurrently
	// (default DefaultMaxParallelStarts).
	MaxParallelStarts int
	// DrainTimeout bounds how long a flavor hot-swap waits for the
	// outgoing instance to quiesce (default DefaultDrainTimeout).
	DrainTimeout time.Duration
	// DatapathWorkers selects the datapath mode of every LSI the node
	// creates: 0 (the default) processes frames synchronously in the
	// sender's goroutine; N > 0 runs N RSS-steered datapath workers per
	// switch (see vswitch.Options.Workers).
	DatapathWorkers int
}

// lsiConn is one switch + its control channel.
type lsiConn struct {
	sw    *vswitch.Switch
	agent *openflow.Agent
	ctrl  *openflow.Controller
	done  chan struct{}
}

// newLSIConn builds a switch with a live OpenFlow channel over an
// in-process pipe, exactly as the un-orchestrator runs one controller per
// LSI.
func newLSIConn(name string, dpid uint64, workers int) (*lsiConn, error) {
	sw := vswitch.NewOptions(name, dpid, vswitch.Options{Workers: workers})
	ctrlSide, agentSide := net.Pipe()
	agent := openflow.NewAgent(sw, agentSide)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = agent.Run()
	}()
	ctrl, err := openflow.Connect(ctrlSide)
	if err != nil {
		agent.Stop()
		<-done
		return nil, err
	}
	return &lsiConn{sw: sw, agent: agent, ctrl: ctrl, done: done}, nil
}

func (l *lsiConn) close() {
	_ = l.ctrl.Close()
	l.agent.Stop()
	<-l.done
	// Stop the datapath workers last: the agent is gone, so nothing new is
	// steered, and Close drains whatever the rings still hold.
	l.sw.Close()
}

// nfAttachment records how one NF of a graph reaches its LSI, and where the
// NF stands in its lifecycle.
type nfAttachment struct {
	inst *compute.Instance
	// state is the NF's lifecycle state (an index into stateOrder),
	// atomic so concurrent start goroutines report progress lock-free.
	state atomic.Int32
	// cookie tags this NF's LSI-0 flows (shared-NNF steering marks), so a
	// single attachment can be detached — e.g. by a flavor hot-swap —
	// without disturbing a successor instance's flows.
	cookie uint64
	// lsiPorts maps logical NF port index -> graph-LSI port number
	// (direct attachments only).
	lsiPorts []uint32
	// lsiSide holds the LSI-side netdev ports created for this NF, for
	// teardown.
	lsiSide []*netdev.Port
	// nnfVlink is the graph-LSI port of the virtual link that carries
	// marked traffic to LSI-0 (shared native NFs only).
	nnfVlink uint32
	// nnfVlinkLSI0 is the LSI-0 side of that virtual link.
	nnfVlinkLSI0 uint32
	// lsi0Port is the LSI-0 port the shared NNF is attached to.
	lsi0Port uint32
}

// epAttachment records one endpoint's virtual link.
type epAttachment struct {
	ep nffg.Endpoint
	// graphPort is the graph-LSI port of the virtual link.
	graphPort uint32
	// lsi0Port is the LSI-0 side of the virtual link.
	lsi0Port uint32
	// cookie tags this endpoint's LSI-0 classification flows, so a single
	// endpoint can be detached in place during Update without disturbing
	// the rest of the graph's LSI-0 state.
	cookie uint64
	// vlanRegistered records that this attachment claimed its (interface,
	// VLAN) slot in vlanEPs; detachEndpoint only releases the slot then,
	// so cleaning up a failed attach cannot evict the rightful owner.
	vlanRegistered bool
}

// DeployedGraph is one running service graph.
type DeployedGraph struct {
	Graph *nffg.Graph

	lsi    *lsiConn
	cookie uint64
	nfs    map[string]*nfAttachment // by NF id
	eps    map[string]*epAttachment // by endpoint id
	// scales holds the replica set of each scaled-out NF; an NF absent here
	// runs as the single instance in nfs. nfs[id] is always the scaled NF's
	// replica 0.
	scales map[string]*nfScale
	// standbys holds the pre-attached standby instance of each
	// active-standby NF. Standbys are wired to the LSI but absent from nfs,
	// so steering never selects them until PromoteStandby swaps one in.
	standbys map[string]*nfAttachment
}

// LSI returns the graph's switch, for inspection.
func (d *DeployedGraph) LSI() *vswitch.Switch { return d.lsi.sw }

// Controller returns the graph's steering controller, for inspection.
func (d *DeployedGraph) Controller() *openflow.Controller { return d.lsi.ctrl }

// Instances returns the graph's NF instances keyed by NF id.
func (d *DeployedGraph) Instances() map[string]*compute.Instance {
	out := make(map[string]*compute.Instance, len(d.nfs))
	for id, att := range d.nfs {
		out[id] = att.inst
	}
	return out
}

// Orchestrator is the node's local orchestrator.
type Orchestrator struct {
	cfg Config

	journal  *telemetry.Journal
	registry *telemetry.Registry
	metrics  *opMetrics

	lsi0 *lsiConn
	// extPorts are the outward-facing peers of the physical interfaces:
	// traffic generators inject and collect frames here.
	extPorts map[string]*netdev.Port
	// ifPorts maps interface name -> LSI-0 port number.
	ifPorts map[string]uint32

	// glmu guards gLocks, the per-graph operation locks serializing
	// Deploy/Update/Undeploy/Reflavor per graph id.
	glmu   sync.Mutex
	gLocks map[string]*graphLock

	mu       sync.Mutex
	graphs   map[string]*DeployedGraph
	dpidGen  uint64
	cookieGn uint64
	// standbyGen numbers standby incarnations: the resource ledger keys
	// grants by instance name, and a promoted standby keeps its grant
	// under the old name, so the replacement needs a fresh one.
	standbyGen uint64
	portGen    map[*vswitch.Switch]uint32
	// rates holds the last per-graph LSI rx probe, backing the observed
	// packet rate the cost-driven policy consumes.
	rates map[string]*rateProbe
	// vlanEPs guards (interface, vlan) uniqueness across graphs.
	vlanEPs map[string]string // "if/vlan" -> graph id
	// internalGroups tracks EPInternal rendezvous: group -> members.
	internalGroups map[string][]groupMember
	// nnfPorts tracks shared NNF attachments on LSI-0 by runtime name.
	nnfPorts map[string]uint32
}

type groupMember struct {
	graphID  string
	epID     string
	lsi0Port uint32
	// cookie is the member endpoint's flow cookie; the rendezvous pair
	// flows live under the cookie of whichever member joined second.
	cookie uint64
}

// New builds the orchestrator and its base LSI with the node's physical
// interfaces attached.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.Resources == nil || cfg.Repo == nil || cfg.Compute == nil {
		return nil, fmt.Errorf("orchestrator: incomplete config")
	}
	if cfg.NodeName == "" {
		cfg.NodeName = "un-node"
	}
	journal := cfg.Journal
	if journal == nil {
		journal = telemetry.NewJournal(telemetry.DefaultJournalDepth)
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.FirstFit{}
	}
	if cfg.Model == nil {
		m := execenv.Default()
		cfg.Model = &m
	}
	o := &Orchestrator{
		cfg:            cfg,
		journal:        journal,
		registry:       telemetry.NewRegistry(),
		metrics:        newOpMetrics(),
		extPorts:       make(map[string]*netdev.Port),
		ifPorts:        make(map[string]uint32),
		gLocks:         make(map[string]*graphLock),
		graphs:         make(map[string]*DeployedGraph),
		portGen:        make(map[*vswitch.Switch]uint32),
		rates:          make(map[string]*rateProbe),
		vlanEPs:        make(map[string]string),
		internalGroups: make(map[string][]groupMember),
		nnfPorts:       make(map[string]uint32),
	}
	lsi0, err := newLSIConn(cfg.NodeName+"/lsi-0", o.nextDPID(), cfg.DatapathWorkers)
	if err != nil {
		return nil, err
	}
	o.lsi0 = lsi0
	for _, ifName := range cfg.Interfaces {
		if _, dup := o.extPorts[ifName]; dup {
			lsi0.close()
			return nil, fmt.Errorf("orchestrator: duplicate interface %q", ifName)
		}
		ext, sw := netdev.Veth(ifName+"/ext", ifName)
		num := o.nextPort(lsi0.sw)
		if err := lsi0.sw.AddPort(num, sw); err != nil {
			lsi0.close()
			return nil, err
		}
		o.extPorts[ifName] = ext
		o.ifPorts[ifName] = num
	}
	o.registry.Register(o)
	return o, nil
}

// Close tears down every graph and the base LSI.
func (o *Orchestrator) Close() {
	for _, id := range o.GraphIDs() {
		_ = o.Undeploy(id)
	}
	o.lsi0.close()
}

// LSI0 returns the base switch, for inspection.
func (o *Orchestrator) LSI0() *vswitch.Switch { return o.lsi0.sw }

// CacheStats aggregates the microflow-cache counters of LSI-0 and every
// graph LSI: the node-level fast-path figure reported next to flow stats.
func (o *Orchestrator) CacheStats() vswitch.CacheStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	agg := o.lsi0.sw.CacheStats()
	for _, d := range o.graphs {
		cs := d.lsi.sw.CacheStats()
		agg.Hits += cs.Hits
		agg.Misses += cs.Misses
		agg.Entries += cs.Entries
	}
	return agg
}

// InterfacePort returns the outward-facing peer of a physical interface;
// tests and traffic generators send and receive node traffic through it.
func (o *Orchestrator) InterfacePort(name string) (*netdev.Port, bool) {
	p, ok := o.extPorts[name]
	return p, ok
}

// GraphIDs returns the ids of the deployed graphs, sorted.
func (o *Orchestrator) GraphIDs() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.graphs))
	for id := range o.graphs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Graph returns a deployed graph.
func (o *Orchestrator) Graph(id string) (*DeployedGraph, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[id]
	return d, ok
}

// GraphSpec returns a copy of the deployed NF-FG of a graph, safe to diff
// against a desired version while the orchestrator keeps running.
func (o *Orchestrator) GraphSpec(id string) (*nffg.Graph, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[id]
	if !ok {
		return nil, false
	}
	return d.Graph.Clone(), true
}

// Usage reports the node's resource-ledger consumption.
func (o *Orchestrator) Usage() (usedCPU, totalCPU int, usedRAM, totalRAM uint64) {
	return o.cfg.Resources.Usage()
}

// Capabilities returns the node's capability set as strings.
func (o *Orchestrator) Capabilities() []string {
	caps := o.cfg.Resources.Capabilities()
	out := make([]string, len(caps))
	for i, c := range caps {
		out[i] = string(c)
	}
	return out
}

func (o *Orchestrator) nextDPID() uint64 {
	o.dpidGen++
	return o.dpidGen
}

func (o *Orchestrator) nextCookie() uint64 {
	o.cookieGn++
	return o.cookieGn
}

func (o *Orchestrator) nextPort(sw *vswitch.Switch) uint32 {
	o.portGen[sw]++
	return o.portGen[sw]
}

// Deploy validates, schedules and instantiates a graph, then programs
// traffic steering. On any failure the partial deployment is rolled back.
func (o *Orchestrator) Deploy(g *nffg.Graph) error {
	start := time.Now()
	err := o.deploy(g)
	if err == nil {
		// The graph runs single-instance; now honor any replicas > 1 in the
		// spec. A graph that cannot reach its requested scale does not stay
		// half-deployed.
		if err = o.reconcileReplicas(g); err != nil {
			_ = o.undeploy(g.ID)
		}
	}
	if err == nil {
		// Likewise for redundancy: an active-standby NF whose standby
		// cannot start is not deployed at all.
		if err = o.reconcileStandbys(g); err != nil {
			_ = o.undeploy(g.ID)
		}
	}
	o.metrics.deployLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		o.metrics.deployFailures.Inc()
		return err
	}
	o.metrics.deploys.Inc()
	o.journal.Recordf(telemetry.EventDeploy, o.cfg.NodeName, g.ID,
		fmt.Sprintf("%d NFs, %d rules", len(g.NFs), len(g.Rules)))
	return nil
}

func (o *Orchestrator) deploy(g *nffg.Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	gl := o.lockGraph(g.ID)
	defer o.unlockGraph(g.ID, gl)

	o.mu.Lock()
	if _, dup := o.graphs[g.ID]; dup {
		o.mu.Unlock()
		return fmt.Errorf("orchestrator: graph %q already deployed (use Update)", g.ID)
	}
	placements, err := o.schedule(g)
	if err != nil {
		o.mu.Unlock()
		return err
	}
	dpid := o.nextDPID()
	cookie := o.nextCookie()
	o.mu.Unlock()

	lsi, err := newLSIConn(fmt.Sprintf("%s/lsi-%s", o.cfg.NodeName, g.ID), dpid, o.cfg.DatapathWorkers)
	if err != nil {
		return err
	}
	d := &DeployedGraph{
		Graph:    g.Clone(),
		lsi:      lsi,
		cookie:   cookie,
		nfs:      make(map[string]*nfAttachment),
		eps:      make(map[string]*epAttachment),
		scales:   make(map[string]*nfScale),
		standbys: make(map[string]*nfAttachment),
	}
	// Start phase, outside the node lock: every NF of the graph boots
	// concurrently (the graph lock keeps same-graph operations out).
	atts, err := o.startNFs(g.ID, placements)
	if err != nil {
		lsi.close()
		return err
	}

	// Attach phase, under the node lock: ports, endpoints and steering.
	o.mu.Lock()
	defer o.mu.Unlock()
	for i, pl := range placements {
		att := atts[i]
		o.setState(g.ID, pl.NF.ID, att, StateAttaching)
		if err := o.attachNF(d, att); err != nil {
			o.setState(g.ID, pl.NF.ID, att, StateFailed)
			// The instance started but is not yet recorded: stop it and
			// the not-yet-attached rest explicitly, then roll back.
			_ = pl.Driver.Stop(att.inst)
			o.stopUnattached(placements[i+1:], atts[i+1:])
			o.teardown(d)
			return err
		}
		d.nfs[pl.NF.ID] = att
		o.setState(g.ID, pl.NF.ID, att, StateRunning)
		o.metrics.nfStarts.Inc()
		o.journal.Recordf(telemetry.EventNFStart, o.cfg.NodeName, g.ID,
			fmt.Sprintf("%s as %s", pl.NF.ID, pl.Technology))
	}
	for _, ep := range g.Endpoints {
		att, err := o.attachEndpoint(d, ep)
		if err != nil {
			o.teardown(d)
			return err
		}
		d.eps[ep.ID] = att
	}
	if err := o.program(d); err != nil {
		o.teardown(d)
		return err
	}
	o.graphs[g.ID] = d
	return nil
}

// stopUnattached stops instances that were started but never made it into
// the graph's attachment map (teardown cannot see them).
func (o *Orchestrator) stopUnattached(placements []Placement, atts []*nfAttachment) {
	for i, att := range atts {
		if att == nil || att.inst == nil {
			continue
		}
		o.setState(att.inst.GraphID, placements[i].NF.ID, att, StateStopped)
		if drv, ok := o.cfg.Compute.Driver(att.inst.Technology); ok {
			_ = drv.Stop(att.inst)
		}
	}
}

// attachNF wires one NF instance to the graph LSI (direct) or to LSI-0
// (shared native NF behind the adaptation layer).
func (o *Orchestrator) attachNF(d *DeployedGraph, att *nfAttachment) error {
	inst := att.inst
	if inst.Shared {
		// The shared NNF runtime exposes one adapted port attached to
		// LSI-0 (once per instance); the graph reaches it through a
		// dedicated virtual link.
		lsi0Port, attached := o.nnfPorts[inst.Runtime.Name()]
		if !attached {
			lsiSide := netdev.NewPort(inst.Runtime.Name() + "/lsi0")
			if err := netdev.Connect(inst.Runtime.Port(0), lsiSide); err != nil {
				return err
			}
			lsi0Port = o.nextPort(o.lsi0.sw)
			if err := o.lsi0.sw.AddPort(lsi0Port, lsiSide); err != nil {
				return err
			}
			o.nnfPorts[inst.Runtime.Name()] = lsi0Port
		}
		att.lsi0Port = lsi0Port
		// Virtual link graph-LSI <-> LSI-0 for the marked traffic.
		gSide, zSide := netdev.Veth(
			fmt.Sprintf("%s.%s/vl-nnf", d.Graph.ID, inst.Name),
			fmt.Sprintf("lsi0/vl-nnf-%s", inst.Name),
		)
		gPort := o.nextPort(d.lsi.sw)
		if err := d.lsi.sw.AddPort(gPort, gSide); err != nil {
			return err
		}
		zPort := o.nextPort(o.lsi0.sw)
		if err := o.lsi0.sw.AddPort(zPort, zSide); err != nil {
			return err
		}
		att.nnfVlink = gPort
		att.nnfVlinkLSI0 = zPort
		att.lsiSide = append(att.lsiSide, gSide, zSide)
		// LSI-0 steering for the marks: toward the NNF and back. The flows
		// live under a per-attachment cookie so a flavor hot-swap can
		// retire one instance's marks without touching its successor's.
		if att.cookie == 0 {
			att.cookie = o.nextCookie()
		}
		for _, mark := range inst.InMarks {
			err := o.lsi0.ctrl.InstallFlow(0, 300, att.cookie,
				vswitch.MatchAll().WithInPort(zPort).WithVLAN(mark),
				[]vswitch.Action{vswitch.Output(lsi0Port)})
			if err != nil {
				return err
			}
		}
		for _, mark := range inst.OutMarks {
			err := o.lsi0.ctrl.InstallFlow(0, 300, att.cookie,
				vswitch.MatchAll().WithInPort(lsi0Port).WithVLAN(mark),
				[]vswitch.Action{vswitch.Output(zPort)})
			if err != nil {
				return err
			}
		}
		return o.lsi0.ctrl.Barrier()
	}
	// Direct attachment: one LSI port per NF port.
	att.lsiPorts = make([]uint32, inst.Runtime.NumPorts())
	for i := 0; i < inst.Runtime.NumPorts(); i++ {
		lsiSide := netdev.NewPort(fmt.Sprintf("%s/p%d", inst.Name, i))
		if err := netdev.Connect(inst.Runtime.Port(i), lsiSide); err != nil {
			return err
		}
		num := o.nextPort(d.lsi.sw)
		if err := d.lsi.sw.AddPort(num, lsiSide); err != nil {
			return err
		}
		att.lsiPorts[i] = num
		att.lsiSide = append(att.lsiSide, lsiSide)
	}
	return nil
}

// attachEndpoint builds the virtual link between the graph LSI and LSI-0
// for one endpoint, and installs the LSI-0 classification rules. On any
// failure its partial state (ports, flows, bookkeeping) is removed before
// returning, so a failed in-place Update can be retried without leaking.
func (o *Orchestrator) attachEndpoint(d *DeployedGraph, ep nffg.Endpoint) (_ *epAttachment, err error) {
	gSide, zSide := netdev.Veth(
		fmt.Sprintf("%s.%s/vl", d.Graph.ID, ep.ID),
		fmt.Sprintf("lsi0/vl-%s-%s", d.Graph.ID, ep.ID),
	)
	gPort := o.nextPort(d.lsi.sw)
	if err := d.lsi.sw.AddPort(gPort, gSide); err != nil {
		return nil, err
	}
	zPort := o.nextPort(o.lsi0.sw)
	if err := o.lsi0.sw.AddPort(zPort, zSide); err != nil {
		netdev.Disconnect(gSide)
		_ = d.lsi.sw.RemovePort(gPort)
		return nil, err
	}
	att := &epAttachment{ep: ep, graphPort: gPort, lsi0Port: zPort, cookie: o.nextCookie()}
	defer func() {
		if err != nil {
			o.detachEndpoint(d, att)
		}
	}()

	switch ep.Type {
	case nffg.EPInterface:
		ifPort, ok := o.ifPorts[ep.Interface]
		if !ok {
			return nil, fmt.Errorf("orchestrator: graph %q: endpoint %q: no interface %q on node",
				d.Graph.ID, ep.ID, ep.Interface)
		}
		// Classify untagged traffic from the interface to the graph,
		// and graph egress back out the interface.
		if err := o.lsi0.ctrl.InstallFlow(0, 100, att.cookie,
			vswitch.MatchAll().WithInPort(ifPort),
			[]vswitch.Action{vswitch.Output(zPort)}); err != nil {
			return nil, err
		}
		if err := o.lsi0.ctrl.InstallFlow(0, 100, att.cookie,
			vswitch.MatchAll().WithInPort(zPort),
			[]vswitch.Action{vswitch.Output(ifPort)}); err != nil {
			return nil, err
		}
	case nffg.EPVLAN:
		key := fmt.Sprintf("%s/%d", ep.Interface, ep.VLANID)
		if owner, used := o.vlanEPs[key]; used {
			return nil, fmt.Errorf("orchestrator: graph %q: endpoint %q: VLAN %d on %q already used by graph %q",
				d.Graph.ID, ep.ID, ep.VLANID, ep.Interface, owner)
		}
		ifPort, ok := o.ifPorts[ep.Interface]
		if !ok {
			return nil, fmt.Errorf("orchestrator: graph %q: endpoint %q: no interface %q on node",
				d.Graph.ID, ep.ID, ep.Interface)
		}
		// Tagged ingress: pop and hand to the graph; egress: push and
		// send out. VLAN classification outranks plain interface rules.
		if err := o.lsi0.ctrl.InstallFlow(0, 200, att.cookie,
			vswitch.MatchAll().WithInPort(ifPort).WithVLAN(ep.VLANID),
			[]vswitch.Action{vswitch.PopVLAN(), vswitch.Output(zPort)}); err != nil {
			return nil, err
		}
		if err := o.lsi0.ctrl.InstallFlow(0, 200, att.cookie,
			vswitch.MatchAll().WithInPort(zPort),
			[]vswitch.Action{vswitch.PushVLAN(ep.VLANID), vswitch.Output(ifPort)}); err != nil {
			return nil, err
		}
		o.vlanEPs[key] = d.Graph.ID
		att.vlanRegistered = true
	case nffg.EPInternal:
		members := o.internalGroups[ep.InternalGroup]
		if len(members) >= 2 {
			return nil, fmt.Errorf("orchestrator: graph %q: endpoint %q: internal group %q already has two members",
				d.Graph.ID, ep.ID, ep.InternalGroup)
		}
		if len(members) == 1 {
			peer := members[0]
			if err := o.lsi0.ctrl.InstallFlow(0, 150, att.cookie,
				vswitch.MatchAll().WithInPort(zPort),
				[]vswitch.Action{vswitch.Output(peer.lsi0Port)}); err != nil {
				return nil, err
			}
			if err := o.lsi0.ctrl.InstallFlow(0, 150, att.cookie,
				vswitch.MatchAll().WithInPort(peer.lsi0Port),
				[]vswitch.Action{vswitch.Output(zPort)}); err != nil {
				return nil, err
			}
		}
		o.internalGroups[ep.InternalGroup] = append(members,
			groupMember{graphID: d.Graph.ID, epID: ep.ID, lsi0Port: zPort, cookie: att.cookie})
	}
	if err := o.lsi0.ctrl.Barrier(); err != nil {
		return nil, err
	}
	return att, nil
}

// detachEndpoint reverses attachEndpoint: it removes the endpoint's LSI-0
// classification flows, its virtual-link ports on both switches, and the
// cross-graph bookkeeping. Used by teardown and by in-place endpoint removal
// during Update.
func (o *Orchestrator) detachEndpoint(d *DeployedGraph, att *epAttachment) {
	o.lsi0.sw.DeleteFlows(att.cookie)
	if p := o.lsi0.sw.Port(att.lsi0Port); p != nil {
		netdev.Disconnect(p)
	}
	_ = o.lsi0.sw.RemovePort(att.lsi0Port)
	_ = d.lsi.sw.RemovePort(att.graphPort)
	switch att.ep.Type {
	case nffg.EPVLAN:
		if att.vlanRegistered {
			delete(o.vlanEPs, fmt.Sprintf("%s/%d", att.ep.Interface, att.ep.VLANID))
		}
	case nffg.EPInternal:
		// Touch the group only if this endpoint actually joined it (a
		// failed attach never did). The rendezvous pair flows live under
		// the cookie of whichever member joined second; drop every
		// member's flows so no stale rule keeps pointing at the removed
		// port.
		members := o.internalGroups[att.ep.InternalGroup]
		joined := false
		for _, m := range members {
			if m.graphID == d.Graph.ID && m.epID == att.ep.ID {
				joined = true
				break
			}
		}
		if !joined {
			break
		}
		kept := members[:0]
		for _, m := range members {
			o.lsi0.sw.DeleteFlows(m.cookie)
			if m.graphID != d.Graph.ID || m.epID != att.ep.ID {
				kept = append(kept, m)
			}
		}
		if len(kept) == 0 {
			delete(o.internalGroups, att.ep.InternalGroup)
		} else {
			o.internalGroups[att.ep.InternalGroup] = kept
		}
	}
}

// Undeploy removes a graph and all its state.
func (o *Orchestrator) Undeploy(id string) error {
	start := time.Now()
	err := o.undeploy(id)
	o.metrics.undeployLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		o.metrics.undeployFailures.Inc()
		return err
	}
	o.metrics.undeploys.Inc()
	o.journal.Recordf(telemetry.EventUndeploy, o.cfg.NodeName, id, "")
	return nil
}

func (o *Orchestrator) undeploy(id string) error {
	gl := o.lockGraph(id)
	defer o.unlockGraph(id, gl)
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[id]
	if !ok {
		return fmt.Errorf("orchestrator: graph %q not deployed", id)
	}
	o.teardown(d)
	delete(o.graphs, id)
	delete(o.rates, id)
	return nil
}

// detachNF stops one NF instance and removes its attachment: LSI-0 flows
// under the attachment cookie, virtual-link and direct ports, and — when
// the last user of a shared NNF leaves — its LSI-0 port. Callers hold o.mu.
func (o *Orchestrator) detachNF(d *DeployedGraph, nfID string, att *nfAttachment) {
	o.setState(d.Graph.ID, nfID, att, StateStopped)
	if drv, ok := o.cfg.Compute.Driver(att.inst.Technology); ok {
		wasShared := att.inst.Shared
		name := att.inst.Runtime.Name()
		_ = drv.Stop(att.inst)
		// If the shared NNF instance fully stopped, detach its LSI-0 port.
		if wasShared && !att.inst.Runtime.Running() {
			if num, attached := o.nnfPorts[name]; attached {
				if p := o.lsi0.sw.Port(num); p != nil {
					netdev.Disconnect(p)
				}
				_ = o.lsi0.sw.RemovePort(num)
				delete(o.nnfPorts, name)
			}
		}
	}
	if att.cookie != 0 {
		o.lsi0.sw.DeleteFlows(att.cookie)
	}
	for _, p := range att.lsiSide {
		netdev.Disconnect(p)
	}
	for _, num := range att.lsiPorts {
		_ = d.lsi.sw.RemovePort(num)
	}
	if att.nnfVlink != 0 {
		_ = d.lsi.sw.RemovePort(att.nnfVlink)
	}
	if att.nnfVlinkLSI0 != 0 {
		_ = o.lsi0.sw.RemovePort(att.nnfVlinkLSI0)
	}
	o.metrics.nfStops.Inc()
	o.journal.Recordf(telemetry.EventNFStop, o.cfg.NodeName, d.Graph.ID,
		fmt.Sprintf("%s as %s", nfID, att.inst.Technology))
}

// teardown reverses a deployment. Safe on partially-built graphs.
func (o *Orchestrator) teardown(d *DeployedGraph) {
	// Remove LSI-0 state installed under the graph's cookie.
	o.lsi0.sw.DeleteFlows(d.cookie)
	// Extra replicas of scaled NFs first; replica 0 is in nfs below.
	for nfID, sc := range d.scales {
		for _, att := range sc.replicas[1:] {
			o.detachNF(d, nfID, att)
		}
		delete(d.scales, nfID)
	}
	// Standbys are attached but never in nfs: detach them explicitly.
	for nfID, att := range d.standbys {
		o.detachNF(d, nfID, att)
		delete(d.standbys, nfID)
	}
	for nfID, att := range d.nfs {
		o.detachNF(d, nfID, att)
		delete(d.nfs, nfID)
	}
	// Detach endpoint virtual links from LSI-0 and bookkeeping.
	for epID, att := range d.eps {
		o.detachEndpoint(d, att)
		delete(d.eps, epID)
	}
	d.lsi.close()
}

// rateProbe is the last observed-rate sample of one graph's LSI.
type rateProbe struct {
	rx uint64
	at time.Time
}

// observedRateLocked estimates the graph's current datapath packet rate
// (packets/second) from the delta of its LSI rx counter since the previous
// probe: the telemetry input of the cost-driven placement policy. Returns 0
// for unknown graphs and on the first probe. Callers hold o.mu.
func (o *Orchestrator) observedRateLocked(id string) float64 {
	d, ok := o.graphs[id]
	if !ok {
		return 0
	}
	rx := d.lsi.sw.PacketsProcessed()
	now := time.Now()
	prev := o.rates[id]
	o.rates[id] = &rateProbe{rx: rx, at: now}
	if prev == nil || !now.After(prev.at) || rx < prev.rx {
		return 0
	}
	return float64(rx-prev.rx) / now.Sub(prev.at).Seconds()
}

// Update applies a new version of a deployed graph. NFs and endpoints are
// diffed individually; steering rules are recompiled wholesale.
func (o *Orchestrator) Update(g *nffg.Graph) error {
	start := time.Now()
	err := o.update(g)
	if err == nil {
		// A replica-count change in the new spec is a scale operation, not a
		// config change: the diff above deliberately skipped it.
		err = o.reconcileReplicas(g)
	}
	if err == nil {
		err = o.reconcileStandbys(g)
	}
	o.metrics.updateLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		o.metrics.updateFailures.Inc()
		return err
	}
	o.metrics.updates.Inc()
	o.journal.Recordf(telemetry.EventUpdate, o.cfg.NodeName, g.ID,
		fmt.Sprintf("%d NFs, %d rules", len(g.NFs), len(g.Rules)))
	return nil
}

func (o *Orchestrator) update(g *nffg.Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	gl := o.lockGraph(g.ID)
	defer o.unlockGraph(g.ID, gl)

	o.mu.Lock()
	d, ok := o.graphs[g.ID]
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("orchestrator: graph %q not deployed (use Deploy)", g.ID)
	}
	diff := nffg.Compute(d.Graph, g)
	if diff.Empty() {
		o.mu.Unlock()
		return nil
	}
	// 1. Schedule the added NFs against the deployed spec.
	var placements []Placement
	if len(diff.AddedNFs) > 0 {
		sub := &nffg.Graph{ID: g.ID, NFs: diff.AddedNFs}
		var err error
		placements, err = o.schedule(sub)
		if err != nil {
			o.mu.Unlock()
			return err
		}
	}
	o.mu.Unlock()

	// 2. Start the added NFs concurrently, outside the node lock (the
	// graph lock keeps other same-graph operations out). A start failure
	// stops the siblings inside startNFs: nothing is attached yet.
	atts, err := o.startNFs(g.ID, placements)
	if err != nil {
		return err
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	// added tracks the NF ids this update attached and restarted the NFs
	// it replaced for a config change; a failure past this point rolls
	// back exactly these — added NFs are detached, restarted NFs are put
	// back on the previous spec's instance — leaving the prior deployment
	// intact.
	var added, restarted []string
	fail := func(err error) error {
		o.rollbackStarted(d, added)
		for _, nfID := range restarted {
			// d.Graph still holds the pre-update spec here (step 6
			// restores it before failing), so this reinstates the
			// old-config instance best-effort.
			if prev := d.Graph.FindNF(nfID); prev != nil {
				_ = o.restartNF(d, g.ID, *prev)
			}
		}
		if len(restarted) > 0 {
			// The reinstated instances sit on fresh LSI ports: repoint
			// the (pre-update) steering at them.
			_ = o.reprogram(d)
		}
		return err
	}
	// 3. Attach the added NFs.
	for i, pl := range placements {
		att := atts[i]
		o.setState(g.ID, pl.NF.ID, att, StateAttaching)
		if err := o.attachNF(d, att); err != nil {
			o.setState(g.ID, pl.NF.ID, att, StateFailed)
			_ = pl.Driver.Stop(att.inst)
			o.stopUnattached(placements[i+1:], atts[i+1:])
			return fail(err)
		}
		d.nfs[pl.NF.ID] = att
		o.setState(g.ID, pl.NF.ID, att, StateRunning)
		added = append(added, pl.NF.ID)
		o.metrics.nfStarts.Inc()
		o.journal.Recordf(telemetry.EventNFStart, o.cfg.NodeName, g.ID,
			fmt.Sprintf("%s as %s", pl.NF.ID, pl.Technology))
	}
	// 4. Changed NFs: reconfigure in place when both the driver and the
	// processor support it, otherwise stop and restart the instance with
	// the new configuration — a changed spec must never leave stale config
	// running. The journal records which path each NF took.
	for _, n := range diff.ChangedNFs {
		att, exists := d.nfs[n.ID]
		if !exists {
			continue
		}
		// A change to the replica count alone is a scale operation, handled
		// by the Update wrapper after this pass; the instances keep running.
		if prev := d.Graph.FindNF(n.ID); prev != nil && equalIgnoringReplicas(*prev, n) {
			continue
		}
		sc := d.scales[n.ID]
		drv, reg := o.cfg.Compute.Driver(att.inst.Technology)
		cfgr, configurable := att.inst.Runtime.Processor().(nf.Configurer)
		if reg && drv.Caps().SupportsReconfigure && configurable {
			if err := cfgr.Configure(n.Config); err != nil {
				return fail(fmt.Errorf("orchestrator: update: reconfiguring %q: %w", n.ID, err))
			}
			// Every replica of a scaled NF must see the new configuration.
			if sc != nil {
				for _, rep := range sc.replicas[1:] {
					rc, ok := rep.inst.Runtime.Processor().(nf.Configurer)
					if !ok {
						continue
					}
					if err := rc.Configure(n.Config); err != nil {
						return fail(fmt.Errorf("orchestrator: update: reconfiguring replica of %q: %w", n.ID, err))
					}
				}
			}
			o.journal.Recordf(telemetry.EventNFConfig, o.cfg.NodeName, g.ID,
				fmt.Sprintf("%s reconfigured in place", n.ID))
			continue
		}
		if sc != nil {
			if err := o.restartReplicas(d, g.ID, n, sc); err != nil {
				return fail(fmt.Errorf("orchestrator: update: restarting replicas of %q: %w", n.ID, err))
			}
			o.journal.Recordf(telemetry.EventNFConfig, o.cfg.NodeName, g.ID,
				fmt.Sprintf("%s: %d replicas restarted (processor not reconfigurable in place)", n.ID, len(sc.replicas)))
			continue
		}
		if err := o.restartNF(d, g.ID, n); err != nil {
			// restartNF already attempted to restore the previous
			// instance; only the earlier steps remain to roll back.
			return fail(fmt.Errorf("orchestrator: update: restarting %q with new config: %w", n.ID, err))
		}
		restarted = append(restarted, n.ID)
		o.journal.Recordf(telemetry.EventNFConfig, o.cfg.NodeName, g.ID,
			fmt.Sprintf("%s restarted (processor not reconfigurable in place)", n.ID))
	}
	// 5. Endpoints: removed ones are detached in place (their LSI-0
	// classification flows are tagged with a per-endpoint cookie), added
	// ones attached; a changed endpoint appears in the diff as
	// removed+added under the same id. The global orchestrator leans on
	// this when it restitches cross-node links after rescheduling.
	for _, ep := range diff.RemovedEPs {
		att, exists := d.eps[ep.ID]
		if !exists {
			continue
		}
		o.detachEndpoint(d, att)
		delete(d.eps, ep.ID)
	}
	for _, ep := range diff.AddedEPs {
		// Idempotency: a retry of a partially-failed update finds some
		// additions already attached; attaching them again would
		// duplicate LSI-0 state.
		if existing, dup := d.eps[ep.ID]; dup {
			if existing.ep == ep {
				continue
			}
			o.detachEndpoint(d, existing)
			delete(d.eps, ep.ID)
		}
		att, err := o.attachEndpoint(d, ep)
		if err != nil {
			return fail(fmt.Errorf("orchestrator: update: attaching endpoint %q: %w", ep.ID, err))
		}
		d.eps[ep.ID] = att
	}
	// 6. Recompile steering against the new spec and repoint it with one
	// atomic snapshot swap: the datapath sees the old complete rule set or
	// the new one, never the gap in between.
	oldGraph := d.Graph
	d.Graph = g.Clone()
	entries, err := o.compileEntries(d, d.cookie)
	if err != nil {
		d.Graph = oldGraph
		return fail(err)
	}
	if _, err := d.lsi.sw.SwapFlows(d.cookie, entries); err != nil {
		d.Graph = oldGraph
		return fail(err)
	}
	o.metrics.steeringRules.Add(uint64(len(d.Graph.Rules)))
	o.journal.Recordf(telemetry.EventFlowMod, o.cfg.NodeName, g.ID,
		fmt.Sprintf("%d rules swapped on %s", len(d.Graph.Rules), o.lsiLabel(d.lsi.sw)))
	// 7. Detach removed NFs last, after steering stopped referencing them,
	// so their traffic is re-steered before the ports disappear.
	for _, n := range diff.RemovedNFs {
		att, exists := d.nfs[n.ID]
		if !exists {
			continue
		}
		if sc := d.scales[n.ID]; sc != nil {
			for _, rep := range sc.replicas[1:] {
				o.setState(g.ID, n.ID, rep, StateDraining)
				o.detachNF(d, n.ID, rep)
			}
			delete(d.scales, n.ID)
		}
		o.setState(g.ID, n.ID, att, StateDraining)
		o.detachNF(d, n.ID, att)
		delete(d.nfs, n.ID)
	}
	return nil
}

// rollbackStarted undoes the NFs a failed update attached: each is stopped
// and detached, so the deployed graph returns to exactly its pre-update NF
// set (the spec is restored by the caller keeping d.Graph untouched).
// Callers hold o.mu.
func (o *Orchestrator) rollbackStarted(d *DeployedGraph, started []string) {
	for _, nfID := range started {
		att, ok := d.nfs[nfID]
		if !ok {
			continue
		}
		o.detachNF(d, nfID, att)
		delete(d.nfs, nfID)
	}
}

// startAndAttachNF schedules, starts and attaches one NF of a deployed
// graph, walking it through the lifecycle states. Callers hold o.mu.
func (o *Orchestrator) startAndAttachNF(d *DeployedGraph, graphID string, n nffg.NF) error {
	placements, err := o.schedule(&nffg.Graph{ID: graphID, NFs: []nffg.NF{n}})
	if err != nil {
		return err
	}
	pl := placements[0]
	att := &nfAttachment{}
	o.setState(graphID, n.ID, att, StateStarting)
	inst, err := pl.Driver.Start(compute.StartRequest{
		InstanceName: graphID + "." + n.ID,
		GraphID:      graphID,
		Template:     pl.Template,
		Config:       n.Config,
	})
	if err != nil {
		o.setState(graphID, n.ID, att, StateFailed)
		return err
	}
	att.inst = inst
	o.setState(graphID, n.ID, att, StateAttaching)
	if err := o.attachNF(d, att); err != nil {
		o.setState(graphID, n.ID, att, StateFailed)
		_ = pl.Driver.Stop(inst)
		return err
	}
	d.nfs[n.ID] = att
	o.setState(graphID, n.ID, att, StateRunning)
	o.metrics.nfStarts.Inc()
	o.journal.Recordf(telemetry.EventNFStart, o.cfg.NodeName, graphID,
		fmt.Sprintf("%s as %s", n.ID, pl.Technology))
	return nil
}

// restartNF replaces a changed NF's instance with a fresh one running the
// new configuration: the fallback path of a graph update when in-place
// reconfiguration is unsupported. The old instance stops before the new one
// starts — a non-sharable NNF or an exhausted flavor cannot run twice — so
// the NF is briefly out of the datapath; steering still points at its old
// ports until step 6 swaps it. If the new instance cannot start, the
// previous spec's instance is restored best-effort so the graph is not
// left with a hole its steering still points into. Callers hold o.mu.
func (o *Orchestrator) restartNF(d *DeployedGraph, graphID string, n nffg.NF) error {
	if old, ok := d.nfs[n.ID]; ok {
		o.setState(graphID, n.ID, old, StateDraining)
		o.detachNF(d, n.ID, old)
		delete(d.nfs, n.ID)
	}
	err := o.startAndAttachNF(d, graphID, n)
	if err == nil {
		return nil
	}
	// Best-effort recovery: put the previous spec's instance back so the
	// graph is not left with a silent hole the steering points into. The
	// restored instance sits on fresh LSI ports, so the steering must be
	// repointed at it too (d.Graph still is the spec it came from).
	if prev := d.Graph.FindNF(n.ID); prev != nil {
		rerr := o.startAndAttachNF(d, graphID, *prev)
		if rerr == nil {
			rerr = o.reprogram(d)
		}
		if rerr != nil {
			o.journal.Recordf(telemetry.EventNFConfig, o.cfg.NodeName, graphID,
				fmt.Sprintf("%s lost: restart failed (%v), recovery failed (%v)", n.ID, err, rerr))
		} else {
			o.journal.Recordf(telemetry.EventNFConfig, o.cfg.NodeName, graphID,
				fmt.Sprintf("%s restored to previous config after failed restart", n.ID))
		}
	}
	return err
}

// reprogram recompiles the graph's steering against its current spec and
// attachments and repoints the LSI with one atomic snapshot swap. Callers
// hold o.mu.
func (o *Orchestrator) reprogram(d *DeployedGraph) error {
	entries, err := o.compileEntries(d, d.cookie)
	if err != nil {
		return err
	}
	_, err = d.lsi.sw.SwapFlows(d.cookie, entries)
	return err
}
