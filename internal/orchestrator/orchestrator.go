// Package orchestrator implements the local orchestrator of the NFV compute
// node (paper Figure 1): it receives Network Function Forwarding Graphs,
// decides VNF-vs-NNF placement per NF, instantiates the functions through
// the compute manager's drivers, creates one Logical Switch Instance per
// graph plus the base LSI-0 classifier, and programs traffic steering
// through per-LSI OpenFlow controllers.
package orchestrator

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/compute"
	"repro/internal/execenv"
	"repro/internal/netdev"
	"repro/internal/nffg"
	"repro/internal/openflow"
	"repro/internal/repository"
	"repro/internal/resources"
	"repro/internal/telemetry"
	"repro/internal/vswitch"
)

// Config wires the orchestrator to the node's services.
type Config struct {
	// NodeName labels the node.
	NodeName string
	// Interfaces are the node's physical interface names, attached to
	// LSI-0 in order.
	Interfaces []string
	// Resources is the node ledger (capabilities + CPU/RAM).
	Resources *resources.Pool
	// Repo is the VNF repository.
	Repo *repository.Repository
	// Compute is the compute manager with registered drivers.
	Compute *compute.Manager
	// Clock is the shared virtual clock (optional).
	Clock *execenv.VirtualClock
	// Journal receives the node's structured telemetry events; nil gets a
	// private journal of telemetry.DefaultJournalDepth entries.
	Journal *telemetry.Journal
}

// lsiConn is one switch + its control channel.
type lsiConn struct {
	sw    *vswitch.Switch
	agent *openflow.Agent
	ctrl  *openflow.Controller
	done  chan struct{}
}

// newLSIConn builds a switch with a live OpenFlow channel over an
// in-process pipe, exactly as the un-orchestrator runs one controller per
// LSI.
func newLSIConn(name string, dpid uint64) (*lsiConn, error) {
	sw := vswitch.New(name, dpid)
	ctrlSide, agentSide := net.Pipe()
	agent := openflow.NewAgent(sw, agentSide)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = agent.Run()
	}()
	ctrl, err := openflow.Connect(ctrlSide)
	if err != nil {
		agent.Stop()
		<-done
		return nil, err
	}
	return &lsiConn{sw: sw, agent: agent, ctrl: ctrl, done: done}, nil
}

func (l *lsiConn) close() {
	_ = l.ctrl.Close()
	l.agent.Stop()
	<-l.done
}

// nfAttachment records how one NF of a graph reaches its LSI.
type nfAttachment struct {
	inst *compute.Instance
	// lsiPorts maps logical NF port index -> graph-LSI port number
	// (direct attachments only).
	lsiPorts []uint32
	// lsiSide holds the LSI-side netdev ports created for this NF, for
	// teardown.
	lsiSide []*netdev.Port
	// nnfVlink is the graph-LSI port of the virtual link that carries
	// marked traffic to LSI-0 (shared native NFs only).
	nnfVlink uint32
	// nnfVlinkLSI0 is the LSI-0 side of that virtual link.
	nnfVlinkLSI0 uint32
	// lsi0Port is the LSI-0 port the shared NNF is attached to.
	lsi0Port uint32
}

// epAttachment records one endpoint's virtual link.
type epAttachment struct {
	ep nffg.Endpoint
	// graphPort is the graph-LSI port of the virtual link.
	graphPort uint32
	// lsi0Port is the LSI-0 side of the virtual link.
	lsi0Port uint32
	// cookie tags this endpoint's LSI-0 classification flows, so a single
	// endpoint can be detached in place during Update without disturbing
	// the rest of the graph's LSI-0 state.
	cookie uint64
	// vlanRegistered records that this attachment claimed its (interface,
	// VLAN) slot in vlanEPs; detachEndpoint only releases the slot then,
	// so cleaning up a failed attach cannot evict the rightful owner.
	vlanRegistered bool
}

// DeployedGraph is one running service graph.
type DeployedGraph struct {
	Graph *nffg.Graph

	lsi    *lsiConn
	cookie uint64
	nfs    map[string]*nfAttachment // by NF id
	eps    map[string]*epAttachment // by endpoint id
}

// LSI returns the graph's switch, for inspection.
func (d *DeployedGraph) LSI() *vswitch.Switch { return d.lsi.sw }

// Controller returns the graph's steering controller, for inspection.
func (d *DeployedGraph) Controller() *openflow.Controller { return d.lsi.ctrl }

// Instances returns the graph's NF instances keyed by NF id.
func (d *DeployedGraph) Instances() map[string]*compute.Instance {
	out := make(map[string]*compute.Instance, len(d.nfs))
	for id, att := range d.nfs {
		out[id] = att.inst
	}
	return out
}

// Orchestrator is the node's local orchestrator.
type Orchestrator struct {
	cfg Config

	journal  *telemetry.Journal
	registry *telemetry.Registry
	metrics  *opMetrics

	lsi0 *lsiConn
	// extPorts are the outward-facing peers of the physical interfaces:
	// traffic generators inject and collect frames here.
	extPorts map[string]*netdev.Port
	// ifPorts maps interface name -> LSI-0 port number.
	ifPorts map[string]uint32

	mu       sync.Mutex
	graphs   map[string]*DeployedGraph
	dpidGen  uint64
	cookieGn uint64
	portGen  map[*vswitch.Switch]uint32
	// vlanEPs guards (interface, vlan) uniqueness across graphs.
	vlanEPs map[string]string // "if/vlan" -> graph id
	// internalGroups tracks EPInternal rendezvous: group -> members.
	internalGroups map[string][]groupMember
	// nnfPorts tracks shared NNF attachments on LSI-0 by runtime name.
	nnfPorts map[string]uint32
}

type groupMember struct {
	graphID  string
	epID     string
	lsi0Port uint32
	// cookie is the member endpoint's flow cookie; the rendezvous pair
	// flows live under the cookie of whichever member joined second.
	cookie uint64
}

// New builds the orchestrator and its base LSI with the node's physical
// interfaces attached.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.Resources == nil || cfg.Repo == nil || cfg.Compute == nil {
		return nil, fmt.Errorf("orchestrator: incomplete config")
	}
	if cfg.NodeName == "" {
		cfg.NodeName = "un-node"
	}
	journal := cfg.Journal
	if journal == nil {
		journal = telemetry.NewJournal(telemetry.DefaultJournalDepth)
	}
	o := &Orchestrator{
		cfg:            cfg,
		journal:        journal,
		registry:       telemetry.NewRegistry(),
		metrics:        newOpMetrics(),
		extPorts:       make(map[string]*netdev.Port),
		ifPorts:        make(map[string]uint32),
		graphs:         make(map[string]*DeployedGraph),
		portGen:        make(map[*vswitch.Switch]uint32),
		vlanEPs:        make(map[string]string),
		internalGroups: make(map[string][]groupMember),
		nnfPorts:       make(map[string]uint32),
	}
	lsi0, err := newLSIConn(cfg.NodeName+"/lsi-0", o.nextDPID())
	if err != nil {
		return nil, err
	}
	o.lsi0 = lsi0
	for _, ifName := range cfg.Interfaces {
		if _, dup := o.extPorts[ifName]; dup {
			lsi0.close()
			return nil, fmt.Errorf("orchestrator: duplicate interface %q", ifName)
		}
		ext, sw := netdev.Veth(ifName+"/ext", ifName)
		num := o.nextPort(lsi0.sw)
		if err := lsi0.sw.AddPort(num, sw); err != nil {
			lsi0.close()
			return nil, err
		}
		o.extPorts[ifName] = ext
		o.ifPorts[ifName] = num
	}
	o.registry.Register(o)
	return o, nil
}

// Close tears down every graph and the base LSI.
func (o *Orchestrator) Close() {
	for _, id := range o.GraphIDs() {
		_ = o.Undeploy(id)
	}
	o.lsi0.close()
}

// LSI0 returns the base switch, for inspection.
func (o *Orchestrator) LSI0() *vswitch.Switch { return o.lsi0.sw }

// CacheStats aggregates the microflow-cache counters of LSI-0 and every
// graph LSI: the node-level fast-path figure reported next to flow stats.
func (o *Orchestrator) CacheStats() vswitch.CacheStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	agg := o.lsi0.sw.CacheStats()
	for _, d := range o.graphs {
		cs := d.lsi.sw.CacheStats()
		agg.Hits += cs.Hits
		agg.Misses += cs.Misses
		agg.Entries += cs.Entries
	}
	return agg
}

// InterfacePort returns the outward-facing peer of a physical interface;
// tests and traffic generators send and receive node traffic through it.
func (o *Orchestrator) InterfacePort(name string) (*netdev.Port, bool) {
	p, ok := o.extPorts[name]
	return p, ok
}

// GraphIDs returns the ids of the deployed graphs, sorted.
func (o *Orchestrator) GraphIDs() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.graphs))
	for id := range o.graphs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Graph returns a deployed graph.
func (o *Orchestrator) Graph(id string) (*DeployedGraph, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[id]
	return d, ok
}

// GraphSpec returns a copy of the deployed NF-FG of a graph, safe to diff
// against a desired version while the orchestrator keeps running.
func (o *Orchestrator) GraphSpec(id string) (*nffg.Graph, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[id]
	if !ok {
		return nil, false
	}
	return d.Graph.Clone(), true
}

// Usage reports the node's resource-ledger consumption.
func (o *Orchestrator) Usage() (usedCPU, totalCPU int, usedRAM, totalRAM uint64) {
	return o.cfg.Resources.Usage()
}

// Capabilities returns the node's capability set as strings.
func (o *Orchestrator) Capabilities() []string {
	caps := o.cfg.Resources.Capabilities()
	out := make([]string, len(caps))
	for i, c := range caps {
		out[i] = string(c)
	}
	return out
}

func (o *Orchestrator) nextDPID() uint64 {
	o.dpidGen++
	return o.dpidGen
}

func (o *Orchestrator) nextCookie() uint64 {
	o.cookieGn++
	return o.cookieGn
}

func (o *Orchestrator) nextPort(sw *vswitch.Switch) uint32 {
	o.portGen[sw]++
	return o.portGen[sw]
}

// Deploy validates, schedules and instantiates a graph, then programs
// traffic steering. On any failure the partial deployment is rolled back.
func (o *Orchestrator) Deploy(g *nffg.Graph) error {
	start := time.Now()
	err := o.deploy(g)
	o.metrics.deployLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		o.metrics.deployFailures.Inc()
		return err
	}
	o.metrics.deploys.Inc()
	o.journal.Recordf(telemetry.EventDeploy, o.cfg.NodeName, g.ID,
		fmt.Sprintf("%d NFs, %d rules", len(g.NFs), len(g.Rules)))
	return nil
}

func (o *Orchestrator) deploy(g *nffg.Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.graphs[g.ID]; dup {
		return fmt.Errorf("orchestrator: graph %q already deployed (use Update)", g.ID)
	}
	placements, err := o.schedule(g)
	if err != nil {
		return err
	}
	d, err := o.instantiate(g.Clone(), placements)
	if err != nil {
		return err
	}
	if err := o.program(d); err != nil {
		o.teardown(d)
		return err
	}
	o.graphs[g.ID] = d
	return nil
}

// instantiate creates the graph LSI, starts the NFs and wires every port.
func (o *Orchestrator) instantiate(g *nffg.Graph, placements []Placement) (*DeployedGraph, error) {
	lsi, err := newLSIConn(fmt.Sprintf("%s/lsi-%s", o.cfg.NodeName, g.ID), o.nextDPID())
	if err != nil {
		return nil, err
	}
	d := &DeployedGraph{
		Graph:  g,
		lsi:    lsi,
		cookie: o.nextCookie(),
		nfs:    make(map[string]*nfAttachment),
		eps:    make(map[string]*epAttachment),
	}
	// Start NFs.
	for _, pl := range placements {
		inst, err := pl.Driver.Start(compute.StartRequest{
			InstanceName: g.ID + "." + pl.NF.ID,
			GraphID:      g.ID,
			Template:     pl.Template,
			Config:       pl.NF.Config,
		})
		if err != nil {
			o.teardown(d)
			return nil, fmt.Errorf("orchestrator: starting %q: %w", pl.NF.ID, err)
		}
		att := &nfAttachment{inst: inst}
		if err := o.attachNF(d, att); err != nil {
			// The instance started but is not yet recorded: stop it
			// explicitly, then roll back the rest.
			_ = pl.Driver.Stop(inst)
			o.teardown(d)
			return nil, err
		}
		d.nfs[pl.NF.ID] = att
		o.metrics.nfStarts.Inc()
		o.journal.Recordf(telemetry.EventNFStart, o.cfg.NodeName, g.ID,
			fmt.Sprintf("%s as %s", pl.NF.ID, pl.Technology))
	}
	// Wire endpoints.
	for _, ep := range g.Endpoints {
		att, err := o.attachEndpoint(d, ep)
		if err != nil {
			o.teardown(d)
			return nil, err
		}
		d.eps[ep.ID] = att
	}
	return d, nil
}

// attachNF wires one NF instance to the graph LSI (direct) or to LSI-0
// (shared native NF behind the adaptation layer).
func (o *Orchestrator) attachNF(d *DeployedGraph, att *nfAttachment) error {
	inst := att.inst
	if inst.Shared {
		// The shared NNF runtime exposes one adapted port attached to
		// LSI-0 (once per instance); the graph reaches it through a
		// dedicated virtual link.
		lsi0Port, attached := o.nnfPorts[inst.Runtime.Name()]
		if !attached {
			lsiSide := netdev.NewPort(inst.Runtime.Name() + "/lsi0")
			if err := netdev.Connect(inst.Runtime.Port(0), lsiSide); err != nil {
				return err
			}
			lsi0Port = o.nextPort(o.lsi0.sw)
			if err := o.lsi0.sw.AddPort(lsi0Port, lsiSide); err != nil {
				return err
			}
			o.nnfPorts[inst.Runtime.Name()] = lsi0Port
		}
		att.lsi0Port = lsi0Port
		// Virtual link graph-LSI <-> LSI-0 for the marked traffic.
		gSide, zSide := netdev.Veth(
			fmt.Sprintf("%s.%s/vl-nnf", d.Graph.ID, inst.Name),
			fmt.Sprintf("lsi0/vl-nnf-%s", inst.Name),
		)
		gPort := o.nextPort(d.lsi.sw)
		if err := d.lsi.sw.AddPort(gPort, gSide); err != nil {
			return err
		}
		zPort := o.nextPort(o.lsi0.sw)
		if err := o.lsi0.sw.AddPort(zPort, zSide); err != nil {
			return err
		}
		att.nnfVlink = gPort
		att.nnfVlinkLSI0 = zPort
		att.lsiSide = append(att.lsiSide, gSide, zSide)
		// LSI-0 steering for the marks: toward the NNF and back.
		for _, mark := range inst.InMarks {
			err := o.lsi0.ctrl.InstallFlow(0, 300, d.cookie,
				vswitch.MatchAll().WithInPort(zPort).WithVLAN(mark),
				[]vswitch.Action{vswitch.Output(lsi0Port)})
			if err != nil {
				return err
			}
		}
		for _, mark := range inst.OutMarks {
			err := o.lsi0.ctrl.InstallFlow(0, 300, d.cookie,
				vswitch.MatchAll().WithInPort(lsi0Port).WithVLAN(mark),
				[]vswitch.Action{vswitch.Output(zPort)})
			if err != nil {
				return err
			}
		}
		return o.lsi0.ctrl.Barrier()
	}
	// Direct attachment: one LSI port per NF port.
	att.lsiPorts = make([]uint32, inst.Runtime.NumPorts())
	for i := 0; i < inst.Runtime.NumPorts(); i++ {
		lsiSide := netdev.NewPort(fmt.Sprintf("%s/p%d", inst.Name, i))
		if err := netdev.Connect(inst.Runtime.Port(i), lsiSide); err != nil {
			return err
		}
		num := o.nextPort(d.lsi.sw)
		if err := d.lsi.sw.AddPort(num, lsiSide); err != nil {
			return err
		}
		att.lsiPorts[i] = num
		att.lsiSide = append(att.lsiSide, lsiSide)
	}
	return nil
}

// attachEndpoint builds the virtual link between the graph LSI and LSI-0
// for one endpoint, and installs the LSI-0 classification rules. On any
// failure its partial state (ports, flows, bookkeeping) is removed before
// returning, so a failed in-place Update can be retried without leaking.
func (o *Orchestrator) attachEndpoint(d *DeployedGraph, ep nffg.Endpoint) (_ *epAttachment, err error) {
	gSide, zSide := netdev.Veth(
		fmt.Sprintf("%s.%s/vl", d.Graph.ID, ep.ID),
		fmt.Sprintf("lsi0/vl-%s-%s", d.Graph.ID, ep.ID),
	)
	gPort := o.nextPort(d.lsi.sw)
	if err := d.lsi.sw.AddPort(gPort, gSide); err != nil {
		return nil, err
	}
	zPort := o.nextPort(o.lsi0.sw)
	if err := o.lsi0.sw.AddPort(zPort, zSide); err != nil {
		netdev.Disconnect(gSide)
		_ = d.lsi.sw.RemovePort(gPort)
		return nil, err
	}
	att := &epAttachment{ep: ep, graphPort: gPort, lsi0Port: zPort, cookie: o.nextCookie()}
	defer func() {
		if err != nil {
			o.detachEndpoint(d, att)
		}
	}()

	switch ep.Type {
	case nffg.EPInterface:
		ifPort, ok := o.ifPorts[ep.Interface]
		if !ok {
			return nil, fmt.Errorf("orchestrator: graph %q: endpoint %q: no interface %q on node",
				d.Graph.ID, ep.ID, ep.Interface)
		}
		// Classify untagged traffic from the interface to the graph,
		// and graph egress back out the interface.
		if err := o.lsi0.ctrl.InstallFlow(0, 100, att.cookie,
			vswitch.MatchAll().WithInPort(ifPort),
			[]vswitch.Action{vswitch.Output(zPort)}); err != nil {
			return nil, err
		}
		if err := o.lsi0.ctrl.InstallFlow(0, 100, att.cookie,
			vswitch.MatchAll().WithInPort(zPort),
			[]vswitch.Action{vswitch.Output(ifPort)}); err != nil {
			return nil, err
		}
	case nffg.EPVLAN:
		key := fmt.Sprintf("%s/%d", ep.Interface, ep.VLANID)
		if owner, used := o.vlanEPs[key]; used {
			return nil, fmt.Errorf("orchestrator: graph %q: endpoint %q: VLAN %d on %q already used by graph %q",
				d.Graph.ID, ep.ID, ep.VLANID, ep.Interface, owner)
		}
		ifPort, ok := o.ifPorts[ep.Interface]
		if !ok {
			return nil, fmt.Errorf("orchestrator: graph %q: endpoint %q: no interface %q on node",
				d.Graph.ID, ep.ID, ep.Interface)
		}
		// Tagged ingress: pop and hand to the graph; egress: push and
		// send out. VLAN classification outranks plain interface rules.
		if err := o.lsi0.ctrl.InstallFlow(0, 200, att.cookie,
			vswitch.MatchAll().WithInPort(ifPort).WithVLAN(ep.VLANID),
			[]vswitch.Action{vswitch.PopVLAN(), vswitch.Output(zPort)}); err != nil {
			return nil, err
		}
		if err := o.lsi0.ctrl.InstallFlow(0, 200, att.cookie,
			vswitch.MatchAll().WithInPort(zPort),
			[]vswitch.Action{vswitch.PushVLAN(ep.VLANID), vswitch.Output(ifPort)}); err != nil {
			return nil, err
		}
		o.vlanEPs[key] = d.Graph.ID
		att.vlanRegistered = true
	case nffg.EPInternal:
		members := o.internalGroups[ep.InternalGroup]
		if len(members) >= 2 {
			return nil, fmt.Errorf("orchestrator: graph %q: endpoint %q: internal group %q already has two members",
				d.Graph.ID, ep.ID, ep.InternalGroup)
		}
		if len(members) == 1 {
			peer := members[0]
			if err := o.lsi0.ctrl.InstallFlow(0, 150, att.cookie,
				vswitch.MatchAll().WithInPort(zPort),
				[]vswitch.Action{vswitch.Output(peer.lsi0Port)}); err != nil {
				return nil, err
			}
			if err := o.lsi0.ctrl.InstallFlow(0, 150, att.cookie,
				vswitch.MatchAll().WithInPort(peer.lsi0Port),
				[]vswitch.Action{vswitch.Output(zPort)}); err != nil {
				return nil, err
			}
		}
		o.internalGroups[ep.InternalGroup] = append(members,
			groupMember{graphID: d.Graph.ID, epID: ep.ID, lsi0Port: zPort, cookie: att.cookie})
	}
	if err := o.lsi0.ctrl.Barrier(); err != nil {
		return nil, err
	}
	return att, nil
}

// detachEndpoint reverses attachEndpoint: it removes the endpoint's LSI-0
// classification flows, its virtual-link ports on both switches, and the
// cross-graph bookkeeping. Used by teardown and by in-place endpoint removal
// during Update.
func (o *Orchestrator) detachEndpoint(d *DeployedGraph, att *epAttachment) {
	o.lsi0.sw.DeleteFlows(att.cookie)
	if p := o.lsi0.sw.Port(att.lsi0Port); p != nil {
		netdev.Disconnect(p)
	}
	_ = o.lsi0.sw.RemovePort(att.lsi0Port)
	_ = d.lsi.sw.RemovePort(att.graphPort)
	switch att.ep.Type {
	case nffg.EPVLAN:
		if att.vlanRegistered {
			delete(o.vlanEPs, fmt.Sprintf("%s/%d", att.ep.Interface, att.ep.VLANID))
		}
	case nffg.EPInternal:
		// Touch the group only if this endpoint actually joined it (a
		// failed attach never did). The rendezvous pair flows live under
		// the cookie of whichever member joined second; drop every
		// member's flows so no stale rule keeps pointing at the removed
		// port.
		members := o.internalGroups[att.ep.InternalGroup]
		joined := false
		for _, m := range members {
			if m.graphID == d.Graph.ID && m.epID == att.ep.ID {
				joined = true
				break
			}
		}
		if !joined {
			break
		}
		kept := members[:0]
		for _, m := range members {
			o.lsi0.sw.DeleteFlows(m.cookie)
			if m.graphID != d.Graph.ID || m.epID != att.ep.ID {
				kept = append(kept, m)
			}
		}
		if len(kept) == 0 {
			delete(o.internalGroups, att.ep.InternalGroup)
		} else {
			o.internalGroups[att.ep.InternalGroup] = kept
		}
	}
}

// Undeploy removes a graph and all its state.
func (o *Orchestrator) Undeploy(id string) error {
	start := time.Now()
	err := o.undeploy(id)
	o.metrics.undeployLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		o.metrics.undeployFailures.Inc()
		return err
	}
	o.metrics.undeploys.Inc()
	o.journal.Recordf(telemetry.EventUndeploy, o.cfg.NodeName, id, "")
	return nil
}

func (o *Orchestrator) undeploy(id string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[id]
	if !ok {
		return fmt.Errorf("orchestrator: graph %q not deployed", id)
	}
	o.teardown(d)
	delete(o.graphs, id)
	return nil
}

// teardown reverses instantiate+program. Safe on partially-built graphs.
func (o *Orchestrator) teardown(d *DeployedGraph) {
	// Remove LSI-0 state installed under the graph's cookie.
	o.lsi0.sw.DeleteFlows(d.cookie)
	// Stop NFs.
	for nfID, att := range d.nfs {
		o.metrics.nfStops.Inc()
		o.journal.Recordf(telemetry.EventNFStop, o.cfg.NodeName, d.Graph.ID,
			fmt.Sprintf("%s as %s", nfID, att.inst.Technology))
		if drv, ok := o.cfg.Compute.Driver(att.inst.Technology); ok {
			wasShared := att.inst.Shared
			name := att.inst.Runtime.Name()
			_ = drv.Stop(att.inst)
			// If the shared NNF instance fully stopped, detach its
			// LSI-0 port.
			if wasShared && !att.inst.Runtime.Running() {
				if num, attached := o.nnfPorts[name]; attached {
					if p := o.lsi0.sw.Port(num); p != nil {
						netdev.Disconnect(p)
					}
					_ = o.lsi0.sw.RemovePort(num)
					delete(o.nnfPorts, name)
				}
			}
		}
		for _, p := range att.lsiSide {
			netdev.Disconnect(p)
		}
		if att.nnfVlinkLSI0 != 0 {
			_ = o.lsi0.sw.RemovePort(att.nnfVlinkLSI0)
		}
		delete(d.nfs, nfID)
	}
	// Detach endpoint virtual links from LSI-0 and bookkeeping.
	for epID, att := range d.eps {
		o.detachEndpoint(d, att)
		delete(d.eps, epID)
	}
	d.lsi.close()
}

// Update applies a new version of a deployed graph. NFs and endpoints are
// diffed individually; steering rules are recompiled wholesale.
func (o *Orchestrator) Update(g *nffg.Graph) error {
	start := time.Now()
	err := o.update(g)
	o.metrics.updateLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		o.metrics.updateFailures.Inc()
		return err
	}
	o.metrics.updates.Inc()
	o.journal.Recordf(telemetry.EventUpdate, o.cfg.NodeName, g.ID,
		fmt.Sprintf("%d NFs, %d rules", len(g.NFs), len(g.Rules)))
	return nil
}

func (o *Orchestrator) update(g *nffg.Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[g.ID]
	if !ok {
		return fmt.Errorf("orchestrator: graph %q not deployed (use Deploy)", g.ID)
	}
	diff := nffg.Compute(d.Graph, g)
	if diff.Empty() {
		return nil
	}
	// 1. Remove dropped NFs.
	for _, n := range diff.RemovedNFs {
		att, exists := d.nfs[n.ID]
		if !exists {
			continue
		}
		if drv, reg := o.cfg.Compute.Driver(att.inst.Technology); reg {
			_ = drv.Stop(att.inst)
		}
		for _, p := range att.lsiSide {
			netdev.Disconnect(p)
		}
		for _, num := range att.lsiPorts {
			_ = d.lsi.sw.RemovePort(num)
		}
		if att.nnfVlink != 0 {
			_ = d.lsi.sw.RemovePort(att.nnfVlink)
		}
		if att.nnfVlinkLSI0 != 0 {
			_ = o.lsi0.sw.RemovePort(att.nnfVlinkLSI0)
		}
		delete(d.nfs, n.ID)
		o.metrics.nfStops.Inc()
		o.journal.Recordf(telemetry.EventNFStop, o.cfg.NodeName, g.ID,
			fmt.Sprintf("%s as %s", n.ID, att.inst.Technology))
	}
	// 2. Start added NFs.
	if len(diff.AddedNFs) > 0 {
		sub := &nffg.Graph{ID: g.ID, NFs: diff.AddedNFs}
		placements, err := o.schedule(sub)
		if err != nil {
			return err
		}
		for _, pl := range placements {
			inst, err := pl.Driver.Start(compute.StartRequest{
				InstanceName: g.ID + "." + pl.NF.ID,
				GraphID:      g.ID,
				Template:     pl.Template,
				Config:       pl.NF.Config,
			})
			if err != nil {
				return fmt.Errorf("orchestrator: update: starting %q: %w", pl.NF.ID, err)
			}
			att := &nfAttachment{inst: inst}
			if err := o.attachNF(d, att); err != nil {
				_ = pl.Driver.Stop(inst)
				return err
			}
			d.nfs[pl.NF.ID] = att
			o.metrics.nfStarts.Inc()
			o.journal.Recordf(telemetry.EventNFStart, o.cfg.NodeName, g.ID,
				fmt.Sprintf("%s as %s", pl.NF.ID, pl.Technology))
		}
	}
	// 3. Reconfigure changed NFs in place when the driver supports it.
	for _, n := range diff.ChangedNFs {
		att, exists := d.nfs[n.ID]
		if !exists {
			continue
		}
		if cfgr, ok := att.inst.Runtime.Processor().(interface {
			Configure(map[string]string) error
		}); ok {
			if err := cfgr.Configure(n.Config); err != nil {
				return fmt.Errorf("orchestrator: update: reconfiguring %q: %w", n.ID, err)
			}
		}
	}
	// 4. Endpoints: removed ones are detached in place (their LSI-0
	// classification flows are tagged with a per-endpoint cookie), added
	// ones attached; a changed endpoint appears in the diff as
	// removed+added under the same id. The global orchestrator leans on
	// this when it restitches cross-node links after rescheduling.
	for _, ep := range diff.RemovedEPs {
		att, exists := d.eps[ep.ID]
		if !exists {
			continue
		}
		o.detachEndpoint(d, att)
		delete(d.eps, ep.ID)
	}
	for _, ep := range diff.AddedEPs {
		// Idempotency: a retry of a partially-failed update finds some
		// additions already attached; attaching them again would
		// duplicate LSI-0 state.
		if existing, dup := d.eps[ep.ID]; dup {
			if existing.ep == ep {
				continue
			}
			o.detachEndpoint(d, existing)
			delete(d.eps, ep.ID)
		}
		att, err := o.attachEndpoint(d, ep)
		if err != nil {
			return fmt.Errorf("orchestrator: update: attaching endpoint %q: %w", ep.ID, err)
		}
		d.eps[ep.ID] = att
	}
	// 5. Recompile steering.
	d.Graph = g.Clone()
	if err := d.lsi.ctrl.DeleteFlows(d.cookie); err != nil {
		return err
	}
	if err := d.lsi.ctrl.Barrier(); err != nil {
		return err
	}
	return o.program(d)
}
