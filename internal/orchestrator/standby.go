package orchestrator

import (
	"fmt"
	"sort"

	"repro/internal/compute"
	"repro/internal/nf"
	"repro/internal/nffg"
	"repro/internal/telemetry"
)

// Active-standby redundancy: an NF declaring redundancy "active-standby"
// gets a second, fully-attached instance that receives no traffic — it is
// absent from the steering compilation (only d.nfs is compiled) but its
// ports are wired to the graph LSI, so promotion is nothing but the
// existing atomic SwapFlows repoint plus a state import. The standby's
// flow state is refreshed by SyncStandbys (periodically, from the
// reconcile loop or a chaos harness) and once more at promotion time by
// salvaging the failed active's in-memory tables, so a crash loses no
// state the active ever held.
//
// A graph update that changes the NF's configuration restarts the active
// instance only; the standby is re-armed with the new configuration at the
// next promotion or redundancy toggle.

// reconcileStandbys brings the deployed graph's standby set in line with
// its spec: every active-standby NF gets a standby attachment, every
// standby whose NF no longer wants one is retired. Called by Deploy and
// Update after the replica reconciliation.
func (o *Orchestrator) reconcileStandbys(g *nffg.Graph) error {
	gl := o.lockGraph(g.ID)
	defer o.unlockGraph(g.ID, gl)
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[g.ID]
	if !ok {
		return nil
	}
	want := make(map[string]bool, len(g.NFs))
	for _, n := range g.NFs {
		if n.Redundancy == nffg.RedundancyActiveStandby {
			want[n.ID] = true
		}
	}
	for nfID, sb := range d.standbys {
		if want[nfID] {
			continue
		}
		o.setState(g.ID, nfID, sb, StateDraining)
		o.detachNF(d, nfID, sb)
		delete(d.standbys, nfID)
	}
	for _, n := range g.NFs {
		if !want[n.ID] {
			continue
		}
		if _, have := d.standbys[n.ID]; have {
			continue
		}
		sb, err := o.startStandby(d, g.ID, n)
		if err != nil {
			return fmt.Errorf("orchestrator: standby for %q: %w", n.ID, err)
		}
		d.standbys[n.ID] = sb
	}
	return nil
}

// startStandby schedules, starts and attaches a standby instance of one
// NF. The attachment is NOT recorded in d.nfs, so steering never selects
// it until PromoteStandby swaps it in. Callers hold o.mu.
func (o *Orchestrator) startStandby(d *DeployedGraph, graphID string, n nffg.NF) (*nfAttachment, error) {
	placements, err := o.schedule(&nffg.Graph{ID: graphID, NFs: []nffg.NF{n}})
	if err != nil {
		return nil, err
	}
	pl := placements[0]
	att := &nfAttachment{}
	o.setState(graphID, n.ID, att, StateStarting)
	o.standbyGen++
	inst, err := pl.Driver.Start(compute.StartRequest{
		InstanceName: fmt.Sprintf("%s.%s#standby%d", graphID, n.ID, o.standbyGen),
		GraphID:      graphID,
		Template:     pl.Template,
		Config:       n.Config,
	})
	if err != nil {
		o.setState(graphID, n.ID, att, StateFailed)
		return nil, err
	}
	if inst.Shared {
		// A shared native NF is one node-wide runtime: a second attachment
		// would be the same instance, not a redundant one.
		_ = pl.Driver.Stop(inst)
		o.setState(graphID, n.ID, att, StateFailed)
		return nil, fmt.Errorf("shared native NF cannot run active-standby")
	}
	att.inst = inst
	o.setState(graphID, n.ID, att, StateAttaching)
	if err := o.attachNF(d, att); err != nil {
		o.setState(graphID, n.ID, att, StateFailed)
		_ = pl.Driver.Stop(inst)
		return nil, err
	}
	// The standby idles in "attaching": it is wired but unsteered, and the
	// un_nf_state gauge distinguishes it from the running active.
	o.metrics.nfStarts.Inc()
	o.journal.Recordf(telemetry.EventNFStart, o.cfg.NodeName, graphID,
		fmt.Sprintf("%s standby as %s", n.ID, pl.Technology))
	return att, nil
}

// PromoteStandby makes an active-standby NF's standby the active instance:
// the failed (or retired) active's flow state is salvaged from its
// processor's in-memory tables, imported into the standby, and one atomic
// SwapFlows repoints the graph's steering — the same zero-loss path scale
// and reflavor use. The old active is detached afterwards, and a fresh
// standby is re-armed best-effort.
func (o *Orchestrator) PromoteStandby(graphID, nfID string) error {
	gl := o.lockGraph(graphID)
	defer o.unlockGraph(graphID, gl)
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[graphID]
	if !ok {
		return fmt.Errorf("orchestrator: graph %q not deployed", graphID)
	}
	sb, ok := d.standbys[nfID]
	if !ok {
		return fmt.Errorf("orchestrator: graph %q: NF %q has no standby", graphID, nfID)
	}
	old, ok := d.nfs[nfID]
	if !ok {
		return fmt.Errorf("orchestrator: graph %q has no NF %q", graphID, nfID)
	}
	// Salvage: the dead instance's processor still holds its flow tables in
	// memory (Runtime.Stop only parks the execution environment), so the
	// promotion carries every flow the periodic sync missed.
	salvaged := 0
	if src, ok := statefulNF(old); ok {
		if dst, ok := statefulNF(sb); ok {
			states := src.ExportFlowState(nil)
			if err := dst.ImportFlowState(states); err != nil {
				o.journal.Recordf(telemetry.EventMigrate, o.cfg.NodeName, graphID,
					fmt.Sprintf("%s: salvaging %d flows into standby: %v", nfID, len(states), err))
			} else {
				salvaged = len(states)
			}
		}
	}
	delete(d.standbys, nfID)
	d.nfs[nfID] = sb
	if err := o.reprogram(d); err != nil {
		d.nfs[nfID] = old
		d.standbys[nfID] = sb
		return fmt.Errorf("orchestrator: promote: repointing steering: %w", err)
	}
	o.setState(graphID, nfID, sb, StateRunning)
	o.setState(graphID, nfID, old, StateDraining)
	o.detachNF(d, nfID, old)
	o.metrics.promotions.Inc()
	o.metrics.migratedFlows.Add(uint64(salvaged))
	o.journal.Recordf(telemetry.EventPromote, o.cfg.NodeName, graphID,
		fmt.Sprintf("%s: standby promoted, %d flows salvaged", nfID, salvaged))
	// Re-arm: redundancy should survive more than one failure. A node too
	// full to hold a new standby degrades to unprotected rather than
	// failing the promotion that already succeeded.
	if n := d.Graph.FindNF(nfID); n != nil && n.Redundancy == nffg.RedundancyActiveStandby {
		if next, err := o.startStandby(d, graphID, *n); err != nil {
			o.journal.Recordf(telemetry.EventOutage, o.cfg.NodeName, graphID,
				fmt.Sprintf("%s: re-arming standby: %v", nfID, err))
		} else {
			d.standbys[nfID] = next
		}
	}
	return nil
}

// KillNF simulates a crash of an NF's active instance by stopping its
// runtime out from under the orchestrator — the fault-injection hook the
// chaos harness drives. Bookkeeping is deliberately left stale, exactly as
// a real crash would leave it; RepairNF (or RepairReplicas) is the
// recovery path.
func (o *Orchestrator) KillNF(graphID, nfID string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[graphID]
	if !ok {
		return fmt.Errorf("orchestrator: graph %q not deployed", graphID)
	}
	att, ok := d.nfs[nfID]
	if !ok {
		return fmt.Errorf("orchestrator: graph %q has no NF %q", graphID, nfID)
	}
	att.inst.Runtime.Stop()
	o.journal.Recordf(telemetry.EventOutage, o.cfg.NodeName, graphID,
		fmt.Sprintf("%s: instance killed (fault injection)", nfID))
	return nil
}

// RepairNF recovers an NF whose instance died, choosing the strongest
// available path: promote the pre-attached standby (zero state loss),
// re-home a scaled NF's buckets onto surviving replicas (state salvaged),
// or restart in place (state since the last sync is lost).
func (o *Orchestrator) RepairNF(graphID, nfID string) error {
	o.mu.Lock()
	d, ok := o.graphs[graphID]
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("orchestrator: graph %q not deployed", graphID)
	}
	_, hasStandby := d.standbys[nfID]
	_, scaled := d.scales[nfID]
	o.mu.Unlock()
	if hasStandby {
		return o.PromoteStandby(graphID, nfID)
	}
	if scaled {
		_, err := o.RepairReplicas(graphID, nfID)
		return err
	}
	gl := o.lockGraph(graphID)
	defer o.unlockGraph(graphID, gl)
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok = o.graphs[graphID]
	if !ok {
		return fmt.Errorf("orchestrator: graph %q not deployed", graphID)
	}
	n := d.Graph.FindNF(nfID)
	if n == nil {
		return fmt.Errorf("orchestrator: graph %q has no NF %q", graphID, nfID)
	}
	if err := o.restartNF(d, graphID, *n); err != nil {
		return err
	}
	return o.reprogram(d)
}

// SyncStandbys replicates each active-standby NF's per-flow state from its
// active instance into its standby, graph by graph. Imports are
// idempotent, so running this on every reconcile tick keeps the standby's
// state gap bounded by one tick. Returns the number of flow-state entries
// copied.
func (o *Orchestrator) SyncStandbys() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	total := 0
	for id, d := range o.graphs {
		for nfID, sb := range d.standbys {
			src, ok := statefulNF(d.nfs[nfID])
			if !ok {
				continue
			}
			dst, ok := statefulNF(sb)
			if !ok {
				continue
			}
			states := src.ExportFlowState(nil)
			if len(states) == 0 {
				continue
			}
			if err := dst.ImportFlowState(states); err != nil {
				o.journal.Recordf(telemetry.EventStateSync, o.cfg.NodeName, id,
					fmt.Sprintf("%s: syncing %d flows to standby: %v", nfID, len(states), err))
				continue
			}
			total += len(states)
			o.metrics.standbySyncedFlows.Add(uint64(len(states)))
			o.journal.Recordf(telemetry.EventStateSync, o.cfg.NodeName, id,
				fmt.Sprintf("%s: %d flows synced to standby", nfID, len(states)))
		}
	}
	return total
}

// StandbyNFs returns the ids of the graph's NFs that currently hold a
// standby attachment, sorted.
func (o *Orchestrator) StandbyNFs(graphID string) []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[graphID]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(d.standbys))
	for nfID := range d.standbys {
		out = append(out, nfID)
	}
	sort.Strings(out)
	return out
}

// ExportNFState snapshots the full per-flow state of one NF across its
// replica set. A stateless NF exports nil. This is the node-level verb the
// global tier uses to replicate state onto a standby node.
func (o *Orchestrator) ExportNFState(graphID, nfID string) ([]nf.FlowState, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[graphID]
	if !ok {
		return nil, fmt.Errorf("orchestrator: graph %q not deployed", graphID)
	}
	att, ok := d.nfs[nfID]
	if !ok {
		return nil, fmt.Errorf("orchestrator: graph %q has no NF %q", graphID, nfID)
	}
	if sc := d.scales[nfID]; sc != nil {
		var out []nf.FlowState
		for _, rep := range sc.replicas {
			if s, ok := statefulNF(rep); ok {
				out = append(out, s.ExportFlowState(nil)...)
			}
		}
		return out, nil
	}
	s, ok := statefulNF(att)
	if !ok {
		return nil, nil
	}
	return s.ExportFlowState(nil), nil
}

// ImportNFState installs exported flow state into every instance serving
// the NF (replicas and standby alike). Imports overwrite and a replica
// holding state for buckets it does not own merely wastes the memory, so
// fanning the full dump out is correct, if not minimal — the price of
// keeping the node verb simple enough for a remote caller.
func (o *Orchestrator) ImportNFState(graphID, nfID string, states []nf.FlowState) error {
	if len(states) == 0 {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[graphID]
	if !ok {
		return fmt.Errorf("orchestrator: graph %q not deployed", graphID)
	}
	att, ok := d.nfs[nfID]
	if !ok {
		return fmt.Errorf("orchestrator: graph %q has no NF %q", graphID, nfID)
	}
	targets := []*nfAttachment{att}
	if sc := d.scales[nfID]; sc != nil {
		targets = sc.replicas
	}
	if sb, ok := d.standbys[nfID]; ok {
		targets = append(append([]*nfAttachment(nil), targets...), sb)
	}
	imported := false
	for _, t := range targets {
		s, ok := statefulNF(t)
		if !ok {
			continue
		}
		if err := s.ImportFlowState(states); err != nil {
			return fmt.Errorf("orchestrator: importing %d flows into %q: %w", len(states), nfID, err)
		}
		imported = true
	}
	if imported {
		o.journal.Recordf(telemetry.EventStateSync, o.cfg.NodeName, graphID,
			fmt.Sprintf("%s: %d flows imported", nfID, len(states)))
	}
	return nil
}

// TotalRatePPS reports the node's aggregate observed datapath packet rate
// across its deployed graphs — the arrival-rate input of the placement
// tier's M/M/1 latency predictor.
func (o *Orchestrator) TotalRatePPS() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	var total float64
	for id := range o.graphs {
		total += o.observedRateLocked(id)
	}
	return total
}
