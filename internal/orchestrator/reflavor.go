package orchestrator

import (
	"fmt"
	"time"

	"repro/internal/compute"
	"repro/internal/nffg"
	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/vswitch"
)

// Reflavor hot-swaps one NF of a deployed graph onto a different execution
// technology with make-before-break semantics and no steering gap:
//
//  1. the incoming flavor's instance starts and attaches to the graph LSI
//     while the outgoing one keeps serving traffic;
//  2. the LSI steering is repointed with one copy-on-write snapshot swap —
//     rules now target the new instance, and drain rules keep the outgoing
//     instance's return path alive, so every packet is forwarded by either
//     the complete old rule set or the complete new one;
//  3. the outgoing instance drains (its counters quiesce) and stops.
//
// Swapping to the NF's current technology is a no-op. The paper's
// deploy-time flavor decision thereby becomes revisable at runtime: the
// same NF migrates between a VM, a container, a DPDK process and a native
// process while its graph carries traffic.
func (o *Orchestrator) Reflavor(graphID, nfID string, tech nffg.Technology) error {
	start := time.Now()
	swapped, err := o.reflavor(graphID, nfID, tech)
	o.metrics.reflavorLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		o.metrics.reflavorFailures.Inc()
		return err
	}
	if swapped {
		o.metrics.reflavors.Inc()
		o.journal.Recordf(telemetry.EventReflavor, o.cfg.NodeName, graphID,
			fmt.Sprintf("%s -> %s", nfID, tech))
	}
	return nil
}

// ReflavorAuto is the policy-triggered variant: it asks the placement
// policy to re-rank the NF's packaged flavors at the graph's currently
// observed traffic rate and hot-swaps to the winner when it differs from
// the running technology. The chosen technology is returned either way.
func (o *Orchestrator) ReflavorAuto(graphID, nfID string) (nffg.Technology, error) {
	o.mu.Lock()
	d, ok := o.graphs[graphID]
	if !ok {
		o.mu.Unlock()
		return "", fmt.Errorf("orchestrator: graph %q not deployed", graphID)
	}
	att, ok := d.nfs[nfID]
	if !ok {
		o.mu.Unlock()
		return "", fmt.Errorf("orchestrator: graph %q has no NF %q", graphID, nfID)
	}
	current := att.inst.Technology
	n := d.Graph.FindNF(nfID)
	if n == nil {
		o.mu.Unlock()
		return "", fmt.Errorf("orchestrator: graph %q has no NF %q in its spec", graphID, nfID)
	}
	if n.TechnologyPreference != nffg.TechAny {
		// A pinned NF is not the policy's to move.
		o.mu.Unlock()
		return current, nil
	}
	tpl, ok := o.cfg.Repo.Lookup(n.Name)
	if !ok {
		o.mu.Unlock()
		return "", fmt.Errorf("orchestrator: NF %q not in repository", n.Name)
	}
	req := policy.Request{GraphID: graphID, NFID: nfID, RatePPS: o.observedRateLocked(graphID)}
	chosen := current
	for _, c := range o.cfg.Policy.Rank(req, o.flavorCandidates(tpl, nffg.TechAny)) {
		if c.Tech == current {
			// Keeping the running flavor needs no driver availability
			// check (it already runs) — unless its capability was
			// withdrawn, in which case the policy moves the NF off it.
			if o.cfg.Resources.Has(tpl.Flavors[c.Tech].Capability) {
				chosen = current
				break
			}
			continue
		}
		drv, registered := o.cfg.Compute.Driver(c.Tech)
		if registered && drv.Available(graphID, tpl) {
			chosen = c.Tech
			break
		}
	}
	o.mu.Unlock()
	if chosen == current {
		return current, nil
	}
	return chosen, o.Reflavor(graphID, nfID, chosen)
}

// reflavor implements Reflavor; it reports whether a swap actually ran.
func (o *Orchestrator) reflavor(graphID, nfID string, tech nffg.Technology) (bool, error) {
	if !tech.Valid() || tech == nffg.TechAny {
		return false, fmt.Errorf("orchestrator: reflavor needs a concrete technology, got %q", tech)
	}
	gl := o.lockGraph(graphID)
	defer o.unlockGraph(graphID, gl)

	o.mu.Lock()
	d, ok := o.graphs[graphID]
	if !ok {
		o.mu.Unlock()
		return false, fmt.Errorf("orchestrator: graph %q not deployed", graphID)
	}
	old, ok := d.nfs[nfID]
	if !ok {
		o.mu.Unlock()
		return false, fmt.Errorf("orchestrator: graph %q has no NF %q", graphID, nfID)
	}
	if old.inst.Technology == tech {
		o.mu.Unlock()
		return false, nil
	}
	n := d.Graph.FindNF(nfID)
	tpl, ok := o.cfg.Repo.Lookup(n.Name)
	if !ok {
		o.mu.Unlock()
		return false, fmt.Errorf("orchestrator: NF %q not in repository", n.Name)
	}
	if _, packaged := tpl.Flavors[tech]; !packaged {
		o.mu.Unlock()
		return false, fmt.Errorf("orchestrator: template %q has no %q flavor", tpl.Name, tech)
	}
	drv, registered := o.cfg.Compute.Driver(tech)
	if !registered {
		o.mu.Unlock()
		return false, fmt.Errorf("orchestrator: no %q driver registered", tech)
	}
	if !drv.Available(graphID, tpl) {
		o.mu.Unlock()
		return false, fmt.Errorf("orchestrator: %q flavor of %q not deployable right now", tech, tpl.Name)
	}
	oldDrv, _ := o.cfg.Compute.Driver(old.inst.Technology)
	drainCookie := o.nextCookie()
	config := n.Config
	o.mu.Unlock()

	// Make: boot the incoming flavor while the outgoing one keeps serving.
	// The instance name carries a generation suffix so the resource ledger
	// and image store see a distinct owner from the instance being
	// replaced.
	newAtt := &nfAttachment{}
	o.setState(graphID, nfID, newAtt, StateStarting)
	inst, err := drv.Start(compute.StartRequest{
		InstanceName: fmt.Sprintf("%s.%s#%d", graphID, nfID, drainCookie),
		GraphID:      graphID,
		Template:     tpl,
		Config:       config,
	})
	if err != nil {
		o.setState(graphID, nfID, newAtt, StateFailed)
		return false, fmt.Errorf("orchestrator: reflavor: starting %q as %s: %w", nfID, tech, err)
	}
	newAtt.inst = inst
	// Count the start here, so a failed attach's detachNF (which counts an
	// nf-stop) stays balanced against it.
	o.metrics.nfStarts.Inc()
	o.journal.Recordf(telemetry.EventNFStart, o.cfg.NodeName, graphID,
		fmt.Sprintf("%s as %s (reflavor)", nfID, tech))

	o.mu.Lock()
	if sc := d.scales[nfID]; sc != nil && len(sc.replicas) > 1 && inst.Shared {
		o.setState(graphID, nfID, newAtt, StateFailed)
		o.detachNF(d, nfID, newAtt)
		o.mu.Unlock()
		return false, fmt.Errorf("orchestrator: reflavor: %q is scaled out; a shared native instance cannot serve as a replica", nfID)
	}
	o.setState(graphID, nfID, newAtt, StateAttaching)
	if err := o.attachNF(d, newAtt); err != nil {
		o.setState(graphID, nfID, newAtt, StateFailed)
		o.detachNF(d, nfID, newAtt)
		o.mu.Unlock()
		return false, fmt.Errorf("orchestrator: reflavor: attaching %q: %w", nfID, err)
	}
	// Break, atomically: compile the full rule set against the incoming
	// attachment plus drain rules that keep the outgoing instance's return
	// path alive, and publish both in one snapshot swap. A scaled NF's
	// replica 0 is this attachment under another name: keep both in step.
	d.nfs[nfID] = newAtt
	sc := d.scales[nfID]
	if sc != nil {
		sc.replicas[0] = newAtt
	}
	revert := func(err error) (bool, error) {
		d.nfs[nfID] = old
		if sc != nil {
			sc.replicas[0] = old
		}
		o.detachNF(d, nfID, newAtt)
		o.mu.Unlock()
		return false, err
	}
	// Carry the outgoing instance's per-flow state (NAT bindings, conntrack
	// entries, IPsec SAs) into its successor before any traffic reaches it.
	if src, ok := statefulNF(old); ok {
		if dst, ok := statefulNF(newAtt); ok {
			if err := dst.ImportFlowState(src.ExportFlowState(nil)); err != nil {
				return revert(fmt.Errorf("orchestrator: reflavor: migrating state of %q: %w", nfID, err))
			}
		}
	}
	newEntries, err := o.compileEntries(d, d.cookie)
	if err != nil {
		return revert(err)
	}
	drainEntries, err := o.compileDrainEntries(d, nfID, old, newAtt, drainCookie)
	if err != nil {
		return revert(err)
	}
	if _, err := d.lsi.sw.SwapFlows(d.cookie, append(newEntries, drainEntries...)); err != nil {
		return revert(err)
	}
	o.setState(graphID, nfID, newAtt, StateRunning)
	o.setState(graphID, nfID, old, StateDraining)
	o.mu.Unlock()

	// Drain: packets already inside the outgoing instance finish their
	// traversal through the drain rules. Drivers without drain support
	// (shared native NFs) release immediately.
	if oldDrv != nil && oldDrv.Caps().SupportsDrain {
		o.drainInstance(old.inst.Runtime)
	}

	o.mu.Lock()
	// Catch-up: flows the outgoing instance minted between the export and
	// the steering swap (or finished during the drain) move over too;
	// imports overwrite, so the pass is idempotent.
	if src, ok := statefulNF(old); ok {
		if dst, ok := statefulNF(d.nfs[nfID]); ok {
			_ = dst.ImportFlowState(src.ExportFlowState(nil))
		}
	}
	o.detachNF(d, nfID, old)
	_ = d.lsi.sw.DeleteFlows(drainCookie)
	o.mu.Unlock()
	return true, nil
}

// compileDrainEntries compiles the rules whose ingress is the swapped NF
// against the outgoing attachment: traffic the old instance already
// received still has a forwarding path after the steering swap, while all
// new traffic flows to its successor. The entries carry their own cookie so
// the post-drain cleanup removes exactly them. Callers hold o.mu with
// d.nfs[nfID] already pointing at the incoming attachment.
func (o *Orchestrator) compileDrainEntries(d *DeployedGraph, nfID string, old, incoming *nfAttachment, cookie uint64) ([]*vswitch.FlowEntry, error) {
	var entries []*vswitch.FlowEntry
	for _, r := range d.Graph.Rules {
		if !r.Match.PortIn.IsNF() || r.Match.PortIn.NF != nfID {
			continue
		}
		d.nfs[nfID] = old
		match, pre, err := o.compileMatch(d, r.Match)
		d.nfs[nfID] = incoming
		if err != nil {
			return nil, fmt.Errorf("orchestrator: graph %q drain rule %q: %w", d.Graph.ID, r.ID, err)
		}
		actions, err := o.compileActions(d, r.Actions)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: graph %q drain rule %q: %w", d.Graph.ID, r.ID, err)
		}
		entries = append(entries, &vswitch.FlowEntry{
			Priority: r.Priority,
			Cookie:   cookie,
			Match:    match,
			Actions:  append(pre, actions...),
		})
	}
	return entries, nil
}
