package orchestrator

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/nf"
	"repro/internal/nffg"
	"repro/internal/pkt"
)

const natExternalIP = "198.51.100.1"

// natGraph wires a source NAT between the LAN (eth0) and WAN (eth1).
func natGraph(id string, replicas int) *nffg.Graph {
	return &nffg.Graph{
		ID: id,
		NFs: []nffg.NF{{
			ID: "nat", Name: "nat",
			Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
			TechnologyPreference: nffg.TechDocker,
			Config:               map[string]string{"external_ip": natExternalIP},
			Replicas:             replicas,
		}},
		Endpoints: []nffg.Endpoint{
			{ID: "lan", Type: nffg.EPInterface, Interface: "eth0"},
			{ID: "wan", Type: nffg.EPInterface, Interface: "eth1"},
		},
		Rules: []nffg.FlowRule{
			{ID: "r1", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.EndpointRef("lan")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("nat", "0")}}},
			{ID: "r2", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.NFPortRef("nat", "1")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("wan")}}},
			{ID: "r3", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.EndpointRef("wan")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("nat", "1")}}},
			{ID: "r4", Priority: 10,
				Match:   nffg.RuleMatch{PortIn: nffg.NFPortRef("nat", "0")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("lan")}}},
		},
	}
}

// natConnection is one live translated connection the tests drive traffic
// through across scale operations.
type natConnection struct {
	srcIP            pkt.Addr
	srcPort, extPort uint16
}

var natRemote = pkt.Addr{203, 0, 113, 50}

const natRemotePort = 53

func (c *natConnection) outboundFrame(t *testing.T) []byte {
	t.Helper()
	return pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: c.srcIP, DstIP: natRemote,
		SrcPort: c.srcPort, DstPort: natRemotePort, PayloadLen: 64,
	})
}

func (c *natConnection) replyFrame(t *testing.T) []byte {
	t.Helper()
	ext, err := pkt.ParseAddr(natExternalIP)
	if err != nil {
		t.Fatal(err)
	}
	return pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 2}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 1},
		SrcIP: natRemote, DstIP: ext,
		SrcPort: natRemotePort, DstPort: c.extPort, PayloadLen: 64,
	})
}

func udpOf(t *testing.T, frame []byte) *pkt.UDP {
	t.Helper()
	p := pkt.NewPacket(frame, pkt.LayerTypeEthernet, pkt.Default)
	udp, ok := p.Layer(pkt.LayerTypeUDP).(*pkt.UDP)
	if !ok {
		t.Fatalf("frame is not UDP: %v", p)
	}
	return udp
}

// establishNATConns opens n distinct connections through the NAT and
// records the external port each was mapped to.
func establishNATConns(t *testing.T, o *Orchestrator, n int) []*natConnection {
	t.Helper()
	conns := make([]*natConnection, n)
	for i := range conns {
		c := &natConnection{
			srcIP:   pkt.Addr{10, 0, 0, byte(i + 1)},
			srcPort: uint16(30000 + i),
		}
		send(t, o, "eth0", c.outboundFrame(t))
		out, ok := recv(t, o, "eth1")
		if !ok {
			t.Fatalf("conn %d: outbound packet lost", i)
		}
		c.extPort = udpOf(t, out).SrcPort
		conns[i] = c
	}
	return conns
}

// verifyNATConns pushes one packet in each direction of every connection
// and fails on any packet loss, any binding change (state loss) or any
// mistranslated reply.
func verifyNATConns(t *testing.T, o *Orchestrator, conns []*natConnection, phase string) {
	t.Helper()
	for i, c := range conns {
		send(t, o, "eth0", c.outboundFrame(t))
		out, ok := recv(t, o, "eth1")
		if !ok {
			t.Fatalf("%s: conn %d: outbound packet lost", phase, i)
		}
		if got := udpOf(t, out).SrcPort; got != c.extPort {
			t.Fatalf("%s: conn %d: binding changed: ext port %d, want %d (state lost)",
				phase, i, got, c.extPort)
		}
		send(t, o, "eth1", c.replyFrame(t))
		back, ok := recv(t, o, "eth0")
		if !ok {
			t.Fatalf("%s: conn %d: reply packet lost", phase, i)
		}
		udp := udpOf(t, back)
		p := pkt.NewPacket(back, pkt.LayerTypeEthernet, pkt.Default)
		ip := p.Layer(pkt.LayerTypeIPv4).(*pkt.IPv4)
		if ip.DstIP != c.srcIP || udp.DstPort != c.srcPort {
			t.Fatalf("%s: conn %d: reply mistranslated to %v:%d, want %v:%d",
				phase, i, ip.DstIP, udp.DstPort, c.srcIP, c.srcPort)
		}
	}
}

// TestScaleOutNATLiveMigration is the issue's acceptance scenario: a NAT
// scales 1 -> 3 -> 2 -> 1 under live traffic with zero packet loss and zero
// state loss (every established binding survives every reshape).
func TestScaleOutNATLiveMigration(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(natGraph("g", 1)); err != nil {
		t.Fatal(err)
	}
	conns := establishNATConns(t, o, 32)

	if err := o.Scale("g", "nat", 3); err != nil {
		t.Fatal(err)
	}
	if n, _ := o.Replicas("g", "nat"); n != 3 {
		t.Fatalf("replicas = %d, want 3", n)
	}
	verifyNATConns(t, o, conns, "after 1->3")

	// The binding load actually spread: more than one replica holds state.
	holders := 0
	for _, inst := range o.ReplicaInstances("g", "nat") {
		if nat, ok := inst.Runtime.Processor().(*nf.NAT); ok && nat.Bindings() > 0 {
			holders++
		}
	}
	if holders < 2 {
		t.Fatalf("bindings concentrated on %d replica(s), want spread over >= 2", holders)
	}

	// New connections opened while scaled land on their bucket's owner and
	// keep working through the later scale-down.
	for i := 0; i < 8; i++ {
		c := &natConnection{srcIP: pkt.Addr{10, 0, 1, byte(i + 1)}, srcPort: uint16(40000 + i)}
		send(t, o, "eth0", c.outboundFrame(t))
		out, ok := recv(t, o, "eth1")
		if !ok {
			t.Fatalf("scaled conn %d: outbound packet lost", i)
		}
		c.extPort = udpOf(t, out).SrcPort
		conns = append(conns, c)
	}

	if err := o.Scale("g", "nat", 2); err != nil {
		t.Fatal(err)
	}
	if n, _ := o.Replicas("g", "nat"); n != 2 {
		t.Fatalf("replicas = %d, want 2", n)
	}
	verifyNATConns(t, o, conns, "after 3->2")

	if err := o.Scale("g", "nat", 1); err != nil {
		t.Fatal(err)
	}
	if n, _ := o.Replicas("g", "nat"); n != 1 {
		t.Fatalf("replicas = %d, want 1", n)
	}
	d, _ := o.Graph("g")
	o.mu.Lock()
	_, scaled := d.scales["nat"]
	o.mu.Unlock()
	if scaled {
		t.Fatal("scale state not retired after scale-down to 1")
	}
	verifyNATConns(t, o, conns, "after 2->1")
}

// TestDeployHonorsReplicas: a spec with replicas: N comes up sharded.
func TestDeployHonorsReplicas(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(natGraph("g", 3)); err != nil {
		t.Fatal(err)
	}
	if n, _ := o.Replicas("g", "nat"); n != 3 {
		t.Fatalf("replicas = %d, want 3", n)
	}
	conns := establishNATConns(t, o, 16)
	verifyNATConns(t, o, conns, "deployed at 3")
}

// TestUpdateScalesReplicas: changing only replicas in the spec scales the
// NF in place instead of restarting it (bindings survive).
func TestUpdateScalesReplicas(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(natGraph("g", 1)); err != nil {
		t.Fatal(err)
	}
	conns := establishNATConns(t, o, 16)
	if err := o.Update(natGraph("g", 3)); err != nil {
		t.Fatal(err)
	}
	if n, _ := o.Replicas("g", "nat"); n != 3 {
		t.Fatalf("replicas = %d, want 3", n)
	}
	verifyNATConns(t, o, conns, "after update to 3")
	if err := o.Update(natGraph("g", 1)); err != nil {
		t.Fatal(err)
	}
	if n, _ := o.Replicas("g", "nat"); n != 1 {
		t.Fatalf("replicas = %d, want 1", n)
	}
	verifyNATConns(t, o, conns, "after update back to 1")
}

// TestReplicaFailureRehoming kills one replica of a scaled NAT under live
// connections; RepairReplicas salvages its flow state from the stopped
// runtime and re-homes its buckets onto the survivors.
func TestReplicaFailureRehoming(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(natGraph("g", 1)); err != nil {
		t.Fatal(err)
	}
	conns := establishNATConns(t, o, 32)
	if err := o.Scale("g", "nat", 3); err != nil {
		t.Fatal(err)
	}
	// Kill the last replica out from under the orchestrator.
	insts := o.ReplicaInstances("g", "nat")
	if len(insts) != 3 {
		t.Fatalf("replica instances = %d, want 3", len(insts))
	}
	insts[2].Runtime.Stop()
	n, err := o.RepairReplicas("g", "nat")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("survivors = %d, want 2", n)
	}
	if n, _ := o.Replicas("g", "nat"); n != 2 {
		t.Fatalf("replicas = %d, want 2", n)
	}
	verifyNATConns(t, o, conns, "after replica failure")

	// Killing the primary (replica 0) promotes a survivor into nfs.
	insts = o.ReplicaInstances("g", "nat")
	insts[0].Runtime.Stop()
	if n, err = o.RepairReplicas("g", "nat"); err != nil || n != 1 {
		t.Fatalf("survivors = %d (%v), want 1", n, err)
	}
	verifyNATConns(t, o, conns, "after primary failure")
}

// TestAutoscaleTick drives traffic through an NF that opted into
// rate-driven autoscaling and checks the replica set follows the rate.
func TestAutoscaleTick(t *testing.T) {
	o := newNode(t)
	g := natGraph("g", 1)
	g.NFs[0].Config[AutoscaleRateKey] = "1000"
	if err := o.Deploy(g); err != nil {
		t.Fatal(err)
	}
	conns := establishNATConns(t, o, 4)
	// Plant a rate probe one second in the past so the tick observes a
	// deterministic rate: the LSI's whole packet count over one second,
	// with the per-replica threshold tuned to make the target 3.
	d, _ := o.Graph("g")
	o.mu.Lock()
	rx := d.lsi.sw.PacketsProcessed()
	if rx == 0 {
		o.mu.Unlock()
		t.Fatal("LSI processed no packets")
	}
	d.Graph.NFs[0].Config[AutoscaleRateKey] = fmt.Sprintf("%f", float64(rx)/2.5)
	o.rates["g"] = &rateProbe{rx: 0, at: time.Now().Add(-time.Second)}
	o.mu.Unlock()
	if n := o.AutoscaleTick(); n != 1 {
		t.Fatalf("autoscale ran %d scale ops, want 1", n)
	}
	if n, _ := o.Replicas("g", "nat"); n != 3 {
		t.Fatalf("replicas = %d after loaded tick, want 3", n)
	}
	verifyNATConns(t, o, conns, "after autoscale up")
	// Quiesce: a fresh probe at the current count reads ~0 pps, so the next
	// tick shrinks back to 1 replica.
	o.mu.Lock()
	o.rates["g"] = &rateProbe{rx: d.lsi.sw.PacketsProcessed(), at: time.Now().Add(-time.Second)}
	o.mu.Unlock()
	if n := o.AutoscaleTick(); n != 1 {
		t.Fatalf("autoscale down ran %d scale ops, want 1", n)
	}
	if n, _ := o.Replicas("g", "nat"); n != 1 {
		t.Fatalf("replicas = %d after quiesce, want 1", n)
	}
	verifyNATConns(t, o, conns, "after autoscale down")
}

// TestConcurrentScaleReflavorUpdate hammers one graph with racing Scale,
// Reflavor and Update operations; run under -race this is the issue's
// concurrency acceptance test. Any interleaving must leave the graph
// serving traffic.
func TestConcurrentScaleReflavorUpdate(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(natGraph("g", 1)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const iters = 15
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = o.Scale("g", "nat", 1+i%3)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			// NAT packages docker and native flavors; native NAT instances
			// are exclusive (not shared), so a scaled NAT may hold either.
			tech := nffg.TechNative
			if i%2 == 0 {
				tech = nffg.TechDocker
			}
			_ = o.Reflavor("g", "nat", tech)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			g := natGraph("g", 1+(i+1)%3)
			g.Rules[0].Priority = 10 + i%5
			_ = o.Update(g)
		}
	}()
	wg.Wait()
	// Whatever the final interleaving, the datapath must still translate.
	c := &natConnection{srcIP: pkt.Addr{10, 0, 9, 9}, srcPort: 45678}
	send(t, o, "eth0", c.outboundFrame(t))
	out, ok := recv(t, o, "eth1")
	if !ok {
		t.Fatal("outbound packet lost after concurrent hammer")
	}
	c.extPort = udpOf(t, out).SrcPort
	send(t, o, "eth1", c.replyFrame(t))
	if _, ok := recv(t, o, "eth0"); !ok {
		t.Fatal("reply packet lost after concurrent hammer")
	}
	if n, _ := o.Replicas("g", "nat"); n < 1 || n > 3 {
		t.Fatalf("replicas = %d, want within [1,3]", n)
	}
}

// TestScaleRejectsSharedNNF: a shared native NF cannot shard (its traffic
// is mark-multiplexed on LSI-0, not per-replica ports).
func TestScaleRejectsSharedNNF(t *testing.T) {
	o := newNode(t)
	g := firewallGraph("g", 100, "drop proto=udp dport=53")
	// Make the firewall's native instance shared: deploy a second graph
	// sharing it is not needed — the native firewall plugin is sharable and
	// single-instance, so the attachment is the shared adapter.
	if err := o.Deploy(g); err != nil {
		t.Fatal(err)
	}
	insts := o.ReplicaInstances("g", "fw")
	if len(insts) != 1 {
		t.Fatalf("replica instances = %d, want 1", len(insts))
	}
	if !insts[0].Shared {
		t.Skip("firewall did not come up shared on this node")
	}
	if err := o.Scale("g", "fw", 2); err == nil {
		t.Fatal("scaling a shared NNF succeeded, want error")
	}
}

// TestRebalanceAssignMinimalMovement checks the bucket rebalance moves only
// what it must and always converges to near-equal shares.
func TestRebalanceAssignMinimalMovement(t *testing.T) {
	var assign [64]int // all owned by replica 0
	donated := rebalanceAssign(&assign, 3)
	counts := map[int]int{}
	for _, owner := range assign {
		counts[owner]++
	}
	if counts[0] != 22 || counts[1] != 21 || counts[2] != 21 {
		t.Fatalf("unbalanced shares after 1->3: %v", counts)
	}
	if got := len(donated[0]); got != 42 {
		t.Fatalf("replica 0 donated %d buckets, want 42", got)
	}
	// Scale back down: only the removed replicas' buckets move.
	before := assign
	donated = rebalanceAssign(&assign, 2)
	movedFromSurvivors := 0
	for b := range assign {
		if before[b] < 2 && assign[b] != before[b] {
			movedFromSurvivors++
		}
	}
	if movedFromSurvivors != 0 {
		t.Fatalf("%d buckets moved between survivors on scale-down, want 0", movedFromSurvivors)
	}
	if len(donated[2]) != 21 {
		t.Fatalf("removed replica donated %d buckets, want 21", len(donated[2]))
	}
	counts = map[int]int{}
	for _, owner := range assign {
		counts[owner]++
	}
	if counts[0] != 32 || counts[1] != 32 {
		t.Fatalf("unbalanced shares after 3->2: %v", counts)
	}
}

// TestScaleValidation covers the error edges of the Scale API.
func TestScaleValidation(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(natGraph("g", 1)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		graph, nf string
		replicas  int
	}{
		{"g", "nat", 0},
		{"g", "nat", nffg.MaxReplicas + 1},
		{"g", "ghost", 2},
		{"ghost", "nat", 2},
	}
	for _, c := range cases {
		if err := o.Scale(c.graph, c.nf, c.replicas); err == nil {
			t.Errorf("Scale(%q, %q, %d) succeeded, want error", c.graph, c.nf, c.replicas)
		}
	}
	// Scaling to the current count is a no-op, not an error.
	if err := o.Scale("g", "nat", 1); err != nil {
		t.Fatalf("no-op scale failed: %v", err)
	}
}
