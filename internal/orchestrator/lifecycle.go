package orchestrator

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/compute"
	"repro/internal/nf"
	"repro/internal/telemetry"
)

// NFState is one step of the per-NF lifecycle state machine:
//
//	pending → starting → attaching → running → draining → stopped
//
// with a failed edge out of every pre-running state. The orchestrator
// advances states individually per NF, so the NFs of one graph move through
// their lifecycles concurrently and a failure identifies exactly which NF —
// and which phase — broke.
type NFState string

// Lifecycle states.
const (
	StatePending   NFState = "pending"   // scheduled, not yet handed to a driver
	StateStarting  NFState = "starting"  // driver.Start in flight
	StateAttaching NFState = "attaching" // ports being wired to the LSI
	StateRunning   NFState = "running"   // attached and steered
	StateDraining  NFState = "draining"  // detached from steering, finishing in-flight traffic
	StateStopped   NFState = "stopped"   // instance stopped and detached
	StateFailed    NFState = "failed"    // start or attach failed
)

// stateOrder backs the compact numeric encoding used by the atomic state
// field and the un_nf_state gauge.
var stateOrder = []NFState{
	StatePending, StateStarting, StateAttaching, StateRunning,
	StateDraining, StateStopped, StateFailed,
}

// Value returns the state's numeric gauge encoding (its index in the
// lifecycle order; failed is the largest).
func (s NFState) Value() float64 { return float64(s.index()) }

func (s NFState) index() int32 {
	for i, st := range stateOrder {
		if st == s {
			return int32(i)
		}
	}
	return 0
}

// State returns the attachment's current lifecycle state.
func (a *nfAttachment) State() NFState {
	return stateOrder[a.state.Load()]
}

// setState advances one attachment's lifecycle state and journals the
// transition. Safe without the orchestrator lock: the state field is atomic
// and the journal synchronizes internally, so concurrent starts report
// their progress in real time.
func (o *Orchestrator) setState(graphID, nfID string, att *nfAttachment, to NFState) {
	from := stateOrder[att.state.Swap(to.index())]
	if from == to {
		return
	}
	o.journal.Recordf(telemetry.EventNFState, o.cfg.NodeName, graphID,
		fmt.Sprintf("%s: %s -> %s", nfID, from, to))
}

// graphLock is one graph's operation lock plus the number of operations
// holding or waiting on it, so the registry entry can be dropped once the
// last one leaves (a daemon deploying unique graph ids must not accumulate
// locks forever).
type graphLock struct {
	mu   sync.Mutex
	refs int
}

// lockGraph acquires the per-graph operation lock. Deploy, Update, Undeploy
// and Reflavor hold it for their whole run, so operations on one graph
// serialize while different graphs proceed in parallel; the shared
// orchestrator mutex is only held for the bookkeeping phases in between.
// Pair with unlockGraph.
func (o *Orchestrator) lockGraph(id string) *graphLock {
	o.glmu.Lock()
	l := o.gLocks[id]
	if l == nil {
		l = &graphLock{}
		o.gLocks[id] = l
	}
	l.refs++
	o.glmu.Unlock()
	l.mu.Lock()
	return l
}

// unlockGraph releases the per-graph operation lock and retires the
// registry entry once no operation holds or waits on it.
func (o *Orchestrator) unlockGraph(id string, l *graphLock) {
	l.mu.Unlock()
	o.glmu.Lock()
	if l.refs--; l.refs == 0 {
		delete(o.gLocks, id)
	}
	o.glmu.Unlock()
}

// DefaultMaxParallelStarts bounds how many NF instances of one graph boot
// concurrently when the config does not say.
const DefaultMaxParallelStarts = 8

// DefaultDrainTimeout bounds how long a hot-swap waits for the outgoing
// instance to finish in-flight traffic.
const DefaultDrainTimeout = 250 * time.Millisecond

// startNFs boots every placement concurrently, bounded by
// cfg.MaxParallelStarts, walking each NF through pending → starting. It
// must be called without the orchestrator lock: driver starts are the slow
// phase of a deployment (image pull, environment boot) and drivers are
// concurrency-safe by contract. On any failure every instance that did
// start is stopped and the first error is returned — the graph never sees a
// half-started NF set.
func (o *Orchestrator) startNFs(graphID string, placements []Placement) ([]*nfAttachment, error) {
	limit := o.cfg.MaxParallelStarts
	if limit <= 0 {
		limit = DefaultMaxParallelStarts
	}
	atts := make([]*nfAttachment, len(placements))
	errs := make([]error, len(placements))
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i, pl := range placements {
		att := &nfAttachment{}
		atts[i] = att
		o.setState(graphID, pl.NF.ID, att, StatePending)
		wg.Add(1)
		go func(i int, pl Placement, att *nfAttachment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o.setState(graphID, pl.NF.ID, att, StateStarting)
			inst, err := pl.Driver.Start(compute.StartRequest{
				InstanceName: graphID + "." + pl.NF.ID,
				GraphID:      graphID,
				Template:     pl.Template,
				Config:       pl.NF.Config,
			})
			if err != nil {
				o.setState(graphID, pl.NF.ID, att, StateFailed)
				errs[i] = fmt.Errorf("orchestrator: starting %q: %w", pl.NF.ID, err)
				return
			}
			att.inst = inst
		}(i, pl, att)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		return atts, nil
	}
	o.stopUnattached(placements, atts)
	return nil, firstErr
}

// drainInstance waits until the outgoing runtime's counters stop moving:
// with synchronous frame delivery, a stable rx/tx pair over several samples
// means no sender goroutine is still inside the instance. Bounded by
// cfg.DrainTimeout.
func (o *Orchestrator) drainInstance(rt *nf.Runtime) {
	timeout := o.cfg.DrainTimeout
	if timeout <= 0 {
		timeout = DefaultDrainTimeout
	}
	deadline := time.Now().Add(timeout)
	last := rt.Stats()
	stable := 0
	for time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		cur := rt.Stats()
		if cur == last {
			if stable++; stable >= 3 {
				return
			}
			continue
		}
		stable = 0
		last = cur
	}
}
