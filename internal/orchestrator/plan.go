package orchestrator

import (
	"repro/internal/nffg"
	"repro/internal/policy"
)

// NFPlan is the dry-run scheduling decision for one NF: the flavor the
// placement policy would pick right now and the total resource demand of
// its replica set.
type NFPlan struct {
	NF         string          `json:"nf"`
	Template   string          `json:"template"`
	Technology nffg.Technology `json:"technology"`
	Replicas   int             `json:"replicas"`
	// CPUMillis and RAMBytes are the demand summed across all replicas.
	CPUMillis int    `json:"cpu-millicores"`
	RAMBytes  uint64 `json:"ram-bytes"`
}

// DeployPlan is what a deploy or update of a graph WOULD do: the outcome of
// validation, flavor scheduling and an admission check against the node's
// free capacity, with nothing instantiated.
type DeployPlan struct {
	Graph string `json:"graph"`
	// Exists reports whether the graph is already deployed (the PUT would
	// be an update rather than a first deploy).
	Exists bool     `json:"exists"`
	NFs    []NFPlan `json:"nfs"`
	// NewCPUMillis/NewRAMBytes are the additional demand over what the
	// graph's current deployment (if any) already holds: new NFs count in
	// full, already-running NFs only their replica growth.
	NewCPUMillis  int    `json:"new-cpu-millicores"`
	NewRAMBytes   uint64 `json:"new-ram-bytes"`
	FreeCPUMillis int    `json:"free-cpu-millicores"`
	FreeRAMBytes  uint64 `json:"free-ram-bytes"`
	// Fits reports whether the additional demand is admissible within the
	// node's free capacity at planning time.
	Fits bool `json:"fits"`
}

// Plan dry-runs a deploy or update: full graph validation, a real pass of
// the placement policy over every NF, and a replica-aware resource
// admission check — without mutating any state. It backs the REST API's
// ?dry-run=true deploys.
func (o *Orchestrator) Plan(g *nffg.Graph) (*DeployPlan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	placements, err := o.schedule(g)
	if err != nil {
		return nil, err
	}
	d := o.graphs[g.ID]
	usedCPU, totalCPU, usedRAM, totalRAM := o.cfg.Resources.Usage()
	plan := &DeployPlan{
		Graph:         g.ID,
		Exists:        d != nil,
		FreeCPUMillis: totalCPU - usedCPU,
		FreeRAMBytes:  totalRAM - usedRAM,
	}
	model := *o.cfg.Model
	for _, p := range placements {
		reps := p.NF.Replicas
		if reps < 1 {
			reps = 1
		}
		perCPU := p.Template.Flavors[p.Technology].CPUMillis
		perRAM := model.BaseRAM(policy.FlavorOf(p.Technology)) + p.Template.WorkloadRAM
		plan.NFs = append(plan.NFs, NFPlan{
			NF:         p.NF.ID,
			Template:   p.Template.Name,
			Technology: p.Technology,
			Replicas:   reps,
			CPUMillis:  perCPU * reps,
			RAMBytes:   perRAM * uint64(reps),
		})
		cur := 0
		if d != nil {
			if _, running := d.nfs[p.NF.ID]; running {
				cur = 1
				if sc := d.scales[p.NF.ID]; sc != nil {
					cur = len(sc.replicas)
				}
			}
		}
		if add := reps - cur; add > 0 {
			plan.NewCPUMillis += perCPU * add
			plan.NewRAMBytes += perRAM * uint64(add)
		}
	}
	plan.Fits = plan.NewCPUMillis <= plan.FreeCPUMillis && plan.NewRAMBytes <= plan.FreeRAMBytes
	return plan, nil
}
