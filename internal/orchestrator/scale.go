package orchestrator

import (
	"fmt"
	"math"
	"reflect"
	"strconv"
	"time"

	"repro/internal/compute"
	"repro/internal/nf"
	"repro/internal/nffg"
	"repro/internal/telemetry"
	"repro/internal/vswitch"
)

// AutoscaleRateKey is the NF configuration key that opts an NF into
// rate-driven autoscaling: the packets-per-second one replica is expected to
// sustain. AutoscaleTick scales the NF toward ceil(observed_rate / key).
const AutoscaleRateKey = "autoscale_rate_pps"

// nfScale is the scale-out state of one sharded NF: its replica set and the
// consistent-hash bucket ownership map. Replica 0 is always the attachment
// recorded in DeployedGraph.nfs, so every code path that knows nothing about
// scaling keeps operating on a valid instance.
type nfScale struct {
	replicas []*nfAttachment
	// assign maps flow bucket -> index into replicas. Steering compiles it
	// into a SelectBucket action, so both directions of a connection (the
	// bucket hash is symmetric) always reach the bucket's owner.
	assign [vswitch.NumStateBuckets]int
}

// statefulNF extracts the replica's flow-state interface, if its processor
// migrates per-flow state.
func statefulNF(att *nfAttachment) (nf.StatefulNF, bool) {
	if att == nil || att.inst == nil || att.inst.Runtime == nil {
		return nil, false
	}
	s, ok := att.inst.Runtime.Processor().(nf.StatefulNF)
	return s, ok
}

// flowStateDropper is the optional third verb of StatefulNF: donors that
// implement it release migrated state once the new owner holds it.
type flowStateDropper interface {
	DropFlowState(filter func(nf.FlowTuple) bool)
}

// rebalanceAssign reassigns buckets so every replica in [0,n) owns an
// almost-equal share, moving as few buckets as possible: only buckets whose
// owner is gone (index >= n) or above its fair-share quota change hands.
// It returns the buckets each donor gives up, keyed by the donor's index in
// the (pre-truncation) replica slice.
func rebalanceAssign(assign *[vswitch.NumStateBuckets]int, n int) map[int][]int {
	quota := make([]int, n)
	base, extra := vswitch.NumStateBuckets/n, vswitch.NumStateBuckets%n
	for i := range quota {
		quota[i] = base
		if i < extra {
			quota[i]++
		}
	}
	counts := make([]int, n)
	donated := make(map[int][]int)
	var pool []int
	for b, owner := range assign {
		if owner >= n || owner < 0 {
			donated[owner] = append(donated[owner], b)
			pool = append(pool, b)
			continue
		}
		counts[owner]++
	}
	for b := vswitch.NumStateBuckets - 1; b >= 0; b-- {
		owner := assign[b]
		if owner >= 0 && owner < n && counts[owner] > quota[owner] {
			counts[owner]--
			donated[owner] = append(donated[owner], b)
			pool = append(pool, b)
		}
	}
	next := 0
	for _, b := range pool {
		for counts[next] >= quota[next] {
			next++
		}
		assign[b] = next
		counts[next]++
	}
	return donated
}

// migrateBuckets exports the state of the donated buckets from each donor
// replica and imports it into the buckets' owners under assign. Stateless
// processors are skipped; imports overwrite, so running this again as a
// catch-up pass after the steering swap is idempotent. Returns the number of
// flow-state entries moved. Callers hold o.mu.
func (o *Orchestrator) migrateBuckets(graphID, nfID string, sc *nfScale, donated map[int][]int, assign *[vswitch.NumStateBuckets]int) int {
	moved := 0
	for donor, buckets := range donated {
		src, ok := statefulNF(sc.replicas[donor])
		if !ok {
			continue
		}
		set := make(map[int]bool, len(buckets))
		for _, b := range buckets {
			set[b] = true
		}
		byOwner := make(map[int][]nf.FlowState)
		for _, st := range src.ExportFlowState(nf.BucketFilter(set)) {
			owner := assign[st.Tuple.Bucket()]
			byOwner[owner] = append(byOwner[owner], st)
		}
		for owner, batch := range byOwner {
			dst, ok := statefulNF(sc.replicas[owner])
			if !ok {
				continue
			}
			if err := dst.ImportFlowState(batch); err != nil {
				o.journal.Recordf(telemetry.EventMigrate, o.cfg.NodeName, graphID,
					fmt.Sprintf("%s: importing %d flows into replica %d: %v", nfID, len(batch), owner, err))
				continue
			}
			moved += len(batch)
		}
	}
	return moved
}

// dropDonated releases the migrated buckets' state from the donors that
// still run (a dead donor keeps nothing worth dropping).
func dropDonated(sc *nfScale, donated map[int][]int) {
	for donor, buckets := range donated {
		if donor < 0 || donor >= len(sc.replicas) {
			continue
		}
		d, ok := statefulNF(sc.replicas[donor])
		if !ok {
			continue
		}
		dropper, ok := d.(flowStateDropper)
		if !ok {
			continue
		}
		set := make(map[int]bool, len(buckets))
		for _, b := range buckets {
			set[b] = true
		}
		dropper.DropFlowState(nf.BucketFilter(set))
	}
}

// Scale reshapes one NF of a deployed graph to the given replica count with
// make-before-break semantics: new instances attach (scale-up) before the
// steering is repointed, and outgoing instances drain after it, so live
// traffic sees neither a forwarding gap nor a state gap. Per-flow state
// follows its consistent-hash bucket: only the buckets that change owner are
// exported from their donor and imported into the new owner, with a
// catch-up pass after the steering swap covering flows that raced it.
func (o *Orchestrator) Scale(graphID, nfID string, replicas int) error {
	start := time.Now()
	err := o.scale(graphID, nfID, replicas)
	o.metrics.scaleLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		o.metrics.scaleFailures.Inc()
		return err
	}
	o.metrics.scales.Inc()
	return nil
}

func (o *Orchestrator) scale(graphID, nfID string, target int) error {
	if target < 1 || target > nffg.MaxReplicas {
		return fmt.Errorf("orchestrator: scale: replica count %d out of range [1,%d]", target, nffg.MaxReplicas)
	}
	gl := o.lockGraph(graphID)
	defer o.unlockGraph(graphID, gl)

	o.mu.Lock()
	d, ok := o.graphs[graphID]
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("orchestrator: graph %q not deployed", graphID)
	}
	att, ok := d.nfs[nfID]
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("orchestrator: graph %q has no NF %q", graphID, nfID)
	}
	n := d.Graph.FindNF(nfID)
	if n == nil {
		o.mu.Unlock()
		return fmt.Errorf("orchestrator: graph %q has no NF %q in its spec", graphID, nfID)
	}
	sc := d.scales[nfID]
	cur := 1
	if sc != nil {
		cur = len(sc.replicas)
	}
	if target == cur {
		n.Replicas = target
		o.mu.Unlock()
		return nil
	}
	if att.inst.Shared {
		o.mu.Unlock()
		return fmt.Errorf("orchestrator: graph %q: NF %q runs as a shared native NF and cannot be scaled", graphID, nfID)
	}
	if sc == nil {
		// First scale-out: the single instance becomes replica 0 and owns
		// every bucket.
		sc = &nfScale{replicas: []*nfAttachment{att}}
		d.scales[nfID] = sc
	}
	spec := *n
	if target > cur {
		return o.scaleUp(d, graphID, spec, sc, target)
	}
	return o.scaleDown(d, graphID, spec, sc, target)
}

// scaleUp boots target-cur fresh replicas (outside the node lock), attaches
// them, migrates the buckets the rebalance moves onto them, and repoints the
// steering with one snapshot swap. Graph lock held; o.mu held on entry and
// released on return.
func (o *Orchestrator) scaleUp(d *DeployedGraph, graphID string, spec nffg.NF, sc *nfScale, target int) error {
	nfID := spec.ID
	tpl, ok := o.cfg.Repo.Lookup(spec.Name)
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("orchestrator: NF %q not in repository", spec.Name)
	}
	tech := sc.replicas[0].inst.Technology
	drv, ok := o.cfg.Compute.Driver(tech)
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("orchestrator: no %q driver registered", tech)
	}
	need := target - len(sc.replicas)
	gens := make([]uint64, need)
	for i := range gens {
		gens[i] = o.nextCookie()
	}
	o.mu.Unlock()

	// Make: boot the additional replicas while the current set keeps
	// serving. The generation suffix keeps instance names node-unique.
	started := make([]*nfAttachment, 0, need)
	abort := func(err error) error {
		for _, a := range started {
			o.setState(graphID, nfID, a, StateStopped)
			_ = drv.Stop(a.inst)
		}
		return err
	}
	for _, gen := range gens {
		if !drv.Available(graphID, tpl) {
			return abort(fmt.Errorf("orchestrator: scale: %q flavor of %q not deployable for another replica", tech, tpl.Name))
		}
		newAtt := &nfAttachment{}
		o.setState(graphID, nfID, newAtt, StateStarting)
		inst, err := drv.Start(compute.StartRequest{
			InstanceName: fmt.Sprintf("%s.%s#r%d", graphID, nfID, gen),
			GraphID:      graphID,
			Template:     tpl,
			Config:       spec.Config,
		})
		if err != nil {
			o.setState(graphID, nfID, newAtt, StateFailed)
			return abort(fmt.Errorf("orchestrator: scale: starting replica of %q: %w", nfID, err))
		}
		newAtt.inst = inst
		o.metrics.nfStarts.Inc()
		o.journal.Recordf(telemetry.EventNFStart, o.cfg.NodeName, graphID,
			fmt.Sprintf("%s replica as %s (scale-up)", nfID, tech))
		started = append(started, newAtt)
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	for i, newAtt := range started {
		o.setState(graphID, nfID, newAtt, StateAttaching)
		if err := o.attachNF(d, newAtt); err != nil {
			o.setState(graphID, nfID, newAtt, StateFailed)
			o.detachNF(d, nfID, newAtt)
			for _, rest := range started[i+1:] {
				o.setState(graphID, nfID, rest, StateStopped)
				_ = drv.Stop(rest.inst)
			}
			return fmt.Errorf("orchestrator: scale: attaching replica of %q: %w", nfID, err)
		}
	}
	oldLen := len(sc.replicas)
	oldAssign := sc.assign
	sc.replicas = append(sc.replicas, started...)
	newAssign := sc.assign
	donated := rebalanceAssign(&newAssign, len(sc.replicas))
	// Move the state of the reassigned buckets before any traffic is
	// steered at the new owners...
	migStart := time.Now()
	moved := o.migrateBuckets(graphID, nfID, sc, donated, &newAssign)
	sc.assign = newAssign
	if err := o.reprogram(d); err != nil {
		sc.assign = oldAssign
		for _, newAtt := range started {
			o.detachNF(d, nfID, newAtt)
		}
		sc.replicas = sc.replicas[:oldLen]
		if oldLen == 1 {
			delete(d.scales, nfID)
		}
		_ = o.reprogram(d)
		return fmt.Errorf("orchestrator: scale: repointing steering: %w", err)
	}
	// ...and once more after the swap: flows that raced the swap into a
	// donor are re-exported; imports overwrite, so nothing is lost.
	moved += o.migrateBuckets(graphID, nfID, sc, donated, &newAssign)
	dropDonated(sc, donated)
	o.metrics.migratedFlows.Add(uint64(moved))
	o.metrics.migrationLatency.Observe(time.Since(migStart).Seconds())
	for _, newAtt := range started {
		o.setState(graphID, nfID, newAtt, StateRunning)
	}
	if n := d.Graph.FindNF(nfID); n != nil {
		n.Replicas = target
	}
	o.journal.Recordf(telemetry.EventScale, o.cfg.NodeName, graphID,
		fmt.Sprintf("%s: %d -> %d replicas, %d flows migrated", nfID, oldLen, target, moved))
	return nil
}

// scaleDown re-homes the outgoing replicas' buckets onto the survivors,
// repoints the steering, lets the outgoing replicas drain, and detaches
// them. Between the swap and the truncation the outgoing replicas keep their
// ingress entries compiled (their return path), so in-flight packets finish
// their traversal. Graph lock held; o.mu held on entry, released on return.
func (o *Orchestrator) scaleDown(d *DeployedGraph, graphID string, spec nffg.NF, sc *nfScale, target int) error {
	nfID := spec.ID
	full := sc.replicas
	removed := full[target:]
	newAssign := sc.assign
	donated := rebalanceAssign(&newAssign, target)
	migStart := time.Now()
	moved := o.migrateBuckets(graphID, nfID, sc, donated, &newAssign)
	sc.assign = newAssign
	// The replica slice stays full through the swap: the survivors' new
	// bucket map routes all fresh traffic, while the removed replicas'
	// ingress entries stay compiled as their drain path.
	if err := o.reprogram(d); err != nil {
		o.mu.Unlock()
		return fmt.Errorf("orchestrator: scale: repointing steering: %w", err)
	}
	moved += o.migrateBuckets(graphID, nfID, sc, donated, &newAssign)
	for _, att := range removed {
		o.setState(graphID, nfID, att, StateDraining)
	}
	drv, hasDrv := o.cfg.Compute.Driver(removed[0].inst.Technology)
	o.mu.Unlock()

	if hasDrv && drv.Caps().SupportsDrain {
		for _, att := range removed {
			o.drainInstance(att.inst.Runtime)
		}
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	// Last catch-up after the drain: a packet delivered to a donor just
	// before the swap may have minted state while we were waiting.
	moved += o.migrateBuckets(graphID, nfID, sc, donated, &newAssign)
	o.metrics.migratedFlows.Add(uint64(moved))
	o.metrics.migrationLatency.Observe(time.Since(migStart).Seconds())
	sc.replicas = full[:target]
	if target == 1 {
		delete(d.scales, nfID)
	}
	if err := o.reprogram(d); err != nil {
		// The survivors' steering is intact (same entries minus the drain
		// paths); record and continue the teardown.
		o.journal.Recordf(telemetry.EventFlowMod, o.cfg.NodeName, graphID,
			fmt.Sprintf("%s: dropping drain entries: %v", nfID, err))
	}
	for _, att := range removed {
		o.detachNF(d, nfID, att)
	}
	if n := d.Graph.FindNF(nfID); n != nil {
		n.Replicas = target
	}
	o.journal.Recordf(telemetry.EventScale, o.cfg.NodeName, graphID,
		fmt.Sprintf("%s: %d -> %d replicas, %d flows migrated", nfID, len(full), target, moved))
	return nil
}

// Replicas reports how many instances currently serve an NF.
func (o *Orchestrator) Replicas(graphID, nfID string) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[graphID]
	if !ok {
		return 0, fmt.Errorf("orchestrator: graph %q not deployed", graphID)
	}
	if _, ok := d.nfs[nfID]; !ok {
		return 0, fmt.Errorf("orchestrator: graph %q has no NF %q", graphID, nfID)
	}
	if sc := d.scales[nfID]; sc != nil {
		return len(sc.replicas), nil
	}
	return 1, nil
}

// ReplicaInstances returns the instances serving an NF, replica 0 first.
func (o *Orchestrator) ReplicaInstances(graphID, nfID string) []*compute.Instance {
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[graphID]
	if !ok {
		return nil
	}
	if sc := d.scales[nfID]; sc != nil {
		out := make([]*compute.Instance, len(sc.replicas))
		for i, att := range sc.replicas {
			out[i] = att.inst
		}
		return out
	}
	if att, ok := d.nfs[nfID]; ok {
		return []*compute.Instance{att.inst}
	}
	return nil
}

// RepairReplicas re-homes the buckets of dead replicas (instances whose
// runtime stopped outside the orchestrator's control) onto the survivors and
// detaches the corpses. The dead replica's processor still holds its flow
// tables in memory, so its state is salvaged, not lost. Returns the
// surviving replica count.
func (o *Orchestrator) RepairReplicas(graphID, nfID string) (int, error) {
	gl := o.lockGraph(graphID)
	defer o.unlockGraph(graphID, gl)
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.graphs[graphID]
	if !ok {
		return 0, fmt.Errorf("orchestrator: graph %q not deployed", graphID)
	}
	sc := d.scales[nfID]
	if sc == nil {
		att, ok := d.nfs[nfID]
		if !ok {
			return 0, fmt.Errorf("orchestrator: graph %q has no NF %q", graphID, nfID)
		}
		if !att.inst.Runtime.Running() {
			return 0, fmt.Errorf("orchestrator: graph %q: NF %q has no surviving replica", graphID, nfID)
		}
		return 1, nil
	}
	var alive, dead []*nfAttachment
	for _, att := range sc.replicas {
		if att.inst.Runtime.Running() {
			alive = append(alive, att)
		} else {
			dead = append(dead, att)
		}
	}
	if len(dead) == 0 {
		return len(alive), nil
	}
	if len(alive) == 0 {
		return 0, fmt.Errorf("orchestrator: graph %q: NF %q has no surviving replica", graphID, nfID)
	}
	// Reorder survivors-first and renumber the bucket map accordingly; the
	// dead land on indices >= len(alive), which the rebalance treats as
	// donors that must give everything up.
	reordered := append(append([]*nfAttachment{}, alive...), dead...)
	newIdx := make(map[*nfAttachment]int, len(reordered))
	for i, att := range reordered {
		newIdx[att] = i
	}
	var remapped [vswitch.NumStateBuckets]int
	for b, owner := range sc.assign {
		remapped[b] = newIdx[sc.replicas[owner]]
	}
	sc.replicas = reordered
	sc.assign = remapped
	newAssign := remapped
	donated := rebalanceAssign(&newAssign, len(alive))
	migStart := time.Now()
	moved := o.migrateBuckets(graphID, nfID, sc, donated, &newAssign)
	o.metrics.migratedFlows.Add(uint64(moved))
	o.metrics.migrationLatency.Observe(time.Since(migStart).Seconds())
	sc.assign = newAssign
	sc.replicas = sc.replicas[:len(alive)]
	d.nfs[nfID] = sc.replicas[0]
	if len(alive) == 1 {
		delete(d.scales, nfID)
	}
	if err := o.reprogram(d); err != nil {
		return 0, fmt.Errorf("orchestrator: repair: repointing steering: %w", err)
	}
	for _, att := range dead {
		o.detachNF(d, nfID, att)
	}
	if n := d.Graph.FindNF(nfID); n != nil {
		n.Replicas = len(alive)
	}
	o.metrics.scales.Inc()
	o.journal.Recordf(telemetry.EventScale, o.cfg.NodeName, graphID,
		fmt.Sprintf("%s: %d dead replica(s) re-homed onto %d survivor(s), %d flows salvaged",
			nfID, len(dead), len(alive), moved))
	return len(alive), nil
}

// AutoscaleTick evaluates every deployed graph once against its observed
// packet rate and scales each NF that opted in (AutoscaleRateKey in its
// configuration) toward ceil(rate / per-replica-rate), clamped to
// [1, MaxReplicas]. Returns how many scale operations ran.
func (o *Orchestrator) AutoscaleTick() int {
	type want struct {
		graphID, nfID string
		replicas      int
	}
	var wants []want
	o.mu.Lock()
	for id, d := range o.graphs {
		rate := o.observedRateLocked(id)
		for i := range d.Graph.NFs {
			n := &d.Graph.NFs[i]
			perReplica, ok := n.Config[AutoscaleRateKey]
			if !ok {
				continue
			}
			th, err := strconv.ParseFloat(perReplica, 64)
			if err != nil || th <= 0 {
				continue
			}
			target := int(math.Ceil(rate / th))
			if target < 1 {
				target = 1
			}
			if target > nffg.MaxReplicas {
				target = nffg.MaxReplicas
			}
			cur := 1
			if sc := d.scales[n.ID]; sc != nil {
				cur = len(sc.replicas)
			}
			if target != cur {
				wants = append(wants, want{graphID: id, nfID: n.ID, replicas: target})
			}
		}
	}
	o.mu.Unlock()
	done := 0
	for _, w := range wants {
		if err := o.Scale(w.graphID, w.nfID, w.replicas); err == nil {
			done++
		} else {
			o.journal.Recordf(telemetry.EventScale, o.cfg.NodeName, w.graphID,
				fmt.Sprintf("autoscale %s -> %d: %v", w.nfID, w.replicas, err))
		}
	}
	return done
}

// equalIgnoringReplicas reports whether two NF specs differ only in their
// replica count: such a change is a scale operation, not a config change,
// and must not restart the instances.
func equalIgnoringReplicas(a, b nffg.NF) bool {
	b.Replicas = a.Replicas
	return reflect.DeepEqual(a, b)
}

// reconcileReplicas walks a just-deployed or just-updated spec and scales
// every NF whose requested replica count differs from what runs.
func (o *Orchestrator) reconcileReplicas(g *nffg.Graph) error {
	for _, n := range g.NFs {
		target := n.Replicas
		if target < 1 {
			target = 1
		}
		cur, err := o.Replicas(g.ID, n.ID)
		if err != nil {
			// The NF may legitimately be absent (e.g. removed by a
			// concurrent update); nothing to reconcile.
			continue
		}
		if cur == target {
			continue
		}
		if err := o.scale(g.ID, n.ID, target); err != nil {
			return fmt.Errorf("orchestrator: scaling %q to %d replicas: %w", n.ID, target, err)
		}
	}
	return nil
}

// restartReplicas restarts every replica of a scaled NF with a new
// configuration (the update fallback when in-place reconfiguration is
// unsupported). Flow state does not survive — the new configuration may
// invalidate it — but the replica set and bucket map do. Callers hold o.mu.
func (o *Orchestrator) restartReplicas(d *DeployedGraph, graphID string, n nffg.NF, sc *nfScale) error {
	tpl, ok := o.cfg.Repo.Lookup(n.Name)
	if !ok {
		return fmt.Errorf("orchestrator: NF %q not in repository", n.Name)
	}
	tech := sc.replicas[0].inst.Technology
	drv, ok := o.cfg.Compute.Driver(tech)
	if !ok {
		return fmt.Errorf("orchestrator: no %q driver registered", tech)
	}
	for i, old := range sc.replicas {
		o.setState(graphID, n.ID, old, StateDraining)
		o.detachNF(d, n.ID, old)
		newAtt := &nfAttachment{}
		o.setState(graphID, n.ID, newAtt, StateStarting)
		inst, err := drv.Start(compute.StartRequest{
			InstanceName: fmt.Sprintf("%s.%s#r%d", graphID, n.ID, o.nextCookie()),
			GraphID:      graphID,
			Template:     tpl,
			Config:       n.Config,
		})
		if err != nil {
			o.setState(graphID, n.ID, newAtt, StateFailed)
			return fmt.Errorf("orchestrator: restarting replica %d of %q: %w", i, n.ID, err)
		}
		newAtt.inst = inst
		o.setState(graphID, n.ID, newAtt, StateAttaching)
		if err := o.attachNF(d, newAtt); err != nil {
			o.setState(graphID, n.ID, newAtt, StateFailed)
			_ = drv.Stop(inst)
			return fmt.Errorf("orchestrator: attaching restarted replica %d of %q: %w", i, n.ID, err)
		}
		sc.replicas[i] = newAtt
		if i == 0 {
			d.nfs[n.ID] = newAtt
		}
		o.setState(graphID, n.ID, newAtt, StateRunning)
		o.metrics.nfStarts.Inc()
	}
	return nil
}
