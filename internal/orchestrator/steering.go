package orchestrator

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/nffg"
	"repro/internal/pkt"
	"repro/internal/telemetry"
	"repro/internal/vswitch"
)

// compileEntries compiles the graph's big-switch flow rules into concrete
// flow entries for the graph's LSI, tagged with the given cookie. Nothing
// is installed: deploy pushes the entries through the OpenFlow channel,
// update and reflavor hand them to the switch's atomic snapshot swap.
func (o *Orchestrator) compileEntries(d *DeployedGraph, cookie uint64) ([]*vswitch.FlowEntry, error) {
	entries := make([]*vswitch.FlowEntry, 0, len(d.Graph.Rules))
	for _, r := range d.Graph.Rules {
		actions, err := o.compileActions(d, r.Actions)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: graph %q rule %q: %w", d.Graph.ID, r.ID, err)
		}
		// A rule whose ingress is a scaled NF expands to one entry per
		// replica: any replica's emission matches the same downstream path.
		var reps []*nfAttachment
		if r.Match.PortIn.IsNF() {
			if sc := d.scales[r.Match.PortIn.NF]; sc != nil && len(sc.replicas) > 1 {
				reps = sc.replicas
			}
		}
		if reps == nil {
			match, pre, err := o.compileMatch(d, r.Match)
			if err != nil {
				return nil, fmt.Errorf("orchestrator: graph %q rule %q: %w", d.Graph.ID, r.ID, err)
			}
			entries = append(entries, &vswitch.FlowEntry{
				Priority: r.Priority,
				Cookie:   cookie,
				Match:    match,
				Actions:  append(pre, actions...),
			})
			continue
		}
		nfID := r.Match.PortIn.NF
		orig := d.nfs[nfID]
		for _, rep := range reps {
			d.nfs[nfID] = rep
			match, pre, err := o.compileMatch(d, r.Match)
			if err != nil {
				d.nfs[nfID] = orig
				return nil, fmt.Errorf("orchestrator: graph %q rule %q: %w", d.Graph.ID, r.ID, err)
			}
			entries = append(entries, &vswitch.FlowEntry{
				Priority: r.Priority,
				Cookie:   cookie,
				Match:    match,
				Actions:  append(pre, actions...),
			})
		}
		d.nfs[nfID] = orig
	}
	return entries, nil
}

// program is the traffic steering manager: it compiles the graph's
// big-switch flow rules into concrete flow entries on the graph's LSI and
// pushes them through the OpenFlow channel.
func (o *Orchestrator) program(d *DeployedGraph) error {
	entries, err := o.compileEntries(d, d.cookie)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := d.lsi.ctrl.InstallFlow(e.Table, e.Priority, e.Cookie, e.Match, e.Actions); err != nil {
			return err
		}
	}
	if err := d.lsi.ctrl.Barrier(); err != nil {
		return err
	}
	o.metrics.steeringRules.Add(uint64(len(d.Graph.Rules)))
	o.journal.Recordf(telemetry.EventFlowMod, o.cfg.NodeName, d.Graph.ID,
		fmt.Sprintf("%d rules on %s", len(d.Graph.Rules), o.lsiLabel(d.lsi.sw)))
	return nil
}

// nfPortIndex resolves an NF-FG port id to the NF's port index.
func nfPortIndex(g *nffg.Graph, nfID, portID string) (int, error) {
	n := g.FindNF(nfID)
	if n == nil {
		return 0, fmt.Errorf("unknown NF %q", nfID)
	}
	for i, p := range n.Ports {
		if p.ID == portID {
			return i, nil
		}
	}
	return 0, fmt.Errorf("NF %q has no port %q", nfID, portID)
}

// compileMatch turns a rule selector into a switch match plus any actions
// that must run before the rule's own (tag pop for shared NNF returns).
func (o *Orchestrator) compileMatch(d *DeployedGraph, m nffg.RuleMatch) (vswitch.Match, []vswitch.Action, error) {
	match := vswitch.MatchAll()
	if m.EtherType != 0 {
		match = match.WithEthType(pkt.EthernetType(m.EtherType))
	}
	if m.VLANID != 0 {
		match = match.WithVLAN(m.VLANID)
	}
	if m.IPProto != 0 {
		match = match.WithIPProto(pkt.IPProtocol(m.IPProto))
	}
	if m.IPSrc != "" {
		addr, bits, err := parseCIDR(m.IPSrc)
		if err != nil {
			return match, nil, err
		}
		match = match.WithIPSrc(addr, bits)
	}
	if m.IPDst != "" {
		addr, bits, err := parseCIDR(m.IPDst)
		if err != nil {
			return match, nil, err
		}
		match = match.WithIPDst(addr, bits)
	}
	if m.L4Src != 0 {
		match = match.WithL4Src(m.L4Src)
	}
	if m.L4Dst != 0 {
		match = match.WithL4Dst(m.L4Dst)
	}

	var pre []vswitch.Action
	switch {
	case m.PortIn.IsEndpoint():
		att, ok := d.eps[m.PortIn.Endpoint]
		if !ok {
			return match, nil, fmt.Errorf("endpoint %q not attached", m.PortIn.Endpoint)
		}
		match = match.WithInPort(att.graphPort)
	case m.PortIn.IsNF():
		att, ok := d.nfs[m.PortIn.NF]
		if !ok {
			return match, nil, fmt.Errorf("NF %q not attached", m.PortIn.NF)
		}
		idx, err := nfPortIndex(d.Graph, m.PortIn.NF, m.PortIn.Port)
		if err != nil {
			return match, nil, err
		}
		if att.inst.Shared {
			if m.VLANID != 0 {
				return match, nil, fmt.Errorf("vlan match not supported on shared-NNF port %v", m.PortIn)
			}
			// Traffic processed by the shared NNF returns from LSI-0
			// carrying the graph's egress mark; match it and strip it.
			match = match.WithInPort(att.nnfVlink).WithVLAN(att.inst.OutMarks[idx])
			pre = append(pre, vswitch.PopVLAN())
		} else {
			match = match.WithInPort(att.lsiPorts[idx])
		}
	default:
		return match, nil, fmt.Errorf("rule has no port_in")
	}
	return match, pre, nil
}

// compileActions turns rule actions into switch actions.
func (o *Orchestrator) compileActions(d *DeployedGraph, actions []nffg.RuleAction) ([]vswitch.Action, error) {
	out := make([]vswitch.Action, 0, len(actions))
	for _, a := range actions {
		switch a.Type {
		case nffg.ActOutput:
			switch {
			case a.Output.IsEndpoint():
				att, ok := d.eps[a.Output.Endpoint]
				if !ok {
					return nil, fmt.Errorf("endpoint %q not attached", a.Output.Endpoint)
				}
				out = append(out, vswitch.Output(att.graphPort))
			case a.Output.IsNF():
				att, ok := d.nfs[a.Output.NF]
				if !ok {
					return nil, fmt.Errorf("NF %q not attached", a.Output.NF)
				}
				idx, err := nfPortIndex(d.Graph, a.Output.NF, a.Output.Port)
				if err != nil {
					return nil, err
				}
				sc := d.scales[a.Output.NF]
				switch {
				case sc != nil && len(sc.replicas) > 1:
					// Shard over the NF's replicas: every flow bucket maps
					// to its owning replica's LSI port for this logical
					// port. The bucket hash is symmetric, so both directions
					// of a connection land on the same replica.
					var ports [vswitch.NumStateBuckets]uint32
					for b, ri := range sc.assign {
						ports[b] = sc.replicas[ri].lsiPorts[idx]
					}
					out = append(out, vswitch.SelectBucket(ports))
				case att.inst.Shared:
					// Tag with the graph's ingress mark for that
					// logical port and ship to LSI-0.
					out = append(out,
						vswitch.PushVLAN(att.inst.InMarks[idx]),
						vswitch.Output(att.nnfVlink))
				default:
					out = append(out, vswitch.Output(att.lsiPorts[idx]))
				}
			default:
				return nil, fmt.Errorf("output action without destination")
			}
		case nffg.ActPushVLAN:
			out = append(out, vswitch.PushVLAN(a.VLANID))
		case nffg.ActPopVLAN:
			out = append(out, vswitch.PopVLAN())
		case nffg.ActSetEthSrc:
			mac, err := pkt.ParseMAC(a.MAC)
			if err != nil {
				return nil, err
			}
			out = append(out, vswitch.SetEthSrc(mac))
		case nffg.ActSetEthDst:
			mac, err := pkt.ParseMAC(a.MAC)
			if err != nil {
				return nil, err
			}
			out = append(out, vswitch.SetEthDst(mac))
		default:
			return nil, fmt.Errorf("unknown action type %q", a.Type)
		}
	}
	return out, nil
}

func parseCIDR(s string) (pkt.Addr, int, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return pkt.Addr{}, 0, fmt.Errorf("bad CIDR %q", s)
	}
	addr, err := pkt.ParseAddr(s[:slash])
	if err != nil {
		return pkt.Addr{}, 0, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return pkt.Addr{}, 0, fmt.Errorf("bad CIDR prefix in %q", s)
	}
	return addr, bits, nil
}
