package orchestrator

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/nffg"
	"repro/internal/policy"
	"repro/internal/repository"
)

// defaultPreference is the static technology order submitted to the
// placement policy when the NF-FG does not pin one: native functions first
// (the paper's thesis: lowest overhead on CPE-class hardware), then
// containers, then DPDK processes, then VMs. FirstFit keeps this order
// verbatim; the other policies re-rank it.
var defaultPreference = []nffg.Technology{
	nffg.TechNative, nffg.TechDocker, nffg.TechDPDK, nffg.TechVM,
}

// Placement is the scheduler's decision for one NF.
type Placement struct {
	NF         nffg.NF
	Template   *repository.Template
	Technology nffg.Technology
	Driver     compute.Driver
}

// flavorCandidates builds the policy candidates for one NF: every packaged
// flavor with a registered driver, in static preference order, each priced
// with its ledger charge, runtime footprint and modeled per-packet cost.
// Callers hold o.mu.
func (o *Orchestrator) flavorCandidates(tpl *repository.Template, pref nffg.Technology) []policy.Candidate {
	order := defaultPreference
	if pref != nffg.TechAny {
		order = []nffg.Technology{pref}
	}
	usedCPU, totalCPU, usedRAM, totalRAM := o.cfg.Resources.Usage()
	freeCPU := totalCPU - usedCPU
	freeRAM := totalRAM - usedRAM
	model := *o.cfg.Model
	cands := make([]policy.Candidate, 0, len(order))
	for _, tech := range order {
		fl, packaged := tpl.Flavors[tech]
		if !packaged {
			continue
		}
		if _, registered := o.cfg.Compute.Driver(tech); !registered {
			continue
		}
		flavor := policy.FlavorOf(tech)
		cands = append(cands, policy.Candidate{
			Tech:          tech,
			CPUMillis:     fl.CPUMillis,
			RAMBytes:      model.BaseRAM(flavor) + tpl.WorkloadRAM,
			CostNs:        float64(model.PacketCost(flavor, policy.RefFrameBytes, 0)),
			FreeCPUMillis: freeCPU,
			FreeRAMBytes:  freeRAM,
			Linked:        true,
		})
	}
	return cands
}

// schedule resolves every NF of a graph against the repository (the VNF
// resolver) and picks an execution technology per NF (the VNF scheduler):
// the configured placement policy ranks the packaged flavors — by static
// preference, capacity fit or modeled cost at the graph's observed traffic
// rate — and the first ranked flavor whose driver is deployable right now
// (capability present, NNF not busy: the status check of paper §2) wins.
// The same policy engine ranks hosting nodes in the global orchestrator.
// Callers hold o.mu.
func (o *Orchestrator) schedule(g *nffg.Graph) ([]Placement, error) {
	pol := o.cfg.Policy
	rate := o.observedRateLocked(g.ID)
	placements := make([]Placement, 0, len(g.NFs))
	for _, n := range g.NFs {
		tpl, ok := o.cfg.Repo.Lookup(n.Name)
		if !ok {
			return nil, fmt.Errorf("orchestrator: graph %q: NF %q not in repository", g.ID, n.Name)
		}
		if len(n.Ports) != tpl.Ports {
			return nil, fmt.Errorf("orchestrator: graph %q: NF %q declares %d ports, template has %d",
				g.ID, n.ID, len(n.Ports), tpl.Ports)
		}
		req := policy.Request{GraphID: g.ID, NFID: n.ID, RatePPS: rate}
		placed := false
		for _, c := range pol.Rank(req, o.flavorCandidates(tpl, n.TechnologyPreference)) {
			drv, registered := o.cfg.Compute.Driver(c.Tech)
			if !registered || !drv.Available(g.ID, tpl) {
				continue
			}
			placements = append(placements, Placement{NF: n, Template: tpl, Technology: c.Tech, Driver: drv})
			placed = true
			break
		}
		if !placed {
			return nil, fmt.Errorf("orchestrator: graph %q: no deployable flavor for NF %q (preference %q, policy %q)",
				g.ID, n.ID, n.TechnologyPreference, pol.Name())
		}
	}
	return placements, nil
}
