package orchestrator

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/nffg"
	"repro/internal/repository"
)

// defaultPreference is the scheduler's technology order when the NF-FG does
// not pin one: native functions first (the paper's thesis: lowest overhead
// on CPE-class hardware), then containers, then DPDK processes, then VMs.
var defaultPreference = []nffg.Technology{
	nffg.TechNative, nffg.TechDocker, nffg.TechDPDK, nffg.TechVM,
}

// Placement is the scheduler's decision for one NF.
type Placement struct {
	NF         nffg.NF
	Template   *repository.Template
	Technology nffg.Technology
	Driver     compute.Driver
}

// schedule resolves every NF of a graph against the repository (the VNF
// resolver) and picks an execution technology per NF (the VNF scheduler),
// based on the node capability set, the available NNFs and their status —
// the decision procedure of paper §2.
func (o *Orchestrator) schedule(g *nffg.Graph) ([]Placement, error) {
	placements := make([]Placement, 0, len(g.NFs))
	for _, n := range g.NFs {
		tpl, ok := o.cfg.Repo.Lookup(n.Name)
		if !ok {
			return nil, fmt.Errorf("orchestrator: graph %q: NF %q not in repository", g.ID, n.Name)
		}
		if len(n.Ports) != tpl.Ports {
			return nil, fmt.Errorf("orchestrator: graph %q: NF %q declares %d ports, template has %d",
				g.ID, n.ID, len(n.Ports), tpl.Ports)
		}
		var candidates []nffg.Technology
		if n.TechnologyPreference != nffg.TechAny {
			candidates = []nffg.Technology{n.TechnologyPreference}
		} else {
			candidates = defaultPreference
		}
		placed := false
		for _, tech := range candidates {
			drv, registered := o.cfg.Compute.Driver(tech)
			if !registered {
				continue
			}
			if !drv.Available(g.ID, tpl) {
				continue
			}
			placements = append(placements, Placement{NF: n, Template: tpl, Technology: tech, Driver: drv})
			placed = true
			break
		}
		if !placed {
			return nil, fmt.Errorf("orchestrator: graph %q: no deployable flavor for NF %q (preference %q)",
				g.ID, n.ID, n.TechnologyPreference)
		}
	}
	return placements, nil
}
