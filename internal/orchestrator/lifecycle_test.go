package orchestrator

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compute"
	"repro/internal/execenv"
	"repro/internal/imagestore"
	"repro/internal/netdev"
	"repro/internal/netns"
	"repro/internal/nf"
	"repro/internal/nffg"
	"repro/internal/nnf"
	"repro/internal/policy"
	"repro/internal/repository"
	"repro/internal/resources"
	"repro/internal/telemetry"
)

// buildNode assembles a node like newNode but with wall-clock startup
// emulation and an explicit parallel-start bound, for scheduling-latency
// tests.
func buildNode(t *testing.T, wallScale float64, maxParallel int, pol policy.PlacementPolicy) *Orchestrator {
	t.Helper()
	store := imagestore.NewStore()
	if err := repository.DefaultImages(store); err != nil {
		t.Fatal(err)
	}
	pool := resources.NewPool(64000, 32*gb)
	for _, c := range []resources.Capability{
		"kvm", "docker", "dpdk",
		"nnf:ipsec", "nnf:firewall", "nnf:nat", "nnf:bridge", "nnf:router", "nnf:monitor", "nnf:shaper",
	} {
		pool.AddCapability(c)
	}
	clock := &execenv.VirtualClock{}
	deps := compute.Deps{
		NFs:              nf.DefaultRegistry(),
		Images:           store,
		Resources:        pool,
		Model:            execenv.Default(),
		Clock:            clock,
		StartupWallScale: wallScale,
	}
	nnfMgr := nnf.NewManager(nnf.Builtins(), netns.NewRegistry(), deps.Model, clock)
	cmgr := compute.NewManager()
	mustDriver := func(d compute.Driver, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if err := cmgr.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	mustDriver(compute.NewVMDriver(deps))
	mustDriver(compute.NewDockerDriver(deps))
	mustDriver(compute.NewDPDKDriver(deps))
	mustDriver(compute.NewNativeDriver(deps, nnfMgr))
	o, err := New(Config{
		NodeName:          "cpe",
		Interfaces:        []string{"eth0", "eth1"},
		Resources:         pool,
		Repo:              repository.Default(),
		Compute:           cmgr,
		Clock:             clock,
		Policy:            pol,
		MaxParallelStarts: maxParallel,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	return o
}

// chainGraph builds eth0 -> nf1 -> ... -> nfN -> eth1 with every NF pinned
// to the given technology.
func fwChainGraph(id string, n int, tech nffg.Technology) *nffg.Graph {
	g := &nffg.Graph{
		ID: id,
		Endpoints: []nffg.Endpoint{
			{ID: "in", Type: nffg.EPInterface, Interface: "eth0"},
			{ID: "out", Type: nffg.EPInterface, Interface: "eth1"},
		},
	}
	for i := 0; i < n; i++ {
		g.NFs = append(g.NFs, nffg.NF{
			ID: fmt.Sprintf("fw%d", i), Name: "firewall",
			Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
			TechnologyPreference: tech,
		})
	}
	prev := nffg.EndpointRef("in")
	for i := 0; i < n; i++ {
		g.Rules = append(g.Rules, nffg.FlowRule{
			ID: fmt.Sprintf("r%d", i), Priority: 10,
			Match:   nffg.RuleMatch{PortIn: prev},
			Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef(g.NFs[i].ID, "0")}},
		})
		prev = nffg.NFPortRef(g.NFs[i].ID, "1")
	}
	g.Rules = append(g.Rules, nffg.FlowRule{
		ID: "r-out", Priority: 10,
		Match:   nffg.RuleMatch{PortIn: prev},
		Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("out")}},
	})
	return g
}

// TestUpdateRollsBackStartedNFs is the regression test for the seed's
// update leak: an NF started by a failing update (here: the endpoint added
// after it references a missing interface) must not stay attached while
// d.Graph keeps the old spec.
func TestUpdateRollsBackStartedNFs(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("g1", nffg.TechNative)); err != nil {
		t.Fatal(err)
	}
	usedCPU0, _, usedRAM0, _ := o.Usage()

	upd := ipsecGraph("g1", nffg.TechNative)
	upd.NFs = append(upd.NFs, nffg.NF{
		ID: "mon", Name: "monitor",
		Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
		TechnologyPreference: nffg.TechNative,
	})
	upd.Endpoints = append(upd.Endpoints, nffg.Endpoint{
		ID: "side", Type: nffg.EPInterface, Interface: "eth9", // not on the node
	})
	if err := o.Update(upd); err == nil {
		t.Fatal("update with unknown endpoint interface accepted")
	}
	d, _ := o.Graph("g1")
	if len(d.Instances()) != 1 {
		t.Fatalf("failed update leaked NFs: instances = %v", d.Instances())
	}
	if _, leaked := d.Instances()["mon"]; leaked {
		t.Fatal("NF started by the failed update still attached")
	}
	usedCPU, _, usedRAM, _ := o.Usage()
	if usedCPU != usedCPU0 || usedRAM != usedRAM0 {
		t.Fatalf("failed update leaked resources: cpu %d->%d ram %d->%d",
			usedCPU0, usedCPU, usedRAM0, usedRAM)
	}
	// The deployed spec still is the old one and the chain still forwards.
	if spec, _ := o.GraphSpec("g1"); len(spec.NFs) != 1 {
		t.Fatalf("spec mutated by failed update: %d NFs", len(spec.NFs))
	}
	send(t, o, "eth0", clearFrame(t))
	if _, ok := recv(t, o, "eth1"); !ok {
		t.Error("original service broken by rolled-back update")
	}
}

// TestUpdateRollsBackOnStartFailure: one of two added NFs fails during the
// concurrent start phase; the sibling that did start must be stopped, not
// half-deployed.
func TestUpdateRollsBackOnStartFailure(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("g1", nffg.TechNative)); err != nil {
		t.Fatal(err)
	}
	usedCPU0, _, usedRAM0, _ := o.Usage()
	upd := ipsecGraph("g1", nffg.TechNative)
	upd.NFs = append(upd.NFs,
		nffg.NF{ID: "mon", Name: "monitor",
			Ports: []nffg.NFPort{{ID: "0"}, {ID: "1"}}, TechnologyPreference: nffg.TechNative},
		nffg.NF{ID: "broken", Name: "ipsec",
			Ports:                []nffg.NFPort{{ID: "0"}, {ID: "1"}},
			TechnologyPreference: nffg.TechDocker,
			Config:               map[string]string{"local": "not-an-ip"}},
	)
	if err := o.Update(upd); err == nil {
		t.Fatal("update with broken NF accepted")
	}
	d, _ := o.Graph("g1")
	if len(d.Instances()) != 1 {
		t.Fatalf("start-phase failure leaked NFs: %v", d.Instances())
	}
	usedCPU, _, usedRAM, _ := o.Usage()
	if usedCPU != usedCPU0 || usedRAM != usedRAM0 {
		t.Fatalf("start-phase failure leaked resources: cpu %d->%d ram %d->%d",
			usedCPU0, usedCPU, usedRAM0, usedRAM)
	}
}

// journalDetails collects the details of all journal events of one type.
func journalDetails(o *Orchestrator, typ string) []string {
	var out []string
	for _, ev := range o.Events() {
		if ev.Type == typ {
			out = append(out, ev.Detail)
		}
	}
	return out
}

// TestUpdateConfigRestartFallback: the ipsec processor does not implement
// Configure, so a config-only change must stop and restart the instance
// with the new configuration instead of silently leaving stale config
// running — and journal that it took the restart path.
func TestUpdateConfigRestartFallback(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("g1", nffg.TechVM)); err != nil {
		t.Fatal(err)
	}
	upd := ipsecGraph("g1", nffg.TechVM)
	upd.NFs[0].Config["spi"] = "8192"
	if err := o.Update(upd); err != nil {
		t.Fatal(err)
	}
	details := journalDetails(o, telemetry.EventNFConfig)
	if len(details) != 1 || !strings.Contains(details[0], "restarted") {
		t.Fatalf("expected a restart journal entry, got %v", details)
	}
	// The new SPI is live on the wire: ESP puts it in the first 4 bytes
	// after the IP header.
	send(t, o, "eth0", clearFrame(t))
	wire, ok := recv(t, o, "eth1")
	if !ok {
		t.Fatal("chain broken after config restart")
	}
	if spi := fmt.Sprintf("%x", wire[14+20:14+24]); spi != "00002000" {
		t.Fatalf("wire SPI %s, want 00002000 (8192)", spi)
	}
	if spec, _ := o.GraphSpec("g1"); spec.NFs[0].Config["spi"] != "8192" {
		t.Fatal("deployed spec not updated")
	}
}

// TestUpdateRestartFailureRestoresPreviousConfig: when the restart path
// cannot start the new-config instance, the previous spec's instance is
// reinstated so the graph keeps forwarding instead of being left with a
// hole its steering still points into.
func TestUpdateRestartFailureRestoresPreviousConfig(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("g1", nffg.TechVM)); err != nil {
		t.Fatal(err)
	}
	upd := ipsecGraph("g1", nffg.TechVM)
	upd.NFs[0].Config["key"] = "zz" // invalid hex: the new instance cannot build
	if err := o.Update(upd); err == nil {
		t.Fatal("update with un-startable config accepted")
	}
	d, _ := o.Graph("g1")
	inst, present := d.Instances()["vpn"]
	if !present {
		t.Fatal("NF lost after failed config restart")
	}
	if inst.Technology != nffg.TechVM {
		t.Fatalf("restored instance runs %s, want vm", inst.Technology)
	}
	restored := false
	for _, detail := range journalDetails(o, telemetry.EventNFConfig) {
		if strings.Contains(detail, "restored to previous config") {
			restored = true
		}
	}
	if !restored {
		t.Fatalf("recovery not journaled: %v", journalDetails(o, telemetry.EventNFConfig))
	}
	// The old-config chain still forwards end to end.
	send(t, o, "eth0", clearFrame(t))
	if _, ok := recv(t, o, "eth1"); !ok {
		t.Error("chain broken after restart recovery")
	}
}

// TestUpdateConfigInPlace: the firewall processor implements Configure, so
// a config change applies without a restart and journals the in-place path.
func TestUpdateConfigInPlace(t *testing.T) {
	o := newNode(t)
	g := firewallGraph("g1", 100, "")
	g.NFs[0].TechnologyPreference = nffg.TechDocker // private instance: reconfigurable in place
	if err := o.Deploy(g); err != nil {
		t.Fatal(err)
	}
	send(t, o, "eth0", vlanFrame(t, 100, 53))
	if _, ok := recv(t, o, "eth1"); !ok {
		t.Fatal("pre-update DNS should pass")
	}
	upd := firewallGraph("g1", 100, "drop proto=udp dport=53")
	upd.NFs[0].TechnologyPreference = nffg.TechDocker
	if err := o.Update(upd); err != nil {
		t.Fatal(err)
	}
	details := journalDetails(o, telemetry.EventNFConfig)
	if len(details) != 1 || !strings.Contains(details[0], "reconfigured in place") {
		t.Fatalf("expected an in-place journal entry, got %v", details)
	}
	send(t, o, "eth0", vlanFrame(t, 100, 53))
	if _, ok := recv(t, o, "eth1"); ok {
		t.Fatal("new firewall config not active after in-place reconfigure")
	}
}

// TestScheduleFallbackOnAvailabilityFlip: the native flavor is available at
// Deploy but its capability disappears before Update adds a second NF — the
// scheduler must downgrade the new NF to the next flavor in the ranking
// instead of failing or reusing the stale decision.
func TestScheduleFallbackOnAvailabilityFlip(t *testing.T) {
	o := newNode(t)
	g := fwChainGraph("g1", 1, nffg.TechAny)
	if err := o.Deploy(g); err != nil {
		t.Fatal(err)
	}
	d, _ := o.Graph("g1")
	if tech := d.Instances()["fw0"].Technology; tech != nffg.TechNative {
		t.Fatalf("fw0 deployed as %s, want native", tech)
	}
	// The capability flips away between Deploy and Update.
	o.cfg.Resources.RemoveCapability("nnf:firewall")
	upd := fwChainGraph("g1", 2, nffg.TechAny)
	if err := o.Update(upd); err != nil {
		t.Fatal(err)
	}
	d, _ = o.Graph("g1")
	if tech := d.Instances()["fw1"].Technology; tech != nffg.TechDocker {
		t.Fatalf("fw1 scheduled as %s, want docker (native capability gone)", tech)
	}
	// The NF deployed before the flip keeps running native.
	if tech := d.Instances()["fw0"].Technology; tech != nffg.TechNative {
		t.Fatalf("fw0 disturbed by availability flip: now %s", tech)
	}
}

// TestReflavorZeroLoss drives continuous traffic through the IPsec CPE
// graph while the vpn NF hot-swaps VM -> native, and asserts with the
// per-LSI drop counters that the make-before-break switchover forwarded
// every single frame.
func TestReflavorZeroLoss(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("g1", nffg.TechVM)); err != nil {
		t.Fatal(err)
	}
	lan, _ := o.InterfacePort("eth0")
	wan, _ := o.InterfacePort("eth1")
	var received atomic.Uint64
	wan.SetHandler(func(netdev.Frame) { received.Add(1) })
	defer wan.SetHandler(nil)

	const frames = 3000
	var sent atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		data := clearFrame(t)
		for i := 0; i < frames; i++ {
			if err := lan.Send(netdev.Frame{Data: data}); err == nil {
				sent.Add(1)
			}
		}
	}()
	// Wait until the stream is demonstrably mid-flight, then swap.
	for received.Load() < frames/10 {
		time.Sleep(time.Millisecond)
	}
	if err := o.Reflavor("g1", "vpn", nffg.TechNative); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if sent.Load() != frames || received.Load() != frames {
		t.Fatalf("sent %d received %d, want %d/%d", sent.Load(), received.Load(), frames, frames)
	}
	d, _ := o.Graph("g1")
	if drops := d.LSI().Telemetry().Drops; drops != 0 {
		t.Fatalf("graph LSI dropped %d frames during the hot-swap", drops)
	}
	if drops := o.LSI0().Telemetry().Drops; drops != 0 {
		t.Fatalf("LSI-0 dropped %d frames during the hot-swap", drops)
	}
	if tech := d.Instances()["vpn"].Technology; tech != nffg.TechNative {
		t.Fatalf("vpn still %s after reflavor", tech)
	}
	// And the swapped-to flavor keeps forwarding.
	pre := received.Load()
	send(t, o, "eth0", clearFrame(t))
	if received.Load() != pre+1 {
		t.Fatal("native flavor not forwarding after swap")
	}
}

func TestReflavorErrors(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("g1", nffg.TechVM)); err != nil {
		t.Fatal(err)
	}
	if err := o.Reflavor("ghost", "vpn", nffg.TechNative); err == nil {
		t.Error("reflavor of unknown graph accepted")
	}
	if err := o.Reflavor("g1", "ghost", nffg.TechNative); err == nil {
		t.Error("reflavor of unknown NF accepted")
	}
	if err := o.Reflavor("g1", "vpn", "balloon"); err == nil {
		t.Error("reflavor to unknown technology accepted")
	}
	if err := o.Reflavor("g1", "vpn", nffg.TechAny); err == nil {
		t.Error("reflavor to 'any' accepted")
	}
	if err := o.Reflavor("g1", "vpn", nffg.TechDPDK); err == nil {
		t.Error("reflavor to unpackaged flavor accepted (ipsec has no dpdk flavor)")
	}
	// Swapping to the current flavor is a no-op, not an error.
	if err := o.Reflavor("g1", "vpn", nffg.TechVM); err != nil {
		t.Errorf("no-op reflavor failed: %v", err)
	}
	if got := journalDetails(o, telemetry.EventReflavor); len(got) != 0 {
		t.Errorf("no-op/failed reflavors journaled a swap: %v", got)
	}
}

// TestReflavorAuto: the policy re-ranks flavors with current availability —
// with the native capability gone, the policy-triggered variant moves the
// NF to the next-ranked deployable flavor.
func TestReflavorAuto(t *testing.T) {
	o := newNode(t)
	g := ipsecGraph("g1", nffg.TechAny)
	if err := o.Deploy(g); err != nil {
		t.Fatal(err)
	}
	d, _ := o.Graph("g1")
	if tech := d.Instances()["vpn"].Technology; tech != nffg.TechNative {
		t.Fatalf("first-fit deployed %s, want native", tech)
	}
	// Current flavor still ranked first: no swap.
	tech, err := o.ReflavorAuto("g1", "vpn")
	if err != nil || tech != nffg.TechNative {
		t.Fatalf("ReflavorAuto = %s, %v; want native no-op", tech, err)
	}
	// The native capability disappears: the policy must move the NF.
	o.cfg.Resources.RemoveCapability("nnf:ipsec")
	tech, err = o.ReflavorAuto("g1", "vpn")
	if err != nil {
		t.Fatal(err)
	}
	if tech != nffg.TechDocker {
		t.Fatalf("ReflavorAuto chose %s, want docker", tech)
	}
	d, _ = o.Graph("g1")
	if got := d.Instances()["vpn"].Technology; got != nffg.TechDocker {
		t.Fatalf("instance still %s after auto reflavor", got)
	}
}

// TestReflavorTelemetry: the hot-swap shows up in the metric registry (swap
// counter, latency histogram, per-NF state gauge) and the journal.
func TestReflavorTelemetry(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("g1", nffg.TechVM)); err != nil {
		t.Fatal(err)
	}
	if err := o.Reflavor("g1", "vpn", nffg.TechDocker); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := o.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	metrics := buf.String()
	for _, want := range []string{
		"un_reflavors_total 1",
		`un_nf_state{graph="g1",nf="vpn"} 3`, // 3 = running
		"un_reflavor_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if got := journalDetails(o, telemetry.EventReflavor); len(got) != 1 || got[0] != "vpn -> docker" {
		t.Errorf("reflavor journal = %v", got)
	}
}

// TestParallelDeployFasterThanSerial pins the point of the concurrent start
// phase: with wall-clock boot emulation on, an 8-NF graph must deploy at
// least twice as fast with parallel starts as with serialized ones.
func TestParallelDeployFasterThanSerial(t *testing.T) {
	measure := func(maxParallel int) time.Duration {
		o := buildNode(t, 0.05, maxParallel, nil) // docker boot: 300ms * 0.05 = 15ms wall
		g := fwChainGraph("g", 8, nffg.TechDocker)
		start := time.Now()
		if err := o.Deploy(g); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		if err := o.Undeploy("g"); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	serial := measure(1)
	parallel := measure(8)
	if parallel*2 > serial {
		t.Fatalf("parallel deploy %v not 2x faster than serial %v", parallel, serial)
	}
}

// TestConcurrentGraphOps hammers Deploy/Update/Reflavor/Undeploy of the
// same graph id alongside read paths; meaningful under -race. Per-graph
// operation locks must serialize the writers without deadlocking.
func TestConcurrentGraphOps(t *testing.T) {
	o := newNode(t)
	const workers = 4
	const iters = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0:
					_ = o.Deploy(fwChainGraph("shared", 1, nffg.TechDocker))
				case 1:
					_ = o.Update(fwChainGraph("shared", 2, nffg.TechDocker))
				case 2:
					_ = o.Reflavor("shared", "fw0", nffg.TechVM)
				case 3:
					_ = o.Undeploy("shared")
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < workers*iters; i++ {
			_ = o.Topology()
			_ = o.GraphIDs()
			var buf strings.Builder
			_ = o.WriteMetrics(&buf)
		}
	}()
	wg.Wait()
	// Whatever interleaving happened, the node must still deploy cleanly.
	_ = o.Undeploy("shared")
	if err := o.Deploy(fwChainGraph("final", 2, nffg.TechDocker)); err != nil {
		t.Fatalf("node wedged after concurrent ops: %v", err)
	}
}

// TestNFStateLifecycle walks one NF through deploy and undeploy and checks
// the surfaced state plus the journaled transition sequence.
func TestNFStateLifecycle(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(ipsecGraph("g1", nffg.TechNative)); err != nil {
		t.Fatal(err)
	}
	topo := o.Topology()
	if st := topo.Graphs[0].NFs[0].State; st != string(StateRunning) {
		t.Fatalf("deployed NF state %q, want running", st)
	}
	transitions := journalDetails(o, telemetry.EventNFState)
	want := []string{
		"vpn: pending -> starting",
		"vpn: starting -> attaching",
		"vpn: attaching -> running",
	}
	if strings.Join(transitions, "|") != strings.Join(want, "|") {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	if err := o.Undeploy("g1"); err != nil {
		t.Fatal(err)
	}
	transitions = journalDetails(o, telemetry.EventNFState)
	if last := transitions[len(transitions)-1]; last != "vpn: running -> stopped" {
		t.Fatalf("last transition %q, want running -> stopped", last)
	}
}
