package orchestrator

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/vswitch"
)

// opMetrics instruments the orchestrator's control-plane operations and
// feeds the node's metric registry and event journal. Counters and
// histograms are embedded primitives: recording them never takes the
// orchestrator lock.
type opMetrics struct {
	deploys, deployFailures     telemetry.Counter
	updates, updateFailures     telemetry.Counter
	undeploys, undeployFailures telemetry.Counter
	reflavors, reflavorFailures telemetry.Counter
	scales, scaleFailures       telemetry.Counter
	migratedFlows               telemetry.Counter
	promotions                  telemetry.Counter
	standbySyncedFlows          telemetry.Counter
	nfStarts, nfStops           telemetry.Counter
	steeringRules               telemetry.Counter
	deployLatency               *telemetry.Histogram
	updateLatency               *telemetry.Histogram
	undeployLatency             *telemetry.Histogram
	reflavorLatency             *telemetry.Histogram
	scaleLatency                *telemetry.Histogram
	migrationLatency            *telemetry.Histogram
}

func newOpMetrics() *opMetrics {
	return &opMetrics{
		deployLatency:    telemetry.NewHistogram(telemetry.LatencyBuckets()...),
		updateLatency:    telemetry.NewHistogram(telemetry.LatencyBuckets()...),
		undeployLatency:  telemetry.NewHistogram(telemetry.LatencyBuckets()...),
		reflavorLatency:  telemetry.NewHistogram(telemetry.LatencyBuckets()...),
		scaleLatency:     telemetry.NewHistogram(telemetry.LatencyBuckets()...),
		migrationLatency: telemetry.NewHistogram(telemetry.LatencyBuckets()...),
	}
}

// Journal returns the node's event journal (NF lifecycle, graph operations,
// steering reprogramming).
func (o *Orchestrator) Journal() *telemetry.Journal { return o.journal }

// Events returns the node's retained journal events, oldest first.
func (o *Orchestrator) Events() []telemetry.Event { return o.journal.Events() }

// Metrics returns the node's metric registry. The orchestrator registers
// itself at construction; callers may register extra collectors before
// serving it over /metrics.
func (o *Orchestrator) Metrics() *telemetry.Registry { return o.registry }

// WriteMetrics renders one scrape of the node registry to w in Prometheus
// text format.
func (o *Orchestrator) WriteMetrics(w io.Writer) error {
	return o.registry.WritePrometheus(w)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// lsiLabel is the per-switch label value: the switch name with the node
// prefix stripped ("lsi-0", "lsi-<graph>").
func (o *Orchestrator) lsiLabel(sw *vswitch.Switch) string {
	return strings.TrimPrefix(sw.Name(), o.cfg.NodeName+"/")
}

// Collect implements telemetry.Collector: per-LSI datapath counters, the
// microflow-cache state, a sampled packet-latency histogram, resource-ledger
// gauges and control-plane operation counters/timings.
func (o *Orchestrator) Collect(e *telemetry.Exposition) {
	type nfStateSample struct {
		graph, nf string
		state     NFState
	}
	type replicaSample struct {
		graph, nf string
		n         int
	}
	o.mu.Lock()
	switches := make([]*vswitch.Switch, 0, len(o.graphs)+1)
	switches = append(switches, o.lsi0.sw)
	graphNFs := make(map[string]int, len(o.graphs))
	var nfStates []nfStateSample
	var replicas []replicaSample
	for id, d := range o.graphs {
		switches = append(switches, d.lsi.sw)
		graphNFs[id] = len(d.nfs)
		for nfID, att := range d.nfs {
			nfStates = append(nfStates, nfStateSample{graph: id, nf: nfID, state: att.State()})
			n := 1
			if sc := d.scales[nfID]; sc != nil {
				n = len(sc.replicas)
			}
			replicas = append(replicas, replicaSample{graph: id, nf: nfID, n: n})
		}
	}
	o.mu.Unlock()

	for _, sw := range switches {
		t := sw.Telemetry()
		l := telemetry.Labels{"lsi": o.lsiLabel(sw)}
		e.Counter("un_lsi_rx_packets_total", "Frames that entered the LSI pipeline.", l, t.Rx)
		// Tx and per-table matches are derived from per-port/per-entry
		// counters that leave with their port or flow entry, so the series
		// can decrease across a graph update: gauges, not counters.
		e.Gauge("un_lsi_tx_packets", "Frames transmitted out of currently-attached LSI ports.", l, float64(t.Tx))
		e.Counter("un_lsi_drops_total", "Frames dropped by the LSI (unknown port, unparseable, miss-drop).", l, t.Drops)
		e.Counter("un_lsi_misses_total", "Table-miss packets on the LSI.", l, t.Misses)
		e.Counter("un_switch_malformed_total", "Frames rejected by header parsing (counted as drops, not misses).", l, t.Malformed)
		e.Counter("un_cache_hits_total", "Microflow-cache hits.", l, t.Cache.Hits)
		e.Counter("un_cache_misses_total", "Microflow-cache misses (slow-path traversals).", l, t.Cache.Misses)
		e.Gauge("un_cache_entries", "Resident microflow-cache verdicts, valid or stale.", l, float64(t.Cache.Entries))
		for ti, matches := range t.TableMatches {
			tl := telemetry.Labels{"lsi": l["lsi"], "table": fmt.Sprintf("%d", ti)}
			e.Gauge("un_table_matches", "Packets matched per flow table, summed over the currently-installed entries.", tl, float64(matches))
		}
		e.Histogram("un_pipeline_latency_seconds", "Sampled per-packet pipeline latency.", l, t.Latency)
		burstBounds := vswitch.BurstBuckets()
		for wi, ws := range t.Workers {
			wl := telemetry.Labels{"lsi": l["lsi"], "worker": fmt.Sprintf("%d", wi)}
			e.Gauge("un_switch_worker_queue_depth", "Frames waiting in the datapath worker's RX ring.", wl, float64(ws.QueueLen))
			e.Gauge("un_switch_worker_busy", "1 while the datapath worker is processing, 0 while parked.", wl, boolGauge(ws.Busy))
			e.Counter("un_switch_worker_queue_drops_total", "Frames tail-dropped at the worker's full RX ring.", wl, ws.QueueDrops)
			e.Counter("un_switch_worker_packets_total", "Frames processed by the datapath worker.", wl, ws.Packets)
			e.Counter("un_switch_worker_tx_coalesced_total", "Frames transmitted through a coalesced per-port SendBatch flush.", wl, ws.TxCoalesced)
			e.Counter("un_switch_worker_tx_flushes_total", "Coalesced-TX SendBatch calls issued by the worker.", wl, ws.TxFlushes)
			for bi, count := range ws.BurstHist {
				bl := telemetry.Labels{"lsi": l["lsi"], "worker": wl["worker"], "size": fmt.Sprintf("%d", burstBounds[bi])}
				e.Counter("un_switch_worker_bursts_total", "Bursts drained by the worker, bucketed by burst size (label is the bucket's upper bound).", bl, count)
			}
		}
	}

	e.Gauge("un_graphs", "Deployed NF-FGs on the node.", nil, float64(len(graphNFs)))
	for id, n := range graphNFs {
		e.Gauge("un_nf_instances", "Running NF instances per graph.", telemetry.Labels{"graph": id}, float64(n))
	}
	for _, s := range replicas {
		e.Gauge("un_nf_replicas", "Instances currently serving the NF (scale-out shards).",
			telemetry.Labels{"graph": s.graph, "nf": s.nf}, float64(s.n))
	}
	for _, s := range nfStates {
		e.Gauge("un_nf_state",
			"Per-NF lifecycle state (0 pending, 1 starting, 2 attaching, 3 running, 4 draining, 5 stopped, 6 failed).",
			telemetry.Labels{"graph": s.graph, "nf": s.nf}, s.state.Value())
	}
	usedCPU, totalCPU, usedRAM, totalRAM := o.cfg.Resources.Usage()
	e.Gauge("un_cpu_millis_used", "CPU millicores charged on the node ledger.", nil, float64(usedCPU))
	e.Gauge("un_cpu_millis_total", "CPU millicore capacity of the node.", nil, float64(totalCPU))
	e.Gauge("un_ram_bytes_used", "RAM charged on the node ledger.", nil, float64(usedRAM))
	e.Gauge("un_ram_bytes_total", "RAM capacity of the node.", nil, float64(totalRAM))

	m := o.metrics
	e.Counter("un_deploys_total", "Graph deployments accepted.", nil, m.deploys.Value())
	e.Counter("un_deploy_failures_total", "Graph deployments rejected or rolled back.", nil, m.deployFailures.Value())
	e.Counter("un_updates_total", "In-place graph updates applied.", nil, m.updates.Value())
	e.Counter("un_update_failures_total", "In-place graph updates that failed.", nil, m.updateFailures.Value())
	e.Counter("un_undeploys_total", "Graphs undeployed.", nil, m.undeploys.Value())
	e.Counter("un_undeploy_failures_total", "Undeploys of graphs that were not deployed.", nil, m.undeployFailures.Value())
	e.Counter("un_reflavors_total", "NF flavor hot-swaps completed.", nil, m.reflavors.Value())
	e.Counter("un_reflavor_failures_total", "NF flavor hot-swaps that failed.", nil, m.reflavorFailures.Value())
	e.Counter("un_scales_total", "NF replica-set reshapes completed (scale-up, scale-down, repair).", nil, m.scales.Value())
	e.Counter("un_scale_failures_total", "NF replica-set reshapes that failed.", nil, m.scaleFailures.Value())
	e.Counter("un_migrated_flows_total", "Per-flow state entries moved between replicas.", nil, m.migratedFlows.Value())
	e.Counter("un_standby_promotions_total", "Standby instances promoted to active.", nil, m.promotions.Value())
	e.Counter("un_standby_synced_flows_total", "Per-flow state entries replicated to standbys.", nil, m.standbySyncedFlows.Value())
	e.Counter("un_nf_starts_total", "NF instances started.", nil, m.nfStarts.Value())
	e.Counter("un_nf_stops_total", "NF instances stopped.", nil, m.nfStops.Value())
	e.Counter("un_steering_rules_programmed_total", "Big-switch steering rules compiled onto LSIs.", nil, m.steeringRules.Value())
	e.Histogram("un_deploy_seconds", "Graph deployment wall time.", nil, m.deployLatency.Snapshot())
	e.Histogram("un_update_seconds", "Graph update wall time.", nil, m.updateLatency.Snapshot())
	e.Histogram("un_undeploy_seconds", "Graph undeploy wall time.", nil, m.undeployLatency.Snapshot())
	e.Histogram("un_reflavor_seconds", "NF flavor hot-swap wall time (start to drained).", nil, m.reflavorLatency.Snapshot())
	e.Histogram("un_scale_seconds", "NF replica-set reshape wall time.", nil, m.scaleLatency.Snapshot())
	e.Histogram("un_state_migration_seconds", "Flow-state migration wall time (first export to last import).", nil, m.migrationLatency.Snapshot())
	e.Counter("un_journal_events_total", "Events ever recorded in the node journal.", nil, o.journal.Total())
}
