package orchestrator

import (
	"strings"
	"testing"

	"repro/internal/nffg"
	"repro/internal/telemetry"
)

// natStandbyGraph is the NAT scenario graph with an active-standby
// redundancy contract on the NAT.
func natStandbyGraph(id string) *nffg.Graph {
	g := natGraph(id, 1)
	g.NFs[0].Replicas = 0
	g.NFs[0].Redundancy = nffg.RedundancyActiveStandby
	g.NFs[0].Availability = 0.999
	return g
}

// TestStandbyPromotionUnderTraffic is the local-tier acceptance scenario:
// the active NAT instance is killed out from under live connections, and
// RepairNF promotes the pre-attached standby with every binding intact —
// zero packet loss, zero state loss on the traffic that follows.
func TestStandbyPromotionUnderTraffic(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(natStandbyGraph("g")); err != nil {
		t.Fatal(err)
	}
	if sb := o.StandbyNFs("g"); len(sb) != 1 || sb[0] != "nat" {
		t.Fatalf("StandbyNFs = %v, want [nat]", sb)
	}
	conns := establishNATConns(t, o, 32)
	if n := o.SyncStandbys(); n == 0 {
		t.Fatal("SyncStandbys copied no flow state despite live bindings")
	}
	if err := o.KillNF("g", "nat"); err != nil {
		t.Fatal(err)
	}
	if err := o.RepairNF("g", "nat"); err != nil {
		t.Fatal(err)
	}
	verifyNATConns(t, o, conns, "after standby promotion")
	// Redundancy must survive more than one failure: a fresh standby is
	// re-armed by the promotion itself.
	if sb := o.StandbyNFs("g"); len(sb) != 1 {
		t.Fatalf("standby not re-armed after promotion: %v", sb)
	}
	promoted := false
	for _, ev := range o.Journal().Events() {
		if ev.Type == telemetry.EventPromote && ev.Graph == "g" {
			promoted = true
		}
	}
	if !promoted {
		t.Error("no standby-promote event journaled")
	}
}

// TestStandbyRetiredOnUpdate: dropping the redundancy contract from the
// spec retires the standby attachment on the next Update.
func TestStandbyRetiredOnUpdate(t *testing.T) {
	o := newNode(t)
	if err := o.Deploy(natStandbyGraph("g")); err != nil {
		t.Fatal(err)
	}
	if sb := o.StandbyNFs("g"); len(sb) != 1 {
		t.Fatalf("StandbyNFs = %v, want one standby", sb)
	}
	plain := natGraph("g", 1)
	plain.NFs[0].Replicas = 0
	if err := o.Update(plain); err != nil {
		t.Fatal(err)
	}
	if sb := o.StandbyNFs("g"); len(sb) != 0 {
		t.Fatalf("standby survived losing its contract: %v", sb)
	}
}

// TestPromoteStandbyErrors: promotion demands both a deployed graph and
// an armed standby.
func TestPromoteStandbyErrors(t *testing.T) {
	o := newNode(t)
	if err := o.PromoteStandby("ghost", "nat"); err == nil {
		t.Error("promoting on an undeployed graph succeeded")
	}
	if err := o.Deploy(natGraph("g", 1)); err != nil {
		t.Fatal(err)
	}
	err := o.PromoteStandby("g", "nat")
	if err == nil || !strings.Contains(err.Error(), "no standby") {
		t.Errorf("promoting without a standby: err = %v, want 'no standby'", err)
	}
}

// TestExportImportNFState: the node-level state verbs move every NAT
// binding from one node onto another, and the importing node translates
// the replicated connections identically — the primitive the global
// tier's standby-node sync is built from.
func TestExportImportNFState(t *testing.T) {
	src := newNode(t)
	if err := src.Deploy(natGraph("g", 1)); err != nil {
		t.Fatal(err)
	}
	conns := establishNATConns(t, src, 16)
	states, err := src.ExportNFState("g", "nat")
	if err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 {
		t.Fatal("export produced no flow state despite live bindings")
	}
	dst := newNode(t)
	if err := dst.Deploy(natGraph("g", 1)); err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportNFState("g", "nat", states); err != nil {
		t.Fatal(err)
	}
	verifyNATConns(t, dst, conns, "on the importing node")

	if _, err := src.ExportNFState("ghost", "nat"); err == nil {
		t.Error("exporting from an undeployed graph succeeded")
	}
	if err := dst.ImportNFState("ghost", "nat", states); err == nil {
		t.Error("importing into an undeployed graph succeeded")
	}
	// An empty import is a no-op, not an error: the sync loop calls this
	// unconditionally.
	if err := dst.ImportNFState("g", "nat", nil); err != nil {
		t.Errorf("empty import errored: %v", err)
	}
}

// TestRepairNFFallbackPaths: without a standby, RepairNF degrades
// gracefully — scaled NFs re-home buckets onto surviving replicas, single
// instances restart in place (state since the last sync is lost, traffic
// resumes), and unknown graphs/NFs are explicit errors.
func TestRepairNFFallbackPaths(t *testing.T) {
	o := newNode(t)
	if err := o.RepairNF("ghost", "nat"); err == nil {
		t.Error("repairing an unknown graph succeeded")
	}

	// Restart-in-place: plain single-instance NAT, no redundancy.
	if err := o.Deploy(natGraph("plain", 1)); err != nil {
		t.Fatal(err)
	}
	if err := o.RepairNF("plain", "ghost"); err == nil {
		t.Error("repairing an unknown NF succeeded")
	}
	establishNATConns(t, o, 4)
	if err := o.KillNF("plain", "nat"); err != nil {
		t.Fatal(err)
	}
	if err := o.RepairNF("plain", "nat"); err != nil {
		t.Fatal(err)
	}
	// The restarted NF serves fresh traffic (old bindings are gone — that
	// is the documented cost of having no standby).
	if conns := establishNATConns(t, o, 4); len(conns) != 4 {
		t.Fatalf("NAT dead after restart-in-place: %d conns", len(conns))
	}

	// Scaled path: RepairNF routes through replica re-homing.
	if err := o.Deploy(natGraph("scaled", 2)); err != nil {
		t.Fatal(err)
	}
	if err := o.RepairNF("scaled", "nat"); err != nil {
		t.Fatalf("replica repair path: %v", err)
	}
}

// TestTotalRatePPS: the aggregate rate feed for the M/M/1 placement
// predictor is non-negative and present even on an idle node.
func TestTotalRatePPS(t *testing.T) {
	o := newNode(t)
	if rate := o.TotalRatePPS(); rate != 0 {
		t.Errorf("idle rate = %f", rate)
	}
	if err := o.Deploy(natGraph("g", 1)); err != nil {
		t.Fatal(err)
	}
	establishNATConns(t, o, 8)
	if rate := o.TotalRatePPS(); rate < 0 {
		t.Errorf("rate = %f", rate)
	}
}
