package netdev

import (
	"sync"
	"testing"
)

func TestVethDelivery(t *testing.T) {
	a, b := Veth("a", "b")
	if err := a.Send(Frame{Data: []byte("hello")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	f, ok := b.TryRecv()
	if !ok {
		t.Fatal("no frame queued on peer")
	}
	if string(f.Data) != "hello" {
		t.Errorf("data = %q", f.Data)
	}
	if f.Hops != 1 {
		t.Errorf("hops = %d, want 1", f.Hops)
	}
}

func TestHandlerSynchronousDelivery(t *testing.T) {
	a, b := Veth("a", "b")
	var got []byte
	b.SetHandler(func(f Frame) { got = f.Data })
	if err := a.Send(Frame{Data: []byte("sync")}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "sync" {
		t.Errorf("handler not invoked synchronously, got %q", got)
	}
}

func TestSendUnconnected(t *testing.T) {
	p := NewPort("lonely")
	if err := p.Send(Frame{Data: []byte("x")}); err != ErrNotConnected {
		t.Errorf("err = %v, want ErrNotConnected", err)
	}
	if p.Stats().TxDropped != 1 {
		t.Error("tx drop not counted")
	}
}

func TestPortDown(t *testing.T) {
	a, b := Veth("a", "b")
	a.SetUp(false)
	if err := a.Send(Frame{Data: []byte("x")}); err != ErrPortDown {
		t.Errorf("err = %v, want ErrPortDown", err)
	}
	a.SetUp(true)
	b.SetUp(false)
	if err := a.Send(Frame{Data: []byte("x")}); err != nil {
		t.Errorf("sender should not see rx-side drop, got %v", err)
	}
	if b.Stats().RxDropped != 1 {
		t.Error("rx drop not counted on down port")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	a := NewPort("a")
	b := NewPortQueueLen("b", 2)
	if err := Connect(a, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Send(Frame{Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.RxPackets != 2 || st.RxDropped != 3 {
		t.Errorf("stats = %+v, want 2 rx / 3 dropped", st)
	}
}

func TestHopLimit(t *testing.T) {
	a, _ := Veth("a", "b")
	f := Frame{Data: []byte("x"), Hops: MaxHops}
	if err := a.Send(f); err != ErrHopLimit {
		t.Errorf("err = %v, want ErrHopLimit", err)
	}
}

func TestForwardingLoopTerminates(t *testing.T) {
	// Two ports that blindly forward to each other must stop at MaxHops
	// rather than recurse forever.
	a, b := Veth("a", "b")
	c, d := Veth("c", "d")
	// b forwards to c, d forwards back to a's peer side: build a loop
	// a -> b -> (handler) c -> d -> (handler) a ...
	b.SetHandler(func(f Frame) { _ = c.Send(f) })
	d.SetHandler(func(f Frame) { _ = a.Send(f) })
	_ = a.Send(Frame{Data: []byte("loop")})
	// Reaching this line at all proves termination; check counters sane.
	if a.Stats().TxPackets == 0 {
		t.Error("no traffic recorded")
	}
}

func TestDisconnectAndReconnect(t *testing.T) {
	a, b := Veth("a", "b")
	Disconnect(a)
	if a.Peer() != nil || b.Peer() != nil {
		t.Fatal("disconnect did not clear both peers")
	}
	c := NewPort("c")
	if err := Connect(a, c); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	if err := a.Send(Frame{Data: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.TryRecv(); !ok {
		t.Error("frame not delivered to new peer")
	}
}

func TestConnectErrors(t *testing.T) {
	a, b := Veth("a", "b")
	c := NewPort("c")
	if err := Connect(a, c); err == nil {
		t.Error("connected an already-connected port")
	}
	if err := Connect(c, c); err == nil {
		t.Error("connected a port to itself")
	}
	if err := Connect(nil, b); err == nil {
		t.Error("connected nil port")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := Frame{Data: []byte{1, 2, 3}, Hops: 7}
	g := f.Clone()
	g.Data[0] = 9
	if f.Data[0] != 1 {
		t.Error("clone aliases original data")
	}
	if g.Hops != 7 {
		t.Error("clone lost hop count")
	}
}

func TestConcurrentSendersAreSafe(t *testing.T) {
	a, b := Veth("a", "b")
	var mu sync.Mutex
	count := 0
	b.SetHandler(func(Frame) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = a.Send(Frame{Data: []byte("z")})
			}
		}()
	}
	wg.Wait()
	if count != 800 {
		t.Errorf("delivered %d, want 800", count)
	}
	if a.Stats().TxPackets != 800 {
		t.Errorf("tx counter = %d", a.Stats().TxPackets)
	}
}

func TestSendBatchSynchronousDelivery(t *testing.T) {
	a, b := Veth("a", "b")
	var bursts [][]Frame
	b.SetBatchHandler(func(fs []Frame) {
		burst := make([]Frame, len(fs))
		copy(burst, fs)
		bursts = append(bursts, burst)
	})
	frames := make([]Frame, 10)
	for i := range frames {
		frames[i] = Frame{Data: []byte{byte(i)}}
	}
	n, err := a.SendBatch(frames)
	if err != nil || n != 10 {
		t.Fatalf("SendBatch = %d, %v", n, err)
	}
	if len(bursts) != 1 || len(bursts[0]) != 10 {
		t.Fatalf("batch handler saw %d bursts", len(bursts))
	}
	if bursts[0][3].Hops != 1 {
		t.Errorf("hops = %d, want 1", bursts[0][3].Hops)
	}
	st := a.Stats()
	if st.TxPackets != 10 || st.TxBytes != 10 {
		t.Errorf("tx stats = %+v", st)
	}
	if rst := b.Stats(); rst.RxPackets != 10 {
		t.Errorf("rx stats = %+v", rst)
	}
}

func TestSendBatchFallsBackToSingleHandler(t *testing.T) {
	a, b := Veth("a", "b")
	count := 0
	b.SetHandler(func(Frame) { count++ })
	if n, err := a.SendBatch(make([]Frame, 7)); err != nil || n != 7 {
		t.Fatalf("SendBatch = %d, %v", n, err)
	}
	if count != 7 {
		t.Errorf("handler ran %d times, want 7", count)
	}
}

func TestSendBatchQueueOverflow(t *testing.T) {
	a := NewPort("a")
	b := NewPortQueueLen("b", 3)
	if err := Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if n, err := a.SendBatch(make([]Frame, 8)); err != nil || n != 8 {
		t.Fatalf("SendBatch = %d, %v", n, err)
	}
	st := b.Stats()
	if st.RxPackets != 3 || st.RxDropped != 5 {
		t.Errorf("stats = %+v, want 3 rx / 5 dropped", st)
	}
}

func TestSendBatchErrors(t *testing.T) {
	p := NewPort("lonely")
	if _, err := p.SendBatch(make([]Frame, 2)); err != ErrNotConnected {
		t.Errorf("err = %v, want ErrNotConnected", err)
	}
	if p.Stats().TxDropped != 2 {
		t.Error("whole burst should count as tx-dropped")
	}
	a, _ := Veth("a", "b")
	a.SetUp(false)
	if _, err := a.SendBatch(make([]Frame, 2)); err != ErrPortDown {
		t.Errorf("err = %v, want ErrPortDown", err)
	}
	if n, err := a.SendBatch(nil); n != 0 || err != nil {
		t.Errorf("empty batch = %d, %v", n, err)
	}
}

func TestSendBatchHopLimitDropsOnlyViolators(t *testing.T) {
	a, b := Veth("a", "b")
	frames := []Frame{
		{Data: []byte("ok")},
		{Data: []byte("looped"), Hops: MaxHops},
		{Data: []byte("ok2")},
	}
	n, err := a.SendBatch(frames)
	if err != ErrHopLimit {
		t.Errorf("err = %v, want ErrHopLimit", err)
	}
	if n != 2 {
		t.Errorf("sent = %d, want 2", n)
	}
	if st := b.Stats(); st.RxPackets != 2 {
		t.Errorf("peer received %d", st.RxPackets)
	}
}

// TestStatsSurviveDisconnect pins the derived-RX accounting: RX counters are
// reconstructed from the peer's TX counters while a link is up and folded
// into a history when the cable is pulled, so pulling it must not lose them
// and a new link must accumulate on top.
func TestStatsSurviveDisconnect(t *testing.T) {
	a, b := Veth("a", "b")
	for i := 0; i < 4; i++ {
		if err := a.Send(Frame{Data: make([]byte, 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.Stats(); st.RxPackets != 4 || st.RxBytes != 40 {
		t.Fatalf("stats before disconnect = %+v, want rx 4 pkts/40 B", st)
	}
	Disconnect(a)
	if st := b.Stats(); st.RxPackets != 4 || st.RxBytes != 40 {
		t.Errorf("stats after disconnect = %+v, want rx 4 pkts/40 B preserved", st)
	}
	c := NewPort("c")
	if err := Connect(b, c); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(Frame{Data: make([]byte, 5)}); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.RxPackets != 5 || st.RxBytes != 45 {
		t.Errorf("stats after reconnect = %+v, want rx 5 pkts/45 B", st)
	}
}

func TestStatsString(t *testing.T) {
	a, b := Veth("a", "b")
	_ = a.Send(Frame{Data: make([]byte, 100)})
	_ = b // keep
	if s := a.Stats().String(); s == "" {
		t.Error("empty stats string")
	}
}
