// Package netdev provides the virtual network devices of the simulated
// dataplane: ports, veth pairs and bounded frame queues.
//
// A Port is one end of a point-to-point link. Transmitting on a port
// delivers the frame to the peer port. If the peer has a receive handler
// installed (the usual case for switches and network functions) delivery is
// synchronous in the sender's goroutine, modeling run-to-completion packet
// processing as in a kernel softirq. Otherwise the frame lands in the peer's
// bounded RX queue, and is dropped (and counted) when the queue is full, as a
// real NIC ring would.
//
// SendBatch delivers whole bursts run-to-completion through the peer's
// BatchHandler (degrading to per-frame delivery when none is installed),
// amortizing per-frame synchronization the way NIC RX ring polling does.
// Frame copies are backed by the shared buffer pool in package pkt.
package netdev

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/pkt"
)

// MaxHops bounds the number of port traversals of a single frame,
// protecting the simulator from forwarding loops.
const MaxHops = 64

// DefaultQueueLen is the RX ring size used when none is specified.
const DefaultQueueLen = 512

// Frame is a unit of transmission: raw packet bytes plus simulator metadata.
type Frame struct {
	// Data is the on-wire packet, starting at the Ethernet header.
	Data []byte
	// Hops counts port traversals, incremented on every Send.
	Hops int
}

// Clone returns a deep copy of the frame with the hop count preserved. The
// copy is backed by the shared frame-buffer pool (pkt.GetBuffer); a sink
// that fully consumes the clone may recycle it with pkt.PutBuffer.
func (f Frame) Clone() Frame {
	d := pkt.GetBuffer(len(f.Data))
	copy(d, f.Data)
	return Frame{Data: d, Hops: f.Hops}
}

// Stats holds per-port counters, snapshotted by the Stats method on Port.
type Stats struct {
	RxPackets, RxBytes   uint64
	TxPackets, TxBytes   uint64
	RxDropped, TxDropped uint64
}

func (s Stats) String() string {
	return fmt.Sprintf("rx %d pkts/%d B (%d drop), tx %d pkts/%d B (%d drop)",
		s.RxPackets, s.RxBytes, s.RxDropped, s.TxPackets, s.TxBytes, s.TxDropped)
}

// Handler consumes a received frame.
type Handler func(Frame)

// BatchHandler consumes a burst of received frames run-to-completion. The
// slice is only valid for the duration of the call; handlers must not retain
// it (retaining the individual frames' Data is subject to the same ownership
// rules as Handler).
type BatchHandler func([]Frame)

// TapDir tells a tap which way a frame crossed the port.
type TapDir int

// Tap directions.
const (
	TapTx TapDir = iota // frame left through this port
	TapRx               // frame arrived at this port
)

// Tap observes frames crossing a port, e.g. for pcap capture. Taps must not
// retain the frame's data slice.
type Tap func(dir TapDir, f Frame)

// portState is everything the per-frame path needs to know about a port's
// configuration, packed behind one atomic pointer so Send and deliver read it
// with a single load instead of one load per field. The struct is immutable;
// mutators copy-on-write it under linkMu.
type portState struct {
	peer    *Port
	handler Handler
	batch   BatchHandler
	tap     Tap
	up      bool
}

// Port is one endpoint of a virtual link.
//
// The per-frame path (Send/SendBatch/deliver) is lock-free: the whole port
// configuration is one atomic snapshot load, and the only counters it
// maintains are the sender-side TX pair — RX counters are derived. Because a
// link is a lossless cable, everything the peer transmitted either was
// delivered here or was dropped here, so RxPackets is reconstructed at
// snapshot time as the peer's TX delta minus the drops this port counted,
// and the receive fast path pays zero atomic read-modify-writes. The TX
// deltas of past links are folded into a history at Disconnect; the drop
// counters are only touched on the (cold) drop paths.
type Port struct {
	name  string
	state atomic.Pointer[portState]
	queue chan Frame

	txPackets, txBytes, txDropped atomic.Uint64
	rxDropped, rxDroppedBytes     atomic.Uint64

	// rxHist accumulates the frames received over links that have since been
	// disconnected; the base fields snapshot the peer's TX counters and this
	// port's drop counters at Connect time so the current link contributes
	// exactly its own delta. All four are written only under linkMu.
	rxHistPackets, rxHistBytes  uint64
	peerTxBasePkts, peerTxBaseB uint64
	rxDropBasePkts, rxDropBaseB uint64
}

// linkMu serializes every control-plane mutation of port state (cabling,
// admin state, handler and tap installation) across all ports: these are
// rare, and one global lock keeps the copy-on-write portState swaps trivially
// consistent while the per-frame path stays free of it.
var linkMu sync.Mutex

// ErrNotConnected is returned by Send on a port with no peer.
var ErrNotConnected = errors.New("netdev: port not connected")

// ErrPortDown is returned by Send on an administratively down port.
var ErrPortDown = errors.New("netdev: port down")

// ErrHopLimit is returned when a frame exceeds MaxHops traversals.
var ErrHopLimit = errors.New("netdev: hop limit exceeded (forwarding loop?)")

// NewPort creates an unconnected port with the given name and an RX queue of
// DefaultQueueLen frames. Ports start administratively up.
func NewPort(name string) *Port {
	return NewPortQueueLen(name, DefaultQueueLen)
}

// NewPortQueueLen creates an unconnected port with an RX queue of the given
// capacity (minimum 1).
func NewPortQueueLen(name string, queueLen int) *Port {
	if queueLen < 1 {
		queueLen = 1
	}
	p := &Port{name: name, queue: make(chan Frame, queueLen)}
	p.state.Store(&portState{up: true})
	return p
}

// mutate copy-on-write-updates the port's state snapshot under linkMu.
func (p *Port) mutate(fn func(*portState)) {
	linkMu.Lock()
	defer linkMu.Unlock()
	st := *p.state.Load()
	fn(&st)
	p.state.Store(&st)
}

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// QueueCap returns the capacity of the port's RX queue: the largest burst a
// handler-less port can absorb without tail-dropping.
func (p *Port) QueueCap() int { return cap(p.queue) }

// Peer returns the connected peer port, or nil.
func (p *Port) Peer() *Port { return p.state.Load().peer }

// SetUp sets the administrative state of the port.
func (p *Port) SetUp(up bool) { p.mutate(func(st *portState) { st.up = up }) }

// IsUp reports the administrative state of the port.
func (p *Port) IsUp() bool { return p.state.Load().up }

// SetHandler installs fn as the synchronous receive handler. Passing nil
// reverts the port to queued reception.
func (p *Port) SetHandler(fn Handler) {
	p.mutate(func(st *portState) { st.handler = fn })
}

// SetBatchHandler installs fn as the synchronous burst receive handler,
// preferred over the single-frame handler when whole bursts arrive via
// SendBatch. Passing nil removes it.
func (p *Port) SetBatchHandler(fn BatchHandler) {
	p.mutate(func(st *portState) { st.batch = fn })
}

// SetTap installs an observer for frames crossing the port in either
// direction; nil removes it.
func (p *Port) SetTap(t Tap) {
	p.mutate(func(st *portState) { st.tap = t })
}

// Recv dequeues one frame from the RX queue, blocking until one is
// available. It is only useful for ports without a handler.
func (p *Port) Recv() Frame { return <-p.queue }

// TryRecv dequeues one frame if immediately available.
func (p *Port) TryRecv() (Frame, bool) {
	select {
	case f := <-p.queue:
		return f, true
	default:
		return Frame{}, false
	}
}

// Send transmits a frame out of this port to its peer. Delivery is
// synchronous when the peer has a handler, queued otherwise. A full peer
// queue drops the frame and counts it on the receive side.
func (p *Port) Send(f Frame) error {
	st := p.state.Load()
	if st.tap != nil {
		st.tap(TapTx, f)
	}
	if !st.up {
		p.txDropped.Add(1)
		return ErrPortDown
	}
	if st.peer == nil {
		p.txDropped.Add(1)
		return ErrNotConnected
	}
	f.Hops++
	if f.Hops > MaxHops {
		p.txDropped.Add(1)
		return ErrHopLimit
	}
	p.txPackets.Add(1)
	p.txBytes.Add(uint64(len(f.Data)))
	return st.peer.deliver(f)
}

// SendBatch transmits a burst of frames out of this port as one unit,
// amortizing the per-frame synchronization of Send. Each frame's hop count
// is advanced in place; frames exceeding MaxHops are dropped from the burst.
// It returns how many frames were handed to the peer and the first error
// encountered (ErrPortDown and ErrNotConnected fail the whole burst).
func (p *Port) SendBatch(frames []Frame) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	st := p.state.Load()
	if st.tap != nil {
		for _, f := range frames {
			st.tap(TapTx, f)
		}
	}
	if !st.up {
		p.txDropped.Add(uint64(len(frames)))
		return 0, ErrPortDown
	}
	if st.peer == nil {
		p.txDropped.Add(uint64(len(frames)))
		return 0, ErrNotConnected
	}
	var err error
	sent := frames
	dropped := 0
	for i := range frames {
		frames[i].Hops++
		if frames[i].Hops > MaxHops {
			dropped++
			err = ErrHopLimit
		}
	}
	if dropped > 0 {
		p.txDropped.Add(uint64(dropped))
		kept := make([]Frame, 0, len(frames)-dropped)
		for _, f := range frames {
			if f.Hops <= MaxHops {
				kept = append(kept, f)
			}
		}
		sent = kept
	}
	if len(sent) > 0 {
		var bytes uint64
		for _, f := range sent {
			bytes += uint64(len(f.Data))
		}
		p.txPackets.Add(uint64(len(sent)))
		p.txBytes.Add(bytes)
		st.peer.deliverBatch(sent)
	}
	return len(sent), err
}

// deliver receives a frame on this port. The fast path (up, handler
// installed) performs one atomic state load and zero counter updates: the
// frame is implicitly counted by the sender's TX counters, from which this
// port's RX counters are derived at snapshot time.
func (p *Port) deliver(f Frame) error {
	st := p.state.Load()
	if st.tap != nil {
		st.tap(TapRx, f)
	}
	if !st.up {
		// A down receiver silently drops, as a cable into a down NIC
		// would; the sender is not told.
		p.rxDropped.Add(1)
		p.rxDroppedBytes.Add(uint64(len(f.Data)))
		return nil
	}
	if st.handler != nil {
		st.handler(f)
		return nil
	}
	if st.batch != nil {
		one := [1]Frame{f}
		st.batch(one[:])
		return nil
	}
	select {
	case p.queue <- f:
		return nil
	default:
		p.rxDropped.Add(1)
		p.rxDroppedBytes.Add(uint64(len(f.Data)))
		return nil // tail drop is not an error for the sender
	}
}

// deliverBatch receives a burst on this port. A batch handler gets the whole
// burst in one call; otherwise the burst degrades to per-frame delivery.
func (p *Port) deliverBatch(frames []Frame) {
	st := p.state.Load()
	if st.tap != nil {
		for _, f := range frames {
			st.tap(TapRx, f)
		}
	}
	if !st.up {
		var bytes uint64
		for _, f := range frames {
			bytes += uint64(len(f.Data))
		}
		p.rxDropped.Add(uint64(len(frames)))
		p.rxDroppedBytes.Add(bytes)
		return
	}
	if st.batch != nil {
		st.batch(frames)
		return
	}
	if st.handler != nil {
		for _, f := range frames {
			st.handler(f)
		}
		return
	}
	for _, f := range frames {
		select {
		case p.queue <- f:
		default:
			p.rxDropped.Add(1)
			p.rxDroppedBytes.Add(uint64(len(f.Data)))
		}
	}
}

// rxDeltaLocked returns the packets and bytes received over the current
// link: the peer's TX delta since Connect minus the drops counted here since
// Connect. Caller holds linkMu. The drop counters are read before the peer's
// TX counters so a concurrent burst can only make the result momentarily
// under-count drops (never go negative): every drop is preceded by the
// corresponding TX increment.
func (p *Port) rxDeltaLocked(peer *Port) (pkts, bytes uint64) {
	dropP := p.rxDropped.Load()
	dropB := p.rxDroppedBytes.Load()
	pkts = peer.txPackets.Load() - p.peerTxBasePkts - (dropP - p.rxDropBasePkts)
	bytes = peer.txBytes.Load() - p.peerTxBaseB - (dropB - p.rxDropBaseB)
	return pkts, bytes
}

// snapBasesLocked records the starting point of a new link: the peer's
// current TX counters and this port's current drop counters. Caller holds
// linkMu.
func (p *Port) snapBasesLocked(peer *Port) {
	p.peerTxBasePkts = peer.txPackets.Load()
	p.peerTxBaseB = peer.txBytes.Load()
	p.rxDropBasePkts = p.rxDropped.Load()
	p.rxDropBaseB = p.rxDroppedBytes.Load()
}

// foldRxLocked folds the current link's RX delta into the history, in
// preparation for disconnecting from peer. Caller holds linkMu.
func (p *Port) foldRxLocked(peer *Port) {
	pkts, bytes := p.rxDeltaLocked(peer)
	p.rxHistPackets += pkts
	p.rxHistBytes += bytes
}

// Stats returns a snapshot of the port counters. RX packet and byte counts
// are derived from the peer's TX counters (see Port), so the snapshot takes
// the control-plane link lock; concurrent traffic keeps flowing.
func (p *Port) Stats() Stats {
	linkMu.Lock()
	defer linkMu.Unlock()
	s := Stats{
		RxPackets: p.rxHistPackets,
		RxBytes:   p.rxHistBytes,
		RxDropped: p.rxDropped.Load(),
		TxPackets: p.txPackets.Load(),
		TxBytes:   p.txBytes.Load(),
		TxDropped: p.txDropped.Load(),
	}
	if peer := p.state.Load().peer; peer != nil {
		pkts, bytes := p.rxDeltaLocked(peer)
		s.RxPackets += pkts
		s.RxBytes += bytes
	}
	return s
}

// Connect links two ports as a point-to-point cable. Either port may be
// reconnected later with Disconnect + Connect.
func Connect(a, b *Port) error {
	if a == nil || b == nil {
		return errors.New("netdev: cannot connect nil port")
	}
	if a == b {
		return errors.New("netdev: cannot connect a port to itself")
	}
	linkMu.Lock()
	defer linkMu.Unlock()
	sa, sb := *a.state.Load(), *b.state.Load()
	if sa.peer != nil || sb.peer != nil {
		return fmt.Errorf("netdev: port already connected (%s.peer=%v, %s.peer=%v)",
			a.name, sa.peer != nil, b.name, sb.peer != nil)
	}
	a.snapBasesLocked(b)
	b.snapBasesLocked(a)
	sa.peer, sb.peer = b, a
	a.state.Store(&sa)
	b.state.Store(&sb)
	return nil
}

// Disconnect removes the link between p and its peer, if any. The RX counts
// accumulated over the link are folded into each port's history so Stats
// keeps reporting them after the cable is pulled.
func Disconnect(p *Port) {
	if p == nil {
		return
	}
	linkMu.Lock()
	defer linkMu.Unlock()
	st := *p.state.Load()
	peer := st.peer
	if peer == nil {
		return
	}
	p.foldRxLocked(peer)
	st.peer = nil
	p.state.Store(&st)
	if pst := *peer.state.Load(); pst.peer == p {
		peer.foldRxLocked(p)
		pst.peer = nil
		peer.state.Store(&pst)
	}
}

// Veth creates a connected port pair, analogous to a Linux veth device pair.
func Veth(nameA, nameB string) (*Port, *Port) {
	a, b := NewPort(nameA), NewPort(nameB)
	if err := Connect(a, b); err != nil {
		panic(err) // impossible: both freshly created
	}
	return a, b
}
