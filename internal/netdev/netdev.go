// Package netdev provides the virtual network devices of the simulated
// dataplane: ports, veth pairs and bounded frame queues.
//
// A Port is one end of a point-to-point link. Transmitting on a port
// delivers the frame to the peer port. If the peer has a receive handler
// installed (the usual case for switches and network functions) delivery is
// synchronous in the sender's goroutine, modeling run-to-completion packet
// processing as in a kernel softirq. Otherwise the frame lands in the peer's
// bounded RX queue, and is dropped (and counted) when the queue is full, as a
// real NIC ring would.
//
// SendBatch delivers whole bursts run-to-completion through the peer's
// BatchHandler (degrading to per-frame delivery when none is installed),
// amortizing per-frame synchronization the way NIC RX ring polling does.
// Frame copies are backed by the shared buffer pool in package pkt.
package netdev

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/pkt"
)

// MaxHops bounds the number of port traversals of a single frame,
// protecting the simulator from forwarding loops.
const MaxHops = 64

// DefaultQueueLen is the RX ring size used when none is specified.
const DefaultQueueLen = 512

// Frame is a unit of transmission: raw packet bytes plus simulator metadata.
type Frame struct {
	// Data is the on-wire packet, starting at the Ethernet header.
	Data []byte
	// Hops counts port traversals, incremented on every Send.
	Hops int
}

// Clone returns a deep copy of the frame with the hop count preserved. The
// copy is backed by the shared frame-buffer pool (pkt.GetBuffer); a sink
// that fully consumes the clone may recycle it with pkt.PutBuffer.
func (f Frame) Clone() Frame {
	d := pkt.GetBuffer(len(f.Data))
	copy(d, f.Data)
	return Frame{Data: d, Hops: f.Hops}
}

// Stats holds per-port counters. All fields are read with atomic snapshots
// via the Stats method on Port.
type Stats struct {
	RxPackets, RxBytes   uint64
	TxPackets, TxBytes   uint64
	RxDropped, TxDropped uint64
}

func (s Stats) String() string {
	return fmt.Sprintf("rx %d pkts/%d B (%d drop), tx %d pkts/%d B (%d drop)",
		s.RxPackets, s.RxBytes, s.RxDropped, s.TxPackets, s.TxBytes, s.TxDropped)
}

// Handler consumes a received frame.
type Handler func(Frame)

// BatchHandler consumes a burst of received frames run-to-completion. The
// slice is only valid for the duration of the call; handlers must not retain
// it (retaining the individual frames' Data is subject to the same ownership
// rules as Handler).
type BatchHandler func([]Frame)

// TapDir tells a tap which way a frame crossed the port.
type TapDir int

// Tap directions.
const (
	TapTx TapDir = iota // frame left through this port
	TapRx               // frame arrived at this port
)

// Tap observes frames crossing a port, e.g. for pcap capture. Taps must not
// retain the frame's data slice.
type Tap func(dir TapDir, f Frame)

// Port is one endpoint of a virtual link.
type Port struct {
	name string

	mu      sync.RWMutex
	peer    *Port
	handler Handler
	batch   BatchHandler
	tap     Tap
	queue   chan Frame
	up      bool

	rxPackets, rxBytes, rxDropped atomic.Uint64
	txPackets, txBytes, txDropped atomic.Uint64
}

// ErrNotConnected is returned by Send on a port with no peer.
var ErrNotConnected = errors.New("netdev: port not connected")

// ErrPortDown is returned by Send on an administratively down port.
var ErrPortDown = errors.New("netdev: port down")

// ErrHopLimit is returned when a frame exceeds MaxHops traversals.
var ErrHopLimit = errors.New("netdev: hop limit exceeded (forwarding loop?)")

// NewPort creates an unconnected port with the given name and an RX queue of
// DefaultQueueLen frames. Ports start administratively up.
func NewPort(name string) *Port {
	return NewPortQueueLen(name, DefaultQueueLen)
}

// NewPortQueueLen creates an unconnected port with an RX queue of the given
// capacity (minimum 1).
func NewPortQueueLen(name string, queueLen int) *Port {
	if queueLen < 1 {
		queueLen = 1
	}
	return &Port{name: name, queue: make(chan Frame, queueLen), up: true}
}

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// QueueCap returns the capacity of the port's RX queue: the largest burst a
// handler-less port can absorb without tail-dropping.
func (p *Port) QueueCap() int { return cap(p.queue) }

// Peer returns the connected peer port, or nil.
func (p *Port) Peer() *Port {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.peer
}

// SetUp sets the administrative state of the port.
func (p *Port) SetUp(up bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.up = up
}

// IsUp reports the administrative state of the port.
func (p *Port) IsUp() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.up
}

// SetHandler installs fn as the synchronous receive handler. Passing nil
// reverts the port to queued reception.
func (p *Port) SetHandler(fn Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handler = fn
}

// SetBatchHandler installs fn as the synchronous burst receive handler,
// preferred over the single-frame handler when whole bursts arrive via
// SendBatch. Passing nil removes it.
func (p *Port) SetBatchHandler(fn BatchHandler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.batch = fn
}

// SetTap installs an observer for frames crossing the port in either
// direction; nil removes it.
func (p *Port) SetTap(t Tap) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tap = t
}

// Recv dequeues one frame from the RX queue, blocking until one is
// available. It is only useful for ports without a handler.
func (p *Port) Recv() Frame { return <-p.queue }

// TryRecv dequeues one frame if immediately available.
func (p *Port) TryRecv() (Frame, bool) {
	select {
	case f := <-p.queue:
		return f, true
	default:
		return Frame{}, false
	}
}

// Send transmits a frame out of this port to its peer. Delivery is
// synchronous when the peer has a handler, queued otherwise. A full peer
// queue drops the frame and counts it on both sides.
func (p *Port) Send(f Frame) error {
	p.mu.RLock()
	peer, up, tap := p.peer, p.up, p.tap
	p.mu.RUnlock()
	if tap != nil {
		tap(TapTx, f)
	}
	if !up {
		p.txDropped.Add(1)
		return ErrPortDown
	}
	if peer == nil {
		p.txDropped.Add(1)
		return ErrNotConnected
	}
	f.Hops++
	if f.Hops > MaxHops {
		p.txDropped.Add(1)
		return ErrHopLimit
	}
	p.txPackets.Add(1)
	p.txBytes.Add(uint64(len(f.Data)))
	return peer.deliver(f)
}

// SendBatch transmits a burst of frames out of this port as one unit,
// amortizing the per-frame synchronization of Send. Each frame's hop count
// is advanced in place; frames exceeding MaxHops are dropped from the burst.
// It returns how many frames were handed to the peer and the first error
// encountered (ErrPortDown and ErrNotConnected fail the whole burst).
func (p *Port) SendBatch(frames []Frame) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	p.mu.RLock()
	peer, up, tap := p.peer, p.up, p.tap
	p.mu.RUnlock()
	if tap != nil {
		for _, f := range frames {
			tap(TapTx, f)
		}
	}
	if !up {
		p.txDropped.Add(uint64(len(frames)))
		return 0, ErrPortDown
	}
	if peer == nil {
		p.txDropped.Add(uint64(len(frames)))
		return 0, ErrNotConnected
	}
	var err error
	sent := frames
	dropped := 0
	for i := range frames {
		frames[i].Hops++
		if frames[i].Hops > MaxHops {
			dropped++
			err = ErrHopLimit
		}
	}
	if dropped > 0 {
		p.txDropped.Add(uint64(dropped))
		kept := make([]Frame, 0, len(frames)-dropped)
		for _, f := range frames {
			if f.Hops <= MaxHops {
				kept = append(kept, f)
			}
		}
		sent = kept
	}
	if len(sent) > 0 {
		var bytes uint64
		for _, f := range sent {
			bytes += uint64(len(f.Data))
		}
		p.txPackets.Add(uint64(len(sent)))
		p.txBytes.Add(bytes)
		peer.deliverBatch(sent)
	}
	return len(sent), err
}

// deliver receives a frame on this port.
func (p *Port) deliver(f Frame) error {
	p.mu.RLock()
	handler, batch, up, tap := p.handler, p.batch, p.up, p.tap
	p.mu.RUnlock()
	if tap != nil {
		tap(TapRx, f)
	}
	if !up {
		// A down receiver silently drops, as a cable into a down NIC
		// would; the sender is not told.
		p.rxDropped.Add(1)
		return nil
	}
	if handler != nil {
		p.rxPackets.Add(1)
		p.rxBytes.Add(uint64(len(f.Data)))
		handler(f)
		return nil
	}
	if batch != nil {
		p.rxPackets.Add(1)
		p.rxBytes.Add(uint64(len(f.Data)))
		one := [1]Frame{f}
		batch(one[:])
		return nil
	}
	select {
	case p.queue <- f:
		p.rxPackets.Add(1)
		p.rxBytes.Add(uint64(len(f.Data)))
		return nil
	default:
		p.rxDropped.Add(1)
		return nil // tail drop is not an error for the sender
	}
}

// deliverBatch receives a burst on this port. A batch handler gets the whole
// burst in one call; otherwise the burst degrades to per-frame delivery.
func (p *Port) deliverBatch(frames []Frame) {
	p.mu.RLock()
	handler, batch, up, tap := p.handler, p.batch, p.up, p.tap
	p.mu.RUnlock()
	if tap != nil {
		for _, f := range frames {
			tap(TapRx, f)
		}
	}
	if !up {
		p.rxDropped.Add(uint64(len(frames)))
		return
	}
	if batch != nil {
		var bytes uint64
		for _, f := range frames {
			bytes += uint64(len(f.Data))
		}
		p.rxPackets.Add(uint64(len(frames)))
		p.rxBytes.Add(bytes)
		batch(frames)
		return
	}
	if handler != nil {
		for _, f := range frames {
			p.rxPackets.Add(1)
			p.rxBytes.Add(uint64(len(f.Data)))
			handler(f)
		}
		return
	}
	for _, f := range frames {
		select {
		case p.queue <- f:
			p.rxPackets.Add(1)
			p.rxBytes.Add(uint64(len(f.Data)))
		default:
			p.rxDropped.Add(1)
		}
	}
}

// Stats returns a snapshot of the port counters.
func (p *Port) Stats() Stats {
	return Stats{
		RxPackets: p.rxPackets.Load(),
		RxBytes:   p.rxBytes.Load(),
		RxDropped: p.rxDropped.Load(),
		TxPackets: p.txPackets.Load(),
		TxBytes:   p.txBytes.Load(),
		TxDropped: p.txDropped.Load(),
	}
}

// Connect links two ports as a point-to-point cable. Either port may be
// reconnected later with Disconnect + Connect.
func Connect(a, b *Port) error {
	if a == nil || b == nil {
		return errors.New("netdev: cannot connect nil port")
	}
	if a == b {
		return errors.New("netdev: cannot connect a port to itself")
	}
	// Lock in address order to avoid deadlock with concurrent Connects.
	first, second := a, b
	if fmt.Sprintf("%p", a) > fmt.Sprintf("%p", b) {
		first, second = b, a
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()
	if a.peer != nil || b.peer != nil {
		return fmt.Errorf("netdev: port already connected (%s.peer=%v, %s.peer=%v)",
			a.name, a.peer != nil, b.name, b.peer != nil)
	}
	a.peer, b.peer = b, a
	return nil
}

// Disconnect removes the link between p and its peer, if any.
func Disconnect(p *Port) {
	if p == nil {
		return
	}
	p.mu.Lock()
	peer := p.peer
	p.peer = nil
	p.mu.Unlock()
	if peer != nil {
		peer.mu.Lock()
		if peer.peer == p {
			peer.peer = nil
		}
		peer.mu.Unlock()
	}
}

// Veth creates a connected port pair, analogous to a Linux veth device pair.
func Veth(nameA, nameB string) (*Port, *Port) {
	a, b := NewPort(nameA), NewPort(nameB)
	if err := Connect(a, b); err != nil {
		panic(err) // impossible: both freshly created
	}
	return a, b
}
