package netdev

import (
	"sync/atomic"
)

// Ring is a bounded lock-free queue in the style of Dmitry Vyukov's bounded
// MPMC queue: every cell carries a sequence number that encodes whether it is
// free for the producer or holds a value for the consumer, so producers and
// the consumer never touch a shared lock. The datapath uses one Ring per
// switch worker as its RX feed: any port goroutine may produce (the RSS
// steering hash decides which ring), exactly one worker consumes, giving the
// per-worker run-to-completion model its single-consumer ordering guarantee.
//
// Capacity is rounded up to a power of two. A full ring rejects the push
// (TryPush returns false); the caller decides between tail-drop (NIC
// semantics) and backpressure. A Ring must not be copied after first use.
type Ring[T any] struct {
	mask  uint64
	cells []ringCell[T]

	_   [64]byte // keep producer and consumer cursors on separate cache lines
	enq atomic.Uint64
	_   [64]byte
	deq atomic.Uint64
}

type ringCell[T any] struct {
	seq atomic.Uint64
	val T
}

// NewRing creates a ring with at least the given capacity (minimum 2,
// rounded up to a power of two).
func NewRing[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring[T]{mask: uint64(n - 1), cells: make([]ringCell[T], n)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.cells) }

// Len returns the approximate number of queued items; exact only when
// producers and consumer are quiescent.
func (r *Ring[T]) Len() int {
	n := int64(r.enq.Load()) - int64(r.deq.Load())
	if n < 0 {
		return 0
	}
	if n > int64(len(r.cells)) {
		return len(r.cells)
	}
	return int(n)
}

// TryPush enqueues v, returning false when the ring is full. Safe for any
// number of concurrent producers.
func (r *Ring[T]) TryPush(v T) bool {
	pos := r.enq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		diff := int64(cell.seq.Load()) - int64(pos)
		switch {
		case diff == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				cell.val = v
				cell.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case diff < 0:
			// The cell still holds an unconsumed value from one lap ago:
			// the ring is full.
			return false
		default:
			pos = r.enq.Load()
		}
	}
}

// TryPop dequeues one item, returning false when the ring is empty. Safe for
// concurrent consumers, though the datapath runs exactly one per ring.
func (r *Ring[T]) TryPop() (T, bool) {
	var zero T
	pos := r.deq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		diff := int64(cell.seq.Load()) - int64(pos+1)
		switch {
		case diff == 0:
			if r.deq.CompareAndSwap(pos, pos+1) {
				v := cell.val
				cell.val = zero // drop the reference for the GC
				cell.seq.Store(pos + r.mask + 1)
				return v, true
			}
			pos = r.deq.Load()
		case diff < 0:
			return zero, false
		default:
			pos = r.deq.Load()
		}
	}
}

// PopBatch dequeues up to len(dst) items into dst and returns how many were
// taken, amortizing the per-item synchronization the way NIC RX ring polling
// does.
func (r *Ring[T]) PopBatch(dst []T) int {
	n := 0
	for n < len(dst) {
		v, ok := r.TryPop()
		if !ok {
			break
		}
		dst[n] = v
		n++
	}
	return n
}
