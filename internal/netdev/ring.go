package netdev

import (
	"sync/atomic"
)

// Ring is a bounded lock-free queue in the style of Dmitry Vyukov's bounded
// MPMC queue: every cell carries a sequence number that encodes whether it is
// free for the producer or holds a value for the consumer, so producers and
// the consumer never touch a shared lock. The datapath uses one Ring per
// switch worker as its RX feed: any port goroutine may produce (the RSS
// steering hash decides which ring), exactly one worker consumes, giving the
// per-worker run-to-completion model its single-consumer ordering guarantee.
//
// Capacity is rounded up to a power of two. A full ring rejects the push
// (TryPush returns false); the caller decides between tail-drop (NIC
// semantics) and backpressure. A Ring must not be copied after first use.
type Ring[T any] struct {
	mask  uint64
	cells []ringCell[T]

	_   [64]byte // keep producer and consumer cursors on separate cache lines
	enq atomic.Uint64
	_   [64]byte
	deq atomic.Uint64
}

type ringCell[T any] struct {
	seq atomic.Uint64
	val T
}

// NewRing creates a ring with at least the given capacity (minimum 2,
// rounded up to a power of two).
func NewRing[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring[T]{mask: uint64(n - 1), cells: make([]ringCell[T], n)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.cells) }

// Len returns the approximate number of queued items; exact only when
// producers and consumer are quiescent.
func (r *Ring[T]) Len() int {
	n := int64(r.enq.Load()) - int64(r.deq.Load())
	if n < 0 {
		return 0
	}
	if n > int64(len(r.cells)) {
		return len(r.cells)
	}
	return int(n)
}

// TryPush enqueues v, returning false when the ring is full. Safe for any
// number of concurrent producers.
func (r *Ring[T]) TryPush(v T) bool {
	pos := r.enq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		diff := int64(cell.seq.Load()) - int64(pos)
		switch {
		case diff == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				cell.val = v
				cell.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case diff < 0:
			// The cell still holds an unconsumed value from one lap ago:
			// the ring is full.
			return false
		default:
			pos = r.enq.Load()
		}
	}
}

// TryPop dequeues one item, returning false when the ring is empty. Safe for
// concurrent consumers, though the datapath runs exactly one per ring.
func (r *Ring[T]) TryPop() (T, bool) {
	var zero T
	pos := r.deq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		diff := int64(cell.seq.Load()) - int64(pos+1)
		switch {
		case diff == 0:
			if r.deq.CompareAndSwap(pos, pos+1) {
				v := cell.val
				cell.val = zero // drop the reference for the GC
				cell.seq.Store(pos + r.mask + 1)
				return v, true
			}
			pos = r.deq.Load()
		case diff < 0:
			return zero, false
		default:
			pos = r.deq.Load()
		}
	}
}

// TryPushBatch enqueues as many items of vs as fit, in order, and returns
// how many were taken (0 when the ring is full). The whole prefix is
// reserved with a single CAS on the enqueue cursor — one synchronization
// point per burst instead of one per frame — so a burst from one producer
// occupies consecutive cells and is dequeued in exactly the order it was
// pushed. Safe for any number of concurrent producers; concurrent bursts
// interleave at burst granularity, never within one.
func (r *Ring[T]) TryPushBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	for {
		pos := r.enq.Load()
		// Count how many consecutive cells starting at pos are free for
		// this lap. A cell observed free here can only be claimed by the
		// producer that wins the cursor CAS below, so the count cannot go
		// stale between the scan and a successful reservation.
		n := 0
		for n < len(vs) {
			cell := &r.cells[(pos+uint64(n))&r.mask]
			if int64(cell.seq.Load()) != int64(pos+uint64(n)) {
				break
			}
			n++
		}
		if n == 0 {
			cell := &r.cells[pos&r.mask]
			if int64(cell.seq.Load())-int64(pos) < 0 {
				// Still holding last lap's value: full.
				return 0
			}
			// Another producer advanced the cursor under us; reload.
			continue
		}
		if r.enq.CompareAndSwap(pos, pos+uint64(n)) {
			for i := 0; i < n; i++ {
				cell := &r.cells[(pos+uint64(i))&r.mask]
				cell.val = vs[i]
				cell.seq.Store(pos + uint64(i) + 1)
			}
			return n
		}
	}
}

// TryPopBatch dequeues up to len(dst) items into dst, in FIFO order, and
// returns how many were taken (0 when the ring is empty). Like TryPushBatch
// it reserves the whole run of ready cells with a single CAS on the dequeue
// cursor, amortizing per-item synchronization the way NIC RX ring polling
// does. Safe for concurrent consumers, though the datapath runs exactly one
// per ring.
func (r *Ring[T]) TryPopBatch(dst []T) int {
	var zero T
	if len(dst) == 0 {
		return 0
	}
	for {
		pos := r.deq.Load()
		n := 0
		for n < len(dst) {
			cell := &r.cells[(pos+uint64(n))&r.mask]
			if int64(cell.seq.Load()) != int64(pos+uint64(n)+1) {
				break
			}
			n++
		}
		if n == 0 {
			cell := &r.cells[pos&r.mask]
			if int64(cell.seq.Load())-int64(pos+1) < 0 {
				return 0
			}
			continue
		}
		if r.deq.CompareAndSwap(pos, pos+uint64(n)) {
			for i := 0; i < n; i++ {
				cell := &r.cells[(pos+uint64(i))&r.mask]
				dst[i] = cell.val
				cell.val = zero // drop the reference for the GC
				cell.seq.Store(pos + uint64(i) + r.mask + 1)
			}
			return n
		}
	}
}

// PopBatch dequeues up to len(dst) items into dst and returns how many were
// taken. It is TryPopBatch under its historical name.
func (r *Ring[T]) PopBatch(dst []T) int { return r.TryPopBatch(dst) }
