package netdev

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1024, 1024}, {1025, 2048},
	} {
		if got := NewRing[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](8)
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := 1; i <= 5; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Len() != 5 {
		t.Errorf("Len = %d, want 5", r.Len())
	}
	for i := 1; i <= 5; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = %d, %v; want %d", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("ring not empty after draining")
	}
}

func TestRingFullRejectsPush(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < r.Cap(); i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push into full ring succeeded")
	}
	if v, ok := r.TryPop(); !ok || v != 0 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
	if !r.TryPush(99) {
		t.Fatal("push failed after freeing a slot")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing[int](4)
	next := 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			if !r.TryPush(round*3 + i) {
				t.Fatalf("push failed at round %d", round)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.TryPop()
			if !ok || v != next {
				t.Fatalf("pop = %d, %v; want %d", v, ok, next)
			}
			next++
		}
	}
}

func TestRingPopBatch(t *testing.T) {
	r := NewRing[int](16)
	for i := 0; i < 10; i++ {
		r.TryPush(i)
	}
	buf := make([]int, 4)
	for _, want := range []int{4, 4, 2, 0} {
		if got := r.PopBatch(buf); got != want {
			t.Fatalf("PopBatch = %d, want %d", got, want)
		}
	}
}

func TestRingPushBatchPartial(t *testing.T) {
	r := NewRing[int](4)
	if got := r.TryPushBatch(nil); got != 0 {
		t.Fatalf("TryPushBatch(nil) = %d, want 0", got)
	}
	if got := r.TryPushBatch([]int{0, 1, 2, 3, 4, 5}); got != 4 {
		t.Fatalf("TryPushBatch over capacity = %d, want 4", got)
	}
	if got := r.TryPushBatch([]int{9}); got != 0 {
		t.Fatalf("TryPushBatch into full ring = %d, want 0", got)
	}
	for i := 0; i < 4; i++ {
		if v, ok := r.TryPop(); !ok || v != i {
			t.Fatalf("pop = %d, %v; want %d", v, ok, i)
		}
	}
}

func TestRingBatchWraparound(t *testing.T) {
	// Mixed batch sizes over a tiny ring force the batch paths across the
	// wrap boundary on every lap, with partial acceptance when a batch
	// straddles the remaining space.
	r := NewRing[int](4)
	in, out := 0, 0
	buf := make([]int, 3)
	vals := make([]int, 3)
	for round := 0; round < 1000; round++ {
		n := 1 + round%3
		for i := 0; i < n; i++ {
			vals[i] = in + i
		}
		pushed := r.TryPushBatch(vals[:n])
		in += pushed
		for pushed < n {
			// Drain one and retry the remainder so partial pushes are
			// exercised, not just avoided.
			v, ok := r.TryPop()
			if !ok || v != out {
				t.Fatalf("pop = %d, %v; want %d", v, ok, out)
			}
			out++
			m := r.TryPushBatch(vals[pushed:n])
			in += m
			pushed += m
		}
		for out < in-1 {
			k := r.TryPopBatch(buf)
			if k == 0 {
				t.Fatalf("TryPopBatch = 0 with %d queued", in-out)
			}
			for i := 0; i < k; i++ {
				if buf[i] != out {
					t.Fatalf("TryPopBatch[%d] = %d, want %d", i, buf[i], out)
				}
				out++
			}
		}
	}
}

func TestRingPopBatchEmpty(t *testing.T) {
	r := NewRing[int](8)
	if got := r.TryPopBatch(make([]int, 4)); got != 0 {
		t.Fatalf("TryPopBatch on empty ring = %d, want 0", got)
	}
	if got := r.TryPopBatch(nil); got != 0 {
		t.Fatalf("TryPopBatch(nil) = %d, want 0", got)
	}
}

// TestRingConcurrentBatchProducers is the batched MPMC exactly-once check:
// several producers pushing bursts, several consumers popping bursts, every
// value seen exactly once and each producer's own sequence in FIFO order.
func TestRingConcurrentBatchProducers(t *testing.T) {
	const producers, consumers, perProducer = 4, 2, 10000
	r := NewRing[[2]int](64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([][2]int, 0, 7)
			i := 0
			for i < perProducer {
				batch = batch[:0]
				for k := 0; k < 1+i%7 && i < perProducer; k++ {
					batch = append(batch, [2]int{p, i})
					i++
				}
				sent := 0
				for sent < len(batch) {
					n := r.TryPushBatch(batch[sent:])
					if n == 0 {
						runtime.Gosched()
						continue
					}
					sent += n
				}
			}
		}(p)
	}
	prodDone := make(chan struct{})
	go func() { wg.Wait(); close(prodDone) }()

	seen := make([]atomic.Bool, producers*perProducer)
	var consumed atomic.Int64
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			buf := make([][2]int, 11)
			lastPerProducer := make([]int, producers)
			for i := range lastPerProducer {
				lastPerProducer[i] = -1
			}
			for {
				n := r.TryPopBatch(buf)
				if n == 0 {
					select {
					case <-prodDone:
						if n = r.TryPopBatch(buf); n == 0 {
							return
						}
					default:
						runtime.Gosched()
						continue
					}
				}
				for i := 0; i < n; i++ {
					p, v := buf[i][0], buf[i][1]
					if seen[p*perProducer+v].Swap(true) {
						t.Errorf("value %d/%d consumed twice", p, v)
						return
					}
					// A single consumer must observe each producer's values
					// in increasing order: batch reservation keeps bursts
					// contiguous and the cursor is strictly FIFO.
					if v <= lastPerProducer[p] {
						t.Errorf("producer %d: value %d after %d (reordered)", p, v, lastPerProducer[p])
						return
					}
					lastPerProducer[p] = v
					consumed.Add(1)
				}
			}
		}()
	}
	cwg.Wait()
	if got := consumed.Load(); got != producers*perProducer {
		t.Fatalf("consumed %d values, want %d", got, producers*perProducer)
	}
}

// TestRingConcurrentProducers drives the MPMC path the datapath uses: many
// producers, one consumer, every value delivered exactly once.
func TestRingConcurrentProducers(t *testing.T) {
	const producers, perProducer = 4, 10000
	r := NewRing[int](256)
	seen := make([]atomic.Bool, producers*perProducer)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				for !r.TryPush(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	got := 0
	for got < producers*perProducer {
		v, ok := r.TryPop()
		if !ok {
			select {
			case <-done:
				// Every push has completed; an empty ring now means loss.
				if v, ok = r.TryPop(); !ok {
					t.Fatalf("producers done, ring empty, only %d/%d consumed", got, producers*perProducer)
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		if seen[v].Swap(true) {
			t.Fatalf("value %d consumed twice", v)
		}
		got++
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("ring not empty after consuming everything")
	}
}
