package netdev

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1024, 1024}, {1025, 2048},
	} {
		if got := NewRing[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](8)
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := 1; i <= 5; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Len() != 5 {
		t.Errorf("Len = %d, want 5", r.Len())
	}
	for i := 1; i <= 5; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = %d, %v; want %d", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("ring not empty after draining")
	}
}

func TestRingFullRejectsPush(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < r.Cap(); i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push into full ring succeeded")
	}
	if v, ok := r.TryPop(); !ok || v != 0 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
	if !r.TryPush(99) {
		t.Fatal("push failed after freeing a slot")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing[int](4)
	next := 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			if !r.TryPush(round*3 + i) {
				t.Fatalf("push failed at round %d", round)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.TryPop()
			if !ok || v != next {
				t.Fatalf("pop = %d, %v; want %d", v, ok, next)
			}
			next++
		}
	}
}

func TestRingPopBatch(t *testing.T) {
	r := NewRing[int](16)
	for i := 0; i < 10; i++ {
		r.TryPush(i)
	}
	buf := make([]int, 4)
	for _, want := range []int{4, 4, 2, 0} {
		if got := r.PopBatch(buf); got != want {
			t.Fatalf("PopBatch = %d, want %d", got, want)
		}
	}
}

// TestRingConcurrentProducers drives the MPMC path the datapath uses: many
// producers, one consumer, every value delivered exactly once.
func TestRingConcurrentProducers(t *testing.T) {
	const producers, perProducer = 4, 10000
	r := NewRing[int](256)
	seen := make([]atomic.Bool, producers*perProducer)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				for !r.TryPush(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	got := 0
	for got < producers*perProducer {
		v, ok := r.TryPop()
		if !ok {
			select {
			case <-done:
				// Every push has completed; an empty ring now means loss.
				if v, ok = r.TryPop(); !ok {
					t.Fatalf("producers done, ring empty, only %d/%d consumed", got, producers*perProducer)
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		if seen[v].Swap(true) {
			t.Fatalf("value %d consumed twice", v)
		}
		got++
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("ring not empty after consuming everything")
	}
}
