package vswitch

import (
	"testing"

	"repro/internal/netdev"
	"repro/internal/pkt"
)

// telemetryRig builds a 2-port switch with a synchronous sink on port 2 and
// returns the injection port.
func telemetryRig(t *testing.T) (*Switch, *netdev.Port) {
	t.Helper()
	sw := New("tel", 1)
	in, swIn := netdev.Veth("in", "sw-in")
	sink, swSink := netdev.Veth("sink", "sw-sink")
	if err := sw.AddPort(1, swIn); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddPort(2, swSink); err != nil {
		t.Fatal(err)
	}
	sink.SetHandler(func(f netdev.Frame) { pkt.PutBuffer(f.Data) })
	return sw, in
}

func telFrame(t *testing.T) []byte {
	t.Helper()
	f, err := pkt.BuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.Addr{10, 0, 0, 1}, DstIP: pkt.Addr{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 5001, PayloadLen: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSwitchTelemetryCounters(t *testing.T) {
	sw, in := telemetryRig(t)
	if err := sw.AddFlow(&FlowEntry{
		Match: MatchAll().WithInPort(1), Actions: []Action{Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	data := telFrame(t)
	const n = 2500 // > latencySampleMask so the histogram must sample
	for i := 0; i < n; i++ {
		if err := in.Send(netdev.Frame{Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	tel := sw.Telemetry()
	if tel.Rx != n {
		t.Fatalf("rx = %d, want %d", tel.Rx, n)
	}
	if tel.Tx != n {
		t.Fatalf("tx = %d, want %d", tel.Tx, n)
	}
	if tel.Drops != 0 {
		t.Fatalf("drops = %d, want 0", tel.Drops)
	}
	if len(tel.TableMatches) != DefaultTables || tel.TableMatches[0] != n {
		t.Fatalf("table matches = %v, want %d in table 0", tel.TableMatches, n)
	}
	wantSamples := uint64(n / (latencySampleMask + 1))
	if tel.Latency.Count != wantSamples {
		t.Fatalf("latency samples = %d, want %d", tel.Latency.Count, wantSamples)
	}
	var bucketTotal uint64
	for _, c := range tel.Latency.Counts {
		bucketTotal += c
	}
	if bucketTotal != tel.Latency.Count {
		t.Fatalf("latency buckets %v do not sum to count %d", tel.Latency.Counts, tel.Latency.Count)
	}
	if tel.Cache.Hits+tel.Cache.Misses != n {
		t.Fatalf("cache hits+misses = %d, want %d", tel.Cache.Hits+tel.Cache.Misses, n)
	}
}

func TestSwitchTelemetryDrops(t *testing.T) {
	sw, in := telemetryRig(t)
	// Steer to a port that does not exist: every frame drops on egress.
	if err := sw.AddFlow(&FlowEntry{
		Match: MatchAll().WithInPort(1), Actions: []Action{Output(9)},
	}); err != nil {
		t.Fatal(err)
	}
	data := telFrame(t)
	for i := 0; i < 10; i++ {
		if err := in.Send(netdev.Frame{Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	tel := sw.Telemetry()
	if tel.Drops != 10 {
		t.Fatalf("unknown-port drops = %d, want 10", tel.Drops)
	}
	if tel.Tx != 0 {
		t.Fatalf("tx = %d, want 0", tel.Tx)
	}

	// Miss with the default drop policy also counts as a drop.
	sw2, in2 := telemetryRig(t)
	for i := 0; i < 5; i++ {
		if err := in2.Send(netdev.Frame{Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	tel2 := sw2.Telemetry()
	if tel2.Misses != 5 || tel2.Drops != 5 {
		t.Fatalf("miss-drop: misses=%d drops=%d, want 5/5", tel2.Misses, tel2.Drops)
	}

	// MissController with no controller attached still discards: the drop
	// must be counted, not hidden behind the punt policy.
	sw3, in3 := telemetryRig(t)
	sw3.SetMissPolicy(MissController)
	for i := 0; i < 3; i++ {
		if err := in3.Send(netdev.Frame{Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	tel3 := sw3.Telemetry()
	if tel3.Drops != 3 {
		t.Fatalf("handlerless punt: drops=%d, want 3", tel3.Drops)
	}
	// With a handler attached the punt is a delivery, not a drop.
	sw3.SetPacketInHandler(func(pi PacketIn) { pkt.PutBuffer(pi.Data) })
	for i := 0; i < 2; i++ {
		if err := in3.Send(netdev.Frame{Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	if tel3 = sw3.Telemetry(); tel3.Drops != 3 || tel3.Misses != 5 {
		t.Fatalf("attached punt: misses=%d drops=%d, want 5/3", tel3.Misses, tel3.Drops)
	}
}
