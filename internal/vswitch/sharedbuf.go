package vswitch

import (
	"sync"
	"sync/atomic"
)

// Batched steering copies the frames of a chunk into one pooled chunk buffer
// instead of drawing a per-frame buffer from the frame pool: after the ring
// operations themselves are batched, the per-frame sync.Pool round trip is
// the largest producer-side cost left, and the chunk buffer pays it once per
// chunk. Each steered workerItem carries a sub-slice of the chunk buffer and
// a pointer to its sharedBuf; the last frame to finish (or to be
// tail-dropped) returns the whole chunk to the pool.
//
// Memory bound: a chunk buffer stays out of the pool while any of its frames
// sits in a worker ring, so the transient worst case is one buffer per ring
// slot (ring 1024 x 8 KiB = 8 MiB per worker); in practice a buffer covers a
// whole chunk of small frames and the pool holds a handful per worker.

// sharedBufCap is the chunk-buffer payload capacity. Small frames pack an
// entire workerBurst chunk into one buffer; MTU-sized frames still amortize
// the pool traffic about 5x. A frame larger than this gets a private
// pool-backed buffer instead (workerItem.shared == nil).
const sharedBufCap = 8192

// sharedBuf is one reference-counted chunk buffer.
type sharedBuf struct {
	refs atomic.Int32
	// count and off accumulate while the chunk is being parsed; count moves
	// into refs via seal before any referencing item is pushed to a worker,
	// so a release can never observe an unset count.
	count int32
	off   int
	buf   [sharedBufCap]byte
}

var sharedBufPool = sync.Pool{New: func() any { return new(sharedBuf) }}

// seal publishes the accumulated reference count. Must be called after the
// last frame is packed and before any item referencing the buffer becomes
// visible to a consumer.
func (sb *sharedBuf) seal() { sb.refs.Store(sb.count) }

// release drops one frame's reference; the last one recycles the buffer.
func (sb *sharedBuf) release() { sb.releaseN(1) }

// releaseN drops n references at once. A worker drains a chunk's frames as
// consecutive ring items, so it can retire a whole run with one atomic
// instead of one per frame (see runBurst).
func (sb *sharedBuf) releaseN(n int32) {
	if sb.refs.Add(-n) == 0 {
		sharedBufPool.Put(sb)
	}
}
