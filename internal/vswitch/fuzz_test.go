package vswitch

import (
	"testing"

	"repro/internal/pkt"
)

// FuzzExtractKey throws truncated and garbage frames at the header parser
// and checks its invariants: no panic, deterministic results, short frames
// rejected, and — through a live switch — rejected frames counted as
// malformed drops, never as table misses.
func FuzzExtractKey(f *testing.F) {
	valid, err := pkt.BuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.Addr{10, 0, 0, 1}, DstIP: pkt.Addr{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 80, PayloadLen: 16,
	})
	if err != nil {
		f.Fatal(err)
	}
	tagged, err := pkt.BuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		VLANID: 42,
		SrcIP:  pkt.Addr{10, 0, 0, 1}, DstIP: pkt.Addr{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 80, PayloadLen: 16,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad})
	f.Add(valid)
	f.Add(valid[:pkt.EthernetHeaderLen])   // header only, no payload
	f.Add(valid[:pkt.EthernetHeaderLen+3]) // truncated IPv4 header
	f.Add(tagged)
	f.Add(tagged[:pkt.EthernetHeaderLen+1])                         // truncated VLAN tag
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0x81, 0x00}) // VLAN EtherType, tag missing

	sw := New("fuzz", 1)
	f.Fuzz(func(t *testing.T, data []byte) {
		var k1, k2 flowKey
		err1 := extractKey(data, 7, &k1)
		err2 := extractKey(data, 7, &k2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic parse: %v vs %v", err1, err2)
		}
		if len(data) < pkt.EthernetHeaderLen && err1 == nil {
			t.Fatalf("accepted %d-byte frame, Ethernet header is %d bytes", len(data), pkt.EthernetHeaderLen)
		}
		if err1 == nil {
			if k1 != k2 {
				t.Fatalf("nondeterministic key: %+v vs %+v", k1, k2)
			}
			if k1.inPort != 7 {
				t.Fatalf("inPort = %d, want 7", k1.inPort)
			}
			if k1.hash(99) != k2.hash(99) {
				t.Fatal("nondeterministic hash for identical keys")
			}
		}
		// The datapath must classify exactly the parser's rejects as
		// malformed — counted as drops, never as misses.
		malformedBefore, missesBefore := sw.Malformed(), sw.Misses()
		sw.Inject(7, data)
		dm := sw.Malformed() - malformedBefore
		if err1 != nil && dm != 1 {
			t.Fatalf("parser rejected frame but switch counted %d malformed", dm)
		}
		if err1 == nil && dm != 0 {
			t.Fatal("parser accepted frame but switch counted it malformed")
		}
		if err1 != nil && sw.Misses() != missesBefore {
			t.Fatal("malformed frame counted as a table miss")
		}
	})
}
