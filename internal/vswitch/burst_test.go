package vswitch

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netdev"
)

// The burst tests pin down the end-to-end guarantees of the batched
// datapath: per-flow FIFO from SendBatch ingress through batched steering,
// burst execution and TX coalescing; exactly-once delivery under Inject
// backpressure; and the burst/coalescing telemetry.

const (
	udpDstOff  = 36 // 14 Ethernet + 20 IPv4 + src port
	payloadOff = 42 // headers end; the tests stamp a sequence number here
)

// burstRig is a worker-pool switch whose sink captures (flow, seq) pairs
// from whole delivered batches.
type burstRig struct {
	sw   *Switch
	in   *netdev.Port
	mu   sync.Mutex
	seqs map[uint16][]uint32 // dst port -> delivered sequence numbers
	got  atomic.Uint64
}

func newBurstRig(t *testing.T, workers int) *burstRig {
	t.Helper()
	r := &burstRig{seqs: make(map[uint16][]uint32)}
	r.sw = NewOptions("burst", 1, Options{Workers: workers})
	t.Cleanup(r.sw.Close)
	in, swIn := netdev.Veth("in", "sw-in")
	if err := r.sw.AddPort(1, swIn); err != nil {
		t.Fatal(err)
	}
	r.in = in
	sink, swOut := netdev.Veth("sink", "sw-out")
	record := func(f netdev.Frame) {
		flow := binary.BigEndian.Uint16(f.Data[udpDstOff:])
		seq := binary.BigEndian.Uint32(f.Data[payloadOff:])
		r.mu.Lock()
		r.seqs[flow] = append(r.seqs[flow], seq)
		r.mu.Unlock()
		r.got.Add(1)
	}
	// The batch handler is what the coalesced flush hits; keep a per-frame
	// handler absent so delivery order within a batch is observed as sent.
	sink.SetBatchHandler(func(fs []netdev.Frame) {
		for i := range fs {
			record(fs[i])
		}
	})
	if err := r.sw.AddPort(2, swOut); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r.sw, &FlowEntry{Match: MatchAll(), Actions: []Action{Output(2)}})
	return r
}

// drops sums the per-worker ring tail-drops.
func (r *burstRig) drops() uint64 {
	var n uint64
	for _, ws := range r.sw.WorkerTelemetry() {
		n += ws.QueueDrops
	}
	return n
}

// checkFlowFIFO asserts every flow's delivered sequence is strictly
// increasing: gaps are legal (ring tail-drop is NIC semantics) but any
// reorder or duplicate breaks monotonicity.
func (r *burstRig) checkFlowFIFO(t *testing.T) {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	for flow, seqs := range r.seqs {
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("flow %d: seq %d delivered after %d (position %d of %d): per-flow FIFO violated",
					flow, seqs[i], seqs[i-1], i, len(seqs))
			}
		}
	}
}

// TestBurstPerFlowOrdering is the per-flow FIFO property test of the batched
// path: several senders, each owning a disjoint set of flows, blast random
// mixed-size bursts through SendBatch while workers steer, drain and coalesce
// in batches. Whatever interleaving the scheduler picks, each flow's frames
// must come out in send order.
func TestBurstPerFlowOrdering(t *testing.T) {
	r := newBurstRig(t, 4)
	const (
		senders       = 3
		flowsPerSend  = 8
		framesPerFlow = 300
	)
	var sent atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			// One template per owned flow, plus one buffer per batch slot:
			// the same flow may occupy several slots of one burst, each with
			// its own sequence stamp, so slots cannot share a buffer.
			frames := make([][]byte, flowsPerSend)
			next := make([]uint32, flowsPerSend)
			for i := range frames {
				frames[i] = frame(t, 0, uint16(5000+g*flowsPerSend+i))
			}
			slots := make([][]byte, 48)
			for i := range slots {
				slots[i] = make([]byte, len(frames[0]))
			}
			batch := make([]netdev.Frame, 0, len(slots))
			left := flowsPerSend * framesPerFlow
			for left > 0 {
				batch = batch[:0]
				n := 1 + rng.Intn(cap(batch))
				if n > left {
					n = left
				}
				for k := 0; k < n; k++ {
					fi := rng.Intn(flowsPerSend)
					copy(slots[k], frames[fi])
					binary.BigEndian.PutUint32(slots[k][payloadOff:], next[fi])
					next[fi]++
					batch = append(batch, netdev.Frame{Data: slots[k]})
				}
				if _, err := r.in.SendBatch(batch); err != nil {
					t.Error(err)
					return
				}
				sent.Add(uint64(n))
				left -= n
			}
		}(g)
	}
	wg.Wait()
	waitFor(t, "burst traffic to finish", func() bool {
		return r.got.Load()+r.drops() >= sent.Load()
	})
	r.sw.Close()
	if r.got.Load() == 0 {
		t.Fatal("nothing delivered")
	}
	r.checkFlowFIFO(t)
}

// TestBurstSingleFlowNoDropsOrdered sends one flow's frames in bursts with
// no competing load: nothing may be dropped, reordered or duplicated, so the
// delivered sequence must be exactly 0..n-1.
func TestBurstSingleFlowNoDropsOrdered(t *testing.T) {
	r := newBurstRig(t, 2)
	const n = 512
	// One buffer per batch slot: frames within one burst need distinct
	// sequence stamps, and SendBatch only copies at steering time.
	bufs := make([][]byte, 32)
	for i := range bufs {
		bufs[i] = frame(t, 0, 7777)
	}
	batch := make([]netdev.Frame, 0, len(bufs))
	seq := uint32(0)
	for seq < n {
		batch = batch[:0]
		for k := 0; k < cap(batch) && seq < n; k++ {
			binary.BigEndian.PutUint32(bufs[k][payloadOff:], seq)
			seq++
			batch = append(batch, netdev.Frame{Data: bufs[k]})
		}
		if _, err := r.in.SendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "single flow delivered", func() bool { return r.got.Load()+r.drops() >= n })
	r.sw.Close()
	r.mu.Lock()
	seqs := r.seqs[7777]
	r.mu.Unlock()
	if r.drops() == 0 && len(seqs) != n {
		t.Fatalf("delivered %d of %d with no drops recorded", len(seqs), n)
	}
	r.checkFlowFIFO(t)
}

// TestBurstTelemetry checks the new burst counters: the histogram accounts
// for every drained burst, and egress through the coalescer shows up in
// TxCoalesced/TxFlushes.
func TestBurstTelemetry(t *testing.T) {
	r := newBurstRig(t, 2)
	const n = 400
	batch := make([]netdev.Frame, 0, 40)
	data := make([][]byte, 16)
	for i := range data {
		data[i] = frame(t, 0, uint16(6000+i))
	}
	sent := 0
	for sent < n {
		batch = batch[:0]
		for k := 0; k < cap(batch) && sent < n; k++ {
			binary.BigEndian.PutUint32(data[sent%len(data)][payloadOff:], uint32(sent))
			batch = append(batch, netdev.Frame{Data: data[sent%len(data)]})
			sent++
		}
		if _, err := r.in.SendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "telemetry traffic to finish", func() bool {
		return r.got.Load()+r.drops() >= uint64(sent)
	})
	var bursts, framesHist, coalesced, flushes uint64
	buckets := BurstBuckets()
	for _, ws := range r.sw.WorkerTelemetry() {
		if len(ws.BurstHist) != len(buckets) {
			t.Fatalf("BurstHist has %d buckets, want %d", len(ws.BurstHist), len(buckets))
		}
		for bi, c := range ws.BurstHist {
			bursts += c
			framesHist += c * uint64(buckets[bi]) // upper bound per burst
		}
		coalesced += ws.TxCoalesced
		flushes += ws.TxFlushes
	}
	processed := r.sw.PacketsProcessed()
	if bursts == 0 {
		t.Fatal("no bursts recorded in the histogram")
	}
	if framesHist < processed {
		t.Errorf("histogram accounts for at most %d frames < %d processed", framesHist, processed)
	}
	if coalesced == 0 || flushes == 0 {
		t.Fatalf("TX coalescing idle: coalesced=%d flushes=%d", coalesced, flushes)
	}
	if coalesced < flushes {
		t.Errorf("coalesced %d < flushes %d: average batch below one frame", coalesced, flushes)
	}
	if coalesced != r.got.Load() {
		t.Errorf("TxCoalesced = %d, delivered = %d: worker egress must all flow through the coalescer", coalesced, r.got.Load())
	}
}

// TestInjectBackpressureBlocks stalls the only worker behind a blocking
// egress, fills its ring, and checks that Inject parks instead of dropping:
// the injector makes no progress while the worker is stuck and every frame
// comes out exactly once after release.
func TestInjectBackpressureBlocks(t *testing.T) {
	sw := NewOptions("bp", 1, Options{Workers: 1})
	t.Cleanup(sw.Close)
	release := make(chan struct{})
	blocked := make(chan struct{}, 1)
	var delivered atomic.Uint64
	sink, swOut := netdev.Veth("sink", "sw-out")
	sink.SetHandler(func(netdev.Frame) {
		if delivered.Add(1) == 1 {
			blocked <- struct{}{}
			<-release
		}
	})
	if err := sw.AddPort(2, swOut); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, sw, &FlowEntry{Match: MatchAll(), Actions: []Action{Output(2)}})

	data := frame(t, 0, 80)
	sw.Inject(1, data)
	<-blocked // worker stuck inside the egress handler
	const extra = workerRingLen + 32
	injectorDone := make(chan struct{})
	go func() {
		defer close(injectorDone)
		for i := 0; i < extra; i++ {
			sw.Inject(1, data)
		}
	}()
	select {
	case <-injectorDone:
		t.Fatal("injector finished against a stalled worker: backpressure did not block")
	case <-time.After(200 * time.Millisecond):
	}
	close(release)
	select {
	case <-injectorDone:
	case <-time.After(10 * time.Second):
		t.Fatal("injector still blocked after the worker was released")
	}
	waitFor(t, "all injected frames delivered", func() bool {
		return delivered.Load() == extra+1
	})
	for _, ws := range sw.WorkerTelemetry() {
		if ws.QueueDrops != 0 {
			t.Errorf("worker dropped %d backpressured frames", ws.QueueDrops)
		}
	}
}

// TestBatchSteerMalformed checks the chunked malformed accounting of
// steerBatch: garbage frames inside a burst are counted as received,
// malformed and dropped without disturbing the valid frames around them.
func TestBatchSteerMalformed(t *testing.T) {
	r := newBurstRig(t, 2)
	good := frame(t, 0, 4242)
	binary.BigEndian.PutUint32(good[payloadOff:], 1)
	batch := []netdev.Frame{
		{Data: []byte{1, 2, 3}},
		{Data: good},
		{Data: []byte{4, 5}},
	}
	if _, err := r.in.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "malformed burst accounted", func() bool {
		return r.sw.Malformed() == 2 && r.got.Load() == 1
	})
	if got := r.sw.PacketsProcessed(); got != 3 {
		t.Errorf("PacketsProcessed = %d, want 3 (malformed frames count as received)", got)
	}
}
