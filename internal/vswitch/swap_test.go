package vswitch

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/netdev"
)

func TestSwapFlowsReplacesByCookie(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 3)
	mustAdd(t, sw, &FlowEntry{Cookie: 7, Match: MatchAll().WithInPort(1), Actions: []Action{Output(2)}})
	mustAdd(t, sw, &FlowEntry{Cookie: 9, Match: MatchAll().WithInPort(2), Actions: []Action{Output(1)}})

	removed, err := sw.SwapFlows(7, []*FlowEntry{
		{Cookie: 7, Match: MatchAll().WithInPort(1), Actions: []Action{Output(3)}},
		{Cookie: 11, Match: MatchAll().WithInPort(3), Actions: []Action{Output(1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if got := len(sw.Flows()); got != 3 {
		t.Fatalf("flows after swap = %d, want 3", got)
	}
	// Port-1 ingress now goes to port 3; the untouched cookie-9 entry still
	// forwards 2 -> 1.
	if err := hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := hosts[2].TryRecv(); !ok {
		t.Fatal("swapped entry did not steer 1->3")
	}
	if _, ok := hosts[1].TryRecv(); ok {
		t.Fatal("stale pre-swap entry still forwarding 1->2")
	}
	if err := hosts[1].Send(netdev.Frame{Data: frame(t, 0, 80)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := hosts[0].TryRecv(); !ok {
		t.Fatal("unrelated cookie was disturbed by the swap")
	}
}

func TestSwapFlowsValidatesTables(t *testing.T) {
	sw := New("lsi", 1)
	if _, err := sw.SwapFlows(1, []*FlowEntry{{Table: DefaultTables}}); err == nil {
		t.Fatal("out-of-range table must be rejected")
	}
	if _, err := sw.SwapFlows(1, []*FlowEntry{
		{Table: 2, Actions: []Action{GotoTable(1)}},
	}); err == nil {
		t.Fatal("backward goto_table must be rejected")
	}
}

// TestSwapFlowsZeroGap hammers the swap under continuous traffic: every
// frame must be forwarded — by the old rule set or the new one — and none
// dropped, because each packet sees exactly one complete snapshot.
func TestSwapFlowsZeroGap(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 3)
	var delivered atomic.Uint64
	count := func(netdev.Frame) { delivered.Add(1) }
	hosts[1].SetHandler(count)
	hosts[2].SetHandler(count)
	mustAdd(t, sw, &FlowEntry{Cookie: 1, Match: MatchAll().WithInPort(1), Actions: []Action{Output(2)}})

	const frames = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		data := frame(t, 0, 80)
		for i := 0; i < frames; i++ {
			_ = hosts[0].Send(netdev.Frame{Data: data})
		}
	}()
	// Flip the steering between ports 2 and 3 as fast as possible while the
	// sender runs.
	out := uint32(3)
	for i := 0; i < 500; i++ {
		if _, err := sw.SwapFlows(1, []*FlowEntry{
			{Cookie: 1, Match: MatchAll().WithInPort(1), Actions: []Action{Output(out)}},
		}); err != nil {
			t.Fatal(err)
		}
		out = 5 - out // 2 <-> 3
	}
	wg.Wait()

	if got := delivered.Load(); got != frames {
		t.Fatalf("delivered %d of %d frames across swaps", got, frames)
	}
	tel := sw.Telemetry()
	if tel.Drops != 0 || tel.Misses != 0 {
		t.Fatalf("drops=%d misses=%d during swaps, want 0", tel.Drops, tel.Misses)
	}
}
