package vswitch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netdev"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// poolRig builds a worker-pool switch with one ingress port and a counting
// sink on port 2.
func poolRig(t *testing.T, workers int) (sw *Switch, in *netdev.Port, delivered *atomic.Uint64) {
	t.Helper()
	sw = NewOptions("pool", 1, Options{Workers: workers})
	t.Cleanup(sw.Close)
	in, swIn := netdev.Veth("in", "sw-in")
	if err := sw.AddPort(1, swIn); err != nil {
		t.Fatal(err)
	}
	delivered = new(atomic.Uint64)
	sink, swOut := netdev.Veth("sink", "sw-out")
	sink.SetHandler(func(netdev.Frame) { delivered.Add(1) })
	if err := sw.AddPort(2, swOut); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, sw, &FlowEntry{Match: MatchAll(), Actions: []Action{Output(2)}})
	return sw, in, delivered
}

func TestWorkerPoolForwards(t *testing.T) {
	sw, in, delivered := poolRig(t, 2)
	if sw.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", sw.Workers())
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := in.Send(netdev.Frame{Data: frame(t, 0, uint16(1000+i%50))}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all frames forwarded", func() bool { return delivered.Load() == n })
	if got := sw.PacketsProcessed(); got != n {
		t.Errorf("PacketsProcessed = %d, want %d", got, n)
	}
}

// TestWorkerSteeringAffinity sends one microflow and checks that exactly one
// worker processed it: the RSS steering hash must keep a flow on one core.
func TestWorkerSteeringAffinity(t *testing.T) {
	sw, in, delivered := poolRig(t, 4)
	const n = 200
	data := frame(t, 0, 80)
	for i := 0; i < n; i++ {
		if err := in.Send(netdev.Frame{Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "single-flow frames forwarded", func() bool { return delivered.Load() == n })
	busy := 0
	for _, ws := range sw.WorkerTelemetry() {
		if ws.Packets == n {
			busy++
		} else if ws.Packets != 0 {
			t.Errorf("worker processed %d of %d frames: flow split across workers", ws.Packets, n)
		}
	}
	if busy != 1 {
		t.Errorf("%d workers saw the flow, want exactly 1", busy)
	}
}

func TestWorkerPoolMalformedCounted(t *testing.T) {
	sw, in, _ := poolRig(t, 2)
	if err := in.Send(netdev.Frame{Data: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "malformed frame counted", func() bool { return sw.Malformed() == 1 })
	if got := sw.Misses(); got != 0 {
		t.Errorf("Misses = %d, want 0: malformed frames never consult the tables", got)
	}
	if got := sw.PacketsProcessed(); got != 1 {
		t.Errorf("PacketsProcessed = %d, want 1", got)
	}
	tel := sw.Telemetry()
	if tel.Malformed != 1 || tel.Drops != 1 {
		t.Errorf("telemetry malformed=%d drops=%d, want 1/1", tel.Malformed, tel.Drops)
	}
}

// TestWorkerRingTailDrop stalls the single worker behind a blocking egress
// handler, overfills its RX ring and checks that the overflow is tail-dropped
// and counted — NIC semantics — while nothing is lost silently.
func TestWorkerRingTailDrop(t *testing.T) {
	sw := NewOptions("pool", 1, Options{Workers: 1})
	t.Cleanup(sw.Close)
	in, swIn := netdev.Veth("in", "sw-in")
	if err := sw.AddPort(1, swIn); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var delivered atomic.Uint64
	blocked := make(chan struct{}, 1)
	sink, swOut := netdev.Veth("sink", "sw-out")
	sink.SetHandler(func(netdev.Frame) {
		if delivered.Add(1) == 1 {
			blocked <- struct{}{}
			<-release
		}
	})
	if err := sw.AddPort(2, swOut); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, sw, &FlowEntry{Match: MatchAll(), Actions: []Action{Output(2)}})

	data := frame(t, 0, 80)
	if err := in.Send(netdev.Frame{Data: data}); err != nil {
		t.Fatal(err)
	}
	<-blocked // the worker is now stuck inside the egress handler
	sent := uint64(1)
	for i := 0; i < workerRingLen+64; i++ {
		if err := in.Send(netdev.Frame{Data: data}); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	close(release)
	var drops uint64
	waitFor(t, "ring to drain", func() bool {
		drops = sw.WorkerTelemetry()[0].QueueDrops
		return delivered.Load()+drops == sent && sw.WorkerTelemetry()[0].QueueLen == 0
	})
	if drops == 0 {
		t.Error("overfilling the ring dropped nothing")
	}
	if tel := sw.Telemetry(); tel.Drops < drops {
		t.Errorf("switch drops %d < worker queue drops %d", tel.Drops, drops)
	}
}

// TestWorkerCloseDrains checks that Close completes everything already
// steered, is idempotent, and that the switch degrades to synchronous
// processing afterwards.
func TestWorkerCloseDrains(t *testing.T) {
	sw, _, delivered := poolRig(t, 2)
	const n = 300
	for i := 0; i < n; i++ {
		sw.Inject(1, frame(t, 0, uint16(2000+i%31)))
	}
	sw.Close()
	if got := delivered.Load(); got != n {
		t.Fatalf("delivered %d of %d after Close", got, n)
	}
	sw.Close() // idempotent
	sw.Inject(1, frame(t, 0, 80))
	if got := delivered.Load(); got != n+1 {
		t.Errorf("post-Close Inject not processed synchronously: delivered %d, want %d", got, n+1)
	}
}

func TestWorkerTelemetryShape(t *testing.T) {
	sw := NewOptions("pool", 1, Options{Workers: 3})
	defer sw.Close()
	ws := sw.WorkerTelemetry()
	if len(ws) != 3 {
		t.Fatalf("WorkerTelemetry len = %d, want 3", len(ws))
	}
	for i, w := range ws {
		if w.QueueCap != workerRingLen {
			t.Errorf("worker %d QueueCap = %d, want %d", i, w.QueueCap, workerRingLen)
		}
	}
	if syncSw := New("sync", 2); syncSw.WorkerTelemetry() != nil {
		t.Error("synchronous switch reports workers")
	}
	if tel := sw.Telemetry(); len(tel.Workers) != 3 {
		t.Errorf("Telemetry.Workers len = %d, want 3", len(tel.Workers))
	}
}

// TestWorkerPoolHammer injects from several goroutines while SwapFlows flips
// the egress between two sinks and the cache is toggled — every injected
// frame must come out exactly once (Inject applies backpressure, SwapFlows
// never exposes an empty rule set), with no verdict lost or duplicated.
func TestWorkerPoolHammer(t *testing.T) {
	sw := NewOptions("pool", 1, Options{Workers: 4})
	_, swIn := netdev.Veth("in", "sw-in")
	if err := sw.AddPort(1, swIn); err != nil {
		t.Fatal(err)
	}
	var sinkA, sinkB atomic.Uint64
	for num, counter := range map[uint32]*atomic.Uint64{2: &sinkA, 3: &sinkB} {
		host, swSide := netdev.Veth("host", "sw")
		c := counter
		host.SetHandler(func(netdev.Frame) { c.Add(1) })
		if err := sw.AddPort(num, swSide); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(t, sw, &FlowEntry{Cookie: 1, Match: MatchAll(), Actions: []Action{Output(2)}})

	const (
		senders   = 4
		perSender = 2000
		swaps     = 400
	)
	frames := make([][]byte, 97)
	for i := range frames {
		frames[i] = frame(t, 0, uint16(1000+i))
	}
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				sw.Inject(1, frames[(g*perSender+i)%len(frames)])
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cookie, out := uint64(1), uint32(3)
		for i := 0; i < swaps; i++ {
			next := cookie%2 + 1
			if _, err := sw.SwapFlows(cookie, []*FlowEntry{
				{Cookie: next, Match: MatchAll(), Actions: []Action{Output(out)}},
			}); err != nil {
				t.Error(err)
				return
			}
			cookie, out = next, 5-out
			if i%50 == 0 {
				sw.SetCacheEnabled(i%100 == 0)
			}
		}
		sw.SetCacheEnabled(true)
	}()
	wg.Wait()
	sw.Close() // drains every ring
	total := sinkA.Load() + sinkB.Load()
	if want := uint64(senders * perSender); total != want {
		t.Fatalf("delivered %d (A=%d B=%d), want exactly %d: frames lost or duplicated",
			total, sinkA.Load(), sinkB.Load(), want)
	}
	if got := sw.PacketsProcessed(); got != uint64(senders*perSender) {
		t.Errorf("PacketsProcessed = %d, want %d", got, senders*perSender)
	}
}

// TestWorkerPoolPartitionedCache checks that worker-mode cache partitions
// report a coherent aggregate: after traffic across many microflows, entries
// are resident and the hit counters add up across lanes.
func TestWorkerPoolPartitionedCache(t *testing.T) {
	sw, in, delivered := poolRig(t, 4)
	const flows, repeat = 64, 5
	for r := 0; r < repeat; r++ {
		for i := 0; i < flows; i++ {
			if err := in.Send(netdev.Frame{Data: frame(t, 0, uint16(3000+i))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, "all microflow frames forwarded", func() bool {
		return delivered.Load() == flows*repeat
	})
	cs := sw.CacheStats()
	if cs.Entries == 0 {
		t.Error("no resident cache entries after traffic")
	}
	if cs.Hits+cs.Misses != flows*repeat {
		t.Errorf("hits %d + misses %d != %d packets", cs.Hits, cs.Misses, flows*repeat)
	}
	if cs.Misses < flows {
		t.Errorf("misses %d < %d distinct flows", cs.Misses, flows)
	}
}
