package vswitch

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netdev"
	"repro/internal/pkt"
	"repro/internal/telemetry"
)

// DefaultTables is the number of flow tables a switch starts with.
const DefaultTables = 4

// MissPolicy selects what happens to packets that match no flow entry.
type MissPolicy int

// Table-miss policies.
const (
	MissDrop       MissPolicy = iota // discard silently (count only)
	MissController                   // punt to the controller as packet-in
)

// PacketInReason says why a packet was punted to the controller.
type PacketInReason int

// Packet-in reasons.
const (
	ReasonMiss   PacketInReason = iota // table miss with MissController
	ReasonAction                       // explicit ToController action
)

// PacketIn is the event delivered to the controller callback.
type PacketIn struct {
	InPort  uint32
	TableID int
	Reason  PacketInReason
	Data    []byte
}

// PacketInHandler consumes packet-in events.
type PacketInHandler func(PacketIn)

// FlowEntry pairs a match with actions at a priority inside one table.
type FlowEntry struct {
	Table    int
	Priority int
	Cookie   uint64
	Match    Match
	Actions  []Action

	packets atomic.Uint64
	bytes   atomic.Uint64
}

// Stats returns the entry's packet and byte hit counters.
func (e *FlowEntry) Stats() (packets, bytes uint64) {
	return e.packets.Load(), e.bytes.Load()
}

func (e *FlowEntry) String() string {
	acts := make([]string, len(e.Actions))
	for i, a := range e.Actions {
		acts[i] = a.String()
	}
	p, b := e.Stats()
	return fmt.Sprintf("table=%d prio=%d cookie=%#x %v actions=%s n_packets=%d n_bytes=%d",
		e.Table, e.Priority, e.Cookie, e.Match, strings.Join(acts, ","), p, b)
}

// tableSet is one immutable copy-on-write snapshot of the flow tables. The
// packet path loads it once per packet; mutators build a fresh snapshot
// under mu and publish it atomically.
type tableSet struct {
	tables [][]*FlowEntry // per table, sorted by priority descending
}

// portTable is the immutable copy-on-write snapshot of the attached ports.
// dense mirrors the map for the common small port numbers so the egress hot
// path indexes an array instead of hashing into a map.
type portTable struct {
	ports map[uint32]*netdev.Port
	dense []*netdev.Port // dense[num] == ports[num] for num < len(dense)
}

// densePortLimit bounds the dense egress index; port numbers above it (rare:
// OpenFlow reserved ranges) fall back to the map.
const densePortLimit = 256

func newPortTable(ports map[uint32]*netdev.Port) *portTable {
	maxNum := uint32(0)
	for n := range ports {
		if n > maxNum && n < densePortLimit {
			maxNum = n
		}
	}
	t := &portTable{ports: ports, dense: make([]*netdev.Port, maxNum+1)}
	for n, p := range ports {
		if n < uint32(len(t.dense)) {
			t.dense[n] = p
		}
	}
	return t
}

// lookup returns the port registered under num, or nil.
func (t *portTable) lookup(num uint32) *netdev.Port {
	if num < uint32(len(t.dense)) {
		return t.dense[num]
	}
	return t.ports[num]
}

// dpCounters is one datapath lane's per-packet counter set. A synchronous
// switch has a single set shared by the sender goroutines; a worker-pool
// switch gives each worker its own, so the hot path only ever touches
// cache lines owned by its core, and Telemetry/Misses/CacheStats aggregate
// at scrape time.
type dpCounters struct {
	pipeline    atomic.Uint64 // frames that entered the pipeline (rx)
	misses      atomic.Uint64 // table-miss packets
	drops       atomic.Uint64 // discarded: unknown egress, miss-drop, queue-full
	malformed   atomic.Uint64 // frames extractKey rejected (not a table miss)
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	_           [16]byte // pad to 64 bytes against false sharing
}

// dpScratch is the per-packet working state of one datapath lane: the
// parsed flow key, the action context and the verdict being recorded. The
// action interface calls would otherwise force all three to escape to the
// heap per packet; keeping them in a reused scratch struct is what makes
// the hit path allocation-free. Synchronous lanes draw scratch from a pool
// (nested switch-to-switch delivery gets its own), workers own one each.
type dpScratch struct {
	key flowKey
	ctx actionContext
	v   cacheVerdict
	// tx is the owning worker's TX coalescer, threaded into the action
	// context so Output actions append to the per-port burst instead of
	// sending immediately; nil on synchronous lanes (immediate send).
	tx *txCoalescer
	// statE accumulates flow-entry hit stats across a burst on worker lanes:
	// consecutive cache replays usually hit the same entries, so the two
	// atomic adds per entry are paid once per run instead of once per frame.
	// Flushed on entry change and at burst end (runBurst); the entry counters
	// therefore lag live traffic by at most one burst, like a NIC's batched
	// descriptor writeback.
	statE     *FlowEntry
	statPkts  uint64
	statBytes uint64
}

// flushEntryStats publishes the accumulated flow-entry hit stats.
func (sc *dpScratch) flushEntryStats() {
	if sc.statE != nil {
		sc.statE.packets.Add(sc.statPkts)
		sc.statE.bytes.Add(sc.statBytes)
		sc.statE = nil
	}
	sc.statPkts, sc.statBytes = 0, 0
}

var scratchPool = sync.Pool{New: func() any { return new(dpScratch) }}

// steerGroup collects one worker's share of a steered burst.
type steerGroup struct {
	items []workerItem
}

// steerScratch is the reusable grouping buffer of steerBatch: one group per
// worker, drawn from the switch's steerPool so concurrent batch senders
// never share it and the steady state allocates nothing.
type steerScratch struct {
	groups []steerGroup
}

// Options configures a Switch beyond the defaults.
type Options struct {
	// Tables is the number of flow tables (minimum 1; 0 means
	// DefaultTables).
	Tables int
	// Workers selects the datapath mode. 0 (the default) processes frames
	// synchronously in the sender's goroutine, run-to-completion. N > 0
	// starts N run-to-completion worker goroutines, each fed by its own
	// lock-free ring; received frames are steered to a worker by flow-key
	// hash (RSS-style), so a given microflow — and its cache partition — is
	// always handled by the same worker. See the package README section
	// "Parallel datapath" for how to choose N.
	Workers int
}

// Switch is one Logical Switch Instance: a multi-table flow pipeline over a
// set of numbered ports.
//
// The per-packet path is lock-free and allocation-free on a cache hit: flow
// tables and the port table are published as immutable snapshots through
// atomic pointers, the miss policy and packet-in handler are atomics, and
// the pipeline verdict for each exact flow key is memoized in a partitioned
// microflow cache (see cache.go). Writers serialize on mu, clone-and-swap
// the affected snapshot, then advance the cache generation so no stale
// verdict survives a flow-mod or port change.
type Switch struct {
	name    string
	dpid    uint64
	nTables int

	mu sync.Mutex // serializes mutators; readers never take it

	tables  atomic.Pointer[tableSet]
	ports   atomic.Pointer[portTable]
	miss    atomic.Int32 // MissPolicy
	onPktIn atomic.Pointer[PacketInHandler]

	cache *microflowCache

	// syncCtrs counts packets processed in sender context: the whole
	// datapath when Workers == 0, and the enqueue-side drops/malformed
	// accounting when workers are running.
	syncCtrs dpCounters
	// workers is fixed at construction (nil for a synchronous switch) so
	// counter aggregation keeps working after Close.
	workers []*dpWorker
	// pool is non-nil while the worker goroutines are running; process
	// reads it once per frame to pick the dispatch mode.
	pool atomic.Pointer[workerPool]
	// steerPool holds steerScratch grouping buffers for batched steering
	// (worker-pool switches only).
	steerPool sync.Pool

	// scratch is the fast-path scratch slot of the synchronous datapath: the
	// common case (one goroutine in the pipeline at a time) claims it with a
	// single swap instead of a sync.Pool round trip; concurrent senders and
	// nested switch-to-switch hops find it empty and fall back to the pool.
	scratch atomic.Pointer[dpScratch]

	latency *telemetry.Histogram
}

// latencySampleShift and latencySampleMask select which packets pay for a
// latency measurement: one in 2^shift pipeline entries takes two clock reads
// and a histogram observation; the rest only test the counter the hot path
// maintains anyway. The burst path samples whichever burst crosses a 2^shift
// boundary of the same counter and records the per-frame average.
const (
	latencySampleShift = 10
	latencySampleMask  = 1<<latencySampleShift - 1
)

// New creates a switch with the default number of tables and a synchronous
// datapath.
func New(name string, dpid uint64) *Switch { return NewOptions(name, dpid, Options{}) }

// NewTables creates a switch with n flow tables (minimum 1).
func NewTables(name string, dpid uint64, n int) *Switch {
	if n < 1 {
		n = 1
	}
	return NewOptions(name, dpid, Options{Tables: n})
}

// NewOptions creates a switch from an Options struct. With Workers > 0 the
// worker goroutines start immediately; stop them with Close.
func NewOptions(name string, dpid uint64, o Options) *Switch {
	nt := o.Tables
	if nt < 1 {
		nt = DefaultTables
	}
	nw := o.Workers
	if nw < 0 {
		nw = 0
	}
	nParts := 1
	if nw > 0 {
		nParts = nw
	}
	s := &Switch{
		name:    name,
		dpid:    dpid,
		nTables: nt,
		cache:   newMicroflowCache(nParts),
		latency: telemetry.NewHistogram(telemetry.DatapathLatencyBuckets()...),
	}
	s.tables.Store(&tableSet{tables: make([][]*FlowEntry, nt)})
	s.ports.Store(newPortTable(make(map[uint32]*netdev.Port)))
	s.scratch.Store(new(dpScratch))
	if nw > 0 {
		s.steerPool.New = func() any {
			ss := &steerScratch{groups: make([]steerGroup, nw)}
			for i := range ss.groups {
				ss.groups[i].items = make([]workerItem, 0, workerBurst)
			}
			return ss
		}
		s.startWorkers(nw)
	}
	return s
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// DPID returns the datapath identifier.
func (s *Switch) DPID() uint64 { return s.dpid }

// NumTables returns the number of flow tables.
func (s *Switch) NumTables() int { return s.nTables }

// Workers returns the number of datapath workers (0 for a synchronous
// switch).
func (s *Switch) Workers() int { return len(s.workers) }

// SetMissPolicy configures the table-miss behaviour.
func (s *Switch) SetMissPolicy(p MissPolicy) {
	s.miss.Store(int32(p))
}

// SetPacketInHandler installs the controller callback for packet-in events.
func (s *Switch) SetPacketInHandler(fn PacketInHandler) {
	if fn == nil {
		s.onPktIn.Store(nil)
		return
	}
	s.onPktIn.Store(&fn)
}

// eachCtrs visits every datapath counter lane: the sender-context set plus
// one per worker.
func (s *Switch) eachCtrs(fn func(*dpCounters)) {
	fn(&s.syncCtrs)
	for _, w := range s.workers {
		fn(&w.ctrs)
	}
}

// AddPort attaches a netdev port under the given OpenFlow port number
// (>= 1). Frames received on the port enter the pipeline at table 0, singly
// or as whole bursts via the netdev batch path.
func (s *Switch) AddPort(num uint32, p *netdev.Port) error {
	if num == 0 {
		return fmt.Errorf("vswitch: port number 0 is reserved")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.ports.Load().ports
	if _, exists := cur[num]; exists {
		return fmt.Errorf("vswitch: port %d already present on %s", num, s.name)
	}
	next := make(map[uint32]*netdev.Port, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[num] = p
	s.ports.Store(newPortTable(next))
	s.cache.invalidate()
	p.SetHandler(func(f netdev.Frame) { s.process(num, f) })
	p.SetBatchHandler(func(fs []netdev.Frame) { s.processBatch(num, fs) })
	return nil
}

// RemovePort detaches a port from the switch.
func (s *Switch) RemovePort(num uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.ports.Load().ports
	p, exists := cur[num]
	if !exists {
		return fmt.Errorf("vswitch: port %d not present on %s", num, s.name)
	}
	p.SetHandler(nil)
	p.SetBatchHandler(nil)
	next := make(map[uint32]*netdev.Port, len(cur)-1)
	for k, v := range cur {
		if k != num {
			next[k] = v
		}
	}
	s.ports.Store(newPortTable(next))
	s.cache.invalidate()
	return nil
}

// Port returns the netdev port with the given number, or nil.
func (s *Switch) Port(num uint32) *netdev.Port {
	return s.ports.Load().lookup(num)
}

// Ports returns the attached port numbers, sorted.
func (s *Switch) Ports() []uint32 {
	ports := s.ports.Load().ports
	nums := make([]uint32, 0, len(ports))
	for n := range ports {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums
}

// AddFlow installs a flow entry. Entries in one table are matched in
// priority order (highest first); among equal priorities the oldest entry
// wins, as in OpenFlow. The tables are copy-on-write: the entry becomes
// visible to the packet path with one atomic snapshot swap, after which the
// microflow cache is invalidated.
func (s *Switch) AddFlow(e *FlowEntry) error {
	if e.Table < 0 || e.Table >= s.nTables {
		return fmt.Errorf("vswitch: table %d out of range [0,%d)", e.Table, s.nTables)
	}
	for _, a := range e.Actions {
		if g, ok := a.(GotoTableAction); ok && g.Table <= e.Table {
			return fmt.Errorf("vswitch: goto_table:%d from table %d must move forward", g.Table, e.Table)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.tables.Load().tables
	next := make([][]*FlowEntry, len(cur))
	copy(next, cur)
	t := make([]*FlowEntry, len(cur[e.Table])+1)
	copy(t, cur[e.Table])
	t[len(t)-1] = e
	// Stable: sort.SliceStable keeps insertion order among equal priorities.
	sort.SliceStable(t, func(i, j int) bool { return t[i].Priority > t[j].Priority })
	next[e.Table] = t
	s.tables.Store(&tableSet{tables: next})
	s.cache.invalidate()
	return nil
}

// DeleteFlows removes all entries with the given cookie from every table and
// returns how many were removed.
func (s *Switch) DeleteFlows(cookie uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.tables.Load().tables
	next := make([][]*FlowEntry, len(cur))
	removed := 0
	for ti, t := range cur {
		kept := make([]*FlowEntry, 0, len(t))
		for _, e := range t {
			if e.Cookie == cookie {
				removed++
			} else {
				kept = append(kept, e)
			}
		}
		next[ti] = kept
	}
	if removed == 0 {
		return 0
	}
	s.tables.Store(&tableSet{tables: next})
	s.cache.invalidate()
	return removed
}

// SwapFlows atomically replaces every entry carrying delCookie with the
// given entries: one copy-on-write snapshot is built under mu — old-cookie
// entries filtered out, new entries sorted in — and published with a single
// atomic store. The packet path therefore sees either the complete old rule
// set or the complete new one, never a half-reprogrammed table: the
// steering-gap-free primitive behind graph updates and NF flavor hot-swaps.
// Added entries keep their own cookies (they may differ from delCookie,
// e.g. drain rules installed under a separate cookie for later removal).
// It returns how many entries the swap removed.
func (s *Switch) SwapFlows(delCookie uint64, add []*FlowEntry) (int, error) {
	for _, e := range add {
		if e.Table < 0 || e.Table >= s.nTables {
			return 0, fmt.Errorf("vswitch: table %d out of range [0,%d)", e.Table, s.nTables)
		}
		for _, a := range e.Actions {
			if g, ok := a.(GotoTableAction); ok && g.Table <= e.Table {
				return 0, fmt.Errorf("vswitch: goto_table:%d from table %d must move forward", g.Table, e.Table)
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.tables.Load().tables
	next := make([][]*FlowEntry, len(cur))
	removed := 0
	for ti, t := range cur {
		kept := make([]*FlowEntry, 0, len(t))
		for _, e := range t {
			if e.Cookie == delCookie {
				removed++
			} else {
				kept = append(kept, e)
			}
		}
		next[ti] = kept
	}
	for _, e := range add {
		next[e.Table] = append(next[e.Table], e)
	}
	for ti := range next {
		t := next[ti]
		sort.SliceStable(t, func(i, j int) bool { return t[i].Priority > t[j].Priority })
	}
	s.tables.Store(&tableSet{tables: next})
	s.cache.invalidate()
	return removed, nil
}

// DeleteAllFlows clears every table and returns the number of removed
// entries.
func (s *Switch) DeleteAllFlows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.tables.Load().tables
	removed := 0
	for _, t := range cur {
		removed += len(t)
	}
	s.tables.Store(&tableSet{tables: make([][]*FlowEntry, len(cur))})
	s.cache.invalidate()
	return removed
}

// Flows returns all installed entries in table then priority order.
func (s *Switch) Flows() []*FlowEntry {
	var out []*FlowEntry
	for _, t := range s.tables.Load().tables {
		out = append(out, t...)
	}
	return out
}

// Misses returns the count of table-miss packets, aggregated across
// datapath lanes.
func (s *Switch) Misses() uint64 {
	var n uint64
	s.eachCtrs(func(c *dpCounters) { n += c.misses.Load() })
	return n
}

// PacketsProcessed returns the count of frames that entered the pipeline,
// aggregated across datapath lanes.
func (s *Switch) PacketsProcessed() uint64 {
	var n uint64
	s.eachCtrs(func(c *dpCounters) { n += c.pipeline.Load() })
	return n
}

// Drops returns the count of discarded frames (unknown egress, miss-drop,
// malformed, full worker ring), aggregated across datapath lanes without
// allocating — unlike the full Telemetry snapshot, so completion loops can
// poll it.
func (s *Switch) Drops() uint64 {
	var n uint64
	s.eachCtrs(func(c *dpCounters) { n += c.drops.Load() })
	return n
}

// Malformed returns the count of received frames rejected by header
// parsing. These count as processed and dropped but not as table or cache
// misses.
func (s *Switch) Malformed() uint64 {
	var n uint64
	s.eachCtrs(func(c *dpCounters) { n += c.malformed.Load() })
	return n
}

// process runs one received frame through the pipeline (or steers it to a
// worker ring), sampling the packet latency histogram on one in every
// latencySampleMask+1 frames per lane (the pipeline counter the hot path
// bumps anyway selects the sample, so the common case costs one mask test).
func (s *Switch) process(inPort uint32, f netdev.Frame) {
	if p := s.pool.Load(); p != nil {
		s.steer(p, inPort, f.Data, false)
		return
	}
	sc := s.scratch.Swap(nil)
	fromPool := sc == nil
	if fromPool {
		sc = scratchPool.Get().(*dpScratch)
	}
	ctrs := &s.syncCtrs
	if ctrs.pipeline.Add(1)&latencySampleMask == 0 {
		start := time.Now()
		s.run(inPort, f.Data, ctrs, sc)
		s.latency.Observe(time.Since(start).Seconds())
	} else {
		s.run(inPort, f.Data, ctrs, sc)
	}
	if fromPool {
		scratchPool.Put(sc)
	} else {
		s.scratch.Store(sc)
	}
}

// processBatch runs a received burst through the pipeline. On a worker-pool
// switch the whole burst is steered with batched ring operations — one
// enqueue and at most one wakeup per destination worker — instead of
// dissolving into per-frame work at the worker boundary; a synchronous
// switch processes the burst frame by frame in the caller, as before.
func (s *Switch) processBatch(inPort uint32, fs []netdev.Frame) {
	if p := s.pool.Load(); p != nil {
		s.steerBatch(p, inPort, fs)
		return
	}
	for i := range fs {
		s.process(inPort, fs[i])
	}
}

// steerBatch parses and hashes a received burst, groups the frames by
// destination worker (hash mod N, the same index that picks the cache
// partition), and enqueues each group with one batched ring push. Frames of
// one flow always hash to the same group and stay in arrival order within
// it, so batching never reorders a flow. Bursts larger than workerBurst are
// steered in workerBurst-sized chunks to bound the grouping buffer.
func (s *Switch) steerBatch(p *workerPool, inPort uint32, fs []netdev.Frame) {
	nw := uint64(len(p.workers))
	seed := s.cache.seed
	ss := s.steerPool.Get().(*steerScratch)
	for base := 0; base < len(fs); base += workerBurst {
		chunk := fs[base:]
		if len(chunk) > workerBurst {
			chunk = chunk[:workerBurst]
		}
		var malformed uint64
		var sb *sharedBuf
		if nw == 1 {
			// Single worker: no grouping — parse each frame directly into
			// its slot of the push array (the group buffers have workerBurst
			// capacity) and enqueue the whole chunk with one batched push.
			g := &ss.groups[0]
			items := g.items[:0]
			for i := range chunk {
				data := chunk[i].Data
				j := len(items)
				items = items[:j+1]
				it := &items[j]
				if err := extractKey(data, inPort, &it.key); err != nil {
					items = items[:j]
					malformed++
					continue
				}
				it.hash = it.key.hash(seed)
				it.inPort = inPort
				sb = packFrame(it, data, sb)
			}
			if sb != nil {
				sb.seal()
			}
			if len(items) > 0 {
				s.pushBurst(p.workers[0], items)
			}
		} else {
			var it workerItem
			for i := range chunk {
				data := chunk[i].Data
				if err := extractKey(data, inPort, &it.key); err != nil {
					malformed++
					continue
				}
				it.hash = it.key.hash(seed)
				it.inPort = inPort
				sb = packFrame(&it, data, sb)
				g := &ss.groups[it.hash%nw]
				g.items = append(g.items, it)
			}
			if sb != nil {
				// Publish the reference count before any item reaches a
				// worker: the group pushes below make the items visible.
				sb.seal()
			}
			for wi := range ss.groups {
				g := &ss.groups[wi]
				if len(g.items) == 0 {
					continue
				}
				s.pushBurst(p.workers[wi], g.items)
				g.items = g.items[:0]
			}
		}
		if malformed != 0 {
			// Malformed frames are counted once per chunk against the
			// sender-context lane; they still count as received.
			s.syncCtrs.pipeline.Add(malformed)
			s.syncCtrs.malformed.Add(malformed)
			s.syncCtrs.drops.Add(malformed)
		}
	}
	s.steerPool.Put(ss)
}

// packFrame copies one steered frame into the chunk's shared buffer — one
// pool round trip per chunk instead of per frame — and returns the (possibly
// new) current chunk buffer. Oversized frames get a private pool buffer and
// are released individually (it.shared == nil).
func packFrame(it *workerItem, data []byte, sb *sharedBuf) *sharedBuf {
	if len(data) > sharedBufCap {
		it.data = pkt.GetBuffer(len(data))
		it.shared = nil
	} else {
		if sb != nil && sb.off+len(data) > sharedBufCap {
			sb.seal()
			sb = nil
		}
		if sb == nil {
			sb = sharedBufPool.Get().(*sharedBuf)
			sb.off, sb.count = 0, 0
		}
		it.data = sb.buf[sb.off : sb.off+len(data) : sb.off+len(data)]
		sb.off += len(data)
		sb.count++
		it.shared = sb
	}
	copy(it.data, data)
	return sb
}

// pushBurst enqueues one worker's share of a burst: a single batched ring
// operation in the common case, then the same bounded spin port RX gets
// before tail-dropping the remainder (NIC semantics). The wakeup happens
// once per burst, not once per frame.
func (s *Switch) pushBurst(w *dpWorker, items []workerItem) {
	sent := w.ring.TryPushBatch(items)
	if sent < len(items) {
		tries := 0
		for sent < len(items) && tries <= steerRetries {
			w.wakeIfParked()
			runtime.Gosched()
			n := w.ring.TryPushBatch(items[sent:])
			sent += n
			if n == 0 {
				tries++
			}
		}
		if dropped := len(items) - sent; dropped > 0 {
			w.qdrops.Add(uint64(dropped))
			s.syncCtrs.drops.Add(uint64(dropped))
			for i := sent; i < len(items); i++ {
				items[i].releaseData()
			}
		}
	}
	if sent > 0 {
		w.wakeIfParked()
	}
}

// run parses the frame and hands it to the keyed pipeline body. A frame the
// parser rejects is counted as malformed + dropped, not as a miss: it never
// consulted the tables, so it must not pollute the cache-hit-rate or
// table-miss metrics.
func (s *Switch) run(inPort uint32, data []byte, ctrs *dpCounters, sc *dpScratch) {
	if err := extractKey(data, inPort, &sc.key); err != nil {
		ctrs.malformed.Add(1)
		ctrs.drops.Add(1)
		return
	}
	s.runKeyed(inPort, data, sc.key.hash(s.cache.seed), ctrs, sc)
}

// runKeyed is the pipeline body once sc.key holds the parsed flow key and
// hash its maphash: a microflow-cache hit replays the memoized verdict;
// anything else walks the tables and, if the cache is enabled, records the
// traversal for the next packet. The same hash picked the worker (in pool
// mode) and picks the cache partition, so a flow's verdict stays core-local.
func (s *Switch) runKeyed(inPort uint32, data []byte, hash uint64, ctrs *dpCounters, sc *dpScratch) {
	cacheOn := s.cache.enabled.Load()
	var gen uint64
	if cacheOn {
		// Read the generation before the tables: a concurrent flow-mod swaps
		// the snapshot first and bumps the generation second, so a verdict
		// recorded under an old generation can never describe new tables.
		gen = s.cache.gen.Load()
	}
	s.runKeyedGen(inPort, data, hash, ctrs, sc, gen, cacheOn)
}

// runKeyedGen is runKeyed with the cache state pre-loaded, so the worker
// burst path can load the generation once per burst instead of once per
// frame. Each verdict is still recorded under the generation it was read
// with, so a flow-mod mid-burst at worst widens the existing one-packet
// staleness window to one burst; it can never publish a stale verdict past
// the burst.
func (s *Switch) runKeyedGen(inPort uint32, data []byte, hash uint64, ctrs *dpCounters, sc *dpScratch, gen uint64, cacheOn bool) {
	if !cacheOn {
		s.runPipeline(inPort, data, ctrs, sc, 0, false)
		return
	}
	if v := s.cache.get(hash, &sc.key, gen); v != nil {
		ctrs.cacheHits.Add(1)
		s.replay(inPort, data, ctrs, sc, v)
		return
	}
	ctrs.cacheMisses.Add(1)
	sc.v.key = sc.key // pristine copy: actions mutate the key during traversal
	if s.runPipeline(inPort, data, ctrs, sc, gen, true) {
		s.cache.put(hash, &sc.v)
	}
}

// runPipeline is the slow path: a full multi-table traversal over the
// current table snapshot. With record set it fills sc.v with the traversal
// and reports whether the verdict is cacheable (a traversal deeper than
// verdictMaxEntries executes but is not memoized).
func (s *Switch) runPipeline(inPort uint32, data []byte, ctrs *dpCounters, sc *dpScratch, gen uint64, record bool) bool {
	tables := s.tables.Load().tables
	sc.ctx = actionContext{data: data, key: &sc.key, ctrs: ctrs, tx: sc.tx}
	ctx := &sc.ctx
	if record {
		sc.v.gen = gen
		sc.v.nEntries = 0
		sc.v.missTable = -1
	}
	table := 0
	for table < s.nTables {
		entry := lookupEntry(tables[table], &sc.key)
		if entry == nil {
			s.missAction(inPort, table, ctx.data, ctrs)
			if record {
				sc.v.missTable = table
			}
			return record
		}
		if record {
			if sc.v.nEntries == verdictMaxEntries {
				record = false
			} else {
				sc.v.entries[sc.v.nEntries] = entry
				sc.v.nEntries++
			}
		}
		entry.packets.Add(1)
		entry.bytes.Add(uint64(len(ctx.data)))
		ctx.tableID = table
		ctx.gotoTable = -1
		for _, a := range entry.Actions {
			a.apply(s, ctx)
		}
		if ctx.gotoTable < 0 {
			break // pipeline ends; Output actions already ran
		}
		table = ctx.gotoTable
	}
	return record
}

// replay re-applies a memoized traversal to one packet: per matched entry it
// bumps the hit counters and runs the action list, exactly as the slow path
// would, then finishes with the recorded table miss if there was one.
func (s *Switch) replay(inPort uint32, data []byte, ctrs *dpCounters, sc *dpScratch, v *cacheVerdict) {
	sc.ctx = actionContext{data: data, key: &sc.key, gotoTable: -1, ctrs: ctrs, tx: sc.tx}
	ctx := &sc.ctx
	for i := 0; i < v.nEntries; i++ {
		e := v.entries[i]
		if sc.tx != nil {
			// Worker lane: accumulate the hit stats across the burst.
			if e != sc.statE {
				sc.flushEntryStats()
				sc.statE = e
			}
			sc.statPkts++
			sc.statBytes += uint64(len(ctx.data))
		} else {
			e.packets.Add(1)
			e.bytes.Add(uint64(len(ctx.data)))
		}
		ctx.tableID = e.Table
		ctx.gotoTable = -1
		for _, a := range e.Actions {
			a.apply(s, ctx)
		}
	}
	if v.missTable >= 0 {
		s.missAction(inPort, v.missTable, ctx.data, ctrs)
	}
}

// lookupEntry finds the highest-priority matching entry in one table's
// priority-sorted entry list.
func lookupEntry(entries []*FlowEntry, key *flowKey) *FlowEntry {
	for _, e := range entries {
		if e.Match.matches(key) {
			return e
		}
	}
	return nil
}

func (s *Switch) missAction(inPort uint32, table int, data []byte, ctrs *dpCounters) {
	ctrs.misses.Add(1)
	// A punt only counts as delivered when a controller is actually
	// attached; MissController with no handler still discards the frame.
	// The handler is loaded once so a concurrent detach cannot slip the
	// frame between the check and the delivery uncounted.
	if MissPolicy(s.miss.Load()) == MissController {
		if fn := s.onPktIn.Load(); fn != nil {
			s.deliverPacketIn(fn, inPort, table, ReasonMiss, data)
			return
		}
	}
	ctrs.drops.Add(1)
}

func (s *Switch) packetIn(inPort uint32, table int, reason PacketInReason, data []byte) {
	fn := s.onPktIn.Load()
	if fn == nil {
		return
	}
	s.deliverPacketIn(fn, inPort, table, reason, data)
}

func (s *Switch) deliverPacketIn(fn *PacketInHandler, inPort uint32, table int, reason PacketInReason, data []byte) {
	d := pkt.GetBuffer(len(data))
	copy(d, data)
	(*fn)(PacketIn{InPort: inPort, TableID: table, Reason: reason, Data: d})
}

// sendOut transmits data on the given port number. Unknown ports drop. The
// copy is pool-backed; the final consumer may recycle it with pkt.PutBuffer.
func (s *Switch) sendOut(num uint32, data []byte, ctrs *dpCounters) {
	p := s.ports.Load().lookup(num)
	if p == nil {
		ctrs.drops.Add(1)
		return
	}
	d := pkt.GetBuffer(len(data))
	copy(d, data)
	_ = p.Send(netdev.Frame{Data: d})
}

// outputCtx is the egress of an Output-style action: on a worker lane the
// frame joins the burst's per-port TX batch (flushed once per burst via
// SendBatch, see txcoalesce.go); on a synchronous lane it transmits
// immediately, exactly as sendOut always has.
func (s *Switch) outputCtx(num uint32, ctx *actionContext) {
	if ctx.tx == nil {
		s.sendOut(num, ctx.data, ctx.ctrs)
		return
	}
	p := s.ports.Load().lookup(num)
	if p == nil {
		ctx.ctrs.drops.Add(1)
		return
	}
	ctx.tx.add(num, p, ctx.data)
}

// flood transmits the frame on every port except the ingress.
func (s *Switch) flood(inPort uint32, ctx *actionContext) {
	ports := s.ports.Load().ports
	nums := make([]uint32, 0, len(ports))
	for n := range ports {
		if n != inPort {
			nums = append(nums, n)
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	for _, n := range nums {
		s.outputCtx(n, ctx)
	}
}

// Inject runs a frame through the pipeline as if it had been received on
// inPort. It is the switch-side half of an OpenFlow packet-out with
// in-port semantics. Unlike port reception — which tail-drops when a worker
// ring is full, as a NIC ring would — Inject applies backpressure: it
// retries the enqueue until the worker drains, so control-plane packet-outs
// are never silently lost.
func (s *Switch) Inject(inPort uint32, data []byte) {
	if p := s.pool.Load(); p != nil {
		s.steer(p, inPort, data, true)
		return
	}
	s.process(inPort, netdev.Frame{Data: data})
}

// Output transmits a frame directly out of a port, bypassing the pipeline:
// the switch-side half of a plain OpenFlow packet-out.
func (s *Switch) Output(port uint32, data []byte) {
	s.sendOut(port, data, &s.syncCtrs)
}

// Dump renders the flow tables like `ovs-ofctl dump-flows` for debugging.
func (s *Switch) Dump() string {
	var b strings.Builder
	cs := s.CacheStats()
	fmt.Fprintf(&b, "switch %s dpid=%#x ports=%v misses=%d cache_hits=%d cache_misses=%d\n",
		s.name, s.dpid, s.Ports(), s.Misses(), cs.Hits, cs.Misses)
	for _, e := range s.Flows() {
		fmt.Fprintf(&b, "  %v\n", e)
	}
	return b.String()
}
