package vswitch

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netdev"
	"repro/internal/pkt"
	"repro/internal/telemetry"
)

// DefaultTables is the number of flow tables a switch starts with.
const DefaultTables = 4

// MissPolicy selects what happens to packets that match no flow entry.
type MissPolicy int

// Table-miss policies.
const (
	MissDrop       MissPolicy = iota // discard silently (count only)
	MissController                   // punt to the controller as packet-in
)

// PacketInReason says why a packet was punted to the controller.
type PacketInReason int

// Packet-in reasons.
const (
	ReasonMiss   PacketInReason = iota // table miss with MissController
	ReasonAction                       // explicit ToController action
)

// PacketIn is the event delivered to the controller callback.
type PacketIn struct {
	InPort  uint32
	TableID int
	Reason  PacketInReason
	Data    []byte
}

// PacketInHandler consumes packet-in events.
type PacketInHandler func(PacketIn)

// FlowEntry pairs a match with actions at a priority inside one table.
type FlowEntry struct {
	Table    int
	Priority int
	Cookie   uint64
	Match    Match
	Actions  []Action

	packets atomic.Uint64
	bytes   atomic.Uint64
}

// Stats returns the entry's packet and byte hit counters.
func (e *FlowEntry) Stats() (packets, bytes uint64) {
	return e.packets.Load(), e.bytes.Load()
}

func (e *FlowEntry) String() string {
	acts := make([]string, len(e.Actions))
	for i, a := range e.Actions {
		acts[i] = a.String()
	}
	p, b := e.Stats()
	return fmt.Sprintf("table=%d prio=%d cookie=%#x %v actions=%s n_packets=%d n_bytes=%d",
		e.Table, e.Priority, e.Cookie, e.Match, strings.Join(acts, ","), p, b)
}

// tableSet is one immutable copy-on-write snapshot of the flow tables. The
// packet path loads it once per packet; mutators build a fresh snapshot
// under mu and publish it atomically.
type tableSet struct {
	tables [][]*FlowEntry // per table, sorted by priority descending
}

// portTable is the immutable copy-on-write snapshot of the attached ports.
type portTable struct {
	ports map[uint32]*netdev.Port
}

// Switch is one Logical Switch Instance: a multi-table flow pipeline over a
// set of numbered ports.
//
// The per-packet path is lock-free: flow tables and the port table are
// published as immutable snapshots through atomic pointers, the miss policy
// and packet-in handler are atomics, and the pipeline verdict for each exact
// flow key is memoized in a sharded microflow cache (see cache.go). Writers
// serialize on mu, clone-and-swap the affected snapshot, then advance the
// cache generation so no stale verdict survives a flow-mod or port change.
type Switch struct {
	name    string
	dpid    uint64
	nTables int

	mu sync.Mutex // serializes mutators; readers never take it

	tables  atomic.Pointer[tableSet]
	ports   atomic.Pointer[portTable]
	miss    atomic.Int32 // MissPolicy
	onPktIn atomic.Pointer[PacketInHandler]

	cache *microflowCache

	misses   atomic.Uint64
	pipeline atomic.Uint64 // packets processed (rx)
	drops    atomic.Uint64 // frames dropped (unknown port, miss-drop)
	latency  *telemetry.Histogram
}

// latencySampleMask selects which packets pay for a latency measurement:
// one in (mask+1) pipeline entries takes two clock reads and a histogram
// observation; the rest only test the counter the hot path maintains anyway.
const latencySampleMask = 1<<10 - 1

// New creates a switch with the default number of tables.
func New(name string, dpid uint64) *Switch { return NewTables(name, dpid, DefaultTables) }

// NewTables creates a switch with n flow tables (minimum 1).
func NewTables(name string, dpid uint64, n int) *Switch {
	if n < 1 {
		n = 1
	}
	s := &Switch{
		name:    name,
		dpid:    dpid,
		nTables: n,
		cache:   newMicroflowCache(),
		latency: telemetry.NewHistogram(telemetry.DatapathLatencyBuckets()...),
	}
	s.tables.Store(&tableSet{tables: make([][]*FlowEntry, n)})
	s.ports.Store(&portTable{ports: make(map[uint32]*netdev.Port)})
	return s
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// DPID returns the datapath identifier.
func (s *Switch) DPID() uint64 { return s.dpid }

// NumTables returns the number of flow tables.
func (s *Switch) NumTables() int { return s.nTables }

// SetMissPolicy configures the table-miss behaviour.
func (s *Switch) SetMissPolicy(p MissPolicy) {
	s.miss.Store(int32(p))
}

// SetPacketInHandler installs the controller callback for packet-in events.
func (s *Switch) SetPacketInHandler(fn PacketInHandler) {
	if fn == nil {
		s.onPktIn.Store(nil)
		return
	}
	s.onPktIn.Store(&fn)
}

// AddPort attaches a netdev port under the given OpenFlow port number
// (>= 1). Frames received on the port enter the pipeline at table 0, singly
// or as whole bursts via the netdev batch path.
func (s *Switch) AddPort(num uint32, p *netdev.Port) error {
	if num == 0 {
		return fmt.Errorf("vswitch: port number 0 is reserved")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.ports.Load().ports
	if _, exists := cur[num]; exists {
		return fmt.Errorf("vswitch: port %d already present on %s", num, s.name)
	}
	next := make(map[uint32]*netdev.Port, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[num] = p
	s.ports.Store(&portTable{ports: next})
	s.cache.invalidate()
	p.SetHandler(func(f netdev.Frame) { s.process(num, f) })
	p.SetBatchHandler(func(fs []netdev.Frame) {
		for i := range fs {
			s.process(num, fs[i])
		}
	})
	return nil
}

// RemovePort detaches a port from the switch.
func (s *Switch) RemovePort(num uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.ports.Load().ports
	p, exists := cur[num]
	if !exists {
		return fmt.Errorf("vswitch: port %d not present on %s", num, s.name)
	}
	p.SetHandler(nil)
	p.SetBatchHandler(nil)
	next := make(map[uint32]*netdev.Port, len(cur)-1)
	for k, v := range cur {
		if k != num {
			next[k] = v
		}
	}
	s.ports.Store(&portTable{ports: next})
	s.cache.invalidate()
	return nil
}

// Port returns the netdev port with the given number, or nil.
func (s *Switch) Port(num uint32) *netdev.Port {
	return s.ports.Load().ports[num]
}

// Ports returns the attached port numbers, sorted.
func (s *Switch) Ports() []uint32 {
	ports := s.ports.Load().ports
	nums := make([]uint32, 0, len(ports))
	for n := range ports {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums
}

// AddFlow installs a flow entry. Entries in one table are matched in
// priority order (highest first); among equal priorities the oldest entry
// wins, as in OpenFlow. The tables are copy-on-write: the entry becomes
// visible to the packet path with one atomic snapshot swap, after which the
// microflow cache is invalidated.
func (s *Switch) AddFlow(e *FlowEntry) error {
	if e.Table < 0 || e.Table >= s.nTables {
		return fmt.Errorf("vswitch: table %d out of range [0,%d)", e.Table, s.nTables)
	}
	for _, a := range e.Actions {
		if g, ok := a.(GotoTableAction); ok && g.Table <= e.Table {
			return fmt.Errorf("vswitch: goto_table:%d from table %d must move forward", g.Table, e.Table)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.tables.Load().tables
	next := make([][]*FlowEntry, len(cur))
	copy(next, cur)
	t := make([]*FlowEntry, len(cur[e.Table])+1)
	copy(t, cur[e.Table])
	t[len(t)-1] = e
	// Stable: sort.SliceStable keeps insertion order among equal priorities.
	sort.SliceStable(t, func(i, j int) bool { return t[i].Priority > t[j].Priority })
	next[e.Table] = t
	s.tables.Store(&tableSet{tables: next})
	s.cache.invalidate()
	return nil
}

// DeleteFlows removes all entries with the given cookie from every table and
// returns how many were removed.
func (s *Switch) DeleteFlows(cookie uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.tables.Load().tables
	next := make([][]*FlowEntry, len(cur))
	removed := 0
	for ti, t := range cur {
		kept := make([]*FlowEntry, 0, len(t))
		for _, e := range t {
			if e.Cookie == cookie {
				removed++
			} else {
				kept = append(kept, e)
			}
		}
		next[ti] = kept
	}
	if removed == 0 {
		return 0
	}
	s.tables.Store(&tableSet{tables: next})
	s.cache.invalidate()
	return removed
}

// SwapFlows atomically replaces every entry carrying delCookie with the
// given entries: one copy-on-write snapshot is built under mu — old-cookie
// entries filtered out, new entries sorted in — and published with a single
// atomic store. The packet path therefore sees either the complete old rule
// set or the complete new one, never a half-reprogrammed table: the
// steering-gap-free primitive behind graph updates and NF flavor hot-swaps.
// Added entries keep their own cookies (they may differ from delCookie,
// e.g. drain rules installed under a separate cookie for later removal).
// It returns how many entries the swap removed.
func (s *Switch) SwapFlows(delCookie uint64, add []*FlowEntry) (int, error) {
	for _, e := range add {
		if e.Table < 0 || e.Table >= s.nTables {
			return 0, fmt.Errorf("vswitch: table %d out of range [0,%d)", e.Table, s.nTables)
		}
		for _, a := range e.Actions {
			if g, ok := a.(GotoTableAction); ok && g.Table <= e.Table {
				return 0, fmt.Errorf("vswitch: goto_table:%d from table %d must move forward", g.Table, e.Table)
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.tables.Load().tables
	next := make([][]*FlowEntry, len(cur))
	removed := 0
	for ti, t := range cur {
		kept := make([]*FlowEntry, 0, len(t))
		for _, e := range t {
			if e.Cookie == delCookie {
				removed++
			} else {
				kept = append(kept, e)
			}
		}
		next[ti] = kept
	}
	for _, e := range add {
		next[e.Table] = append(next[e.Table], e)
	}
	for ti := range next {
		t := next[ti]
		sort.SliceStable(t, func(i, j int) bool { return t[i].Priority > t[j].Priority })
	}
	s.tables.Store(&tableSet{tables: next})
	s.cache.invalidate()
	return removed, nil
}

// DeleteAllFlows clears every table and returns the number of removed
// entries.
func (s *Switch) DeleteAllFlows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.tables.Load().tables
	removed := 0
	for _, t := range cur {
		removed += len(t)
	}
	s.tables.Store(&tableSet{tables: make([][]*FlowEntry, len(cur))})
	s.cache.invalidate()
	return removed
}

// Flows returns all installed entries in table then priority order.
func (s *Switch) Flows() []*FlowEntry {
	var out []*FlowEntry
	for _, t := range s.tables.Load().tables {
		out = append(out, t...)
	}
	return out
}

// Misses returns the count of table-miss packets.
func (s *Switch) Misses() uint64 { return s.misses.Load() }

// PacketsProcessed returns the count of frames that entered the pipeline.
func (s *Switch) PacketsProcessed() uint64 { return s.pipeline.Load() }

// process runs one received frame through the pipeline, sampling the
// packet latency histogram on one in every latencySampleMask+1 frames (the
// pipeline counter the hot path bumps anyway selects the sample, so the
// common case costs one mask test).
func (s *Switch) process(inPort uint32, f netdev.Frame) {
	if s.pipeline.Add(1)&latencySampleMask == 0 {
		start := time.Now()
		s.run(inPort, f)
		s.latency.Observe(time.Since(start).Seconds())
		return
	}
	s.run(inPort, f)
}

// run is the pipeline body: a microflow-cache hit replays the memoized
// verdict; anything else walks the tables and, if the cache is enabled,
// records the traversal for the next packet.
func (s *Switch) run(inPort uint32, f netdev.Frame) {
	var key flowKey
	if err := extractKey(f.Data, inPort, &key); err != nil {
		s.misses.Add(1)
		s.drops.Add(1)
		return
	}
	if !s.cache.enabled.Load() {
		s.runPipeline(inPort, f.Data, &key, 0, false)
		return
	}
	// Read the generation before the tables: a concurrent flow-mod swaps
	// the snapshot first and bumps the generation second, so a verdict
	// recorded under an old generation can never describe new tables.
	gen := s.cache.gen.Load()
	if v := s.cache.get(key, gen); v != nil {
		s.cache.hits.Add(1)
		s.replay(inPort, f.Data, &key, v)
		return
	}
	s.cache.misses.Add(1)
	key0 := key // pristine copy: actions mutate the key during traversal
	if v := s.runPipeline(inPort, f.Data, &key, gen, true); v != nil {
		s.cache.put(key0, v)
	}
}

// runPipeline is the slow path: a full multi-table traversal over the
// current table snapshot. With record set it returns the traversal as a
// cacheable verdict.
func (s *Switch) runPipeline(inPort uint32, data []byte, key *flowKey, gen uint64, record bool) *cacheVerdict {
	tables := s.tables.Load().tables
	ctx := actionContext{data: data, key: key, gotoTable: 0}
	var matched []*FlowEntry
	if record {
		matched = make([]*FlowEntry, 0, s.nTables)
	}
	table := 0
	for table < s.nTables {
		entry := lookupEntry(tables[table], key)
		if entry == nil {
			s.missAction(inPort, table, ctx.data)
			if record {
				return &cacheVerdict{gen: gen, entries: matched, missTable: table}
			}
			return nil
		}
		if record {
			matched = append(matched, entry)
		}
		entry.packets.Add(1)
		entry.bytes.Add(uint64(len(ctx.data)))
		ctx.tableID = table
		ctx.gotoTable = -1
		for _, a := range entry.Actions {
			a.apply(s, &ctx)
		}
		if ctx.gotoTable < 0 {
			break // pipeline ends; Output actions already ran
		}
		table = ctx.gotoTable
	}
	if record {
		return &cacheVerdict{gen: gen, entries: matched, missTable: -1}
	}
	return nil
}

// replay re-applies a memoized traversal to one packet: per matched entry it
// bumps the hit counters and runs the action list, exactly as the slow path
// would, then finishes with the recorded table miss if there was one.
func (s *Switch) replay(inPort uint32, data []byte, key *flowKey, v *cacheVerdict) {
	ctx := actionContext{data: data, key: key, gotoTable: -1}
	for _, e := range v.entries {
		e.packets.Add(1)
		e.bytes.Add(uint64(len(ctx.data)))
		ctx.tableID = e.Table
		ctx.gotoTable = -1
		for _, a := range e.Actions {
			a.apply(s, &ctx)
		}
	}
	if v.missTable >= 0 {
		s.missAction(inPort, v.missTable, ctx.data)
	}
}

// lookupEntry finds the highest-priority matching entry in one table's
// priority-sorted entry list.
func lookupEntry(entries []*FlowEntry, key *flowKey) *FlowEntry {
	for _, e := range entries {
		if e.Match.matches(key) {
			return e
		}
	}
	return nil
}

func (s *Switch) missAction(inPort uint32, table int, data []byte) {
	s.misses.Add(1)
	// A punt only counts as delivered when a controller is actually
	// attached; MissController with no handler still discards the frame.
	// The handler is loaded once so a concurrent detach cannot slip the
	// frame between the check and the delivery uncounted.
	if MissPolicy(s.miss.Load()) == MissController {
		if fn := s.onPktIn.Load(); fn != nil {
			s.deliverPacketIn(fn, inPort, table, ReasonMiss, data)
			return
		}
	}
	s.drops.Add(1)
}

func (s *Switch) packetIn(inPort uint32, table int, reason PacketInReason, data []byte) {
	fn := s.onPktIn.Load()
	if fn == nil {
		return
	}
	s.deliverPacketIn(fn, inPort, table, reason, data)
}

func (s *Switch) deliverPacketIn(fn *PacketInHandler, inPort uint32, table int, reason PacketInReason, data []byte) {
	d := pkt.GetBuffer(len(data))
	copy(d, data)
	(*fn)(PacketIn{InPort: inPort, TableID: table, Reason: reason, Data: d})
}

// sendOut transmits data on the given port number. Unknown ports drop. The
// copy is pool-backed; the final consumer may recycle it with pkt.PutBuffer.
func (s *Switch) sendOut(num uint32, data []byte) {
	p := s.ports.Load().ports[num]
	if p == nil {
		s.drops.Add(1)
		return
	}
	d := pkt.GetBuffer(len(data))
	copy(d, data)
	_ = p.Send(netdev.Frame{Data: d})
}

// flood transmits data on every port except the ingress.
func (s *Switch) flood(inPort uint32, data []byte) {
	ports := s.ports.Load().ports
	nums := make([]uint32, 0, len(ports))
	for n := range ports {
		if n != inPort {
			nums = append(nums, n)
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	for _, n := range nums {
		s.sendOut(n, data)
	}
}

// Inject runs a frame through the pipeline as if it had been received on
// inPort. It is the switch-side half of an OpenFlow packet-out with
// in-port semantics.
func (s *Switch) Inject(inPort uint32, data []byte) {
	s.process(inPort, netdev.Frame{Data: data})
}

// Output transmits a frame directly out of a port, bypassing the pipeline:
// the switch-side half of a plain OpenFlow packet-out.
func (s *Switch) Output(port uint32, data []byte) {
	s.sendOut(port, data)
}

// Dump renders the flow tables like `ovs-ofctl dump-flows` for debugging.
func (s *Switch) Dump() string {
	var b strings.Builder
	cs := s.CacheStats()
	fmt.Fprintf(&b, "switch %s dpid=%#x ports=%v misses=%d cache_hits=%d cache_misses=%d\n",
		s.name, s.dpid, s.Ports(), s.Misses(), cs.Hits, cs.Misses)
	for _, e := range s.Flows() {
		fmt.Fprintf(&b, "  %v\n", e)
	}
	return b.String()
}
