package vswitch

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/netdev"
)

// DefaultTables is the number of flow tables a switch starts with.
const DefaultTables = 4

// MissPolicy selects what happens to packets that match no flow entry.
type MissPolicy int

// Table-miss policies.
const (
	MissDrop       MissPolicy = iota // discard silently (count only)
	MissController                   // punt to the controller as packet-in
)

// PacketInReason says why a packet was punted to the controller.
type PacketInReason int

// Packet-in reasons.
const (
	ReasonMiss   PacketInReason = iota // table miss with MissController
	ReasonAction                       // explicit ToController action
)

// PacketIn is the event delivered to the controller callback.
type PacketIn struct {
	InPort  uint32
	TableID int
	Reason  PacketInReason
	Data    []byte
}

// PacketInHandler consumes packet-in events.
type PacketInHandler func(PacketIn)

// FlowEntry pairs a match with actions at a priority inside one table.
type FlowEntry struct {
	Table    int
	Priority int
	Cookie   uint64
	Match    Match
	Actions  []Action

	packets atomic.Uint64
	bytes   atomic.Uint64
}

// Stats returns the entry's packet and byte hit counters.
func (e *FlowEntry) Stats() (packets, bytes uint64) {
	return e.packets.Load(), e.bytes.Load()
}

func (e *FlowEntry) String() string {
	acts := make([]string, len(e.Actions))
	for i, a := range e.Actions {
		acts[i] = a.String()
	}
	p, b := e.Stats()
	return fmt.Sprintf("table=%d prio=%d cookie=%#x %v actions=%s n_packets=%d n_bytes=%d",
		e.Table, e.Priority, e.Cookie, e.Match, strings.Join(acts, ","), p, b)
}

// Switch is one Logical Switch Instance: a multi-table flow pipeline over a
// set of numbered ports.
type Switch struct {
	name string
	dpid uint64

	mu       sync.RWMutex
	ports    map[uint32]*netdev.Port
	tables   [][]*FlowEntry // per table, sorted by priority descending
	miss     MissPolicy
	onPktIn  PacketInHandler
	nTables  int
	flowGen  atomic.Uint64 // monotonic id for stable sort of equal priorities
	misses   atomic.Uint64
	pipeline atomic.Uint64 // packets processed
}

// New creates a switch with the default number of tables.
func New(name string, dpid uint64) *Switch { return NewTables(name, dpid, DefaultTables) }

// NewTables creates a switch with n flow tables (minimum 1).
func NewTables(name string, dpid uint64, n int) *Switch {
	if n < 1 {
		n = 1
	}
	return &Switch{
		name:    name,
		dpid:    dpid,
		ports:   make(map[uint32]*netdev.Port),
		tables:  make([][]*FlowEntry, n),
		nTables: n,
	}
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// DPID returns the datapath identifier.
func (s *Switch) DPID() uint64 { return s.dpid }

// NumTables returns the number of flow tables.
func (s *Switch) NumTables() int { return s.nTables }

// SetMissPolicy configures the table-miss behaviour.
func (s *Switch) SetMissPolicy(p MissPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.miss = p
}

// SetPacketInHandler installs the controller callback for packet-in events.
func (s *Switch) SetPacketInHandler(fn PacketInHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onPktIn = fn
}

// AddPort attaches a netdev port under the given OpenFlow port number
// (>= 1). Frames received on the port enter the pipeline at table 0.
func (s *Switch) AddPort(num uint32, p *netdev.Port) error {
	if num == 0 {
		return fmt.Errorf("vswitch: port number 0 is reserved")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.ports[num]; exists {
		return fmt.Errorf("vswitch: port %d already present on %s", num, s.name)
	}
	s.ports[num] = p
	p.SetHandler(func(f netdev.Frame) { s.process(num, f) })
	return nil
}

// RemovePort detaches a port from the switch.
func (s *Switch) RemovePort(num uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, exists := s.ports[num]
	if !exists {
		return fmt.Errorf("vswitch: port %d not present on %s", num, s.name)
	}
	p.SetHandler(nil)
	delete(s.ports, num)
	return nil
}

// Port returns the netdev port with the given number, or nil.
func (s *Switch) Port(num uint32) *netdev.Port {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ports[num]
}

// Ports returns the attached port numbers, sorted.
func (s *Switch) Ports() []uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	nums := make([]uint32, 0, len(s.ports))
	for n := range s.ports {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums
}

// AddFlow installs a flow entry. Entries in one table are matched in
// priority order (highest first); among equal priorities the oldest entry
// wins, as in OpenFlow.
func (s *Switch) AddFlow(e *FlowEntry) error {
	if e.Table < 0 || e.Table >= s.nTables {
		return fmt.Errorf("vswitch: table %d out of range [0,%d)", e.Table, s.nTables)
	}
	for _, a := range e.Actions {
		if g, ok := a.(GotoTableAction); ok && g.Table <= e.Table {
			return fmt.Errorf("vswitch: goto_table:%d from table %d must move forward", g.Table, e.Table)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := append(s.tables[e.Table], e)
	// Stable: sort.SliceStable keeps insertion order among equal priorities.
	sort.SliceStable(t, func(i, j int) bool { return t[i].Priority > t[j].Priority })
	s.tables[e.Table] = t
	return nil
}

// DeleteFlows removes all entries with the given cookie from every table and
// returns how many were removed.
func (s *Switch) DeleteFlows(cookie uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for ti, t := range s.tables {
		kept := t[:0]
		for _, e := range t {
			if e.Cookie == cookie {
				removed++
			} else {
				kept = append(kept, e)
			}
		}
		s.tables[ti] = kept
	}
	return removed
}

// DeleteAllFlows clears every table and returns the number of removed
// entries.
func (s *Switch) DeleteAllFlows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for ti, t := range s.tables {
		removed += len(t)
		s.tables[ti] = nil
	}
	return removed
}

// Flows returns all installed entries in table then priority order.
func (s *Switch) Flows() []*FlowEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*FlowEntry
	for _, t := range s.tables {
		out = append(out, t...)
	}
	return out
}

// Misses returns the count of table-miss packets.
func (s *Switch) Misses() uint64 { return s.misses.Load() }

// PacketsProcessed returns the count of frames that entered the pipeline.
func (s *Switch) PacketsProcessed() uint64 { return s.pipeline.Load() }

// process runs one received frame through the pipeline.
func (s *Switch) process(inPort uint32, f netdev.Frame) {
	s.pipeline.Add(1)
	var key flowKey
	if err := extractKey(f.Data, inPort, &key); err != nil {
		s.misses.Add(1)
		return
	}
	ctx := actionContext{data: f.Data, key: &key, gotoTable: 0}
	table := 0
	for table < s.nTables {
		entry := s.lookup(table, &key)
		if entry == nil {
			s.missAction(inPort, table, ctx.data)
			return
		}
		entry.packets.Add(1)
		entry.bytes.Add(uint64(len(ctx.data)))
		ctx.tableID = table
		ctx.gotoTable = -1
		for _, a := range entry.Actions {
			a.apply(s, &ctx)
		}
		if ctx.gotoTable < 0 {
			return // pipeline ends; Output actions already ran
		}
		table = ctx.gotoTable
	}
}

// lookup finds the highest-priority matching entry in a table.
func (s *Switch) lookup(table int, key *flowKey) *FlowEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.tables[table] {
		if e.Match.matches(key) {
			return e
		}
	}
	return nil
}

func (s *Switch) missAction(inPort uint32, table int, data []byte) {
	s.misses.Add(1)
	s.mu.RLock()
	policy := s.miss
	s.mu.RUnlock()
	if policy == MissController {
		s.packetIn(inPort, table, ReasonMiss, data)
	}
}

func (s *Switch) packetIn(inPort uint32, table int, reason PacketInReason, data []byte) {
	s.mu.RLock()
	fn := s.onPktIn
	s.mu.RUnlock()
	if fn != nil {
		d := make([]byte, len(data))
		copy(d, data)
		fn(PacketIn{InPort: inPort, TableID: table, Reason: reason, Data: d})
	}
}

// sendOut transmits data on the given port number. Unknown ports drop.
func (s *Switch) sendOut(num uint32, data []byte) {
	s.mu.RLock()
	p := s.ports[num]
	s.mu.RUnlock()
	if p == nil {
		return
	}
	d := make([]byte, len(data))
	copy(d, data)
	_ = p.Send(netdev.Frame{Data: d})
}

// flood transmits data on every port except the ingress.
func (s *Switch) flood(inPort uint32, data []byte) {
	s.mu.RLock()
	nums := make([]uint32, 0, len(s.ports))
	for n := range s.ports {
		if n != inPort {
			nums = append(nums, n)
		}
	}
	s.mu.RUnlock()
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	for _, n := range nums {
		s.sendOut(n, data)
	}
}

// Inject runs a frame through the pipeline as if it had been received on
// inPort. It is the switch-side half of an OpenFlow packet-out with
// in-port semantics.
func (s *Switch) Inject(inPort uint32, data []byte) {
	s.process(inPort, netdev.Frame{Data: data})
}

// Output transmits a frame directly out of a port, bypassing the pipeline:
// the switch-side half of a plain OpenFlow packet-out.
func (s *Switch) Output(port uint32, data []byte) {
	s.sendOut(port, data)
}

// Dump renders the flow tables like `ovs-ofctl dump-flows` for debugging.
func (s *Switch) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "switch %s dpid=%#x ports=%v misses=%d\n", s.name, s.dpid, s.Ports(), s.Misses())
	for _, e := range s.Flows() {
		fmt.Fprintf(&b, "  %v\n", e)
	}
	return b.String()
}
