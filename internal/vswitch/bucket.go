package vswitch

import (
	"fmt"

	"repro/internal/pkt"
)

// Consistent-hash flow steering for scaled-out stateful NFs.
//
// A logical NF running as N replicas owns the flow space in units of
// buckets: every transport 5-tuple maps to one of NumStateBuckets buckets,
// and a bucket is assigned to exactly one replica at a time. The bucket
// function is shared by three parties that must agree packet for packet:
// the SelectBucket steering action below, the NFs' flow-state export
// filters (which state moves when a bucket moves), and the orchestrator's
// rebalancer (which buckets move on scale-up/-down). It therefore hashes
// only the 5-tuple — not MACs or VLAN tags, which an NF cannot predict for
// the return direction — and runs the same hashMix rounds as the worker-RSS
// flow-key hash, but under a fixed seed: the RSS/cache seed is per-switch
// random, which is fine for steering packets to workers (any stable
// assignment works) but useless for parties that never see the switch.

// NumStateBuckets is the number of consistent-hash steering buckets. 64
// buckets over single-digit replica counts keeps the largest/smallest
// replica share within ~2x while bounding the steering table and the
// rebalance granularity.
const NumStateBuckets = 64

// bucketSeed is the fixed seed of the bucket hash (an arbitrary odd
// constant; only its stability matters).
const bucketSeed = 0x5ca1ab1e0ddba11d

// FlowBucket maps a transport 5-tuple to its steering bucket in
// [0, NumStateBuckets). The hash is SYMMETRIC — both directions of a
// connection land in the same bucket (endpoints are order-normalized
// before mixing, like symmetric RSS). That is load-bearing for stateful
// NFs whose two directions carry the same addresses (firewall conntrack:
// the reply to A:p→B:q is B:q→A:p, and the replica holding the conntrack
// entry must see it). NFs that rewrite addresses (NAT) get no such
// guarantee from the hash alone and instead constrain their external-port
// allocation so the rewritten return flow hashes back to the same bucket.
//
// Non-IP and portless flows collapse onto the all-zero tuple's bucket,
// which is exactly the stability the steering needs: such frames all land
// on one replica instead of spraying.
func FlowBucket(proto pkt.IPProtocol, src, dst pkt.Addr, srcPort, dstPort uint16) int {
	a := uint64(src.Uint32())<<16 | uint64(srcPort)
	b := uint64(dst.Uint32())<<16 | uint64(dstPort)
	if b < a {
		a, b = b, a
	}
	h := hashMix(bucketSeed, a)
	h = hashMix(h, b<<8|uint64(proto))
	return int(h % NumStateBuckets)
}

// SelectBucketAction steers the frame to one of several ports by the
// consistent-hash bucket of its 5-tuple: the scale-out fan-out installed in
// place of a plain Output when the destination NF runs as multiple
// replicas. The action recomputes the bucket per packet from the live flow
// key, so it stays correct under microflow-cache replay (replay re-executes
// the action list for every packet of the cached flow).
type SelectBucketAction struct {
	// Ports maps bucket index -> output port; must have NumStateBuckets
	// entries.
	Ports [NumStateBuckets]uint32
}

// SelectBucket builds the action from a bucket->port table.
func SelectBucket(ports [NumStateBuckets]uint32) Action {
	return SelectBucketAction{Ports: ports}
}

func (a SelectBucketAction) apply(sw *Switch, ctx *actionContext) {
	b := FlowBucket(ctx.key.ipProto, ctx.key.ipSrc, ctx.key.ipDst, ctx.key.l4Src, ctx.key.l4Dst)
	sw.outputCtx(a.Ports[b], ctx)
}

func (a SelectBucketAction) String() string {
	// Render the distinct ports with their bucket counts, not 64 entries.
	counts := make(map[uint32]int)
	order := make([]uint32, 0, 4)
	for _, p := range a.Ports {
		if counts[p] == 0 {
			order = append(order, p)
		}
		counts[p]++
	}
	s := "select_bucket:"
	for i, p := range order {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d(x%d)", p, counts[p])
	}
	return s
}
