package vswitch

import (
	"testing"

	"repro/internal/netdev"
)

func cacheStats(t *testing.T, sw *Switch) CacheStats {
	t.Helper()
	return sw.CacheStats()
}

func TestCacheHitMissCounters(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 2)
	mustAdd(t, sw, &FlowEntry{Match: MatchAll().WithInPort(1), Actions: []Action{Output(2)}})
	data := frame(t, 0, 80)
	for i := 0; i < 5; i++ {
		if err := hosts[0].Send(netdev.Frame{Data: data}); err != nil {
			t.Fatal(err)
		}
		if _, ok := hosts[1].TryRecv(); !ok {
			t.Fatalf("frame %d not forwarded", i)
		}
	}
	cs := cacheStats(t, sw)
	if cs.Misses != 1 || cs.Hits != 4 {
		t.Errorf("cache = %d hits / %d misses, want 4/1", cs.Hits, cs.Misses)
	}
	if cs.Entries != 1 {
		t.Errorf("entries = %d, want 1", cs.Entries)
	}
	if !cs.Enabled {
		t.Error("cache should default to enabled")
	}
	if got := cs.HitRate(); got != 0.8 {
		t.Errorf("hit rate = %v, want 0.8", got)
	}
}

func TestCacheDistinctMicroflows(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 2)
	mustAdd(t, sw, &FlowEntry{Match: MatchAll(), Actions: []Action{Output(2)}})
	// Two different destination ports = two microflows = two slow paths.
	for _, dst := range []uint16{80, 443, 80, 443} {
		_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, dst)})
		hosts[1].TryRecv()
	}
	cs := cacheStats(t, sw)
	if cs.Misses != 2 || cs.Hits != 2 {
		t.Errorf("cache = %d hits / %d misses, want 2/2", cs.Hits, cs.Misses)
	}
	if cs.Entries != 2 {
		t.Errorf("entries = %d, want 2", cs.Entries)
	}
}

func TestCacheInvalidationOnFlowMod(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 3)
	mustAdd(t, sw, &FlowEntry{Priority: 1, Cookie: 1, Match: MatchAll(), Actions: []Action{Output(2)}})
	data := frame(t, 0, 80)
	_ = hosts[0].Send(netdev.Frame{Data: data}) // populate the cache
	if _, ok := hosts[1].TryRecv(); !ok {
		t.Fatal("baseline flow not forwarding")
	}
	// A higher-priority flow must take over immediately: the cached
	// verdict (output:2) may not be served again.
	mustAdd(t, sw, &FlowEntry{Priority: 10, Cookie: 2, Match: MatchAll(), Actions: []Action{Output(3)}})
	_ = hosts[0].Send(netdev.Frame{Data: data})
	if _, ok := hosts[2].TryRecv(); !ok {
		t.Fatal("stale cached verdict served after AddFlow")
	}
	if _, ok := hosts[1].TryRecv(); ok {
		t.Fatal("old path also fired after AddFlow")
	}
	// Deleting the override must fall back to the baseline.
	if n := sw.DeleteFlows(2); n != 1 {
		t.Fatalf("DeleteFlows removed %d, want 1", n)
	}
	_ = hosts[0].Send(netdev.Frame{Data: data})
	if _, ok := hosts[1].TryRecv(); !ok {
		t.Fatal("stale cached verdict served after DeleteFlows")
	}
	cs := cacheStats(t, sw)
	if cs.Generation < 2 {
		t.Errorf("generation = %d, want >= 2 after two flow-mods", cs.Generation)
	}
}

func TestCacheInvalidationOnPortChange(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 2)
	mustAdd(t, sw, &FlowEntry{Match: MatchAll(), Actions: []Action{Output(2)}})
	data := frame(t, 0, 80)
	_ = hosts[0].Send(netdev.Frame{Data: data})
	gen := sw.CacheStats().Generation
	host3, swSide := netdev.Veth("host3", "sw3")
	if err := sw.AddPort(3, swSide); err != nil {
		t.Fatal(err)
	}
	_ = host3 // attached only to provoke invalidation
	if got := sw.CacheStats().Generation; got <= gen {
		t.Errorf("generation = %d after AddPort, want > %d", got, gen)
	}
	gen = sw.CacheStats().Generation
	if err := sw.RemovePort(3); err != nil {
		t.Fatal(err)
	}
	if got := sw.CacheStats().Generation; got <= gen {
		t.Errorf("generation = %d after RemovePort, want > %d", got, gen)
	}
	// The datapath still works after the churn.
	_ = hosts[0].Send(netdev.Frame{Data: data})
	if _, ok := hosts[1].TryRecv(); !ok {
		t.Error("forwarding broken after port churn")
	}
}

func TestCacheDisabled(t *testing.T) {
	sw := New("lsi", 1)
	sw.SetCacheEnabled(false)
	hosts := rig(t, sw, 2)
	mustAdd(t, sw, &FlowEntry{Match: MatchAll(), Actions: []Action{Output(2)}})
	data := frame(t, 0, 80)
	for i := 0; i < 3; i++ {
		_ = hosts[0].Send(netdev.Frame{Data: data})
		if _, ok := hosts[1].TryRecv(); !ok {
			t.Fatalf("frame %d not forwarded with cache off", i)
		}
	}
	cs := cacheStats(t, sw)
	if cs.Hits != 0 || cs.Misses != 0 || cs.Entries != 0 {
		t.Errorf("disabled cache recorded activity: %+v", cs)
	}
	if cs.Enabled {
		t.Error("Enabled = true after SetCacheEnabled(false)")
	}
}

func TestCachedMissVerdictStillPuntsAndCounts(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 1)
	var events int
	sw.SetPacketInHandler(func(PacketIn) { events++ })
	sw.SetMissPolicy(MissController)
	data := frame(t, 0, 80)
	for i := 0; i < 3; i++ {
		_ = hosts[0].Send(netdev.Frame{Data: data})
	}
	if events != 3 {
		t.Errorf("packet-ins = %d, want 3 (cached miss must still punt)", events)
	}
	if sw.Misses() != 3 {
		t.Errorf("table misses = %d, want 3", sw.Misses())
	}
	cs := cacheStats(t, sw)
	if cs.Hits != 2 || cs.Misses != 1 {
		t.Errorf("cache = %d hits / %d misses, want 2/1", cs.Hits, cs.Misses)
	}
	// Installing a flow must invalidate the cached miss verdict.
	mustAdd(t, sw, &FlowEntry{Match: MatchAll(), Actions: []Action{ToController()}})
	_ = hosts[0].Send(netdev.Frame{Data: data})
	if events != 4 {
		t.Errorf("packet-ins = %d, want 4", events)
	}
	if sw.Misses() != 3 {
		t.Errorf("table misses = %d after flow install, want still 3", sw.Misses())
	}
}

func TestCacheReplayKeepsFlowStats(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 2)
	e := &FlowEntry{Match: MatchAll().WithInPort(1), Actions: []Action{Output(2)}}
	mustAdd(t, sw, e)
	data := frame(t, 0, 80)
	for i := 0; i < 5; i++ {
		_ = hosts[0].Send(netdev.Frame{Data: data})
		hosts[1].TryRecv()
	}
	p, b := e.Stats()
	if p != 5 || b != uint64(5*len(data)) {
		t.Errorf("entry stats = %d pkts %d bytes, want 5/%d (replay must count)", p, b, 5*len(data))
	}
}

func TestCacheMultiTableReplay(t *testing.T) {
	// A cached verdict spanning GotoTable + SetMetadata + PushVLAN must
	// replay identically to the slow path.
	sw := New("lsi", 1)
	hosts := rig(t, sw, 2)
	mustAdd(t, sw, &FlowEntry{Table: 0, Match: MatchAll().WithInPort(1),
		Actions: []Action{SetMetadata(0x5, 0xff), GotoTable(1)}})
	mustAdd(t, sw, &FlowEntry{Table: 1, Match: MatchAll().WithMetadata(0x5, 0xff),
		Actions: []Action{PushVLAN(42), Output(2)}})
	data := frame(t, 0, 80)
	var first, second []byte
	_ = hosts[0].Send(netdev.Frame{Data: data})
	if f, ok := hosts[1].TryRecv(); ok {
		first = f.Data
	} else {
		t.Fatal("slow path did not deliver")
	}
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)})
	if f, ok := hosts[1].TryRecv(); ok {
		second = f.Data
	} else {
		t.Fatal("cached replay did not deliver")
	}
	if string(first) != string(second) {
		t.Error("replay produced different bytes than the slow path")
	}
	if cs := cacheStats(t, sw); cs.Hits != 1 {
		t.Errorf("hits = %d, want 1", cs.Hits)
	}
}
