package vswitch

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netdev"
	"repro/internal/pkt"
)

// The worker pool is the per-core parallel mode of the datapath. Each worker
// is a run-to-completion goroutine fed by its own lock-free ring; received
// frames are steered to a worker by flow-key hash, RSS-style, so every
// packet of a microflow is processed by the same worker — which also owns
// that flow's cache partition (steering index and partition index are the
// same hash mod N), its own scratch state and its own counter cache lines.
// Nothing per-flow is ever shared between cores.
//
// Bursts are first-class end to end: steerBatch groups a received burst by
// destination worker and enqueues each group with one batched ring operation
// and at most one wakeup; the worker drains up to workerBurst items per
// iteration with one batched pop, amortizes the cache-generation load over
// the burst, and coalesces its output per egress port, flushing each port
// with a single SendBatch (see txcoalesce.go).
//
// Ownership: the steering step copies the frame into a pool-backed buffer
// (the sender's buffer is only valid during the Send call), and the worker
// recycles it after the pipeline finishes — every egress path (sendOut, TX
// coalescing, packet-in) copies again, so the ring buffer never escapes.

// workerRingLen is the per-worker RX ring capacity, sized like a NIC RX
// descriptor ring.
const workerRingLen = 1024

// workerBurst is the largest batch a worker pops per iteration, and the
// chunk size of batched steering — the software analogue of a NIC RX burst.
const workerBurst = 64

// steerRetries bounds how many scheduler yields a port-RX steer spends
// waiting for ring space before tail-dropping. A busy-but-alive worker
// drains within a yield or two (the retry is what lets a single-CPU host
// absorb a burst instead of dropping it wholesale); only a worker that is
// genuinely stuck — blocked in an NF, livelocked — exhausts the budget.
// The Inject backpressure path spins the same budget, then parks on the
// worker's space channel instead of burning the core (see pushWait).
const steerRetries = 128

// idleSpin is how many empty polls a worker makes before parking. Under
// bursty offered load the gap between bursts is usually shorter than a
// park/wake round trip; a bounded spin absorbs it, and a genuinely idle
// worker still parks after idleSpin yields instead of burning its core.
const idleSpin = 64

// burstBuckets are the upper bounds of the burst-size histogram buckets:
// a drained burst of n frames lands in the first bucket with bound >= n.
// Exported for metric labelling as BurstBuckets.
var burstBuckets = [...]int{1, 2, 4, 8, 16, 32, 64}

// BurstBuckets returns the upper bounds of the per-worker burst-size
// histogram buckets reported in WorkerStats.BurstHist.
func BurstBuckets() []int {
	out := make([]int, len(burstBuckets))
	copy(out, burstBuckets[:])
	return out
}

// burstBucket maps a burst size in [1, workerBurst] to its histogram index:
// sizes 1,2 get their own bucket, then powers of two.
func burstBucket(n int) int {
	return bits.Len(uint(n - 1))
}

// workerItem is one steered frame: the key is parsed and hashed once on the
// producer side (steering needs the hash anyway), so the worker starts
// straight at the cache lookup.
type workerItem struct {
	key    flowKey
	hash   uint64
	inPort uint32
	data   []byte // private copy, recycled by the worker via releaseData
	// shared is the reference-counted chunk buffer data points into when the
	// frame arrived through batched steering; nil means data is a private
	// frame-pool buffer (per-frame steer, jumbo frames).
	shared *sharedBuf
}

// releaseData recycles the item's frame buffer once the pipeline is done
// with it: shared chunk buffers drop a reference, private buffers go back
// to the frame pool.
func (it *workerItem) releaseData() {
	if it.shared != nil {
		it.shared.release()
		return
	}
	pkt.PutBuffer(it.data)
}

type dpWorker struct {
	id   int
	ring *netdev.Ring[workerItem]
	// wake (capacity 1) plus the parked flag implement sleep/wakeup without
	// busy-spinning: the worker publishes parked=true, rechecks the ring,
	// then blocks; a producer that observes parked=true after its push
	// drops a token in the channel. Sequentially consistent atomics make a
	// lost wakeup impossible.
	wake   chan struct{}
	parked atomic.Bool
	// space (capacity 1) plus the waiters count implement the reverse
	// notification: a backpressured producer (Inject) that finds the ring
	// full increments waiters and blocks on space; the worker, after each
	// burst, drops a token when waiters is non-zero. The producer re-checks
	// the ring between increment and block, so a token can never be missed
	// while space remains unclaimed (see pushWait for the full protocol).
	space   chan struct{}
	waiters atomic.Int32
	qdrops  atomic.Uint64 // frames tail-dropped because the ring was full
	ctrs    dpCounters
	sc      dpScratch
	tx      txCoalescer
	// burstHist counts drained bursts by size bucket (see burstBuckets).
	burstHist [len(burstBuckets)]atomic.Uint64
	burst     [workerBurst]workerItem // pop buffer, owned by the worker
}

type workerPool struct {
	workers []*dpWorker
	done    chan struct{}
	wg      sync.WaitGroup
}

// startWorkers builds the pool and launches the worker goroutines. Called
// once from NewOptions before the switch is visible to any sender.
func (s *Switch) startWorkers(n int) {
	p := &workerPool{done: make(chan struct{})}
	for i := 0; i < n; i++ {
		w := &dpWorker{
			id:    i,
			ring:  netdev.NewRing[workerItem](workerRingLen),
			wake:  make(chan struct{}, 1),
			space: make(chan struct{}, 1),
		}
		w.sc.tx = &w.tx
		p.workers = append(p.workers, w)
	}
	s.workers = p.workers
	s.pool.Store(p)
	for _, w := range p.workers {
		p.wg.Add(1)
		go func(w *dpWorker) {
			defer p.wg.Done()
			w.loop(s, p.done)
		}(w)
	}
}

// Close stops the datapath workers, processing anything still queued. It is
// a no-op on a synchronous switch and idempotent otherwise. Frames steered
// concurrently with Close are either completed here or processed
// synchronously by their sender once the pool pointer is gone.
func (s *Switch) Close() {
	p := s.pool.Swap(nil)
	if p == nil {
		return
	}
	close(p.done)
	p.wg.Wait()
	// A producer that loaded the pool pointer just before the swap may have
	// pushed after its worker drained; the workers are gone, so finish
	// those frames inline.
	for _, w := range p.workers {
		w.drain(s)
		// Belt and suspenders: the exiting worker already flushed its
		// waiters, but a producer racing the pool swap may have parked
		// after that. It re-checks the pool on wake and falls back inline.
		w.flushWaiters()
	}
}

// wakeIfParked nudges the worker if it published parked=true; the capacity-1
// channel makes redundant nudges free.
func (w *dpWorker) wakeIfParked() {
	if w.parked.Load() {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// signalSpace hands a blocked backpressured producer its wakeup token.
func (w *dpWorker) signalSpace() {
	if w.waiters.Load() != 0 {
		select {
		case w.space <- struct{}{}:
		default:
		}
	}
}

// flushWaiters releases every producer still parked on the space channel;
// called on worker exit so Close never strands an Inject caller.
func (w *dpWorker) flushWaiters() {
	for w.waiters.Load() != 0 {
		select {
		case w.space <- struct{}{}:
		default:
			runtime.Gosched()
		}
	}
}

// steer parses, hashes and enqueues one received frame to its worker. With
// backpressure false (port RX) a full ring tail-drops the frame, as a NIC
// RX ring would; with backpressure true (Inject) the enqueue spins briefly,
// then parks until the worker signals space, so control-plane packet-outs
// are neither lost nor allowed to burn a core against a stuck worker.
func (s *Switch) steer(p *workerPool, inPort uint32, data []byte, backpressure bool) {
	var it workerItem
	if err := extractKey(data, inPort, &it.key); err != nil {
		// Malformed frames are counted at the steering stage against the
		// sender-context lane; they still count as received.
		s.syncCtrs.pipeline.Add(1)
		s.syncCtrs.malformed.Add(1)
		s.syncCtrs.drops.Add(1)
		return
	}
	it.hash = it.key.hash(s.cache.seed)
	w := p.workers[it.hash%uint64(len(p.workers))]
	it.inPort = inPort
	it.data = pkt.GetBuffer(len(data))
	copy(it.data, data)
	if w.ring.TryPush(it) {
		w.wakeIfParked()
		return
	}
	if !backpressure {
		tries := 0
		for !w.ring.TryPush(it) {
			tries++
			if tries > steerRetries {
				w.qdrops.Add(1)
				s.syncCtrs.drops.Add(1)
				pkt.PutBuffer(it.data)
				return
			}
			// The ring is full, so the worker has work: make sure it is
			// awake, then give it the CPU.
			w.wakeIfParked()
			runtime.Gosched()
		}
		w.wakeIfParked()
		return
	}
	s.pushWait(p, w, it)
}

// pushWait is the backpressured enqueue behind Inject: a bounded spin (the
// same budget port RX gets before tail-dropping), then park on the worker's
// space channel until a burst completes. The waiters increment happens
// before the ring re-check, and the worker checks waiters after every
// burst, so the token cannot be lost: if the push fails the ring was full,
// meaning the worker still has at least one burst to run — and therefore
// one signalSpace still to issue.
func (s *Switch) pushWait(p *workerPool, w *dpWorker, it workerItem) {
	for tries := 0; tries < steerRetries; tries++ {
		w.wakeIfParked()
		runtime.Gosched()
		if w.ring.TryPush(it) {
			w.wakeIfParked()
			return
		}
	}
	for {
		w.waiters.Add(1)
		if w.ring.TryPush(it) {
			w.waiters.Add(-1)
			w.wakeIfParked()
			return
		}
		if s.pool.Load() != p {
			// The pool closed while we were waiting for ring space: the
			// workers are gone and the ring will never drain, so finish the
			// frame in this goroutine instead of parking forever.
			w.waiters.Add(-1)
			sc := scratchPool.Get().(*dpScratch)
			sc.key = it.key
			s.syncCtrs.pipeline.Add(1)
			s.runKeyed(it.inPort, it.data, it.hash, &s.syncCtrs, sc)
			scratchPool.Put(sc)
			it.releaseData()
			return
		}
		w.wakeIfParked()
		<-w.space
		w.waiters.Add(-1)
	}
}

// loop is the worker body: pop a burst, run it to completion, recycle;
// spin briefly when empty, park when genuinely idle.
func (w *dpWorker) loop(s *Switch, done <-chan struct{}) {
	spins := 0
	for {
		n := w.ring.TryPopBatch(w.burst[:])
		if n == 0 {
			if spins < idleSpin {
				// Adaptive idle: under bursty load the next burst usually
				// lands within a few yields; spinning past it skips a full
				// park/wake round trip per burst.
				spins++
				runtime.Gosched()
				continue
			}
			w.parked.Store(true)
			// Recheck after publishing parked: a producer that pushed
			// before the store sees parked=false only if we also see its
			// item here.
			if n = w.ring.TryPopBatch(w.burst[:]); n == 0 {
				select {
				case <-w.wake:
					w.parked.Store(false)
					spins = 0
					continue
				case <-done:
					w.parked.Store(false)
					w.drain(s)
					w.flushWaiters()
					return
				}
			}
			w.parked.Store(false)
		}
		spins = 0
		w.execBurst(s, w.burst[:n])
	}
}

// drain processes everything left in the ring.
func (w *dpWorker) drain(s *Switch) {
	for {
		n := w.ring.TryPopBatch(w.burst[:])
		if n == 0 {
			return
		}
		w.execBurst(s, w.burst[:n])
	}
}

// execBurst runs one drained burst to completion with this worker's
// counters and scratch: the cache generation is loaded once for the whole
// burst (each packet's verdict still snapshots a complete table state — the
// staleness window grows from one packet to at most one burst, and a
// verdict recorded under a superseded generation is never served afterward),
// output is coalesced per egress port and flushed at the end, and each ring
// buffer is recycled as its frame finishes. The latency histogram samples
// one burst whenever the burst crosses a sampling boundary, recording the
// per-frame average.
func (w *dpWorker) execBurst(s *Switch, items []workerItem) {
	n := uint64(len(items))
	w.burstHist[burstBucket(len(items))].Add(1)
	base := w.ctrs.pipeline.Add(n)
	cacheOn := s.cache.enabled.Load()
	var gen uint64
	if cacheOn {
		gen = s.cache.gen.Load()
	}
	if (base-n)>>latencySampleShift != base>>latencySampleShift {
		start := time.Now()
		w.runBurst(s, items, gen, cacheOn)
		s.latency.Observe(time.Since(start).Seconds() / float64(n))
	} else {
		w.runBurst(s, items, gen, cacheOn)
	}
	w.signalSpace()
}

func (w *dpWorker) runBurst(s *Switch, items []workerItem, gen uint64, cacheOn bool) {
	// Frames steered from one chunk sit in consecutive ring slots, so their
	// shared chunk buffer is released with one run-length-batched atomic
	// instead of one per frame.
	var sb *sharedBuf
	var sbRefs int32
	for i := range items {
		it := &items[i]
		w.sc.key = it.key
		s.runKeyedGen(it.inPort, it.data, it.hash, &w.ctrs, &w.sc, gen, cacheOn)
		if it.shared != nil {
			if it.shared != sb {
				if sb != nil {
					sb.releaseN(sbRefs)
				}
				sb, sbRefs = it.shared, 0
			}
			sbRefs++
		} else {
			pkt.PutBuffer(it.data)
		}
	}
	if sb != nil {
		sb.releaseN(sbRefs)
	}
	w.sc.flushEntryStats()
	w.tx.flush()
}

// WorkerStats is the telemetry snapshot of one datapath worker.
type WorkerStats struct {
	// QueueLen is the instantaneous depth of the worker's RX ring.
	QueueLen int
	// QueueCap is the ring capacity.
	QueueCap int
	// Busy reports whether the worker was processing (not parked) at
	// snapshot time.
	Busy bool
	// QueueDrops counts frames tail-dropped because the ring was full.
	QueueDrops uint64
	// Packets counts frames this worker processed.
	Packets uint64
	// BurstHist counts drained bursts by size; BurstHist[i] is the number
	// of bursts of at most BurstBuckets()[i] frames (and more than the
	// previous bucket's bound).
	BurstHist []uint64
	// TxCoalesced counts frames transmitted through a coalesced egress
	// flush rather than an immediate per-frame send.
	TxCoalesced uint64
	// TxFlushes counts SendBatch calls issued by the TX coalescer; the
	// average coalesced batch is TxCoalesced / TxFlushes.
	TxFlushes uint64
}

// WorkerTelemetry snapshots per-worker queue depth and activity; nil for a
// synchronous switch.
func (s *Switch) WorkerTelemetry() []WorkerStats {
	if len(s.workers) == 0 {
		return nil
	}
	out := make([]WorkerStats, len(s.workers))
	for i, w := range s.workers {
		hist := make([]uint64, len(w.burstHist))
		for bi := range w.burstHist {
			hist[bi] = w.burstHist[bi].Load()
		}
		out[i] = WorkerStats{
			QueueLen:    w.ring.Len(),
			QueueCap:    w.ring.Cap(),
			Busy:        !w.parked.Load(),
			QueueDrops:  w.qdrops.Load(),
			Packets:     w.ctrs.pipeline.Load(),
			BurstHist:   hist,
			TxCoalesced: w.tx.coalesced.Load(),
			TxFlushes:   w.tx.flushes.Load(),
		}
	}
	return out
}
