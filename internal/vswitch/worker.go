package vswitch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netdev"
	"repro/internal/pkt"
)

// The worker pool is the per-core parallel mode of the datapath. Each worker
// is a run-to-completion goroutine fed by its own lock-free ring; received
// frames are steered to a worker by flow-key hash, RSS-style, so every
// packet of a microflow is processed by the same worker — which also owns
// that flow's cache partition (steering index and partition index are the
// same hash mod N), its own scratch state and its own counter cache lines.
// Nothing per-flow is ever shared between cores.
//
// Ownership: the steering step copies the frame into a pool-backed buffer
// (the sender's buffer is only valid during the Send call), and the worker
// recycles it after the pipeline finishes — every egress path (sendOut,
// packet-in) copies again, so the ring buffer never escapes.

// workerRingLen is the per-worker RX ring capacity, sized like a NIC RX
// descriptor ring.
const workerRingLen = 1024

// steerRetries bounds how many scheduler yields a port-RX steer spends
// waiting for ring space before tail-dropping. A busy-but-alive worker
// drains within a yield or two (the retry is what lets a single-CPU host
// absorb a burst instead of dropping it wholesale); only a worker that is
// genuinely stuck — blocked in an NF, livelocked — exhausts the budget.
const steerRetries = 128

// workerItem is one steered frame: the key is parsed and hashed once on the
// producer side (steering needs the hash anyway), so the worker starts
// straight at the cache lookup.
type workerItem struct {
	key    flowKey
	hash   uint64
	inPort uint32
	data   []byte // pool-backed private copy, recycled by the worker
}

type dpWorker struct {
	id   int
	ring *netdev.Ring[workerItem]
	// wake (capacity 1) plus the parked flag implement sleep/wakeup without
	// busy-spinning: the worker publishes parked=true, rechecks the ring,
	// then blocks; a producer that observes parked=true after its push
	// drops a token in the channel. Sequentially consistent atomics make a
	// lost wakeup impossible.
	wake   chan struct{}
	parked atomic.Bool
	qdrops atomic.Uint64 // frames tail-dropped because the ring was full
	ctrs   dpCounters
	sc     dpScratch
}

type workerPool struct {
	workers []*dpWorker
	done    chan struct{}
	wg      sync.WaitGroup
}

// startWorkers builds the pool and launches the worker goroutines. Called
// once from NewOptions before the switch is visible to any sender.
func (s *Switch) startWorkers(n int) {
	p := &workerPool{done: make(chan struct{})}
	for i := 0; i < n; i++ {
		p.workers = append(p.workers, &dpWorker{
			id:   i,
			ring: netdev.NewRing[workerItem](workerRingLen),
			wake: make(chan struct{}, 1),
		})
	}
	s.workers = p.workers
	s.pool.Store(p)
	for _, w := range p.workers {
		p.wg.Add(1)
		go func(w *dpWorker) {
			defer p.wg.Done()
			w.loop(s, p.done)
		}(w)
	}
}

// Close stops the datapath workers, processing anything still queued. It is
// a no-op on a synchronous switch and idempotent otherwise. Frames steered
// concurrently with Close are either completed here or processed
// synchronously by their sender once the pool pointer is gone.
func (s *Switch) Close() {
	p := s.pool.Swap(nil)
	if p == nil {
		return
	}
	close(p.done)
	p.wg.Wait()
	// A producer that loaded the pool pointer just before the swap may have
	// pushed after its worker drained; the workers are gone, so finish
	// those frames inline.
	for _, w := range p.workers {
		w.drain(s)
	}
}

// steer parses, hashes and enqueues one received frame to its worker. With
// backpressure false (port RX) a full ring tail-drops the frame, as a NIC
// RX ring would; with backpressure true (Inject) the enqueue retries until
// space frees up.
func (s *Switch) steer(p *workerPool, inPort uint32, data []byte, backpressure bool) {
	var it workerItem
	if err := extractKey(data, inPort, &it.key); err != nil {
		// Malformed frames are counted at the steering stage against the
		// sender-context lane; they still count as received.
		s.syncCtrs.pipeline.Add(1)
		s.syncCtrs.malformed.Add(1)
		s.syncCtrs.drops.Add(1)
		return
	}
	it.hash = it.key.hash(s.cache.seed)
	w := p.workers[it.hash%uint64(len(p.workers))]
	it.inPort = inPort
	it.data = pkt.GetBuffer(len(data))
	copy(it.data, data)
	tries := 0
	for !w.ring.TryPush(it) {
		if !backpressure {
			tries++
			if tries > steerRetries {
				w.qdrops.Add(1)
				s.syncCtrs.drops.Add(1)
				pkt.PutBuffer(it.data)
				return
			}
			// The ring is full, so the worker has work: make sure it is
			// awake, then give it the CPU.
			if w.parked.Load() {
				select {
				case w.wake <- struct{}{}:
				default:
				}
			}
			runtime.Gosched()
			continue
		}
		if s.pool.Load() != p {
			// The pool closed while we were waiting for ring space: the
			// workers are gone and the ring will never drain, so finish the
			// frame in this goroutine instead of spinning forever.
			sc := scratchPool.Get().(*dpScratch)
			sc.key = it.key
			s.syncCtrs.pipeline.Add(1)
			s.runKeyed(it.inPort, it.data, it.hash, &s.syncCtrs, sc)
			scratchPool.Put(sc)
			pkt.PutBuffer(it.data)
			return
		}
		if w.parked.Load() {
			select {
			case w.wake <- struct{}{}:
			default:
			}
		}
		runtime.Gosched()
	}
	if w.parked.Load() {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// loop is the worker body: pop, process, recycle; park when idle.
func (w *dpWorker) loop(s *Switch, done <-chan struct{}) {
	for {
		it, ok := w.ring.TryPop()
		if !ok {
			w.parked.Store(true)
			// Recheck after publishing parked: a producer that pushed
			// before the store sees parked=false only if we also see its
			// item here.
			if it, ok = w.ring.TryPop(); !ok {
				select {
				case <-w.wake:
					w.parked.Store(false)
					continue
				case <-done:
					w.parked.Store(false)
					w.drain(s)
					return
				}
			}
			w.parked.Store(false)
		}
		w.exec(s, it)
	}
}

// drain processes everything left in the ring.
func (w *dpWorker) drain(s *Switch) {
	for {
		it, ok := w.ring.TryPop()
		if !ok {
			return
		}
		w.exec(s, it)
	}
}

// exec runs one steered frame through the pipeline with this worker's
// counters and scratch, then recycles the ring buffer (every egress path
// copies, so the buffer cannot escape the pipeline).
func (w *dpWorker) exec(s *Switch, it workerItem) {
	w.sc.key = it.key
	if w.ctrs.pipeline.Add(1)&latencySampleMask == 0 {
		start := time.Now()
		s.runKeyed(it.inPort, it.data, it.hash, &w.ctrs, &w.sc)
		s.latency.Observe(time.Since(start).Seconds())
	} else {
		s.runKeyed(it.inPort, it.data, it.hash, &w.ctrs, &w.sc)
	}
	pkt.PutBuffer(it.data)
}

// WorkerStats is the telemetry snapshot of one datapath worker.
type WorkerStats struct {
	// QueueLen is the instantaneous depth of the worker's RX ring.
	QueueLen int
	// QueueCap is the ring capacity.
	QueueCap int
	// Busy reports whether the worker was processing (not parked) at
	// snapshot time.
	Busy bool
	// QueueDrops counts frames tail-dropped because the ring was full.
	QueueDrops uint64
	// Packets counts frames this worker processed.
	Packets uint64
}

// WorkerTelemetry snapshots per-worker queue depth and activity; nil for a
// synchronous switch.
func (s *Switch) WorkerTelemetry() []WorkerStats {
	if len(s.workers) == 0 {
		return nil
	}
	out := make([]WorkerStats, len(s.workers))
	for i, w := range s.workers {
		out[i] = WorkerStats{
			QueueLen:   w.ring.Len(),
			QueueCap:   w.ring.Cap(),
			Busy:       !w.parked.Load(),
			QueueDrops: w.qdrops.Load(),
			Packets:    w.ctrs.pipeline.Load(),
		}
	}
	return out
}
