package vswitch

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// The microflow cache memoizes the outcome of a complete multi-table
// pipeline traversal per exact flow key, in the spirit of Open vSwitch's
// exact-match cache: the first packet of a microflow walks the priority
// lists of every table (the slow path) and records the sequence of entries
// it matched; every later packet with the same key replays that sequence
// without any table lookup.
//
// Correctness rests on two facts. First, the matched-entry sequence is a
// pure function of the initial flow key and the table contents: actions
// mutate the packet (and reparse the key) deterministically, so identical
// input keys traverse identical entries. Second, every mutation of the
// lookup state (flow add/delete, port attach/detach) bumps a generation
// counter AFTER publishing the new state; a verdict records the generation
// read BEFORE its traversal and is only served while the two still agree,
// so a verdict computed against stale tables can never validate.

const (
	// cacheShardCount shards the exact-match map to keep concurrent
	// senders off each other's locks. Must be a power of two.
	cacheShardCount = 64
	// cacheShardMax bounds one shard; an overflowing shard is reset
	// wholesale (it is a cache — losing entries only costs a slow-path
	// walk).
	cacheShardMax = 4096
)

// cacheVerdict is the memoized outcome of one slow-path traversal.
type cacheVerdict struct {
	// gen is the invalidation generation the traversal ran under.
	gen uint64
	// entries are the flow entries matched, one per visited table.
	entries []*FlowEntry
	// missTable is the table that missed, or -1 when the pipeline ended
	// through its action list.
	missTable int
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[flowKey]*cacheVerdict
}

// microflowCache is the sharded exact-match flow cache of one Switch.
type microflowCache struct {
	seed    maphash.Seed
	gen     atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
	enabled atomic.Bool
	shards  [cacheShardCount]cacheShard
}

func newMicroflowCache() *microflowCache {
	c := &microflowCache{seed: maphash.MakeSeed()}
	c.enabled.Store(true)
	return c
}

func (c *microflowCache) shard(k flowKey) *cacheShard {
	return &c.shards[maphash.Comparable(c.seed, k)&(cacheShardCount-1)]
}

// get returns the cached verdict for k if it is still valid under gen.
func (c *microflowCache) get(k flowKey, gen uint64) *cacheVerdict {
	sh := c.shard(k)
	sh.mu.RLock()
	v := sh.m[k]
	sh.mu.RUnlock()
	if v == nil || v.gen != gen {
		return nil
	}
	return v
}

// put installs a verdict, resetting the shard when it outgrows its bound.
func (c *microflowCache) put(k flowKey, v *cacheVerdict) {
	sh := c.shard(k)
	sh.mu.Lock()
	if sh.m == nil || len(sh.m) >= cacheShardMax {
		sh.m = make(map[flowKey]*cacheVerdict, 64)
	}
	sh.m[k] = v
	sh.mu.Unlock()
}

// invalidate retires every cached verdict in O(1) by advancing the
// generation. Stale entries linger until overwritten or their shard resets,
// but can never be served again.
func (c *microflowCache) invalidate() {
	c.gen.Add(1)
}

func (c *microflowCache) entryCount() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// CacheStats is a snapshot of a switch's microflow-cache counters.
type CacheStats struct {
	// Hits counts packets fully served by a cached verdict.
	Hits uint64
	// Misses counts packets that took the slow path (counted only while
	// the cache is enabled).
	Misses uint64
	// Entries is the number of resident verdicts, valid or stale.
	Entries int
	// Generation is the current invalidation generation.
	Generation uint64
	// Enabled reports whether the cache is in use.
	Enabled bool
}

// HitRate returns the fraction of cache-eligible packets served from the
// cache, in [0,1].
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats returns a snapshot of the switch's microflow-cache counters.
func (s *Switch) CacheStats() CacheStats {
	return CacheStats{
		Hits:       s.cache.hits.Load(),
		Misses:     s.cache.misses.Load(),
		Entries:    s.cache.entryCount(),
		Generation: s.cache.gen.Load(),
		Enabled:    s.cache.enabled.Load(),
	}
}

// SetCacheEnabled switches the microflow cache on or off. Disabling sends
// every packet down the slow path; it exists for ablation benchmarks and
// debugging. Flow-mods keep advancing the generation while disabled, so
// re-enabling never serves verdicts from an older table state.
func (s *Switch) SetCacheEnabled(on bool) {
	s.cache.enabled.Store(on)
}
