package vswitch

import (
	"hash/maphash"
	"sync/atomic"
)

// The microflow cache memoizes the outcome of a complete multi-table
// pipeline traversal per exact flow key, in the spirit of Open vSwitch's
// exact-match cache: the first packet of a microflow walks the priority
// lists of every table (the slow path) and records the sequence of entries
// it matched; every later packet with the same key replays that sequence
// without any table lookup.
//
// Correctness rests on two facts. First, the matched-entry sequence is a
// pure function of the initial flow key and the table contents: actions
// mutate the packet (and reparse the key) deterministically, so identical
// input keys traverse identical entries. Second, every mutation of the
// lookup state (flow add/delete, port attach/detach) bumps a generation
// counter AFTER publishing the new state; a verdict records the generation
// read BEFORE its traversal and is only served while the two still agree,
// so a verdict computed against stale tables can never validate.
//
// The cache is split into partitions of fixed-size slot arrays read and
// written with single atomic pointer operations — no locks anywhere. A
// synchronous switch (Workers=0) uses one partition; a worker-pool switch
// uses exactly one partition per worker: both the RSS steering decision and
// the partition choice are hash%N with the same hash, so a given microflow's
// verdict is only ever read and written by the core that forwards the flow
// and its cache lines never bounce between cores.

const (
	// cacheSlotsSync is the slot count of a synchronous switch's single
	// partition; cacheSlotsWorker is the per-worker partition size. Both
	// must be powers of two. Like the OVS exact-match cache, a colliding
	// insert simply evicts the previous occupant — losing an entry only
	// costs a slow-path walk — so the cache is memory-bounded with no
	// eviction bookkeeping.
	cacheSlotsSync   = 8192
	cacheSlotsWorker = 4096
	// verdictMaxEntries bounds the matched-entry chain recorded inline in a
	// verdict. A traversal matching more tables than this is executed but
	// not memoized, keeping the verdict a fixed-size allocation.
	verdictMaxEntries = 8
)

// cacheVerdict is the memoized outcome of one slow-path traversal. Verdicts
// are immutable once published; the slow path records into per-lane scratch
// and put copies that into a fresh heap value.
type cacheVerdict struct {
	// gen is the invalidation generation the traversal ran under.
	gen uint64
	// key is the pristine input key; the map is keyed by the key's hash, so
	// a lookup must compare keys to reject the (rare) colliding microflow.
	key flowKey
	// missTable is the table that missed, or -1 when the pipeline ended
	// through its action list.
	missTable int
	// entries[:nEntries] are the flow entries matched, one per visited
	// table, inline so a verdict is one allocation.
	nEntries int
	entries  [verdictMaxEntries]*FlowEntry
}

// cachePart is one cache partition: a fixed open-addressed array of
// immutable verdicts, read and written with single atomic pointer
// operations — the datapath never takes a lock, and a /metrics scrape reads
// only the size gauge (maintained on empty-slot fills), never the slots.
type cachePart struct {
	slots []atomic.Pointer[cacheVerdict]
	size  atomic.Int64
}

// microflowCache is the partitioned exact-match flow cache of one Switch.
type microflowCache struct {
	// seed randomizes the flowKey hash per switch so adversarial microflow
	// sets cannot be precomputed to pile onto one partition.
	seed    uint64
	gen     atomic.Uint64
	enabled atomic.Bool
	parts   []cachePart
}

// newMicroflowCache builds the cache: one big partition for a synchronous
// switch, one partition per worker for a pool (nParts > 1).
func newMicroflowCache(nParts int) *microflowCache {
	slots := cacheSlotsSync
	if nParts > 1 {
		slots = cacheSlotsWorker
	} else {
		nParts = 1
	}
	c := &microflowCache{
		seed:  maphash.Comparable(maphash.MakeSeed(), uint64(0)),
		parts: make([]cachePart, nParts),
	}
	for i := range c.parts {
		c.parts[i].slots = make([]atomic.Pointer[cacheVerdict], slots)
	}
	c.enabled.Store(true)
	return c
}

// part picks the partition from the hash's low bits — the same bits RSS
// steering uses, so in worker mode part(hash) is always the partition owned
// by the worker processing the flow.
func (c *microflowCache) part(hash uint64) *cachePart {
	if len(c.parts) == 1 {
		return &c.parts[0]
	}
	return &c.parts[hash%uint64(len(c.parts))]
}

// slot indexes within a partition using the hash's high bits, which are
// independent of the low bits the partition choice consumed.
func (p *cachePart) slot(hash uint64) *atomic.Pointer[cacheVerdict] {
	return &p.slots[(hash>>32)&uint64(len(p.slots)-1)]
}

// get returns the cached verdict for the key (pre-hashed by the caller) if
// it is still valid under gen: one atomic load plus a key compare.
func (c *microflowCache) get(hash uint64, key *flowKey, gen uint64) *cacheVerdict {
	v := c.part(hash).slot(hash).Load()
	if v == nil || v.gen != gen || v.key != *key {
		return nil
	}
	return v
}

// put installs a copy of the scratch verdict, evicting whatever occupied
// the slot (verdicts are immutable, so a reader holding the old pointer
// just finishes its replay against the still-valid old verdict).
func (c *microflowCache) put(hash uint64, v *cacheVerdict) {
	nv := new(cacheVerdict)
	*nv = *v
	p := c.part(hash)
	if old := p.slot(hash).Swap(nv); old == nil {
		p.size.Add(1)
	}
}

// invalidate retires every cached verdict in O(1) by advancing the
// generation. Stale entries linger until overwritten, but can never be
// served again.
func (c *microflowCache) invalidate() {
	c.gen.Add(1)
}

// entryCount is O(partitions) atomic loads: the sizes are maintained on
// slot fills, so a /metrics scrape never touches the datapath slots.
func (c *microflowCache) entryCount() int {
	n := int64(0)
	for i := range c.parts {
		n += c.parts[i].size.Load()
	}
	return int(n)
}

// CacheStats is a snapshot of a switch's microflow-cache counters.
type CacheStats struct {
	// Hits counts packets fully served by a cached verdict.
	Hits uint64
	// Misses counts packets that took the slow path (counted only while
	// the cache is enabled).
	Misses uint64
	// Entries is the number of resident verdicts, valid or stale.
	Entries int
	// Generation is the current invalidation generation.
	Generation uint64
	// Enabled reports whether the cache is in use.
	Enabled bool
}

// HitRate returns the fraction of cache-eligible packets served from the
// cache, in [0,1].
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats returns a snapshot of the switch's microflow-cache counters.
// Hit and miss counts are aggregated from the per-lane datapath counters.
func (s *Switch) CacheStats() CacheStats {
	cs := CacheStats{
		Entries:    s.cache.entryCount(),
		Generation: s.cache.gen.Load(),
		Enabled:    s.cache.enabled.Load(),
	}
	s.eachCtrs(func(c *dpCounters) {
		cs.Hits += c.cacheHits.Load()
		cs.Misses += c.cacheMisses.Load()
	})
	return cs
}

// SetCacheEnabled switches the microflow cache on or off. Disabling sends
// every packet down the slow path; it exists for ablation benchmarks and
// debugging. Flow-mods keep advancing the generation while disabled, so
// re-enabling never serves verdicts from an older table state.
func (s *Switch) SetCacheEnabled(on bool) {
	s.cache.enabled.Store(on)
}
