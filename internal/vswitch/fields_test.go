package vswitch

import (
	"strings"
	"testing"

	"repro/internal/pkt"
)

func fullMatch() Match {
	return MatchAll().
		WithInPort(7).
		WithEthSrc(macA).WithEthDst(macB).
		WithEthType(pkt.EthernetTypeIPv4).
		WithVLAN(300).
		WithIPProto(pkt.IPProtocolUDP).
		WithIPSrc(ipA, 24).WithIPDst(ipB, 32).
		WithL4Src(53).WithL4Dst(5353).
		WithMetadata(0xbeef, 0xffff)
}

func TestFieldsRoundTrip(t *testing.T) {
	m := fullMatch()
	f := m.Fields()
	back := MatchFromFields(f)
	if back.String() != m.String() {
		t.Errorf("round trip:\n in  %v\n out %v", m, back)
	}
	// Pointer targets must be copies.
	*f.EthSrc = pkt.MAC{9, 9, 9, 9, 9, 9}
	*f.VLANID = 9
	f.IPSrc.Bits = 1
	if m.Fields().EthSrc.String() != macA.String() ||
		*m.Fields().VLANID != 300 || m.Fields().IPSrc.Bits != 24 {
		t.Error("Fields aliases internal state")
	}
	// Empty matches survive too.
	if MatchFromFields(MatchAll().Fields()).String() != "any" {
		t.Error("wildcard round trip")
	}
}

func TestMatchString(t *testing.T) {
	s := fullMatch().String()
	for _, want := range []string{
		"in_port=7", "dl_src=", "dl_dst=", "dl_type=IPv4", "dl_vlan=300",
		"nw_proto=UDP", "nw_src=10.0.0.1/24", "nw_dst=10.0.0.2/32",
		"tp_src=53", "tp_dst=5353", "metadata=0xbeef/0xffff",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("match string %q missing %q", s, want)
		}
	}
	if MatchAll().String() != "any" {
		t.Error("wildcard string")
	}
	if !strings.Contains(MatchAll().WithVLAN(VLANNone).String(), "vlan=none") {
		t.Error("vlan-none string")
	}
}

func TestActionStrings(t *testing.T) {
	cases := map[string]Action{
		"output:3":                     Output(3),
		"flood":                        Flood(),
		"controller":                   ToController(),
		"push_vlan:9":                  PushVLAN(9),
		"pop_vlan":                     PopVLAN(),
		"set_vlan:8":                   SetVLAN(8),
		"goto_table:2":                 GotoTable(2),
		"set_dl_src:02:00:00:00:00:0a": SetEthSrc(macA),
		"set_dl_dst:02:00:00:00:00:0b": SetEthDst(macB),
		"set_metadata:0x1/0xf":         SetMetadata(1, 0xf),
	}
	for want, a := range cases {
		if a.String() != want {
			t.Errorf("%T = %q, want %q", a, a.String(), want)
		}
	}
}

func TestSwitchAccessors(t *testing.T) {
	sw := NewTables("lsi-x", 0x77, 0) // clamps to 1 table
	if sw.Name() != "lsi-x" || sw.DPID() != 0x77 || sw.NumTables() != 1 {
		t.Errorf("accessors: %s %#x %d", sw.Name(), sw.DPID(), sw.NumTables())
	}
}
