package vswitch

import (
	"fmt"

	"repro/internal/pkt"
)

// Action is one packet-processing step of a flow entry. Actions run in list
// order; Output sends a copy of the frame as it is at that point, so
// modifications ordered before an Output are visible on the wire.
type Action interface {
	apply(sw *Switch, ctx *actionContext)
	String() string
}

// actionContext is the mutable per-packet state threaded through an action
// list. ctrs is the counter lane of the worker (or sender) processing the
// packet, so actions account drops against their own core's counters.
type actionContext struct {
	data      []byte
	key       *flowKey
	ctrs      *dpCounters
	tx        *txCoalescer // worker-lane TX coalescer; nil = send immediately
	tableID   int
	gotoTable int // -1 when the pipeline ends here
	dirty     bool
}

// reparse refreshes the flow key after a header modification.
func (c *actionContext) reparse(sw *Switch) {
	inPort, meta := c.key.inPort, c.key.metadata
	_ = extractKey(c.data, inPort, c.key)
	c.key.metadata = meta
}

// OutputAction sends the frame out of a switch port.
type OutputAction struct{ Port uint32 }

// Output is shorthand for OutputAction.
func Output(port uint32) Action { return OutputAction{Port: port} }

func (a OutputAction) apply(sw *Switch, ctx *actionContext) {
	sw.outputCtx(a.Port, ctx)
}

func (a OutputAction) String() string { return fmt.Sprintf("output:%d", a.Port) }

// FloodAction sends the frame out of every port except the ingress port.
type FloodAction struct{}

// Flood is shorthand for FloodAction.
func Flood() Action { return FloodAction{} }

func (a FloodAction) apply(sw *Switch, ctx *actionContext) {
	sw.flood(ctx.key.inPort, ctx)
}

func (a FloodAction) String() string { return "flood" }

// ControllerAction punts the frame to the controller as a packet-in.
type ControllerAction struct{}

// ToController is shorthand for ControllerAction.
func ToController() Action { return ControllerAction{} }

func (a ControllerAction) apply(sw *Switch, ctx *actionContext) {
	sw.packetIn(ctx.key.inPort, ctx.tableID, ReasonAction, ctx.data)
}

func (a ControllerAction) String() string { return "controller" }

// PushVLANAction tags the frame with an 802.1Q header.
type PushVLANAction struct{ VLANID uint16 }

// PushVLAN is shorthand for PushVLANAction.
func PushVLAN(id uint16) Action { return PushVLANAction{VLANID: id} }

func (a PushVLANAction) apply(sw *Switch, ctx *actionContext) {
	if len(ctx.data) < pkt.EthernetHeaderLen {
		return
	}
	out := make([]byte, len(ctx.data)+pkt.VLANHeaderLen)
	copy(out, ctx.data[:12])
	// TPID then TCI then the original EtherType and payload.
	out[12] = 0x81
	out[13] = 0x00
	out[14] = byte(a.VLANID >> 8 & 0x0f)
	out[15] = byte(a.VLANID)
	copy(out[16:], ctx.data[12:])
	ctx.data = out
	ctx.dirty = true
	ctx.reparse(sw)
}

func (a PushVLANAction) String() string { return fmt.Sprintf("push_vlan:%d", a.VLANID) }

// PopVLANAction strips the outermost 802.1Q tag, if present.
type PopVLANAction struct{}

// PopVLAN is shorthand for PopVLANAction.
func PopVLAN() Action { return PopVLANAction{} }

func (a PopVLANAction) apply(sw *Switch, ctx *actionContext) {
	d := ctx.data
	if len(d) < pkt.EthernetHeaderLen+pkt.VLANHeaderLen || d[12] != 0x81 || d[13] != 0x00 {
		return
	}
	out := make([]byte, len(d)-pkt.VLANHeaderLen)
	copy(out, d[:12])
	copy(out[12:], d[16:])
	ctx.data = out
	ctx.dirty = true
	ctx.reparse(sw)
}

func (a PopVLANAction) String() string { return "pop_vlan" }

// SetVLANAction rewrites the VLAN ID of an already-tagged frame.
type SetVLANAction struct{ VLANID uint16 }

// SetVLAN is shorthand for SetVLANAction.
func SetVLAN(id uint16) Action { return SetVLANAction{VLANID: id} }

func (a SetVLANAction) apply(sw *Switch, ctx *actionContext) {
	d := ctx.data
	if len(d) < pkt.EthernetHeaderLen+pkt.VLANHeaderLen || d[12] != 0x81 || d[13] != 0x00 {
		return
	}
	d[14] = d[14]&0xf0 | byte(a.VLANID>>8&0x0f)
	d[15] = byte(a.VLANID)
	ctx.dirty = true
	ctx.reparse(sw)
}

func (a SetVLANAction) String() string { return fmt.Sprintf("set_vlan:%d", a.VLANID) }

// SetEthSrcAction rewrites the source MAC.
type SetEthSrcAction struct{ MAC pkt.MAC }

// SetEthSrc is shorthand for SetEthSrcAction.
func SetEthSrc(m pkt.MAC) Action { return SetEthSrcAction{MAC: m} }

func (a SetEthSrcAction) apply(sw *Switch, ctx *actionContext) {
	if len(ctx.data) < pkt.EthernetHeaderLen {
		return
	}
	copy(ctx.data[6:12], a.MAC[:])
	ctx.key.ethSrc = a.MAC
	ctx.dirty = true
}

func (a SetEthSrcAction) String() string { return "set_dl_src:" + a.MAC.String() }

// SetEthDstAction rewrites the destination MAC.
type SetEthDstAction struct{ MAC pkt.MAC }

// SetEthDst is shorthand for SetEthDstAction.
func SetEthDst(m pkt.MAC) Action { return SetEthDstAction{MAC: m} }

func (a SetEthDstAction) apply(sw *Switch, ctx *actionContext) {
	if len(ctx.data) < pkt.EthernetHeaderLen {
		return
	}
	copy(ctx.data[0:6], a.MAC[:])
	ctx.key.ethDst = a.MAC
	ctx.dirty = true
}

func (a SetEthDstAction) String() string { return "set_dl_dst:" + a.MAC.String() }

// SetMetadataAction writes the pipeline metadata register under a mask. The
// register travels with the packet across GotoTable but is not serialized to
// the wire.
type SetMetadataAction struct{ Value, Mask uint64 }

// SetMetadata is shorthand for SetMetadataAction.
func SetMetadata(value, mask uint64) Action { return SetMetadataAction{Value: value, Mask: mask} }

func (a SetMetadataAction) apply(sw *Switch, ctx *actionContext) {
	ctx.key.metadata = ctx.key.metadata&^a.Mask | a.Value&a.Mask
}

func (a SetMetadataAction) String() string {
	return fmt.Sprintf("set_metadata:%#x/%#x", a.Value, a.Mask)
}

// GotoTableAction continues pipeline processing in a later table.
type GotoTableAction struct{ Table int }

// GotoTable is shorthand for GotoTableAction.
func GotoTable(t int) Action { return GotoTableAction{Table: t} }

func (a GotoTableAction) apply(sw *Switch, ctx *actionContext) {
	ctx.gotoTable = a.Table
}

func (a GotoTableAction) String() string { return fmt.Sprintf("goto_table:%d", a.Table) }
