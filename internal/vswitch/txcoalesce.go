package vswitch

import (
	"sync/atomic"

	"repro/internal/netdev"
	"repro/internal/pkt"
)

// TX coalescing: while a worker runs a burst to completion, Output actions
// do not transmit frame by frame — they append the frame to a per-egress-port
// batch owned by the worker, and the worker flushes every batch with one
// Port.SendBatch call at the end of the burst. The downstream hop (an NF tap,
// a peer switch's batch handler) then sees whole bursts instead of single
// frames, which is what keeps the burst shape intact across the service
// chain. Ordering: a flow's frames always run on the same worker (RSS
// steering), execute in ring order within a burst, and append to the egress
// batch in execution order, so per-flow FIFO survives coalescing; frames of
// one flow never split across concurrently-flushed batches because one worker
// owns the whole burst.
//
// The synchronous datapath (Workers == 0) and direct Output/packet-out paths
// have no coalescer (ctx.tx == nil) and transmit immediately, as before.

// maxTxPorts is the number of distinct egress ports one burst can coalesce
// for; a burst touching more flushes the accumulated batches early and keeps
// going. 16 covers every realistic service-chain fan-out.
const maxTxPorts = 16

// txPortBatch accumulates the frames of one burst bound for one egress port.
type txPortBatch struct {
	num    uint32
	port   *netdev.Port
	frames []netdev.Frame
}

// txCoalescer is the per-worker egress accumulator. It is only ever touched
// by its owning worker goroutine; the counters are atomic because telemetry
// snapshots them concurrently.
type txCoalescer struct {
	n       int // live entries in batches
	batches [maxTxPorts]txPortBatch

	coalesced atomic.Uint64 // frames transmitted through a batch flush
	flushes   atomic.Uint64 // SendBatch calls issued
}

// add appends one frame for the given egress port. The frame data is copied
// into a pool-backed buffer here (the pipeline's buffer is recycled when the
// burst item finishes), and ownership of the copy passes to the receiver at
// flush, exactly like sendOut's per-frame copy.
func (t *txCoalescer) add(num uint32, p *netdev.Port, data []byte) {
	d := pkt.GetBuffer(len(data))
	copy(d, data)
	for i := 0; i < t.n; i++ {
		if t.batches[i].num == num {
			t.batches[i].frames = append(t.batches[i].frames, netdev.Frame{Data: d})
			return
		}
	}
	if t.n == maxTxPorts {
		t.flush()
	}
	// Reuse the slot in place so the frames slice keeps its grown capacity;
	// steady state allocates nothing.
	b := &t.batches[t.n]
	t.n++
	b.num = num
	b.port = p
	b.frames = append(b.frames[:0], netdev.Frame{Data: d})
}

// flush transmits every accumulated batch, one SendBatch per egress port,
// and resets the coalescer for the next burst.
func (t *txCoalescer) flush() {
	for i := 0; i < t.n; i++ {
		b := &t.batches[i]
		if len(b.frames) > 0 {
			_, _ = b.port.SendBatch(b.frames)
			t.coalesced.Add(uint64(len(b.frames)))
			t.flushes.Add(1)
		}
		b.frames = b.frames[:0]
		b.port = nil
	}
	t.n = 0
}
