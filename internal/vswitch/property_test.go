package vswitch

import (
	"testing"
	"testing/quick"

	"repro/internal/netdev"
	"repro/internal/pkt"
)

// TestPropertyWildcardMatchesEverything: the zero Match must match any
// parseable frame key.
func TestPropertyWildcardMatchesEverything(t *testing.T) {
	f := func(srcIP, dstIP [4]byte, sp, dp uint16, vlan uint16, inPort uint32) bool {
		data, err := pkt.BuildFrame(pkt.FrameSpec{
			SrcMAC: macA, DstMAC: macB, VLANID: vlan % 4095,
			SrcIP: pkt.Addr(srcIP), DstIP: pkt.Addr(dstIP),
			SrcPort: sp, DstPort: dp, PayloadLen: 10,
		})
		if err != nil {
			return false
		}
		var k flowKey
		if err := extractKey(data, inPort%100+1, &k); err != nil {
			return false
		}
		return MatchAll().matches(&k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExtractKeyAgreesWithFullDecode: the fast key extractor must
// agree with the full packet decoder on every field it reports.
func TestPropertyExtractKeyAgreesWithFullDecode(t *testing.T) {
	f := func(srcIP, dstIP [4]byte, sp, dp uint16, vlan uint16, useTCP bool) bool {
		vlan %= 4095
		proto := pkt.IPProtocolUDP
		if useTCP {
			proto = pkt.IPProtocolTCP
		}
		data, err := pkt.BuildFrame(pkt.FrameSpec{
			SrcMAC: macA, DstMAC: macB, VLANID: vlan,
			SrcIP: pkt.Addr(srcIP), DstIP: pkt.Addr(dstIP), Proto: proto,
			SrcPort: sp, DstPort: dp, PayloadLen: 8,
		})
		if err != nil {
			return false
		}
		var k flowKey
		if err := extractKey(data, 1, &k); err != nil {
			return false
		}
		p := pkt.NewPacket(data, pkt.LayerTypeEthernet, pkt.Default)
		ip := p.Layer(pkt.LayerTypeIPv4).(*pkt.IPv4)
		if !k.isIP || k.ipSrc != ip.SrcIP || k.ipDst != ip.DstIP || k.ipProto != ip.Protocol {
			return false
		}
		if (vlan != 0) != k.hasVLAN {
			return false
		}
		if vlan != 0 && k.vlanID != vlan {
			return false
		}
		if !k.hasL4 || k.l4Src != sp || k.l4Dst != dp {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPushPopVLANIsIdentity: pushing then popping a VLAN tag through
// two pipeline stages restores the original frame bytes.
func TestPropertyPushPopVLANIsIdentity(t *testing.T) {
	f := func(id uint16, plen uint8) bool {
		id = id%4094 + 1
		orig, err := pkt.BuildFrame(pkt.FrameSpec{
			SrcMAC: macA, DstMAC: macB,
			SrcIP: ipA, DstIP: ipB,
			SrcPort: 9, DstPort: 10, PayloadLen: int(plen),
		})
		if err != nil {
			return false
		}
		sw := New("t", 1)
		sink, swp := netdev.Veth("sink", "sw")
		if sw.AddPort(2, swp) != nil {
			return false
		}
		in := netdev.NewPort("in")
		inSw := netdev.NewPort("insw")
		if netdev.Connect(in, inSw) != nil || sw.AddPort(1, inSw) != nil {
			return false
		}
		err = sw.AddFlow(&FlowEntry{
			Match:   MatchAll().WithInPort(1),
			Actions: []Action{PushVLAN(id), PopVLAN(), Output(2)},
		})
		if err != nil {
			return false
		}
		if in.Send(netdev.Frame{Data: orig}) != nil {
			return false
		}
		got, ok := sink.TryRecv()
		if !ok || len(got.Data) != len(orig) {
			return false
		}
		for i := range orig {
			if got.Data[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPriorityTotalOrder: for any pair of non-overlapping priority
// rules on the same field, the higher priority must always win.
func TestPropertyPriorityTotalOrder(t *testing.T) {
	f := func(pLow, pHigh uint8, dstPort uint16) bool {
		if pLow >= pHigh {
			pLow, pHigh = pHigh, pLow
			if pLow == pHigh {
				pHigh++
			}
		}
		sw := New("t", 1)
		sinkLow, a := netdev.Veth("l", "a")
		sinkHigh, b := netdev.Veth("h", "b")
		inHost, inSw := netdev.Veth("i", "isw")
		if sw.AddPort(1, inSw) != nil || sw.AddPort(2, a) != nil || sw.AddPort(3, b) != nil {
			return false
		}
		_ = sw.AddFlow(&FlowEntry{Priority: int(pLow), Match: MatchAll(), Actions: []Action{Output(2)}})
		_ = sw.AddFlow(&FlowEntry{Priority: int(pHigh), Match: MatchAll().WithL4Dst(dstPort), Actions: []Action{Output(3)}})
		data, err := pkt.BuildFrame(pkt.FrameSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: 1, DstPort: dstPort, PayloadLen: 4,
		})
		if err != nil {
			return false
		}
		if inHost.Send(netdev.Frame{Data: data}) != nil {
			return false
		}
		_, gotHigh := sinkHigh.TryRecv()
		_, gotLow := sinkLow.TryRecv()
		return gotHigh && !gotLow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
