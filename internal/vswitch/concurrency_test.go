package vswitch

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/netdev"
)

// TestConcurrentProcessAndFlowMods hammers the packet path from several
// senders while flow-mods churn the tables, then verifies (a) no torn reads
// (the race detector covers this) and (b) that no stale cached verdict
// survives the final flow state: once the override flow is gone for good,
// every probe must follow the baseline path.
func TestConcurrentProcessAndFlowMods(t *testing.T) {
	sw := New("lsi", 1)
	in, swIn := netdev.Veth("in", "sw-in")
	if err := sw.AddPort(1, swIn); err != nil {
		t.Fatal(err)
	}
	var base, override atomic.Uint64
	for num, counter := range map[uint32]*atomic.Uint64{2: &base, 3: &override} {
		host, swSide := netdev.Veth("host", "sw")
		c := counter
		host.SetHandler(func(netdev.Frame) { c.Add(1) })
		if err := sw.AddPort(num, swSide); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(t, sw, &FlowEntry{Priority: 1, Cookie: 1, Match: MatchAll(), Actions: []Action{Output(2)}})

	const (
		senders       = 4
		perSender     = 2000
		mutatorRounds = 500
	)
	data := frame(t, 0, 80)
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				_ = in.Send(netdev.Frame{Data: data})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < mutatorRounds; i++ {
			if err := sw.AddFlow(&FlowEntry{Priority: 10, Cookie: 2, Match: MatchAll(), Actions: []Action{Output(3)}}); err != nil {
				t.Error(err)
				return
			}
			sw.DeleteFlows(2)
		}
	}()
	wg.Wait()

	total := base.Load() + override.Load()
	if total != senders*perSender {
		t.Fatalf("delivered %d of %d frames (torn table read?)", total, senders*perSender)
	}
	if sw.PacketsProcessed() != senders*perSender {
		t.Fatalf("pipeline counter = %d, want %d", sw.PacketsProcessed(), senders*perSender)
	}

	// Final state: only the baseline remains. Any probe still steered to
	// port 3 would mean a stale cached verdict survived a flow-mod.
	overrideBefore := override.Load()
	baseBefore := base.Load()
	const probes = 200
	for i := 0; i < probes; i++ {
		_ = in.Send(netdev.Frame{Data: data})
	}
	if got := base.Load() - baseBefore; got != probes {
		t.Errorf("baseline received %d of %d probes", got, probes)
	}
	if got := override.Load() - overrideBefore; got != 0 {
		t.Errorf("%d probes steered by a stale cached verdict", got)
	}
}

// TestConcurrentPortChurn exercises the lock-free port snapshot: senders keep
// flooding while ports attach and detach.
func TestConcurrentPortChurn(t *testing.T) {
	sw := New("lsi", 1)
	in, swIn := netdev.Veth("in", "sw-in")
	if err := sw.AddPort(1, swIn); err != nil {
		t.Fatal(err)
	}
	sink, swSink := netdev.Veth("sink", "sw-sink")
	var got atomic.Uint64
	sink.SetHandler(func(netdev.Frame) { got.Add(1) })
	if err := sw.AddPort(2, swSink); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, sw, &FlowEntry{Match: MatchAll(), Actions: []Action{Flood()}})

	data := frame(t, 0, 80)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = in.Send(netdev.Frame{Data: data})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			h, s := netdev.Veth("churn", "sw-churn")
			if err := sw.AddPort(9, s); err != nil {
				t.Error(err)
				return
			}
			_ = sw.RemovePort(9)
			netdev.Disconnect(h)
		}
	}()
	wg.Wait()
	if got.Load() != 2000 {
		t.Errorf("stable sink received %d of 2000 flooded frames", got.Load())
	}
}
