package vswitch

import "repro/internal/pkt"

// Prefix is an exported IPv4 prefix for match (de)serialization.
type Prefix struct {
	Addr pkt.Addr
	Bits int
}

// Masked is an exported value/mask pair for metadata matches.
type Masked struct {
	Value, Mask uint64
}

// MatchFields is the exported, optional-field view of a Match, used by wire
// codecs (internal/openflow) and the traffic steering manager. Nil pointers
// are wildcards; InPort 0 is a wildcard.
type MatchFields struct {
	InPort   uint32
	EthSrc   *pkt.MAC
	EthDst   *pkt.MAC
	EthType  *pkt.EthernetType
	VLANID   *uint16
	IPProto  *pkt.IPProtocol
	IPSrc    *Prefix
	IPDst    *Prefix
	L4Src    *uint16
	L4Dst    *uint16
	Metadata *Masked
}

// Fields returns the exported view of the match. Pointer targets are copies;
// mutating them does not affect the match.
func (m Match) Fields() MatchFields {
	f := MatchFields{InPort: m.inPort}
	if m.ethSrc != nil {
		v := *m.ethSrc
		f.EthSrc = &v
	}
	if m.ethDst != nil {
		v := *m.ethDst
		f.EthDst = &v
	}
	if m.ethType != nil {
		v := *m.ethType
		f.EthType = &v
	}
	if m.vlanID != nil {
		v := *m.vlanID
		f.VLANID = &v
	}
	if m.ipProto != nil {
		v := *m.ipProto
		f.IPProto = &v
	}
	if m.ipSrc != nil {
		f.IPSrc = &Prefix{Addr: m.ipSrc.addr, Bits: m.ipSrc.bits}
	}
	if m.ipDst != nil {
		f.IPDst = &Prefix{Addr: m.ipDst.addr, Bits: m.ipDst.bits}
	}
	if m.l4Src != nil {
		v := *m.l4Src
		f.L4Src = &v
	}
	if m.l4Dst != nil {
		v := *m.l4Dst
		f.L4Dst = &v
	}
	if m.metadata != nil {
		f.Metadata = &Masked{Value: m.metadata.value, Mask: m.metadata.mask}
	}
	return f
}

// MatchFromFields builds a Match from its exported view.
func MatchFromFields(f MatchFields) Match {
	m := MatchAll()
	if f.InPort != 0 {
		m = m.WithInPort(f.InPort)
	}
	if f.EthSrc != nil {
		m = m.WithEthSrc(*f.EthSrc)
	}
	if f.EthDst != nil {
		m = m.WithEthDst(*f.EthDst)
	}
	if f.EthType != nil {
		m = m.WithEthType(*f.EthType)
	}
	if f.VLANID != nil {
		m = m.WithVLAN(*f.VLANID)
	}
	if f.IPProto != nil {
		m = m.WithIPProto(*f.IPProto)
	}
	if f.IPSrc != nil {
		m = m.WithIPSrc(f.IPSrc.Addr, f.IPSrc.Bits)
	}
	if f.IPDst != nil {
		m = m.WithIPDst(f.IPDst.Addr, f.IPDst.Bits)
	}
	if f.L4Src != nil {
		m = m.WithL4Src(*f.L4Src)
	}
	if f.L4Dst != nil {
		m = m.WithL4Dst(*f.L4Dst)
	}
	if f.Metadata != nil {
		m = m.WithMetadata(f.Metadata.Value, f.Metadata.Mask)
	}
	return m
}
