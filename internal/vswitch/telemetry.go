package vswitch

import "repro/internal/telemetry"

// Telemetry is the full observability snapshot of one switch: the per-LSI
// traffic counters, the microflow-cache state, per-table match counts and
// the sampled packet-latency histogram.
type Telemetry struct {
	// Name is the switch name.
	Name string
	// Rx counts frames that entered the pipeline.
	Rx uint64
	// Tx counts frames transmitted out of ports (a flood counts once per
	// egress port). Derived at snapshot time from the per-port netdev
	// counters the send path maintains anyway, so the packet path pays no
	// extra atomic for it; detached ports take their counts with them.
	Tx uint64
	// Drops counts frames discarded: unknown egress port, unparseable
	// frame, or a table miss under the drop policy.
	Drops uint64
	// Misses counts table-miss packets regardless of policy.
	Misses uint64
	// TableMatches holds, per table, how many packets matched an entry
	// there. Derived at snapshot time from the per-entry hit counters, so
	// the packet path pays nothing for it; entries deleted from a table
	// take their counts with them.
	TableMatches []uint64
	// Cache is the microflow-cache counter snapshot.
	Cache CacheStats
	// Latency is the sampled per-packet pipeline latency, in seconds. One
	// in 1024 packets is measured.
	Latency telemetry.HistogramSnapshot
}

// Telemetry snapshots the switch's counters. Safe to call concurrently with
// traffic.
func (s *Switch) Telemetry() Telemetry {
	t := Telemetry{
		Name:    s.name,
		Rx:      s.pipeline.Load(),
		Drops:   s.drops.Load(),
		Misses:  s.misses.Load(),
		Cache:   s.CacheStats(),
		Latency: s.latency.Snapshot(),
	}
	for _, p := range s.ports.Load().ports {
		t.Tx += p.Stats().TxPackets
	}
	tables := s.tables.Load().tables
	t.TableMatches = make([]uint64, len(tables))
	for ti, entries := range tables {
		for _, e := range entries {
			p, _ := e.Stats()
			t.TableMatches[ti] += p
		}
	}
	return t
}
