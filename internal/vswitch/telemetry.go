package vswitch

import "repro/internal/telemetry"

// Telemetry is the full observability snapshot of one switch: the per-LSI
// traffic counters, the microflow-cache state, per-table match counts, the
// sampled packet-latency histogram and — for a worker-pool switch — the
// per-worker queue state.
type Telemetry struct {
	// Name is the switch name.
	Name string
	// Rx counts frames that entered the pipeline, summed across datapath
	// lanes. Frames tail-dropped at a full worker ring are not included
	// (see Workers[].QueueDrops).
	Rx uint64
	// Tx counts frames transmitted out of ports (a flood counts once per
	// egress port). Derived at snapshot time from the per-port netdev
	// counters the send path maintains anyway, so the packet path pays no
	// extra atomic for it; detached ports take their counts with them.
	Tx uint64
	// Drops counts frames discarded: unknown egress port, malformed frame,
	// full worker ring, or a table miss under the drop policy.
	Drops uint64
	// Misses counts table-miss packets regardless of policy. Malformed
	// frames are not misses: they never consulted the tables.
	Misses uint64
	// Malformed counts received frames rejected by header parsing.
	Malformed uint64
	// TableMatches holds, per table, how many packets matched an entry
	// there. Derived at snapshot time from the per-entry hit counters, so
	// the packet path pays nothing for it; entries deleted from a table
	// take their counts with them.
	TableMatches []uint64
	// Cache is the microflow-cache counter snapshot.
	Cache CacheStats
	// Latency is the sampled per-packet pipeline latency, in seconds. One
	// in 1024 packets per lane is measured.
	Latency telemetry.HistogramSnapshot
	// Workers holds per-worker queue depth and activity; nil for a
	// synchronous switch.
	Workers []WorkerStats
}

// Telemetry snapshots the switch's counters. Safe to call concurrently with
// traffic; the per-lane datapath counters are aggregated here, at scrape
// time, so the packet path never shares counter cache lines across cores.
func (s *Switch) Telemetry() Telemetry {
	t := Telemetry{
		Name:    s.name,
		Cache:   s.CacheStats(),
		Latency: s.latency.Snapshot(),
		Workers: s.WorkerTelemetry(),
	}
	s.eachCtrs(func(c *dpCounters) {
		t.Rx += c.pipeline.Load()
		t.Drops += c.drops.Load()
		t.Misses += c.misses.Load()
		t.Malformed += c.malformed.Load()
	})
	for _, p := range s.ports.Load().ports {
		t.Tx += p.Stats().TxPackets
	}
	tables := s.tables.Load().tables
	t.TableMatches = make([]uint64, len(tables))
	for ti, entries := range tables {
		for _, e := range entries {
			p, _ := e.Stats()
			t.TableMatches[ti] += p
		}
	}
	return t
}
