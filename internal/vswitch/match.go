// Package vswitch implements the software switch used for every Logical
// Switch Instance (LSI) of the compute node.
//
// The switch follows the OpenFlow pipeline model: numbered flow tables hold
// prioritized flow entries, each pairing a Match against a list of Actions.
// Processing starts in table 0; a GotoTable action continues the pipeline in
// a later table, with a 64-bit metadata register carried between tables.
// A table miss invokes the configurable miss policy (drop, or punt to the
// controller as a packet-in).
//
// The per-packet path is lock-free: flow tables and ports are copy-on-write
// snapshots, and a sharded exact-match microflow cache (cache.go) memoizes
// the pipeline verdict per flow key, invalidated by generation on every
// flow-mod or port change.
package vswitch

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/pkt"
)

// VLANNone matches explicitly untagged traffic when set as MatchVLAN.
const VLANNone uint16 = 0xffff

// flowKey is the parsed header fields of one frame traversing the pipeline,
// extracted once per packet (in the spirit of gopacket's
// DecodingLayerParser: no allocation, fixed known layers).
type flowKey struct {
	inPort  uint32
	ethSrc  pkt.MAC
	ethDst  pkt.MAC
	hasVLAN bool
	vlanID  uint16
	ethType pkt.EthernetType // inner type when tagged
	isIP    bool
	ipSrc   pkt.Addr
	ipDst   pkt.Addr
	ipProto pkt.IPProtocol
	hasL4   bool
	l4Src   uint16
	l4Dst   uint16

	metadata uint64 // pipeline register, not parsed from the wire
}

// extractKey parses data into k. Parsing stops gracefully at truncated or
// non-IP packets; the corresponding has*/is* flags stay false.
func extractKey(data []byte, inPort uint32, k *flowKey) error {
	*k = flowKey{inPort: inPort}
	if len(data) < pkt.EthernetHeaderLen {
		return fmt.Errorf("vswitch: frame too short (%d bytes)", len(data))
	}
	copy(k.ethDst[:], data[0:6])
	copy(k.ethSrc[:], data[6:12])
	k.ethType = pkt.EthernetType(uint16(data[12])<<8 | uint16(data[13]))
	off := pkt.EthernetHeaderLen
	if k.ethType == pkt.EthernetTypeVLAN {
		if len(data) < off+pkt.VLANHeaderLen {
			return fmt.Errorf("vswitch: truncated VLAN tag")
		}
		k.hasVLAN = true
		k.vlanID = (uint16(data[off])<<8 | uint16(data[off+1])) & 0x0fff
		k.ethType = pkt.EthernetType(uint16(data[off+2])<<8 | uint16(data[off+3]))
		off += pkt.VLANHeaderLen
	}
	if k.ethType != pkt.EthernetTypeIPv4 || len(data) < off+pkt.IPv4HeaderLen {
		return nil
	}
	if data[off]>>4 != 4 {
		return nil
	}
	ihl := int(data[off]&0x0f) * 4
	if ihl < pkt.IPv4HeaderLen || len(data) < off+ihl {
		return nil
	}
	k.isIP = true
	k.ipProto = pkt.IPProtocol(data[off+9])
	copy(k.ipSrc[:], data[off+12:off+16])
	copy(k.ipDst[:], data[off+16:off+20])
	l4 := off + ihl
	switch k.ipProto {
	case pkt.IPProtocolUDP, pkt.IPProtocolTCP:
		if len(data) >= l4+4 {
			k.hasL4 = true
			k.l4Src = uint16(data[l4])<<8 | uint16(data[l4+1])
			k.l4Dst = uint16(data[l4+2])<<8 | uint16(data[l4+3])
		}
	}
	return nil
}

// hashMix folds one 64-bit word into the running hash state with a
// multiply-xorshift round (the splitmix64 finisher). Distribution only has
// to be good enough for cache partitioning and RSS steering, so a few
// multiplies beat a full generic maphash over the ~64-byte struct — the
// generic hash was ~19% of the cached hit path.
func hashMix(h, v uint64) uint64 {
	h ^= v
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h
}

// hash collapses the key into 6 packed words, folds them pairwise (rotating
// one of each pair so differing bits cannot cancel trivially) and mixes the
// three folded words under the given seed. Identical keys always collide
// (required: the microflow cache is keyed by this hash and verified against
// the stored key); the multiply chain is the latency-critical part of the
// cached hit path, so three rounds, not six.
func (k *flowKey) hash(seed uint64) uint64 {
	w0 := uint64(k.inPort) | uint64(k.ethType)<<32 | uint64(k.vlanID)<<48
	w1 := uint64(k.ethSrc[0]) | uint64(k.ethSrc[1])<<8 | uint64(k.ethSrc[2])<<16 |
		uint64(k.ethSrc[3])<<24 | uint64(k.ethSrc[4])<<32 | uint64(k.ethSrc[5])<<40 |
		uint64(k.l4Src)<<48
	w2 := uint64(k.ethDst[0]) | uint64(k.ethDst[1])<<8 | uint64(k.ethDst[2])<<16 |
		uint64(k.ethDst[3])<<24 | uint64(k.ethDst[4])<<32 | uint64(k.ethDst[5])<<40 |
		uint64(k.l4Dst)<<48
	w3 := uint64(k.ipSrc[0]) | uint64(k.ipSrc[1])<<8 | uint64(k.ipSrc[2])<<16 |
		uint64(k.ipSrc[3])<<24 | uint64(k.ipDst[0])<<32 | uint64(k.ipDst[1])<<40 |
		uint64(k.ipDst[2])<<48 | uint64(k.ipDst[3])<<56
	w4 := uint64(k.ipProto)
	if k.hasVLAN {
		w4 |= 1 << 8
	}
	if k.isIP {
		w4 |= 1 << 9
	}
	if k.hasL4 {
		w4 |= 1 << 10
	}
	h := hashMix(seed, w0^bits.RotateLeft64(w1, 21))
	h = hashMix(h, w2^bits.RotateLeft64(w3, 42))
	return hashMix(h, w4^bits.RotateLeft64(k.metadata, 21))
}

// Match selects packets by header fields. The zero Match matches everything;
// set fields with the With* builders to narrow it. Matches are
// value-semantics and safe to copy.
type Match struct {
	inPort   uint32 // 0 = any (valid port numbers start at 1)
	ethSrc   *pkt.MAC
	ethDst   *pkt.MAC
	ethType  *pkt.EthernetType
	vlanID   *uint16 // VLANNone = must be untagged
	ipProto  *pkt.IPProtocol
	ipSrc    *prefix
	ipDst    *prefix
	l4Src    *uint16
	l4Dst    *uint16
	metadata *maskedMetadata
}

type prefix struct {
	addr pkt.Addr
	bits int
}

func (p prefix) contains(a pkt.Addr) bool {
	if p.bits == 0 {
		return true
	}
	mask := ^uint32(0) << (32 - p.bits)
	return a.Uint32()&mask == p.addr.Uint32()&mask
}

func (p prefix) String() string { return fmt.Sprintf("%v/%d", p.addr, p.bits) }

type maskedMetadata struct {
	value, mask uint64
}

// MatchAll returns the wildcard match.
func MatchAll() Match { return Match{} }

// WithInPort narrows the match to one ingress port.
func (m Match) WithInPort(p uint32) Match { m.inPort = p; return m }

// WithEthSrc narrows the match to one source MAC.
func (m Match) WithEthSrc(mac pkt.MAC) Match { m.ethSrc = &mac; return m }

// WithEthDst narrows the match to one destination MAC.
func (m Match) WithEthDst(mac pkt.MAC) Match { m.ethDst = &mac; return m }

// WithEthType narrows the match to one EtherType (the inner type for tagged
// frames).
func (m Match) WithEthType(t pkt.EthernetType) Match { m.ethType = &t; return m }

// WithVLAN narrows the match to frames tagged with the given VLAN ID; pass
// VLANNone to require untagged frames.
func (m Match) WithVLAN(id uint16) Match { m.vlanID = &id; return m }

// WithIPProto narrows the match to one IP protocol.
func (m Match) WithIPProto(p pkt.IPProtocol) Match { m.ipProto = &p; return m }

// WithIPSrc narrows the match to a source prefix.
func (m Match) WithIPSrc(a pkt.Addr, bits int) Match {
	m.ipSrc = &prefix{addr: a, bits: bits}
	return m
}

// WithIPDst narrows the match to a destination prefix.
func (m Match) WithIPDst(a pkt.Addr, bits int) Match {
	m.ipDst = &prefix{addr: a, bits: bits}
	return m
}

// WithL4Src narrows the match to one transport source port.
func (m Match) WithL4Src(p uint16) Match { m.l4Src = &p; return m }

// WithL4Dst narrows the match to one transport destination port.
func (m Match) WithL4Dst(p uint16) Match { m.l4Dst = &p; return m }

// WithMetadata narrows the match on the pipeline metadata register under the
// given mask.
func (m Match) WithMetadata(value, mask uint64) Match {
	m.metadata = &maskedMetadata{value: value, mask: mask}
	return m
}

// Matches reports whether the extracted key satisfies the match.
func (m Match) matches(k *flowKey) bool {
	if m.inPort != 0 && m.inPort != k.inPort {
		return false
	}
	if m.ethSrc != nil && *m.ethSrc != k.ethSrc {
		return false
	}
	if m.ethDst != nil && *m.ethDst != k.ethDst {
		return false
	}
	if m.ethType != nil && *m.ethType != k.ethType {
		return false
	}
	if m.vlanID != nil {
		if *m.vlanID == VLANNone {
			if k.hasVLAN {
				return false
			}
		} else if !k.hasVLAN || k.vlanID != *m.vlanID {
			return false
		}
	}
	if m.ipProto != nil && (!k.isIP || k.ipProto != *m.ipProto) {
		return false
	}
	if m.ipSrc != nil && (!k.isIP || !m.ipSrc.contains(k.ipSrc)) {
		return false
	}
	if m.ipDst != nil && (!k.isIP || !m.ipDst.contains(k.ipDst)) {
		return false
	}
	if m.l4Src != nil && (!k.hasL4 || k.l4Src != *m.l4Src) {
		return false
	}
	if m.l4Dst != nil && (!k.hasL4 || k.l4Dst != *m.l4Dst) {
		return false
	}
	if m.metadata != nil && k.metadata&m.metadata.mask != m.metadata.value&m.metadata.mask {
		return false
	}
	return true
}

// String renders the match in a compact ovs-ofctl-like syntax.
func (m Match) String() string {
	var parts []string
	if m.inPort != 0 {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.inPort))
	}
	if m.ethSrc != nil {
		parts = append(parts, "dl_src="+m.ethSrc.String())
	}
	if m.ethDst != nil {
		parts = append(parts, "dl_dst="+m.ethDst.String())
	}
	if m.ethType != nil {
		parts = append(parts, "dl_type="+m.ethType.String())
	}
	if m.vlanID != nil {
		if *m.vlanID == VLANNone {
			parts = append(parts, "vlan=none")
		} else {
			parts = append(parts, fmt.Sprintf("dl_vlan=%d", *m.vlanID))
		}
	}
	if m.ipProto != nil {
		parts = append(parts, "nw_proto="+m.ipProto.String())
	}
	if m.ipSrc != nil {
		parts = append(parts, "nw_src="+m.ipSrc.String())
	}
	if m.ipDst != nil {
		parts = append(parts, "nw_dst="+m.ipDst.String())
	}
	if m.l4Src != nil {
		parts = append(parts, fmt.Sprintf("tp_src=%d", *m.l4Src))
	}
	if m.l4Dst != nil {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", *m.l4Dst))
	}
	if m.metadata != nil {
		parts = append(parts, fmt.Sprintf("metadata=%#x/%#x", m.metadata.value, m.metadata.mask))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}
