package vswitch

import (
	"testing"

	"repro/internal/netdev"
	"repro/internal/pkt"
)

var (
	macA = pkt.MAC{2, 0, 0, 0, 0, 0xa}
	macB = pkt.MAC{2, 0, 0, 0, 0, 0xb}
	ipA  = pkt.Addr{10, 0, 0, 1}
	ipB  = pkt.Addr{10, 0, 0, 2}
)

// rig wires N external "host" ports to a switch and returns their far ends,
// which tests use to send and receive.
func rig(t *testing.T, sw *Switch, n int) []*netdev.Port {
	t.Helper()
	hosts := make([]*netdev.Port, n)
	for i := 0; i < n; i++ {
		host, swSide := netdev.Veth("host", "sw")
		if err := sw.AddPort(uint32(i+1), swSide); err != nil {
			t.Fatal(err)
		}
		hosts[i] = host
	}
	return hosts
}

func frame(t *testing.T, vlan uint16, dstPort uint16) []byte {
	t.Helper()
	f, err := pkt.BuildFrame(pkt.FrameSpec{
		SrcMAC: macA, DstMAC: macB, VLANID: vlan,
		SrcIP: ipA, DstIP: ipB,
		SrcPort: 1000, DstPort: dstPort, PayloadLen: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustAdd(t *testing.T, sw *Switch, e *FlowEntry) {
	t.Helper()
	if err := sw.AddFlow(e); err != nil {
		t.Fatal(err)
	}
}

func TestBasicForwarding(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 2)
	mustAdd(t, sw, &FlowEntry{Match: MatchAll().WithInPort(1), Actions: []Action{Output(2)}})
	if err := hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := hosts[1].TryRecv(); !ok {
		t.Fatal("frame not forwarded 1->2")
	}
	// No reverse rule: must miss.
	_ = hosts[1].Send(netdev.Frame{Data: frame(t, 0, 80)})
	if _, ok := hosts[0].TryRecv(); ok {
		t.Fatal("frame forwarded without a rule")
	}
	if sw.Misses() != 1 {
		t.Errorf("misses = %d, want 1", sw.Misses())
	}
}

func TestPriorityWins(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 3)
	mustAdd(t, sw, &FlowEntry{Priority: 10, Match: MatchAll().WithInPort(1), Actions: []Action{Output(2)}})
	mustAdd(t, sw, &FlowEntry{Priority: 100, Match: MatchAll().WithInPort(1).WithL4Dst(443), Actions: []Action{Output(3)}})
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 443)})
	if _, ok := hosts[2].TryRecv(); !ok {
		t.Error("high-priority rule not preferred")
	}
	if _, ok := hosts[1].TryRecv(); ok {
		t.Error("low-priority rule also fired")
	}
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)})
	if _, ok := hosts[1].TryRecv(); !ok {
		t.Error("fallback rule not used for non-matching traffic")
	}
}

func TestEqualPriorityOldestWins(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 3)
	mustAdd(t, sw, &FlowEntry{Priority: 5, Match: MatchAll(), Actions: []Action{Output(2)}})
	mustAdd(t, sw, &FlowEntry{Priority: 5, Match: MatchAll(), Actions: []Action{Output(3)}})
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)})
	if _, ok := hosts[1].TryRecv(); !ok {
		t.Error("oldest equal-priority entry must win")
	}
	if _, ok := hosts[2].TryRecv(); ok {
		t.Error("newer equal-priority entry fired")
	}
}

func TestVLANPushPopSet(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 2)
	mustAdd(t, sw, &FlowEntry{Match: MatchAll().WithInPort(1), Actions: []Action{PushVLAN(100), Output(2)}})
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)})
	f, ok := hosts[1].TryRecv()
	if !ok {
		t.Fatal("no frame")
	}
	p := pkt.NewPacket(f.Data, pkt.LayerTypeEthernet, pkt.Default)
	v, okv := p.Layer(pkt.LayerTypeVLAN).(*pkt.VLAN)
	if !okv || v.VLANID != 100 {
		t.Fatalf("push_vlan failed: %v", p)
	}
	if p.Layer(pkt.LayerTypeUDP) == nil {
		t.Fatal("payload damaged by push")
	}

	// Now rewrite 100 -> 200 and pop in a second pass.
	sw2 := New("lsi2", 2)
	h2 := rig(t, sw2, 2)
	mustAdd(t, sw2, &FlowEntry{Priority: 10, Match: MatchAll().WithVLAN(100), Actions: []Action{SetVLAN(200), Output(2)}})
	_ = h2[0].Send(netdev.Frame{Data: f.Data})
	g, ok := h2[1].TryRecv()
	if !ok {
		t.Fatal("no frame from sw2")
	}
	q := pkt.NewPacket(g.Data, pkt.LayerTypeEthernet, pkt.Default)
	if v := q.Layer(pkt.LayerTypeVLAN).(*pkt.VLAN); v.VLANID != 200 {
		t.Fatalf("set_vlan failed: id=%d", v.VLANID)
	}

	sw3 := New("lsi3", 3)
	h3 := rig(t, sw3, 2)
	mustAdd(t, sw3, &FlowEntry{Match: MatchAll().WithVLAN(200), Actions: []Action{PopVLAN(), Output(2)}})
	_ = h3[0].Send(netdev.Frame{Data: g.Data})
	u, ok := h3[1].TryRecv()
	if !ok {
		t.Fatal("no frame from sw3")
	}
	r := pkt.NewPacket(u.Data, pkt.LayerTypeEthernet, pkt.Default)
	if r.Layer(pkt.LayerTypeVLAN) != nil {
		t.Fatal("pop_vlan left a tag")
	}
	if udp, ok := r.Layer(pkt.LayerTypeUDP).(*pkt.UDP); !ok || udp.DstPort != 80 {
		t.Fatal("payload damaged by pop")
	}
}

func TestVLANNoneMatchesUntaggedOnly(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 3)
	mustAdd(t, sw, &FlowEntry{Priority: 10, Match: MatchAll().WithVLAN(VLANNone), Actions: []Action{Output(2)}})
	mustAdd(t, sw, &FlowEntry{Priority: 5, Match: MatchAll(), Actions: []Action{Output(3)}})
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)})
	if _, ok := hosts[1].TryRecv(); !ok {
		t.Error("untagged frame not matched by vlan=none")
	}
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 7, 80)})
	if _, ok := hosts[2].TryRecv(); !ok {
		t.Error("tagged frame wrongly matched by vlan=none")
	}
}

func TestMultiTableMetadataPipeline(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 3)
	// Table 0 classifies by in_port into metadata, table 1 switches on it.
	mustAdd(t, sw, &FlowEntry{Table: 0, Match: MatchAll().WithInPort(1),
		Actions: []Action{SetMetadata(0x1, 0xff), GotoTable(1)}})
	mustAdd(t, sw, &FlowEntry{Table: 0, Match: MatchAll().WithInPort(2),
		Actions: []Action{SetMetadata(0x2, 0xff), GotoTable(1)}})
	mustAdd(t, sw, &FlowEntry{Table: 1, Match: MatchAll().WithMetadata(0x1, 0xff),
		Actions: []Action{Output(3)}})
	mustAdd(t, sw, &FlowEntry{Table: 1, Match: MatchAll().WithMetadata(0x2, 0xff),
		Actions: []Action{Output(1)}})
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)})
	if _, ok := hosts[2].TryRecv(); !ok {
		t.Error("metadata 0x1 path broken")
	}
	_ = hosts[1].Send(netdev.Frame{Data: frame(t, 0, 80)})
	if _, ok := hosts[0].TryRecv(); !ok {
		t.Error("metadata 0x2 path broken")
	}
}

func TestGotoTableMustMoveForward(t *testing.T) {
	sw := New("lsi", 1)
	if err := sw.AddFlow(&FlowEntry{Table: 2, Actions: []Action{GotoTable(1)}}); err == nil {
		t.Error("backward goto accepted")
	}
	if err := sw.AddFlow(&FlowEntry{Table: 1, Actions: []Action{GotoTable(1)}}); err == nil {
		t.Error("self goto accepted")
	}
	if err := sw.AddFlow(&FlowEntry{Table: 9, Actions: nil}); err == nil {
		t.Error("out-of-range table accepted")
	}
}

func TestFloodExcludesIngress(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 4)
	mustAdd(t, sw, &FlowEntry{Match: MatchAll(), Actions: []Action{Flood()}})
	_ = hosts[1].Send(netdev.Frame{Data: frame(t, 0, 80)})
	if _, ok := hosts[1].TryRecv(); ok {
		t.Error("flood echoed to ingress")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := hosts[i].TryRecv(); !ok {
			t.Errorf("flood missed port %d", i+1)
		}
	}
}

func TestPacketInOnMissAndAction(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 1)
	var events []PacketIn
	sw.SetPacketInHandler(func(pi PacketIn) { events = append(events, pi) })
	sw.SetMissPolicy(MissController)
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)})
	if len(events) != 1 || events[0].Reason != ReasonMiss || events[0].InPort != 1 {
		t.Fatalf("miss packet-in = %+v", events)
	}
	mustAdd(t, sw, &FlowEntry{Match: MatchAll(), Actions: []Action{ToController()}})
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)})
	if len(events) != 2 || events[1].Reason != ReasonAction {
		t.Fatalf("action packet-in = %+v", events)
	}
}

func TestPacketOutInjectAndOutput(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 2)
	mustAdd(t, sw, &FlowEntry{Match: MatchAll().WithInPort(1), Actions: []Action{Output(2)}})
	sw.Inject(1, frame(t, 0, 80))
	if _, ok := hosts[1].TryRecv(); !ok {
		t.Error("Inject did not traverse pipeline")
	}
	sw.Output(1, frame(t, 0, 80))
	if _, ok := hosts[0].TryRecv(); !ok {
		t.Error("Output did not bypass pipeline")
	}
}

func TestDeleteFlowsByCookie(t *testing.T) {
	sw := New("lsi", 1)
	mustAdd(t, sw, &FlowEntry{Cookie: 7, Match: MatchAll()})
	mustAdd(t, sw, &FlowEntry{Cookie: 7, Table: 1, Match: MatchAll()})
	mustAdd(t, sw, &FlowEntry{Cookie: 9, Match: MatchAll()})
	if n := sw.DeleteFlows(7); n != 2 {
		t.Errorf("deleted %d, want 2", n)
	}
	if len(sw.Flows()) != 1 {
		t.Errorf("remaining = %d, want 1", len(sw.Flows()))
	}
	if n := sw.DeleteAllFlows(); n != 1 {
		t.Errorf("DeleteAllFlows = %d, want 1", n)
	}
}

func TestFlowStatsCount(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 2)
	e := &FlowEntry{Match: MatchAll().WithInPort(1), Actions: []Action{Output(2)}}
	mustAdd(t, sw, e)
	data := frame(t, 0, 80)
	for i := 0; i < 5; i++ {
		_ = hosts[0].Send(netdev.Frame{Data: data})
	}
	p, b := e.Stats()
	if p != 5 || b != uint64(5*len(data)) {
		t.Errorf("stats = %d pkts %d bytes", p, b)
	}
	if sw.PacketsProcessed() != 5 {
		t.Errorf("pipeline counter = %d", sw.PacketsProcessed())
	}
}

func TestMatchFields(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 2)
	m := MatchAll().
		WithEthSrc(macA).WithEthDst(macB).WithEthType(pkt.EthernetTypeIPv4).
		WithIPSrc(pkt.Addr{10, 0, 0, 0}, 24).WithIPDst(ipB, 32).
		WithIPProto(pkt.IPProtocolUDP).WithL4Src(1000).WithL4Dst(80)
	mustAdd(t, sw, &FlowEntry{Match: m, Actions: []Action{Output(2)}})
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)})
	if _, ok := hosts[1].TryRecv(); !ok {
		t.Error("full-field match failed")
	}
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 81)})
	if _, ok := hosts[1].TryRecv(); ok {
		t.Error("wrong dst port matched")
	}
}

func TestSetEthAddrs(t *testing.T) {
	sw := New("lsi", 1)
	hosts := rig(t, sw, 2)
	newSrc := pkt.MAC{2, 2, 2, 2, 2, 2}
	newDst := pkt.MAC{4, 4, 4, 4, 4, 4}
	mustAdd(t, sw, &FlowEntry{Match: MatchAll(), Actions: []Action{SetEthSrc(newSrc), SetEthDst(newDst), Output(2)}})
	_ = hosts[0].Send(netdev.Frame{Data: frame(t, 0, 80)})
	f, ok := hosts[1].TryRecv()
	if !ok {
		t.Fatal("no frame")
	}
	p := pkt.NewPacket(f.Data, pkt.LayerTypeEthernet, pkt.Default)
	eth := p.Layer(pkt.LayerTypeEthernet).(*pkt.Ethernet)
	if eth.SrcMAC != newSrc || eth.DstMAC != newDst {
		t.Errorf("rewrite failed: %v -> %v", eth.SrcMAC, eth.DstMAC)
	}
}

func TestPortManagement(t *testing.T) {
	sw := New("lsi", 1)
	p := netdev.NewPort("x")
	if err := sw.AddPort(0, p); err == nil {
		t.Error("port 0 accepted")
	}
	if err := sw.AddPort(1, p); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddPort(1, netdev.NewPort("y")); err == nil {
		t.Error("duplicate port number accepted")
	}
	if sw.Port(1) != p {
		t.Error("Port lookup failed")
	}
	if err := sw.RemovePort(1); err != nil {
		t.Fatal(err)
	}
	if err := sw.RemovePort(1); err == nil {
		t.Error("double remove accepted")
	}
}

func TestDumpContainsRules(t *testing.T) {
	sw := New("lsi-0", 42)
	mustAdd(t, sw, &FlowEntry{Priority: 3, Cookie: 0xbeef,
		Match: MatchAll().WithVLAN(5), Actions: []Action{PopVLAN(), Output(2)}})
	d := sw.Dump()
	for _, want := range []string{"lsi-0", "dl_vlan=5", "pop_vlan", "output:2", "0xbeef"} {
		if !contains(d, want) {
			t.Errorf("Dump missing %q in:\n%s", want, d)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
