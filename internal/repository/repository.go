// Package repository implements the VNF repository of the compute node: the
// catalog of deployable NF templates, each listing the execution
// technologies it is packaged for, the image artifact per technology, and
// the resources it needs. The orchestrator's VNF resolver queries it to
// turn an abstract NF name from a NF-FG into a concrete deployable flavor.
package repository

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/imagestore"
	"repro/internal/nffg"
	"repro/internal/resources"
)

// MB is one mebibyte in bytes.
const MB = 1 << 20

// FlavorSpec describes one packaging of a template.
type FlavorSpec struct {
	// Image names the artifact in the image store ("" for native NFs
	// whose binary ships with the OS... which still have a tiny package
	// recorded for Table 1 accounting).
	Image string
	// CPUMillis is the steady-state CPU reservation.
	CPUMillis int
	// Capability is the node feature this flavor needs ("kvm", "docker",
	// "dpdk", "nnf:<name>").
	Capability resources.Capability
}

// Template is one deployable NF type.
type Template struct {
	// Name is the template identifier referenced by NF-FGs.
	Name string
	// Ports is the number of traffic ports of the NF.
	Ports int
	// WorkloadRAM is the RAM the NF logic itself uses, independent of
	// packaging.
	WorkloadRAM uint64
	// Flavors lists the available packagings.
	Flavors map[nffg.Technology]FlavorSpec
}

// SupportedTechnologies returns the template's packagings, sorted.
func (t *Template) SupportedTechnologies() []nffg.Technology {
	out := make([]nffg.Technology, 0, len(t.Flavors))
	for tech := range t.Flavors {
		out = append(out, tech)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Repository is the template catalog.
type Repository struct {
	mu        sync.RWMutex
	templates map[string]*Template
}

// New returns an empty repository.
func New() *Repository {
	return &Repository{templates: make(map[string]*Template)}
}

// Add registers a template.
func (r *Repository) Add(t *Template) error {
	if t.Name == "" {
		return fmt.Errorf("repository: template with empty name")
	}
	if t.Ports < 1 {
		return fmt.Errorf("repository: template %q has no ports", t.Name)
	}
	if len(t.Flavors) == 0 {
		return fmt.Errorf("repository: template %q has no flavors", t.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.templates[t.Name]; dup {
		return fmt.Errorf("repository: template %q already present", t.Name)
	}
	r.templates[t.Name] = t
	return nil
}

// Lookup finds a template by name.
func (r *Repository) Lookup(name string) (*Template, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.templates[name]
	return t, ok
}

// Names returns the catalog's template names, sorted.
func (r *Repository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.templates))
	for n := range r.templates {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ipsecWorkloadRAM is Table 1's strongSwan runtime footprint (19.4 MB).
const ipsecWorkloadRAM = 20342374

// Default returns the repository used throughout the reproduction, with the
// IPsec template's three packagings sized exactly as Table 1 reports
// (522 MB VM image, 240 MB Docker image, 5 MB native package) plus the other
// native functions the paper cites.
func Default() *Repository {
	r := New()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(r.Add(&Template{
		Name:        "ipsec",
		Ports:       2,
		WorkloadRAM: ipsecWorkloadRAM,
		Flavors: map[nffg.Technology]FlavorSpec{
			nffg.TechVM:     {Image: "ipsec:vm", CPUMillis: 1000, Capability: "kvm"},
			nffg.TechDocker: {Image: "ipsec:docker", CPUMillis: 500, Capability: "docker"},
			nffg.TechNative: {Image: "ipsec:native", CPUMillis: 250, Capability: "nnf:ipsec"},
		},
	}))
	must(r.Add(&Template{
		Name:        "firewall",
		Ports:       2,
		WorkloadRAM: 3 * MB,
		Flavors: map[nffg.Technology]FlavorSpec{
			nffg.TechVM:     {Image: "firewall:vm", CPUMillis: 500, Capability: "kvm"},
			nffg.TechDocker: {Image: "firewall:docker", CPUMillis: 250, Capability: "docker"},
			nffg.TechNative: {Image: "firewall:native", CPUMillis: 100, Capability: "nnf:firewall"},
		},
	}))
	must(r.Add(&Template{
		Name:        "nat",
		Ports:       2,
		WorkloadRAM: 2 * MB,
		Flavors: map[nffg.Technology]FlavorSpec{
			nffg.TechDocker: {Image: "nat:docker", CPUMillis: 250, Capability: "docker"},
			nffg.TechNative: {Image: "nat:native", CPUMillis: 100, Capability: "nnf:nat"},
		},
	}))
	must(r.Add(&Template{
		Name:        "bridge",
		Ports:       2,
		WorkloadRAM: 1 * MB,
		Flavors: map[nffg.Technology]FlavorSpec{
			nffg.TechDocker: {Image: "bridge:docker", CPUMillis: 100, Capability: "docker"},
			nffg.TechNative: {Image: "bridge:native", CPUMillis: 50, Capability: "nnf:bridge"},
		},
	}))
	must(r.Add(&Template{
		Name:        "router",
		Ports:       2,
		WorkloadRAM: 2 * MB,
		Flavors: map[nffg.Technology]FlavorSpec{
			nffg.TechDocker: {Image: "router:docker", CPUMillis: 250, Capability: "docker"},
			nffg.TechNative: {Image: "router:native", CPUMillis: 100, Capability: "nnf:router"},
			nffg.TechDPDK:   {Image: "router:dpdk", CPUMillis: 1000, Capability: "dpdk"},
		},
	}))
	must(r.Add(&Template{
		Name:        "shaper",
		Ports:       2,
		WorkloadRAM: 1 * MB,
		Flavors: map[nffg.Technology]FlavorSpec{
			nffg.TechDocker: {Image: "shaper:docker", CPUMillis: 100, Capability: "docker"},
			nffg.TechNative: {Image: "shaper:native", CPUMillis: 50, Capability: "nnf:shaper"},
		},
	}))
	must(r.Add(&Template{
		Name:        "monitor",
		Ports:       2,
		WorkloadRAM: 1 * MB,
		Flavors: map[nffg.Technology]FlavorSpec{
			nffg.TechDocker: {Image: "monitor:docker", CPUMillis: 100, Capability: "docker"},
			nffg.TechNative: {Image: "monitor:native", CPUMillis: 50, Capability: "nnf:monitor"},
		},
	}))
	return r
}

// DefaultImages populates an image store with the artifacts the default
// repository references. Sizes for the ipsec images are Table 1's; Docker
// images share a common base layer, as real images built on one distro do.
func DefaultImages(store *imagestore.Store) error {
	base := imagestore.Layer{Digest: "docker-base-os", Size: 180 * MB}
	images := []imagestore.Image{
		{Name: "ipsec:vm", Kind: imagestore.KindVMImage,
			Layers: []imagestore.Layer{{Digest: "ipsec-vm-disk", Size: 522 * MB}}},
		{Name: "ipsec:docker", Kind: imagestore.KindDocker,
			Layers: []imagestore.Layer{base, {Digest: "ipsec-sw", Size: 60 * MB}}},
		{Name: "ipsec:native", Kind: imagestore.KindNativePkg,
			Layers: []imagestore.Layer{{Digest: "ipsec-pkg", Size: 5 * MB}}},

		{Name: "firewall:vm", Kind: imagestore.KindVMImage,
			Layers: []imagestore.Layer{{Digest: "firewall-vm-disk", Size: 480 * MB}}},
		{Name: "firewall:docker", Kind: imagestore.KindDocker,
			Layers: []imagestore.Layer{base, {Digest: "firewall-sw", Size: 12 * MB}}},
		{Name: "firewall:native", Kind: imagestore.KindNativePkg,
			Layers: []imagestore.Layer{{Digest: "firewall-pkg", Size: 1 * MB}}},

		{Name: "nat:docker", Kind: imagestore.KindDocker,
			Layers: []imagestore.Layer{base, {Digest: "nat-sw", Size: 8 * MB}}},
		{Name: "nat:native", Kind: imagestore.KindNativePkg,
			Layers: []imagestore.Layer{{Digest: "nat-pkg", Size: 1 * MB}}},

		{Name: "bridge:docker", Kind: imagestore.KindDocker,
			Layers: []imagestore.Layer{base, {Digest: "bridge-sw", Size: 4 * MB}}},
		{Name: "bridge:native", Kind: imagestore.KindNativePkg,
			Layers: []imagestore.Layer{{Digest: "bridge-pkg", Size: 512 * 1024}}},

		{Name: "router:docker", Kind: imagestore.KindDocker,
			Layers: []imagestore.Layer{base, {Digest: "router-sw", Size: 10 * MB}}},
		{Name: "router:native", Kind: imagestore.KindNativePkg,
			Layers: []imagestore.Layer{{Digest: "router-pkg", Size: 1 * MB}}},
		{Name: "router:dpdk", Kind: imagestore.KindDPDKApp,
			Layers: []imagestore.Layer{{Digest: "router-dpdk", Size: 35 * MB}}},

		{Name: "shaper:docker", Kind: imagestore.KindDocker,
			Layers: []imagestore.Layer{base, {Digest: "shaper-sw", Size: 5 * MB}}},
		{Name: "shaper:native", Kind: imagestore.KindNativePkg,
			Layers: []imagestore.Layer{{Digest: "shaper-pkg", Size: 512 * 1024}}},

		{Name: "monitor:docker", Kind: imagestore.KindDocker,
			Layers: []imagestore.Layer{base, {Digest: "monitor-sw", Size: 6 * MB}}},
		{Name: "monitor:native", Kind: imagestore.KindNativePkg,
			Layers: []imagestore.Layer{{Digest: "monitor-pkg", Size: 512 * 1024}}},
	}
	for _, im := range images {
		if err := store.Register(im); err != nil {
			return err
		}
	}
	return nil
}
