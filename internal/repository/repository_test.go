package repository

import (
	"testing"

	"repro/internal/imagestore"
	"repro/internal/nffg"
)

func TestDefaultCatalogConsistency(t *testing.T) {
	r := Default()
	store := imagestore.NewStore()
	if err := DefaultImages(store); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) == 0 {
		t.Fatal("empty catalog")
	}
	// Every flavor of every template must reference a registered image
	// and a plausible capability.
	for _, name := range names {
		tpl, ok := r.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed for listed template", name)
		}
		if tpl.Ports < 1 || tpl.WorkloadRAM == 0 {
			t.Errorf("%s: ports=%d ram=%d", name, tpl.Ports, tpl.WorkloadRAM)
		}
		if len(tpl.SupportedTechnologies()) == 0 {
			t.Errorf("%s: no flavors", name)
		}
		for tech, spec := range tpl.Flavors {
			if !tech.Valid() || tech == nffg.TechAny {
				t.Errorf("%s: invalid technology %q", name, tech)
			}
			if _, inCatalog := store.Lookup(spec.Image); !inCatalog {
				t.Errorf("%s/%s: image %q not registered", name, tech, spec.Image)
			}
			if spec.CPUMillis <= 0 {
				t.Errorf("%s/%s: cpu %d", name, tech, spec.CPUMillis)
			}
			if spec.Capability == "" {
				t.Errorf("%s/%s: empty capability", name, tech)
			}
		}
	}
}

func TestIPsecTemplateMatchesTable1(t *testing.T) {
	r := Default()
	tpl, ok := r.Lookup("ipsec")
	if !ok {
		t.Fatal("no ipsec template")
	}
	if tpl.WorkloadRAM != 20342374 {
		t.Errorf("workload RAM = %d, want 19.4 MB", tpl.WorkloadRAM)
	}
	techs := tpl.SupportedTechnologies()
	if len(techs) != 3 {
		t.Errorf("flavors = %v, want docker/native/vm", techs)
	}
	store := imagestore.NewStore()
	_ = DefaultImages(store)
	for img, wantMB := range map[string]uint64{
		"ipsec:vm": 522, "ipsec:docker": 240, "ipsec:native": 5,
	} {
		size, err := store.ImageDiskSize(img)
		if err != nil {
			t.Fatal(err)
		}
		if size/MB != wantMB {
			t.Errorf("%s = %d MB, want %d", img, size/MB, wantMB)
		}
	}
}

func TestAddValidation(t *testing.T) {
	r := New()
	ok := &Template{Name: "x", Ports: 1, Flavors: map[nffg.Technology]FlavorSpec{
		nffg.TechDocker: {Image: "x:docker", CPUMillis: 1, Capability: "docker"},
	}}
	if err := r.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(ok); err == nil {
		t.Error("duplicate template accepted")
	}
	if err := r.Add(&Template{Name: "", Ports: 1, Flavors: ok.Flavors}); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Add(&Template{Name: "y", Ports: 0, Flavors: ok.Flavors}); err == nil {
		t.Error("zero ports accepted")
	}
	if err := r.Add(&Template{Name: "z", Ports: 1}); err == nil {
		t.Error("no flavors accepted")
	}
	if _, ok := r.Lookup("ghost"); ok {
		t.Error("phantom template")
	}
}

func TestDockerImagesShareBaseLayer(t *testing.T) {
	// The CPE argument: many Docker NFs share one distro base, so the
	// second container costs only its delta — still far more than native
	// packages.
	store := imagestore.NewStore()
	_ = DefaultImages(store)
	first, err := store.Pull("ipsec:docker")
	if err != nil {
		t.Fatal(err)
	}
	second, err := store.Pull("firewall:docker")
	if err != nil {
		t.Fatal(err)
	}
	if first != 240*MB {
		t.Errorf("first pull = %d MB", first/MB)
	}
	if second >= 60*MB {
		t.Errorf("second pull should reuse the base layer, transferred %d MB", second/MB)
	}
}
