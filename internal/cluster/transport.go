package cluster

import (
	"encoding/json"
	"fmt"
	"sync"
)

// MemberKind distinguishes the two populations the membership protocol
// tracks: orchestrator replicas (which vote, replicate the intent log and
// gossip with each other) and Universal Nodes (which are only monitored —
// they run no cluster code, so replicas probe them through NodeProber).
type MemberKind string

const (
	KindReplica MemberKind = "replica"
	KindNode    MemberKind = "node"
)

// MemberState is one member's position in the SWIM failure-detection
// lifecycle. Alive members answer probes; a member that fails its direct
// probe and every indirect ping-req becomes Suspect, and a suspicion that
// is not refuted (by the member gossiping a higher incarnation) within the
// suspicion timeout hardens into Dead.
type MemberState string

const (
	StateAlive   MemberState = "alive"
	StateSuspect MemberState = "suspect"
	StateDead    MemberState = "dead"
)

// MemberUpdate is one gossip rumor: what the sender believes about a
// member, qualified by the member's incarnation number. Incarnations
// totally order rumors about one member — a refutation (Alive at a higher
// incarnation) beats any suspicion at a lower one.
type MemberUpdate struct {
	ID          string      `json:"id"`
	Kind        MemberKind  `json:"kind"`
	State       MemberState `json:"state"`
	Incarnation uint64      `json:"incarnation"`
}

// VoteRequest asks a peer for its vote in one election term.
type VoteRequest struct {
	ClusterID string `json:"cluster-id"`
	Candidate string `json:"candidate"`
	Term      uint64 `json:"term"`
	// LastTerm/LastSeq identify the candidate's newest applied op: voters
	// refuse candidates whose history is behind their own — ordered by
	// (LastTerm, LastSeq), the Raft election restriction — so a stale
	// replica, even one whose divergent uncommitted suffix matches the
	// committed history in length, cannot win an election and lose
	// committed intent.
	LastTerm uint64 `json:"last-term"`
	LastSeq  uint64 `json:"last-seq"`
}

// VoteReply is the voter's answer.
type VoteReply struct {
	Term    uint64 `json:"term"`
	Granted bool   `json:"granted"`
}

// AppendRequest is the leader's replication heartbeat: the ops the
// follower has not acknowledged yet, plus (for a follower too far behind
// the log window) a full snapshot to restart from. An empty Ops slice is a
// pure lease-renewal heartbeat.
type AppendRequest struct {
	ClusterID string `json:"cluster-id"`
	Leader    string `json:"leader"`
	Term      uint64 `json:"term"`
	CommitSeq uint64 `json:"commit-seq"`
	// Snapshot, when non-nil, replaces the follower's intent store before
	// Ops are applied (snapshot + catch-up for joiners).
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	Ops      []Op      `json:"ops,omitempty"`
}

// AppendReply acknowledges replicated intent.
type AppendReply struct {
	Term uint64 `json:"term"`
	// Acked is the receiver's highest contiguously-applied sequence
	// number; the leader's commit point is the quorum minimum of these.
	Acked uint64 `json:"acked"`
	Ok    bool   `json:"ok"`
}

// Peer is the RPC surface one replica exposes to the rest of the cluster.
// *Cluster implements it; transports carry it between processes.
type Peer interface {
	// Ping is the SWIM direct probe. Both sides exchange their membership
	// tables: the caller piggybacks its rumors, the reply carries the
	// receiver's.
	Ping(from string, updates []MemberUpdate) ([]MemberUpdate, error)
	// PingReq asks the receiver to probe target on the caller's behalf
	// (the SWIM indirect probe): a member is only suspected when k peers
	// with independent network paths also fail to reach it.
	PingReq(from, target string, updates []MemberUpdate) ([]MemberUpdate, error)
	// RequestVote asks for the receiver's vote in an election term.
	RequestVote(req VoteRequest) (VoteReply, error)
	// Append delivers replicated intent ops (or a bare heartbeat).
	Append(req AppendRequest) (AppendReply, error)
}

// Transport resolves peer ids to reachable Peer handles.
type Transport interface {
	Dial(id string) (Peer, error)
}

// PeerSpec names one replica and the base URL its REST surface answers on.
// Addr doubles as the advertised redirect target for follower writes; the
// in-process transport ignores it.
type PeerSpec struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
}

// LocalNetwork is the in-process transport: a registry of co-resident
// replicas with injectable failures — a member can be taken down entirely
// (process kill) or partitioned from specific peers (split brain). Tests
// and the chaos harness drive elections and fencing through it.
type LocalNetwork struct {
	mu    sync.Mutex
	peers map[string]Peer
	down  map[string]bool
	cut   map[string]bool // "a|b" with a<b: the pair cannot talk
}

// NewLocalNetwork builds an empty in-process transport fabric.
func NewLocalNetwork() *LocalNetwork {
	return &LocalNetwork{
		peers: make(map[string]Peer),
		down:  make(map[string]bool),
		cut:   make(map[string]bool),
	}
}

// Register attaches a replica to the fabric under its id.
func (n *LocalNetwork) Register(id string, p Peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = p
}

// SetDown makes a replica unreachable from everyone (true) or reachable
// again (false) — the process-kill fault.
func (n *LocalNetwork) SetDown(id string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = down
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Partition severs the pairwise path between two replicas; both directions
// fail until Heal. Other paths are untouched, so asymmetric-majority
// partitions are composed from pairs.
func (n *LocalNetwork) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[pairKey(a, b)] = true
}

// Heal restores the pairwise path between two replicas.
func (n *LocalNetwork) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, pairKey(a, b))
}

// Isolate cuts one replica off from every currently-registered peer — the
// full network partition the fencing scenario needs.
func (n *LocalNetwork) Isolate(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.peers {
		if other != id {
			n.cut[pairKey(id, other)] = true
		}
	}
}

// Rejoin heals every cut involving the replica.
func (n *LocalNetwork) Rejoin(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.peers {
		delete(n.cut, pairKey(id, other))
	}
}

func (n *LocalNetwork) reach(from, to string) (Peer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[from] {
		return nil, fmt.Errorf("cluster: %q is down", from)
	}
	if n.down[to] {
		return nil, fmt.Errorf("cluster: %q is down", to)
	}
	if n.cut[pairKey(from, to)] {
		return nil, fmt.Errorf("cluster: %q and %q are partitioned", from, to)
	}
	p, ok := n.peers[to]
	if !ok {
		return nil, fmt.Errorf("cluster: no peer %q", to)
	}
	return p, nil
}

// Transport returns the fabric as seen from one replica: every Dial checks
// the current fault set before handing out the peer.
func (n *LocalNetwork) Transport(self string) Transport {
	return &localTransport{net: n, self: self}
}

type localTransport struct {
	net  *LocalNetwork
	self string
}

type localPeer struct {
	net      *LocalNetwork
	from, to string
}

// Dial implements Transport. The returned peer re-checks reachability on
// every call, so a partition injected after Dial still cuts the path.
func (t *localTransport) Dial(id string) (Peer, error) {
	return &localPeer{net: t.net, from: t.self, to: id}, nil
}

func (p *localPeer) Ping(from string, updates []MemberUpdate) ([]MemberUpdate, error) {
	peer, err := p.net.reach(p.from, p.to)
	if err != nil {
		return nil, err
	}
	return peer.Ping(from, updates)
}

func (p *localPeer) PingReq(from, target string, updates []MemberUpdate) ([]MemberUpdate, error) {
	peer, err := p.net.reach(p.from, p.to)
	if err != nil {
		return nil, err
	}
	return peer.PingReq(from, target, updates)
}

func (p *localPeer) RequestVote(req VoteRequest) (VoteReply, error) {
	peer, err := p.net.reach(p.from, p.to)
	if err != nil {
		return VoteReply{}, err
	}
	return peer.RequestVote(req)
}

func (p *localPeer) Append(req AppendRequest) (AppendReply, error) {
	peer, err := p.net.reach(p.from, p.to)
	if err != nil {
		return AppendReply{}, err
	}
	// The wire carries JSON; round-tripping the request keeps the
	// in-process transport honest about what survives serialization (e.g.
	// raw intent payloads), so tests over LocalNetwork cover the same
	// byte-identical-replay property the HTTP transport must provide.
	data, err := json.Marshal(req)
	if err != nil {
		return AppendReply{}, err
	}
	var wire AppendRequest
	if err := json.Unmarshal(data, &wire); err != nil {
		return AppendReply{}, err
	}
	return peer.Append(wire)
}
