// Package cluster makes the global orchestration tier highly available:
// several un-global replicas form a cluster with SWIM-style gossip
// membership (sub-second failure detection for both replicas and
// Universal Nodes), lease-based leader election (only the leader mutates
// placement and runs reconcile; a deposed leader fences itself on lease
// expiry), and a sequence-numbered replicated intent log (every
// desired-state mutation streams to followers with acknowledgement-based
// commit, snapshot + catch-up for joiners, and deterministic replay on
// promotion). The package is dependency-free and transport-agnostic:
// tests and the chaos harness drive it over an in-process fabric with
// injectable partitions, production over HTTP on the /v1/cluster routes.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Journal event types recorded by the cluster layer (the exported
// constants live in internal/telemetry next to the rest of the event
// vocabulary; these aliases keep call sites short).
const (
	eventLeaderElected = telemetry.EventLeaderElected
	eventMemberSuspect = telemetry.EventMemberSuspect
	eventMemberDead    = telemetry.EventMemberDead
	eventMemberAlive   = telemetry.EventMemberAlive
)

// Errors surfaced to callers. ErrNotLeader is the fencing signal: the
// REST layer turns it into a 307 redirect to the leader, the orchestrator
// refuses mutations on it.
var (
	ErrNotLeader     = errors.New("cluster: not the leader")
	ErrNoQuorum      = errors.New("cluster: lost quorum before commit")
	errWrongCluster  = errors.New("cluster: cluster-id mismatch")
	errUnknownMember = errors.New("cluster: unknown member")
	errProbeFailed   = errors.New("cluster: indirect probe failed")
)

// Options configures one replica.
type Options struct {
	// ID is this replica's unique name; ClusterID guards against
	// replicas from different clusters gossiping with each other.
	ID        string
	ClusterID string
	// Peers is the static replica set (including self); quorum is a
	// majority of it. Addr is each peer's REST base URL, used for write
	// redirects.
	Peers []PeerSpec
	// Transport carries peer RPCs.
	Transport Transport

	// ProbeInterval is the SWIM probe period (default 200ms);
	// SuspicionTimeout how long a suspect lives before it is declared
	// dead (default 1s); IndirectProbes the k relays tried before
	// suspecting (default 2).
	ProbeInterval    time.Duration
	SuspicionTimeout time.Duration
	IndirectProbes   int

	// HeartbeatInterval is the leader replication period (default
	// 100ms); LeaseDuration the leader lease extended by each
	// quorum-acked round (default 1s). Election timeouts randomize in
	// [lease, 2·lease).
	HeartbeatInterval time.Duration
	LeaseDuration     time.Duration

	// LogDepth bounds the leader-side replication window (default
	// 1024); followers further behind catch up from a snapshot.
	LogDepth int

	// CommitTimeout bounds how long Record waits for quorum
	// acknowledgement before reporting ErrNoQuorum (default
	// LeaseDuration).
	CommitTimeout time.Duration

	// NodeProber probes one monitored Universal Node (rec is its intent
	// record, e.g. carrying the node's URL). Nil disables node probing.
	NodeProber func(id string, rec json.RawMessage) error
	// OnPromote fires after this replica wins an election and earns its
	// first lease; the orchestrator glue replays the intent store.
	OnPromote func(term uint64)
	// OnDemote fires when leadership is lost (lease expiry or a newer
	// term observed).
	OnDemote func()
	// OnNodeState fires when a monitored node transitions dead/alive.
	OnNodeState func(id string, alive bool)

	// Journal receives leader-elected / member-suspect / member-dead
	// events; Logf receives debug logging. Both optional.
	Journal *telemetry.Journal
	Logf    func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.ClusterID == "" {
		out.ClusterID = "un-global"
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 200 * time.Millisecond
	}
	if out.SuspicionTimeout <= 0 {
		out.SuspicionTimeout = time.Second
	}
	if out.IndirectProbes <= 0 {
		out.IndirectProbes = 2
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = 100 * time.Millisecond
	}
	if out.LeaseDuration <= 0 {
		out.LeaseDuration = time.Second
	}
	if out.LogDepth <= 0 {
		out.LogDepth = 1024
	}
	if out.CommitTimeout <= 0 {
		out.CommitTimeout = out.LeaseDuration
	}
	return out
}

// Cluster is one replica's view of the HA control plane. It implements
// Peer (the RPC surface other replicas call) and telemetry.Collector.
type Cluster struct {
	opts Options
	self string

	mu          sync.Mutex
	members     map[string]*memberInfo
	incarnation uint64
	probeIdx    int

	role       role
	term       uint64
	votedTerm  uint64
	votedFor   string
	leader     string
	leaseUntil time.Time // leader side: fencing lease
	leaderSeen time.Time // follower side: last valid append heard
	electionAt time.Time // follower side: next election chance

	log       *Log
	store     *IntentStore
	acked     map[string]uint64 // leader side: follower ack points
	commitSeq uint64
	// synced marks followers that have adopted this leader's term
	// baseline (acknowledged a current-term append). Until then a
	// follower's store may end in a divergent suffix from a deposed
	// leader at sequence numbers this leader reuses, so only a full
	// snapshot — never incremental ops — is sent, and its
	// acknowledgements count toward neither commit nor the lease.
	synced map[string]bool
	// syncedTerm is the follower-side mirror: the newest term whose
	// baseline (snapshot) this replica has adopted. Incremental ops from
	// any other term are refused so the leader reseeds us first.
	syncedTerm uint64

	electionsStarted telemetry.Counter
	electionsWon     telemetry.Counter
	heartbeatRounds  telemetry.Counter
	membersSuspected telemetry.Counter
	membersDied      telemetry.Counter
	opsRecorded      telemetry.Counter

	stop    chan struct{}
	kick    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// New builds a replica. Call Start to join the cluster.
func New(opts Options) (*Cluster, error) {
	o := opts.withDefaults()
	if o.ID == "" {
		return nil, errors.New("cluster: Options.ID is required")
	}
	if o.Transport == nil {
		return nil, errors.New("cluster: Options.Transport is required")
	}
	c := &Cluster{
		opts:    o,
		self:    o.ID,
		members: make(map[string]*memberInfo),
		log:     NewLog(o.LogDepth),
		store:   NewIntentStore(),
		acked:   make(map[string]uint64),
		synced:  make(map[string]bool),
		stop:    make(chan struct{}),
		kick:    make(chan struct{}, 1),
	}
	now := time.Now()
	selfListed := false
	for _, p := range o.Peers {
		if p.ID == o.ID {
			selfListed = true
		}
		c.members[p.ID] = &memberInfo{id: p.ID, kind: KindReplica, state: StateAlive, since: now}
	}
	if !selfListed {
		c.opts.Peers = append(c.opts.Peers, PeerSpec{ID: o.ID})
		c.members[o.ID] = &memberInfo{id: o.ID, kind: KindReplica, state: StateAlive, since: now}
	}
	return c, nil
}

// Start launches the failure detector and the election/replication loop.
// The first election fires after a randomized timeout; a single-replica
// cluster (quorum 1) elects itself on the first tick.
func (c *Cluster) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	// Stagger the first election chance so co-started replicas don't
	// split the vote forever; the randomized range keeps one ahead.
	c.electionAt = time.Now().Add(time.Duration(float64(c.electionTimeout()) * 0.25))
	c.mu.Unlock()
	c.wg.Add(2)
	go c.probeLoop()
	go c.electLoop()
}

// Close stops the replica. A leader simply disappears; the rest of the
// cluster elects a successor after its lease lapses or SWIM declares it.
func (c *Cluster) Close() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
}

// quorum is a majority of the static replica set.
func (c *Cluster) quorum() int { return len(c.opts.Peers)/2 + 1 }

// replicaPeersLocked lists replica ids other than self, sorted.
func (c *Cluster) replicaPeersLocked() []string {
	out := make([]string, 0, len(c.opts.Peers)-1)
	for _, p := range c.opts.Peers {
		if p.ID != c.self {
			out = append(out, p.ID)
		}
	}
	sort.Strings(out)
	return out
}

// IsLeader reports whether this replica holds a currently valid leader
// lease. The time check is the fence: a partitioned ex-leader stops
// passing it at most LeaseDuration after its last quorum contact, before
// the rest of the cluster can elect a successor.
func (c *Cluster) IsLeader() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role == roleLeader && time.Now().Before(c.leaseUntil)
}

// Leader returns the current leader's id and REST address ("" when
// unknown or mid-election).
func (c *Cluster) Leader() (id, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leader == "" {
		return "", ""
	}
	for _, p := range c.opts.Peers {
		if p.ID == c.leader {
			return p.ID, p.Addr
		}
	}
	return c.leader, ""
}

// Term returns the current election term.
func (c *Cluster) Term() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.term
}

// Store exposes the replicated intent store (reads and promotion replay).
func (c *Cluster) Store() *IntentStore { return c.store }

// CommitSeq returns the acknowledged-by-quorum sequence number.
func (c *Cluster) CommitSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commitSeq
}

// Record appends one desired-state op to the replicated log, applies it
// locally and blocks until a quorum acknowledges it (or CommitTimeout
// lapses — ErrNoQuorum then; the op stays in the log and commits when
// quorum returns). Only a fenced-in leader may record.
func (c *Cluster) Record(kind OpKind, key string, data json.RawMessage) error {
	seq, err := c.Propose(kind, key, data)
	if err != nil {
		return err
	}
	return c.WaitCommit(seq)
}

// Propose is the non-blocking half of Record: it appends the op to the
// replication log and applies it locally, returning its sequence number
// for a later WaitCommit. Callers that hold their own locks use it so the
// quorum wait happens outside them. Only a fenced-in leader may propose.
func (c *Cluster) Propose(kind OpKind, key string, data json.RawMessage) (uint64, error) {
	c.mu.Lock()
	if c.role != roleLeader || !time.Now().Before(c.leaseUntil) {
		c.mu.Unlock()
		return 0, ErrNotLeader
	}
	op := c.log.Append(c.term, kind, key, data)
	c.store.Apply(op)
	c.mu.Unlock()
	c.opsRecorded.Inc()
	c.kickHeartbeat()
	return op.Seq, nil
}

// WaitCommit blocks until the quorum commit point reaches seq, this
// replica loses leadership (ErrNotLeader — the op may or may not survive
// on the successor), or CommitTimeout lapses (ErrNoQuorum — the op stays
// in the log and commits when quorum returns).
func (c *Cluster) WaitCommit(seq uint64) error {
	deadline := time.Now().Add(c.opts.CommitTimeout)
	for {
		c.broadcastAppend()
		c.mu.Lock()
		committed := c.commitSeq >= seq
		demoted := c.role != roleLeader
		c.mu.Unlock()
		if committed {
			return nil
		}
		if demoted {
			return ErrNotLeader
		}
		if time.Now().After(deadline) {
			return ErrNoQuorum
		}
		time.Sleep(c.opts.HeartbeatInterval / 4)
	}
}

// kickHeartbeat nudges the elect loop to replicate immediately.
func (c *Cluster) kickHeartbeat() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// MemberStatus is one membership row of the /v1/cluster document.
type MemberStatus struct {
	ID          string      `json:"id"`
	Kind        MemberKind  `json:"kind"`
	State       MemberState `json:"state"`
	Incarnation uint64      `json:"incarnation"`
}

// Status is the /v1/cluster document: who leads, what term, how far
// replication has progressed, and the membership table.
type Status struct {
	ID         string `json:"id"`
	ClusterID  string `json:"cluster-id"`
	Leader     string `json:"leader,omitempty"`
	LeaderAddr string `json:"leader-addr,omitempty"`
	IsLeader   bool   `json:"is-leader"`
	Term       uint64 `json:"term"`
	CommitSeq  uint64 `json:"commit-seq"`
	AppliedSeq uint64 `json:"applied-seq"`
	// ReplicationLag is, on the leader, the distance between the log
	// tail and the slowest follower's acknowledgement; on a follower,
	// the distance to the leader's advertised commit point.
	ReplicationLag uint64         `json:"replication-lag"`
	Members        []MemberStatus `json:"members"`
}

// ClusterStatus snapshots the replica's view for the REST surface.
func (c *Cluster) ClusterStatus() Status {
	leaderID, leaderAddr := c.Leader()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID:         c.self,
		ClusterID:  c.opts.ClusterID,
		Leader:     leaderID,
		LeaderAddr: leaderAddr,
		IsLeader:   c.role == roleLeader && time.Now().Before(c.leaseUntil),
		Term:       c.term,
		CommitSeq:  c.commitSeq,
		AppliedSeq: c.store.LastApplied(),
	}
	st.ReplicationLag = c.replicationLagLocked()
	for _, u := range c.updatesLocked() {
		st.Members = append(st.Members, MemberStatus{ID: u.ID, Kind: u.Kind, State: u.State, Incarnation: u.Incarnation})
	}
	return st
}

func (c *Cluster) replicationLagLocked() uint64 {
	if c.role == roleLeader {
		tail := c.log.LastSeq()
		var lag uint64
		for _, id := range c.replicaPeersLocked() {
			if m, ok := c.members[id]; ok && m.state == StateDead {
				continue // a dead replica's lag is unbounded, not informative
			}
			if a := c.acked[id]; tail > a && tail-a > lag {
				lag = tail - a
			}
		}
		return lag
	}
	if applied := c.store.LastApplied(); c.commitSeq > applied {
		return c.commitSeq - applied
	}
	return 0
}

// ReplicationLag is the live lag figure (see Status.ReplicationLag).
func (c *Cluster) ReplicationLag() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replicationLagLocked()
}

func (c *Cluster) journalf(typ, node, graph, detail string, args ...any) {
	if c.opts.Journal != nil {
		c.opts.Journal.Recordf(typ, node, graph, fmt.Sprintf(detail, args...))
	}
}

func (c *Cluster) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}
