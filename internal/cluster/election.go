package cluster

import (
	"math/rand"
	"sync"
	"time"
)

type role int

const (
	roleFollower role = iota
	roleCandidate
	roleLeader
)

// electionTimeout returns a randomized wait in [lease, 2·lease) so
// replicas that lose a leader at the same instant do not all stand for
// election in the same tick.
func (c *Cluster) electionTimeout() time.Duration {
	d := c.opts.LeaseDuration
	return d + time.Duration(rand.Int63n(int64(d)))
}

// electLoop drives the leader side (heartbeats, lease renewal, fencing)
// and the follower side (election timeouts) from one goroutine. The kick
// channel forces an immediate heartbeat after a Record so replication lag
// is bounded by the write path, not the heartbeat period.
func (c *Cluster) electLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		case <-c.kick:
		}
		c.electTick()
	}
}

func (c *Cluster) electTick() {
	now := time.Now()
	c.mu.Lock()
	switch c.role {
	case roleLeader:
		if now.After(c.leaseUntil) {
			// Fencing: could not renew the lease with a quorum —
			// step down before a new leader can be elected elsewhere.
			c.stepDownLocked("lease expired without quorum")
			c.mu.Unlock()
			c.fireDemote()
			return
		}
		c.mu.Unlock()
		c.broadcastAppend()
	default:
		start := now.After(c.electionAt) && c.leaderGoneLocked(now)
		c.mu.Unlock()
		if start {
			c.runElection()
		}
	}
}

// leaderGoneLocked reports whether the known leader can be presumed lost:
// either we never had one, its lease (as observed from the last valid
// Append) has lapsed, or the failure detector marks it suspect/dead —
// SWIM makes elections start in hundreds of milliseconds rather than a
// full lease timeout.
func (c *Cluster) leaderGoneLocked(now time.Time) bool {
	if c.leader == "" {
		return true
	}
	if now.Sub(c.leaderSeen) >= c.opts.LeaseDuration {
		return true
	}
	if m, ok := c.members[c.leader]; ok && m.state != StateAlive {
		return true
	}
	return false
}

// stepDownLocked demotes a leader to follower and schedules the next
// election chance. Caller fires OnDemote after unlocking.
func (c *Cluster) stepDownLocked(why string) {
	if c.role == roleLeader {
		c.logf("cluster %s: stepping down in term %d: %s", c.self, c.term, why)
	}
	c.role = roleFollower
	c.leader = ""
	c.electionAt = time.Now().Add(c.electionTimeout())
}

func (c *Cluster) fireDemote() {
	if c.opts.OnDemote != nil {
		c.opts.OnDemote()
	}
}

// runElection stands for leadership: bump the term, vote for self, and
// canvass every replica peer in parallel. Promotion requires a majority
// of the static replica set, and the lease only becomes valid once the
// first heartbeat round is majority-acknowledged.
func (c *Cluster) runElection() {
	c.mu.Lock()
	if c.role == roleLeader {
		c.mu.Unlock()
		return
	}
	c.role = roleCandidate
	c.term++
	term := c.term
	c.votedTerm = term
	c.votedFor = c.self
	c.electionAt = time.Now().Add(c.electionTimeout())
	lastTerm, lastSeq := c.store.LastTermSeq()
	peers := c.replicaPeersLocked()
	c.mu.Unlock()

	c.electionsStarted.Inc()
	req := VoteRequest{ClusterID: c.opts.ClusterID, Candidate: c.self, Term: term, LastTerm: lastTerm, LastSeq: lastSeq}
	votes := 1 // self
	var maxTerm uint64
	var vmu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range peers {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			peer, err := c.opts.Transport.Dial(id)
			if err != nil {
				return
			}
			reply, err := peer.RequestVote(req)
			if err != nil {
				return
			}
			vmu.Lock()
			defer vmu.Unlock()
			if reply.Granted {
				votes++
			}
			if reply.Term > maxTerm {
				maxTerm = reply.Term
			}
		}(id)
	}
	wg.Wait()

	c.mu.Lock()
	if maxTerm > c.term {
		c.term = maxTerm
		c.stepDownLocked("peer has higher term")
		c.mu.Unlock()
		return
	}
	if c.term != term || c.role != roleCandidate || votes < c.quorum() {
		if c.role == roleCandidate {
			c.role = roleFollower
		}
		c.mu.Unlock()
		return
	}
	// Won. The log window rebases just past the replicated store; the
	// lease starts expired and is earned by the first quorum-acked
	// heartbeat round below, so IsLeader never precedes quorum contact.
	// Every follower starts the term unsynced: sequence numbers restart
	// at this replica's applied point, so a follower may hold a divergent
	// uncommitted suffix from the previous leader at seqs this term
	// reuses. Until a follower acknowledges this term's snapshot baseline
	// it receives no incremental ops and its acks count for nothing
	// (the log-matching property, enforced by resync instead of rollback).
	c.role = roleLeader
	c.leader = c.self
	c.leaseUntil = time.Time{}
	c.log.Reset(c.store.LastApplied())
	c.acked = make(map[string]uint64)
	c.synced = make(map[string]bool)
	c.syncedTerm = term // our own store is this term's baseline
	c.mu.Unlock()

	c.electionsWon.Inc()
	c.broadcastAppend()

	c.mu.Lock()
	promoted := c.role == roleLeader && time.Now().Before(c.leaseUntil)
	c.mu.Unlock()
	if promoted {
		c.journalf(eventLeaderElected, c.self, "", "replica %s elected leader in term %d", c.self, term)
		c.logf("cluster %s: elected leader in term %d (seq %d)", c.self, term, lastSeq)
		if c.opts.OnPromote != nil {
			c.opts.OnPromote(term)
		}
	}
}

// RequestVote implements Peer: grant when the candidate's term is fresh,
// its log is at least as complete as ours, and — the lease guard — our
// current leader is either unknown, silent past its lease, or marked
// suspect/dead by the failure detector. The guard bounds disruption: a
// healthy leader cannot be deposed by a flaky peer.
func (c *Cluster) RequestVote(req VoteRequest) (VoteReply, error) {
	if req.ClusterID != c.opts.ClusterID {
		return VoteReply{}, errWrongCluster
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Term > c.term {
		c.term = req.Term
		if c.role == roleLeader {
			c.stepDownLocked("vote request with higher term")
			defer c.fireDemote()
		} else {
			c.role = roleFollower
		}
	}
	reply := VoteReply{Term: c.term}
	if req.Term < c.term {
		return reply, nil
	}
	if c.votedTerm == req.Term && c.votedFor != req.Candidate {
		return reply, nil
	}
	// Election restriction: rank histories by (term, seq) of the newest
	// applied op. Comparing seq alone would let a replica whose history
	// ends in an older term's uncommitted suffix tie with — and depose —
	// replicas holding committed ops at the same sequence numbers.
	myTerm, mySeq := c.store.LastTermSeq()
	if req.LastTerm < myTerm || (req.LastTerm == myTerm && req.LastSeq < mySeq) {
		return reply, nil
	}
	if c.leader != "" && c.leader != req.Candidate && !c.leaderGoneLocked(now) {
		return reply, nil
	}
	c.votedTerm = req.Term
	c.votedFor = req.Candidate
	c.leader = ""
	c.electionAt = now.Add(c.electionTimeout())
	reply.Granted = true
	return reply, nil
}

// broadcastAppend runs one replication/heartbeat round, in parallel per
// follower: a follower not yet synced to this term gets a full snapshot
// (truncating any divergent suffix a deposed leader left on it), a synced
// one the ops past its acknowledgement (or a snapshot again when its ack
// fell out of the log window). A majority of current-term
// acknowledgements advances the commit point and renews the leader lease
// from the round's start time; replies from any other term are ignored.
func (c *Cluster) broadcastAppend() {
	start := time.Now()
	c.mu.Lock()
	if c.role != roleLeader {
		c.mu.Unlock()
		return
	}
	term := c.term
	commit := c.commitSeq
	peers := c.replicaPeersLocked()
	type dest struct {
		id  string
		req AppendRequest
	}
	var snap *Snapshot // built once, shared read-only across requests
	dests := make([]dest, 0, len(peers))
	for _, id := range peers {
		req := AppendRequest{ClusterID: c.opts.ClusterID, Leader: c.self, Term: term, CommitSeq: commit}
		ops, inWindow := c.log.Since(c.acked[id])
		if c.synced[id] && inWindow {
			req.Ops = ops
		} else {
			if snap == nil {
				s := c.store.Snapshot()
				snap = &s
			}
			req.Snapshot = snap
		}
		dests = append(dests, dest{id: id, req: req})
	}
	c.mu.Unlock()

	acks := 1 // self
	var maxTerm uint64
	type ack struct {
		seq uint64
		ok  bool
	}
	results := make(map[string]ack)
	var rmu sync.Mutex
	var wg sync.WaitGroup
	for _, d := range dests {
		wg.Add(1)
		go func(d dest) {
			defer wg.Done()
			peer, err := c.opts.Transport.Dial(d.id)
			if err != nil {
				return
			}
			reply, err := peer.Append(d.req)
			if err != nil {
				return
			}
			rmu.Lock()
			defer rmu.Unlock()
			if reply.Term > maxTerm {
				maxTerm = reply.Term
			}
			if reply.Term != d.req.Term {
				return // stale-term reply: not an acknowledgement of ours
			}
			if reply.Ok {
				acks++
			}
			results[d.id] = ack{seq: reply.Acked, ok: reply.Ok}
		}(d)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	if maxTerm > c.term {
		c.term = maxTerm
		c.stepDownLocked("append rejected by higher term")
		defer c.fireDemote()
		return
	}
	if c.role != roleLeader || c.term != term {
		return
	}
	tail := c.log.LastSeq()
	for id, a := range results {
		if !a.ok || a.seq > tail {
			// Ok=false at our own term means the follower refused
			// incremental ops (it restarted, or never adopted this term's
			// baseline); an ack past our log tail is a divergent suffix we
			// never appended. Either way: resync from a snapshot, and stop
			// counting its old ack toward commit — a restarted follower no
			// longer holds the ops that ack claimed.
			delete(c.synced, id)
			delete(c.acked, id)
			continue
		}
		c.synced[id] = true
		if a.seq > c.acked[id] {
			c.acked[id] = a.seq
		}
	}
	if acks >= c.quorum() {
		c.leaseUntil = start.Add(c.opts.LeaseDuration)
		c.heartbeatRounds.Inc()
	}
	c.advanceCommitLocked()
}

// advanceCommitLocked recomputes the commit point: the quorum-th highest
// contiguously-acknowledged sequence number across the replica set (self
// counts at the log tail).
func (c *Cluster) advanceCommitLocked() {
	seqs := []uint64{c.log.LastSeq()}
	for _, id := range c.replicaPeersLocked() {
		seqs = append(seqs, c.acked[id])
	}
	q := c.quorum()
	if len(seqs) < q {
		return
	}
	// Sort descending; the q-th entry is replicated on at least q replicas.
	for i := 1; i < len(seqs); i++ {
		for j := i; j > 0 && seqs[j] > seqs[j-1]; j-- {
			seqs[j], seqs[j-1] = seqs[j-1], seqs[j]
		}
	}
	if seq := seqs[q-1]; seq > c.commitSeq {
		c.commitSeq = seq
	}
}

// Append implements Peer: the follower side of replication. A valid
// append from the current (or newer) term adopts the leader, restores the
// snapshot if one rode along (which also marks this term's baseline as
// adopted), applies the ops idempotently and reports the contiguous apply
// point back as the acknowledgement. Incremental ops from a term whose
// baseline we have not adopted are refused (Ok=false) so the leader
// reseeds us with a snapshot — without that guard a replica left holding
// a deposed leader's uncommitted suffix would ack the new leader's
// different ops at the same sequence numbers as duplicates.
func (c *Cluster) Append(req AppendRequest) (AppendReply, error) {
	if req.ClusterID != c.opts.ClusterID {
		return AppendReply{}, errWrongCluster
	}
	now := time.Now()
	c.mu.Lock()
	if req.Term < c.term {
		reply := AppendReply{Term: c.term, Acked: c.store.LastApplied()}
		c.mu.Unlock()
		return reply, nil
	}
	var demoted bool
	if req.Term > c.term || c.role != roleFollower {
		if c.role == roleLeader {
			c.stepDownLocked("append from newer leader")
			demoted = true
		}
		c.role = roleFollower
	}
	termChanged := c.term != req.Term
	c.term = req.Term
	newLeader := c.leader != req.Leader
	c.leader = req.Leader
	c.leaderSeen = now
	c.electionAt = now.Add(c.electionTimeout())
	if req.CommitSeq > c.commitSeq {
		c.commitSeq = req.CommitSeq
	}
	if termChanged || newLeader {
		// Ops parked while the previous leader was streaming may occupy
		// sequence numbers this leader reuses for different ops; discard
		// them rather than fold them across the leadership boundary.
		c.store.ClearPending()
	}
	c.mu.Unlock()

	if demoted {
		c.fireDemote()
	}
	if newLeader {
		c.journalf(eventLeaderElected, req.Leader, "", "following leader %s in term %d", req.Leader, req.Term)
	}
	if req.Snapshot != nil {
		c.store.Restore(*req.Snapshot)
	}
	c.mu.Lock()
	if req.Snapshot != nil && c.term == req.Term {
		c.syncedTerm = req.Term
	}
	synced := c.syncedTerm == req.Term
	c.mu.Unlock()
	if !synced && len(req.Ops) > 0 {
		return AppendReply{Term: req.Term, Acked: c.store.LastApplied()}, nil
	}
	for _, op := range req.Ops {
		c.store.Apply(op)
	}
	return AppendReply{Term: req.Term, Acked: c.store.LastApplied(), Ok: true}, nil
}
