package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// OpKind names one desired-state mutation in the replicated intent log.
// The set mirrors the orchestrator's mutating entry points: graph
// lifecycle ops carry the full deployment record, fleet ops carry node
// and link records.
type OpKind string

const (
	OpDeploy     OpKind = "deploy"
	OpUpdate     OpKind = "update"
	OpUndeploy   OpKind = "undeploy"
	OpScale      OpKind = "scale"
	OpReflavor   OpKind = "reflavor"
	OpNodeAdd    OpKind = "node-add"
	OpNodeRemove OpKind = "node-remove"
	OpLinkAdd    OpKind = "link-add"
	OpLinkRemove OpKind = "link-remove"
)

// Op is one sequence-numbered desired-state operation. Seq totally orders
// the log; Term records which leadership term produced the op. Data is the
// opaque record the orchestrator replays on promotion — the cluster layer
// never interprets it.
type Op struct {
	Seq  uint64          `json:"seq"`
	Term uint64          `json:"term"`
	Kind OpKind          `json:"kind"`
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data,omitempty"`
}

// category maps an op kind to the intent-store bucket it mutates and
// whether the op stores or deletes the record under its key.
func (k OpKind) category() (cat string, remove bool) {
	switch k {
	case OpDeploy, OpUpdate, OpScale, OpReflavor:
		return "graphs", false
	case OpUndeploy:
		return "graphs", true
	case OpNodeAdd:
		return "nodes", false
	case OpNodeRemove:
		return "nodes", true
	case OpLinkAdd:
		return "links", false
	case OpLinkRemove:
		return "links", true
	default:
		return "", false
	}
}

// Snapshot is a full copy of the intent store at one sequence number, the
// catch-up payload for joiners that fell behind the leader's log window.
type Snapshot struct {
	Seq uint64 `json:"seq"`
	// Term is the leadership term of the op at Seq. Restoring a snapshot
	// adopts it, so election log-completeness comparisons rank this
	// replica's history correctly (see RequestVote).
	Term uint64 `json:"term,omitempty"`
	// Records is category → key → record (graphs, nodes, links).
	Records map[string]map[string]json.RawMessage `json:"records"`
}

// IntentStore is the replicated desired state: the fold of every applied
// op, keyed by category and key. Apply is idempotent by sequence number
// and tolerates reordered delivery by parking out-of-order ops until the
// gap fills, so the store converges to the same state on every replica
// regardless of duplication or reordering on the wire.
type IntentStore struct {
	mu          sync.Mutex
	lastApplied uint64
	lastTerm    uint64 // term of the op at lastApplied
	records     map[string]map[string]json.RawMessage
	pending     map[uint64]Op
}

// NewIntentStore builds an empty store.
func NewIntentStore() *IntentStore {
	return &IntentStore{
		records: make(map[string]map[string]json.RawMessage),
		pending: make(map[uint64]Op),
	}
}

// LastApplied is the highest contiguously-applied sequence number — the
// value acknowledged to the leader.
func (s *IntentStore) LastApplied() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastApplied
}

// LastTermSeq is the (term, seq) of the newest applied op — the pair
// elections compare so a replica whose history ends in an older term's
// uncommitted suffix cannot outrank one holding committed ops at the same
// sequence number.
func (s *IntentStore) LastTermSeq() (term, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTerm, s.lastApplied
}

// Apply folds one op into the store. Ops at or below lastApplied are
// duplicates and ignored; ops beyond lastApplied+1 are parked until the
// missing prefix arrives. Returns the new lastApplied.
func (s *IntentStore) Apply(op Op) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLocked(op)
	return s.lastApplied
}

func (s *IntentStore) applyLocked(op Op) {
	if op.Seq <= s.lastApplied {
		return // duplicate
	}
	if op.Seq > s.lastApplied+1 {
		s.pending[op.Seq] = op // reordered: park until the gap fills
		return
	}
	s.foldLocked(op)
	s.lastApplied = op.Seq
	s.lastTerm = op.Term
	// Drain any parked ops the new prefix unblocks.
	for {
		next, ok := s.pending[s.lastApplied+1]
		if !ok {
			return
		}
		delete(s.pending, next.Seq)
		s.foldLocked(next)
		s.lastApplied = next.Seq
		s.lastTerm = next.Term
	}
}

func (s *IntentStore) foldLocked(op Op) {
	cat, remove := op.Kind.category()
	if cat == "" {
		return
	}
	if remove {
		if m := s.records[cat]; m != nil {
			delete(m, op.Key)
			if len(m) == 0 {
				delete(s.records, cat)
			}
		}
		return
	}
	m := s.records[cat]
	if m == nil {
		m = make(map[string]json.RawMessage)
		s.records[cat] = m
	}
	// Copy: the caller's buffer may be reused (HTTP body, ring slot).
	m[op.Key] = append(json.RawMessage(nil), op.Data...)
}

// Snapshot copies the store at its current sequence number.
func (s *IntentStore) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{Seq: s.lastApplied, Term: s.lastTerm, Records: make(map[string]map[string]json.RawMessage, len(s.records))}
	for cat, m := range s.records {
		cm := make(map[string]json.RawMessage, len(m))
		for k, v := range m {
			cm[k] = append(json.RawMessage(nil), v...)
		}
		snap.Records[cat] = cm
	}
	return snap
}

// Restore replaces the store with a snapshot, discarding every parked op.
// Parked ops may predate the snapshot's leadership term and occupy
// sequence numbers the snapshotting leader assigns to different ops, so
// none of them can be trusted to share the snapshot's history; anything
// genuinely missing past the snapshot point is re-delivered by the
// leader's next append (its ops window starts at our acknowledgement).
func (s *IntentStore) Restore(snap Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = make(map[string]map[string]json.RawMessage, len(snap.Records))
	for cat, m := range snap.Records {
		cm := make(map[string]json.RawMessage, len(m))
		for k, v := range m {
			cm[k] = append(json.RawMessage(nil), v...)
		}
		s.records[cat] = cm
	}
	s.lastApplied = snap.Seq
	s.lastTerm = snap.Term
	s.pending = make(map[uint64]Op)
}

// ClearPending discards parked out-of-order ops. Followers call it when
// adopting a new leader or term: an op parked while the previous leader
// was streaming may sit at a sequence number the new leader reuses for a
// different op, and folding it later would silently diverge this replica.
func (s *IntentStore) ClearPending() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) != 0 {
		s.pending = make(map[uint64]Op)
	}
}

// Get returns the record under category/key, or nil.
func (s *IntentStore) Get(category, key string) json.RawMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.records[category][key]
	if v == nil {
		return nil
	}
	return append(json.RawMessage(nil), v...)
}

// Keys lists the keys in one category, sorted.
func (s *IntentStore) Keys(category string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.records[category]))
	for k := range s.records[category] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Serialize renders the whole store as canonical JSON: Go's encoder sorts
// map keys, so two stores holding the same records serialize to identical
// bytes — the property the promotion-replay test asserts.
func (s *IntentStore) Serialize() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.Marshal(struct {
		Seq     uint64                                `json:"seq"`
		Records map[string]map[string]json.RawMessage `json:"records"`
	}{s.lastApplied, s.records})
	if err != nil {
		// Records are json.RawMessage previously validated on ingest;
		// marshal cannot fail on them.
		panic(fmt.Sprintf("cluster: serialize intent store: %v", err))
	}
	return data
}

// Log is the leader-side replication window: the most recent ops kept in
// memory so lagging followers catch up incrementally. A follower whose ack
// point fell out of the window is reseeded with a full snapshot instead.
type Log struct {
	mu    sync.Mutex
	depth int
	ops   []Op // ascending seq, at most depth entries
	next  uint64
}

// NewLog builds a window holding the last depth ops.
func NewLog(depth int) *Log {
	if depth <= 0 {
		depth = 1024
	}
	return &Log{depth: depth, next: 1}
}

// Append assigns the next sequence number to the op, records it in the
// window and returns it.
func (l *Log) Append(term uint64, kind OpKind, key string, data json.RawMessage) Op {
	l.mu.Lock()
	defer l.mu.Unlock()
	op := Op{Seq: l.next, Term: term, Kind: kind, Key: key, Data: append(json.RawMessage(nil), data...)}
	l.next++
	l.ops = append(l.ops, op)
	if len(l.ops) > l.depth {
		l.ops = append(l.ops[:0], l.ops[len(l.ops)-l.depth:]...)
	}
	return op
}

// LastSeq is the sequence number of the newest op (0 when empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Reset rebases the log after a promotion: the new leader starts its
// window empty just past the store's applied point.
func (l *Log) Reset(afterSeq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ops = nil
	l.next = afterSeq + 1
}

// Since returns the ops after seq, and ok=false when seq has fallen out of
// the window (the follower needs a snapshot).
func (l *Log) Since(seq uint64) (ops []Op, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq >= l.next-1 {
		return nil, true // already current
	}
	if len(l.ops) == 0 || l.ops[0].Seq > seq+1 {
		return nil, false
	}
	idx := sort.Search(len(l.ops), func(i int) bool { return l.ops[i].Seq > seq })
	out := make([]Op, len(l.ops)-idx)
	copy(out, l.ops[idx:])
	return out, true
}
