package cluster

import (
	"sort"
	"time"
)

// memberInfo is one row of the local membership table.
type memberInfo struct {
	id          string
	kind        MemberKind
	state       MemberState
	incarnation uint64
	since       time.Time // when the member entered its current state
}

// transition is a membership state change worth acting on, collected under
// the lock and fired (journal, callbacks) after it is released so callback
// code can safely re-enter the cluster.
type transition struct {
	id    string
	kind  MemberKind
	state MemberState
}

// updatesLocked renders the full membership table as gossip rumors. At
// this fleet size (a handful of replicas, tens of nodes) full-table
// exchange on every probe is cheaper than tracking per-rumor transmission
// counts, and it makes convergence one round trip.
func (c *Cluster) updatesLocked() []MemberUpdate {
	out := make([]MemberUpdate, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, MemberUpdate{ID: m.id, Kind: m.kind, State: m.state, Incarnation: m.incarnation})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// setStateLocked moves a member to a new state/incarnation and returns the
// transition to fire, or nil when nothing observable changed.
func (c *Cluster) setStateLocked(m *memberInfo, st MemberState, inc uint64) *transition {
	if inc < m.incarnation || (inc == m.incarnation && !overrides(st, m.state)) {
		return nil
	}
	changed := m.state != st
	m.incarnation = inc
	if !changed {
		return nil
	}
	m.state = st
	m.since = time.Now()
	return &transition{id: m.id, kind: m.kind, state: st}
}

// overrides reports whether rumor state a beats state b at the same
// incarnation: dead > suspect > alive (the standard SWIM precedence).
func overrides(a, b MemberState) bool {
	rank := func(s MemberState) int {
		switch s {
		case StateDead:
			return 2
		case StateSuspect:
			return 1
		default:
			return 0
		}
	}
	return rank(a) > rank(b)
}

// mergeLocked folds a batch of incoming rumors into the table, returning
// the transitions they caused. A rumor about self in any non-alive state
// is refuted by bumping our own incarnation — the next exchange carries
// the refutation to whoever suspected us.
func (c *Cluster) mergeLocked(updates []MemberUpdate) []transition {
	var ts []transition
	for _, u := range updates {
		if u.ID == c.self {
			if u.State != StateAlive && u.Incarnation >= c.incarnation {
				c.incarnation = u.Incarnation + 1
				// The refutation only propagates if our own gossip carries
				// it: updatesLocked renders the members table, so the self
				// row must advertise Alive at the bumped incarnation —
				// otherwise peers keep suspecting us until a direct probe
				// happens to succeed.
				if m, ok := c.members[c.self]; ok {
					m.state = StateAlive
					m.incarnation = c.incarnation
					m.since = time.Now()
				}
			}
			continue
		}
		m, ok := c.members[u.ID]
		if !ok {
			// Learn new members from gossip (a joiner announced by a
			// peer before our own config or intent store names it).
			m = &memberInfo{id: u.ID, kind: u.Kind, state: StateAlive, incarnation: 0, since: time.Now()}
			c.members[u.ID] = m
		}
		if t := c.setStateLocked(m, u.State, u.Incarnation); t != nil {
			ts = append(ts, *t)
		}
	}
	return ts
}

// sweepLocked hardens suspicions that outlived the suspicion timeout into
// deaths.
func (c *Cluster) sweepLocked(now time.Time) []transition {
	var ts []transition
	for _, m := range c.members {
		if m.state == StateSuspect && now.Sub(m.since) >= c.opts.SuspicionTimeout {
			if t := c.setStateLocked(m, StateDead, m.incarnation); t != nil {
				ts = append(ts, *t)
			}
		}
	}
	return ts
}

// fireTransitions records journal events and invokes the node-state
// callback. Must be called without holding c.mu.
func (c *Cluster) fireTransitions(ts []transition) {
	for _, t := range ts {
		switch t.state {
		case StateSuspect:
			c.journalf(eventMemberSuspect, t.id, "", "%s %s failed direct and indirect probes", t.kind, t.id)
			c.membersSuspected.Inc()
		case StateDead:
			c.journalf(eventMemberDead, t.id, "", "%s %s declared dead after suspicion timeout", t.kind, t.id)
			c.membersDied.Inc()
			if t.kind == KindNode && c.opts.OnNodeState != nil {
				c.opts.OnNodeState(t.id, false)
			}
		case StateAlive:
			c.journalf(eventMemberAlive, t.id, "", "%s %s answering again", t.kind, t.id)
			if t.kind == KindNode && c.opts.OnNodeState != nil {
				c.opts.OnNodeState(t.id, true)
			}
		}
	}
}

// syncMonitoredNodesLocked derives the monitored Universal Node set from
// the replicated intent store, so every replica — not just the leader —
// probes the same fleet and a freshly promoted leader already knows which
// nodes are dead.
func (c *Cluster) syncMonitoredNodesLocked() {
	want := make(map[string]bool)
	for _, name := range c.store.Keys("nodes") {
		want[name] = true
		if _, ok := c.members[name]; !ok {
			c.members[name] = &memberInfo{id: name, kind: KindNode, state: StateAlive, since: time.Now()}
		}
	}
	for id, m := range c.members {
		if m.kind == KindNode && !want[id] {
			delete(c.members, id)
		}
	}
}

// probeLoop is the SWIM failure detector: every probe interval it probes
// one member round-robin, falling back to indirect ping-req through k
// peers before suspecting, and sweeps expired suspicions.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		c.probeTick()
	}
}

func (c *Cluster) probeTick() {
	c.mu.Lock()
	c.syncMonitoredNodesLocked()
	ts := c.sweepLocked(time.Now())
	target := c.nextProbeTargetLocked()
	c.mu.Unlock()
	c.fireTransitions(ts)
	if target == "" {
		return
	}
	c.fireTransitions(c.probeMember(target))
}

// nextProbeTargetLocked walks the sorted member list round-robin so every
// member is probed within len(members) intervals.
func (c *Cluster) nextProbeTargetLocked() string {
	ids := make([]string, 0, len(c.members))
	for id := range c.members {
		if id != c.self {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return ""
	}
	sort.Strings(ids)
	c.probeIdx = (c.probeIdx + 1) % len(ids)
	return ids[c.probeIdx]
}

// probeMember runs the full SWIM round for one member: direct probe, then
// indirect ping-req through up to k alive replica peers, then suspicion.
// Returns the transitions to fire.
func (c *Cluster) probeMember(id string) []transition {
	c.mu.Lock()
	m, ok := c.members[id]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	kind := m.kind
	relays := c.aliveReplicasLocked(id)
	c.mu.Unlock()

	if c.directProbe(id, kind) {
		return c.markAlive(id)
	}
	// Direct probe failed: ask up to k peers to probe on our behalf —
	// only when every independent path agrees do we suspect.
	k := c.opts.IndirectProbes
	for _, relay := range relays {
		if k == 0 {
			break
		}
		k--
		if c.indirectProbe(relay, id) {
			return c.markAlive(id)
		}
	}
	c.mu.Lock()
	var ts []transition
	if m, ok := c.members[id]; ok {
		if t := c.setStateLocked(m, StateSuspect, m.incarnation); t != nil {
			ts = append(ts, *t)
		}
	}
	c.mu.Unlock()
	return ts
}

// markAlive refutes any suspicion of the member by bumping its
// incarnation past the suspected one — replicas manage monitored-node
// incarnations collectively, and for replicas a successful direct probe
// is as authoritative as the member's own refutation.
func (c *Cluster) markAlive(id string) []transition {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		return nil
	}
	inc := m.incarnation
	if m.state != StateAlive {
		inc++
	}
	if t := c.setStateLocked(m, StateAlive, inc); t != nil {
		return []transition{*t}
	}
	return nil
}

// aliveReplicasLocked lists alive replica peers other than self and the
// probe target, the candidate relays for indirect probes.
func (c *Cluster) aliveReplicasLocked(except string) []string {
	var out []string
	for id, m := range c.members {
		if m.kind == KindReplica && m.state == StateAlive && id != c.self && id != except {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// directProbe pings one member: replicas over the cluster transport
// (exchanging gossip), nodes through the NodeProber callback.
func (c *Cluster) directProbe(id string, kind MemberKind) bool {
	if kind == KindNode {
		if c.opts.NodeProber == nil {
			return true // nothing to probe with; assume fine
		}
		return c.opts.NodeProber(id, c.store.Get("nodes", id)) == nil
	}
	peer, err := c.opts.Transport.Dial(id)
	if err != nil {
		return false
	}
	c.mu.Lock()
	ups := c.updatesLocked()
	c.mu.Unlock()
	reply, err := peer.Ping(c.self, ups)
	if err != nil {
		return false
	}
	c.mu.Lock()
	ts := c.mergeLocked(reply)
	c.mu.Unlock()
	c.fireTransitions(ts)
	return true
}

// indirectProbe asks relay to probe target for us.
func (c *Cluster) indirectProbe(relay, target string) bool {
	peer, err := c.opts.Transport.Dial(relay)
	if err != nil {
		return false
	}
	c.mu.Lock()
	ups := c.updatesLocked()
	c.mu.Unlock()
	reply, err := peer.PingReq(c.self, target, ups)
	if err != nil {
		return false
	}
	c.mu.Lock()
	ts := c.mergeLocked(reply)
	c.mu.Unlock()
	c.fireTransitions(ts)
	return true
}

// Ping implements Peer: answer a direct probe, merging the caller's
// rumors and returning ours.
func (c *Cluster) Ping(from string, updates []MemberUpdate) ([]MemberUpdate, error) {
	c.mu.Lock()
	ts := c.mergeLocked(updates)
	// Hearing from a peer directly is proof of life.
	if m, ok := c.members[from]; ok && m.state != StateAlive {
		if t := c.setStateLocked(m, StateAlive, m.incarnation+1); t != nil {
			ts = append(ts, *t)
		}
	}
	reply := c.updatesLocked()
	c.mu.Unlock()
	c.fireTransitions(ts)
	return reply, nil
}

// PingReq implements Peer: probe target on the caller's behalf (the
// indirect path of the SWIM detector).
func (c *Cluster) PingReq(from, target string, updates []MemberUpdate) ([]MemberUpdate, error) {
	c.mu.Lock()
	ts := c.mergeLocked(updates)
	m, ok := c.members[target]
	var kind MemberKind
	if ok {
		kind = m.kind
	}
	reply := c.updatesLocked()
	c.mu.Unlock()
	c.fireTransitions(ts)
	if !ok {
		return reply, errUnknownMember
	}
	if !c.directProbe(target, kind) {
		return reply, errProbeFailed
	}
	c.fireTransitions(c.markAlive(target))
	c.mu.Lock()
	reply = c.updatesLocked()
	c.mu.Unlock()
	return reply, nil
}
