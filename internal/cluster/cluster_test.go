package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// --- IntentStore / Log unit tests -----------------------------------------

func op(seq uint64, kind OpKind, key, data string) Op {
	return Op{Seq: seq, Term: 1, Kind: kind, Key: key, Data: json.RawMessage(data)}
}

func TestIntentStoreIdempotentBySeq(t *testing.T) {
	s := NewIntentStore()
	s.Apply(op(1, OpDeploy, "g1", `{"v":1}`))
	s.Apply(op(2, OpUpdate, "g1", `{"v":2}`))
	// Duplicate delivery of an old op must not regress the record.
	s.Apply(op(1, OpDeploy, "g1", `{"v":1}`))
	s.Apply(op(2, OpUpdate, "g1", `{"v":2}`))
	if got := string(s.Get("graphs", "g1")); got != `{"v":2}` {
		t.Fatalf("after duplicates: got %s, want {\"v\":2}", got)
	}
	if s.LastApplied() != 2 {
		t.Fatalf("lastApplied = %d, want 2", s.LastApplied())
	}
}

func TestIntentStoreReorderedDelivery(t *testing.T) {
	s := NewIntentStore()
	// Deliver 3 and 2 before 1: both park until the gap fills, then the
	// whole prefix drains in order.
	s.Apply(op(3, OpUpdate, "g1", `{"v":3}`))
	s.Apply(op(2, OpUpdate, "g1", `{"v":2}`))
	if s.LastApplied() != 0 {
		t.Fatalf("applied out-of-order ops early: lastApplied = %d", s.LastApplied())
	}
	s.Apply(op(1, OpDeploy, "g1", `{"v":1}`))
	if s.LastApplied() != 3 {
		t.Fatalf("lastApplied = %d, want 3", s.LastApplied())
	}
	if got := string(s.Get("graphs", "g1")); got != `{"v":3}` {
		t.Fatalf("got %s, want {\"v\":3}", got)
	}
}

func TestIntentStoreRemoveAndCategories(t *testing.T) {
	s := NewIntentStore()
	s.Apply(op(1, OpNodeAdd, "n1", `{"url":"http://n1"}`))
	s.Apply(op(2, OpNodeAdd, "n2", `{"url":"http://n2"}`))
	s.Apply(op(3, OpLinkAdd, "n1|eth1|n2|eth1", `{"a-node":"n1"}`))
	s.Apply(op(4, OpNodeRemove, "n2", ""))
	if got := s.Keys("nodes"); len(got) != 1 || got[0] != "n1" {
		t.Fatalf("nodes = %v, want [n1]", got)
	}
	if got := s.Keys("links"); len(got) != 1 {
		t.Fatalf("links = %v, want one", got)
	}
}

func TestIntentStoreSnapshotRestoreSerialize(t *testing.T) {
	a := NewIntentStore()
	a.Apply(op(1, OpDeploy, "g1", `{"v":1}`))
	a.Apply(op(2, OpNodeAdd, "n1", `{"url":"u"}`))
	b := NewIntentStore()
	b.Restore(a.Snapshot())
	if !bytes.Equal(a.Serialize(), b.Serialize()) {
		t.Fatalf("restored store serializes differently:\n%s\n%s", a.Serialize(), b.Serialize())
	}
	// A parked op must NOT survive Restore: a snapshot is a new baseline,
	// and ops parked before it may belong to a divergent (uncommitted)
	// suffix from a deposed leader. The leader re-delivers anything the
	// snapshot is missing.
	c := NewIntentStore()
	c.Apply(op(3, OpUpdate, "g1", `{"v":3}`))
	c.Restore(a.Snapshot())
	if c.LastApplied() != 2 {
		t.Fatalf("restore did not reset to the snapshot point: lastApplied = %d", c.LastApplied())
	}
	if got := string(c.Get("graphs", "g1")); got != `{"v":1}` {
		t.Fatalf("parked op folded across a restore: got %s, want {\"v\":1}", got)
	}
	// Re-delivery from the snapshot's baseline drains normally.
	c.Apply(op(3, OpUpdate, "g1", `{"v":30}`))
	if c.LastApplied() != 3 {
		t.Fatalf("re-delivered op did not apply: lastApplied = %d", c.LastApplied())
	}
}

func TestLogWindowAndSnapshotFallback(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 8; i++ {
		l.Append(1, OpDeploy, fmt.Sprintf("g%d", i), json.RawMessage(`{}`))
	}
	if l.LastSeq() != 8 {
		t.Fatalf("lastSeq = %d, want 8", l.LastSeq())
	}
	if ops, ok := l.Since(6); !ok || len(ops) != 2 || ops[0].Seq != 7 {
		t.Fatalf("Since(6) = %v, %v", ops, ok)
	}
	if _, ok := l.Since(2); ok {
		t.Fatal("Since(2) should fall out of a depth-4 window")
	}
	if ops, ok := l.Since(8); !ok || len(ops) != 0 {
		t.Fatalf("Since(tail) = %v, %v, want empty ok", ops, ok)
	}
}

// --- cluster rig -----------------------------------------------------------

type rig struct {
	net      *LocalNetwork
	peers    []PeerSpec
	clusters map[string]*Cluster
}

func newRig(t *testing.T, ids []string, mutate func(id string, o *Options)) *rig {
	t.Helper()
	r := &rig{net: NewLocalNetwork(), clusters: make(map[string]*Cluster)}
	for _, id := range ids {
		r.peers = append(r.peers, PeerSpec{ID: id, Addr: "http://" + id})
	}
	for _, id := range ids {
		o := Options{
			ID:                id,
			ClusterID:         "test",
			Peers:             r.peers,
			Transport:         r.net.Transport(id),
			ProbeInterval:     10 * time.Millisecond,
			SuspicionTimeout:  50 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			LeaseDuration:     120 * time.Millisecond,
			CommitTimeout:     time.Second,
		}
		if mutate != nil {
			mutate(id, &o)
		}
		c, err := New(o)
		if err != nil {
			t.Fatalf("New(%s): %v", id, err)
		}
		r.net.Register(id, c)
		r.clusters[id] = c
	}
	t.Cleanup(func() {
		for _, c := range r.clusters {
			c.Close()
		}
	})
	return r
}

func (r *rig) startAll() {
	for _, c := range r.clusters {
		c.Start()
	}
}

func (r *rig) leader() *Cluster {
	for _, c := range r.clusters {
		if c.IsLeader() {
			return c
		}
	}
	return nil
}

func (r *rig) leaders() []*Cluster {
	var out []*Cluster
	for _, c := range r.clusters {
		if c.IsLeader() {
			out = append(out, c)
		}
	}
	return out
}

// --- election tests --------------------------------------------------------

func TestSingleReplicaSelfElects(t *testing.T) {
	r := newRig(t, []string{"a"}, nil)
	r.startAll()
	waitFor(t, 2*time.Second, "self-election", func() bool { return r.clusters["a"].IsLeader() })
	if err := r.clusters["a"].Record(OpDeploy, "g1", json.RawMessage(`{}`)); err != nil {
		t.Fatalf("Record on single-replica leader: %v", err)
	}
	if r.clusters["a"].CommitSeq() != 1 {
		t.Fatalf("commit = %d, want 1 (quorum of one)", r.clusters["a"].CommitSeq())
	}
}

func TestThreeReplicasElectExactlyOneLeader(t *testing.T) {
	r := newRig(t, []string{"a", "b", "c"}, nil)
	r.startAll()
	waitFor(t, 3*time.Second, "a leader", func() bool { return r.leader() != nil })
	// Leadership must be unique and every replica must agree on it.
	leader := r.leader()
	waitFor(t, 2*time.Second, "all replicas following one leader", func() bool {
		if len(r.leaders()) != 1 {
			return false
		}
		for _, c := range r.clusters {
			if id, _ := c.Leader(); id != leader.self {
				return false
			}
		}
		return true
	})
}

func TestLeaderKillPromotesFollowerWithIntentIntact(t *testing.T) {
	r := newRig(t, []string{"a", "b", "c"}, nil)
	r.startAll()
	waitFor(t, 3*time.Second, "initial leader", func() bool { return r.leader() != nil })
	old := r.leader()
	for i := 0; i < 5; i++ {
		if err := old.Record(OpDeploy, fmt.Sprintf("g%d", i), json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	waitFor(t, 2*time.Second, "replication drained", func() bool { return old.ReplicationLag() == 0 })
	want := old.Store().Serialize()

	r.net.SetDown(old.self, true)
	start := time.Now()
	var next *Cluster
	waitFor(t, 3*time.Second, "failover", func() bool {
		for _, c := range r.clusters {
			if c != old && c.IsLeader() {
				next = c
				return true
			}
		}
		return false
	})
	t.Logf("failover in %v", time.Since(start))
	// Promotion replay: the new leader's intent store must be
	// byte-identical to the old leader's.
	if got := next.Store().Serialize(); !bytes.Equal(got, want) {
		t.Fatalf("intent store diverged across failover:\nold: %s\nnew: %s", want, got)
	}
	// The dead ex-leader is fenced within its lease.
	waitFor(t, 2*time.Second, "ex-leader fenced", func() bool { return !old.IsLeader() })
	if err := old.Record(OpDeploy, "gX", json.RawMessage(`{}`)); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("fenced ex-leader Record = %v, want ErrNotLeader", err)
	}
}

func TestPartitionedLeaderFencesAndRejoins(t *testing.T) {
	r := newRig(t, []string{"a", "b", "c"}, nil)
	r.startAll()
	waitFor(t, 3*time.Second, "initial leader", func() bool { return r.leader() != nil })
	old := r.leader()
	if err := old.Record(OpDeploy, "g1", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatalf("Record: %v", err)
	}

	// Cut the leader off from both followers: the majority side elects a
	// successor, the minority-side ex-leader loses its lease and fences.
	r.net.Isolate(old.self)
	var next *Cluster
	waitFor(t, 3*time.Second, "majority side elects successor", func() bool {
		for _, c := range r.clusters {
			if c != old && c.IsLeader() {
				next = c
				return true
			}
		}
		return false
	})
	waitFor(t, 2*time.Second, "ex-leader lease expired", func() bool { return !old.IsLeader() })
	if err := old.Record(OpUpdate, "g1", json.RawMessage(`{"v":2}`)); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("partitioned ex-leader accepted a write: %v", err)
	}

	// Writes proceed on the majority side while the partition holds.
	if err := next.Record(OpUpdate, "g1", json.RawMessage(`{"v":3}`)); err != nil {
		t.Fatalf("majority leader Record: %v", err)
	}

	// Heal: the ex-leader rejoins as a follower and converges on the
	// majority's intent, including ops it never saw.
	r.net.Rejoin(old.self)
	waitFor(t, 3*time.Second, "ex-leader converges as follower", func() bool {
		return !old.IsLeader() && bytes.Equal(old.Store().Serialize(), next.Store().Serialize())
	})
	if got := string(old.Store().Get("graphs", "g1")); got != `{"v":3}` {
		t.Fatalf("healed follower g1 = %s, want {\"v\":3}", got)
	}
}

// A deposed leader holding a divergent uncommitted op at a sequence the
// new leader reuses must abandon its suffix and converge on the committed
// history. (Regression: seq-only dedup discarded the new leader's op as a
// duplicate, and the stale ack silently counted toward quorum commit.)
func TestDivergentExLeaderResyncsAfterFailover(t *testing.T) {
	r := newRig(t, []string{"a", "b", "c"}, nil)
	r.startAll()
	waitFor(t, 3*time.Second, "initial leader", func() bool { return r.leader() != nil })
	old := r.leader()
	if err := old.Record(OpDeploy, "g1", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatalf("Record: %v", err)
	}
	waitFor(t, 2*time.Second, "replication drained", func() bool { return old.ReplicationLag() == 0 })

	// Cut the leader off and immediately stage an op while its lease is
	// still warm: it applies locally but can never reach quorum — the
	// divergent suffix of a deposed leader.
	r.net.Isolate(old.self)
	if _, err := old.Propose(OpUpdate, "g1", json.RawMessage(`{"v":"divergent"}`)); err != nil {
		t.Fatalf("Propose on still-leased leader: %v", err)
	}
	if got := string(old.Store().Get("graphs", "g1")); got != `{"v":"divergent"}` {
		t.Fatalf("divergent op not applied locally: %s", got)
	}

	var next *Cluster
	waitFor(t, 3*time.Second, "majority elects successor", func() bool {
		for _, c := range r.clusters {
			if c != old && c.IsLeader() {
				next = c
				return true
			}
		}
		return false
	})
	// The successor commits a different op occupying the same sequence.
	if err := next.Record(OpUpdate, "g1", json.RawMessage(`{"v":"committed"}`)); err != nil {
		t.Fatalf("successor Record: %v", err)
	}

	r.net.Rejoin(old.self)
	waitFor(t, 3*time.Second, "ex-leader abandons divergent suffix", func() bool {
		return !old.IsLeader() && bytes.Equal(old.Store().Serialize(), next.Store().Serialize())
	})
	if got := string(old.Store().Get("graphs", "g1")); got != `{"v":"committed"}` {
		t.Fatalf("divergent suffix survived failover: g1 = %s", got)
	}
}

// Voters must refuse candidates whose applied history is behind their own,
// ordered by (LastTerm, LastSeq) — seq length alone is not up-to-dateness.
func TestElectionRestrictionRefusesStaleHistory(t *testing.T) {
	r := newRig(t, []string{"a", "b"}, nil)
	a := r.clusters["a"]
	a.Store().Apply(Op{Seq: 1, Term: 2, Kind: OpDeploy, Key: "g1", Data: json.RawMessage(`{}`)})
	a.Store().Apply(Op{Seq: 2, Term: 2, Kind: OpUpdate, Key: "g1", Data: json.RawMessage(`{}`)})

	// A full term behind: refused even though its log is longer.
	reply, err := a.RequestVote(VoteRequest{ClusterID: "test", Candidate: "b", Term: 5, LastTerm: 1, LastSeq: 9})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Granted {
		t.Fatal("granted vote to a candidate a full term behind")
	}
	// Same term, shorter history: refused.
	if reply, _ = a.RequestVote(VoteRequest{ClusterID: "test", Candidate: "b", Term: 6, LastTerm: 2, LastSeq: 1}); reply.Granted {
		t.Fatal("granted vote to a candidate with a shorter history")
	}
	// At least as up to date: granted.
	if reply, _ = a.RequestVote(VoteRequest{ClusterID: "test", Candidate: "b", Term: 7, LastTerm: 2, LastSeq: 2}); !reply.Granted {
		t.Fatal("refused vote to an up-to-date candidate")
	}
}

// --- replication tests -----------------------------------------------------

func TestFollowersConvergeOnRecordedIntent(t *testing.T) {
	r := newRig(t, []string{"a", "b", "c"}, nil)
	r.startAll()
	waitFor(t, 3*time.Second, "leader", func() bool { return r.leader() != nil })
	lead := r.leader()
	lead.Record(OpNodeAdd, "n1", json.RawMessage(`{"url":"http://n1"}`))
	lead.Record(OpDeploy, "g1", json.RawMessage(`{"graph":{"id":"g1"}}`))
	lead.Record(OpUpdate, "g1", json.RawMessage(`{"graph":{"id":"g1","rev":2}}`))
	want := lead.Store().Serialize()
	waitFor(t, 2*time.Second, "followers converge", func() bool {
		for _, c := range r.clusters {
			if !bytes.Equal(c.Store().Serialize(), want) {
				return false
			}
		}
		return true
	})
}

func TestJoinerMidStreamCatchesUpViaSnapshot(t *testing.T) {
	// Log window of 4 with 20 ops recorded before the third replica
	// starts: catch-up cannot come from the log, forcing the snapshot
	// path.
	r := newRig(t, []string{"a", "b", "c"}, func(id string, o *Options) {
		o.LogDepth = 4
	})
	r.clusters["a"].Start()
	r.clusters["b"].Start()
	waitFor(t, 3*time.Second, "leader among a,b", func() bool { return r.leader() != nil })
	lead := r.leader()
	for i := 0; i < 20; i++ {
		if err := lead.Record(OpDeploy, fmt.Sprintf("g%d", i), json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatalf("Record %d: %v", i, err)
		}
	}
	want := lead.Store().Serialize()

	// c joins mid-stream, far behind the window.
	r.clusters["c"].Start()
	waitFor(t, 3*time.Second, "joiner snapshot + catch-up", func() bool {
		return bytes.Equal(r.clusters["c"].Store().Serialize(), want)
	})
	// And keeps up incrementally afterwards.
	lead.Record(OpUndeploy, "g0", nil)
	want = lead.Store().Serialize()
	waitFor(t, 2*time.Second, "joiner follows the live stream", func() bool {
		return bytes.Equal(r.clusters["c"].Store().Serialize(), want)
	})
}

func TestRecordWithoutQuorumFailsAndLeaderFences(t *testing.T) {
	r := newRig(t, []string{"a", "b", "c"}, nil)
	r.startAll()
	waitFor(t, 3*time.Second, "leader", func() bool { return r.leader() != nil })
	lead := r.leader()
	// Kill both followers: the leader can neither commit nor renew.
	for id := range r.clusters {
		if id != lead.self {
			r.net.SetDown(id, true)
		}
	}
	err := lead.Record(OpDeploy, "g1", json.RawMessage(`{}`))
	if !errors.Is(err, ErrNoQuorum) && !errors.Is(err, ErrNotLeader) {
		t.Fatalf("Record without quorum = %v, want ErrNoQuorum or ErrNotLeader", err)
	}
	waitFor(t, 2*time.Second, "leader fenced without quorum", func() bool { return !lead.IsLeader() })
}

// ClearPending drops parked out-of-order ops (a leadership boundary may
// strand ops from the old leader's divergent suffix); re-delivery from the
// new leader fills the gap instead.
func TestIntentStoreClearPending(t *testing.T) {
	s := NewIntentStore()
	s.Apply(op(1, OpDeploy, "g1", `{"v":1}`))
	s.Apply(op(3, OpUpdate, "g1", `{"v":3}`)) // parks on the seq-2 gap
	s.ClearPending()
	s.Apply(op(2, OpUpdate, "g1", `{"v":2}`))
	if s.LastApplied() != 2 {
		t.Fatalf("cleared parked op still drained: lastApplied = %d", s.LastApplied())
	}
	if got := string(s.Get("graphs", "g1")); got != `{"v":2}` {
		t.Fatalf("g1 = %s, want {\"v\":2}", got)
	}
	s.Apply(op(3, OpUpdate, "g1", `{"v":33}`))
	if s.LastApplied() != 3 {
		t.Fatalf("re-delivered op did not apply: lastApplied = %d", s.LastApplied())
	}
}

// --- SWIM tests ------------------------------------------------------------

func TestNodeDeathDetectionAndRecovery(t *testing.T) {
	var probeMu sync.Mutex
	nodeUp := map[string]bool{"node-1": true}
	var stateMu sync.Mutex
	lastState := map[string]bool{}

	r := newRig(t, []string{"a", "b", "c"}, func(id string, o *Options) {
		o.NodeProber = func(node string, rec json.RawMessage) error {
			probeMu.Lock()
			defer probeMu.Unlock()
			if !nodeUp[node] {
				return errors.New("unreachable")
			}
			return nil
		}
		o.OnNodeState = func(node string, alive bool) {
			stateMu.Lock()
			defer stateMu.Unlock()
			lastState[id+"/"+node] = alive
		}
	})
	r.startAll()
	waitFor(t, 3*time.Second, "leader", func() bool { return r.leader() != nil })
	lead := r.leader()
	if err := lead.Record(OpNodeAdd, "node-1", json.RawMessage(`{"url":"http://node-1"}`)); err != nil {
		t.Fatalf("Record node-add: %v", err)
	}
	// Every replica derives the monitored node from the replicated store.
	waitFor(t, 2*time.Second, "node monitored everywhere", func() bool {
		for _, c := range r.clusters {
			found := false
			for _, m := range c.ClusterStatus().Members {
				if m.ID == "node-1" && m.Kind == KindNode {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	})

	probeMu.Lock()
	nodeUp["node-1"] = false
	probeMu.Unlock()
	start := time.Now()
	waitFor(t, 3*time.Second, "leader notices node death", func() bool {
		stateMu.Lock()
		defer stateMu.Unlock()
		alive, seen := lastState[lead.self+"/node-1"]
		return seen && !alive
	})
	t.Logf("node death detected in %v", time.Since(start))

	probeMu.Lock()
	nodeUp["node-1"] = true
	probeMu.Unlock()
	waitFor(t, 3*time.Second, "node recovery observed", func() bool {
		stateMu.Lock()
		defer stateMu.Unlock()
		return lastState[lead.self+"/node-1"]
	})
}

func TestReplicaSuspicionSpreadsAndRefutes(t *testing.T) {
	r := newRig(t, []string{"a", "b", "c"}, nil)
	r.startAll()
	waitFor(t, 3*time.Second, "leader", func() bool { return r.leader() != nil })
	r.net.SetDown("c", true)
	waitFor(t, 3*time.Second, "c declared dead on a", func() bool {
		for _, m := range r.clusters["a"].ClusterStatus().Members {
			if m.ID == "c" && m.State == StateDead {
				return true
			}
		}
		return false
	})
	// c comes back: its own pings refute the death rumor with a higher
	// incarnation and the table converges back to alive.
	r.net.SetDown("c", false)
	waitFor(t, 3*time.Second, "c alive again everywhere", func() bool {
		for _, c := range r.clusters {
			for _, m := range c.ClusterStatus().Members {
				if m.ID == "c" && m.State != StateAlive {
					return false
				}
			}
		}
		return true
	})
}

// A rumor suspecting us must be refuted in our own gossip: the reply to
// the probe carries our self row Alive at an incarnation above the
// suspicion. (Regression: the incarnation counter bumped but the gossiped
// member row stayed stale, so refutations never propagated.)
func TestSelfRefutationPropagatesInGossip(t *testing.T) {
	r := newRig(t, []string{"a", "b"}, nil)
	a := r.clusters["a"]
	reply, err := a.Ping("b", []MemberUpdate{{ID: "a", Kind: KindReplica, State: StateSuspect, Incarnation: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range reply {
		if u.ID != "a" {
			continue
		}
		if u.State != StateAlive || u.Incarnation <= 3 {
			t.Fatalf("self row does not refute the suspicion: %+v", u)
		}
		return
	}
	t.Fatal("gossip reply has no self row")
}

// --- HTTP transport --------------------------------------------------------

func TestHTTPTransportRoundTrip(t *testing.T) {
	// Two replicas wired over real HTTP: RPCHandler on the server side,
	// HTTPTransport on the client side.
	var peers []PeerSpec
	ids := []string{"a", "b"}
	servers := make(map[string]*httptest.Server)
	clusters := make(map[string]*Cluster)

	// Allocate listeners first so peer addresses are known up front.
	for _, id := range ids {
		srv := httptest.NewServer(nil)
		servers[id] = srv
		peers = append(peers, PeerSpec{ID: id, Addr: srv.URL})
	}
	for _, id := range ids {
		c, err := New(Options{
			ID:                id,
			ClusterID:         "http-test",
			Peers:             peers,
			Transport:         NewHTTPTransport(peers, nil),
			ProbeInterval:     10 * time.Millisecond,
			SuspicionTimeout:  50 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			LeaseDuration:     150 * time.Millisecond,
			CommitTimeout:     time.Second,
		})
		if err != nil {
			t.Fatalf("New(%s): %v", id, err)
		}
		clusters[id] = c
		servers[id].Config.Handler = c.RPCHandler()
	}
	t.Cleanup(func() {
		for _, c := range clusters {
			c.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	})
	for _, c := range clusters {
		c.Start()
	}

	var lead *Cluster
	waitFor(t, 5*time.Second, "leader over HTTP", func() bool {
		for _, c := range clusters {
			if c.IsLeader() {
				lead = c
				return true
			}
		}
		return false
	})
	if err := lead.Record(OpDeploy, "g1", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatalf("Record over HTTP: %v", err)
	}
	want := lead.Store().Serialize()
	waitFor(t, 3*time.Second, "replication over HTTP", func() bool {
		for _, c := range clusters {
			if !bytes.Equal(c.Store().Serialize(), want) {
				return false
			}
		}
		return true
	})
}
