package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The HTTP transport carries peer RPCs as JSON POSTs under
// /v1/cluster/rpc/ on each replica's REST listener. The client side is
// HTTPTransport (handed to Options.Transport); the server side is
// RPCHandler, mounted by the REST server. Keeping both ends in this
// package keeps the wire format in one place.

type pingWire struct {
	From    string         `json:"from"`
	Target  string         `json:"target,omitempty"`
	Updates []MemberUpdate `json:"updates,omitempty"`
}

type pingReplyWire struct {
	Updates []MemberUpdate `json:"updates,omitempty"`
}

// HTTPTransport dials peers by POSTing to their REST base URLs.
type HTTPTransport struct {
	addrs  map[string]string
	client *http.Client
}

// NewHTTPTransport builds a transport over the peer set. A nil client
// gets a short per-call timeout: peer RPCs are liveness probes, and a
// hung connection must fail faster than the suspicion timeout.
func NewHTTPTransport(peers []PeerSpec, client *http.Client) *HTTPTransport {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	addrs := make(map[string]string, len(peers))
	for _, p := range peers {
		addrs[p.ID] = strings.TrimRight(p.Addr, "/")
	}
	return &HTTPTransport{addrs: addrs, client: client}
}

// Dial implements Transport.
func (t *HTTPTransport) Dial(id string) (Peer, error) {
	addr, ok := t.addrs[id]
	if !ok || addr == "" {
		return nil, fmt.Errorf("cluster: no address for peer %q", id)
	}
	return &httpPeer{base: addr, client: t.client}, nil
}

type httpPeer struct {
	base   string
	client *http.Client
}

func (p *httpPeer) post(path string, req, reply any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := p.client.Post(p.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, reply)
}

func (p *httpPeer) Ping(from string, updates []MemberUpdate) ([]MemberUpdate, error) {
	var reply pingReplyWire
	err := p.post("/v1/cluster/rpc/ping", pingWire{From: from, Updates: updates}, &reply)
	return reply.Updates, err
}

func (p *httpPeer) PingReq(from, target string, updates []MemberUpdate) ([]MemberUpdate, error) {
	var reply pingReplyWire
	err := p.post("/v1/cluster/rpc/ping-req", pingWire{From: from, Target: target, Updates: updates}, &reply)
	return reply.Updates, err
}

func (p *httpPeer) RequestVote(req VoteRequest) (VoteReply, error) {
	var reply VoteReply
	err := p.post("/v1/cluster/rpc/vote", req, &reply)
	return reply, err
}

func (p *httpPeer) Append(req AppendRequest) (AppendReply, error) {
	var reply AppendReply
	err := p.post("/v1/cluster/rpc/append", req, &reply)
	return reply, err
}

// RPCHandler serves the peer RPC surface; the REST server mounts it under
// /v1/cluster/rpc/. These routes are replica-to-replica plumbing, not
// part of the public API, and deliberately bypass the leader-redirect
// gate (votes and appends must reach followers).
func (c *Cluster) RPCHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/rpc/ping", func(w http.ResponseWriter, r *http.Request) {
		rpc(w, r, func(req pingWire) (pingReplyWire, error) {
			ups, err := c.Ping(req.From, req.Updates)
			return pingReplyWire{Updates: ups}, err
		})
	})
	mux.HandleFunc("/v1/cluster/rpc/ping-req", func(w http.ResponseWriter, r *http.Request) {
		rpc(w, r, func(req pingWire) (pingReplyWire, error) {
			ups, err := c.PingReq(req.From, req.Target, req.Updates)
			return pingReplyWire{Updates: ups}, err
		})
	})
	mux.HandleFunc("/v1/cluster/rpc/vote", func(w http.ResponseWriter, r *http.Request) {
		rpc(w, r, c.RequestVote)
	})
	mux.HandleFunc("/v1/cluster/rpc/append", func(w http.ResponseWriter, r *http.Request) {
		rpc(w, r, c.Append)
	})
	return mux
}

func rpc[Req, Reply any](w http.ResponseWriter, r *http.Request, handle func(Req) (Reply, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req Req
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reply, err := handle(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}
