package cluster

import (
	"time"

	"repro/internal/telemetry"
)

// Collect implements telemetry.Collector: the cluster's health as seen
// from this replica, registered into the global orchestrator's /metrics.
func (c *Cluster) Collect(e *telemetry.Exposition) {
	c.mu.Lock()
	self := c.self
	leader := c.leader
	isLeader := c.role == roleLeader && time.Now().Before(c.leaseUntil)
	term := c.term
	commit := c.commitSeq
	applied := c.store.LastApplied()
	lag := c.replicationLagLocked()
	counts := make(map[MemberKind]map[MemberState]int)
	for _, m := range c.members {
		if counts[m.kind] == nil {
			counts[m.kind] = make(map[MemberState]int)
		}
		counts[m.kind][m.state]++
	}
	c.mu.Unlock()

	lead := 0.0
	if isLeader {
		lead = 1
	}
	// un_cluster_leader carries the replica's identity and its current
	// view of who leads; the value is whether this replica holds the
	// lease, so max() over the fleet locates the leader and sum() over
	// it catches split-brain (>1 is an alarm).
	e.Gauge("un_cluster_leader", "Whether this replica holds a valid leader lease (labels: own id, observed leader).",
		telemetry.Labels{"id": self, "leader": leader}, lead)
	e.Gauge("un_cluster_term", "Current election term.", telemetry.Labels{"id": self}, float64(term))
	e.Gauge("un_cluster_commit_seq", "Quorum-acknowledged intent sequence number.", telemetry.Labels{"id": self}, float64(commit))
	e.Gauge("un_cluster_applied_seq", "Highest contiguously applied intent sequence number.", telemetry.Labels{"id": self}, float64(applied))
	e.Gauge("un_cluster_replication_lag", "Intent ops the slowest live follower (or this follower) is behind.",
		telemetry.Labels{"id": self}, float64(lag))
	for _, kind := range []MemberKind{KindReplica, KindNode} {
		for _, state := range []MemberState{StateAlive, StateSuspect, StateDead} {
			e.Gauge("un_cluster_members", "Membership table size by kind and state.",
				telemetry.Labels{"kind": string(kind), "state": string(state)}, float64(counts[kind][state]))
		}
	}
	e.Counter("un_cluster_elections_total", "Elections this replica stood for.", nil, c.electionsStarted.Value())
	e.Counter("un_cluster_elections_won_total", "Elections this replica won.", nil, c.electionsWon.Value())
	e.Counter("un_cluster_heartbeat_rounds_total", "Quorum-acknowledged replication rounds led.", nil, c.heartbeatRounds.Value())
	e.Counter("un_cluster_members_suspected_total", "Members this replica marked suspect.", nil, c.membersSuspected.Value())
	e.Counter("un_cluster_members_died_total", "Members this replica declared dead.", nil, c.membersDied.Value())
	e.Counter("un_cluster_intent_ops_total", "Desired-state ops recorded into the replicated log.", nil, c.opsRecorded.Value())
}
