package rest_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/global"
	"repro/internal/netdev"
	"repro/internal/pkt"
	"repro/internal/rest"
)

// haNATGraphJSON is natGraphJSON's availability-aware sibling: one NAT
// carrying a three-nines target backed by active-standby redundancy.
const haNATGraphJSON = `{
  "forwarding-graph": {
    "id": "g-ha",
    "VNFs": [
      {"id": "nat", "name": "nat",
       "ports": [{"id": "0"}, {"id": "1"}],
       "technology-preference": "docker",
       "availability": 0.999,
       "redundancy": "active-standby",
       "configuration": {"external_ip": "198.51.100.1"}}
    ],
    "end-points": [
      {"id": "lan", "type": "interface", "interface": {"if-name": "eth0"}},
      {"id": "wan", "type": "interface", "interface": {"if-name": "eth1"}}
    ],
    "big-switch": {"flow-rules": [
      {"id": "r1", "priority": 10, "match": {"port_in": "endpoint:lan"},
       "actions": [{"output_to_port": "vnf:nat:0"}]},
      {"id": "r2", "priority": 10, "match": {"port_in": "vnf:nat:1"},
       "actions": [{"output_to_port": "endpoint:wan"}]},
      {"id": "r3", "priority": 10, "match": {"port_in": "endpoint:wan"},
       "actions": [{"output_to_port": "vnf:nat:1"}]},
      {"id": "r4", "priority": 10, "match": {"port_in": "vnf:nat:0"},
       "actions": [{"output_to_port": "endpoint:lan"}]}
    ]}
  }
}`

func doDeleteBody(t *testing.T, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestStandbyStateAndRateOverREST: an active-standby NAT deployed over /v1
// surfaces its warm shadow in /v1/status, its live flow state through the
// state verbs, and the node's packet rate in rate-pps.
func TestStandbyStateAndRateOverREST(t *testing.T) {
	node, srv := newServer(t)
	resp := doPut(t, srv.URL+"/v1/graphs/g-ha", haNATGraphJSON)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// /v1/status flags the NAT as shadowed and always reports rate-pps.
	sresp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if !strings.Contains(string(raw), `"rate-pps"`) {
		t.Error("status reply misses rate-pps")
	}
	var status rest.StatusReply
	if err := json.Unmarshal(raw, &status); err != nil {
		t.Fatal(err)
	}
	var natInst *rest.InstanceStatus
	for i := range status.NFInstances {
		if status.NFInstances[i].NF == "nat" {
			natInst = &status.NFInstances[i]
		}
	}
	if natInst == nil {
		t.Fatal("no nat instance in /v1/status")
	}
	if !natInst.Standby {
		t.Error("active-standby NAT not flagged as shadowed in /v1/status")
	}

	// Push one connection through the NAT so it holds real flow state.
	lan, _ := node.InterfacePort("eth0")
	wan, _ := node.InterfacePort("eth1")
	frame := pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.Addr{10, 0, 0, 1}, DstIP: pkt.Addr{203, 0, 113, 50},
		SrcPort: 30001, DstPort: 53, PayloadLen: 64,
	})
	if err := lan.Send(netdev.Frame{Data: frame}); err != nil {
		t.Fatal(err)
	}
	if _, ok := wan.TryRecv(); !ok {
		t.Fatal("NAT dropped the probe")
	}

	// GET exports the binding; PUT feeds it back (the verbs the global
	// tier's standby sync rides).
	gresp, err := http.Get(srv.URL + "/v1/graphs/g-ha/nfs/nat/state")
	if err != nil {
		t.Fatal(err)
	}
	exported, _ := io.ReadAll(gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("GET state status = %d", gresp.StatusCode)
	}
	var state rest.StateReply
	if err := json.Unmarshal(exported, &state); err != nil {
		t.Fatal(err)
	}
	if len(state.States) == 0 {
		t.Fatal("no flow state exported after live traffic")
	}
	presp := doPut(t, srv.URL+"/v1/graphs/g-ha/nfs/nat/state", string(exported))
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("PUT state status = %d", presp.StatusCode)
	}
	presp.Body.Close()

	// Unknown graphs answer 404, not empty state.
	nresp, err := http.Get(srv.URL + "/v1/graphs/ghost/nfs/nat/state")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("GET state of unknown graph status = %d, want 404", nresp.StatusCode)
	}
}

// TestAntiAffinityRejectedOverV1: a deploy whose anti-affinity group cannot
// spread across the registered fleet fails with the uniform 422 envelope,
// and the message names the constraint.
func TestAntiAffinityRejectedOverV1(t *testing.T) {
	_, srv1 := restNode(t, "n1", []string{"lan", "wan"}, 4000)
	gOrch := global.New(global.Config{ProbeInterval: 5 * time.Millisecond})
	gsrv := httptest.NewServer(rest.NewGlobal(gOrch, nil))
	t.Cleanup(gsrv.Close)

	resp := doPost(t, gsrv.URL+"/nodes", fmt.Sprintf(`{"name": "n1", "url": %q}`, srv1.URL))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("node registration status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	spread := strings.ReplaceAll(twoNFGraphJSON,
		`"ports": [{"id": "0"}, {"id": "1"}]`,
		`"ports": [{"id": "0"}, {"id": "1"}], "anti_affinity": "blast-radius"`)
	dresp := doPut(t, gsrv.URL+"/v1/graphs/svc", spread)
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("deploy status = %d, want 422", dresp.StatusCode)
	}
	var env rest.ErrorEnvelope
	if err := json.NewDecoder(dresp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "unprocessable" {
		t.Errorf("envelope code = %q", env.Error.Code)
	}
	if !strings.Contains(env.Error.Message, "anti-affinity") {
		t.Errorf("error does not name the constraint: %q", env.Error.Message)
	}
	if ids := gOrch.GraphIDs(); len(ids) != 0 {
		t.Errorf("rejected graph left residue: %v", ids)
	}
}

// TestRemoveLinkOverREST: DELETE /v1/links severs a declared link with the
// same body POST used to declare it; a second DELETE is a 404.
func TestRemoveLinkOverREST(t *testing.T) {
	_, srv1 := restNode(t, "n1", []string{"lan", "trunk"}, 4000)
	_, srv2 := restNode(t, "n2", []string{"trunk", "wan"}, 4000)
	gOrch := global.New(global.Config{ProbeInterval: 5 * time.Millisecond})
	gsrv := httptest.NewServer(rest.NewGlobal(gOrch, nil))
	t.Cleanup(gsrv.Close)

	for name, u := range map[string]string{"n1": srv1.URL, "n2": srv2.URL} {
		resp := doPost(t, gsrv.URL+"/nodes", fmt.Sprintf(`{"name": %q, "url": %q}`, name, u))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("registering %s: status = %d", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	linkBody := `{"a-node": "n1", "a-if": "trunk", "b-node": "n2", "b-if": "trunk"}`
	resp := doPost(t, gsrv.URL+"/links", linkBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("link status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	dresp := doDeleteBody(t, gsrv.URL+"/v1/links", linkBody)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE link status = %d", dresp.StatusCode)
	}
	dresp.Body.Close()
	if links := gOrch.Links(); len(links) != 0 {
		t.Fatalf("links after DELETE = %v", links)
	}
	// Severing it again (or any undeclared link) is a 404.
	dresp = doDeleteBody(t, gsrv.URL+"/v1/links", linkBody)
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE status = %d, want 404", dresp.StatusCode)
	}
	dresp.Body.Close()
}
