package rest_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/global"
	"repro/internal/nffg"
)

// TestHTTPNodeReflavor drives the hot-swap through the fleet-facing
// HTTPNode handle, i.e. the exact path the global orchestrator's pressure
// relief takes against a remote node.
func TestHTTPNodeReflavor(t *testing.T) {
	node, srv := restNode(t, "n1", []string{"lan", "wan"}, 8000)
	hn := global.NewHTTPNode("n1", srv.URL, nil)
	g := &nffg.Graph{
		ID: "svc",
		NFs: []nffg.NF{{ID: "fw", Name: "firewall",
			Ports: []nffg.NFPort{{ID: "0"}, {ID: "1"}}}},
		Endpoints: []nffg.Endpoint{
			{ID: "in", Type: nffg.EPInterface, Interface: "lan"},
			{ID: "out", Type: nffg.EPInterface, Interface: "wan"},
		},
		Rules: []nffg.FlowRule{
			{ID: "r1", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.EndpointRef("in")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.NFPortRef("fw", "0")}}},
			{ID: "r2", Priority: 10, Match: nffg.RuleMatch{PortIn: nffg.NFPortRef("fw", "1")},
				Actions: []nffg.RuleAction{{Type: nffg.ActOutput, Output: nffg.EndpointRef("out")}}},
		},
	}
	if err := hn.Deploy(g); err != nil {
		t.Fatal(err)
	}
	if err := hn.Reflavor("svc", "fw", nffg.TechDocker); err != nil {
		t.Fatal(err)
	}
	if techs, _ := node.Placements("svc"); techs["fw"] != nffg.TechDocker {
		t.Fatalf("placement after HTTPNode reflavor: %v", techs)
	}
	st, err := hn.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.NFs) != 1 || st.NFs[0].Technology != "docker" || st.NFs[0].State != "running" {
		t.Fatalf("probe NF status %+v", st.NFs)
	}
	if err := hn.Reflavor("svc", "fw", "balloon"); err == nil {
		t.Error("HTTPNode reflavor to bad technology accepted")
	}
}

// TestReflavorEndpoint hot-swaps the deployed vpn NF over REST and checks
// the new technology and lifecycle state surface in /status.
func TestReflavorEndpoint(t *testing.T) {
	node, srv := newServer(t)
	if resp := doPut(t, srv.URL+"/NF-FG/cpe-vpn", ipsecGraphJSON); resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: HTTP %d", resp.StatusCode)
	}
	resp := doPost(t, srv.URL+"/NF-FG/cpe-vpn/nf/vpn/reflavor", `{"technology": "docker"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reflavor: HTTP %d", resp.StatusCode)
	}
	var reply map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if reply["technology"] != "docker" || reply["status"] != "reflavored" {
		t.Fatalf("reflavor reply %v", reply)
	}
	if techs, _ := node.Placements("cpe-vpn"); techs["vpn"] != "docker" {
		t.Fatalf("placement after REST reflavor: %v", techs)
	}

	// The per-NF technology and lifecycle state surface in /status.
	sresp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var status struct {
		NFInstances []struct {
			NF         string `json:"nf"`
			Technology string `json:"technology"`
			State      string `json:"state"`
		} `json:"nf-instances"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.NFInstances) != 1 ||
		status.NFInstances[0].Technology != "docker" ||
		status.NFInstances[0].State != "running" {
		t.Fatalf("status NF instances %+v", status.NFInstances)
	}
}

// TestReflavorEndpointPolicyChoice: an empty technology asks the node's
// placement policy; with the current flavor still ranked best this is a
// no-op reported with the chosen technology.
func TestReflavorEndpointPolicyChoice(t *testing.T) {
	_, srv := newServer(t)
	if resp := doPut(t, srv.URL+"/NF-FG/cpe-vpn", ipsecGraphJSON); resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: HTTP %d", resp.StatusCode)
	}
	resp := doPost(t, srv.URL+"/NF-FG/cpe-vpn/nf/vpn/reflavor", `{"technology": ""}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policy reflavor: HTTP %d", resp.StatusCode)
	}
	var reply map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The graph pins native and pinned NFs are not the policy's to move.
	if reply["technology"] != "native" {
		t.Fatalf("policy chose %q, want native (pinned)", reply["technology"])
	}
}

func TestReflavorEndpointErrors(t *testing.T) {
	_, srv := newServer(t)
	if resp := doPost(t, srv.URL+"/NF-FG/ghost/nf/vpn/reflavor", `{"technology": "docker"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: HTTP %d, want 404", resp.StatusCode)
	}
	if resp := doPut(t, srv.URL+"/NF-FG/cpe-vpn", ipsecGraphJSON); resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy: HTTP %d", resp.StatusCode)
	}
	if resp := doPost(t, srv.URL+"/NF-FG/cpe-vpn/nf/vpn/reflavor", `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := doPost(t, srv.URL+"/NF-FG/cpe-vpn/nf/vpn/reflavor", `{"technology": "balloon"}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad technology: HTTP %d, want 422", resp.StatusCode)
	}
	if resp := doPost(t, srv.URL+"/NF-FG/cpe-vpn/nf/ghost/reflavor", `{"technology": "docker"}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown NF: HTTP %d, want 422", resp.StatusCode)
	}
}
