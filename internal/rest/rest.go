// Package rest implements the compute node's northbound REST interface: the
// channel through which the overarching orchestration layer submits Network
// Function Forwarding Graphs (paper Figure 1, "REST server").
//
// Endpoints (un-orchestrator style):
//
//	PUT    /NF-FG/{id}   deploy (or update) the graph in the JSON body
//	GET    /NF-FG/{id}   retrieve a deployed graph
//	DELETE /NF-FG/{id}   undeploy a graph
//	GET    /NF-FG        list deployed graph ids
//	POST   /NF-FG/{id}/nf/{nf}/reflavor  hot-swap one NF's execution
//	       technology ({"technology": "native"}; empty or "any" lets the
//	       placement policy choose)
//	GET    /status       node status: graphs, resources, capabilities,
//	       per-NF technology and lifecycle state
//	GET    /NF-FG/{id}/stats  per-NF and per-rule counters of a graph
//	GET    /topology     live Figure-1 topology (text; ?format=dot|json)
//	GET    /capture/{if} capture interface traffic for ?duration (pcap body)
//	GET    /metrics      node telemetry, Prometheus text format
//	GET    /events       node event journal, JSON array (?since=seq)
package rest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/netdev"
	"repro/internal/nffg"
	"repro/internal/orchestrator"
	"repro/internal/pcap"
	"repro/internal/resources"
	"repro/internal/telemetry"
)

// Server exposes one orchestrator over HTTP.
type Server struct {
	orch *orchestrator.Orchestrator
	pool *resources.Pool
	mux  *http.ServeMux
}

// New builds the server.
func New(orch *orchestrator.Orchestrator, pool *resources.Pool) *Server {
	s := &Server{orch: orch, pool: pool, mux: http.NewServeMux()}
	s.mux.HandleFunc("PUT /NF-FG/{id}", s.putGraph)
	s.mux.HandleFunc("GET /NF-FG/{id}", s.getGraph)
	s.mux.HandleFunc("DELETE /NF-FG/{id}", s.deleteGraph)
	s.mux.HandleFunc("GET /NF-FG", s.listGraphs)
	s.mux.HandleFunc("GET /NF-FG/{id}/stats", s.graphStats)
	s.mux.HandleFunc("POST /NF-FG/{id}/nf/{nf}/reflavor", s.reflavor)
	s.mux.HandleFunc("GET /status", s.status)
	s.mux.HandleFunc("GET /topology", s.topology)
	s.mux.HandleFunc("GET /capture/{iface}", s.capture)
	// One scrape of the node registry: per-LSI traffic and microflow-cache
	// counters, the sampled pipeline-latency histogram, resource-ledger
	// gauges and control-plane operation timings.
	s.mux.Handle("GET /metrics", orch.Metrics().Handler())
	s.mux.HandleFunc("GET /events", s.events)
	return s
}

// events serves the node's retained journal, oldest first. ?since=seq
// returns only events with a larger sequence number, so a poller can tail
// the journal without re-reading it.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	evs := s.orch.Events()
	if since := r.URL.Query().Get("since"); since != "" {
		seq, err := strconv.ParseUint(since, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q", since))
			return
		}
		i := 0
		for i < len(evs) && evs[i].Seq <= seq {
			i++
		}
		evs = evs[i:]
	}
	if evs == nil {
		evs = []telemetry.Event{}
	}
	writeJSON(w, http.StatusOK, evs)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) putGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var g nffg.Graph
	if err := json.NewDecoder(r.Body).Decode(&g); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing NF-FG: %w", err))
		return
	}
	if g.ID == "" {
		g.ID = id
	}
	if g.ID != id {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("graph id %q does not match URL id %q", g.ID, id))
		return
	}
	if _, exists := s.orch.Graph(id); exists {
		if err := s.orch.Update(&g); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "updated", "id": id})
		return
	}
	if err := s.orch.Deploy(&g); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "deployed", "id": id})
}

func (s *Server) getGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d, ok := s.orch.Graph(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	writeJSON(w, http.StatusOK, d.Graph)
}

func (s *Server) deleteGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.orch.Undeploy(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "undeployed", "id": id})
}

func (s *Server) listGraphs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"graphs": s.orch.GraphIDs()})
}

// ReflavorRequest is the POST /NF-FG/{id}/nf/{nf}/reflavor body. An empty
// or "any" technology asks the node's placement policy to choose at the
// currently observed traffic rate.
type ReflavorRequest struct {
	Technology string `json:"technology"`
}

func (s *Server) reflavor(w http.ResponseWriter, r *http.Request) {
	id, nfID := r.PathValue("id"), r.PathValue("nf")
	var req ReflavorRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing reflavor request: %w", err))
		return
	}
	if _, ok := s.orch.Graph(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	tech := nffg.Technology(req.Technology)
	if req.Technology == "" || tech == nffg.TechAny {
		chosen, err := s.orch.ReflavorAuto(id, nfID)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "reflavored", "id": id, "nf": nfID, "technology": string(chosen),
		})
		return
	}
	if err := s.orch.Reflavor(id, nfID, tech); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status": "reflavored", "id": id, "nf": nfID, "technology": req.Technology,
	})
}

// StatusReply is the GET /status body. Interfaces lets the global
// orchestrator pin NF-FG endpoints to the node owning the named interface.
type StatusReply struct {
	Node         string           `json:"node"`
	Graphs       []string         `json:"graphs"`
	Capabilities []string         `json:"capabilities"`
	Interfaces   []string         `json:"interfaces"`
	CPU          ResourceStatus   `json:"cpu-millicores"`
	RAM          ResourceStatus   `json:"ram-bytes"`
	NFInstances  []InstanceStatus `json:"nf-instances"`
}

// ResourceStatus is one used/total pair.
type ResourceStatus struct {
	Used  uint64 `json:"used"`
	Total uint64 `json:"total"`
}

// InstanceStatus describes one running NF.
type InstanceStatus struct {
	Graph      string `json:"graph"`
	NF         string `json:"nf"`
	Instance   string `json:"instance"`
	Technology string `json:"technology"`
	// State is the NF's lifecycle state ("running", "draining", ...).
	State    string `json:"state"`
	Shared   bool   `json:"shared,omitempty"`
	RAMBytes uint64 `json:"ram-bytes"`
}

func (s *Server) status(w http.ResponseWriter, _ *http.Request) {
	topo := s.orch.Topology()
	usedCPU, totalCPU, usedRAM, totalRAM := s.pool.Usage()
	reply := StatusReply{
		Node:       topo.NodeName,
		Graphs:     s.orch.GraphIDs(),
		Interfaces: topo.Interfaces,
		CPU:        ResourceStatus{Used: uint64(usedCPU), Total: uint64(totalCPU)},
		RAM:        ResourceStatus{Used: usedRAM, Total: totalRAM},
	}
	for _, c := range s.pool.Capabilities() {
		reply.Capabilities = append(reply.Capabilities, string(c))
	}
	for _, g := range topo.Graphs {
		for _, n := range g.NFs {
			reply.NFInstances = append(reply.NFInstances, InstanceStatus{
				Graph:      g.ID,
				NF:         n.ID,
				Instance:   n.Instance,
				Technology: n.Technology,
				State:      n.State,
				Shared:     n.Shared,
				RAMBytes:   n.RAMBytes,
			})
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

// GraphStatsReply is the GET /NF-FG/{id}/stats body.
type GraphStatsReply struct {
	Graph string        `json:"graph"`
	NFs   []NFStats     `json:"nfs"`
	Rules []RuleCounter `json:"steering-rules"`
}

// NFStats carries one NF runtime's counters.
type NFStats struct {
	NF        string `json:"nf"`
	Instance  string `json:"instance"`
	RxPackets uint64 `json:"rx-packets"`
	TxPackets uint64 `json:"tx-packets"`
	Errors    uint64 `json:"errors"`
}

// RuleCounter carries one installed steering rule's hit counters, read over
// the graph's OpenFlow channel.
type RuleCounter struct {
	Table    uint8  `json:"table"`
	Priority uint16 `json:"priority"`
	Packets  uint64 `json:"packets"`
	Bytes    uint64 `json:"bytes"`
}

func (s *Server) graphStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d, ok := s.orch.Graph(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	reply := GraphStatsReply{Graph: id}
	instances := d.Instances()
	nfIDs := make([]string, 0, len(instances))
	for nfID := range instances {
		nfIDs = append(nfIDs, nfID)
	}
	sort.Strings(nfIDs)
	for _, nfID := range nfIDs {
		inst := instances[nfID]
		st := inst.Runtime.Stats()
		reply.NFs = append(reply.NFs, NFStats{
			NF:        nfID,
			Instance:  inst.Runtime.Name(),
			RxPackets: st.RxPackets,
			TxPackets: st.TxPackets,
			Errors:    st.Errors,
		})
	}
	flowStats, err := d.Controller().FlowStats()
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("querying steering rules: %w", err))
		return
	}
	for _, fs := range flowStats {
		reply.Rules = append(reply.Rules, RuleCounter{
			Table:    fs.TableID,
			Priority: fs.Priority,
			Packets:  fs.Packets,
			Bytes:    fs.Bytes,
		})
	}
	writeJSON(w, http.StatusOK, reply)
}

// maxCaptureDuration bounds GET /capture runs.
const maxCaptureDuration = 30 * time.Second

// capture records the traffic crossing one node interface for ?duration
// (default 1s) and returns it as a pcap body, openable in Wireshark.
func (s *Server) capture(w http.ResponseWriter, r *http.Request) {
	ifName := r.PathValue("iface")
	port, ok := s.orch.InterfacePort(ifName)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no interface %q", ifName))
		return
	}
	duration := time.Second
	if d := r.URL.Query().Get("duration"); d != "" {
		parsed, err := time.ParseDuration(d)
		if err != nil || parsed <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad duration %q", d))
			return
		}
		duration = parsed
	}
	if duration > maxCaptureDuration {
		duration = maxCaptureDuration
	}
	w.Header().Set("Content-Type", "application/vnd.tcpdump.pcap")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", ifName+".pcap"))
	pw := pcap.NewWriter(w)
	if err := pw.WriteHeader(); err != nil {
		return
	}
	port.SetTap(func(_ netdev.TapDir, f netdev.Frame) {
		_ = pw.WritePacket(time.Now(), f.Data)
	})
	select {
	case <-time.After(duration):
	case <-r.Context().Done():
	}
	port.SetTap(nil)
	// In-flight taps may still hold the writer: gate them off before the
	// handler returns and net/http finalizes the response.
	pw.Close()
}

func (s *Server) topology(w http.ResponseWriter, r *http.Request) {
	topo := s.orch.Topology()
	switch r.URL.Query().Get("format") {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, topo.DOT())
	case "json":
		writeJSON(w, http.StatusOK, topo)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, topo.String())
	}
}
