// Package rest implements the compute node's northbound REST interface: the
// channel through which the overarching orchestration layer submits Network
// Function Forwarding Graphs (paper Figure 1, "REST server").
//
// The versioned v1 surface:
//
//	PUT    /v1/graphs/{id}   deploy (or update) the graph in the JSON body;
//	       ?dry-run=true validates, schedules and admission-checks (incl.
//	       replica resource demand) without mutating anything and returns
//	       the would-be placement
//	GET    /v1/graphs/{id}   retrieve a deployed graph
//	DELETE /v1/graphs/{id}   undeploy a graph
//	GET    /v1/graphs        list deployed graph ids
//	POST   /v1/graphs/{id}/nfs/{nf}/reflavor  hot-swap one NF's execution
//	       technology ({"technology": "native"}; empty or "any" lets the
//	       placement policy choose)
//	POST   /v1/graphs/{id}/nfs/{nf}/scale  resize one stateful NF's replica
//	       set ({"replicas": 3}) with live flow-state migration
//	GET    /v1/status        node status: graphs, resources, capabilities,
//	       per-NF technology, replica count and lifecycle state
//	GET    /v1/graphs/{id}/stats  per-NF and per-rule counters of a graph
//	GET    /v1/topology      live Figure-1 topology (text; ?format=dot|json)
//	GET    /v1/capture/{if}  capture interface traffic for ?duration (pcap)
//	GET    /v1/metrics       node telemetry, Prometheus text format
//	GET    /v1/events        node event journal, JSON array (?since=seq)
//
// Every error is the uniform envelope
//
//	{"error": {"code": "...", "message": "...", "detail": [...]}}
//
// where code names the error class, message is human-readable, and detail
// (when present) lists individual violations, e.g. everything graph
// validation found in one pass.
//
// The pre-versioning un-orchestrator routes (PUT/GET/DELETE /NF-FG/{id},
// GET /NF-FG, POST /NF-FG/{id}/nf/{nf}/reflavor, GET /status, /topology,
// /capture/{if}, /metrics, /events) remain as deprecated aliases: they
// serve the same handlers and additionally answer with a "Deprecation:
// true" header plus a Link to the successor route.
package rest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/netdev"
	"repro/internal/nf"
	"repro/internal/nffg"
	"repro/internal/orchestrator"
	"repro/internal/pcap"
	"repro/internal/resources"
	"repro/internal/telemetry"
)

// Server exposes one orchestrator over HTTP.
type Server struct {
	orch *orchestrator.Orchestrator
	pool *resources.Pool
	mux  *http.ServeMux
}

// New builds the server.
func New(orch *orchestrator.Orchestrator, pool *resources.Pool) *Server {
	s := &Server{orch: orch, pool: pool, mux: http.NewServeMux()}
	route := func(method, v1, legacy string, h http.HandlerFunc) {
		s.mux.HandleFunc(method+" "+v1, h)
		if legacy != "" {
			s.mux.HandleFunc(method+" "+legacy, deprecatedAlias(v1, h))
		}
	}
	route("PUT", "/v1/graphs/{id}", "/NF-FG/{id}", s.putGraph)
	route("GET", "/v1/graphs/{id}", "/NF-FG/{id}", s.getGraph)
	route("DELETE", "/v1/graphs/{id}", "/NF-FG/{id}", s.deleteGraph)
	route("GET", "/v1/graphs", "/NF-FG", s.listGraphs)
	route("GET", "/v1/graphs/{id}/stats", "/NF-FG/{id}/stats", s.graphStats)
	route("POST", "/v1/graphs/{id}/nfs/{nf}/reflavor", "/NF-FG/{id}/nf/{nf}/reflavor", s.reflavor)
	route("POST", "/v1/graphs/{id}/nfs/{nf}/scale", "", s.scale)
	route("GET", "/v1/graphs/{id}/nfs/{nf}/state", "", s.getNFState)
	route("PUT", "/v1/graphs/{id}/nfs/{nf}/state", "", s.putNFState)
	route("GET", "/v1/status", "/status", s.status)
	route("GET", "/v1/topology", "/topology", s.topology)
	route("GET", "/v1/capture/{iface}", "/capture/{iface}", s.capture)
	// One scrape of the node registry: per-LSI traffic and microflow-cache
	// counters, the sampled pipeline-latency histogram, resource-ledger
	// gauges and control-plane operation timings.
	metrics := orch.Metrics().Handler()
	route("GET", "/v1/metrics", "/metrics", metrics.ServeHTTP)
	route("GET", "/v1/events", "/events", s.events)
	return s
}

// deprecatedAlias wraps a handler for its pre-versioning route: same
// behavior, plus headers steering clients to the v1 successor.
func deprecatedAlias(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// events serves the node's retained journal, oldest first. ?since=seq
// returns only events with a larger sequence number, so a poller can tail
// the journal without re-reading it.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	evs := s.orch.Events()
	if since := r.URL.Query().Get("since"); since != "" {
		seq, err := strconv.ParseUint(since, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q", since))
			return
		}
		i := 0
		for i < len(evs) && evs[i].Seq <= seq {
			i++
		}
		evs = evs[i:]
	}
	if evs == nil {
		evs = []telemetry.Event{}
	}
	writeJSON(w, http.StatusOK, evs)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ErrorBody is the payload of the uniform error envelope.
type ErrorBody struct {
	// Code names the error class (one per HTTP status in practice).
	Code string `json:"code"`
	// Message is the primary human-readable description.
	Message string `json:"message"`
	// Detail lists individual violations when the error aggregates several
	// (e.g. everything graph validation found in one pass).
	Detail []string `json:"detail,omitempty"`
}

// ErrorEnvelope is the body of every REST error response.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// errorCode maps an HTTP status to its envelope code string.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusBadGateway:
		return "upstream_error"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "error"
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	body := ErrorBody{Code: errorCode(code), Message: err.Error()}
	// A multi-error (joined validation violations) is broken out so clients
	// get every violation individually, not one concatenated string.
	if v := nffg.Violations(err); len(v) > 1 {
		body.Detail = v
	}
	writeJSON(w, code, ErrorEnvelope{Error: body})
}

func (s *Server) putGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var g nffg.Graph
	if err := json.NewDecoder(r.Body).Decode(&g); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing NF-FG: %w", err))
		return
	}
	if g.ID == "" {
		g.ID = id
	}
	if g.ID != id {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("graph id %q does not match URL id %q", g.ID, id))
		return
	}
	if r.URL.Query().Get("dry-run") == "true" {
		plan, err := s.orch.Plan(&g)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, DryRunReply{Status: "valid", DryRun: true, Plan: plan})
		return
	}
	if _, exists := s.orch.Graph(id); exists {
		if err := s.orch.Update(&g); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "updated", "id": id})
		return
	}
	if err := s.orch.Deploy(&g); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "deployed", "id": id})
}

func (s *Server) getGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d, ok := s.orch.Graph(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	writeJSON(w, http.StatusOK, d.Graph)
}

func (s *Server) deleteGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.orch.Undeploy(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "undeployed", "id": id})
}

func (s *Server) listGraphs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"graphs": s.orch.GraphIDs()})
}

// DryRunReply is the PUT /v1/graphs/{id}?dry-run=true body: the validated
// would-be placement, nothing deployed.
type DryRunReply struct {
	Status string                   `json:"status"`
	DryRun bool                     `json:"dry-run"`
	Plan   *orchestrator.DeployPlan `json:"plan"`
}

// ReflavorRequest is the POST /v1/graphs/{id}/nfs/{nf}/reflavor body. An
// empty or "any" technology asks the node's placement policy to choose at
// the currently observed traffic rate.
type ReflavorRequest struct {
	Technology string `json:"technology"`
}

// ScaleRequest is the POST /v1/graphs/{id}/nfs/{nf}/scale body.
type ScaleRequest struct {
	Replicas int `json:"replicas"`
}

func (s *Server) scale(w http.ResponseWriter, r *http.Request) {
	id, nfID := r.PathValue("id"), r.PathValue("nf")
	var req ScaleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing scale request: %w", err))
		return
	}
	if _, ok := s.orch.Graph(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	if err := s.orch.Scale(id, nfID, req.Replicas); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "scaled", "id": id, "nf": nfID, "replicas": req.Replicas,
	})
}

func (s *Server) reflavor(w http.ResponseWriter, r *http.Request) {
	id, nfID := r.PathValue("id"), r.PathValue("nf")
	var req ReflavorRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing reflavor request: %w", err))
		return
	}
	if _, ok := s.orch.Graph(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	tech := nffg.Technology(req.Technology)
	if req.Technology == "" || tech == nffg.TechAny {
		chosen, err := s.orch.ReflavorAuto(id, nfID)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "reflavored", "id": id, "nf": nfID, "technology": string(chosen),
		})
		return
	}
	if err := s.orch.Reflavor(id, nfID, tech); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status": "reflavored", "id": id, "nf": nfID, "technology": req.Technology,
	})
}

// StatusReply is the GET /status body. Interfaces lets the global
// orchestrator pin NF-FG endpoints to the node owning the named interface;
// RatePPS feeds its M/M/1 saturation-aware placement.
type StatusReply struct {
	Node         string           `json:"node"`
	Graphs       []string         `json:"graphs"`
	Capabilities []string         `json:"capabilities"`
	Interfaces   []string         `json:"interfaces"`
	CPU          ResourceStatus   `json:"cpu-millicores"`
	RAM          ResourceStatus   `json:"ram-bytes"`
	NFInstances  []InstanceStatus `json:"nf-instances"`
	// RatePPS is the node's observed aggregate datapath packet rate.
	RatePPS float64 `json:"rate-pps"`
}

// ResourceStatus is one used/total pair.
type ResourceStatus struct {
	Used  uint64 `json:"used"`
	Total uint64 `json:"total"`
}

// InstanceStatus describes one running NF.
type InstanceStatus struct {
	Graph      string `json:"graph"`
	NF         string `json:"nf"`
	Instance   string `json:"instance"`
	Technology string `json:"technology"`
	// State is the NF's lifecycle state ("running", "draining", ...).
	State string `json:"state"`
	// Replicas is how many instances currently serve the NF (1 unless
	// scaled out).
	Replicas int    `json:"replicas,omitempty"`
	Shared   bool   `json:"shared,omitempty"`
	RAMBytes uint64 `json:"ram-bytes"`
	// Standby reports whether a warm standby instance shadows this NF
	// (active-standby redundancy).
	Standby bool `json:"standby,omitempty"`
}

func (s *Server) status(w http.ResponseWriter, _ *http.Request) {
	topo := s.orch.Topology()
	usedCPU, totalCPU, usedRAM, totalRAM := s.pool.Usage()
	reply := StatusReply{
		Node:       topo.NodeName,
		Graphs:     s.orch.GraphIDs(),
		Interfaces: topo.Interfaces,
		CPU:        ResourceStatus{Used: uint64(usedCPU), Total: uint64(totalCPU)},
		RAM:        ResourceStatus{Used: usedRAM, Total: totalRAM},
	}
	for _, c := range s.pool.Capabilities() {
		reply.Capabilities = append(reply.Capabilities, string(c))
	}
	for _, g := range topo.Graphs {
		standbys := make(map[string]bool)
		for _, nfID := range s.orch.StandbyNFs(g.ID) {
			standbys[nfID] = true
		}
		for _, n := range g.NFs {
			reps, _ := s.orch.Replicas(g.ID, n.ID)
			reply.NFInstances = append(reply.NFInstances, InstanceStatus{
				Graph:      g.ID,
				NF:         n.ID,
				Instance:   n.Instance,
				Technology: n.Technology,
				State:      n.State,
				Replicas:   reps,
				Shared:     n.Shared,
				RAMBytes:   n.RAMBytes,
				Standby:    standbys[n.ID],
			})
		}
	}
	reply.RatePPS = s.orch.TotalRatePPS()
	writeJSON(w, http.StatusOK, reply)
}

// StateReply is the GET/PUT /v1/graphs/{id}/nfs/{nf}/state body: the NF's
// exportable per-flow state (NAT bindings, IPsec SAs, ...), empty for a
// stateless NF. The global orchestrator's standby sync moves it between
// nodes through these verbs.
type StateReply struct {
	States []nf.FlowState `json:"states"`
}

func (s *Server) getNFState(w http.ResponseWriter, r *http.Request) {
	id, nfID := r.PathValue("id"), r.PathValue("nf")
	states, err := s.orch.ExportNFState(id, nfID)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if states == nil {
		states = []nf.FlowState{}
	}
	writeJSON(w, http.StatusOK, StateReply{States: states})
}

func (s *Server) putNFState(w http.ResponseWriter, r *http.Request) {
	id, nfID := r.PathValue("id"), r.PathValue("nf")
	var req StateReply
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing state: %w", err))
		return
	}
	if _, ok := s.orch.Graph(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	if err := s.orch.ImportNFState(id, nfID, req.States); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "imported", "id": id, "nf": nfID, "states": len(req.States),
	})
}

// GraphStatsReply is the GET /NF-FG/{id}/stats body.
type GraphStatsReply struct {
	Graph string        `json:"graph"`
	NFs   []NFStats     `json:"nfs"`
	Rules []RuleCounter `json:"steering-rules"`
}

// NFStats carries one NF runtime's counters.
type NFStats struct {
	NF        string `json:"nf"`
	Instance  string `json:"instance"`
	RxPackets uint64 `json:"rx-packets"`
	TxPackets uint64 `json:"tx-packets"`
	Errors    uint64 `json:"errors"`
}

// RuleCounter carries one installed steering rule's hit counters, read over
// the graph's OpenFlow channel.
type RuleCounter struct {
	Table    uint8  `json:"table"`
	Priority uint16 `json:"priority"`
	Packets  uint64 `json:"packets"`
	Bytes    uint64 `json:"bytes"`
}

func (s *Server) graphStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d, ok := s.orch.Graph(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	reply := GraphStatsReply{Graph: id}
	instances := d.Instances()
	nfIDs := make([]string, 0, len(instances))
	for nfID := range instances {
		nfIDs = append(nfIDs, nfID)
	}
	sort.Strings(nfIDs)
	for _, nfID := range nfIDs {
		inst := instances[nfID]
		st := inst.Runtime.Stats()
		reply.NFs = append(reply.NFs, NFStats{
			NF:        nfID,
			Instance:  inst.Runtime.Name(),
			RxPackets: st.RxPackets,
			TxPackets: st.TxPackets,
			Errors:    st.Errors,
		})
	}
	flowStats, err := d.Controller().FlowStats()
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("querying steering rules: %w", err))
		return
	}
	for _, fs := range flowStats {
		reply.Rules = append(reply.Rules, RuleCounter{
			Table:    fs.TableID,
			Priority: fs.Priority,
			Packets:  fs.Packets,
			Bytes:    fs.Bytes,
		})
	}
	writeJSON(w, http.StatusOK, reply)
}

// maxCaptureDuration bounds GET /capture runs.
const maxCaptureDuration = 30 * time.Second

// capture records the traffic crossing one node interface for ?duration
// (default 1s) and returns it as a pcap body, openable in Wireshark.
func (s *Server) capture(w http.ResponseWriter, r *http.Request) {
	ifName := r.PathValue("iface")
	port, ok := s.orch.InterfacePort(ifName)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no interface %q", ifName))
		return
	}
	duration := time.Second
	if d := r.URL.Query().Get("duration"); d != "" {
		parsed, err := time.ParseDuration(d)
		if err != nil || parsed <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad duration %q", d))
			return
		}
		duration = parsed
	}
	if duration > maxCaptureDuration {
		duration = maxCaptureDuration
	}
	w.Header().Set("Content-Type", "application/vnd.tcpdump.pcap")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", ifName+".pcap"))
	pw := pcap.NewWriter(w)
	if err := pw.WriteHeader(); err != nil {
		return
	}
	port.SetTap(func(_ netdev.TapDir, f netdev.Frame) {
		_ = pw.WritePacket(time.Now(), f.Data)
	})
	select {
	case <-time.After(duration):
	case <-r.Context().Done():
	}
	port.SetTap(nil)
	// In-flight taps may still hold the writer: gate them off before the
	// handler returns and net/http finalizes the response.
	pw.Close()
}

func (s *Server) topology(w http.ResponseWriter, r *http.Request) {
	topo := s.orch.Topology()
	switch r.URL.Query().Get("format") {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, topo.DOT())
	case "json":
		writeJSON(w, http.StatusOK, topo)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, topo.String())
	}
}
