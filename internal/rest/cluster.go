package rest

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/cluster"
)

// EnableCluster attaches an HA cluster replica to the global server:
//
//	GET /v1/cluster           this replica's view (leader, term, members,
//	                          replication progress)
//	    /v1/cluster/rpc/...   replica-to-replica RPC (gossip, votes, appends)
//
// and turns the server into a redirecting follower: a mutating request
// (POST/PUT/DELETE outside /v1/cluster) arriving at a non-leader is
// answered with 307 + Location on the current leader, or 503 while an
// election is in flight. Reads are always answered locally.
func (s *GlobalServer) EnableCluster(c *cluster.Cluster) {
	s.cluster = c
	s.selfID = c.ClusterStatus().ID
	s.mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.ClusterStatus())
	})
	s.mux.Handle("/v1/cluster/rpc/", c.RPCHandler())
}

// redirectToLeader intercepts writes on a follower. It reports whether it
// handled the request.
func (s *GlobalServer) redirectToLeader(w http.ResponseWriter, r *http.Request) bool {
	if s.cluster == nil {
		return false
	}
	switch r.Method {
	case http.MethodPost, http.MethodPut, http.MethodDelete:
	default:
		return false
	}
	// Cluster RPC must reach followers — that is how they stop being
	// followers.
	if strings.HasPrefix(r.URL.Path, "/v1/cluster") {
		return false
	}
	if s.cluster.IsLeader() {
		return false
	}
	id, addr := s.cluster.Leader()
	if id == "" || id == s.selfID || addr == "" {
		// Election in flight (or we are a deposed leader that has not
		// heard the successor yet): the client retries with backoff.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("no cluster leader currently elected; retry shortly"))
		return true
	}
	http.Redirect(w, r, strings.TrimRight(addr, "/")+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	return true
}
