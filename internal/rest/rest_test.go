package rest_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	un "repro"
	"repro/internal/measure"
	"repro/internal/netdev"
	"repro/internal/pcap"
	"repro/internal/pkt"
	"repro/internal/rest"
)

func newServer(t *testing.T) (*un.Node, *httptest.Server) {
	t.Helper()
	node, err := un.NewNode(un.Config{Name: "rest-node"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(node.Handler())
	t.Cleanup(func() {
		srv.Close()
		node.Close()
	})
	return node, srv
}

const ipsecGraphJSON = `{
  "forwarding-graph": {
    "id": "cpe-vpn",
    "name": "ipsec on the home router",
    "VNFs": [
      {"id": "vpn", "name": "ipsec",
       "ports": [{"id": "0"}, {"id": "1"}],
       "technology-preference": "native",
       "configuration": {
         "local": "192.0.2.1", "remote": "203.0.113.9",
         "spi": "4096", "key": "000102030405060708090a0b0c0d0e0f10111213"
       }}
    ],
    "end-points": [
      {"id": "lan", "type": "interface", "interface": {"if-name": "eth0"}},
      {"id": "wan", "type": "interface", "interface": {"if-name": "eth1"}}
    ],
    "big-switch": {"flow-rules": [
      {"id": "r1", "priority": 10, "match": {"port_in": "endpoint:lan"},
       "actions": [{"output_to_port": "vnf:vpn:0"}]},
      {"id": "r2", "priority": 10, "match": {"port_in": "vnf:vpn:1"},
       "actions": [{"output_to_port": "endpoint:wan"}]},
      {"id": "r3", "priority": 10, "match": {"port_in": "endpoint:wan"},
       "actions": [{"output_to_port": "vnf:vpn:1"}]},
      {"id": "r4", "priority": 10, "match": {"port_in": "vnf:vpn:0"},
       "actions": [{"output_to_port": "endpoint:lan"}]}
    ]}
  }
}`

func doPut(t *testing.T, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func doDelete(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestDeployGetDeleteOverREST(t *testing.T) {
	node, srv := newServer(t)

	resp := doPut(t, srv.URL+"/NF-FG/cpe-vpn", ipsecGraphJSON)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if len(node.GraphIDs()) != 1 {
		t.Fatal("graph not deployed")
	}
	placements, _ := node.Placements("cpe-vpn")
	if placements["vpn"] != un.TechNative {
		t.Errorf("placement = %v", placements)
	}

	// GET returns a graph that round-trips.
	getResp, err := http.Get(srv.URL + "/NF-FG/cpe-vpn")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", getResp.StatusCode)
	}
	var g un.Graph
	if err := json.NewDecoder(getResp.Body).Decode(&g); err != nil {
		t.Fatal(err)
	}
	if g.ID != "cpe-vpn" || len(g.NFs) != 1 || len(g.Rules) != 4 {
		t.Errorf("returned graph = %+v", g)
	}

	// List.
	listResp, err := http.Get(srv.URL + "/NF-FG")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list map[string][]string
	_ = json.NewDecoder(listResp.Body).Decode(&list)
	if len(list["graphs"]) != 1 || list["graphs"][0] != "cpe-vpn" {
		t.Errorf("list = %v", list)
	}

	// DELETE.
	delResp := doDelete(t, srv.URL+"/NF-FG/cpe-vpn")
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", delResp.StatusCode)
	}
	delResp.Body.Close()
	if len(node.GraphIDs()) != 0 {
		t.Error("graph not undeployed")
	}
}

func TestPutUpdatesExistingGraph(t *testing.T) {
	_, srv := newServer(t)
	resp := doPut(t, srv.URL+"/NF-FG/cpe-vpn", ipsecGraphJSON)
	resp.Body.Close()
	// Same body again: treated as (no-op) update.
	resp = doPut(t, srv.URL+"/NF-FG/cpe-vpn", ipsecGraphJSON)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d", resp.StatusCode)
	}
	var body map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&body)
	if body["status"] != "updated" {
		t.Errorf("body = %v", body)
	}
}

func TestRESTErrors(t *testing.T) {
	_, srv := newServer(t)

	// Malformed JSON.
	resp := doPut(t, srv.URL+"/NF-FG/x", "{not json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Body/URL id mismatch.
	resp = doPut(t, srv.URL+"/NF-FG/other-id", ipsecGraphJSON)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("id mismatch status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Invalid graph (no rules referencing unknown NF template).
	bad := strings.Replace(ipsecGraphJSON, `"name": "ipsec"`, `"name": "warp-drive"`, 1)
	resp = doPut(t, srv.URL+"/NF-FG/cpe-vpn", bad)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad template status = %d", resp.StatusCode)
	}
	var errBody rest.ErrorEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&errBody)
	resp.Body.Close()
	if errBody.Error.Code != "unprocessable" || errBody.Error.Message == "" {
		t.Errorf("error envelope = %+v", errBody)
	}

	// GET / DELETE of an unknown graph.
	getResp, _ := http.Get(srv.URL + "/NF-FG/ghost")
	if getResp.StatusCode != http.StatusNotFound {
		t.Errorf("get ghost status = %d", getResp.StatusCode)
	}
	getResp.Body.Close()
	delResp := doDelete(t, srv.URL+"/NF-FG/ghost")
	if delResp.StatusCode != http.StatusNotFound {
		t.Errorf("delete ghost status = %d", delResp.StatusCode)
	}
	delResp.Body.Close()
}

func TestStatusAndTopology(t *testing.T) {
	_, srv := newServer(t)
	resp := doPut(t, srv.URL+"/NF-FG/cpe-vpn", ipsecGraphJSON)
	resp.Body.Close()

	stResp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer stResp.Body.Close()
	var st rest.StatusReply
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Node != "rest-node" || len(st.Graphs) != 1 || len(st.NFInstances) != 1 {
		t.Errorf("status = %+v", st)
	}
	if st.NFInstances[0].Technology != "native" {
		t.Errorf("instance = %+v", st.NFInstances[0])
	}
	if st.RAM.Used == 0 || st.RAM.Total == 0 {
		t.Error("resource usage missing")
	}
	found := false
	for _, c := range st.Capabilities {
		if c == "nnf:ipsec" {
			found = true
		}
	}
	if !found {
		t.Errorf("capabilities = %v", st.Capabilities)
	}

	// Topology, three formats.
	for _, q := range []string{"", "?format=dot", "?format=json"} {
		tResp, err := http.Get(srv.URL + "/topology" + q)
		if err != nil {
			t.Fatal(err)
		}
		buf := new(bytes.Buffer)
		_, _ = buf.ReadFrom(tResp.Body)
		tResp.Body.Close()
		if tResp.StatusCode != http.StatusOK || buf.Len() == 0 {
			t.Errorf("topology%s status=%d len=%d", q, tResp.StatusCode, buf.Len())
		}
		if q == "?format=dot" && !strings.Contains(buf.String(), "digraph") {
			t.Error("dot format missing digraph")
		}
	}
}

func TestCaptureEndpoint(t *testing.T) {
	node, srv := newServer(t)
	resp := doPut(t, srv.URL+"/NF-FG/cpe-vpn", ipsecGraphJSON)
	resp.Body.Close()

	// Capture eth1 while pushing traffic in from eth0.
	done := make(chan struct{})
	go func() {
		defer close(done)
		lan, _ := node.InterfacePort("eth0")
		frame, _ := measure.Spec{FrameSize: 500}.Frame()
		for i := 0; i < 50; i++ {
			_ = lan.Send(netdev.Frame{Data: frame})
			time.Sleep(2 * time.Millisecond)
		}
	}()
	capResp, err := http.Get(srv.URL + "/capture/eth1?duration=120ms")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(capResp.Body)
	capResp.Body.Close()
	<-done
	if capResp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", capResp.StatusCode)
	}
	if ct := capResp.Header.Get("Content-Type"); !strings.Contains(ct, "pcap") {
		t.Errorf("content type = %q", ct)
	}
	pkts, err := pcap.NewReader(bytes.NewReader(body)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) == 0 {
		t.Fatal("capture empty despite traffic")
	}
	p := pkt.NewPacket(pkts[0].Data, pkt.LayerTypeEthernet, pkt.Default)
	if p.Layer(pkt.LayerTypeESP) == nil {
		t.Error("WAN capture should hold ESP")
	}

	// An idle capture still yields a valid (empty) pcap.
	idleResp, err := http.Get(srv.URL + "/capture/eth0?duration=30ms")
	if err != nil {
		t.Fatal(err)
	}
	idleBody, _ := io.ReadAll(idleResp.Body)
	idleResp.Body.Close()
	if pkts, err := pcap.NewReader(bytes.NewReader(idleBody)).ReadAll(); err != nil || len(pkts) != 0 {
		t.Errorf("idle capture: %d packets, err %v", len(pkts), err)
	}

	// Errors.
	r404, _ := http.Get(srv.URL + "/capture/eth9?duration=10ms")
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown interface status = %d", r404.StatusCode)
	}
	r404.Body.Close()
	rBad, _ := http.Get(srv.URL + "/capture/eth0?duration=zebra")
	if rBad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad duration status = %d", rBad.StatusCode)
	}
	rBad.Body.Close()
}

func TestGraphStatsEndpoint(t *testing.T) {
	node, srv := newServer(t)
	resp := doPut(t, srv.URL+"/NF-FG/cpe-vpn", ipsecGraphJSON)
	resp.Body.Close()

	// Push 7 frames through, then read the counters.
	lan, _ := node.InterfacePort("eth0")
	wan, _ := node.InterfacePort("eth1")
	frame, _ := measure.Spec{FrameSize: 700}.Frame()
	for i := 0; i < 7; i++ {
		_ = lan.Send(netdev.Frame{Data: frame})
		_, _ = wan.TryRecv()
	}
	stResp, err := http.Get(srv.URL + "/NF-FG/cpe-vpn/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stResp.Body.Close()
	if stResp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", stResp.StatusCode)
	}
	var st rest.GraphStatsReply
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Graph != "cpe-vpn" || len(st.NFs) != 1 {
		t.Fatalf("reply = %+v", st)
	}
	if st.NFs[0].RxPackets != 7 || st.NFs[0].TxPackets != 7 || st.NFs[0].Errors != 0 {
		t.Errorf("nf stats = %+v", st.NFs[0])
	}
	if len(st.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(st.Rules))
	}
	var hits uint64
	for _, rc := range st.Rules {
		hits += rc.Packets
	}
	if hits != 14 { // 7 on the lan->vpn rule, 7 on vpn->wan
		t.Errorf("rule hits = %d, want 14", hits)
	}

	// Unknown graph.
	r404, _ := http.Get(srv.URL + "/NF-FG/ghost/stats")
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("ghost stats status = %d", r404.StatusCode)
	}
	r404.Body.Close()
}
