package rest_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	un "repro"
	"repro/internal/cluster"
	"repro/internal/global"
	"repro/internal/rest"
)

// swapHandler lets the httptest servers come up before the handlers that
// need their URLs exist.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h = h
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterRESTFollowerRedirectsWrites runs two replicated global
// servers over real HTTP: the follower 307-redirects writes to the
// leader, serves the cluster status document, and its reads converge on
// the leader's writes via the replicated intent store.
func TestClusterRESTFollowerRedirectsWrites(t *testing.T) {
	node, err := un.NewNode(un.Config{
		Name:       "n1",
		Interfaces: []string{"lan", "wan"},
		CPUMillis:  8000,
		RAMBytes:   1 << 30,
		Capabilities: []string{
			"docker", "nnf:firewall", "nnf:monitor", "nnf:bridge",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	local := global.NewLocalNode("n1", node)
	resolver := func(name string, _ json.RawMessage) (global.Node, error) {
		if name != "n1" {
			return nil, fmt.Errorf("unknown node %q", name)
		}
		return local, nil
	}

	swaps := map[string]*swapHandler{"a": {}, "b": {}}
	servers := map[string]*httptest.Server{}
	var peers []cluster.PeerSpec
	for _, id := range []string{"a", "b"} {
		srv := httptest.NewServer(swaps[id])
		t.Cleanup(srv.Close)
		servers[id] = srv
		peers = append(peers, cluster.PeerSpec{ID: id, Addr: srv.URL})
	}

	orchs := map[string]*global.Orchestrator{}
	clusters := map[string]*cluster.Cluster{}
	for _, id := range []string{"a", "b"} {
		o := global.New(global.Config{Logf: t.Logf, ProbeInterval: 10 * time.Millisecond})
		c, err := global.BuildHA(o, cluster.Options{
			ID:                id,
			Peers:             peers,
			Transport:         cluster.NewHTTPTransport(peers, nil),
			ProbeInterval:     20 * time.Millisecond,
			SuspicionTimeout:  150 * time.Millisecond,
			HeartbeatInterval: 20 * time.Millisecond,
			LeaseDuration:     250 * time.Millisecond,
		}, resolver)
		if err != nil {
			t.Fatal(err)
		}
		s := rest.NewGlobal(o, nil)
		s.EnableCluster(c)
		swaps[id].set(s)
		orchs[id] = o
		clusters[id] = c
		c.Start()
		t.Cleanup(c.Close)
	}

	waitUntil(t, 5*time.Second, "leader election", func() bool {
		return clusters["a"].IsLeader() || clusters["b"].IsLeader()
	})
	leaderID, followerID := "a", "b"
	if clusters["b"].IsLeader() {
		leaderID, followerID = "b", "a"
	}
	leaderURL := servers[leaderID].URL
	followerURL := servers[followerID].URL

	if err := orchs[leaderID].AddNode(local); err != nil {
		t.Fatal(err)
	}

	// A raw write on the follower answers 307 with the leader's location.
	noFollow := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	resp, err := noFollow.Post(followerURL+"/v1/links", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower write: got %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, leaderURL) {
		t.Fatalf("redirect location %q does not point at leader %q", loc, leaderURL)
	}

	// A client following redirects lands the deploy on the leader.
	req, err := http.NewRequest(http.MethodPut, followerURL+"/v1/graphs/svc", strings.NewReader(twoNFGraphJSON))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("redirected deploy: got %d: %s", resp.StatusCode, body)
	}
	if ids := orchs[leaderID].GraphIDs(); len(ids) != 1 || ids[0] != "svc" {
		t.Fatalf("leader graph set after redirected deploy: %v", ids)
	}

	// Both replicas serve the cluster document; only one claims the lease.
	for id, srv := range servers {
		resp, err := http.Get(srv.URL + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		var st cluster.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Leader != leaderID {
			t.Fatalf("replica %s sees leader %q, want %q", id, st.Leader, leaderID)
		}
		if st.IsLeader != (id == leaderID) {
			t.Fatalf("replica %s is-leader=%v", id, st.IsLeader)
		}
	}

	// Follower reads converge on the replicated intent (the refresh runs
	// on its reconcile tick; drive it directly here).
	waitUntil(t, 5*time.Second, "follower catch-up", func() bool {
		orchs[followerID].ReconcileOnce()
		resp, err := http.Get(followerURL + "/v1/graphs")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var reply struct {
			Graphs []string `json:"graphs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			return false
		}
		return len(reply.Graphs) == 1 && reply.Graphs[0] == "svc"
	})
}
