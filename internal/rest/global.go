// Global REST interface: the northbound API of the global orchestrator
// (cmd/un-global). Compute nodes running cmd/un-orchestrator register here;
// NF-FGs submitted here are partitioned across the fleet.
//
// The versioned v1 surface:
//
//	POST   /v1/nodes         register a node {name, url}
//	GET    /v1/nodes         fleet state (per-node status + liveness)
//	DELETE /v1/nodes/{name}  withdraw a node
//	POST   /v1/links         declare an inter-node link {a-node,a-if,b-node,b-if}
//	GET    /v1/links         declared links
//	PUT    /v1/graphs/{id}   deploy (or update) a global graph; ?dry-run=true
//	       validates and partitions across the fleet (incl. replica resource
//	       demand) without deploying, returning the would-be placement
//	GET    /v1/graphs/{id}   retrieve the desired graph
//	DELETE /v1/graphs/{id}   undeploy a global graph
//	GET    /v1/graphs        list global graph ids
//	POST   /v1/graphs/{id}/nfs/{nf}/reflavor  hot-swap one NF's execution
//	       technology on whichever node hosts it ({"technology": "..."})
//	POST   /v1/graphs/{id}/nfs/{nf}/scale  resize one NF's replica set on
//	       its hosting node ({"replicas": 3}), state migrated live
//	GET    /v1/graphs/{id}/placement  where each NF and endpoint runs
//	GET    /v1/status        fleet summary
//	GET    /v1/metrics       fleet-wide telemetry: the global orchestrator's
//	                         own control-plane metrics plus one scrape of
//	                         every alive node, tagged node="..."
//	GET    /v1/events        merged event journal of control plane and fleet
//	GET    /v1/cluster       HA cluster view: leader, term, membership,
//	                         replication progress (when clustering is enabled;
//	                         see EnableCluster — followers answer reads and
//	                         307-redirect writes to the leader)
//
// Errors use the same {"error": {"code", "message", "detail"}} envelope as
// the node API. The pre-versioning routes (/nodes, /links, /NF-FG/...,
// /status, /metrics, /events) remain as deprecated aliases answering with a
// "Deprecation: true" header plus a Link to the successor route.
package rest

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/global"
	"repro/internal/nffg"
	"repro/internal/telemetry"
)

// writeMutationError maps a mutating-entry-point failure to a status. Two
// cluster conditions override the handler's fallback with 503 + Retry-After:
// ErrNotCommitted (the change is applied locally and parked in the leader
// log, but quorum did not acknowledge in time — a retry is safe because ops
// are idempotent by key and commit as soon as quorum returns) and
// ErrNotLeader (the replica lost the lease mid-request, after the follower
// redirect already happened — the client should re-resolve the leader).
func writeMutationError(w http.ResponseWriter, fallback int, err error) {
	if errors.Is(err, global.ErrNotCommitted) || errors.Is(err, global.ErrNotLeader) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, fallback, err)
}

// GlobalServer exposes one global orchestrator over HTTP.
type GlobalServer struct {
	orch   *global.Orchestrator
	client *http.Client
	mux    *http.ServeMux

	// HA (see cluster.go): nil on a standalone server.
	cluster *cluster.Cluster
	selfID  string
}

// NewGlobal builds the server. Registered nodes are reached with client; nil
// uses a client with a 5-second timeout so a hung node fails its probe
// instead of wedging the reconcile loop.
func NewGlobal(orch *global.Orchestrator, client *http.Client) *GlobalServer {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	s := &GlobalServer{orch: orch, client: client, mux: http.NewServeMux()}
	route := func(method, v1, legacy string, h http.HandlerFunc) {
		s.mux.HandleFunc(method+" "+v1, h)
		if legacy != "" {
			s.mux.HandleFunc(method+" "+legacy, deprecatedAlias(v1, h))
		}
	}
	route("POST", "/v1/nodes", "/nodes", s.addNode)
	route("GET", "/v1/nodes", "/nodes", s.listNodes)
	route("DELETE", "/v1/nodes/{name}", "/nodes/{name}", s.removeNode)
	route("POST", "/v1/links", "/links", s.addLink)
	route("GET", "/v1/links", "/links", s.listLinks)
	route("DELETE", "/v1/links", "", s.removeLink)
	route("PUT", "/v1/graphs/{id}", "/NF-FG/{id}", s.putGraph)
	route("GET", "/v1/graphs/{id}", "/NF-FG/{id}", s.getGraph)
	route("DELETE", "/v1/graphs/{id}", "/NF-FG/{id}", s.deleteGraph)
	route("GET", "/v1/graphs", "/NF-FG", s.listGraphs)
	route("POST", "/v1/graphs/{id}/nfs/{nf}/reflavor", "/NF-FG/{id}/nf/{nf}/reflavor", s.reflavor)
	route("POST", "/v1/graphs/{id}/nfs/{nf}/scale", "", s.scale)
	route("GET", "/v1/graphs/{id}/placement", "/NF-FG/{id}/placement", s.placement)
	route("GET", "/v1/status", "/status", s.status)
	route("GET", "/v1/metrics", "/metrics", s.metrics)
	route("GET", "/v1/events", "/events", s.events)
	return s
}

// metrics serves the fleet-wide Prometheus view: global control-plane
// metrics plus a live scrape of every alive node, tagged per node. A node
// dying mid-scrape is skipped (and counted) rather than failing the scrape.
func (s *GlobalServer) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	_ = s.orch.WriteFleetMetrics(w)
}

// events serves the merged control-plane and per-node event journal.
func (s *GlobalServer) events(w http.ResponseWriter, _ *http.Request) {
	evs := s.orch.FleetEvents()
	if evs == nil {
		evs = []telemetry.Event{}
	}
	writeJSON(w, http.StatusOK, evs)
}

// ServeHTTP implements http.Handler. Under HA, writes reaching a
// follower are redirected to the leader first (see cluster.go).
func (s *GlobalServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.redirectToLeader(w, r) {
		return
	}
	s.mux.ServeHTTP(w, r)
}

// NodeRegistration is the POST /nodes body.
type NodeRegistration struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

func (s *GlobalServer) addNode(w http.ResponseWriter, r *http.Request) {
	var reg NodeRegistration
	if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing registration: %w", err))
		return
	}
	if reg.Name == "" || reg.URL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("registration needs name and url"))
		return
	}
	node := global.NewHTTPNode(reg.Name, reg.URL, s.client)
	if err := s.orch.AddNode(node); err != nil {
		writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "registered", "name": reg.Name})
}

func (s *GlobalServer) listNodes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]global.NodeInfo{"nodes": s.orch.ListNodes()})
}

func (s *GlobalServer) removeNode(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.orch.RemoveNode(name); err != nil {
		writeMutationError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed", "name": name})
}

func (s *GlobalServer) addLink(w http.ResponseWriter, r *http.Request) {
	var l global.Link
	if err := json.NewDecoder(r.Body).Decode(&l); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing link: %w", err))
		return
	}
	if err := s.orch.Link(l.A, l.AIf, l.B, l.BIf); err != nil {
		writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "linked"})
}

func (s *GlobalServer) listLinks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]global.Link{"links": s.orch.Links()})
}

// removeLink severs a declared inter-node link (DELETE /v1/links with the
// same body as POST). Graphs whose partition crossed it are re-placed.
func (s *GlobalServer) removeLink(w http.ResponseWriter, r *http.Request) {
	var l global.Link
	if err := json.NewDecoder(r.Body).Decode(&l); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing link: %w", err))
		return
	}
	if err := s.orch.Unlink(l.A, l.AIf, l.B, l.BIf); err != nil {
		writeMutationError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "unlinked"})
}

func (s *GlobalServer) putGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var g nffg.Graph
	if err := json.NewDecoder(r.Body).Decode(&g); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing NF-FG: %w", err))
		return
	}
	if g.ID == "" {
		g.ID = id
	}
	if g.ID != id {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("graph id %q does not match URL id %q", g.ID, id))
		return
	}
	if r.URL.Query().Get("dry-run") == "true" {
		plan, err := s.orch.PlanDeploy(&g)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, GlobalDryRunReply{Status: "valid", DryRun: true, Plan: plan})
		return
	}
	// Apply decides deploy-vs-update atomically under the orchestrator
	// lock, so concurrent PUTs of a new id cannot race each other.
	existed, err := s.orch.Apply(&g)
	switch {
	case err != nil && existed:
		writeMutationError(w, http.StatusConflict, err)
	case err != nil:
		writeMutationError(w, http.StatusUnprocessableEntity, err)
	case existed:
		writeJSON(w, http.StatusOK, map[string]string{"status": "updated", "id": id})
	default:
		writeJSON(w, http.StatusCreated, map[string]string{"status": "deployed", "id": id})
	}
}

func (s *GlobalServer) getGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g, ok := s.orch.Graph(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	writeJSON(w, http.StatusOK, g)
}

func (s *GlobalServer) deleteGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.orch.Graph(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	if err := s.orch.Undeploy(id); err != nil {
		writeMutationError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "undeployed", "id": id})
}

func (s *GlobalServer) listGraphs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"graphs": s.orch.GraphIDs()})
}

func (s *GlobalServer) reflavor(w http.ResponseWriter, r *http.Request) {
	id, nfID := r.PathValue("id"), r.PathValue("nf")
	var req ReflavorRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing reflavor request: %w", err))
		return
	}
	if _, ok := s.orch.Graph(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	if err := s.orch.Reflavor(id, nfID, nffg.Technology(req.Technology)); err != nil {
		writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status": "reflavored", "id": id, "nf": nfID, "technology": req.Technology,
	})
}

// GlobalDryRunReply is the PUT /v1/graphs/{id}?dry-run=true body of the
// global API: the validated fleet-wide would-be placement, nothing deployed.
type GlobalDryRunReply struct {
	Status string       `json:"status"`
	DryRun bool         `json:"dry-run"`
	Plan   *global.Plan `json:"plan"`
}

func (s *GlobalServer) scale(w http.ResponseWriter, r *http.Request) {
	id, nfID := r.PathValue("id"), r.PathValue("nf")
	var req ScaleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing scale request: %w", err))
		return
	}
	if _, ok := s.orch.Graph(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	if err := s.orch.Scale(id, nfID, req.Replicas); err != nil {
		writeMutationError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "scaled", "id": id, "nf": nfID, "replicas": req.Replicas,
	})
}

// PlacementReply is the GET /v1/graphs/{id}/placement body.
type PlacementReply struct {
	Graph     string            `json:"graph"`
	NFs       map[string]string `json:"nfs"`       // NF id -> node
	Endpoints map[string]string `json:"endpoints"` // endpoint id -> node
	// StandbyNode names the node holding the graph's warm shadow
	// deployment (active-standby availability), empty when none is armed.
	StandbyNode string `json:"standby-node,omitempty"`
}

func (s *GlobalServer) placement(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	pl, ok := s.orch.Placement(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q not deployed", id))
		return
	}
	writeJSON(w, http.StatusOK, PlacementReply{
		Graph: id, NFs: pl.NFNode, Endpoints: pl.EPNode,
		StandbyNode: s.orch.StandbyNode(id),
	})
}

// GlobalStatusReply is the GET /status body of the global orchestrator.
type GlobalStatusReply struct {
	Nodes  []global.NodeInfo `json:"nodes"`
	Links  []global.Link     `json:"links"`
	Graphs []string          `json:"graphs"`
}

func (s *GlobalServer) status(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, GlobalStatusReply{
		Nodes:  s.orch.ListNodes(),
		Links:  s.orch.Links(),
		Graphs: s.orch.GraphIDs(),
	})
}
