package rest_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	un "repro"
	"repro/internal/global"
	"repro/internal/netdev"
	"repro/internal/pkt"
	"repro/internal/rest"
)

// restNode spins up one complete Universal Node behind its REST interface.
func restNode(t *testing.T, name string, ifaces []string, cpuMillis int) (*un.Node, *httptest.Server) {
	t.Helper()
	node, err := un.NewNode(un.Config{
		Name:       name,
		Interfaces: ifaces,
		CPUMillis:  cpuMillis,
		RAMBytes:   1 << 30,
		Capabilities: []string{
			"docker", "nnf:firewall", "nnf:monitor", "nnf:bridge",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(node.Handler())
	t.Cleanup(func() {
		srv.Close()
		node.Close()
	})
	return node, srv
}

func doPost(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

const twoNFGraphJSON = `{
  "forwarding-graph": {
    "id": "svc",
    "VNFs": [
      {"id": "fw", "name": "firewall", "ports": [{"id": "0"}, {"id": "1"}]},
      {"id": "mon", "name": "monitor", "ports": [{"id": "0"}, {"id": "1"}]}
    ],
    "end-points": [
      {"id": "lan", "type": "interface", "interface": {"if-name": "lan"}},
      {"id": "wan", "type": "interface", "interface": {"if-name": "wan"}}
    ],
    "big-switch": {"flow-rules": [
      {"id": "r1", "priority": 10, "match": {"port_in": "endpoint:lan"},
       "actions": [{"output_to_port": "vnf:fw:0"}]},
      {"id": "r2", "priority": 10, "match": {"port_in": "vnf:fw:1"},
       "actions": [{"output_to_port": "vnf:mon:0"}]},
      {"id": "r3", "priority": 10, "match": {"port_in": "vnf:mon:1"},
       "actions": [{"output_to_port": "endpoint:wan"}]}
    ]}
  }
}`

// TestGlobalServerFleetOverREST runs the whole two-tier stack over HTTP:
// two compute nodes behind their REST servers, registered into a global
// server, a graph split across them, and traffic over the patched link.
func TestGlobalServerFleetOverREST(t *testing.T) {
	// n1 owns lan but has almost no compute; n2 has the compute.
	n1, srv1 := restNode(t, "n1", []string{"lan", "trunk"}, 10)
	n2, srv2 := restNode(t, "n2", []string{"trunk", "wan"}, 4000)
	p1, _ := n1.InterfacePort("trunk")
	p2, _ := n2.InterfacePort("trunk")
	t.Cleanup(global.Patch(p1, p2))

	gOrch := global.New(global.Config{ProbeInterval: 5 * time.Millisecond})
	gsrv := httptest.NewServer(rest.NewGlobal(gOrch, nil))
	t.Cleanup(gsrv.Close)

	// Register both nodes and the trunk link.
	for _, reg := range []string{
		fmt.Sprintf(`{"name": "n1", "url": %q}`, srv1.URL),
		fmt.Sprintf(`{"name": "n2", "url": %q}`, srv2.URL),
	} {
		resp := doPost(t, gsrv.URL+"/nodes", reg)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("node registration status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := doPost(t, gsrv.URL+"/links",
		`{"a-node": "n1", "a-if": "trunk", "b-node": "n2", "b-if": "trunk"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("link status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The fleet view reflects both nodes with their interfaces.
	var fleet struct {
		Nodes []global.NodeInfo `json:"nodes"`
	}
	nresp, err := http.Get(gsrv.URL + "/nodes")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(nresp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if len(fleet.Nodes) != 2 || !fleet.Nodes[0].Alive || !fleet.Nodes[1].Alive {
		t.Fatalf("fleet = %+v, want 2 alive nodes", fleet.Nodes)
	}

	// Deploy a graph whose NFs cannot fit on the endpoint-owning node.
	resp = doPut(t, gsrv.URL+"/NF-FG/svc", twoNFGraphJSON)
	if resp.StatusCode != http.StatusCreated {
		body := new(bytes.Buffer)
		_, _ = body.ReadFrom(resp.Body)
		t.Fatalf("global deploy status = %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()

	// Placement: both NFs on n2, both user endpoints on their owners.
	var pl rest.PlacementReply
	presp, err := http.Get(gsrv.URL + "/NF-FG/svc/placement")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(presp.Body).Decode(&pl); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if pl.NFs["fw"] != "n2" || pl.NFs["mon"] != "n2" {
		t.Errorf("NF placement = %v, want both on n2", pl.NFs)
	}
	if pl.Endpoints["lan"] != "n1" || pl.Endpoints["wan"] != "n2" {
		t.Errorf("endpoint placement = %v", pl.Endpoints)
	}
	// Both nodes hold a subgraph.
	for _, node := range []*un.Node{n1, n2} {
		if _, ok := node.Graph("svc"); !ok {
			t.Fatalf("node %v holds no svc subgraph", node.Topology().NodeName)
		}
	}

	// Traffic: in n1/lan, through the REST-stitched trunk, out n2/wan.
	frame := pkt.MustBuildFrame(pkt.FrameSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.Addr{10, 0, 0, 1}, DstIP: pkt.Addr{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 5001, PayloadLen: 64, PayloadByte: 0x77,
	})
	lan, _ := n1.InterfacePort("lan")
	wan, _ := n2.InterfacePort("wan")
	if err := lan.Send(netdev.Frame{Data: frame}); err != nil {
		t.Fatal(err)
	}
	got, ok := wan.TryRecv()
	if !ok {
		t.Fatal("nothing emerged on the far node")
	}
	if !bytes.Equal(got.Data, frame) {
		t.Fatalf("frame corrupted across REST-managed stitch")
	}

	// Undeploy removes the pieces from both nodes.
	dresp := doDelete(t, gsrv.URL+"/NF-FG/svc")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("global undeploy status = %d", dresp.StatusCode)
	}
	dresp.Body.Close()
	for _, node := range []*un.Node{n1, n2} {
		if ids := node.GraphIDs(); len(ids) != 0 {
			t.Errorf("node still holds %v after global undeploy", ids)
		}
	}
}

// TestGlobalServerRegistrationErrors covers the node-registration error
// paths.
func TestGlobalServerRegistrationErrors(t *testing.T) {
	gOrch := global.New(global.Config{})
	gsrv := httptest.NewServer(rest.NewGlobal(gOrch, &http.Client{Timeout: 200 * time.Millisecond}))
	t.Cleanup(gsrv.Close)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{oops`, http.StatusBadRequest},
		{"missing fields", `{"name": "x"}`, http.StatusBadRequest},
		{"unreachable node", `{"name": "x", "url": "http://127.0.0.1:1/"}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp := doPost(t, gsrv.URL+"/nodes", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
		resp.Body.Close()
	}

	// Duplicate registration.
	_, srv := restNode(t, "dup", []string{"eth0"}, 1000)
	reg := fmt.Sprintf(`{"name": "dup", "url": %q}`, srv.URL)
	resp := doPost(t, gsrv.URL+"/nodes", reg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first registration status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = doPost(t, gsrv.URL+"/nodes", reg)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("duplicate registration status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Link validation: unknown node, unknown interface.
	for _, body := range []string{
		`{"a-node": "ghost", "a-if": "x", "b-node": "dup", "b-if": "eth0"}`,
		`{"a-node": "dup", "a-if": "nope", "b-node": "dup", "b-if": "eth0"}`,
	} {
		resp := doPost(t, gsrv.URL+"/links", body)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("bad link %s: status = %d", body, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Removing an unknown node.
	dresp := doDelete(t, gsrv.URL+"/nodes/ghost")
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("remove ghost node status = %d", dresp.StatusCode)
	}
	dresp.Body.Close()

	// Global graph endpoints on an empty orchestrator.
	gresp, _ := http.Get(gsrv.URL + "/NF-FG/ghost/placement")
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("placement of unknown graph status = %d", gresp.StatusCode)
	}
	gresp.Body.Close()
}

// TestConcurrentPutsSameGraph hammers one graph id with parallel PUTs: the
// node must end in a consistent deployed state, with every response a
// well-formed success or conflict.
func TestConcurrentPutsSameGraph(t *testing.T) {
	node, srv := newServer(t)
	const writers = 8
	var wg sync.WaitGroup
	codes := make([]int, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPut,
				srv.URL+"/NF-FG/cpe-vpn", strings.NewReader(ipsecGraphJSON))
			if err != nil {
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			codes[i] = resp.StatusCode
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	okCount := 0
	for i, code := range codes {
		switch code {
		case http.StatusOK, http.StatusCreated:
			okCount++
		case http.StatusUnprocessableEntity, http.StatusConflict:
			// Lost the deploy race: acceptable, must not corrupt state.
		default:
			t.Errorf("writer %d: unexpected status %d", i, code)
		}
	}
	if okCount == 0 {
		t.Error("no PUT succeeded")
	}
	// The graph is deployed exactly once and still serves GETs.
	if ids := node.GraphIDs(); len(ids) != 1 || ids[0] != "cpe-vpn" {
		t.Fatalf("deployed graphs = %v, want [cpe-vpn]", ids)
	}
	resp, err := http.Get(srv.URL + "/NF-FG/cpe-vpn")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET after concurrent PUTs = %d", resp.StatusCode)
	}
}

// TestStatusReportsInterfaces: the global scheduler depends on /status
// listing the node's interfaces.
func TestStatusReportsInterfaces(t *testing.T) {
	_, srv := newServer(t)
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st rest.StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Interfaces) != 2 || st.Interfaces[0] != "eth0" || st.Interfaces[1] != "eth1" {
		t.Errorf("status interfaces = %v, want [eth0 eth1]", st.Interfaces)
	}
}
