package rest_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/rest"
)

const natGraphJSON = `{
  "forwarding-graph": {
    "id": "g-nat",
    "VNFs": [
      {"id": "nat", "name": "nat",
       "ports": [{"id": "0"}, {"id": "1"}],
       "technology-preference": "docker",
       "replicas": 3,
       "configuration": {"external_ip": "198.51.100.1"}}
    ],
    "end-points": [
      {"id": "lan", "type": "interface", "interface": {"if-name": "eth0"}},
      {"id": "wan", "type": "interface", "interface": {"if-name": "eth1"}}
    ],
    "big-switch": {"flow-rules": [
      {"id": "r1", "priority": 10, "match": {"port_in": "endpoint:lan"},
       "actions": [{"output_to_port": "vnf:nat:0"}]},
      {"id": "r2", "priority": 10, "match": {"port_in": "vnf:nat:1"},
       "actions": [{"output_to_port": "endpoint:wan"}]},
      {"id": "r3", "priority": 10, "match": {"port_in": "endpoint:wan"},
       "actions": [{"output_to_port": "vnf:nat:1"}]},
      {"id": "r4", "priority": 10, "match": {"port_in": "vnf:nat:0"},
       "actions": [{"output_to_port": "endpoint:lan"}]}
    ]}
  }
}`

// TestV1RoutesAndDeprecationHeaders is the golden pairing test: every
// legacy route still answers, carries the deprecation headers pointing at
// its successor, and the successor itself answers clean.
func TestV1RoutesAndDeprecationHeaders(t *testing.T) {
	_, srv := newServer(t)
	resp := doPut(t, srv.URL+"/v1/graphs/cpe-vpn", ipsecGraphJSON)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("v1 PUT status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	pairs := []struct{ legacy, v1 string }{
		{"/NF-FG", "/v1/graphs"},
		{"/NF-FG/cpe-vpn", "/v1/graphs/{id}"},
		{"/NF-FG/cpe-vpn/stats", "/v1/graphs/{id}/stats"},
		{"/status", "/v1/status"},
		{"/topology", "/v1/topology"},
		{"/metrics", "/v1/metrics"},
		{"/events", "/v1/events"},
	}
	for _, p := range pairs {
		r, err := http.Get(srv.URL + p.legacy)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s status = %d", p.legacy, r.StatusCode)
		}
		if got := r.Header.Get("Deprecation"); got != "true" {
			t.Errorf("GET %s Deprecation header = %q, want \"true\"", p.legacy, got)
		}
		link := r.Header.Get("Link")
		if !strings.Contains(link, p.v1) || !strings.Contains(link, `rel="successor-version"`) {
			t.Errorf("GET %s Link header = %q, want successor %s", p.legacy, link, p.v1)
		}
	}

	// The v1 surface itself is not deprecated.
	for _, path := range []string{"/v1/graphs", "/v1/graphs/cpe-vpn", "/v1/status", "/v1/metrics"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s status = %d", path, r.StatusCode)
		}
		if r.Header.Get("Deprecation") != "" {
			t.Errorf("GET %s unexpectedly deprecated", path)
		}
	}
}

// TestErrorEnvelopeListsAllViolations: an invalid graph answers with the
// uniform envelope, and the detail array carries every violation the
// single-pass validator found, not just the first.
func TestErrorEnvelopeListsAllViolations(t *testing.T) {
	_, srv := newServer(t)
	bad := strings.Replace(ipsecGraphJSON, `"port_in": "endpoint:lan"`, `"port_in": "endpoint:ghost1"`, 1)
	bad = strings.Replace(bad, `"port_in": "endpoint:wan"`, `"port_in": "endpoint:ghost2"`, 1)
	resp := doPut(t, srv.URL+"/v1/graphs/cpe-vpn", bad)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var env rest.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "unprocessable" || env.Error.Message == "" {
		t.Fatalf("envelope = %+v", env)
	}
	if len(env.Error.Detail) < 2 {
		t.Fatalf("detail = %v, want both violations", env.Error.Detail)
	}
	joined := strings.Join(env.Error.Detail, "\n")
	if !strings.Contains(joined, "ghost1") || !strings.Contains(joined, "ghost2") {
		t.Errorf("detail misses a violation: %v", env.Error.Detail)
	}
}

// TestDryRunDeploy: ?dry-run=true validates, schedules and admission-checks
// with replica demand but deploys nothing.
func TestDryRunDeploy(t *testing.T) {
	node, srv := newServer(t)
	resp := doPut(t, srv.URL+"/v1/graphs/g-nat?dry-run=true", natGraphJSON)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dry-run status = %d", resp.StatusCode)
	}
	var reply rest.DryRunReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if !reply.DryRun || reply.Plan == nil {
		t.Fatalf("reply = %+v", reply)
	}
	if reply.Plan.Exists {
		t.Error("plan claims the graph exists")
	}
	if len(reply.Plan.NFs) != 1 {
		t.Fatalf("plan NFs = %+v", reply.Plan.NFs)
	}
	nf := reply.Plan.NFs[0]
	if nf.NF != "nat" || nf.Technology != "docker" || nf.Replicas != 3 {
		t.Errorf("nf plan = %+v", nf)
	}
	// Replica demand is the whole replica set's, not one instance's.
	if nf.CPUMillis%3 != 0 || nf.CPUMillis == 0 {
		t.Errorf("cpu demand = %d, want a 3-replica multiple", nf.CPUMillis)
	}
	if reply.Plan.NewCPUMillis != nf.CPUMillis {
		t.Errorf("new demand = %d, want %d", reply.Plan.NewCPUMillis, nf.CPUMillis)
	}
	if !reply.Plan.Fits {
		t.Error("plan reports the graph does not fit an idle node")
	}
	if len(node.GraphIDs()) != 0 {
		t.Fatal("dry-run mutated the node")
	}

	// Deploy for real, then a second dry-run reports an update with no
	// additional demand.
	resp2 := doPut(t, srv.URL+"/v1/graphs/g-nat", natGraphJSON)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("real PUT status = %d", resp2.StatusCode)
	}
	resp3 := doPut(t, srv.URL+"/v1/graphs/g-nat?dry-run=true", natGraphJSON)
	defer resp3.Body.Close()
	var again rest.DryRunReply
	_ = json.NewDecoder(resp3.Body).Decode(&again)
	if !again.Plan.Exists {
		t.Error("second dry-run misses the deployed graph")
	}
	if again.Plan.NewCPUMillis != 0 {
		t.Errorf("update demand = %d, want 0 (replicas unchanged)", again.Plan.NewCPUMillis)
	}
}

// TestScaleOverREST drives the replica set through the new scale resource
// and reads the count back from /v1/status.
func TestScaleOverREST(t *testing.T) {
	node, srv := newServer(t)
	resp := doPut(t, srv.URL+"/v1/graphs/g-nat", natGraphJSON)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	if n, _ := node.Replicas("g-nat", "nat"); n != 3 {
		t.Fatalf("deployed replicas = %d, want 3", n)
	}

	r, err := http.Post(srv.URL+"/v1/graphs/g-nat/nfs/nat/scale", "application/json",
		strings.NewReader(`{"replicas": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("scale status = %d", r.StatusCode)
	}
	var body map[string]any
	_ = json.NewDecoder(r.Body).Decode(&body)
	if body["status"] != "scaled" || body["replicas"] != float64(2) {
		t.Errorf("scale body = %v", body)
	}
	if n, _ := node.Replicas("g-nat", "nat"); n != 2 {
		t.Fatalf("replicas = %d, want 2", n)
	}

	stResp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer stResp.Body.Close()
	var st rest.StatusReply
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.NFInstances) != 1 || st.NFInstances[0].Replicas != 2 {
		t.Errorf("status instances = %+v", st.NFInstances)
	}

	// Invalid counts answer with the envelope.
	bad, err := http.Post(srv.URL+"/v1/graphs/g-nat/nfs/nat/scale", "application/json",
		strings.NewReader(`{"replicas": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("scale-to-0 status = %d", bad.StatusCode)
	}
	var env rest.ErrorEnvelope
	_ = json.NewDecoder(bad.Body).Decode(&env)
	if env.Error.Code != "unprocessable" || env.Error.Message == "" {
		t.Errorf("scale error envelope = %+v", env)
	}

	// Unknown graph.
	ghost, err := http.Post(srv.URL+"/v1/graphs/ghost/nfs/nat/scale", "application/json",
		strings.NewReader(`{"replicas": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	ghost.Body.Close()
	if ghost.StatusCode != http.StatusNotFound {
		t.Errorf("ghost scale status = %d", ghost.StatusCode)
	}
}
